package cmetiling_test

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"testing"

	cmetiling "repro"
)

// TestExpvarSinkConcurrentSearches hammers one shared expvar sink from
// several parallel searches, the way tilingd does in production: the sink
// is a single Recorder shared by every concurrent request, so it must be
// safe under -race and must not lose counts. The per-search numbers are
// deterministic, so the aggregate is checked exactly against the sum of
// the same searches run one at a time into private sinks.
func TestExpvarSinkConcurrentSearches(t *testing.T) {
	k, ok := cmetiling.GetKernel("MM")
	if !ok {
		t.Fatal("MM kernel missing")
	}

	const searches = 6
	run := func(sink cmetiling.Recorder, seed uint64) {
		nest, err := k.Instance(32)
		if err != nil {
			t.Error(err)
			return
		}
		_, err = cmetiling.OptimizeTiling(context.Background(), nest, cmetiling.Options{
			Cache:          cmetiling.DM8K,
			Seed:           seed,
			MaxEvaluations: 25,
			Observer:       sink,
		})
		if err != nil {
			t.Error(err)
		}
	}

	// Serial baseline: each search into its own sink, then sum.
	want := make(map[string]int64)
	for i := 0; i < searches; i++ {
		sink := cmetiling.NewExpvarSink(fmt.Sprintf("race-baseline-%d", i))
		run(sink, uint64(i+1))
		for key, v := range expvarInts(t, sink.String()) {
			want[key] += v
		}
	}

	// Concurrent run: all searches share one sink.
	shared := cmetiling.NewExpvarSink("race-shared")
	var wg sync.WaitGroup
	for i := 0; i < searches; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			run(shared, seed)
		}(uint64(i + 1))
	}
	wg.Wait()

	got := expvarInts(t, shared.String())
	for _, key := range []string{"evaluations", "sampled_points", "searches", "generations", "events"} {
		if want[key] == 0 {
			t.Errorf("baseline recorded no %s; test exercises nothing", key)
		}
		if got[key] != want[key] {
			t.Errorf("shared sink %s = %d, want %d (counts lost under concurrency)", key, got[key], want[key])
		}
	}
}

// expvarInts parses an expvar map's JSON rendering into integer counters,
// skipping non-numeric entries.
func expvarInts(t *testing.T, s string) map[string]int64 {
	t.Helper()
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(s), &raw); err != nil {
		t.Fatalf("expvar map %q: %v", s, err)
	}
	out := make(map[string]int64, len(raw))
	for k, v := range raw {
		if n, err := strconv.ParseInt(string(v), 10, 64); err == nil {
			out[k] = n
		}
	}
	return out
}
