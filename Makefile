# Development targets. `make verify` is the tier-1 gate every change must
# keep green: vet, full build, and the test suite under the race detector
# (the search runtime fans evaluation out across goroutines, so races are
# first-class failures here).

GO ?= go

.PHONY: verify build test vet race fuzz bench-json bench-regress depcheck chaos lint serve-smoke islands crash-chaos

verify: vet build depcheck lint bench-regress race chaos islands crash-chaos

# Static analysis beyond vet. Both tools are optional: they are skipped
# with a note when not installed (the container image does not bake them
# in), and govulncheck needs network access for its vuln DB, so its
# failure is reported but never fails the build.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "lint: govulncheck reported issues (not fatal)"; \
	else \
		echo "lint: govulncheck not installed, skipping"; \
	fi

# End-to-end service check: build tilingd, start it on a free port, issue
# a health probe and a real tiling request, then SIGTERM and assert a
# clean drained exit.
serve-smoke:
	./scripts/serve_smoke.sh

vet:
	$(GO) vet ./...

# Telemetry layering rule: internal packages may depend on the
# internal/telemetry interface, but only the facade (root package) wires
# concrete sinks. An internal package importing internal/telemetry/sinks
# breaks the nil-observer zero-cost contract and fails here.
depcheck:
	@bad=$$($(GO) list -f '{{.ImportPath}}: {{join .Imports " "}}' ./internal/... | grep -E ' repro/internal/telemetry/sinks( |$$)' || true); \
	if [ -n "$$bad" ]; then \
		echo "depcheck: internal packages must not import telemetry sinks (only the facade may):"; \
		echo "$$bad"; exit 1; \
	fi
	@echo "depcheck: ok"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-tolerance suite: full searches under scripted fault plans
# (evaluation panics/stalls, checkpoint-write failures, sink I/O errors)
# plus checkpoint corruption and recovery, run normally and under the
# race detector. `race` already covers these tests as part of ./...;
# running them by name keeps the chaos bar explicit and fast to iterate.
chaos:
	$(GO) test -run 'Chaos|Fault|Corrupt|Quarantine|Watchdog|Watched|Retr|AtExit|Checkpoint|Inject|Stall' . ./internal/core ./internal/cliutil ./internal/sampling ./internal/ga ./internal/telemetry/sinks ./internal/server
	$(GO) test ./internal/faultinject ./internal/retry
	$(GO) test -race -run 'Chaos|Corrupt' . ./internal/server

# Crash-recovery bar: the durable request journal (torn tails, CRC
# mismatches, rotation, compaction), tilingd's idempotency and recovery
# paths, and the SIGKILL-the-daemon suite — kill mid-search, restart,
# require zero lost accepted requests and a recovered response
# bit-identical to the crash-free run. All under the race detector.
crash-chaos:
	$(GO) test -race -count=1 ./internal/journal
	$(GO) test -race -count=1 -run 'CrashChaos|Journal|Idempotent|Restart|Recover|StateDir' . ./internal/server

# Island-model invariance bar: determinism at every island count, the
# Islands=1 ≡ single-population equivalence, and checkpoint/resume
# replay, all under the race detector (demes evolve on concurrent
# goroutines, so this is where scheduling races would surface).
islands:
	$(GO) test -race -run 'Island' . ./internal/ga ./internal/core

# Point-solver, evaluation and search microbenchmarks, recorded as a
# JSON trajectory file so perf changes are tracked PR over PR.
BENCH_OUT ?= BENCH_pr10.json
bench-json:
	$(GO) test -run '^$$' -bench 'Classify$$|EvaluateParallel|IslandSearch|EvalCacheSearch|FidelitySearch' -benchmem . | $(GO) run ./cmd/benchjson -out $(BENCH_OUT)

# Benchmark regression gate: diff the two newest BENCH_pr*.json files and
# fail on a >20% ns/op slowdown in the core micro-benchmarks. Skips with a
# note when fewer than two trajectory files exist.
bench-regress:
	./scripts/bench_compare.sh

# Short fuzz sweeps over the structured-input entry points.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzAffine -fuzztime=30s ./internal/expr/
	$(GO) test -run=^$$ -fuzz=FuzzNestValidate -fuzztime=30s ./internal/ir/
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=30s ./internal/parser/
