# Development targets. `make verify` is the tier-1 gate every change must
# keep green: vet, full build, and the test suite under the race detector
# (the search runtime fans evaluation out across goroutines, so races are
# first-class failures here).

GO ?= go

.PHONY: verify build test vet race fuzz bench-json

verify: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Point-solver and evaluation microbenchmarks, recorded as a JSON
# trajectory file so perf changes are tracked PR over PR.
BENCH_OUT ?= BENCH_pr2.json
bench-json:
	$(GO) test -run '^$$' -bench 'Classify$$|EvaluateParallel' -benchmem . | $(GO) run ./cmd/benchjson -out $(BENCH_OUT)

# Short fuzz sweeps over the structured-input entry points.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzAffine -fuzztime=30s ./internal/expr/
	$(GO) test -run=^$$ -fuzz=FuzzNestValidate -fuzztime=30s ./internal/ir/
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=30s ./internal/parser/
