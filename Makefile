# Development targets. `make verify` is the tier-1 gate every change must
# keep green: vet, full build, and the test suite under the race detector
# (the search runtime fans evaluation out across goroutines, so races are
# first-class failures here).

GO ?= go

.PHONY: verify build test vet race fuzz bench-json depcheck chaos

verify: vet build depcheck race chaos

vet:
	$(GO) vet ./...

# Telemetry layering rule: internal packages may depend on the
# internal/telemetry interface, but only the facade (root package) wires
# concrete sinks. An internal package importing internal/telemetry/sinks
# breaks the nil-observer zero-cost contract and fails here.
depcheck:
	@bad=$$($(GO) list -f '{{.ImportPath}}: {{join .Imports " "}}' ./internal/... | grep -E ' repro/internal/telemetry/sinks( |$$)' || true); \
	if [ -n "$$bad" ]; then \
		echo "depcheck: internal packages must not import telemetry sinks (only the facade may):"; \
		echo "$$bad"; exit 1; \
	fi
	@echo "depcheck: ok"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-tolerance suite: full searches under scripted fault plans
# (evaluation panics/stalls, checkpoint-write failures, sink I/O errors)
# plus checkpoint corruption and recovery, run normally and under the
# race detector. `race` already covers these tests as part of ./...;
# running them by name keeps the chaos bar explicit and fast to iterate.
chaos:
	$(GO) test -run 'Chaos|Fault|Corrupt|Quarantine|Watchdog|Watched|Retr|AtExit|Checkpoint|Inject|Stall' . ./internal/core ./internal/cliutil ./internal/sampling ./internal/ga ./internal/telemetry/sinks
	$(GO) test ./internal/faultinject ./internal/retry
	$(GO) test -race -run 'Chaos|Corrupt' .

# Point-solver and evaluation microbenchmarks, recorded as a JSON
# trajectory file so perf changes are tracked PR over PR.
BENCH_OUT ?= BENCH_pr3.json
bench-json:
	$(GO) test -run '^$$' -bench 'Classify$$|EvaluateParallel' -benchmem . | $(GO) run ./cmd/benchjson -out $(BENCH_OUT)

# Short fuzz sweeps over the structured-input entry points.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzAffine -fuzztime=30s ./internal/expr/
	$(GO) test -run=^$$ -fuzz=FuzzNestValidate -fuzztime=30s ./internal/ir/
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=30s ./internal/parser/
