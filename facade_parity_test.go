package cmetiling_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// optimizeFuncs parses every non-test Go file in dir and returns, for each
// exported Optimize* function, whether its doc comment carries a
// "Deprecated:" marker and whether its first parameter is a
// context.Context.
func optimizeFuncs(t *testing.T, dir string) map[string]struct{ deprecated, ctxFirst bool } {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]struct{ deprecated, ctxFirst bool })
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv != nil || !fn.Name.IsExported() ||
					!strings.HasPrefix(fn.Name.Name, "Optimize") {
					continue
				}
				info := struct{ deprecated, ctxFirst bool }{}
				if fn.Doc != nil && strings.Contains(fn.Doc.Text(), "Deprecated:") {
					info.deprecated = true
				}
				if params := fn.Type.Params.List; len(params) > 0 {
					if sel, ok := params[0].Type.(*ast.SelectorExpr); ok {
						if ident, ok := sel.X.(*ast.Ident); ok &&
							ident.Name == "context" && sel.Sel.Name == "Context" {
							info.ctxFirst = true
						}
					}
				}
				out[fn.Name.Name] = info
			}
		}
	}
	return out
}

// TestFacadeParity pins the v1 ctx-first API contract: every exported
// core search has exactly one canonical ctx-first facade wrapper, and
// the deprecated <name>Context aliases of the pre-redesign surface are
// gone for good — no facade Optimize function is deprecated or named
// *Context. A new search added to internal/core without facade coverage
// (or a facade function with no core backing) fails this test.
func TestFacadeParity(t *testing.T) {
	core := optimizeFuncs(t, "internal/core")
	facade := optimizeFuncs(t, ".")

	for name, info := range facade {
		if info.deprecated {
			t.Errorf("facade %s is deprecated; the v1 surface carries no deprecated searches", name)
		}
		if strings.HasSuffix(name, "Context") {
			t.Errorf("facade %s resurrects a removed *Context alias", name)
		}
		if !info.ctxFirst {
			t.Errorf("facade %s is not ctx-first", name)
		}
		if _, ok := core[name]; !ok {
			t.Errorf("facade %s has no matching core search", name)
		}
	}
	for name, info := range core {
		if !info.ctxFirst {
			t.Errorf("core %s does not take a context first", name)
		}
		if _, ok := facade[name]; !ok {
			t.Errorf("core %s has no canonical ctx-first facade wrapper", name)
		}
	}
	if len(facade) == 0 {
		t.Error("no Optimize functions found in the facade")
	}
}
