package cmetiling_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	cmetiling "repro"
)

// traceSearch runs OptimizeTiling with a JSONL sink attached and returns
// the raw byte stream the sink produced (events plus the final counters
// line written by Close).
func traceSearch(t *testing.T, kernel string, size int64) []byte {
	t.Helper()
	k, ok := cmetiling.GetKernel(kernel)
	if !ok {
		t.Fatalf("unknown kernel %q", kernel)
	}
	nest, err := k.Instance(size)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := cmetiling.NewJSONLSink(&buf)
	opt := cmetiling.Options{
		Cache:        cmetiling.DM8K,
		Seed:         7,
		SamplePoints: 64,
		Workers:      1,
		Observer:     sink,
	}
	if _, err := cmetiling.OptimizeTiling(context.Background(), nest, opt); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJSONLStreamDeterministic: with a fixed seed, Workers=1, and
// timestamps off (the default), the full JSONL event stream of a search
// is byte-for-byte reproducible. This is the golden property that makes
// -trace-out files diffable across runs.
func TestJSONLStreamDeterministic(t *testing.T) {
	for _, tc := range []struct {
		kernel string
		size   int64
	}{
		{"MM", 40},
		{"ADD", 0},
	} {
		t.Run(fmt.Sprintf("%s_%d", tc.kernel, tc.size), func(t *testing.T) {
			a := traceSearch(t, tc.kernel, tc.size)
			b := traceSearch(t, tc.kernel, tc.size)
			if !bytes.Equal(a, b) {
				t.Fatalf("JSONL stream not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
			}
			checkStreamSchema(t, a)
		})
	}
}

// checkStreamSchema validates the wire contract of a complete stream:
// every line is a standalone JSON object whose first field is the "ev"
// discriminator, the stream opens with search_start, closes with the
// counters line, and contains a search_stop just before it.
func checkStreamSchema(t *testing.T, stream []byte) {
	t.Helper()
	lines := bytes.Split(bytes.TrimRight(stream, "\n"), []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("stream has only %d lines:\n%s", len(lines), stream)
	}
	kinds := make([]string, len(lines))
	for i, line := range lines {
		if !bytes.HasPrefix(line, []byte(`{"ev":"`)) {
			t.Fatalf("line %d does not lead with the ev discriminator: %s", i, line)
		}
		var obj struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(line, &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		kinds[i] = obj.Ev
	}
	if kinds[0] != "search_start" {
		t.Errorf("first event is %q, want search_start", kinds[0])
	}
	if kinds[len(kinds)-1] != "counters" {
		t.Errorf("last line is %q, want counters", kinds[len(kinds)-1])
	}
	if kinds[len(kinds)-2] != "search_stop" {
		t.Errorf("penultimate event is %q, want search_stop", kinds[len(kinds)-2])
	}
	var gens, batches int
	for _, k := range kinds {
		switch k {
		case "generation":
			gens++
		case "evaluation_batch":
			batches++
		}
	}
	if gens == 0 {
		t.Error("stream has no generation events")
	}
	if batches == 0 {
		t.Error("stream has no evaluation_batch events")
	}
}

// TestJSONLStreamWorkerInvariantCounters: the counters line (sums over
// every sampled point) must not depend on how the evaluation work was
// split across goroutines, even though event interleaving may differ.
func TestJSONLStreamWorkerInvariantCounters(t *testing.T) {
	counters := func(workers int) string {
		k, _ := cmetiling.GetKernel("MM")
		nest, err := k.Instance(40)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		sink := cmetiling.NewJSONLSink(&buf)
		opt := cmetiling.Options{
			Cache: cmetiling.DM8K, Seed: 7, SamplePoints: 64,
			Workers: workers, Observer: sink,
		}
		if _, err := cmetiling.OptimizeTiling(context.Background(), nest, opt); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
		return string(lines[len(lines)-1])
	}
	serial, parallel := counters(1), counters(4)
	if serial != parallel {
		t.Fatalf("counters differ across worker counts:\nworkers=1: %s\nworkers=4: %s", serial, parallel)
	}
}
