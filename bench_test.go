// Benchmarks regenerating every table and figure of the paper's evaluation
// plus micro-benchmarks of the analysis machinery and ablations of the
// design choices. Each experiment benchmark reports the headline ratios of
// its table/figure as custom metrics, so `go test -bench=.` both times the
// pipeline and reproduces the results.
//
// Experiment benchmarks run in "quick" mode (problem sizes capped) so the
// full suite completes in minutes; `cmd/experiments` runs the full sizes.
package cmetiling_test

import (
	"context"
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/baselines"
	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/cme"
	"repro/internal/core"
	"repro/internal/evalcache"
	"repro/internal/experiments"
	"repro/internal/ga"
	"repro/internal/iterspace"
	"repro/internal/kernels"
	"repro/internal/sampling"
	"repro/internal/search"
	"repro/internal/tiling"
	"repro/internal/trace"
)

func quickCfg() experiments.Config {
	return experiments.Config{Seed: 2002, Quick: true, QuickCap: 200}
}

// BenchmarkTable2 regenerates Table 2 (miss ratios before/after tiling,
// 8KB direct-mapped) and reports the average replacement ratios.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(context.Background(), quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		var before, after float64
		for _, r := range rows {
			before += r.BeforeRepl
			after += r.AfterRepl
		}
		b.ReportMetric(100*before/float64(len(rows)), "repl%/before")
		b.ReportMetric(100*after/float64(len(rows)), "repl%/after")
	}
}

// figureBench runs a Figure-8/9 regeneration on a representative subset of
// the x-axis (quick sizes) and reports the mean ratios.
func figureBench(b *testing.B, cfg cache.Config) {
	entries := []experiments.Entry{
		{Kernel: "T2D", Size: 500},
		{Kernel: "T3DJIK", Size: 100},
		{Kernel: "T3DIKJ", Size: 100},
		{Kernel: "JACOBI3D", Size: 100},
		{Kernel: "MATMUL", Size: 100},
		{Kernel: "MM", Size: 100},
		{Kernel: "ADI", Size: 500},
		{Kernel: "DPSSB"},
		{Kernel: "DRADBG1"},
		{Kernel: "DRADFG1"},
	}
	c := quickCfg()
	c.QuickCap = 500
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure(context.Background(), cfg, entries, c)
		if err != nil {
			b.Fatal(err)
		}
		var before, after float64
		for _, r := range rows {
			before += r.NoTiling
			after += r.Tiling
		}
		b.ReportMetric(100*before/float64(len(rows)), "repl%/before")
		b.ReportMetric(100*after/float64(len(rows)), "repl%/after")
	}
}

// BenchmarkFigure8 regenerates the Figure-8 comparison at 8KB.
func BenchmarkFigure8(b *testing.B) { figureBench(b, cache.DM8K) }

// BenchmarkFigure9 regenerates the Figure-9 comparison at 32KB.
func BenchmarkFigure9(b *testing.B) { figureBench(b, cache.DM32K) }

// BenchmarkTable3 regenerates the 8KB half of Table 3 (padding and
// padding+tiling on the conflict-bound kernels).
func BenchmarkTable3(b *testing.B) {
	c := quickCfg()
	c.QuickCap = 128
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(context.Background(), cache.DM8K, c)
		if err != nil {
			b.Fatal(err)
		}
		var orig, pad, both float64
		for _, r := range rows {
			orig += r.Original
			pad += r.Padding
			both += r.PaddingTiling
		}
		n := float64(len(rows))
		b.ReportMetric(100*orig/n, "repl%/original")
		b.ReportMetric(100*pad/n, "repl%/padding")
		b.ReportMetric(100*both/n, "repl%/pad+tile")
	}
}

// BenchmarkTable4 regenerates Table 4's bucket fractions from a quick
// Figure-8 subset.
func BenchmarkTable4(b *testing.B) {
	entries := []experiments.Entry{
		{Kernel: "T2D", Size: 500}, {Kernel: "T3DJIK", Size: 100},
		{Kernel: "MM", Size: 100}, {Kernel: "JACOBI3D", Size: 100},
		{Kernel: "DPSSB"}, {Kernel: "DRADFG1"},
	}
	c := quickCfg()
	c.QuickCap = 500
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure(context.Background(), cache.DM8K, entries, c)
		if err != nil {
			b.Fatal(err)
		}
		t4 := experiments.Table4("8KB", rows)
		b.ReportMetric(100*t4.Below1, "pct<1%")
		b.ReportMetric(100*t4.Below2, "pct<2%")
		b.ReportMetric(100*t4.Below5, "pct<5%")
	}
}

// BenchmarkGAConvergence measures the §3.3 claims: generations to
// termination (15–25) and distinct objective evaluations (≤ nominal 450).
func BenchmarkGAConvergence(b *testing.B) {
	entries := []experiments.Entry{{Kernel: "MM", Size: 100}, {Kernel: "T2D", Size: 500}}
	c := quickCfg()
	c.QuickCap = 500
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Convergence(context.Background(), entries, c)
		if err != nil {
			b.Fatal(err)
		}
		var gens, evals float64
		for _, r := range rows {
			gens += float64(r.Generations)
			evals += float64(r.Evaluations)
		}
		b.ReportMetric(gens/float64(len(rows)), "generations")
		b.ReportMetric(evals/float64(len(rows)), "evaluations")
	}
}

// --- micro-benchmarks of the machinery ------------------------------------

func mmAnalyzer(b *testing.B, n int64, tile []int64, cfg cache.Config) *cme.Analyzer {
	b.Helper()
	k, _ := kernels.Get("MM")
	nest, err := k.Instance(n)
	if err != nil {
		b.Fatal(err)
	}
	box, err := tiling.Box(nest)
	if err != nil {
		b.Fatal(err)
	}
	var sp iterspace.Space = box
	if tile != nil {
		sp = iterspace.NewTiled(box, tile)
	}
	an, err := cme.NewAnalyzer(nest, sp, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return an
}

// BenchmarkPointSolver times one exact per-access CME classification — the
// inner loop of every estimate (§2.3's "fast solver").
func BenchmarkPointSolver(b *testing.B) {
	an := mmAnalyzer(b, 500, nil, cache.DM8K)
	sp := an.Space()
	rng := rand.New(rand.NewPCG(1, 2))
	p := make([]int64, sp.NumCoords())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Sample(rng, p)
		for r := 0; r < 4; r++ {
			an.Classify(p, r)
		}
	}
}

// BenchmarkPointSolverTiled is the same over a tiled space (twice the
// coordinates, min() bounds).
func BenchmarkPointSolverTiled(b *testing.B) {
	an := mmAnalyzer(b, 500, []int64{32, 16, 16}, cache.DM8K)
	sp := an.Space()
	rng := rand.New(rand.NewPCG(1, 2))
	p := make([]int64, sp.NumCoords())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Sample(rng, p)
		for r := 0; r < 4; r++ {
			an.Classify(p, r)
		}
	}
}

// BenchmarkClassify pits the optimized interference walk (incremental
// address maintenance + direct-mapped fast path) against the retained
// reference walk on the MM kernel over a tiled space — the headline
// point-solver speedup of the throughput overhaul. Both sub-benchmarks
// classify the same fixed set of sampled points.
func BenchmarkClassify(b *testing.B) {
	for _, mode := range []string{"incremental", "reference"} {
		b.Run(mode, func(b *testing.B) {
			an := mmAnalyzer(b, 500, []int64{32, 16, 16}, cache.DM8K)
			sp := an.Space()
			rng := rand.New(rand.NewPCG(5, 6))
			pts := make([][]int64, 256)
			for i := range pts {
				p := make([]int64, sp.NumCoords())
				sp.Sample(rng, p)
				pts[i] = p
			}
			classify := an.Classify
			if mode == "reference" {
				classify = an.ClassifyReference
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pts[i%len(pts)]
				for r := 0; r < 4; r++ {
					classify(p, r)
				}
			}
		})
	}
}

// BenchmarkEvaluateParallel times one common-random-numbers objective
// evaluation (the paper's 164-point sample over tiled MM) across worker
// counts, plus the pooled EvaluateWith path the search evaluator uses —
// clone churn eliminated by Rebind-reusing a fixed analyzer pool.
func BenchmarkEvaluateParallel(b *testing.B) {
	sample := mmSample(b, 500, sampling.PaperSampleSize)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			an := mmAnalyzer(b, 500, []int64{32, 16, 16}, cache.DM8K)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sample.EvaluateParallel(an, workers)
			}
		})
	}
	b.Run("pooled=4", func(b *testing.B) {
		an := mmAnalyzer(b, 500, []int64{32, 16, 16}, cache.DM8K)
		pool := []*cme.Analyzer{an, an.Clone(), an.Clone(), an.Clone()}
		tiledSpace := an.Space()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, a := range pool {
				if err := a.Rebind(tiledSpace); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := sample.EvaluateWith(context.Background(), pool); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// mmSample draws a fixed original-space sample for the MM kernel.
func mmSample(b *testing.B, n int64, points int) *sampling.Sample {
	b.Helper()
	k, _ := kernels.Get("MM")
	nest, err := k.Instance(n)
	if err != nil {
		b.Fatal(err)
	}
	box, err := tiling.Box(nest)
	if err != nil {
		b.Fatal(err)
	}
	return sampling.Draw(box, points, rand.New(rand.NewPCG(9, 10)))
}

// BenchmarkEstimate164 times one full §2.3 miss-ratio estimate (the
// paper's 164-point sample), i.e. one GA objective evaluation.
func BenchmarkEstimate164(b *testing.B) {
	an := mmAnalyzer(b, 500, []int64{32, 16, 16}, cache.DM8K)
	rng := rand.New(rand.NewPCG(3, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampling.EstimateMissRatio(an, sampling.PaperSampleSize, 0.9, rng)
	}
}

// BenchmarkSimulator times the trace-driven simulator in accesses/op.
func BenchmarkSimulator(b *testing.B) {
	k, _ := kernels.Get("MM")
	nest, _ := k.Instance(64)
	sim := cachesim.New(cache.DM8K)
	var addrs []int64
	trace.Generate(nest, func(_ []int64, a trace.Access) bool {
		addrs = append(addrs, a.Addr)
		return len(addrs) < 1<<20
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Access(addrs[i%len(addrs)])
	}
}

// BenchmarkGASearch times one complete tile search with the paper's
// parameters (what the paper reports as 15 minutes to 4 hours per nest on
// a Sun Ultra-60).
func BenchmarkGASearch(b *testing.B) {
	k, _ := kernels.Get("MM")
	nest, err := k.Instance(500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.OptimizeTiling(context.Background(), nest, core.Options{Cache: cache.DM8K, Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIslandSearch compares single-population and island-model wall
// clock at an equal evaluation budget. Workers is pinned to 1 so every
// scrap of parallelism comes from the demes themselves: the multi-island
// run should beat the single-island run on any multi-core host.
func BenchmarkIslandSearch(b *testing.B) {
	k, _ := kernels.Get("MM")
	nest, err := k.Instance(300)
	if err != nil {
		b.Fatal(err)
	}
	for _, islands := range []int{1, 4} {
		b.Run(fmt.Sprintf("islands=%d", islands), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.OptimizeTiling(context.Background(), nest, core.Options{
					Cache:          cache.DM8K,
					Seed:           42,
					Workers:        1,
					Islands:        islands,
					SamplePoints:   164,
					MaxEvaluations: 600,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*res.After.ReplacementRatio, "repl%/after")
				b.ReportMetric(float64(res.GA.Evaluations), "evaluations")
			}
		})
	}
}

// BenchmarkEvalCacheSearch measures the shared evaluation cache on the
// island-benchmark workload: "cold" gives every search a fresh cache (the
// first-request side, bounding the cache's overhead), "warm" repeats an
// identical search against a pre-warmed cache (the repeated-request side
// — what tilingd sees when related requests arrive). The determinism
// contract makes the results bit-identical either way; only time differs.
func BenchmarkEvalCacheSearch(b *testing.B) {
	k, _ := kernels.Get("MM")
	nest, err := k.Instance(300)
	if err != nil {
		b.Fatal(err)
	}
	opts := func(c *evalcache.Cache) core.Options {
		return core.Options{
			Cache:          cache.DM8K,
			Seed:           42,
			Workers:        1,
			SamplePoints:   164,
			MaxEvaluations: 600,
			SharedCache:    c,
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := evalcache.New(evalcache.Config{})
			if _, err := core.OptimizeTiling(context.Background(), nest, opts(c)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		c := evalcache.New(evalcache.Config{})
		if _, err := core.OptimizeTiling(context.Background(), nest, opts(c)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.OptimizeTiling(context.Background(), nest, opts(c)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		m := c.Metrics()
		b.ReportMetric(float64(m.Hits)/float64(b.N), "hits/op")
	})
}

// BenchmarkFidelitySearch compares classic full-fidelity evaluation
// against the multi-fidelity successive-halving ladder on the paper's
// convergence workload. Both sides run the identical GA schedule to
// convergence; the ladder scores most candidates on the coarse 41-point
// prefix and promotes only survivors to the full 164-point sample, so it
// classifies far fewer points per search. repl%/after is the sampled
// full-fidelity estimate of the winning tile either way — the quality
// guardrail for the speedup.
func BenchmarkFidelitySearch(b *testing.B) {
	for _, kn := range []struct {
		kernel string
		size   int64
	}{{"MM", 300}, {"T2D", 500}} {
		k, _ := kernels.Get(kn.kernel)
		nest, err := k.Instance(kn.size)
		if err != nil {
			b.Fatal(err)
		}
		for _, rungs := range []int{0, 3} {
			name := map[int]string{0: "off", 3: "rungs3"}[rungs]
			b.Run(kn.kernel+"/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := core.OptimizeTiling(context.Background(), nest, core.Options{
						Cache:        cache.DM8K,
						Seed:         42,
						Workers:      1,
						SamplePoints: 164,
						Fidelity:     ga.Fidelity{Rungs: rungs},
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(100*res.After.ReplacementRatio, "repl%/after")
					b.ReportMetric(float64(res.GA.Evaluations), "evaluations")
				}
			})
		}
	}
}

// --- ablations -------------------------------------------------------------

// BenchmarkAblationPopulation varies the GA population size around the
// paper's 30 and reports the post-tiling replacement ratio.
func BenchmarkAblationPopulation(b *testing.B) {
	k, _ := kernels.Get("MM")
	nest, err := k.Instance(200)
	if err != nil {
		b.Fatal(err)
	}
	for _, pop := range []int{10, 30, 60} {
		b.Run(map[int]string{10: "pop10", 30: "pop30", 60: "pop60"}[pop], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := core.Options{Cache: cache.DM8K, Seed: 5}
				gaCfg := ga.PaperConfig(5)
				gaCfg.PopSize = pop
				opt.GA = gaCfg
				res, err := core.OptimizeTiling(context.Background(), nest, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*res.After.ReplacementRatio, "repl%/after")
				b.ReportMetric(float64(res.GA.Evaluations), "evaluations")
			}
		})
	}
}

// BenchmarkAblationSampleSize varies the per-evaluation sample size around
// the paper's 164.
func BenchmarkAblationSampleSize(b *testing.B) {
	k, _ := kernels.Get("MM")
	nest, err := k.Instance(200)
	if err != nil {
		b.Fatal(err)
	}
	for _, pts := range []int{41, 164, 656} {
		name := map[int]string{41: "pts41", 164: "pts164", 656: "pts656"}[pts]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.OptimizeTiling(context.Background(), nest, core.Options{
					Cache: cache.DM8K, Seed: 5, SamplePoints: pts,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*res.After.ReplacementRatio, "repl%/after")
			}
		})
	}
}

// BenchmarkOptimizerShootout compares the GA against the §3.1
// alternatives — simulated annealing, stochastic hill climbing and pure
// random search — at the GA's nominal evaluation budget (450 distinct
// candidates) on the same deterministic objective.
func BenchmarkOptimizerShootout(b *testing.B) {
	k, _ := kernels.Get("MM")
	nest, err := k.Instance(500)
	if err != nil {
		b.Fatal(err)
	}
	opt := core.Options{Cache: cache.DM8K, Seed: 13}
	obj, box, err := core.TileObjective(nest, opt)
	if err != nil {
		b.Fatal(err)
	}
	extents := make([]int64, nest.Depth())
	for d := range extents {
		extents[d] = box.Extent(d)
	}
	problem := search.TileProblem(extents, obj)
	accesses := float64(164 * len(nest.Refs))

	b.Run("random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := search.Random(problem, 450, 13)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*res.BestValue/accesses, "repl%/after")
		}
	})
	b.Run("hillclimb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := search.HillClimb(problem, 450, 13)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*res.BestValue/accesses, "repl%/after")
		}
	})
	b.Run("anneal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := search.Anneal(problem, 450, 13)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*res.BestValue/accesses, "repl%/after")
		}
	})
	b.Run("ga", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.OptimizeTiling(context.Background(), nest, opt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*res.After.ReplacementRatio, "repl%/after")
		}
	})
}

// BenchmarkAssociativitySweep extends the paper: post-tiling replacement
// ratios as associativity grows at constant capacity — associativity
// absorbs part of the conflict residue the paper attacks with padding.
func BenchmarkAssociativitySweep(b *testing.B) {
	k, _ := kernels.Get("MM")
	nest, err := k.Instance(200)
	if err != nil {
		b.Fatal(err)
	}
	for _, assoc := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "direct", 2: "2way", 4: "4way"}[assoc], func(b *testing.B) {
			cfg := cache.Config{Size: 8192, LineSize: 32, Assoc: assoc}
			for i := 0; i < b.N; i++ {
				res, err := core.OptimizeTiling(context.Background(), nest, core.Options{Cache: cfg, Seed: 21})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*res.Before.ReplacementRatio, "repl%/before")
				b.ReportMetric(100*res.After.ReplacementRatio, "repl%/after")
			}
		})
	}
}

// BenchmarkBaselinesVsGA compares the related-work tile selectors (§5)
// against the GA on matrix multiply, reporting each selector's ratio.
func BenchmarkBaselinesVsGA(b *testing.B) {
	k, _ := kernels.Get("MM")
	nest, err := k.Instance(200)
	if err != nil {
		b.Fatal(err)
	}
	box, _ := tiling.Box(nest)
	sample := sampling.Draw(box, 1000, rand.New(rand.NewPCG(9, 9)))
	evalTile := func(tile []int64) float64 {
		an, err := cme.NewAnalyzer(nest, iterspace.NewTiled(box, tile), cache.DM8K)
		if err != nil {
			b.Fatal(err)
		}
		return sample.Evaluate(an).ReplacementRatio()
	}
	for _, sel := range baselines.All() {
		b.Run(sel.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tile, err := sel.Select(nest, cache.DM8K)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*evalTile(tile), "repl%/after")
			}
		})
	}
	b.Run("ga", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.OptimizeTiling(context.Background(), nest, core.Options{Cache: cache.DM8K, Seed: 9})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*evalTile(res.Tile), "repl%/after")
		}
	})
}

// BenchmarkOrderSearch compares the fixed-order tile search against the
// extension that also searches the interchange order of the tile loops.
func BenchmarkOrderSearch(b *testing.B) {
	k, _ := kernels.Get("T3DJIK")
	nest, err := k.Instance(100)
	if err != nil {
		b.Fatal(err)
	}
	opt := core.Options{Cache: cache.DM8K, Seed: 31}
	b.Run("fixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.OptimizeTiling(context.Background(), nest, opt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*res.After.ReplacementRatio, "repl%/after")
		}
	})
	b.Run("ordered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.OptimizeTilingOrder(context.Background(), nest, opt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*res.After.ReplacementRatio, "repl%/after")
		}
	})
}

// BenchmarkAblationCrossover compares recombination operators on the real
// tile objective (the paper uses single-point, Figure 5).
func BenchmarkAblationCrossover(b *testing.B) {
	k, _ := kernels.Get("MM")
	nest, err := k.Instance(200)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []ga.CrossoverKind{ga.SinglePoint, ga.TwoPoint, ga.Uniform} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := core.Options{Cache: cache.DM8K, Seed: 5}
				gaCfg := ga.PaperConfig(5)
				gaCfg.Crossover = kind
				opt.GA = gaCfg
				res, err := core.OptimizeTiling(context.Background(), nest, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*res.After.ReplacementRatio, "repl%/after")
			}
		})
	}
}

// BenchmarkAblationAlphabet compares gene alphabet widths: the paper's
// 2-bit alphabet {00,01,10,11} (§3.3) against 1-bit and 3-bit genes, on
// the raw GA over the real objective.
func BenchmarkAblationAlphabet(b *testing.B) {
	k, _ := kernels.Get("MM")
	nest, err := k.Instance(200)
	if err != nil {
		b.Fatal(err)
	}
	obj, box, err := core.TileObjective(nest, core.Options{Cache: cache.DM8K, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	extents := make([]int64, nest.Depth())
	for d := range extents {
		extents[d] = box.Extent(d)
	}
	accesses := float64(164 * len(nest.Refs))
	for _, geneBits := range []int{1, 2, 3} {
		name := map[int]string{1: "bits1", 2: "bits2", 3: "bits3"}[geneBits]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := ga.NewTileSpecBits(extents, geneBits)
				cfg := ga.PaperConfig(5)
				cfg.MutationProb = 1.0 / (2 * float64(spec.TotalBits()))
				res, err := ga.Run(context.Background(), spec, func(v []int64) float64 {
					t := make([]int64, len(v))
					for d := range v {
						t[d] = v[d]
						if t[d] > extents[d] {
							t[d] = extents[d]
						}
						if t[d] < 1 {
							t[d] = 1
						}
					}
					return obj(t)
				}, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*res.BestValue/accesses, "repl%/best")
			}
		})
	}
}

// BenchmarkIterspaceTraversal times the Next/Prev primitives that the
// backward interference walk is built from.
func BenchmarkIterspaceTraversal(b *testing.B) {
	box := iterspace.NewBox([]int64{1, 1, 1}, []int64{500, 500, 500})
	spaces := map[string]iterspace.Space{
		"box":      box,
		"tiled":    iterspace.NewTiled(box, []int64{32, 16, 8}),
		"permuted": iterspace.NewPermutedTiled(box, []int64{32, 16, 8}, []int{2, 0, 1}),
	}
	for name, sp := range spaces {
		b.Run(name+"/next", func(b *testing.B) {
			p := make([]int64, sp.NumCoords())
			sp.First(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !sp.Next(p) {
					sp.First(p)
				}
			}
		})
		b.Run(name+"/prev", func(b *testing.B) {
			p := make([]int64, sp.NumCoords())
			last := make([]int64, sp.NumCoords())
			sp.First(last)
			for sp.Next(last) {
				if last[0] > 3 { // a deep-enough starting point
					break
				}
			}
			copy(p, last)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !sp.Prev(p) {
					copy(p, last)
				}
			}
		})
	}
}
