package cmetiling_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the four command-line tools once per test run.
func buildTools(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	tools := map[string]string{}
	for _, name := range []string{"tilegen", "cachesim", "cmereport", "experiments"} {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		tools[name] = bin
	}
	return tools
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func runExpectError(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v: expected failure, got:\n%s", filepath.Base(bin), args, out)
	}
	return string(out)
}

// TestCLIEndToEnd drives every binary through its main paths.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t)

	// tilegen: catalog listing and a small search.
	out := run(t, tools["tilegen"], "-list")
	for _, k := range []string{"MM", "VPENTA1", "DRADFG2"} {
		if !strings.Contains(out, k) {
			t.Fatalf("tilegen -list missing %s:\n%s", k, out)
		}
	}
	out = run(t, tools["tilegen"], "-kernel", "T2D", "-size", "100", "-cache", "8k", "-seed", "3")
	if !strings.Contains(out, "best tile") || !strings.Contains(out, "tiled nest") {
		t.Fatalf("tilegen output:\n%s", out)
	}
	runExpectError(t, tools["tilegen"], "-kernel", "NOPE")
	runExpectError(t, tools["tilegen"], "-cache", "9k")

	// tilegen -file over a shipped kernel description.
	out = run(t, tools["tilegen"], "-file", "kernels/conflict.loop", "-mode", "pad")
	if !strings.Contains(out, "best padding") {
		t.Fatalf("tilegen -file -mode pad output:\n%s", out)
	}

	// cachesim: exact simulation with per-reference breakdown.
	out = run(t, tools["cachesim"], "-kernel", "T2D", "-size", "64", "-tile", "8,8")
	if !strings.Contains(out, "per-reference breakdown") || !strings.Contains(out, "conflict misses") {
		t.Fatalf("cachesim output:\n%s", out)
	}
	runExpectError(t, tools["cachesim"], "-kernel", "T2D", "-size", "64", "-tile", "8")

	// cmereport: reuse vectors and equation counts.
	out = run(t, tools["cmereport"], "-kernel", "MM", "-size", "20", "-points", "64")
	if !strings.Contains(out, "reuse vectors") || !strings.Contains(out, "cache miss equations") {
		t.Fatalf("cmereport output:\n%s", out)
	}
	out = run(t, tools["cmereport"], "-kernel", "T2D", "-size", "20", "-tile", "4,4", "-points", "32")
	if !strings.Contains(out, "convex region") {
		t.Fatalf("cmereport tiled output:\n%s", out)
	}

	// experiments: quick Table 2 regeneration.
	out = run(t, tools["experiments"], "-table2", "-quick", "-quickcap", "64", "-points", "64")
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "JACOBI3D") {
		t.Fatalf("experiments output:\n%s", out)
	}
}

// TestCLITelemetryFlags drives the observability flags added with the
// telemetry subsystem: -trace-out (JSONL event stream), -metrics (expvar
// dump on stderr), -pprof (CPU profile), and -workers parity on the
// report/simulator tools.
func TestCLITelemetryFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t)
	dir := t.TempDir()

	// tilegen -trace-out -metrics -pprof all at once.
	trace := filepath.Join(dir, "search.jsonl")
	profile := filepath.Join(dir, "cpu.pprof")
	out := run(t, tools["tilegen"], "-kernel", "T2D", "-size", "64", "-seed", "3",
		"-points", "64", "-trace-out", trace, "-metrics", "-pprof", profile)
	if !strings.Contains(out, "best tile") {
		t.Fatalf("tilegen output:\n%s", out)
	}
	// The expvar dump goes to stderr at exit (CombinedOutput captures it).
	if !strings.Contains(out, `"evaluations"`) || !strings.Contains(out, `"walk_steps"`) {
		t.Errorf("tilegen -metrics dump missing:\n%s", out)
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("trace file has %d lines:\n%s", len(lines), data)
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, `{"ev":"`) {
			t.Fatalf("trace line %d not a JSONL event: %s", i, line)
		}
	}
	if !strings.Contains(lines[0], `"ev":"search_start"`) {
		t.Errorf("trace does not open with search_start: %s", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], `"ev":"counters"`) {
		t.Errorf("trace does not close with counters: %s", lines[len(lines)-1])
	}

	if st, err := os.Stat(profile); err != nil {
		t.Errorf("pprof file: %v", err)
	} else if st.Size() == 0 {
		t.Error("pprof file is empty")
	}

	// -trace-out appends: a second run must extend, not truncate.
	run(t, tools["tilegen"], "-kernel", "T2D", "-size", "64", "-seed", "3",
		"-points", "64", "-trace-out", trace)
	data2, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(data2) <= len(data) || !strings.HasPrefix(string(data2), string(data)) {
		t.Error("-trace-out did not append to the existing file")
	}

	// experiments accepts the same flags.
	trace2 := filepath.Join(dir, "experiments.jsonl")
	out = run(t, tools["experiments"], "-sampling", "-quick", "-quickcap", "64",
		"-points", "64", "-trace-out", trace2, "-metrics")
	if !strings.Contains(out, "Sampling validation") {
		t.Fatalf("experiments output:\n%s", out)
	}
	if _, err := os.Stat(trace2); err != nil {
		t.Errorf("experiments trace file: %v", err)
	}

	// -workers parity: the reporting tools accept it and the output is
	// identical for any worker count.
	serial := run(t, tools["cmereport"], "-kernel", "MM", "-size", "20", "-points", "64", "-workers", "1")
	parallel := run(t, tools["cmereport"], "-kernel", "MM", "-size", "20", "-points", "64", "-workers", "8")
	if serial != parallel {
		t.Errorf("cmereport output differs across -workers:\n--- 1 ---\n%s--- 8 ---\n%s", serial, parallel)
	}
	serial = run(t, tools["cachesim"], "-kernel", "T2D", "-size", "64", "-workers", "1")
	parallel = run(t, tools["cachesim"], "-kernel", "T2D", "-size", "64", "-workers", "4")
	if serial != parallel {
		t.Errorf("cachesim output differs across -workers:\n--- 1 ---\n%s--- 4 ---\n%s", serial, parallel)
	}
}
