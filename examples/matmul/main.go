// Matmul walkthrough: run the tile search on the Figure-1 matrix multiply,
// then validate the analytical result against the exact trace-driven cache
// simulator — the sampled CME estimate and the full simulation must agree.
package main

import (
	"context"
	"fmt"
	"log"

	cmetiling "repro"
)

func main() {
	kernel, _ := cmetiling.GetKernel("MM")
	// N=120 keeps the full 120³ x 4 access trace simulable in moments
	// while avoiding power-of-two array strides (which alias mod the
	// cache size and would need padding rather than tiling).
	nest, err := kernel.Instance(120)
	if err != nil {
		log.Fatal(err)
	}
	cfg := cmetiling.DM8K

	// 1. Analytical search (sampled CMEs + GA).
	res, err := cmetiling.OptimizeTiling(context.Background(), nest, cmetiling.Options{Cache: cfg, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GA tile %v after %d generations\n", res.Tile, res.GA.Generations)
	fmt.Printf("sampled estimate:   %.2f%% -> %.2f%% replacement misses\n",
		100*res.Before.ReplacementRatio, 100*res.After.ReplacementRatio)

	// 2. Ground truth: simulate the complete reference traces.
	simBefore := cmetiling.Simulate(nest, cfg)
	simAfter := cmetiling.Simulate(res.TiledNest, cfg)
	fmt.Printf("simulated (exact):  %.2f%% -> %.2f%% replacement misses\n",
		100*simBefore.ReplacementRatio(), 100*simAfter.ReplacementRatio())

	// 3. Tiling is a pure reordering: compulsory misses are invariant.
	if simBefore.Compulsory != simAfter.Compulsory {
		log.Fatalf("compulsory misses changed: %d -> %d",
			simBefore.Compulsory, simAfter.Compulsory)
	}
	fmt.Printf("compulsory misses unchanged at %d (tiling only reorders)\n",
		simBefore.Compulsory)

	// 4. The exhaustive analytical classification equals the simulator
	// access-for-access; compare the aggregate counts here.
	exact, err := cmetiling.AnalyzeExact(nest, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if exact != simBefore {
		log.Fatalf("CME analysis %+v disagrees with simulation %+v", exact, simBefore)
	}
	fmt.Println("exhaustive CME classification matches the simulator exactly")
}
