// Quickstart: pick a benchmark kernel, run the CME+GA tile search, and
// print what the optimizer found.
package main

import (
	"context"
	"fmt"
	"log"

	cmetiling "repro"
)

func main() {
	// The catalog holds every kernel of the paper's Table 1.
	kernel, ok := cmetiling.GetKernel("MM")
	if !ok {
		log.Fatal("MM kernel not in catalog")
	}
	nest, err := kernel.Instance(500) // the paper's MM_500 configuration
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input loop nest:")
	fmt.Print(nest.String())

	// Search tile sizes for an 8KB direct-mapped cache with 32-byte
	// lines — the paper's primary configuration. The zero-value options
	// use the paper's parameters: 164 sample points per evaluation,
	// population 30, crossover 0.9, mutation 0.001, 15-25 generations.
	res, err := cmetiling.OptimizeTiling(context.Background(), nest, cmetiling.Options{
		Cache: cmetiling.DM8K,
		Seed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nbest tile vector: %v\n", res.Tile)
	fmt.Printf("replacement miss ratio: %.2f%% -> %.2f%%\n",
		100*res.Before.ReplacementRatio, 100*res.After.ReplacementRatio)
	fmt.Printf("total miss ratio:       %.2f%% -> %.2f%%\n",
		100*res.Before.MissRatio, 100*res.After.MissRatio)
	fmt.Printf("GA: %d generations, %d distinct evaluations\n",
		res.GA.Generations, res.GA.Evaluations)

	fmt.Println("\ntransformed loop nest:")
	fmt.Print(res.TiledNest.String())
}
