// Stencil sweep: tile the 3D Jacobi solver for a range of cache sizes and
// watch the selected tiles grow with the cache — the working set the GA
// discovers tracks the capacity constraint.
package main

import (
	"context"
	"fmt"
	"log"

	cmetiling "repro"
)

func main() {
	kernel, _ := cmetiling.GetKernel("JACOBI3D")
	nest, err := kernel.Instance(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("kernel: 3D 7-point Jacobi, N=100")
	fmt.Printf("%-22s %12s %12s %14s\n", "cache", "before", "after", "tile (k,j,i)")

	for _, cfg := range []cmetiling.CacheConfig{
		{Size: 4 * 1024, LineSize: 32, Assoc: 1},
		{Size: 8 * 1024, LineSize: 32, Assoc: 1},  // the paper's Figure 8
		{Size: 32 * 1024, LineSize: 32, Assoc: 1}, // the paper's Figure 9
		{Size: 8 * 1024, LineSize: 32, Assoc: 2},  // beyond the paper: 2-way
	} {
		res, err := cmetiling.OptimizeTiling(context.Background(), nest, cmetiling.Options{Cache: cfg, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22v %11.2f%% %11.2f%%   %v\n",
			cfg, 100*res.Before.ReplacementRatio, 100*res.After.ReplacementRatio, res.Tile)
	}

	fmt.Println("\nlarger caches leave fewer replacement misses to remove, and")
	fmt.Println("associativity absorbs part of the conflict residue on its own.")
}
