// Padding walkthrough (the paper's §4.3 / Table 3): on a conflict-bound
// kernel, tiling alone cannot help because the arrays alias in the cache;
// padding realigns them, and padding+tiling removes (nearly) everything.
// The joint single-genome search — the paper's stated future work — is run
// for comparison.
package main

import (
	"context"
	"fmt"
	"log"

	cmetiling "repro"
)

func main() {
	kernel, _ := cmetiling.GetKernel("VPENTA1")
	nest, err := kernel.Instance(256)
	if err != nil {
		log.Fatal(err)
	}
	cfg := cmetiling.DM8K
	opt := cmetiling.Options{Cache: cfg, Seed: 11}

	fmt.Println("kernel: VPENTA1 (NAS) — cache-aligned arrays, N=256")

	tileOnly, err := cmetiling.OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		log.Fatal(err)
	}
	padOnly, err := cmetiling.OptimizePadding(context.Background(), nest, opt)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := cmetiling.OptimizePaddingThenTiling(context.Background(), nest, opt)
	if err != nil {
		log.Fatal(err)
	}
	joint, err := cmetiling.OptimizeJoint(context.Background(), nest, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-26s %10s\n", "configuration", "repl. miss")
	fmt.Printf("%-26s %9.2f%%\n", "original", 100*tileOnly.Before.ReplacementRatio)
	fmt.Printf("%-26s %9.2f%%   tile %v\n", "tiling only", 100*tileOnly.After.ReplacementRatio, tileOnly.Tile)
	fmt.Printf("%-26s %9.2f%%   inter %v\n", "padding only", 100*padOnly.After.ReplacementRatio, padOnly.Plan.Inter)
	fmt.Printf("%-26s %9.2f%%   tile %v\n", "padding then tiling", 100*seq.Combined.ReplacementRatio, seq.Tile)
	fmt.Printf("%-26s %9.2f%%   tile %v\n", "joint (single genome)", 100*joint.Combined.ReplacementRatio, joint.Tile)

	fmt.Println("\nthe Table-3 shape: conflicts defeat tiling, padding removes them,")
	fmt.Println("and the combination approaches zero replacement misses.")
}
