// Multi-level walkthrough (extension): tile for a two-level hierarchy.
// Optimizing the small L1 alone can pick tiles that waste the L2; the
// penalty-weighted objective balances both.
package main

import (
	"context"
	"fmt"
	"log"

	cmetiling "repro"
)

func main() {
	kernel, _ := cmetiling.GetKernel("MM")
	nest, err := kernel.Instance(300)
	if err != nil {
		log.Fatal(err)
	}
	l1 := cmetiling.CacheConfig{Size: 8 * 1024, LineSize: 32, Assoc: 1}
	l2 := cmetiling.CacheConfig{Size: 64 * 1024, LineSize: 32, Assoc: 1}
	levels := []cmetiling.Level{
		{Cache: l1, MissPenalty: 10},  // L1 miss -> L2 hit: ~10 cycles
		{Cache: l2, MissPenalty: 100}, // L2 miss -> memory: ~100 cycles
	}

	fmt.Println("kernel: MM, N=300 — tiling for an L1+L2 hierarchy")

	multi, err := cmetiling.OptimizeTilingMultiLevel(context.Background(), nest, levels, cmetiling.Options{Seed: 19})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nweighted-cost tile %v: cost %.3f -> %.3f penalty-cycles/access\n",
		multi.Tile, multi.CostBefore, multi.CostAfter)
	for _, l := range multi.Levels {
		fmt.Printf("  %-22v repl %.2f%% -> %.2f%%\n", l.Level.Cache,
			100*l.Before.ReplacementRatio, 100*l.After.ReplacementRatio)
	}

	// Compare with optimizing L1 alone.
	l1only, err := cmetiling.OptimizeTiling(context.Background(), nest, cmetiling.Options{Cache: l1, Seed: 19})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nL1-only tile %v: L1 repl %.2f%% -> %.2f%%\n",
		l1only.Tile, 100*l1only.Before.ReplacementRatio, 100*l1only.After.ReplacementRatio)
	fmt.Println("(run both tiles through cmd/cachesim to compare L2 behaviour exactly)")
}
