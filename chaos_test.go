package cmetiling_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	cmetiling "repro"
)

// captureRec is a minimal facade-side Recorder buffering events for
// assertions.
type captureRec struct {
	mu     sync.Mutex
	events []cmetiling.Event
}

func (c *captureRec) Event(e cmetiling.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *captureRec) Add(cmetiling.Counters) {}

func (c *captureRec) all() []cmetiling.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]cmetiling.Event(nil), c.events...)
}

// chaosSpec arms every fault class the acceptance bar names: one
// evaluation panic, one transient checkpoint-write failure, and two
// sink I/O errors (back-to-back, so the JSONL retry has to absorb both).
const chaosSpec = "seed=11;eval.panic:after=3,times=1;checkpoint.write:after=2,times=1;sink.write:after=4,times=2"

// chaosRun is one full search under the scripted fault plan: quarantine
// policy, durable checkpoints in dir, JSONL trace through a faulty writer.
type chaosRun struct {
	res      *cmetiling.TilingResult
	trace    []byte
	ckpt     []byte // primary snapshot bytes
	prevCkpt []byte // rotated previous-good snapshot bytes
}

func runChaos(t *testing.T, dir string) chaosRun {
	t.Helper()
	plan, err := cmetiling.ParseFaultSpec(chaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	cmetiling.InstallCheckpointFaults(plan)
	t.Cleanup(func() { cmetiling.InstallCheckpointFaults(nil) })

	k, ok := cmetiling.GetKernel("MM")
	if !ok {
		t.Fatal("MM missing from catalog")
	}
	nest, err := k.Instance(40)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	sink := cmetiling.NewJSONLSink(cmetiling.FaultWriter(&trace, plan, cmetiling.FaultSinkWrite))
	path := filepath.Join(dir, "chaos.ckpt")
	opt := cmetiling.Options{
		Cache: cmetiling.DM8K, Seed: 3, SamplePoints: 64, Workers: 1,
		FailurePolicy: cmetiling.FailQuarantine,
		Observer:      sink,
		Checkpoint: func(c *cmetiling.Checkpoint) error {
			return cmetiling.SaveCheckpointFile(path, c)
		},
	}
	ctx := cmetiling.WithFaults(context.Background(), plan)
	res, err := cmetiling.OptimizeTiling(ctx, nest, opt)
	if err != nil {
		t.Fatalf("chaos run failed instead of degrading: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("trace sink did not absorb the transient sink faults: %v", err)
	}
	ckpt, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("primary checkpoint missing after chaos run: %v", err)
	}
	prev, err := os.ReadFile(cmetiling.PrevCheckpointFile(path))
	if err != nil {
		t.Fatalf("rotated checkpoint missing after chaos run: %v", err)
	}
	return chaosRun{res: res, trace: trace.Bytes(), ckpt: ckpt, prevCkpt: prev}
}

// TestChaosSearchCompletesDegraded: a search under the full scripted
// fault plan completes with a valid best-so-far tile, the broken
// candidate quarantined, an intact JSONL trace, and a loadable
// checkpoint chain.
func TestChaosSearchCompletesDegraded(t *testing.T) {
	run := runChaos(t, t.TempDir())

	if len(run.res.Tile) != 3 {
		t.Fatalf("degraded run has no valid tile: %+v", run.res.Tile)
	}
	if run.res.GA.Generations == 0 || run.res.GA.Evaluations == 0 {
		t.Fatalf("degraded run reports no work: %+v", run.res.GA)
	}
	if len(run.res.Quarantined) == 0 {
		t.Fatal("injected eval panic left no quarantine entry")
	}
	q := run.res.Quarantined[0]
	if q.Phase != "tiling" || !strings.Contains(q.Reason, "panic") {
		t.Fatalf("quarantine entry = %+v", q)
	}

	// The quarantine event must appear on the trace, and every line must
	// have survived the injected sink faults intact.
	trace := string(run.trace)
	if !strings.Contains(trace, `"ev":"evaluation_quarantined"`) {
		t.Fatalf("trace lacks the quarantine event:\n%s", trace)
	}
	for i, line := range strings.Split(strings.TrimRight(trace, "\n"), "\n") {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("trace line %d torn despite retries: %q", i, line)
		}
	}

	// Both snapshots of the rotation chain must read back and verify.
	c, err := cmetiling.ReadCheckpoint(bytes.NewReader(run.ckpt))
	if err != nil {
		t.Fatalf("primary checkpoint unreadable: %v", err)
	}
	p, err := cmetiling.ReadCheckpoint(bytes.NewReader(run.prevCkpt))
	if err != nil {
		t.Fatalf("rotated checkpoint unreadable: %v", err)
	}
	if c.Gen <= p.Gen {
		t.Fatalf("rotation order broken: primary gen %d, previous gen %d", c.Gen, p.Gen)
	}
}

// TestChaosDeterministicAcrossRuns: two searches with the same seed and
// freshly built identical fault plans are bit-identical — same tile,
// same GA trace, same quarantine list, same checkpoint bytes, same
// JSONL trace. Faults fire in the serial evaluation section, so
// scheduling cannot move them between runs.
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	a := runChaos(t, t.TempDir())
	b := runChaos(t, t.TempDir())

	if a.res.Tile[0] != b.res.Tile[0] || a.res.Tile[1] != b.res.Tile[1] || a.res.Tile[2] != b.res.Tile[2] {
		t.Fatalf("tiles diverged: %v vs %v", a.res.Tile, b.res.Tile)
	}
	if a.res.GA.BestValue != b.res.GA.BestValue || a.res.GA.Evaluations != b.res.GA.Evaluations ||
		a.res.GA.Generations != b.res.GA.Generations {
		t.Fatalf("GA traces diverged: %+v vs %+v", a.res.GA, b.res.GA)
	}
	if len(a.res.Quarantined) != len(b.res.Quarantined) {
		t.Fatalf("quarantine lists diverged: %v vs %v", a.res.Quarantined, b.res.Quarantined)
	}
	for i := range a.res.Quarantined {
		qa, qb := a.res.Quarantined[i], b.res.Quarantined[i]
		if qa.Reason != qb.Reason || qa.Phase != qb.Phase || len(qa.Values) != len(qb.Values) {
			t.Fatalf("quarantine %d diverged: %+v vs %+v", i, qa, qb)
		}
	}
	if !bytes.Equal(a.ckpt, b.ckpt) || !bytes.Equal(a.prevCkpt, b.prevCkpt) {
		t.Fatal("checkpoint bytes diverged between identical chaos runs")
	}
	if !bytes.Equal(a.trace, b.trace) {
		t.Fatalf("JSONL traces diverged:\n--- a\n%s\n--- b\n%s", a.trace, b.trace)
	}
}

// TestChaosResumeFromDegradedCheckpoint: the checkpoint chain a chaos
// run leaves behind is not just readable — a clean follow-up search can
// resume from it and converge.
func TestChaosResumeFromDegradedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	run := runChaos(t, t.TempDir())
	path := filepath.Join(dir, "resume.ckpt")
	if err := os.WriteFile(path, run.ckpt, 0o644); err != nil {
		t.Fatal(err)
	}
	c, recovered, err := cmetiling.LoadCheckpointFile(path, nil)
	if err != nil {
		t.Fatalf("chaos checkpoint not loadable: %v", err)
	}
	if recovered {
		t.Fatal("primary was valid; loader should not have fallen back")
	}
	k, _ := cmetiling.GetKernel("MM")
	nest, err := k.Instance(40)
	if err != nil {
		t.Fatal(err)
	}
	opt := cmetiling.Options{
		Cache: cmetiling.DM8K, Seed: 3, SamplePoints: 64, Workers: 1,
		ResumeFrom: c,
	}
	res, err := cmetiling.OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatalf("resume from chaos checkpoint failed: %v", err)
	}
	if res.Stopped != cmetiling.StopConverged || len(res.Tile) != 3 {
		t.Fatalf("resumed search did not converge: stopped=%v tile=%v", res.Stopped, res.Tile)
	}
}
