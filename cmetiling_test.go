package cmetiling_test

import (
	"context"
	"strings"
	"testing"

	cmetiling "repro"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow.
func TestPublicAPIQuickstart(t *testing.T) {
	k, ok := cmetiling.GetKernel("MM")
	if !ok {
		t.Fatal("MM kernel missing")
	}
	nest, err := k.Instance(100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cmetiling.OptimizeTiling(context.Background(), nest, cmetiling.Options{Cache: cmetiling.DM8K, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tile) != 3 {
		t.Fatalf("tile = %v", res.Tile)
	}
	if res.After.ReplacementRatio >= res.Before.ReplacementRatio {
		t.Fatalf("tiling did not help: %.3f -> %.3f",
			res.Before.ReplacementRatio, res.After.ReplacementRatio)
	}
}

// TestCustomNestThroughFacade builds a nest with the exported construction
// helpers and runs both the simulator and the exact analyzer on it.
func TestCustomNestThroughFacade(t *testing.T) {
	n := int64(48)
	a := &cmetiling.Array{Name: "a", Dims: []int64{n, n}, Elem: 8}
	b := &cmetiling.Array{Name: "b", Dims: []int64{n, n}, Elem: 8}
	cmetiling.LayoutArrays(0, 32, a, b)
	nest := &cmetiling.Nest{
		Name: "custom-transpose",
		Loops: []cmetiling.Loop{
			{Var: "i", Lower: cmetiling.Const(1), Upper: cmetiling.BoundOf(cmetiling.Const(n)), Step: 1},
			{Var: "j", Lower: cmetiling.Const(1), Upper: cmetiling.BoundOf(cmetiling.Const(n)), Step: 1},
		},
		Refs: []cmetiling.Ref{
			{Array: b, Subs: []cmetiling.Affine{cmetiling.Var(0), cmetiling.Var(1)}},
			{Array: a, Subs: []cmetiling.Affine{cmetiling.Var(1), cmetiling.Var(0)}, Write: true},
		},
	}
	if err := nest.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := cmetiling.CacheConfig{Size: 2048, LineSize: 32, Assoc: 1}
	sim := cmetiling.Simulate(nest, cfg)
	exact, err := cmetiling.AnalyzeExact(nest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sim != exact {
		t.Fatalf("analyzer %+v != simulator %+v", exact, sim)
	}

	tiled, err := cmetiling.ApplyTiling(nest, []int64{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	after := cmetiling.Simulate(tiled, cfg)
	if after.Replacement >= sim.Replacement {
		t.Fatalf("8x8 tiling did not reduce misses: %d -> %d", sim.Replacement, after.Replacement)
	}
	if after.Compulsory != sim.Compulsory {
		t.Fatal("tiling changed compulsory misses")
	}
}

func TestCatalogThroughFacade(t *testing.T) {
	if len(cmetiling.Kernels()) != 17 {
		t.Fatalf("catalog size = %d", len(cmetiling.Kernels()))
	}
	if cmetiling.PaperSampleSize != 164 {
		t.Fatal("PaperSampleSize")
	}
	if _, ok := cmetiling.GetKernel("nope"); ok {
		t.Fatal("unknown kernel found")
	}
}

// TestParseKernelThroughFacade: the textual front end feeds the optimizer.
func TestParseKernelThroughFacade(t *testing.T) {
	src := `
array a(64,64) real8
array b(64,64) real8
do i = 1, 64
  do j = 1, 64
    read  b(i, j)
    write a(j, i)
  end
end
`
	nest, err := cmetiling.ParseKernel(strings.NewReader(src), "custom-t2d")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cmetiling.CacheConfig{Size: 2048, LineSize: 32, Assoc: 1}
	res, err := cmetiling.OptimizeTiling(context.Background(), nest, cmetiling.Options{Cache: cfg, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.After.ReplacementRatio >= res.Before.ReplacementRatio {
		t.Fatalf("parsed kernel not improved: %v -> %v", res.Before, res.After)
	}
	if _, err := cmetiling.ParseKernel(strings.NewReader("garbage"), "bad"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := cmetiling.ParseKernelFile("/nonexistent.loop"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestShippedKernelFiles: the sample kernel files in kernels/ parse.
func TestShippedKernelFiles(t *testing.T) {
	for _, f := range []string{"kernels/transpose500.loop", "kernels/conflict.loop"} {
		nest, err := cmetiling.ParseKernelFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if err := nest.Validate(); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
	}
}
