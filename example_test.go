package cmetiling_test

import (
	"fmt"
	"strings"

	cmetiling "repro"
)

// ExampleParseKernel shows the textual front end and the exact simulator.
func ExampleParseKernel() {
	src := `
array a(64,64) real8
array b(64,64) real8
do i = 1, 64
  do j = 1, 64
    read  b(i, j)
    write a(j, i)
  end
end
`
	nest, err := cmetiling.ParseKernel(strings.NewReader(src), "t2d")
	if err != nil {
		panic(err)
	}
	st := cmetiling.Simulate(nest, cmetiling.DM8K)
	fmt.Printf("accesses=%d compulsory=%d\n", st.Accesses, st.Compulsory)
	// Output:
	// accesses=8192 compulsory=2048
}

// ExampleApplyTiling shows the Figure-3 transformation.
func ExampleApplyTiling() {
	src := `
array a(10,10) real8
array b(10,10) real8
do i = 1, 10
  do j = 1, 10
    read  b(i, j)
    write a(j, i)
  end
end
`
	nest, _ := cmetiling.ParseKernel(strings.NewReader(src), "t2d")
	tiled, err := cmetiling.ApplyTiling(nest, []int64{4, 3})
	if err != nil {
		panic(err)
	}
	fmt.Print(tiled.String())
	// Output:
	// do ii_i = 1, 10, 4
	//   do ii_j = 1, 10, 3
	//     do i = ii_i, min(ii_i+3,10)
	//       do j = ii_j, min(ii_j+2,10)
	//         read  b(i,j)
	//         write a(j,i)
}

// ExampleAnalyzeExact shows that the analytical model equals simulation.
func ExampleAnalyzeExact() {
	k, _ := cmetiling.GetKernel("T2D")
	nest, _ := k.Instance(32)
	exact, err := cmetiling.AnalyzeExact(nest, cmetiling.DM8K)
	if err != nil {
		panic(err)
	}
	sim := cmetiling.Simulate(nest, cmetiling.DM8K)
	fmt.Println(exact == sim)
	// Output:
	// true
}
