package cmetiling_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	cmetiling "repro"
)

// ExampleParseKernel shows the textual front end and the exact simulator.
func ExampleParseKernel() {
	src := `
array a(64,64) real8
array b(64,64) real8
do i = 1, 64
  do j = 1, 64
    read  b(i, j)
    write a(j, i)
  end
end
`
	nest, err := cmetiling.ParseKernel(strings.NewReader(src), "t2d")
	if err != nil {
		panic(err)
	}
	st := cmetiling.Simulate(nest, cmetiling.DM8K)
	fmt.Printf("accesses=%d compulsory=%d\n", st.Accesses, st.Compulsory)
	// Output:
	// accesses=8192 compulsory=2048
}

// ExampleApplyTiling shows the Figure-3 transformation.
func ExampleApplyTiling() {
	src := `
array a(10,10) real8
array b(10,10) real8
do i = 1, 10
  do j = 1, 10
    read  b(i, j)
    write a(j, i)
  end
end
`
	nest, _ := cmetiling.ParseKernel(strings.NewReader(src), "t2d")
	tiled, err := cmetiling.ApplyTiling(nest, []int64{4, 3})
	if err != nil {
		panic(err)
	}
	fmt.Print(tiled.String())
	// Output:
	// do ii_i = 1, 10, 4
	//   do ii_j = 1, 10, 3
	//     do i = ii_i, min(ii_i+3,10)
	//       do j = ii_j, min(ii_j+2,10)
	//         read  b(i,j)
	//         write a(j,i)
}

// ExampleNewJSONLSink shows the JSONL telemetry wire format. Attaching
// the sink through Options.Observer makes a search emit exactly these
// lines — one JSON object per event, plus a final counters line on Close;
// the two shown here are fed directly so the schema is visible.
func ExampleNewJSONLSink() {
	var buf bytes.Buffer
	sink := cmetiling.NewJSONLSink(&buf)
	// e.g. cmetiling.OptimizeTiling(ctx, nest, cmetiling.Options{Observer: sink, ...})
	sink.Event(cmetiling.SearchStartEvent{Search: "tiling", Kernel: "MM", Depth: 3,
		CacheSize: 8192, CacheLine: 32, CacheAssoc: 1, Seed: 1, SamplePoints: 164, Workers: 1})
	sink.Event(cmetiling.SearchStopEvent{Search: "tiling", Stopped: "converged",
		Generations: 25, Evaluations: 402, BestValue: 18})
	sink.Close()
	fmt.Print(buf.String())
	// Output:
	// {"ev":"search_start","search":"tiling","kernel":"MM","depth":3,"cache":"8192:32:1","seed":1,"points":164,"workers":1}
	// {"ev":"search_stop","search":"tiling","stopped":"converged","gens":25,"evals":402,"best_value":18}
	// {"ev":"counters","evaluations":0,"memo_hits":0,"sampled_points":0,"walk_steps":0,"classified_accesses":0,"walk_cap_hits":0,"pool_hits":0,"pool_misses":0,"evalcache_hits":0,"evalcache_misses":0,"evalcache_evictions":0}
}

// ExampleOptimizeTiling_fidelity shows multi-fidelity evaluation: with
// Fidelity.Rungs set, each generation is first scored on a coarse sample
// prefix and only the survivors of successive halving pay for the full
// sample. The schedule is deterministic per seed, so the result is
// reproducible at any worker count; Rungs 0 runs the classic full-fidelity
// search byte for byte.
func ExampleOptimizeTiling_fidelity() {
	k, _ := cmetiling.GetKernel("T2D")
	nest, _ := k.Instance(64)
	res, err := cmetiling.OptimizeTiling(context.Background(), nest, cmetiling.Options{
		Cache:        cmetiling.CacheConfig{Size: 2048, LineSize: 32, Assoc: 1},
		Seed:         7,
		SamplePoints: 64,
		Fidelity:     cmetiling.Fidelity{Rungs: 3},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("tile=%v stopped=%s\n", res.Tile, res.Stopped)
	// Output:
	// tile=[10 4] stopped=converged
}

// ExampleAnalyzeExact shows that the analytical model equals simulation.
func ExampleAnalyzeExact() {
	k, _ := cmetiling.GetKernel("T2D")
	nest, _ := k.Instance(32)
	exact, err := cmetiling.AnalyzeExact(nest, cmetiling.DM8K)
	if err != nil {
		panic(err)
	}
	sim := cmetiling.Simulate(nest, cmetiling.DM8K)
	fmt.Println(exact == sim)
	// Output:
	// true
}
