package cliutil

import (
	"runtime/debug"
	"testing"

	"repro/internal/cache"
)

func TestParseCache(t *testing.T) {
	if cfg, err := ParseCache("8k"); err != nil || cfg != cache.DM8K {
		t.Fatalf("8k -> %v, %v", cfg, err)
	}
	if cfg, err := ParseCache(" 32K "); err != nil || cfg != cache.DM32K {
		t.Fatalf("32K -> %v, %v", cfg, err)
	}
	cfg, err := ParseCache("16384:64:2")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Size != 16384 || cfg.LineSize != 64 || cfg.Assoc != 2 {
		t.Fatalf("custom cache = %+v", cfg)
	}
	for _, bad := range []string{"", "9k", "1:2", "a:b:c", "100:32:1", "8192:32:0"} {
		if _, err := ParseCache(bad); err == nil {
			t.Errorf("ParseCache(%q) accepted", bad)
		}
	}
}

func TestParseTile(t *testing.T) {
	tile, err := ParseTile("8, 16,4", 3)
	if err != nil {
		t.Fatal(err)
	}
	if tile[0] != 8 || tile[1] != 16 || tile[2] != 4 {
		t.Fatalf("tile = %v", tile)
	}
	if _, err := ParseTile("8,16", 3); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, err := ParseTile("8,x,4", 3); err == nil {
		t.Fatal("non-numeric accepted")
	}
}

func TestVersionString(t *testing.T) {
	orig := readBuildInfo
	defer func() { readBuildInfo = orig }()

	readBuildInfo = func() (*debug.BuildInfo, bool) { return nil, false }
	if got := VersionString("tool"); got != "tool (no build info)" {
		t.Fatalf("no build info -> %q", got)
	}

	readBuildInfo = func() (*debug.BuildInfo, bool) {
		return &debug.BuildInfo{
			GoVersion: "go1.24.0",
			Main:      debug.Module{Path: "example.com/repro", Version: ""},
			Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: "0123456789abcdef0123"},
				{Key: "vcs.time", Value: "2026-08-08T00:00:00Z"},
				{Key: "vcs.modified", Value: "true"},
			},
		}, true
	}
	got := VersionString("tilingd")
	want := "tilingd example.com/repro (devel) go1.24.0 rev 0123456789ab+dirty (2026-08-08T00:00:00Z)"
	if got != want {
		t.Fatalf("VersionString =\n%q, want\n%q", got, want)
	}

	readBuildInfo = func() (*debug.BuildInfo, bool) {
		return &debug.BuildInfo{
			GoVersion: "go1.24.0",
			Main:      debug.Module{Path: "example.com/repro", Version: "v1.2.3"},
		}, true
	}
	if got := VersionString("tilegen"); got != "tilegen example.com/repro v1.2.3 go1.24.0" {
		t.Fatalf("tagged VersionString = %q", got)
	}
}
