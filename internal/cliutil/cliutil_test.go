package cliutil

import (
	"testing"

	"repro/internal/cache"
)

func TestParseCache(t *testing.T) {
	if cfg, err := ParseCache("8k"); err != nil || cfg != cache.DM8K {
		t.Fatalf("8k -> %v, %v", cfg, err)
	}
	if cfg, err := ParseCache(" 32K "); err != nil || cfg != cache.DM32K {
		t.Fatalf("32K -> %v, %v", cfg, err)
	}
	cfg, err := ParseCache("16384:64:2")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Size != 16384 || cfg.LineSize != 64 || cfg.Assoc != 2 {
		t.Fatalf("custom cache = %+v", cfg)
	}
	for _, bad := range []string{"", "9k", "1:2", "a:b:c", "100:32:1", "8192:32:0"} {
		if _, err := ParseCache(bad); err == nil {
			t.Errorf("ParseCache(%q) accepted", bad)
		}
	}
}

func TestParseTile(t *testing.T) {
	tile, err := ParseTile("8, 16,4", 3)
	if err != nil {
		t.Fatal(err)
	}
	if tile[0] != 8 || tile[1] != 16 || tile[2] != 4 {
		t.Fatalf("tile = %v", tile)
	}
	if _, err := ParseTile("8,16", 3); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, err := ParseTile("8,x,4", 3); err == nil {
		t.Fatal("non-numeric accepted")
	}
}
