package cliutil

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ga"
	"repro/internal/retry"
	"repro/internal/telemetry"
)

func testCheckpoint(gen int) *ga.Checkpoint {
	return &ga.Checkpoint{
		Version:  1,
		Label:    "tiling",
		SpecBits: 2,
		Gen:      gen,
		Evals:    gen * 3,
		RNG:      []byte{1, 2, 3, 4},
		Pop:      [][]byte{{0, 1}},
		Memo:     []ga.MemoEntry{{Bits: []byte{0, 1}, Value: float64(gen)}},
		Best:     []int64{4},
		History:  []ga.GenStats{{Gen: gen}},
	}
}

// noSleep makes retried tests instant.
func noSleep(context.Context, time.Duration) error { return nil }

func swapRetry(t *testing.T, p retry.Policy) {
	t.Helper()
	old := checkpointRetry
	checkpointRetry = p
	t.Cleanup(func() { checkpointRetry = old })
}

func TestSaveCheckpointRotatesPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := SaveCheckpoint(path, testCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	// No previous yet: first save must not create a .prev.
	if _, err := os.Stat(PrevCheckpoint(path)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("first save created %s: %v", PrevCheckpoint(path), err)
	}
	if err := SaveCheckpoint(path, testCheckpoint(2)); err != nil {
		t.Fatal(err)
	}
	cur, recovered, err := LoadCheckpoint(path, nil)
	if err != nil || recovered {
		t.Fatalf("load primary: %v recovered=%v", err, recovered)
	}
	if cur.Gen != 2 {
		t.Fatalf("primary gen = %d, want 2", cur.Gen)
	}
	prev, err := loadCheckpointFile(PrevCheckpoint(path))
	if err != nil {
		t.Fatalf("rotated copy unreadable: %v", err)
	}
	if prev.Gen != 1 {
		t.Fatalf("rotated gen = %d, want 1", prev.Gen)
	}
}

func TestLoadCheckpointFallsBackToRotated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := SaveCheckpoint(path, testCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, testCheckpoint(2)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the primary: truncation defeats both JSON decode and sum.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	var cap telemetry.Capture
	c, recovered, err := LoadCheckpoint(path, &cap)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if !recovered || c.Gen != 1 {
		t.Fatalf("recovered=%v gen=%d, want true/1", recovered, c.Gen)
	}
	evs := cap.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %v, want one CheckpointRecovered", evs)
	}
	rec, ok := evs[0].(telemetry.CheckpointRecovered)
	if !ok || rec.Path != path || rec.Cause == "" {
		t.Fatalf("event = %#v", evs[0])
	}

	// Both copies gone/corrupt: the primary's error is reported.
	if err := os.Remove(PrevCheckpoint(path)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(path, &cap); err == nil {
		t.Fatal("load with both copies unusable succeeded")
	}
}

func TestLoadCheckpointMissingBoth(t *testing.T) {
	if _, _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "none.ckpt"), nil); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

// TestSaveCheckpointRetriesTransientFault: an injected checkpoint-write
// fault that fires once is absorbed by the retry loop — the caller sees
// success and the snapshot is on disk.
func TestSaveCheckpointRetriesTransientFault(t *testing.T) {
	swapRetry(t, retry.Policy{Attempts: 3, Sleep: noSleep})
	plan := faultinject.New(1, faultinject.Rule{Point: faultinject.CheckpointWrite, Times: 1})
	InstallFaults(plan)
	t.Cleanup(func() { InstallFaults(nil) })

	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := SaveCheckpoint(path, testCheckpoint(1)); err != nil {
		t.Fatalf("transient fault not absorbed: %v", err)
	}
	if c, _, err := LoadCheckpoint(path, nil); err != nil || c.Gen != 1 {
		t.Fatalf("snapshot after retry: %v, %v", c, err)
	}
	if hits, fired := plan.Counts(faultinject.CheckpointWrite); hits < 2 || fired != 1 {
		t.Fatalf("plan counts = %d/%d, want >=2 hits and 1 fired", hits, fired)
	}
}

// TestSaveCheckpointPersistentFaultReported: a fault on every attempt
// exhausts the retries and surfaces as an injected-fault error, with the
// previous snapshot left untouched.
func TestSaveCheckpointPersistentFaultReported(t *testing.T) {
	swapRetry(t, retry.Policy{Attempts: 3, Sleep: noSleep})
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := SaveCheckpoint(path, testCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	InstallFaults(faultinject.New(1, faultinject.Rule{Point: faultinject.CheckpointWrite}))
	t.Cleanup(func() { InstallFaults(nil) })

	err := SaveCheckpoint(path, testCheckpoint(2))
	if err == nil || !faultinject.Is(err) {
		t.Fatalf("err = %v, want wrapped *Fault", err)
	}
	// The failed save never rotated or replaced the good snapshot.
	if c, recovered, lerr := LoadCheckpoint(path, nil); lerr != nil || recovered || c.Gen != 1 {
		t.Fatalf("previous snapshot disturbed: %v recovered=%v err=%v", c, recovered, lerr)
	}
}

// TestAtExitConcurrentExitRunsCleanupsOnce: racing Fatal/Exit calls split
// the cleanup list between them; no cleanup runs twice.
func TestAtExitConcurrentExitRunsCleanupsOnce(t *testing.T) {
	oldExit := osExit
	exited := make(chan int, 8)
	osExit = func(code int) { exited <- code }
	t.Cleanup(func() { osExit = oldExit; runAtExit() })

	var mu sync.Mutex
	counts := make(map[int]int)
	const n = 32
	for i := 0; i < n; i++ {
		i := i
		AtExit(func() {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Exit(ExitErr)
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(counts) != n {
		t.Fatalf("%d cleanups ran, want %d", len(counts), n)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("cleanup %d ran %d times", i, c)
		}
	}
}

// TestAtExitIdempotentAcrossSequentialExits: a second Exit finds an empty
// registry and runs nothing again.
func TestAtExitIdempotentAcrossSequentialExits(t *testing.T) {
	oldExit := osExit
	osExit = func(int) {}
	t.Cleanup(func() { osExit = oldExit; runAtExit() })

	runs := 0
	AtExit(func() { runs++ })
	Exit(ExitOK)
	Exit(ExitOK)
	if runs != 1 {
		t.Fatalf("cleanup ran %d times", runs)
	}
}
