// Package cliutil holds the small helpers shared by the command line
// tools: cache-geometry and tile-vector parsers, a single exit path that
// flushes buffered output and runs registered cleanups, checkpoint-file
// persistence, and CPU-profile setup.
package cliutil

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/ga"
)

// ParseCache parses "8k", "32k" (the paper's two configurations) or a
// generic "size:line:assoc" byte spec.
func ParseCache(s string) (cache.Config, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "8k":
		return cache.DM8K, nil
	case "32k":
		return cache.DM32K, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) == 3 {
		size, err1 := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		line, err2 := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		assoc, err3 := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err1 == nil && err2 == nil && err3 == nil {
			cfg := cache.Config{Size: size, LineSize: line, Assoc: assoc}
			if err := cfg.Validate(); err != nil {
				return cache.Config{}, err
			}
			return cfg, nil
		}
	}
	return cache.Config{}, fmt.Errorf("bad cache %q (want 8k, 32k, or size:line:assoc)", s)
}

// ParseTile parses a comma-separated tile vector of the given rank.
func ParseTile(s string, depth int) ([]int64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != depth {
		return nil, fmt.Errorf("tile %q has %d entries for a depth-%d nest", s, len(parts), depth)
	}
	tile := make([]int64, depth)
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad tile entry %q", p)
		}
		tile[i] = v
	}
	return tile, nil
}

// osExit is swapped out by tests.
var osExit = os.Exit

// atExit holds the cleanups Exit runs before terminating. Exit calls
// os.Exit, so ordinary defers never fire in the tools; anything that must
// flush on the way out (telemetry sinks, CPU profiles) registers here.
var atExit []func()

// AtExit registers fn to run when Exit (or Fatal) terminates the process.
// Functions run in reverse registration order, each at most once.
func AtExit(fn func()) { atExit = append(atExit, fn) }

// runAtExit runs and clears the registered cleanups, LIFO.
func runAtExit() {
	for i := len(atExit) - 1; i >= 0; i-- {
		atExit[i]()
	}
	atExit = nil
}

// Exit is the single exit path for the command line tools: it runs the
// AtExit cleanups, then flushes stdout and stderr (best-effort; pipes and
// terminals report ENOTTY/EINVAL on Sync, which is fine) so a bounded or
// interrupted run never loses its partially written report, then
// terminates with the given code.
func Exit(code int) {
	runAtExit()
	_ = os.Stdout.Sync()
	_ = os.Stderr.Sync()
	osExit(code)
}

// StartCPUProfile begins a CPU profile written to path and registers its
// stop via AtExit, so the profile survives both normal exits and Fatal.
func StartCPUProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	AtExit(func() {
		pprof.StopCPUProfile()
		f.Close()
	})
	return nil
}

// Fatal reports err on stderr prefixed with the tool name and exits 1
// through Exit.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	Exit(1)
}

// SaveCheckpoint atomically writes a search snapshot to path: it writes a
// temporary file in the same directory and renames it into place, so an
// interrupt mid-write can never leave a truncated checkpoint behind.
func SaveCheckpoint(path string, c *ga.Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := ga.WriteCheckpoint(tmp, c); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadCheckpoint reads a snapshot previously written by SaveCheckpoint.
func LoadCheckpoint(path string) (*ga.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ga.ReadCheckpoint(f)
}
