// Package cliutil holds the small argument parsers shared by the command
// line tools: cache-geometry specs and tile vectors.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cache"
)

// ParseCache parses "8k", "32k" (the paper's two configurations) or a
// generic "size:line:assoc" byte spec.
func ParseCache(s string) (cache.Config, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "8k":
		return cache.DM8K, nil
	case "32k":
		return cache.DM32K, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) == 3 {
		size, err1 := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		line, err2 := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		assoc, err3 := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err1 == nil && err2 == nil && err3 == nil {
			cfg := cache.Config{Size: size, LineSize: line, Assoc: assoc}
			if err := cfg.Validate(); err != nil {
				return cache.Config{}, err
			}
			return cfg, nil
		}
	}
	return cache.Config{}, fmt.Errorf("bad cache %q (want 8k, 32k, or size:line:assoc)", s)
}

// ParseTile parses a comma-separated tile vector of the given rank.
func ParseTile(s string, depth int) ([]int64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != depth {
		return nil, fmt.Errorf("tile %q has %d entries for a depth-%d nest", s, len(parts), depth)
	}
	tile := make([]int64, depth)
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad tile entry %q", p)
		}
		tile[i] = v
	}
	return tile, nil
}
