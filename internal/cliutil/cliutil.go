// Package cliutil holds the small helpers shared by the command line
// tools: cache-geometry and tile-vector parsers, a single exit path that
// flushes buffered output and runs registered cleanups, checkpoint-file
// persistence, and CPU-profile setup.
package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/ga"
	"repro/internal/retry"
	"repro/internal/telemetry"
)

// Process exit codes shared by the command line tools. Degraded means the
// run completed and produced a usable result, but only by tolerating
// faults (quarantined evaluations, a checkpoint save that fell back, or a
// resume from the rotated previous-good snapshot); scripts that need
// strictly clean runs can distinguish it from full success.
const (
	ExitOK          = 0
	ExitErr         = 1
	ExitUsage       = 2
	ExitDegraded    = 3
	ExitInterrupted = 130
)

// ParseCache parses "8k", "32k" (the paper's two configurations) or a
// generic "size:line:assoc" byte spec.
func ParseCache(s string) (cache.Config, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "8k":
		return cache.DM8K, nil
	case "32k":
		return cache.DM32K, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) == 3 {
		size, err1 := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		line, err2 := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		assoc, err3 := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err1 == nil && err2 == nil && err3 == nil {
			cfg := cache.Config{Size: size, LineSize: line, Assoc: assoc}
			if err := cfg.Validate(); err != nil {
				return cache.Config{}, err
			}
			return cfg, nil
		}
	}
	return cache.Config{}, fmt.Errorf("bad cache %q (want 8k, 32k, or size:line:assoc)", s)
}

// ParseTile parses a comma-separated tile vector of the given rank.
func ParseTile(s string, depth int) ([]int64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != depth {
		return nil, fmt.Errorf("tile %q has %d entries for a depth-%d nest", s, len(parts), depth)
	}
	tile := make([]int64, depth)
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad tile entry %q", p)
		}
		tile[i] = v
	}
	return tile, nil
}

// readBuildInfo is swapped out by tests.
var readBuildInfo = debug.ReadBuildInfo

// VersionString renders the tool's build identity from the build info the
// Go linker embeds in every binary: module path and version, the Go
// toolchain, and — when the build ran inside a VCS checkout — the revision,
// its commit time, and whether the tree was dirty.
func VersionString(tool string) string {
	bi, ok := readBuildInfo()
	if !ok {
		return tool + " (no build info)"
	}
	var b strings.Builder
	version := bi.Main.Version
	if version == "" {
		version = "(devel)"
	}
	fmt.Fprintf(&b, "%s %s %s", tool, bi.Main.Path, version)
	if bi.GoVersion != "" {
		fmt.Fprintf(&b, " %s", bi.GoVersion)
	}
	var rev, at, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			at = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " rev %s", rev)
		if modified == "true" {
			b.WriteString("+dirty")
		}
		if at != "" {
			fmt.Fprintf(&b, " (%s)", at)
		}
	}
	return b.String()
}

// VersionFlag registers the shared -version flag on the default flag set.
// Call before flag.Parse; after parsing, pass the returned pointer to
// HandleVersion.
func VersionFlag() *bool {
	return flag.Bool("version", false, "print build information and exit")
}

// HandleVersion prints the tool's VersionString and exits cleanly when the
// -version flag was given; otherwise it is a no-op. Call right after
// flag.Parse.
func HandleVersion(tool string, requested *bool) {
	if requested != nil && *requested {
		fmt.Println(VersionString(tool))
		Exit(ExitOK)
	}
}

// osExit is swapped out by tests.
var osExit = os.Exit

// atExit holds the cleanups Exit runs before terminating. Exit calls
// os.Exit, so ordinary defers never fire in the tools; anything that must
// flush on the way out (telemetry sinks, CPU profiles) registers here.
// The registry is mutex-guarded: Fatal can race with itself (a signal
// handler and a failing main loop exiting together), and each cleanup
// must still run at most once.
var (
	atExitMu sync.Mutex
	atExit   []func()
)

// AtExit registers fn to run when Exit (or Fatal) terminates the process.
// Functions run in reverse registration order, each at most once, even
// when Exit is reached concurrently from several goroutines.
func AtExit(fn func()) {
	atExitMu.Lock()
	atExit = append(atExit, fn)
	atExitMu.Unlock()
}

// runAtExit drains the registered cleanups, LIFO. Each function is popped
// under the lock before it runs, so two racing Exit calls split the list
// between them rather than both running every cleanup.
func runAtExit() {
	for {
		atExitMu.Lock()
		n := len(atExit)
		if n == 0 {
			atExitMu.Unlock()
			return
		}
		fn := atExit[n-1]
		atExit = atExit[:n-1]
		atExitMu.Unlock()
		fn()
	}
}

// Exit is the single exit path for the command line tools: it runs the
// AtExit cleanups, then flushes stdout and stderr (best-effort; pipes and
// terminals report ENOTTY/EINVAL on Sync, which is fine) so a bounded or
// interrupted run never loses its partially written report, then
// terminates with the given code.
func Exit(code int) {
	runAtExit()
	_ = os.Stdout.Sync()
	_ = os.Stderr.Sync()
	osExit(code)
}

// StartCPUProfile begins a CPU profile written to path and registers its
// stop via AtExit, so the profile survives both normal exits and Fatal.
func StartCPUProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	AtExit(func() {
		pprof.StopCPUProfile()
		f.Close()
	})
	return nil
}

// Fatal reports err on stderr prefixed with the tool name and exits
// ExitErr through Exit. Safe to call concurrently (e.g. from a signal
// handler racing a failing main loop): the AtExit cleanups still run at
// most once between the racing calls.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	Exit(ExitErr)
}

// faults is the fault-injection plan the checkpoint persistence paths
// consult; nil (the default) disables injection. The CLIs install the
// plan parsed from -fault-spec so chaos runs exercise the same code the
// production path runs.
var (
	faultsMu sync.Mutex
	faults   *faultinject.Plan
)

// InstallFaults arms (or, with nil, disarms) fault injection for this
// package's checkpoint persistence.
func InstallFaults(p *faultinject.Plan) {
	faultsMu.Lock()
	faults = p
	faultsMu.Unlock()
}

// installedFaults returns the current plan (possibly nil).
func installedFaults() *faultinject.Plan {
	faultsMu.Lock()
	defer faultsMu.Unlock()
	return faults
}

// checkpointRetry bounds the retries SaveCheckpoint spends absorbing
// transient write failures; tests swap in a fake clock.
var checkpointRetry = retry.Policy{}

// PrevCheckpoint returns the rotated previous-good path for a checkpoint
// file ("<path>.prev").
func PrevCheckpoint(path string) string { return path + ".prev" }

// SaveCheckpoint durably writes a search snapshot to path:
//
//  1. the snapshot is written to a temporary file in the same directory
//     and fsynced, so the bytes are on stable storage before any rename;
//  2. the existing checkpoint (if any) is rotated to "<path>.prev",
//     keeping one previous-good generation recoverable;
//  3. the temporary file is renamed over path and the directory entry is
//     synced (best-effort — not every filesystem supports it).
//
// A crash at any point leaves either the old snapshot at path or a
// complete new one, never a truncated file; at worst path is briefly
// missing while "<path>.prev" holds the previous generation, which
// LoadCheckpoint falls back to. Transient failures are retried with
// capped exponential backoff before the error is reported.
func SaveCheckpoint(path string, c *ga.Checkpoint) error {
	plan := installedFaults()
	return checkpointRetry.Do(context.Background(), func() error {
		if err := plan.Fire(context.Background(), faultinject.CheckpointWrite); err != nil {
			return err
		}
		return saveCheckpointOnce(path, c)
	})
}

// saveCheckpointOnce is one durable write attempt.
func saveCheckpointOnce(path string, c *ga.Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := ga.WriteCheckpoint(tmp, c); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// Rotate only after the replacement is safely on disk, so a failed
	// write never disturbs the current snapshot.
	if err := os.Rename(path, PrevCheckpoint(path)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// CheckpointLoadError is the typed error LoadCheckpoint returns when
// neither the primary snapshot nor its rotated previous-good copy is
// usable. It keeps both underlying errors so callers (and operators
// reading logs) can tell a doubly-corrupt state from a doubly-failed
// read; errors.Is/As see through to both via Unwrap.
type CheckpointLoadError struct {
	// Path is the primary checkpoint path.
	Path string
	// Primary and Previous are the load failures of path and
	// PrevCheckpoint(path) respectively.
	Primary  error
	Previous error
}

// Error implements error.
func (e *CheckpointLoadError) Error() string {
	return fmt.Sprintf("checkpoint %s: no usable snapshot: primary (%s): %v; previous (%s): %v",
		e.Path, ClassifyCheckpointError(e.Primary), e.Primary,
		ClassifyCheckpointError(e.Previous), e.Previous)
}

// Unwrap exposes both underlying errors to errors.Is/As.
func (e *CheckpointLoadError) Unwrap() []error { return []error{e.Primary, e.Previous} }

// ClassifyCheckpointError maps a checkpoint load failure onto the cause
// class reported in CheckpointRecovered telemetry: "missing" (the file
// does not exist), "corrupt" (the bytes were read but failed decoding or
// the integrity sum), or "io" (the read itself failed). Returns "" for a
// nil error.
func ClassifyCheckpointError(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, fs.ErrNotExist):
		return "missing"
	case errors.Is(err, ga.ErrCheckpointCorrupt):
		return "corrupt"
	default:
		return "io"
	}
}

// LoadCheckpoint reads a snapshot previously written by SaveCheckpoint,
// falling back to the rotated previous-good copy ("<path>.prev") when the
// primary is missing, truncated or fails its integrity sum. recovered
// reports that the fallback was used — the caller resumed one generation
// behind — and the event is also recorded on obs (which may be nil) with
// the primary's failure classified (missing, corrupt, or io) so the
// telemetry trail says *why* the primary was rejected. When both copies
// fail, the returned error is a *CheckpointLoadError carrying both causes.
func LoadCheckpoint(path string, obs telemetry.Recorder) (c *ga.Checkpoint, recovered bool, err error) {
	c, err = loadCheckpointFile(path)
	if err == nil {
		return c, false, nil
	}
	prev, perr := loadCheckpointFile(PrevCheckpoint(path))
	if perr != nil {
		return nil, false, &CheckpointLoadError{Path: path, Primary: err, Previous: perr}
	}
	if obs != nil {
		obs.Event(telemetry.CheckpointRecovered{
			Path: path, Cause: err.Error(), Class: ClassifyCheckpointError(err),
		})
	}
	return prev, true, nil
}

// loadCheckpointFile reads and verifies one snapshot file.
func loadCheckpointFile(path string) (*ga.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ga.ReadCheckpoint(f)
}
