// Package padding implements the array-padding transformation the paper
// combines with tiling for kernels whose residual misses are conflicts
// (§4.3, reference [28]): inter-array padding shifts an array's base
// address, intra-array padding enlarges its leading dimension. Padding
// parameters are expressed in elements and searched with the same genetic
// algorithm as tile sizes.
package padding

import (
	"fmt"

	"repro/internal/ir"
)

// Plan holds the padding applied to each distinct array of a nest, in
// first-use order (ir.Nest.Arrays). Units are array elements.
type Plan struct {
	// Inter[i] elements are added before array i (base-address shift).
	Inter []int64
	// Intra[i] elements are added to array i's leading (fastest) dimension.
	Intra []int64
}

// Zero returns the identity plan for the nest.
func Zero(nest *ir.Nest) Plan {
	n := len(nest.Arrays())
	return Plan{Inter: make([]int64, n), Intra: make([]int64, n)}
}

// Validate checks the plan against the nest.
func (p Plan) Validate(nest *ir.Nest) error {
	arrays := nest.Arrays()
	if len(p.Inter) != len(arrays) || len(p.Intra) != len(arrays) {
		return fmt.Errorf("padding: plan covers %d/%d arrays, nest has %d",
			len(p.Inter), len(p.Intra), len(arrays))
	}
	for i := range p.Inter {
		if p.Inter[i] < 0 || p.Intra[i] < 0 {
			return fmt.Errorf("padding: negative padding for array %s", arrays[i].Name)
		}
	}
	return nil
}

// Apply returns a deep copy of the nest with the plan's padding applied:
// array i gets BasePad += Inter[i]·Elem and Pad[fastest] += Intra[i].
// The original nest and its arrays are not modified.
func Apply(nest *ir.Nest, p Plan) (*ir.Nest, error) {
	if err := p.Validate(nest); err != nil {
		return nil, err
	}
	arrays := nest.Arrays()
	clone := make(map[*ir.Array]*ir.Array, len(arrays))
	for i, a := range arrays {
		c := *a
		c.Dims = append([]int64(nil), a.Dims...)
		if a.Pad != nil {
			c.Pad = append([]int64(nil), a.Pad...)
		} else {
			c.Pad = make([]int64, len(a.Dims))
		}
		c.BasePad += p.Inter[i] * a.Elem
		c.Pad[fastestDim(a)] += p.Intra[i]
		clone[a] = &c
	}
	out := &ir.Nest{
		Name:  nest.Name + "_padded",
		Loops: append([]ir.Loop(nil), nest.Loops...),
		Refs:  make([]ir.Ref, len(nest.Refs)),
	}
	for i := range nest.Refs {
		r := nest.Refs[i]
		r.Array = clone[r.Array]
		out.Refs[i] = r
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("padding: produced invalid nest: %w", err)
	}
	return out, nil
}

// fastestDim returns the dimension with the smallest stride.
func fastestDim(a *ir.Array) int {
	strides := a.Strides()
	best := 0
	for d := 1; d < len(strides); d++ {
		if strides[d] < strides[best] {
			best = d
		}
	}
	return best
}

// SearchRanges returns sensible genome ranges for the nest under a cache
// with the given line size and total size (both in bytes): inter-array
// padding up to one cache's worth of elements (enough to move any array to
// any set alignment) and intra-array padding up to a few lines' worth of
// elements.
func SearchRanges(nest *ir.Nest, cacheSize, lineSize int64) (interMax, intraMax []int64) {
	arrays := nest.Arrays()
	interMax = make([]int64, len(arrays))
	intraMax = make([]int64, len(arrays))
	for i, a := range arrays {
		interMax[i] = cacheSize / a.Elem
		intraMax[i] = 8 * lineSize / a.Elem
	}
	return interMax, intraMax
}
