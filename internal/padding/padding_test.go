package padding

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/expr"
	"repro/internal/ir"
)

// pingpong builds a kernel whose two arrays alias perfectly in a small
// cache: do i=1,n { read x(i); read y(i); write x(i) } with y exactly one
// cache-size after x.
func pingpong(n, cacheSize int64) *ir.Nest {
	x := &ir.Array{Name: "x", Dims: []int64{n}, Elem: 8, Base: 0}
	y := &ir.Array{Name: "y", Dims: []int64{n}, Elem: 8, Base: cacheSize}
	return &ir.Nest{
		Name: "pingpong",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: x, Subs: []expr.Affine{expr.Var(0)}},
			{Array: y, Subs: []expr.Affine{expr.Var(0)}},
			{Array: x, Subs: []expr.Affine{expr.Var(0)}, Write: true},
		},
	}
}

func TestZeroPlanIsIdentity(t *testing.T) {
	nest := pingpong(64, 512)
	padded, err := Apply(nest, Zero(nest))
	if err != nil {
		t.Fatal(err)
	}
	for i := range nest.Refs {
		a := nest.Refs[i].Address([]int64{17})
		b := padded.Refs[i].Address([]int64{17})
		if a != b {
			t.Fatalf("zero plan moved ref %d: %d -> %d", i, a, b)
		}
	}
}

func TestInterPaddingRemovesConflicts(t *testing.T) {
	cfg := cache.Config{Size: 512, LineSize: 32, Assoc: 1}
	nest := pingpong(64, cfg.Size)
	before := cachesim.SimulateNest(nest, cfg)
	if before.ReplacementRatio() < 0.5 {
		t.Fatalf("expected heavy ping-pong, got %v", before)
	}
	// Shift y by half a cache: conflicts vanish.
	plan := Zero(nest)
	plan.Inter[1] = cfg.Size / 2 / 8
	padded, err := Apply(nest, plan)
	if err != nil {
		t.Fatal(err)
	}
	after := cachesim.SimulateNest(padded, cfg)
	if after.Replacement != 0 {
		t.Fatalf("padding left %d replacement misses", after.Replacement)
	}
	// Compulsory misses unchanged by padding of whole lines.
	if after.Compulsory != before.Compulsory {
		t.Fatalf("compulsory changed: %d -> %d", before.Compulsory, after.Compulsory)
	}
	// Original nest untouched.
	again := cachesim.SimulateNest(nest, cfg)
	if again != before {
		t.Fatal("Apply mutated the original nest")
	}
}

func TestIntraPaddingChangesLeadingDim(t *testing.T) {
	n := int64(8)
	a := &ir.Array{Name: "a", Dims: []int64{n, n}, Elem: 8, Base: 0}
	nest := &ir.Nest{
		Name: "col",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
			{Var: "j", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: a, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}, Write: true},
		},
	}
	plan := Zero(nest)
	plan.Intra[0] = 3 // leading dimension 8 -> 11
	padded, err := Apply(nest, plan)
	if err != nil {
		t.Fatal(err)
	}
	// a(1,2) moves from 8*8 to 11*8 bytes past base.
	got := padded.Refs[0].Address([]int64{1, 2})
	if got != 11*8 {
		t.Fatalf("padded a(1,2) at %d, want 88", got)
	}
	// Shape unchanged: a(8,8) still addressable.
	if _, err := Apply(nest, plan); err != nil {
		t.Fatal(err)
	}
}

func TestSharedArrayClonedOnce(t *testing.T) {
	// x appears twice; padding must keep both refs pointing at the SAME
	// clone.
	nest := pingpong(16, 512)
	plan := Zero(nest)
	plan.Inter[0] = 4
	padded, err := Apply(nest, plan)
	if err != nil {
		t.Fatal(err)
	}
	if padded.Refs[0].Array != padded.Refs[2].Array {
		t.Fatal("shared array cloned into distinct copies")
	}
	if padded.Refs[0].Array == nest.Refs[0].Array {
		t.Fatal("clone aliases the original array")
	}
}

func TestPlanValidate(t *testing.T) {
	nest := pingpong(16, 512)
	short := Plan{Inter: []int64{1}, Intra: []int64{1}}
	if err := short.Validate(nest); err == nil {
		t.Fatal("short plan accepted")
	}
	neg := Zero(nest)
	neg.Intra[0] = -1
	if err := neg.Validate(nest); err == nil {
		t.Fatal("negative padding accepted")
	}
	if _, err := Apply(nest, neg); err == nil {
		t.Fatal("Apply accepted invalid plan")
	}
}

func TestSearchRanges(t *testing.T) {
	nest := pingpong(16, 512)
	inter, intra := SearchRanges(nest, 8192, 32)
	if len(inter) != 2 || len(intra) != 2 {
		t.Fatalf("ranges: %v %v", inter, intra)
	}
	if inter[0] != 1024 { // 8192/8
		t.Fatalf("interMax = %d", inter[0])
	}
	if intra[0] != 32 { // 8*32/8
		t.Fatalf("intraMax = %d", intra[0])
	}
}
