package telemetry

import (
	"sync"
	"testing"
)

// TestMultiNilHandling: Multi collapses nil recorders so the nil-observer
// fast path survives composition.
func TestMultiNilHandling(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() != nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) != nil")
	}
	c := &Capture{}
	if got := Multi(nil, c, nil); got != Recorder(c) {
		t.Fatalf("Multi with one live recorder returned %T, want the recorder itself", got)
	}
}

// TestMultiFanOut: every live recorder sees every event and delta, in
// order.
func TestMultiFanOut(t *testing.T) {
	a, b := &Capture{}, &Capture{}
	m := Multi(a, nil, b)
	m.Event(SearchStart{Search: "tiling", Kernel: "MM"})
	m.Event(SearchStop{Search: "tiling", Stopped: "converged"})
	m.Add(Counters{Evaluations: 3})
	m.Add(Counters{Evaluations: 2, MemoHits: 7})
	for _, c := range []*Capture{a, b} {
		evs := c.Events()
		if len(evs) != 2 || evs[0].Kind() != KindSearchStart || evs[1].Kind() != KindSearchStop {
			t.Fatalf("captured events %v", evs)
		}
		if got := c.Counters(); got.Evaluations != 5 || got.MemoHits != 7 {
			t.Fatalf("counters %+v", got)
		}
	}
}

// TestCountersPlusIsZero: fieldwise sum and the zero test cover every
// field (guards against a new counter being forgotten in Plus).
func TestCountersPlusIsZero(t *testing.T) {
	one := Counters{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	if one.IsZero() || !(Counters{}).IsZero() {
		t.Fatal("IsZero misclassifies")
	}
	if got := one.Plus(one); got != (Counters{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2}) {
		t.Fatalf("Plus = %+v", got)
	}
}

// TestCaptureConcurrent: Capture is race-safe (run under -race).
func TestCaptureConcurrent(t *testing.T) {
	c := &Capture{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Event(GenerationDone{Gen: i})
				c.Add(Counters{Evaluations: 1})
			}
		}()
	}
	wg.Wait()
	if got := c.Counters().Evaluations; got != 800 {
		t.Fatalf("evaluations %d, want 800", got)
	}
	if got := len(c.Events()); got != 800 {
		t.Fatalf("events %d, want 800", got)
	}
}
