// Package telemetry defines the search observation contract: a Recorder
// receives a typed event stream (search lifecycle, per-generation reports,
// per-evaluation batches, checkpoints) plus monotonic counters measuring
// where the work of a search actually goes (objective evaluations, memo
// hits, sampled points, CME walk steps, analyzer-pool reuse).
//
// The package deliberately contains only the interface and the event/
// counter types. Concrete sinks (JSONL event log, TTY progress writer,
// expvar metrics) live in the sinks subpackage, which only the public
// facade may import: internal packages depend on the Recorder interface
// alone, keeping the dependency direction clean (enforced by
// `make verify`'s depcheck).
//
// Recorders observe; they must never influence a search. Everything
// emitted is a deterministic function of the search's inputs except the
// Elapsed fields, which carry wall-clock time for humans (the JSONL sink
// omits them by default so fixed-seed event streams are byte-identical
// across runs).
//
// A nil Recorder means no telemetry; every emission site is guarded so the
// nil path does no work and allocates nothing.
package telemetry

import (
	"sync"
	"time"
)

// Kind identifies an event type; it is the "ev" discriminator of the JSONL
// encoding.
type Kind string

// The event kinds a search emits.
const (
	KindSearchStart       Kind = "search_start"
	KindPhaseChange       Kind = "phase_change"
	KindGenerationDone    Kind = "generation"
	KindEvaluationBatch   Kind = "evaluation_batch"
	KindCheckpointWritten Kind = "checkpoint"
	KindSearchStop        Kind = "search_stop"
	// KindIslandMigration marks one ring-topology elite exchange of the
	// island-model GA: island From sent Count elites to island To at a
	// migration barrier.
	KindIslandMigration Kind = "island_migration"
	// KindEvaluationRung marks one completed rung of the multi-fidelity
	// successive-halving ladder: a candidate cohort was scored on a sample
	// prefix and the bottom fraction pruned.
	KindEvaluationRung Kind = "evaluation_rung"
	// KindEvaluationQuarantined and KindCheckpointRecovered are the
	// fault-tolerance events: a candidate whose evaluation failed was
	// assigned worst fitness and set aside, or a corrupt/missing primary
	// checkpoint was replaced by its rotated previous-good copy.
	KindEvaluationQuarantined Kind = "evaluation_quarantined"
	KindCheckpointRecovered   Kind = "checkpoint_recovered"
	// The durability events: a request replayed from the crash-safe
	// journal at startup (resumed from a snapshot or re-run), and a
	// journal record quarantined during replay because it was torn,
	// failed its CRC, or tripped the journal.replay fault point.
	KindJournalRecovered Kind = "journal_recovered"
	KindJournalSkipped   Kind = "journal_skipped"
	// The server events: the admission, cache, degradation and drain
	// lifecycle of one tiling-service request (emitted by internal/server).
	KindRequestAccepted Kind = "request_accepted"
	KindRequestShed     Kind = "request_shed"
	KindRequestDone     Kind = "request_done"
	KindBreakerState    Kind = "breaker_state"
	KindServerDrained   Kind = "server_drained"
	// The shared evaluation-cache events: a lookup recalled a finished
	// result across searches/requests, a lookup found nothing, or a
	// size-bound eviction batch ran (emitted by internal/evalcache).
	KindEvalCacheHit   Kind = "evalcache_hit"
	KindEvalCacheMiss  Kind = "evalcache_miss"
	KindEvalCacheEvict Kind = "evalcache_evict"
)

// Event is one typed occurrence in a search's life. The concrete types are
// the exhaustive set of structs below; sinks switch on them.
type Event interface {
	// Kind returns the event's wire discriminator.
	Kind() Kind
}

// SearchStart opens a search's event stream: what is being searched, over
// which kernel, against which cache, with which determinism-relevant
// parameters.
type SearchStart struct {
	// Search is the search label ("tiling", "padding", "tiling-order",
	// "multilevel", "joint").
	Search string
	// Kernel and Depth identify the loop nest.
	Kernel string
	Depth  int
	// CacheSize/CacheLine/CacheAssoc are the target cache geometry in the
	// size:line:assoc form the CLIs accept.
	CacheSize  int64
	CacheLine  int64
	CacheAssoc int
	// Seed, SamplePoints and Workers are the resolved search parameters.
	Seed         uint64
	SamplePoints int
	Workers      int
}

// Kind implements Event.
func (SearchStart) Kind() Kind { return KindSearchStart }

// PhaseChange marks a transition inside a search: the phases of a
// composite search (padding then tiling) and the finalisation tail that
// re-evaluates the winning candidate.
type PhaseChange struct {
	Search string
	Phase  string
}

// Kind implements Event.
func (PhaseChange) Kind() Kind { return KindPhaseChange }

// GenerationDone reports one completed GA generation (generation 0 is the
// initial population). It carries exactly the information the legacy
// per-generation Progress callback received; that callback is now an
// adapter over this event.
type GenerationDone struct {
	// Search is the GA phase label.
	Search string
	// Island is the 1-based island index of the deme that completed the
	// generation; 0 means a classic single-population run. The index is a
	// deterministic function of the GA seed and island count, never of
	// goroutine scheduling.
	Island int
	// Gen is the generation just recorded.
	Gen int
	// Best and Avg are the generation's best (lowest) and average
	// objective values; BestEver is the best across the whole run.
	Best, Avg, BestEver float64
	// Evaluations and MemoHits count distinct objective evaluations and
	// memo-table recalls so far in the run.
	Evaluations int
	MemoHits    int
	// Elapsed is wall-clock time since the run started. It is the one
	// non-deterministic field; deterministic sinks omit it.
	Elapsed time.Duration
}

// Kind implements Event.
func (GenerationDone) Kind() Kind { return KindGenerationDone }

// EvaluationBatch reports one objective evaluation: the fixed sample
// classified against one candidate's iteration space, with the aggregate
// outcome counts and the interference-walk cost it took to compute them.
type EvaluationBatch struct {
	// Island is the 1-based island index whose objective evaluation this
	// batch served; 0 means a single-population run. Unlike generation
	// events, batches from concurrent islands may interleave in stream
	// order (their contents stay deterministic per island).
	Island int
	// Points is the number of sampled iteration points classified.
	Points int
	// Accesses/Hits/Compulsory/Replacement are the aggregate outcome
	// counts over the batch.
	Accesses    uint64
	Hits        uint64
	Compulsory  uint64
	Replacement uint64
	// WalkSteps is the number of backward interference-walk steps the
	// batch cost, summed across evaluation workers (worker-count
	// invariant: the sum covers the same points regardless of the split).
	WalkSteps uint64
	// Rung is the 1-based fidelity rung this batch was evaluated for; 0
	// means a classic full-fidelity evaluation outside the ladder.
	Rung int
}

// Kind implements Event.
func (EvaluationBatch) Kind() Kind { return KindEvaluationBatch }

// EvaluationRung reports one completed rung of the multi-fidelity
// successive-halving ladder over one generation's candidate cohort.
// Emitted in deterministic order: directly by the single-population run,
// buffered and flushed in island order at the barriers by the island
// runtime.
type EvaluationRung struct {
	// Search is the GA phase label.
	Search string
	// Island is the 1-based island index; 0 means a single-population run.
	Island int
	// Rung is the 1-based rung index within the generation's ladder.
	Rung int
	// Points is the cumulative sample-prefix size candidates were scored
	// on at this rung.
	Points int
	// Candidates is the cohort size entering the rung; Promoted of them
	// advanced to the next rung and Pruned were cut at scaled fitness.
	// The final rung promotes nobody — its candidates are finished exact.
	Candidates int
	Promoted   int
	Pruned     int
}

// Kind implements Event.
func (EvaluationRung) Kind() Kind { return KindEvaluationRung }

// IslandMigration reports one edge of a ring-topology elite exchange at a
// migration barrier of the island-model GA: island From's best Count
// individuals were copied into island To, replacing To's worst. Emitted
// serially in island order at the barrier, so the stream is deterministic
// for a fixed seed and island count.
type IslandMigration struct {
	// Search is the GA phase label.
	Search string
	// From and To are 1-based island indices (To = From's ring successor).
	From, To int
	// Count is how many elites moved.
	Count int
	// Gen is the recipient island's completed generation at the exchange.
	Gen int
}

// Kind implements Event.
func (IslandMigration) Kind() Kind { return KindIslandMigration }

// CheckpointWritten reports a successfully persisted generation-boundary
// snapshot.
type CheckpointWritten struct {
	Search string
	// Gen is the last completed generation the snapshot captures.
	Gen int
	// Individuals and MemoEntries size the snapshot.
	Individuals int
	MemoEntries int
}

// Kind implements Event.
func (CheckpointWritten) Kind() Kind { return KindCheckpointWritten }

// EvaluationQuarantined reports a candidate whose objective evaluation
// panicked or errored under Options.FailQuarantine: the search assigned
// it worst fitness and continued instead of aborting. A run that emits
// this event completed in degraded mode.
type EvaluationQuarantined struct {
	// Search is the GA phase label the candidate belonged to.
	Search string
	// Values is the decoded candidate (tile vector, pad vector, ...).
	Values []int64
	// Reason is the recovered panic value or error text.
	Reason string
}

// Kind implements Event.
func (EvaluationQuarantined) Kind() Kind { return KindEvaluationQuarantined }

// CheckpointRecovered reports that loading the primary checkpoint file
// failed and the rotated previous-good copy was used instead. The resumed
// search loses at most one generation of progress.
type CheckpointRecovered struct {
	// Path is the primary checkpoint path that could not be used.
	Path string
	// Cause is the error that disqualified the primary copy.
	Cause string
	// Class categorizes the cause: "missing" (no file), "corrupt" (the
	// bytes were readable but failed decoding or the integrity sum), or
	// "io" (the read itself failed). Operators alert differently on each:
	// corruption points at storage, IO errors at the environment.
	Class string
}

// Kind implements Event.
func (CheckpointRecovered) Kind() Kind { return KindCheckpointRecovered }

// JournalRecovered reports one accepted-but-unfinished request the durable
// journal replayed after a restart: the server either resumed its search
// from a persisted generation-boundary snapshot or re-ran it from scratch,
// and in both cases answered it — a crash never silently drops an accepted
// request.
type JournalRecovered struct {
	// Key is the request's idempotency key (client-supplied, or the
	// canonical cache key when the client sent none).
	Key string
	// Kernel names the requested nest.
	Kernel string
	// Resumed reports the search restarted from a persisted snapshot;
	// false means no usable snapshot existed and the search re-ran fresh.
	Resumed bool
	// Gen is the last completed generation the snapshot restored (0 when
	// the search re-ran from scratch).
	Gen int
	// Outcome is the recovered request's final outcome ("ok", "degraded",
	// "fallback", "error", "unreplayable").
	Outcome string
}

// Kind implements Event.
func (JournalRecovered) Kind() Kind { return KindJournalRecovered }

// JournalSkipped reports one journal record quarantined during startup
// replay: a truncated tail, a CRC mismatch, undecodable framing, or the
// journal.replay fault point. Recovery continues past it — a torn record
// costs at most that one record, never the boot.
type JournalSkipped struct {
	// Segment is the journal segment file the record was read from.
	Segment string
	// Line is the 1-based line number of the quarantined record.
	Line int
	// Cause is why the record was rejected.
	Cause string
}

// Kind implements Event.
func (JournalSkipped) Kind() Kind { return KindJournalSkipped }

// RequestAccepted reports a tiling-service request admitted past the
// admission gate (it may still wait in the bounded queue for a slot).
type RequestAccepted struct {
	// ID is the server-assigned monotonic request id.
	ID uint64
	// Kernel names the requested nest (catalog name or "inline").
	Kernel string
	// Mode is the requested search mode ("tile", "order").
	Mode string
}

// Kind implements Event.
func (RequestAccepted) Kind() Kind { return KindRequestAccepted }

// RequestShed reports a request rejected at admission: the queue was full
// (load shedding, HTTP 429), the queued request's context ended before a
// run slot freed up (503), the server was draining (503), or the
// server.accept fault point fired in a chaos run.
type RequestShed struct {
	// Reason is "queue_full", "slot_timeout", "draining" or "injected".
	Reason string
}

// Kind implements Event.
func (RequestShed) Kind() Kind { return KindRequestShed }

// RequestDone closes one accepted request with its outcome.
type RequestDone struct {
	// ID matches the RequestAccepted event.
	ID uint64
	// Outcome is "ok", "degraded" (search completed with quarantined
	// evaluations), "fallback" (breaker open, heuristic tile served) or
	// "error".
	Outcome string
	// CacheHit reports the response was served from the result cache.
	CacheHit bool
	// Elapsed is wall-clock service time; deterministic sinks omit it.
	Elapsed time.Duration
}

// Kind implements Event.
func (RequestDone) Kind() Kind { return KindRequestDone }

// BreakerState reports a circuit-breaker transition.
type BreakerState struct {
	// From and To are breaker states ("closed", "open", "half-open").
	From, To string
	// Reason is what drove the transition (e.g. "failure threshold",
	// "cooldown elapsed", "probe succeeded").
	Reason string
}

// Kind implements Event.
func (BreakerState) Kind() Kind { return KindBreakerState }

// ServerDrained reports a completed graceful drain: every accepted
// in-flight request was answered before the server stopped.
type ServerDrained struct {
	// InFlight is how many accepted requests were still running when the
	// drain began; all of them completed.
	InFlight int
	// Forced reports that the drain grace expired and the remaining
	// searches were cancelled to their best-so-far results.
	Forced bool
}

// Kind implements Event.
func (ServerDrained) Kind() Kind { return KindServerDrained }

// EvalCacheHit reports one shared evaluation-cache lookup that recalled
// a finished result computed by an earlier search or request.
type EvalCacheHit struct {
	// Tier is the cache tier that answered: "fitness" (GA memo entry),
	// "stats" (finalized per-tile statistics) or "pool" (analyzer pool).
	Tier string
}

// Kind implements Event.
func (EvalCacheHit) Kind() Kind { return KindEvalCacheHit }

// EvalCacheMiss reports one shared evaluation-cache lookup that found
// nothing; the caller computes and (usually) stores the result.
type EvalCacheMiss struct {
	// Tier is the cache tier consulted ("fitness", "stats", "pool").
	Tier string
}

// Kind implements Event.
func (EvalCacheMiss) Kind() Kind { return KindEvalCacheMiss }

// EvalCacheEvict reports one size-bound eviction batch of the shared
// evaluation cache: the shard was over its bound after an insert and
// dropped its least-recently-used entries.
type EvalCacheEvict struct {
	// Evicted is how many entries this batch removed.
	Evicted int
}

// Kind implements Event.
func (EvalCacheEvict) Kind() Kind { return KindEvalCacheEvict }

// SearchStop closes a search's event stream with its outcome.
type SearchStop struct {
	Search string
	// Stopped is the ga.StopReason string ("converged", "deadline",
	// "budget", "cancelled").
	Stopped string
	// Generations and Evaluations are the run totals.
	Generations int
	Evaluations int
	// BestValue is the best objective value found (+Inf when every
	// candidate evaluation was cut short).
	BestValue float64
	// Elapsed is wall-clock search time; deterministic sinks omit it.
	Elapsed time.Duration
}

// Kind implements Event.
func (SearchStop) Kind() Kind { return KindSearchStop }

// Counters are the monotonic work counters of a search, delivered to
// Recorder.Add as deltas; a sink owns the accumulation. All fields are
// invariant under the evaluation worker count: parallel workers split the
// same points, so the sums match a serial run exactly.
type Counters struct {
	// Evaluations counts distinct objective evaluations (GA memo misses).
	Evaluations uint64
	// MemoHits counts objective values recalled from the GA memo table.
	MemoHits uint64
	// SampledPoints counts iteration points classified by objective
	// evaluations (evaluations × sample size).
	SampledPoints uint64
	// WalkSteps and ClassifiedAccesses are the CME point solver's
	// cumulative backward-walk steps and classified accesses
	// (cme.WalkStats); their ratio is the empirical per-access solver
	// cost.
	WalkSteps          uint64
	ClassifiedAccesses uint64
	// WalkCapHits counts classifications that tripped the walk cap
	// (0 in all normal operation).
	WalkCapHits uint64
	// PoolHits/PoolMisses count evaluator analyzer-pool reuses (Rebind)
	// versus rebuilds (NewAnalyzer + clones).
	PoolHits   uint64
	PoolMisses uint64
	// EvalCacheHits/EvalCacheMisses/EvalCacheEvictions count shared
	// evaluation-cache lookups that recalled a cross-search result,
	// lookups that found nothing, and entries dropped by size-bound
	// eviction.
	EvalCacheHits      uint64
	EvalCacheMisses    uint64
	EvalCacheEvictions uint64
}

// Plus returns the fieldwise sum c + d.
func (c Counters) Plus(d Counters) Counters {
	return Counters{
		Evaluations:        c.Evaluations + d.Evaluations,
		MemoHits:           c.MemoHits + d.MemoHits,
		SampledPoints:      c.SampledPoints + d.SampledPoints,
		WalkSteps:          c.WalkSteps + d.WalkSteps,
		ClassifiedAccesses: c.ClassifiedAccesses + d.ClassifiedAccesses,
		WalkCapHits:        c.WalkCapHits + d.WalkCapHits,
		PoolHits:           c.PoolHits + d.PoolHits,
		PoolMisses:         c.PoolMisses + d.PoolMisses,
		EvalCacheHits:      c.EvalCacheHits + d.EvalCacheHits,
		EvalCacheMisses:    c.EvalCacheMisses + d.EvalCacheMisses,
		EvalCacheEvictions: c.EvalCacheEvictions + d.EvalCacheEvictions,
	}
}

// IsZero reports whether every counter is zero.
func (c Counters) IsZero() bool { return c == Counters{} }

// Recorder receives a search's telemetry. Implementations must be safe
// for concurrent use (events and counters may arrive from parallel
// searches sharing one sink) and must not block: a slow recorder slows
// the search it observes.
//
// A nil Recorder disables telemetry; emission sites are nil-guarded, so
// the nil path costs nothing.
type Recorder interface {
	// Event delivers one typed event, in emission order per search.
	Event(e Event)
	// Add accumulates monotonic counter deltas.
	Add(c Counters)
}

// multi fans out to several recorders in order.
type multi []Recorder

func (m multi) Event(e Event) {
	for _, r := range m {
		r.Event(e)
	}
}

func (m multi) Add(c Counters) {
	for _, r := range m {
		r.Add(c)
	}
}

// Multi combines recorders into one that forwards every event and counter
// delta to each, in argument order. Nil entries are skipped; with zero or
// one live recorder it returns nil or that recorder directly, so the
// nil-observer fast path is preserved.
func Multi(rs ...Recorder) Recorder {
	var live multi
	for _, r := range rs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// Capture is an in-memory Recorder for tests and programmatic inspection:
// it retains every event in order and sums the counter deltas. Safe for
// concurrent use.
type Capture struct {
	mu       sync.Mutex
	events   []Event
	counters Counters
}

// Event implements Recorder.
func (c *Capture) Event(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Add implements Recorder.
func (c *Capture) Add(d Counters) {
	c.mu.Lock()
	c.counters = c.counters.Plus(d)
	c.mu.Unlock()
}

// Events returns a copy of the captured event sequence.
func (c *Capture) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Counters returns the accumulated counter totals.
func (c *Capture) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters
}
