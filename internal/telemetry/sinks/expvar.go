package sinks

import (
	"expvar"
	"fmt"
	"io"

	"repro/internal/telemetry"
)

// Expvar aggregates counters and event tallies into an expvar.Map, so a
// long-running process (or a CLI with -metrics) exposes search telemetry
// through the standard /debug/vars surface. Published variables:
//
//	<name>.evaluations          distinct objective evaluations
//	<name>.memo_hits            GA memo-table recalls
//	<name>.sampled_points       iteration points classified
//	<name>.walk_steps           CME backward-walk steps
//	<name>.classified_accesses  accesses classified by the point solver
//	<name>.walk_cap_hits        walk-cap trips (0 in normal operation)
//	<name>.pool_hits            analyzer-pool rebinds (reuse)
//	<name>.pool_misses          analyzer-pool rebuilds
//	<name>.evalcache_hits       shared evaluation-cache recalls
//	<name>.evalcache_misses     shared evaluation-cache misses
//	<name>.evalcache_evictions  shared evaluation-cache size-bound drops
//	<name>.events               total events observed
//	<name>.events.<kind>        per-kind event tallies
//	<name>.searches             completed searches (search_stop events)
//	<name>.generations          completed GA generations
//
// A server feeding the sink additionally populates the service counters:
//
//	<name>.requests_accepted    requests admitted past the admission gate
//	<name>.requests_shed        requests rejected at admission (429/503)
//	<name>.requests_done        accepted requests answered
//	<name>.cache_hits           responses served from the result cache
//	<name>.degraded_responses   degraded or fallback responses served
//	<name>.breaker_trips        circuit-breaker closed/half-open -> open
//	<name>.drains               completed graceful drains
//	<name>.journal_recovered    journaled requests replayed after a restart
//	<name>.journal_skipped      torn/corrupt journal records quarantined
//
// where <name>.x is a key of the expvar map registered under <name>.
// Safe for concurrent use (expvar.Map is atomic).
type Expvar struct {
	m *expvar.Map
}

// NewExpvar returns an Expvar sink publishing under name. Registering the
// same name twice reuses (and resets) the existing map instead of
// panicking, so tests and restarted components can share a name.
func NewExpvar(name string) *Expvar {
	if v := expvar.Get(name); v != nil {
		if m, ok := v.(*expvar.Map); ok {
			m.Init()
			return &Expvar{m: m}
		}
	}
	return &Expvar{m: expvar.NewMap(name)}
}

// Event implements telemetry.Recorder.
func (x *Expvar) Event(e telemetry.Event) {
	x.m.Add("events", 1)
	x.m.Add("events."+string(e.Kind()), 1)
	switch e := e.(type) {
	case telemetry.GenerationDone:
		x.m.Add("generations", 1)
	case telemetry.SearchStop:
		x.m.Add("searches", 1)
	case telemetry.RequestAccepted:
		x.m.Add("requests_accepted", 1)
	case telemetry.RequestShed:
		x.m.Add("requests_shed", 1)
	case telemetry.RequestDone:
		x.m.Add("requests_done", 1)
		if e.CacheHit {
			x.m.Add("cache_hits", 1)
		}
		if e.Outcome == "degraded" || e.Outcome == "fallback" {
			x.m.Add("degraded_responses", 1)
		}
	case telemetry.BreakerState:
		if e.To == "open" {
			x.m.Add("breaker_trips", 1)
		}
	case telemetry.ServerDrained:
		x.m.Add("drains", 1)
	case telemetry.JournalRecovered:
		x.m.Add("journal_recovered", 1)
	case telemetry.JournalSkipped:
		x.m.Add("journal_skipped", 1)
	}
}

// Add implements telemetry.Recorder.
func (x *Expvar) Add(c telemetry.Counters) {
	add := func(key string, v uint64) {
		if v != 0 {
			x.m.Add(key, int64(v))
		}
	}
	add("evaluations", c.Evaluations)
	add("memo_hits", c.MemoHits)
	add("sampled_points", c.SampledPoints)
	add("walk_steps", c.WalkSteps)
	add("classified_accesses", c.ClassifiedAccesses)
	add("walk_cap_hits", c.WalkCapHits)
	add("pool_hits", c.PoolHits)
	add("pool_misses", c.PoolMisses)
	add("evalcache_hits", c.EvalCacheHits)
	add("evalcache_misses", c.EvalCacheMisses)
	add("evalcache_evictions", c.EvalCacheEvictions)
}

// Map exposes the underlying expvar map (e.g. to compose dashboards).
func (x *Expvar) Map() *expvar.Map { return x.m }

// String renders the map as JSON with sorted keys — what -metrics dumps
// at exit.
func (x *Expvar) String() string { return x.m.String() }

// WriteTo writes the JSON rendering to w.
func (x *Expvar) WriteTo(w io.Writer) (int64, error) {
	n, err := fmt.Fprintln(w, x.m.String())
	return int64(n), err
}
