// Package sinks provides the concrete telemetry recorders: a JSONL event
// log, a human-readable TTY progress writer, and an expvar-registered
// aggregate metrics map. Only the public facade (and the command-line
// tools through it) may import this package; internal packages depend on
// the telemetry.Recorder interface alone — `make verify`'s depcheck
// enforces the direction.
package sinks

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/retry"
	"repro/internal/telemetry"
)

// JSONL writes one JSON object per line: every event as it arrives (keyed
// by its "ev" kind) and, on Close, a final "counters" line with the
// accumulated monotonic counters.
//
// The encoding is deterministic by default: wall-clock Elapsed fields are
// omitted unless Timestamps is set, so a fixed-seed search produces a
// byte-identical stream on every run (the golden-stream tests rely on
// this). Safe for concurrent use.
type JSONL struct {
	// Timestamps includes the elapsed_ms field on generation and
	// search-stop lines. Off by default: wall-clock time is the one
	// non-deterministic part of the stream.
	Timestamps bool
	// Retry bounds the per-line write retries absorbing transient I/O
	// failures (a momentarily full pipe, an injected fault). The zero
	// value is the default policy: three tries with short capped backoff.
	Retry retry.Policy

	mu       sync.Mutex
	w        io.Writer
	counters telemetry.Counters
	err      error
}

// NewJSONL returns a JSONL sink writing to w. The caller owns w; Close
// flushes the final counters line but does not close w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

// jfloat is a float64 that encodes non-finite values (a poisoned +Inf
// objective) as null instead of failing json.Marshal.
type jfloat float64

// MarshalJSON implements json.Marshaler.
func (f jfloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// Event implements telemetry.Recorder.
func (j *JSONL) Event(e telemetry.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.writeLine(j.record(e))
}

// record maps an event onto its wire struct. Field order is fixed by the
// struct definitions, which is what makes the stream reproducible.
func (j *JSONL) record(e telemetry.Event) any {
	switch ev := e.(type) {
	case telemetry.SearchStart:
		return struct {
			Ev      string `json:"ev"`
			Search  string `json:"search"`
			Kernel  string `json:"kernel"`
			Depth   int    `json:"depth"`
			Cache   string `json:"cache"`
			Seed    uint64 `json:"seed"`
			Points  int    `json:"points"`
			Workers int    `json:"workers"`
		}{string(ev.Kind()), ev.Search, ev.Kernel, ev.Depth,
			fmt.Sprintf("%d:%d:%d", ev.CacheSize, ev.CacheLine, ev.CacheAssoc),
			ev.Seed, ev.SamplePoints, ev.Workers}
	case telemetry.PhaseChange:
		return struct {
			Ev     string `json:"ev"`
			Search string `json:"search"`
			Phase  string `json:"phase"`
		}{string(ev.Kind()), ev.Search, ev.Phase}
	case telemetry.GenerationDone:
		// The island field is omitted when zero, so single-population
		// streams are byte-identical to those of earlier releases.
		rec := struct {
			Ev        string  `json:"ev"`
			Search    string  `json:"search"`
			Island    int     `json:"island,omitempty"`
			Gen       int     `json:"gen"`
			Best      jfloat  `json:"best"`
			Avg       jfloat  `json:"avg"`
			BestEver  jfloat  `json:"best_ever"`
			Evals     int     `json:"evals"`
			MemoHits  int     `json:"memo_hits"`
			ElapsedMS *jfloat `json:"elapsed_ms,omitempty"`
		}{string(ev.Kind()), ev.Search, ev.Island, ev.Gen, jfloat(ev.Best), jfloat(ev.Avg),
			jfloat(ev.BestEver), ev.Evaluations, ev.MemoHits, nil}
		if j.Timestamps {
			ms := jfloat(float64(ev.Elapsed.Microseconds()) / 1e3)
			rec.ElapsedMS = &ms
		}
		return rec
	case telemetry.EvaluationBatch:
		// The island and rung fields are omitted when zero, so classic
		// single-population full-fidelity streams keep their exact
		// historical encoding.
		return struct {
			Ev          string `json:"ev"`
			Island      int    `json:"island,omitempty"`
			Points      int    `json:"points"`
			Accesses    uint64 `json:"accesses"`
			Hits        uint64 `json:"hits"`
			Compulsory  uint64 `json:"compulsory"`
			Replacement uint64 `json:"replacement"`
			WalkSteps   uint64 `json:"walk_steps"`
			Rung        int    `json:"rung,omitempty"`
		}{string(ev.Kind()), ev.Island, ev.Points, ev.Accesses, ev.Hits, ev.Compulsory,
			ev.Replacement, ev.WalkSteps, ev.Rung}
	case telemetry.EvaluationRung:
		return struct {
			Ev         string `json:"ev"`
			Search     string `json:"search"`
			Island     int    `json:"island,omitempty"`
			Rung       int    `json:"rung"`
			Points     int    `json:"points"`
			Candidates int    `json:"candidates"`
			Promoted   int    `json:"promoted"`
			Pruned     int    `json:"pruned"`
		}{string(ev.Kind()), ev.Search, ev.Island, ev.Rung, ev.Points,
			ev.Candidates, ev.Promoted, ev.Pruned}
	case telemetry.IslandMigration:
		return struct {
			Ev     string `json:"ev"`
			Search string `json:"search"`
			From   int    `json:"from"`
			To     int    `json:"to"`
			Count  int    `json:"count"`
			Gen    int    `json:"gen"`
		}{string(ev.Kind()), ev.Search, ev.From, ev.To, ev.Count, ev.Gen}
	case telemetry.CheckpointWritten:
		return struct {
			Ev          string `json:"ev"`
			Search      string `json:"search"`
			Gen         int    `json:"gen"`
			Individuals int    `json:"individuals"`
			MemoEntries int    `json:"memo_entries"`
		}{string(ev.Kind()), ev.Search, ev.Gen, ev.Individuals, ev.MemoEntries}
	case telemetry.EvaluationQuarantined:
		return struct {
			Ev     string  `json:"ev"`
			Search string  `json:"search"`
			Values []int64 `json:"values"`
			Reason string  `json:"reason"`
		}{string(ev.Kind()), ev.Search, ev.Values, ev.Reason}
	case telemetry.CheckpointRecovered:
		return struct {
			Ev    string `json:"ev"`
			Path  string `json:"path"`
			Cause string `json:"cause"`
			Class string `json:"class,omitempty"`
		}{string(ev.Kind()), ev.Path, ev.Cause, ev.Class}
	case telemetry.JournalRecovered:
		return struct {
			Ev      string `json:"ev"`
			Key     string `json:"key"`
			Kernel  string `json:"kernel"`
			Resumed bool   `json:"resumed"`
			Gen     int    `json:"gen"`
			Outcome string `json:"outcome"`
		}{string(ev.Kind()), ev.Key, ev.Kernel, ev.Resumed, ev.Gen, ev.Outcome}
	case telemetry.JournalSkipped:
		return struct {
			Ev      string `json:"ev"`
			Segment string `json:"segment"`
			Line    int    `json:"line"`
			Cause   string `json:"cause"`
		}{string(ev.Kind()), ev.Segment, ev.Line, ev.Cause}
	case telemetry.EvalCacheHit:
		return struct {
			Ev   string `json:"ev"`
			Tier string `json:"tier"`
		}{string(ev.Kind()), ev.Tier}
	case telemetry.EvalCacheMiss:
		return struct {
			Ev   string `json:"ev"`
			Tier string `json:"tier"`
		}{string(ev.Kind()), ev.Tier}
	case telemetry.EvalCacheEvict:
		return struct {
			Ev      string `json:"ev"`
			Evicted int    `json:"evicted"`
		}{string(ev.Kind()), ev.Evicted}
	case telemetry.SearchStop:
		rec := struct {
			Ev        string  `json:"ev"`
			Search    string  `json:"search"`
			Stopped   string  `json:"stopped"`
			Gens      int     `json:"gens"`
			Evals     int     `json:"evals"`
			BestValue jfloat  `json:"best_value"`
			ElapsedMS *jfloat `json:"elapsed_ms,omitempty"`
		}{string(ev.Kind()), ev.Search, ev.Stopped, ev.Generations,
			ev.Evaluations, jfloat(ev.BestValue), nil}
		if j.Timestamps {
			ms := jfloat(float64(ev.Elapsed.Microseconds()) / 1e3)
			rec.ElapsedMS = &ms
		}
		return rec
	default:
		return struct {
			Ev string `json:"ev"`
		}{string(e.Kind())}
	}
}

// Add implements telemetry.Recorder; deltas accumulate into the counters
// line Close writes.
func (j *JSONL) Add(c telemetry.Counters) {
	j.mu.Lock()
	j.counters = j.counters.Plus(c)
	j.mu.Unlock()
}

// writeLine marshals rec and appends it as one line; callers hold j.mu.
// Transient write failures are retried with capped backoff (each attempt
// rewrites the whole line, so a torn line is never followed by a valid
// one on the same stream without a retry marker in between); the first
// persistent error is retained and reported by Close, and later lines are
// dropped.
func (j *JSONL) writeLine(rec any) {
	if j.err != nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		j.err = err
		return
	}
	line := append(b, '\n')
	if err := j.Retry.Do(nil, func() error {
		_, werr := j.w.Write(line)
		return werr
	}); err != nil {
		j.err = err
	}
}

// Close appends the final counters line and returns the first error the
// sink encountered. It does not close the underlying writer.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	c := j.counters
	j.writeLine(struct {
		Ev          string `json:"ev"`
		Evaluations uint64 `json:"evaluations"`
		MemoHits    uint64 `json:"memo_hits"`
		Sampled     uint64 `json:"sampled_points"`
		WalkSteps   uint64 `json:"walk_steps"`
		Classified  uint64 `json:"classified_accesses"`
		CapHits     uint64 `json:"walk_cap_hits"`
		PoolHits    uint64 `json:"pool_hits"`
		PoolMisses  uint64 `json:"pool_misses"`
		ECacheHits  uint64 `json:"evalcache_hits"`
		ECacheMiss  uint64 `json:"evalcache_misses"`
		ECacheEvict uint64 `json:"evalcache_evictions"`
	}{"counters", c.Evaluations, c.MemoHits, c.SampledPoints, c.WalkSteps,
		c.ClassifiedAccesses, c.WalkCapHits, c.PoolHits, c.PoolMisses,
		c.EvalCacheHits, c.EvalCacheMisses, c.EvalCacheEvictions})
	return j.err
}
