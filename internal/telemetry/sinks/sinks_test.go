package sinks

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// replay pushes a representative event sequence through a recorder.
func replay(r telemetry.Recorder) {
	r.Event(telemetry.SearchStart{Search: "tiling", Kernel: "MM", Depth: 3,
		CacheSize: 8192, CacheLine: 32, CacheAssoc: 1, Seed: 7, SamplePoints: 164, Workers: 1})
	r.Event(telemetry.PhaseChange{Search: "tiling", Phase: "finalize"})
	r.Event(telemetry.EvaluationBatch{Points: 164, Accesses: 656, Hits: 300,
		Compulsory: 6, Replacement: 350, WalkSteps: 4200})
	r.Event(telemetry.GenerationDone{Search: "tiling", Gen: 0, Best: 12, Avg: 40.5,
		BestEver: 12, Evaluations: 30, MemoHits: 2, Elapsed: 123 * time.Millisecond})
	r.Event(telemetry.CheckpointWritten{Search: "tiling", Gen: 0, Individuals: 30, MemoEntries: 28})
	r.Event(telemetry.SearchStop{Search: "tiling", Stopped: "converged",
		Generations: 17, Evaluations: 310, BestValue: 8, Elapsed: time.Second})
	r.Add(telemetry.Counters{Evaluations: 310, MemoHits: 200, SampledPoints: 50840,
		WalkSteps: 99, ClassifiedAccesses: 4, PoolHits: 309, PoolMisses: 1})
}

// TestJSONLStream: one valid JSON object per line, "ev" discriminators in
// emission order, no wall-clock fields by default, counters line last.
func TestJSONLStream(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	replay(j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	want := []string{"search_start", "phase_change", "evaluation_batch",
		"generation", "checkpoint", "search_stop", "counters"}
	if len(lines) != len(want) {
		t.Fatalf("%d lines, want %d:\n%s", len(lines), len(want), buf.String())
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if rec["ev"] != want[i] {
			t.Fatalf("line %d ev=%v, want %s", i, rec["ev"], want[i])
		}
		if _, ok := rec["elapsed_ms"]; ok {
			t.Fatalf("line %d carries elapsed_ms without Timestamps:\n%s", i, line)
		}
	}
	if !strings.Contains(lines[0], `"cache":"8192:32:1"`) {
		t.Fatalf("search_start cache spec missing:\n%s", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], `"evaluations":310`) {
		t.Fatalf("counters line wrong:\n%s", lines[len(lines)-1])
	}
}

// TestJSONLTimestamps: opting in adds elapsed_ms to generation and stop
// lines.
func TestJSONLTimestamps(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Timestamps = true
	j.Event(telemetry.GenerationDone{Gen: 1, Elapsed: 250 * time.Millisecond})
	if !strings.Contains(buf.String(), `"elapsed_ms":250`) {
		t.Fatalf("elapsed_ms missing with Timestamps:\n%s", buf.String())
	}
}

// TestJSONLNonFinite: a poisoned +Inf objective encodes as null instead of
// breaking the stream.
func TestJSONLNonFinite(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Event(telemetry.GenerationDone{Gen: 0, Best: math.Inf(1), Avg: math.NaN(), BestEver: math.Inf(1)})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"best":null`) {
		t.Fatalf("+Inf did not encode as null:\n%s", buf.String())
	}
}

// TestTTY: the progress writer mentions the essentials and suppresses
// batch lines unless verbose.
func TestTTY(t *testing.T) {
	var buf bytes.Buffer
	tty := NewTTY(&buf)
	replay(tty)
	if err := tty.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"[tiling] start MM", "gen  0", "checkpoint @ gen 0",
		"stop (converged)", "counters: 310 evaluations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("TTY output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "eval 164 points") {
		t.Fatalf("non-verbose TTY printed a batch line:\n%s", out)
	}
	buf.Reset()
	tty = NewTTY(&buf)
	tty.Verbose = true
	replay(tty)
	if !strings.Contains(buf.String(), "eval 164 points") {
		t.Fatalf("verbose TTY suppressed the batch line:\n%s", buf.String())
	}
}

// TestExpvar: counters and event tallies land in the published map, and
// re-registering a name resets instead of panicking.
func TestExpvar(t *testing.T) {
	x := NewExpvar("sinks_test")
	replay(x)
	var rec map[string]int64
	if err := json.Unmarshal([]byte(x.String()), &rec); err != nil {
		t.Fatalf("expvar map is not JSON: %v\n%s", err, x.String())
	}
	for key, want := range map[string]int64{
		"evaluations":             310,
		"memo_hits":               200,
		"sampled_points":          50840,
		"pool_hits":               309,
		"pool_misses":             1,
		"events":                  6,
		"events.search_start":     1,
		"events.generation":       1,
		"events.evaluation_batch": 1,
		"searches":                1,
		"generations":             1,
	} {
		if rec[key] != want {
			t.Fatalf("%s = %d, want %d\n%s", key, rec[key], want, x.String())
		}
	}
	// Same name again: fresh map, no panic.
	x2 := NewExpvar("sinks_test")
	if got := x2.String(); strings.Contains(got, "evaluations") {
		t.Fatalf("re-registration did not reset the map:\n%s", got)
	}
}
