package sinks

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// TTY renders the event stream as human-readable progress lines, one per
// event, prefixed with the search label — the interactive counterpart of
// the JSONL log. Per-evaluation batches are suppressed unless Verbose is
// set (a search runs hundreds of them). Safe for concurrent use.
type TTY struct {
	// Verbose also prints one line per objective evaluation batch.
	Verbose bool

	mu       sync.Mutex
	w        io.Writer
	counters telemetry.Counters
}

// NewTTY returns a TTY sink writing to w.
func NewTTY(w io.Writer) *TTY { return &TTY{w: w} }

// Event implements telemetry.Recorder.
func (t *TTY) Event(e telemetry.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch ev := e.(type) {
	case telemetry.SearchStart:
		fmt.Fprintf(t.w, "[%s] start %s depth=%d cache=%d:%d:%d seed=%d points=%d workers=%d\n",
			ev.Search, ev.Kernel, ev.Depth, ev.CacheSize, ev.CacheLine, ev.CacheAssoc,
			ev.Seed, ev.SamplePoints, ev.Workers)
	case telemetry.PhaseChange:
		fmt.Fprintf(t.w, "[%s] phase %s\n", ev.Search, ev.Phase)
	case telemetry.GenerationDone:
		label := ev.Search
		if ev.Island > 0 {
			label = fmt.Sprintf("%s/i%d", ev.Search, ev.Island)
		}
		fmt.Fprintf(t.w, "[%s] gen %2d  best %.6g  avg %.6g  best-ever %.6g  evals %d  %v\n",
			label, ev.Gen, ev.Best, ev.Avg, ev.BestEver, ev.Evaluations,
			ev.Elapsed.Round(time.Millisecond))
	case telemetry.EvaluationBatch:
		if t.Verbose {
			fmt.Fprintf(t.w, "  eval %d points: %d hit / %d compulsory / %d replacement (%d walk steps)\n",
				ev.Points, ev.Hits, ev.Compulsory, ev.Replacement, ev.WalkSteps)
		}
	case telemetry.EvaluationRung:
		if t.Verbose {
			label := ev.Search
			if ev.Island > 0 {
				label = fmt.Sprintf("%s/i%d", ev.Search, ev.Island)
			}
			fmt.Fprintf(t.w, "[%s] rung %d @ %d points: %d candidates, %d promoted, %d pruned\n",
				label, ev.Rung, ev.Points, ev.Candidates, ev.Promoted, ev.Pruned)
		}
	case telemetry.IslandMigration:
		fmt.Fprintf(t.w, "[%s] migration i%d -> i%d (%d elites) @ gen %d\n",
			ev.Search, ev.From, ev.To, ev.Count, ev.Gen)
	case telemetry.CheckpointWritten:
		fmt.Fprintf(t.w, "[%s] checkpoint @ gen %d (%d individuals, %d memo entries)\n",
			ev.Search, ev.Gen, ev.Individuals, ev.MemoEntries)
	case telemetry.EvaluationQuarantined:
		fmt.Fprintf(t.w, "[%s] quarantined %v: %s\n", ev.Search, ev.Values, ev.Reason)
	case telemetry.CheckpointRecovered:
		fmt.Fprintf(t.w, "checkpoint recovered: %s unusable (%s), resumed from previous-good copy\n",
			ev.Path, ev.Cause)
	case telemetry.SearchStop:
		fmt.Fprintf(t.w, "[%s] stop (%s): %d generations, %d evaluations, best %.6g, %v\n",
			ev.Search, ev.Stopped, ev.Generations, ev.Evaluations, ev.BestValue,
			ev.Elapsed.Round(time.Millisecond))
	}
}

// Add implements telemetry.Recorder.
func (t *TTY) Add(c telemetry.Counters) {
	t.mu.Lock()
	t.counters = t.counters.Plus(c)
	t.mu.Unlock()
}

// Close prints the accumulated counter summary. It does not close the
// underlying writer.
func (t *TTY) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.counters
	if c.IsZero() {
		return nil
	}
	fmt.Fprintf(t.w, "counters: %d evaluations (%d memo hits), %d sampled points, %d walk steps / %d accesses, pool %d hits / %d misses\n",
		c.Evaluations, c.MemoHits, c.SampledPoints, c.WalkSteps,
		c.ClassifiedAccesses, c.PoolHits, c.PoolMisses)
	return nil
}
