package sinks

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/retry"
	"repro/internal/telemetry"
)

func noSleep(context.Context, time.Duration) error { return nil }

// TestJSONLFaultEvents: the fault-tolerance events encode with stable
// field names.
func TestJSONLFaultEvents(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Event(telemetry.EvaluationQuarantined{Search: "tiling", Values: []int64{8, 16}, Reason: "boom"})
	j.Event(telemetry.CheckpointRecovered{Path: "run.ckpt", Cause: "integrity"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines:\n%s", buf.String())
	}
	var q struct {
		Ev     string  `json:"ev"`
		Search string  `json:"search"`
		Values []int64 `json:"values"`
		Reason string  `json:"reason"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &q); err != nil {
		t.Fatal(err)
	}
	if q.Ev != "evaluation_quarantined" || q.Search != "tiling" || len(q.Values) != 2 || q.Reason != "boom" {
		t.Fatalf("quarantine line = %+v", q)
	}
	if !strings.Contains(lines[1], `"ev":"checkpoint_recovered"`) || !strings.Contains(lines[1], `"path":"run.ckpt"`) {
		t.Fatalf("recovered line = %s", lines[1])
	}
}

// TestJSONLRetriesTransientWrite: a sink-write fault that fires once is
// absorbed by the retry policy — the line lands intact and Close is
// clean.
func TestJSONLRetriesTransientWrite(t *testing.T) {
	var buf bytes.Buffer
	plan := faultinject.New(1, faultinject.Rule{Point: faultinject.SinkWrite, After: 2, Times: 1})
	j := NewJSONL(faultinject.Writer(&buf, plan, faultinject.SinkWrite))
	j.Retry = retry.Policy{Attempts: 3, Sleep: noSleep}
	j.Event(telemetry.PhaseChange{Search: "tiling", Phase: "a"})
	j.Event(telemetry.PhaseChange{Search: "tiling", Phase: "b"}) // faulted once, retried
	if err := j.Close(); err != nil {
		t.Fatalf("transient sink fault surfaced: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3 (a, b, counters):\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d not valid JSON after retry: %s", i, line)
		}
	}
}

// TestJSONLPersistentWriteFailureLatched: a fault on every attempt
// exhausts the retries; the error reaches Close and later lines are
// dropped rather than interleaved after a torn write.
func TestJSONLPersistentWriteFailureLatched(t *testing.T) {
	var buf bytes.Buffer
	plan := faultinject.New(1, faultinject.Rule{Point: faultinject.SinkWrite})
	j := NewJSONL(faultinject.Writer(&buf, plan, faultinject.SinkWrite))
	j.Retry = retry.Policy{Attempts: 2, Sleep: noSleep}
	j.Event(telemetry.PhaseChange{Search: "tiling", Phase: "a"})
	err := j.Close()
	if err == nil || !faultinject.Is(err) {
		t.Fatalf("Close = %v, want the injected fault", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("failed writes still produced output: %q", buf.String())
	}
}

// TestTTYFaultEvents: the human-readable sink renders both new events.
func TestTTYFaultEvents(t *testing.T) {
	var buf bytes.Buffer
	tty := NewTTY(&buf)
	tty.Event(telemetry.EvaluationQuarantined{Search: "tiling", Values: []int64{8, 16}, Reason: "boom"})
	tty.Event(telemetry.CheckpointRecovered{Path: "run.ckpt", Cause: "integrity"})
	out := buf.String()
	if !strings.Contains(out, "quarantined [8 16]: boom") {
		t.Fatalf("quarantine line missing:\n%s", out)
	}
	if !strings.Contains(out, "checkpoint recovered: run.ckpt") {
		t.Fatalf("recovered line missing:\n%s", out)
	}
}

// TestExpvarCountsFaultEvents: the generic per-kind tally covers the new
// kinds with no special casing.
func TestExpvarCountsFaultEvents(t *testing.T) {
	x := NewExpvar("sinks_fault_test")
	x.Event(telemetry.EvaluationQuarantined{Search: "tiling"})
	x.Event(telemetry.CheckpointRecovered{Path: "p"})
	var rec map[string]int64
	if err := json.Unmarshal([]byte(x.String()), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["events.evaluation_quarantined"] != 1 || rec["events.checkpoint_recovered"] != 1 {
		t.Fatalf("expvar tallies = %v", rec)
	}
}

// TestRetryErrorsUnwrap: the wrapped retry error still satisfies
// errors.Is on the underlying fault, which the CLIs rely on for degraded
// exit classification.
func TestRetryErrorsUnwrap(t *testing.T) {
	p := retry.Policy{Attempts: 2, Sleep: noSleep}
	fault := &faultinject.Fault{Point: faultinject.SinkWrite, Hit: 1}
	err := p.Do(context.Background(), func() error { return fault })
	if !errors.Is(err, fault) {
		t.Fatalf("wrapped fault lost: %v", err)
	}
}
