package server

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// breakerState is the classic three-state circuit breaker.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker trips the service from full GA searches to the cheap heuristic
// fallback when searches fail repeatedly (quarantined candidates, stalls,
// errors). Closed: all requests search. Open: no request searches until
// the cooldown elapses — callers get the degraded fallback instead of
// piling onto a failing dependency. Half-open: exactly one probe search
// runs; success closes the breaker, failure reopens it for another
// cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	obs       telemetry.Recorder

	mu          sync.Mutex
	state       breakerState
	consecutive int
	openedAt    time.Time
	probing     bool
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time, obs telemetry.Recorder) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: now, obs: obs}
}

// allow reports whether a request may run a real search; probe marks the
// single half-open trial whose outcome decides the breaker's fate.
func (b *breaker) allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.transition(breakerHalfOpen, "cooldown elapsed")
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// record feeds one search outcome back. Probe outcomes resolve the
// half-open trial; ordinary failures accumulate toward the trip threshold.
func (b *breaker) record(success, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if success {
			b.consecutive = 0
			b.transition(breakerClosed, "probe succeeded")
		} else {
			b.openedAt = b.now()
			b.transition(breakerOpen, "probe failed")
		}
		return
	}
	if success {
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.state == breakerClosed && b.consecutive >= b.threshold {
		b.openedAt = b.now()
		b.transition(breakerOpen, "failure threshold")
	}
}

// state1 returns the current state for health reporting.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// transition flips the state and emits the telemetry event. Callers hold
// b.mu.
func (b *breaker) transition(to breakerState, reason string) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.obs != nil {
		b.obs.Event(telemetry.BreakerState{From: from.String(), To: to.String(), Reason: reason})
	}
}
