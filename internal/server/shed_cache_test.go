package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/telemetry"
)

// TestCachePutExistingKeyRefreshes: re-putting a key updates the body and
// recency in place. It must never insert a duplicate entry, and the
// refreshed key must outlive a colder one when eviction comes.
func TestCachePutExistingKeyRefreshes(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("A1"))
	c.put("b", []byte("B"))
	c.put("a", []byte("A2")) // refresh: b is now the LRU entry
	if got := c.len(); got != 2 {
		t.Fatalf("len after re-put = %d, want 2 (duplicate inserted)", got)
	}
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction; re-put did not refresh a's recency")
	}
	body, ok := c.get("a")
	if !ok {
		t.Fatal("a evicted despite being refreshed by the re-put")
	}
	if string(body) != "A2" {
		t.Fatalf("a = %q, want the re-put body A2", body)
	}
	if got := c.len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
}

// TestCacheEvictionStaysBounded: a long run of puts never grows the cache
// past its bound, and each put needs at most one eviction.
func TestCacheEvictionStaysBounded(t *testing.T) {
	c := newResultCache(4)
	for i := 0; i < 40; i++ {
		c.put(fmt.Sprintf("k%d", i), []byte("v"))
		if got := c.len(); got > 4 {
			t.Fatalf("len = %d after put %d, want <= 4", got, i)
		}
	}
	if got := c.len(); got != 4 {
		t.Fatalf("final len = %d, want 4", got)
	}
	// The four newest keys are the survivors.
	for i := 36; i < 40; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d missing; eviction removed a hot entry", i)
		}
	}
}

// TestCacheSetMaxShrinkAmortized: shrinking the bound trims one batch
// immediately and works the backlog off on subsequent puts, so no single
// operation sweeps the whole cache under the mutex.
func TestCacheSetMaxShrinkAmortized(t *testing.T) {
	c := newResultCache(32)
	for i := 0; i < 32; i++ {
		c.put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	c.setMax(2)
	if got := c.len(); got != 32-evictBatch {
		t.Fatalf("len after shrink = %d, want %d (one batch trimmed)", got, 32-evictBatch)
	}
	// Each put drains at most one more batch; the backlog shrinks
	// monotonically until the cache sits at its new bound.
	prev := c.len()
	for i := 0; c.len() > 2 && i < 32; i++ {
		c.put(fmt.Sprintf("n%d", i), []byte("v"))
		if got := c.len(); got > prev+1 {
			t.Fatalf("len grew from %d to %d during backlog drain", prev, got)
		}
		prev = c.len()
	}
	if got := c.len(); got != 2 {
		t.Fatalf("len after drain = %d, want 2", got)
	}
	c.setMax(0) // clamps to 1
	if got := c.len(); got != 1 {
		t.Fatalf("len after setMax(0) = %d, want 1", got)
	}
}

// retryAfterSeconds parses the Retry-After header and requires a positive
// integer number of seconds — the contract for every shed response.
func retryAfterSeconds(t *testing.T, h http.Header) int {
	t.Helper()
	raw := h.Get("Retry-After")
	if raw == "" {
		t.Fatal("shed response missing Retry-After")
	}
	secs, err := strconv.Atoi(raw)
	if err != nil {
		t.Fatalf("Retry-After = %q, want an integer: %v", raw, err)
	}
	if secs <= 0 {
		t.Fatalf("Retry-After = %d, want > 0", secs)
	}
	return secs
}

// shedReasons collects the RequestShed reasons the capture recorded.
func shedReasons(cap *telemetry.Capture) []string {
	var reasons []string
	for _, e := range cap.Events() {
		if rs, ok := e.(telemetry.RequestShed); ok {
			reasons = append(reasons, rs.Reason)
		}
	}
	return reasons
}

// TestShedQueueFullRetryAfter: the queue-full rejection carries a 429 and
// a positive integer Retry-After, even with the default config where no
// RetryAfter was set explicitly.
func TestShedQueueFullRetryAfter(t *testing.T) {
	s, _, cap := testServer(t, Config{MaxConcurrent: 1, QueueDepth: -1})
	release, err := s.gate.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/tile", nil)
	if _, ok := s.admit(rec, req); ok {
		t.Fatal("admit succeeded with the only slot held and no queue")
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	retryAfterSeconds(t, rec.Header())
	if got := shedReasons(cap); len(got) != 1 || got[0] != "queue_full" {
		t.Fatalf("shed reasons = %v, want [queue_full]", got)
	}
}

// TestShedSlotTimeoutRetryAfter: a request whose context expires while it
// waits in the queue is shed like any other overload — 503, a positive
// integer Retry-After, and a slot_timeout telemetry event — instead of
// the bare error body it used to get.
func TestShedSlotTimeoutRetryAfter(t *testing.T) {
	s, _, cap := testServer(t, Config{MaxConcurrent: 1, QueueDepth: 4, RetryAfter: 0})
	release, err := s.gate.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the waiter's context is already dead when it queues
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/tile", nil).WithContext(ctx)
	if _, ok := s.admit(rec, req); ok {
		t.Fatal("admit succeeded with a dead request context and the slot held")
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	retryAfterSeconds(t, rec.Header())
	if got := shedReasons(cap); len(got) != 1 || got[0] != "slot_timeout" {
		t.Fatalf("shed reasons = %v, want [slot_timeout]", got)
	}
}
