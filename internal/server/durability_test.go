package server

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/ga"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

// postIdem is post with an Idempotency-Key header.
func postIdem(t *testing.T, url, body, key string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/tile", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	b := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(b)
		buf.Write(b[:n])
		if rerr != nil {
			break
		}
	}
	return resp.StatusCode, []byte(buf.String()), resp.Header
}

func journalRecoveredEvents(cap *telemetry.Capture) []telemetry.JournalRecovered {
	var out []telemetry.JournalRecovered
	for _, e := range cap.Events() {
		if jr, ok := e.(telemetry.JournalRecovered); ok {
			out = append(out, jr)
		}
	}
	return out
}

func TestIdempotentRetryServedFromJournal(t *testing.T) {
	_, ts, _ := testServer(t, Config{StateDir: t.TempDir()})
	st1, body1, h1 := postIdem(t, ts.URL, fastRequest, "job-1")
	if st1 != http.StatusOK {
		t.Fatalf("first POST: status %d body %s", st1, body1)
	}
	if src := h1.Get("X-Tilingd-Cache"); src == "journal" {
		t.Fatalf("first POST must not be a journal hit")
	}
	st2, body2, h2 := postIdem(t, ts.URL, fastRequest, "job-1")
	if st2 != http.StatusOK {
		t.Fatalf("retry: status %d", st2)
	}
	if src := h2.Get("X-Tilingd-Cache"); src != "journal" {
		t.Fatalf("retry source = %q, want journal", src)
	}
	if string(body1) != string(body2) {
		t.Fatalf("idempotent retry bytes differ:\n%s\n%s", body1, body2)
	}
	// A different key with the same body is not a journal hit at the
	// durability layer (the result cache may still answer it).
	_, _, h3 := postIdem(t, ts.URL, fastRequest, "job-2")
	if src := h3.Get("X-Tilingd-Cache"); src == "journal" {
		t.Fatalf("distinct key served from journal index")
	}
}

func TestRestartServesRecordedBytes(t *testing.T) {
	state := t.TempDir()
	s1, ts1, _ := testServer(t, Config{StateDir: state})
	st, body1, _ := postIdem(t, ts1.URL, fastRequest, "job-restart")
	if st != http.StatusOK {
		t.Fatalf("POST: status %d", st)
	}
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s1.Drain(dctx)
	ts1.Close()

	// A fresh process over the same state dir: the retry is answered the
	// recorded bytes without rerunning anything.
	_, ts2, _ := testServer(t, Config{StateDir: state})
	st2, body2, h := postIdem(t, ts2.URL, fastRequest, "job-restart")
	if st2 != http.StatusOK {
		t.Fatalf("retry after restart: status %d", st2)
	}
	if src := h.Get("X-Tilingd-Cache"); src != "journal" {
		t.Fatalf("post-restart retry source = %q, want journal", src)
	}
	if string(body1) != string(body2) {
		t.Fatalf("post-restart retry bytes differ:\n%s\n%s", body1, body2)
	}
}

// resumableRequest runs long enough to cross several generation
// boundaries, so a mid-run snapshot exists to resume from.
const resumableRequest = `{"kernel":"MM","size":48,"cache":"8k","seed":7,"maxEvaluations":120,"timeoutMs":30000}`

// plantCrashState writes into state exactly what a SIGKILL mid-search
// leaves behind: a journal holding accepted+started (and optionally a
// checkpointed record pointing at a persisted gen>=1 snapshot) with no
// done record.
func plantCrashState(t *testing.T, state string, ref *Server, key string, withCheckpoint bool) {
	t.Helper()
	var req TileRequest
	if err := json.Unmarshal([]byte(resumableRequest), &req); err != nil {
		t.Fatal(err)
	}
	norm, err := ref.normalize(req)
	if err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(state, "checkpoints")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	jr, _, err := journal.Open(filepath.Join(state, "journal"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if err := jr.Append(journal.Record{
		Op: journal.OpAccepted, Key: key, CacheKey: norm.key,
		Request: mustJSON(&req),
	}); err != nil {
		t.Fatal(err)
	}
	if err := jr.Append(journal.Record{Op: journal.OpStarted, Key: key}); err != nil {
		t.Fatal(err)
	}
	if !withCheckpoint {
		return
	}
	// Capture a real mid-run snapshot by running the identical search with
	// a hook that keeps the first gen>=1 checkpoint.
	var snap *ga.Checkpoint
	opt := norm.options(ref)
	opt.Checkpoint = func(c *ga.Checkpoint) error {
		if snap == nil && c.Gen >= 1 {
			snap = c
		}
		return nil
	}
	if _, err := core.OptimizeTiling(context.Background(), norm.nest, opt); err != nil {
		t.Fatalf("reference search: %v", err)
	}
	if snap == nil {
		t.Fatalf("search never crossed generation 1; raise maxEvaluations")
	}
	path := filepath.Join(ckptDir, "crash.ckpt")
	if err := cliutil.SaveCheckpoint(path, snap); err != nil {
		t.Fatal(err)
	}
	if err := jr.Append(journal.Record{
		Op: journal.OpCheckpointed, Key: key, Checkpoint: path, Gen: snap.Gen,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverResumesInterruptedSearchBitIdentical(t *testing.T) {
	// Reference: the uninterrupted run's exact response bytes.
	ref, tsRef, _ := testServer(t, Config{})
	st, want, _ := postIdem(t, tsRef.URL, resumableRequest, "")
	if st != http.StatusOK {
		t.Fatalf("reference POST: status %d", st)
	}

	state := t.TempDir()
	plantCrashState(t, state, ref, "job-crash", true)

	s, ts, cap := testServer(t, Config{StateDir: state})
	if n := s.Recover(context.Background()); n != 1 {
		t.Fatalf("Recover processed %d entries, want 1", n)
	}
	recs := journalRecoveredEvents(cap)
	if len(recs) != 1 || !recs[0].Resumed || recs[0].Gen < 1 || recs[0].Outcome != "ok" {
		t.Fatalf("JournalRecovered = %+v, want resumed ok from gen>=1", recs)
	}
	// The client's retry gets the recovered response — bit-identical to
	// the crash-free run (the ga resume contract, observed end to end).
	st2, got, h := postIdem(t, ts.URL, resumableRequest, "job-crash")
	if st2 != http.StatusOK {
		t.Fatalf("retry: status %d", st2)
	}
	if src := h.Get("X-Tilingd-Cache"); src != "journal" {
		t.Fatalf("retry source = %q, want journal", src)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed response differs from uninterrupted run:\n%s\n%s", got, want)
	}
	// The finished request's checkpoint files are gone.
	if _, err := os.Stat(filepath.Join(state, "checkpoints", "crash.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not cleaned up after recovery: %v", err)
	}
}

func TestRecoverTornJournalAndZeroLengthCheckpoint(t *testing.T) {
	ref, tsRef, _ := testServer(t, Config{})
	st, want, _ := postIdem(t, tsRef.URL, resumableRequest, "")
	if st != http.StatusOK {
		t.Fatalf("reference POST: status %d", st)
	}

	state := t.TempDir()
	plantCrashState(t, state, ref, "job-torn", true)
	// Zero the checkpoint (a crash mid-write on a filesystem that zero
	//-fills) and tear the journal's final record mid-byte.
	if err := os.WriteFile(filepath.Join(state, "checkpoints", "crash.ckpt"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(state, "journal", "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("journal segments: %v %v", segs, err)
	}
	seg := segs[len(segs)-1]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts, cap := testServer(t, Config{StateDir: state})
	if n := s.Recover(context.Background()); n != 1 {
		t.Fatalf("Recover processed %d entries, want 1", n)
	}
	// The torn record (the checkpointed op) was quarantined and counted...
	skipped := 0
	for _, e := range cap.Events() {
		if _, ok := e.(telemetry.JournalSkipped); ok {
			skipped++
		}
	}
	if skipped != 1 || s.dur.skipped != 1 {
		t.Fatalf("journal_skipped = %d (state %d), want 1", skipped, s.dur.skipped)
	}
	// ...so recovery never saw the checkpoint pointer and ran fresh; had
	// it survived, the zero-length snapshot would have been rejected as
	// corrupt by the typed load path and recovery would run fresh anyway.
	recs := journalRecoveredEvents(cap)
	if len(recs) != 1 || recs[0].Resumed || recs[0].Outcome != "ok" {
		t.Fatalf("JournalRecovered = %+v, want fresh ok", recs)
	}
	st2, got, h := postIdem(t, ts.URL, resumableRequest, "job-torn")
	if st2 != http.StatusOK || h.Get("X-Tilingd-Cache") != "journal" {
		t.Fatalf("retry: status %d source %q", st2, h.Get("X-Tilingd-Cache"))
	}
	if string(got) != string(want) {
		t.Fatalf("fresh recovery response differs from reference:\n%s\n%s", got, want)
	}
}

func TestRecoverZeroLengthCheckpointFallsBackToFresh(t *testing.T) {
	ref, _, _ := testServer(t, Config{})
	state := t.TempDir()
	plantCrashState(t, state, ref, "job-zck", true)
	// The journal is intact; only the snapshot file is destroyed. The
	// typed checkpoint load classifies it corrupt, and recovery restarts
	// the search from scratch instead of failing the request.
	if err := os.WriteFile(filepath.Join(state, "checkpoints", "crash.ckpt"), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	s, _, cap := testServer(t, Config{StateDir: state})
	if n := s.Recover(context.Background()); n != 1 {
		t.Fatalf("Recover processed %d entries, want 1", n)
	}
	recs := journalRecoveredEvents(cap)
	if len(recs) != 1 || recs[0].Resumed || recs[0].Outcome != "ok" {
		t.Fatalf("JournalRecovered = %+v, want fresh ok", recs)
	}
	if _, _, ok := s.dur.lookup("job-zck"); !ok {
		t.Fatalf("recovered response not in idempotency index")
	}
}

func TestJournalAppendFailureShedsRequest(t *testing.T) {
	plan := faultinject.New(1, faultinject.Rule{
		Point: faultinject.JournalWrite, Action: faultinject.Error, Times: 1,
	})
	_, ts, _ := testServer(t, Config{StateDir: t.TempDir(), Faults: plan})
	st, body, h := postIdem(t, ts.URL, fastRequest, "job-fault")
	if st != http.StatusServiceUnavailable {
		t.Fatalf("faulted journal append: status %d body %s, want 503", st, body)
	}
	if h.Get("Retry-After") == "" {
		t.Fatalf("shed response carries no Retry-After")
	}
	// The fault fired once; the retry is accepted and journaled.
	st2, _, _ := postIdem(t, ts.URL, fastRequest, "job-fault")
	if st2 != http.StatusOK {
		t.Fatalf("retry after fault: status %d", st2)
	}
}

func TestUnreplayableEntryClosedOut(t *testing.T) {
	state := t.TempDir()
	jr, _, err := journal.Open(filepath.Join(state, "journal"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// An accepted record whose kernel no longer exists cannot be re-run.
	if err := jr.Append(journal.Record{
		Op: journal.OpAccepted, Key: "job-gone", CacheKey: "x",
		Request: json.RawMessage(`{"kernel":"NOPE","cache":"8k"}`),
	}); err != nil {
		t.Fatal(err)
	}
	jr.Close()

	s, _, cap := testServer(t, Config{StateDir: state})
	if n := s.Recover(context.Background()); n != 1 {
		t.Fatalf("Recover processed %d entries, want 1", n)
	}
	recs := journalRecoveredEvents(cap)
	if len(recs) != 1 || recs[0].Outcome != "unreplayable" {
		t.Fatalf("JournalRecovered = %+v, want unreplayable", recs)
	}
	// The entry is closed: a second boot has nothing to recover.
	s2, _, _ := testServer(t, Config{StateDir: state})
	if n := s2.Recover(context.Background()); n != 0 {
		t.Fatalf("second Recover processed %d entries, want 0", n)
	}
}

func TestBatchItemsJournaledPerIndex(t *testing.T) {
	_, ts, _ := testServer(t, Config{StateDir: t.TempDir()})
	batch := `{"requests":[` + fastRequest + `,{"kernel":"MM","size":48,"cache":"32k","seed":7,"maxEvaluations":40,"timeoutMs":30000}]}`
	do := func() map[int]BatchItem {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/tile/batch", strings.NewReader(batch))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Idempotency-Key", "batch-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status %d", resp.StatusCode)
		}
		items := map[int]BatchItem{}
		dec := json.NewDecoder(resp.Body)
		for dec.More() {
			var it BatchItem
			if err := dec.Decode(&it); err != nil {
				t.Fatalf("decode item: %v", err)
			}
			items[it.Index] = it
		}
		return items
	}
	first := do()
	second := do()
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("items: %d then %d, want 2 each", len(first), len(second))
	}
	for i := 0; i < 2; i++ {
		if second[i].Source != "journal" {
			t.Fatalf("retried batch item %d source = %q, want journal", i, second[i].Source)
		}
		if string(first[i].Result) != string(second[i].Result) {
			t.Fatalf("batch item %d retry bytes differ", i)
		}
	}
}

func TestStateDirDisabledKeepsPlainPath(t *testing.T) {
	s, ts, _ := testServer(t, Config{})
	if s.dur != nil {
		t.Fatalf("durability armed without StateDir")
	}
	st, _, h := postIdem(t, ts.URL, fastRequest, "job-plain")
	if st != http.StatusOK || h.Get("X-Tilingd-Cache") == "journal" {
		t.Fatalf("plain server: status %d source %q", st, h.Get("X-Tilingd-Cache"))
	}
}
