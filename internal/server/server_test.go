package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// testServer builds a server with test-friendly bounds and a capture
// recorder.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *telemetry.Capture) {
	t.Helper()
	cap := &telemetry.Capture{}
	if cfg.Observer == nil {
		cfg.Observer = cap
	} else {
		cfg.Observer = telemetry.Multi(cfg.Observer, cap)
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, cap
}

// post sends one tile request and returns the status, body and the cache
// header.
func post(t *testing.T, url string, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/v1/tile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, buf.Bytes(), resp.Header
}

// fastRequest is a small bounded request that completes in well under a
// second: a budget-bounded search is deterministic per seed, which the
// cache tests rely on.
const fastRequest = `{"kernel":"MM","size":48,"cache":"8k","seed":7,"maxEvaluations":40,"timeoutMs":30000}`

func TestTileAndCacheHitByteIdentical(t *testing.T) {
	_, ts, cap := testServer(t, Config{})
	st, body1, hdr1 := post(t, ts.URL, fastRequest)
	if st != http.StatusOK {
		t.Fatalf("first request: status %d body %s", st, body1)
	}
	if got := hdr1.Get("X-Tilingd-Cache"); got != "miss" {
		t.Fatalf("first request cache header = %q, want miss", got)
	}
	var r TileResponse
	if err := json.Unmarshal(body1, &r); err != nil {
		t.Fatalf("bad response body: %v", err)
	}
	if len(r.Tile) == 0 || r.Degraded || r.Fallback {
		t.Fatalf("unexpected response %+v", r)
	}
	if r.Stopped != "budget" {
		t.Fatalf("stopped = %q, want budget (maxEvaluations hit)", r.Stopped)
	}

	st, body2, hdr2 := post(t, ts.URL, fastRequest)
	if st != http.StatusOK {
		t.Fatalf("second request: status %d", st)
	}
	if got := hdr2.Get("X-Tilingd-Cache"); got != "hit" {
		t.Fatalf("second request cache header = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache hit not byte-identical:\nmiss: %s\nhit:  %s", body1, body2)
	}

	var accepted, hits int
	for _, e := range cap.Events() {
		switch e := e.(type) {
		case telemetry.RequestAccepted:
			accepted++
		case telemetry.RequestDone:
			if e.CacheHit {
				hits++
			}
		}
	}
	if accepted != 2 || hits != 1 {
		t.Fatalf("accepted=%d cacheHits=%d, want 2 and 1", accepted, hits)
	}
}

func TestInlineSourceRequest(t *testing.T) {
	_, ts, _ := testServer(t, Config{})
	src := "array a(64,64) real8\narray b(64,64) real8\ndo i = 1, 64\n  do j = 1, 64\n    read a(i, j)\n    write b(j, i)\n  end\nend\n"
	req, _ := json.Marshal(TileRequest{Source: src, Cache: "8k", Seed: 3, MaxEvaluations: 30, TimeoutMs: 30000})
	st, body, _ := post(t, ts.URL, string(req))
	if st != http.StatusOK {
		t.Fatalf("status %d body %s", st, body)
	}
	var r TileResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Tile) != 2 || !strings.HasPrefix(r.Kernel, "inline:") {
		t.Fatalf("response %+v", r)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, _ := testServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"unknown kernel", `{"kernel":"NOPE","cache":"8k"}`},
		{"bad cache", `{"kernel":"MM","cache":"huge"}`},
		{"no kernel", `{"cache":"8k"}`},
		{"bad mode", `{"kernel":"MM","cache":"8k","mode":"mystery"}`},
		{"unknown field", `{"kernel":"MM","cache":"8k","bogus":1}`},
		{"negative bound", `{"kernel":"MM","cache":"8k","maxEvaluations":-1}`},
		{"bad source", `{"source":"do i = 1,","cache":"8k"}`},
		{"oversized sample", fmt.Sprintf(`{"kernel":"MM","cache":"8k","samplePoints":%d}`, maxSamplePoints+1)},
	}
	for _, c := range cases {
		st, body, _ := post(t, ts.URL, c.body)
		if st != http.StatusBadRequest {
			t.Errorf("%s: status %d body %s, want 400", c.name, st, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %s not a JSON error", c.name, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/tile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/tile: status %d, want 405", resp.StatusCode)
	}
}

func TestTimeoutNormalization(t *testing.T) {
	s, err := New(Config{DefaultTimeout: 7 * time.Second, MaxTimeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.normalize(TileRequest{Kernel: "MM", Cache: "8k"})
	if err != nil {
		t.Fatal(err)
	}
	if n.timeout != 7*time.Second {
		t.Fatalf("default timeout = %v, want 7s", n.timeout)
	}
	n, err = s.normalize(TileRequest{Kernel: "MM", Cache: "8k", TimeoutMs: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if n.timeout != 20*time.Second {
		t.Fatalf("capped timeout = %v, want 20s", n.timeout)
	}
}

func TestCacheKeyCoversResultRelevantFields(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := TileRequest{Kernel: "MM", Cache: "8k", Seed: 1}
	k0, err := s.normalize(base)
	if err != nil {
		t.Fatal(err)
	}
	variants := []TileRequest{
		{Kernel: "MM", Cache: "8k", Seed: 2},
		{Kernel: "MM", Cache: "32k", Seed: 1},
		{Kernel: "MM", Cache: "8k", Seed: 1, Mode: "order"},
		{Kernel: "MM", Cache: "8k", Seed: 1, MaxEvaluations: 5},
		{Kernel: "MM", Cache: "8k", Seed: 1, TimeoutMs: 1234},
		{Kernel: "MM", Size: 100, Cache: "8k", Seed: 1},
	}
	for i, v := range variants {
		kv, err := s.normalize(v)
		if err != nil {
			t.Fatal(err)
		}
		if kv.key == k0.key {
			t.Errorf("variant %d has the same cache key as the base request", i)
		}
	}
	// Workers is result-invariant and must NOT split the cache.
	kw, err := s.normalize(TileRequest{Kernel: "MM", Cache: "8k", Seed: 1, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if kw.key != k0.key {
		t.Fatal("worker count split the cache key; results are worker-invariant")
	}
}

func TestHealthz(t *testing.T) {
	s, ts, _ := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Breaker != "closed" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, h)
	}

	go s.Drain(context.Background())
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGateShedsPastQueue(t *testing.T) {
	g := newGate(1, 1)
	rel1, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Second acquirer waits in the queue.
	queued := make(chan struct{})
	var rel2 func()
	var err2 error
	go func() {
		rel2, err2 = g.acquire(context.Background())
		close(queued)
	}()
	waitFor(t, func() bool { return g.queued() == 1 })
	// Third is shed: slot busy, queue full.
	if _, err := g.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("third acquire = %v, want errQueueFull", err)
	}
	rel1()
	<-queued
	if err2 != nil {
		t.Fatalf("queued acquire = %v", err2)
	}
	rel2()
	if g.running() != 0 || g.queued() != 0 {
		t.Fatalf("gate not drained: running=%d queued=%d", g.running(), g.queued())
	}
}

func TestGateWaiterLeavesOnCancel(t *testing.T) {
	g := newGate(1, 4)
	rel, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.acquire(ctx)
		done <- err
	}()
	waitFor(t, func() bool { return g.queued() == 1 })
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter stuck in queue")
	}
	waitFor(t, func() bool { return g.queued() == 0 })
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction; LRU order wrong")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being refreshed")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	var calls int
	var mu sync.Mutex
	release := make(chan struct{})
	fn := func() (computed, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		<-release
		return computed{body: []byte("X")}, nil
	}
	const n = 5
	var wg sync.WaitGroup
	shared := make([]bool, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, sh, err := g.do("k", fn)
			if err != nil {
				t.Error(err)
			}
			shared[i], bodies[i] = sh, res.body
		}(i)
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return calls == 1 })
	// All five callers are now either the leader or waiting on it.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	leaders := 0
	for i := range shared {
		if !shared[i] {
			leaders++
		}
		if string(bodies[i]) != "X" {
			t.Fatalf("caller %d body %q", i, bodies[i])
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	cap := &telemetry.Capture{}
	b := newBreaker(2, time.Minute, clock, cap)

	if ok, _ := b.allow(); !ok {
		t.Fatal("closed breaker refused a request")
	}
	b.record(false, false)
	if ok, _ := b.allow(); !ok {
		t.Fatal("one failure below threshold must not trip")
	}
	b.record(false, false)
	if b.current() != breakerOpen {
		t.Fatalf("state after threshold failures = %v", b.current())
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker allowed a search before cooldown")
	}

	now = now.Add(2 * time.Minute)
	ok, probe := b.allow()
	if !ok || !probe {
		t.Fatalf("post-cooldown allow = (%v, %v), want a probe", ok, probe)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("half-open breaker allowed a second concurrent search")
	}
	b.record(false, true) // probe fails: reopen
	if b.current() != breakerOpen {
		t.Fatalf("state after failed probe = %v", b.current())
	}

	now = now.Add(2 * time.Minute)
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatal("second probe refused")
	}
	b.record(true, true) // probe succeeds: close
	if b.current() != breakerClosed {
		t.Fatalf("state after successful probe = %v", b.current())
	}
	if ok, probe := b.allow(); !ok || probe {
		t.Fatal("closed breaker must allow ordinary searches again")
	}

	var transitions []string
	for _, e := range cap.Events() {
		if bs, ok := e.(telemetry.BreakerState); ok {
			transitions = append(transitions, bs.From+">"+bs.To)
		}
	}
	want := []string{"closed>open", "open>half-open", "half-open>open", "open>half-open", "half-open>closed"}
	if fmt.Sprint(transitions) != fmt.Sprint(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
