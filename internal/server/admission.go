package server

import (
	"context"
	"errors"
	"sync"
)

// errQueueFull is the load-shedding signal: the run slots and the bounded
// wait queue are both full, so the request is rejected with 429 and a
// Retry-After hint instead of being buffered without bound.
var errQueueFull = errors.New("server: admission queue full")

// gate is the admission control: at most maxRunning requests hold a run
// slot, at most maxQueue more wait for one, and everything beyond that is
// shed immediately. Waiters leave promptly when their context is
// cancelled (client gone) — a dead waiter never blocks a live one.
type gate struct {
	slots    chan struct{} // buffered maxRunning; holding a token = running
	maxQueue int

	mu      sync.Mutex
	waiting int
}

func newGate(maxRunning, maxQueue int) *gate {
	return &gate{slots: make(chan struct{}, maxRunning), maxQueue: maxQueue}
}

// acquire claims a run slot, waiting in the bounded queue when all slots
// are busy. It returns a release function on success, errQueueFull when
// the queue is full (shed the request), or the context error when the
// caller gave up while queued.
func (g *gate) acquire(ctx context.Context) (release func(), err error) {
	select {
	case g.slots <- struct{}{}:
		return g.releaseFn(), nil
	default:
	}
	g.mu.Lock()
	if g.waiting >= g.maxQueue {
		g.mu.Unlock()
		return nil, errQueueFull
	}
	g.waiting++
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.waiting--
		g.mu.Unlock()
	}()
	select {
	case g.slots <- struct{}{}:
		return g.releaseFn(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *gate) releaseFn() func() {
	var once sync.Once
	return func() { once.Do(func() { <-g.slots }) }
}

// running reports the slots currently held.
func (g *gate) running() int { return len(g.slots) }

// queued reports the requests waiting for a slot.
func (g *gate) queued() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiting
}
