package server

import (
	"net/http"

	"repro/internal/kernels"
)

// KernelInfo describes one catalog kernel in the GET /v1/kernels listing:
// everything a client needs to build a tile request without reading the
// paper — the name to put in TileRequest.Kernel, the size range the paper
// evaluates, and whether the kernel's residual misses are conflict-bound
// (tiling alone will not cure them; padding would).
type KernelInfo struct {
	Name          string  `json:"name"`
	Program       string  `json:"program"`
	Description   string  `json:"description"`
	Depth         int     `json:"depth"`
	DefaultSize   int64   `json:"defaultSize"`
	Sizes         []int64 `json:"sizes,omitempty"`
	ConflictBound bool    `json:"conflictBound,omitempty"`
}

// kernelList is the GET /v1/kernels body.
type kernelList struct {
	Kernels []KernelInfo `json:"kernels"`
}

// handleKernels answers GET /v1/kernels with the Table-1 catalog in
// stable name order.
func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	all := kernels.All()
	out := kernelList{Kernels: make([]KernelInfo, len(all))}
	for i, k := range all {
		out.Kernels[i] = KernelInfo{
			Name:          k.Name,
			Program:       k.Program,
			Description:   k.Description,
			Depth:         k.Depth,
			DefaultSize:   k.DefaultSize,
			Sizes:         k.Sizes,
			ConflictBound: k.ConflictBound,
		}
	}
	writeJSON(w, http.StatusOK, out)
}
