package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// postBatch sends one batch request and returns the status, the parsed
// NDJSON items keyed by index (nil on non-200), and the headers.
func postBatch(t *testing.T, url, body string) (int, map[int]BatchItem, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/v1/tile/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST batch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, resp.Header
	}
	items := map[int]BatchItem{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var it BatchItem
		if err := json.Unmarshal(sc.Bytes(), &it); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if _, dup := items[it.Index]; dup {
			t.Fatalf("index %d answered twice", it.Index)
		}
		items[it.Index] = it
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read batch stream: %v", err)
	}
	return resp.StatusCode, items, resp.Header
}

// TestBatchStreamsPerItemResults: a batch mixing a result-cache hit, a
// fresh search and an invalid item answers every index, and each result
// is byte-identical to what POST /v1/tile returns for the same request.
func TestBatchStreamsPerItemResults(t *testing.T) {
	_, ts, _ := testServer(t, Config{})

	// Prime the result cache with the single-request endpoint.
	st, single, _ := post(t, ts.URL, fastRequest)
	if st != http.StatusOK {
		t.Fatalf("prime: status %d body %s", st, single)
	}

	other := `{"kernel":"MM","size":48,"cache":"8k","seed":8,"maxEvaluations":40,"timeoutMs":30000}`
	st, items, hdr := postBatch(t, ts.URL,
		`{"requests":[`+fastRequest+`,`+other+`,{"kernel":"NOPE","cache":"8k"}]}`)
	if st != http.StatusOK {
		t.Fatalf("batch: status %d", st)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	if n := hdr.Get("X-Tilingd-Batch"); n != "3" {
		t.Fatalf("X-Tilingd-Batch %q, want 3", n)
	}
	if len(items) != 3 {
		t.Fatalf("answered %d items, want 3: %v", len(items), items)
	}
	if it := items[0]; it.Error != "" || !bytes.Equal(it.Result, single) || it.Source != "hit" {
		t.Fatalf("item 0 = %+v, want the cached single-request bytes as a hit", it)
	}
	if it := items[1]; it.Error != "" || it.Outcome != "ok" {
		t.Fatalf("item 1 = %+v, want a fresh ok result", it)
	}
	var r TileResponse
	if err := json.Unmarshal(items[1].Result, &r); err != nil || len(r.Tile) == 0 {
		t.Fatalf("item 1 result %s not a tile response (%v)", items[1].Result, err)
	}
	if it := items[2]; it.Result != nil || !strings.Contains(it.Error, "unknown kernel") {
		t.Fatalf("item 2 = %+v, want an unknown-kernel error line", it)
	}

	// The fresh item is now cached: a single request for it must serve the
	// exact batch bytes.
	st, again, hdr2 := post(t, ts.URL, other)
	if st != http.StatusOK || hdr2.Get("X-Tilingd-Cache") != "hit" {
		t.Fatalf("repeat of batch item: status %d cache %q", st, hdr2.Get("X-Tilingd-Cache"))
	}
	if !bytes.Equal(again, items[1].Result) {
		t.Fatalf("batch item bytes diverge from single-request bytes:\n%s\nvs\n%s", items[1].Result, again)
	}
}

// TestBatchRejectsMalformedWhole: empty and oversized batches, and bodies
// that do not parse, are rejected whole with 400 before any item runs.
func TestBatchRejectsMalformedWhole(t *testing.T) {
	_, ts, _ := testServer(t, Config{})
	var many []string
	for i := 0; i <= maxBatchItems; i++ {
		many = append(many, fastRequest)
	}
	for _, body := range []string{
		`{"requests":[]}`,
		`{}`,
		`{"requests":[` + strings.Join(many, ",") + `]}`,
		`{"bogus":1}`,
		`not json`,
	} {
		st, _, _ := postBatch(t, ts.URL, body)
		if st != http.StatusBadRequest {
			t.Errorf("body %.40q: status %d, want 400", body, st)
		}
	}
}

// TestBatchShedsWhileDraining: a draining server rejects whole batches
// with 503 like single requests.
func TestBatchShedsWhileDraining(t *testing.T) {
	s, ts, _ := testServer(t, Config{})
	s.Drain(context.Background())
	st, _, _ := postBatch(t, ts.URL, `{"requests":[`+fastRequest+`]}`)
	if st != http.StatusServiceUnavailable {
		t.Fatalf("draining batch: status %d, want 503", st)
	}
}

// TestBatchCoalescesDuplicateItems: identical items in one batch are
// deduplicated by the singleflight group or the result cache — every
// item answers with the same bytes and only one search runs.
func TestBatchCoalescesDuplicateItems(t *testing.T) {
	_, ts, cap := testServer(t, Config{})
	st, items, _ := postBatch(t, ts.URL,
		`{"requests":[`+fastRequest+`,`+fastRequest+`,`+fastRequest+`]}`)
	if st != http.StatusOK || len(items) != 3 {
		t.Fatalf("status %d items %v", st, items)
	}
	for i := 1; i < 3; i++ {
		if !bytes.Equal(items[i].Result, items[0].Result) {
			t.Fatalf("duplicate items diverged:\n%s\nvs\n%s", items[0].Result, items[i].Result)
		}
	}
	var starts int
	for _, e := range cap.Events() {
		if e.Kind() == telemetry.KindSearchStart {
			starts++
		}
	}
	if starts > 1 {
		t.Fatalf("%d searches ran for 3 identical items, want 1", starts)
	}
}

// TestKernelsCatalog: GET /v1/kernels lists the Table-1 catalog with the
// metadata a client needs to build requests.
func TestKernelsCatalog(t *testing.T) {
	_, ts, _ := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/kernels")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var list kernelList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Kernels) == 0 {
		t.Fatal("empty catalog")
	}
	byName := map[string]KernelInfo{}
	for _, k := range list.Kernels {
		byName[k.Name] = k
	}
	mm, ok := byName["MM"]
	if !ok || mm.Depth == 0 || mm.DefaultSize == 0 || mm.Description == "" {
		t.Fatalf("MM entry missing or incomplete: %+v", mm)
	}
	if add, ok := byName["ADD"]; !ok || !add.ConflictBound {
		t.Fatalf("ADD should be listed conflict-bound: %+v", byName["ADD"])
	}

	// The catalog is read-only: POST is a method mismatch.
	postResp, err := http.Post(ts.URL+"/v1/kernels", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/kernels: status %d, want 405", postResp.StatusCode)
	}
}

// TestEvalCacheAcrossRequests: two requests differing only in seed share
// evaluation-cache state (the analyzer pool at minimum), and the answers
// are byte-identical to a server running with the cache disabled — the
// server-level face of the determinism contract.
func TestEvalCacheAcrossRequests(t *testing.T) {
	sOn, tsOn, capOn := testServer(t, Config{})
	sOff, tsOff, capOff := testServer(t, Config{EvalCacheEntries: -1})
	if sOn.evalCache == nil || sOff.evalCache != nil {
		t.Fatalf("evalCache wiring: on=%v off=%v", sOn.evalCache, sOff.evalCache)
	}
	other := `{"kernel":"MM","size":48,"cache":"8k","seed":8,"maxEvaluations":40,"timeoutMs":30000}`
	for _, req := range []string{fastRequest, other} {
		stOn, bodyOn, _ := post(t, tsOn.URL, req)
		stOff, bodyOff, _ := post(t, tsOff.URL, req)
		if stOn != http.StatusOK || stOff != http.StatusOK {
			t.Fatalf("status on=%d off=%d", stOn, stOff)
		}
		if !bytes.Equal(bodyOn, bodyOff) {
			t.Fatalf("shared cache changed a response:\non:  %s\noff: %s", bodyOn, bodyOff)
		}
	}
	if hits := capOn.Counters().EvalCacheHits; hits == 0 {
		t.Fatal("cache-enabled server recorded no evaluation-cache hits across requests")
	}
	if hits := capOff.Counters().EvalCacheHits; hits != 0 {
		t.Fatalf("cache-disabled server recorded %d evaluation-cache hits", hits)
	}
}
