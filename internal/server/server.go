// Package server implements tilingd: a long-running HTTP/JSON service
// that answers tiling requests (kernel + cache geometry + search bounds)
// with near-optimal tile sizes from the CME+GA search. Robustness is the
// design centre:
//
//   - a bounded admission gate sheds load explicitly (429 + Retry-After)
//     instead of queueing without bound;
//   - every request carries a deadline mapped onto the search runtime's
//     budget machinery, so an expensive search returns its best-so-far
//     tile instead of timing out empty-handed;
//   - a singleflight-deduplicated LRU cache serves repeated requests the
//     exact bytes of the first answer (fixed-seed searches are
//     deterministic, so cache hits are byte-identical to misses);
//   - a circuit breaker takes the GA out of rotation when searches fail
//     repeatedly and serves the capacity-heuristic fallback tile, tagged
//     degraded, until a half-open probe proves the search healthy again;
//   - a process-wide shared evaluation cache memoizes per-candidate
//     fitness values, finalized stats and analyzer pools across requests,
//     so even requests differing in seed or mode reuse each other's work
//     over the same kernel and geometry — without changing any result;
//   - POST /v1/tile/batch answers up to 16 kernels in one call, streaming
//     per-item NDJSON results as they finish, with per-item admission
//     against the same bounded gate and the same singleflight coalescing;
//   - a graceful drain answers every accepted in-flight request before
//     the process exits, cancelling stragglers down to their best-so-far
//     results when the grace period runs out.
//
// The package depends only on the telemetry Recorder interface; the
// tilingd command wires concrete sinks (JSONL, expvar) on the outside.
package server

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/evalcache"
	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

// Config sizes the server's robustness machinery. The zero value is
// usable: every field has a production-shaped default.
type Config struct {
	// MaxConcurrent bounds the searches running at once
	// (0 = min(4, NumCPU)); each search fans out its own evaluation
	// workers, so this is intentionally small.
	MaxConcurrent int
	// QueueDepth bounds the requests waiting for a run slot (0 = 64).
	// A request arriving past the queue is shed with 429.
	QueueDepth int
	// DefaultTimeout is the per-request search deadline when the request
	// names none (0 = 30s); MaxTimeout caps what a request may ask for
	// (0 = 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// StallTimeout arms the per-evaluation watchdog on every search
	// (0 = 10s); a stuck evaluation is quarantined, not waited on.
	StallTimeout time.Duration
	// CacheEntries bounds the LRU result cache (0 = 512).
	CacheEntries int
	// EvalCacheEntries bounds the process-wide shared evaluation cache
	// that search pipelines consult across requests (0 = the evalcache
	// default, negative = disabled). Unlike the result cache — which
	// serves whole response bodies for byte-identical requests — the
	// evaluation cache memoizes per-candidate fitness values and analyzer
	// pools, so even requests differing in seed or mode reuse each
	// other's work over the same kernel and geometry.
	EvalCacheEntries int
	// BreakerThreshold is the consecutive-failure count that trips the
	// circuit breaker (0 = 5); BreakerCooldown is how long it stays open
	// before a half-open probe (0 = 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// RetryAfter is the hint returned with shed responses (0 = 1s).
	RetryAfter time.Duration
	// DefaultIslands is the GA island count applied to requests that name
	// none (0 = single population). Requests may still override it.
	DefaultIslands int
	// StateDir arms the durability layer: a crash-safe request journal
	// plus per-search checkpoints live under it, every accepted request is
	// journaled before its search runs, duplicate idempotent retries are
	// served the recorded response bytes, and Recover replays whatever a
	// crash interrupted. Empty disables durability (the default).
	StateDir string
	// JournalSync selects the journal's append durability
	// (journal.SyncAlways by default; journal.SyncNone trades the last few
	// appends on crash for throughput).
	JournalSync journal.SyncMode
	// CheckpointInterval throttles in-flight search snapshots to one per
	// interval (0 = every generation boundary).
	CheckpointInterval time.Duration
	// Observer receives the server's request lifecycle events and every
	// search's telemetry. It must be safe for concurrent use: parallel
	// requests share it. Nil disables telemetry.
	Observer telemetry.Recorder
	// Faults arms deterministic fault injection (server.accept, cache.get,
	// plus the search-pipeline points via the request context). Nil in
	// production.
	Faults *faultinject.Plan
	// Now is the clock (nil = time.Now); tests inject a fake to step the
	// breaker cooldown.
	Now func() time.Time
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = min(4, runtime.NumCPU())
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	} else if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 10 * time.Second
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Server is the tiling service. Create with New, expose Handler on an
// http.Server, and call Drain before exiting.
type Server struct {
	cfg     Config
	gate    *gate
	cache   *resultCache
	flight  *flightGroup
	breaker *breaker
	reqID   atomic.Uint64

	// evalCache is the process-wide shared evaluation cache (nil when
	// disabled); every search this server runs shares it.
	evalCache *evalcache.Cache

	// dur is the crash-safety layer (nil without Config.StateDir).
	dur *durability

	// mu serializes admission against Drain: a request is either counted
	// in wg before the drain flips draining, or rejected after.
	mu       sync.Mutex
	draining bool
	wg       sync.WaitGroup

	// searchCtx governs every search's lifetime: it carries the fault
	// plan and is cancelled only by a forced drain, so searches survive
	// individual client disconnects (their results are cached for the
	// next caller) but stop — at their best-so-far — when the process
	// must exit.
	searchCtx    context.Context
	cancelSearch context.CancelFunc
}

// New builds a Server from cfg. With Config.StateDir set it also opens
// (replaying and compacting) the request journal; a journal that cannot
// be opened at all — as opposed to one with corrupt records, which are
// quarantined — fails construction rather than running without the
// durability the configuration asked for.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(faultinject.With(context.Background(), cfg.Faults))
	var ec *evalcache.Cache
	if cfg.EvalCacheEntries >= 0 {
		ec = evalcache.New(evalcache.Config{
			MaxEntries: cfg.EvalCacheEntries,
			Observer:   cfg.Observer,
		})
	}
	s := &Server{
		cfg:          cfg,
		gate:         newGate(cfg.MaxConcurrent, cfg.QueueDepth),
		cache:        newResultCache(cfg.CacheEntries),
		flight:       newFlightGroup(),
		breaker:      newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Now, cfg.Observer),
		evalCache:    ec,
		searchCtx:    ctx,
		cancelSearch: cancel,
	}
	if cfg.StateDir != "" {
		dur, err := openDurability(cfg)
		if err != nil {
			cancel()
			return nil, err
		}
		s.dur = dur
	}
	return s, nil
}

// Handler returns the service's HTTP surface, mounted on an explicit
// versioned router: POST /v1/tile, POST /v1/tile/batch, GET /v1/kernels
// and GET /healthz. Method mismatches are answered by the mux with 405.
// The command additionally mounts /debug/vars.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tile", s.handleTile)
	mux.HandleFunc("POST /v1/tile/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// emit forwards one event to the observer, if any.
func (s *Server) emit(e telemetry.Event) {
	if s.cfg.Observer != nil {
		s.cfg.Observer.Event(e)
	}
}

// shed rejects a request at admission with the shedding status and a
// Retry-After hint.
func (s *Server) shed(w http.ResponseWriter, status int, reason string) {
	s.emit(telemetry.RequestShed{Reason: reason})
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	writeJSON(w, status, errorResponse{Error: "overloaded: " + reason})
}

// admitCtx runs the admission decision for one unit of search work: the
// injectable accept fault, then the bounded gate, then the drain check.
// It never writes a response — the single-request handler and the batch
// streamer render a rejection their own way. On success the work is
// registered in the drain WaitGroup and holds a run slot; finish must be
// called exactly once. On rejection it returns the HTTP status and shed
// reason to report.
func (s *Server) admitCtx(ctx context.Context) (finish func(), status int, reason string) {
	if err := s.cfg.Faults.Fire(ctx, faultinject.ServerAccept); err != nil {
		return nil, http.StatusTooManyRequests, "injected"
	}
	release, err := s.gate.acquire(ctx)
	switch {
	case errors.Is(err, errQueueFull):
		return nil, http.StatusTooManyRequests, "queue_full"
	case err != nil:
		// The wait for a run slot ended without one (the request context
		// expired while queued). Shed like any other overload so the
		// response carries the Retry-After hint.
		return nil, http.StatusServiceUnavailable, "slot_timeout"
	}
	// The slot is held. Register against drain — or, if a drain began
	// while this request was queued, give the slot back and reject: the
	// drain contract covers requests accepted before it started.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		release()
		return nil, http.StatusServiceUnavailable, "draining"
	}
	s.wg.Add(1)
	s.mu.Unlock()
	return func() {
		release()
		s.wg.Done()
	}, 0, ""
}

// admit is admitCtx for a plain HTTP request: a rejection is written
// directly as a shed response.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (finish func(), ok bool) {
	finish, status, reason := s.admitCtx(r.Context())
	if finish == nil {
		s.shed(w, status, reason)
		return nil, false
	}
	return finish, true
}

// handleTile answers POST /v1/tile.
func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	started := s.cfg.Now()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.shed(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req TileRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	norm, err := s.normalize(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	idem := r.Header.Get("Idempotency-Key")
	if len(idem) > maxIdemKeyBytes {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "Idempotency-Key exceeds 256 bytes"})
		return
	}
	norm.idemKey = idemKeyFor(idem, norm)
	// A duplicate idempotent retry is answered the exact recorded bytes
	// before it costs an admission slot.
	if s.dur != nil {
		if body, outcome, ok := s.dur.lookup(norm.idemKey); ok {
			id := s.reqID.Add(1)
			s.emit(telemetry.RequestAccepted{ID: id, Kernel: norm.kernelName, Mode: norm.mode})
			s.respond(w, id, started, body, outcome, "journal")
			return
		}
	}

	finish, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer finish()
	id := s.reqID.Add(1)
	s.emit(telemetry.RequestAccepted{ID: id, Kernel: norm.kernelName, Mode: norm.mode})

	body, outcome, source, err := s.durableServe(r.Context(), norm, &req)
	if err != nil {
		s.emit(telemetry.RequestDone{ID: id, Outcome: "error", Elapsed: s.cfg.Now().Sub(started)})
		if errors.Is(err, errJournalUnavailable) {
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	s.respond(w, id, started, body, outcome, source)
}

// serve resolves one admitted, normalized request to response bytes.
// Result cache first: a hit answers without touching the breaker or the
// search pipeline (the cache.get fault point forces the miss path so
// chaos runs can prove hit/miss byte-identity); misses go through the
// singleflight group so concurrent identical requests — from /v1/tile or
// items of a batch — run one search. source labels where the bytes came
// from: "hit", "miss", "coalesced" or "bypass".
func (s *Server) serve(ctx context.Context, norm *normRequest) (body []byte, outcome, source string, err error) {
	source = "miss"
	if err := s.cfg.Faults.Fire(ctx, faultinject.CacheGet); err != nil {
		source = "bypass"
	} else if body, hit := s.cache.get(norm.key); hit {
		return body, "ok", "hit", nil
	}
	res, shared, err := s.flight.do(norm.key, func() (computed, error) {
		return s.compute(norm)
	})
	if err != nil {
		return nil, "", "", err
	}
	if res.cacheable && source != "bypass" {
		s.cache.put(norm.key, res.body)
	}
	if shared {
		source = "coalesced"
	}
	return res.body, res.outcome, source, nil
}

// respond writes one 200 answer and closes the request's telemetry.
func (s *Server) respond(w http.ResponseWriter, id uint64, started time.Time, body []byte, outcome, source string) {
	s.emit(telemetry.RequestDone{
		ID: id, Outcome: outcome, CacheHit: source == "hit",
		Elapsed: s.cfg.Now().Sub(started),
	})
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Tilingd-Cache", source)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// compute produces the response for one cache miss: a real search when the
// breaker allows it, the heuristic fallback when it does not.
func (s *Server) compute(norm *normRequest) (computed, error) {
	allowed, probe := s.breaker.allow()
	if !allowed {
		return s.fallback(norm)
	}
	resp, failure, err := s.search(norm)
	s.breaker.record(err == nil && !failure, probe)
	if err != nil {
		return computed{}, err
	}
	body := mustJSON(resp)
	if failure {
		return computed{body: body, outcome: "degraded", failure: true}, nil
	}
	return computed{body: body, outcome: "ok", cacheable: true}, nil
}

// search runs the GA search for the request, retrying once from scratch
// when a recovered checkpoint turns out to be unusable (wrong options, a
// stale snapshot): a bad checkpoint must cost the resume, never the
// request.
func (s *Server) search(norm *normRequest) (*TileResponse, bool, error) {
	resp, failure, err := s.searchOnce(norm)
	if err != nil && norm.resume != nil {
		norm.resume = nil
		resp, failure, err = s.searchOnce(norm)
	}
	return resp, failure, err
}

// searchOnce runs the GA search for the request. failure reports a
// completed but degraded run (quarantined evaluations) — it counts
// against the breaker like an error, but still yields a usable
// best-so-far response.
func (s *Server) searchOnce(norm *normRequest) (*TileResponse, bool, error) {
	opt := norm.options(s)
	resp := &TileResponse{Kernel: norm.kernelName, Mode: norm.mode}
	var quarantined int
	switch norm.mode {
	case "order":
		res, err := core.OptimizeTilingOrder(s.searchCtx, norm.nest, opt)
		if err != nil {
			return nil, true, err
		}
		resp.Tile, resp.Order, resp.Stopped = res.Tile, res.Order, res.Stopped.String()
		resp.Generations, resp.Evaluations = res.GA.Generations, res.GA.Evaluations
		resp.Before, resp.After = ratio(res.Before), ratio(res.After)
		quarantined = len(res.Quarantined)
	default:
		res, err := core.OptimizeTiling(s.searchCtx, norm.nest, opt)
		if err != nil {
			return nil, true, err
		}
		resp.Tile, resp.Stopped = res.Tile, res.Stopped.String()
		resp.Generations, resp.Evaluations = res.GA.Generations, res.GA.Evaluations
		resp.Before, resp.After = ratio(res.Before), ratio(res.After)
		quarantined = len(res.Quarantined)
	}
	resp.Quarantined = quarantined
	resp.Degraded = quarantined > 0
	return resp, resp.Degraded, nil
}

// fallback answers with the search-free capacity-heuristic tile, tagged
// degraded — the service stays available while the breaker is open.
func (s *Server) fallback(norm *normRequest) (computed, error) {
	tile, err := core.HeuristicTile(norm.nest, norm.cacheCfg)
	if err != nil {
		return computed{}, err
	}
	resp := &TileResponse{
		Kernel: norm.kernelName, Mode: norm.mode, Tile: tile,
		Stopped: "fallback", Degraded: true, Fallback: true,
	}
	return computed{body: mustJSON(resp), outcome: "fallback"}, nil
}

// health is the /healthz body.
type health struct {
	Status   string `json:"status"`
	Breaker  string `json:"breaker"`
	InFlight int    `json:"inFlight"`
	Queued   int    `json:"queued"`
	// JournalSkipped is the quarantined-record count from startup journal
	// replay (only present when durability is armed and non-zero), so a
	// corrupting disk is visible on the health surface.
	JournalSkipped int `json:"journalSkipped,omitempty"`
}

// handleHealth answers GET /healthz: 200 while serving, 503 while
// draining (so load balancers stop routing here), with the breaker state
// and load visible either way.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	h := health{
		Status:   "ok",
		Breaker:  s.breaker.current().String(),
		InFlight: s.gate.running(),
		Queued:   s.gate.queued(),
	}
	if s.dur != nil {
		h.JournalSkipped = s.dur.skipped
	}
	status := http.StatusOK
	if draining {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// InFlight reports the requests currently holding run slots.
func (s *Server) InFlight() int { return s.gate.running() }

// Drain gracefully stops the server: new requests are rejected with 503,
// and every already-accepted request is answered. When ctx expires before
// the in-flight searches finish naturally, they are cancelled — the
// bounded-search runtime turns that into best-so-far responses, so even a
// forced drain loses no accepted request. Drain is idempotent; it returns
// once every accepted request has been answered.
func (s *Server) Drain(ctx context.Context) {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	inFlight := s.gate.running() + s.gate.queued()
	s.mu.Unlock()

	// Persist the throttled-back search snapshots now: if the process is
	// killed during the grace period, restart recovery resumes from here
	// instead of the last interval boundary.
	if first && s.dur != nil {
		s.dur.flush()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	forced := false
	select {
	case <-done:
	case <-ctx.Done():
		// Grace expired: cancel the searches; they stop at the next
		// candidate boundary and still answer with their best-so-far.
		forced = true
		s.cancelSearch()
		<-done
	}
	if first {
		if s.dur != nil {
			// Every accepted request is answered (and journaled done) by
			// now; the journal can close cleanly.
			s.dur.close()
		}
		s.emit(telemetry.ServerDrained{InFlight: inFlight, Forced: forced})
	}
}

// writeJSON writes one JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(mustJSON(v))
}
