package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// maxBatchItems bounds one batch request: enough to tile every catalog
// kernel in one call, small enough that a single client cannot occupy the
// whole admission queue.
const maxBatchItems = 16

// BatchRequest is the JSON body of POST /v1/tile/batch: an ordered list
// of tile requests answered in one call.
type BatchRequest struct {
	Requests []TileRequest `json:"requests"`
}

// BatchItem is one NDJSON line of the batch response. Items stream in
// completion order — Index maps each line back to its request. Exactly
// one of Result and Error is set; Result carries the same bytes POST
// /v1/tile would have answered with, so batch and single-request answers
// are byte-identical per item.
type BatchItem struct {
	Index  int             `json:"index"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// Outcome and Source mirror the single-request telemetry: outcome
	// "ok"/"degraded"/"fallback", source "hit"/"miss"/"coalesced"/
	// "bypass" ("" on error lines).
	Outcome string `json:"outcome,omitempty"`
	Source  string `json:"source,omitempty"`
}

// ndjsonWriter serializes concurrent item completions onto one response
// stream, flushing each line so clients see results as they finish.
type ndjsonWriter struct {
	mu sync.Mutex
	w  http.ResponseWriter
	f  http.Flusher
}

func (nw *ndjsonWriter) write(item BatchItem) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	_, _ = nw.w.Write(append(mustJSON(item), '\n'))
	if nw.f != nil {
		nw.f.Flush()
	}
}

// handleBatch answers POST /v1/tile/batch. Every item is admitted
// individually against the same bounded gate as single requests — a batch
// does not get to jump the queue, and one shed item degrades to an error
// line instead of failing the batch. Items run concurrently (bounded by
// the gate), deduplicate through the same singleflight group and result
// cache as /v1/tile, and stream back as NDJSON in completion order.
// Malformed bodies, empty batches and oversized batches are rejected
// whole with 400 before any item runs; per-item validation failures
// become error lines so the valid items still get answers.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.shed(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var batch BatchRequest
	if err := decodeJSON(w, r, &batch); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(batch.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch"})
		return
	}
	if len(batch.Requests) > maxBatchItems {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "batch exceeds the server limit of " + strconv.Itoa(maxBatchItems) + " items"})
		return
	}

	idem := r.Header.Get("Idempotency-Key")
	if len(idem) > maxIdemKeyBytes {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "Idempotency-Key exceeds 256 bytes"})
		return
	}

	// Normalize before streaming starts: invalid items are decided (and
	// reported as error lines) without spending an admission slot.
	norms := make([]*normRequest, len(batch.Requests))
	errs := make([]error, len(batch.Requests))
	for i, req := range batch.Requests {
		norms[i], errs[i] = s.normalize(req)
		if errs[i] == nil {
			// Each item gets its own durability identity: the batch's
			// Idempotency-Key header suffixed with the item index, else the
			// item's canonical cache key.
			key := idem
			if key != "" {
				key += "#" + strconv.Itoa(i)
			}
			norms[i].idemKey = idemKeyFor(key, norms[i])
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Tilingd-Batch", strconv.Itoa(len(batch.Requests)))
	w.WriteHeader(http.StatusOK)
	f, _ := w.(http.Flusher)
	out := &ndjsonWriter{w: w, f: f}

	started := s.cfg.Now()
	var wg sync.WaitGroup
	for i := range batch.Requests {
		if errs[i] != nil {
			out.write(BatchItem{Index: i, Error: errs[i].Error()})
			continue
		}
		wg.Add(1)
		go func(i int, norm *normRequest, req TileRequest) {
			defer wg.Done()
			out.write(s.batchItem(r, norm, &req, i, started))
		}(i, norms[i], batch.Requests[i])
	}
	wg.Wait()
}

// batchItem runs one admitted batch item through the shared serve path
// and renders its NDJSON line. The request lifecycle telemetry is the
// same as a single request's: each item is accepted and done on its own,
// journaled under its per-item idempotency key, and a duplicate retry of
// the whole batch streams recorded bytes for the items that finished.
func (s *Server) batchItem(r *http.Request, norm *normRequest, req *TileRequest, index int, started time.Time) BatchItem {
	if s.dur != nil {
		if body, outcome, ok := s.dur.lookup(norm.idemKey); ok {
			id := s.reqID.Add(1)
			s.emit(telemetry.RequestAccepted{ID: id, Kernel: norm.kernelName, Mode: norm.mode})
			s.emit(telemetry.RequestDone{ID: id, Outcome: outcome, Elapsed: s.cfg.Now().Sub(started)})
			return BatchItem{Index: index, Result: body, Outcome: outcome, Source: "journal"}
		}
	}
	finish, _, reason := s.admitCtx(r.Context())
	if finish == nil {
		s.emit(telemetry.RequestShed{Reason: reason})
		return BatchItem{Index: index, Error: "overloaded: " + reason}
	}
	defer finish()
	id := s.reqID.Add(1)
	s.emit(telemetry.RequestAccepted{ID: id, Kernel: norm.kernelName, Mode: norm.mode})
	body, outcome, source, err := s.durableServe(r.Context(), norm, req)
	if err != nil {
		s.emit(telemetry.RequestDone{ID: id, Outcome: "error", Elapsed: s.cfg.Now().Sub(started)})
		return BatchItem{Index: index, Error: err.Error()}
	}
	s.emit(telemetry.RequestDone{
		ID: id, Outcome: outcome, CacheHit: source == "hit",
		Elapsed: s.cfg.Now().Sub(started),
	})
	return BatchItem{Index: index, Result: body, Outcome: outcome, Source: source}
}
