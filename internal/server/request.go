package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cache"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/parser"
	"repro/internal/sampling"
)

// TileRequest is the JSON body of POST /v1/tile: which nest to tile,
// against which cache, and the per-request search bounds. Exactly one of
// Kernel (a Table-1 catalog name) or Source (a textual kernel description
// in the internal/parser format) selects the nest.
type TileRequest struct {
	// Kernel is a catalog kernel name (e.g. "MM"); Size instantiates it
	// (0 = the kernel's default problem size).
	Kernel string `json:"kernel,omitempty"`
	Size   int64  `json:"size,omitempty"`
	// Source is an inline textual kernel description; it overrides Kernel.
	Source string `json:"source,omitempty"`
	// Cache is the target geometry: "8k", "32k", or "size:line:assoc".
	Cache string `json:"cache"`
	// Mode selects the search: "tile" (default) or "order" (tile sizes
	// plus tile-loop interchange).
	Mode string `json:"mode,omitempty"`
	// Seed makes the search deterministic; identical requests with the
	// same seed produce byte-identical responses.
	Seed uint64 `json:"seed,omitempty"`
	// SamplePoints per objective evaluation (0 = the paper's 164).
	SamplePoints int `json:"samplePoints,omitempty"`
	// MaxEvaluations caps distinct objective evaluations (0 = unlimited).
	MaxEvaluations int `json:"maxEvaluations,omitempty"`
	// TimeoutMs bounds the search wall-clock; 0 means the server default,
	// and the server's maximum always caps it. An expired deadline is not
	// an error: the best-so-far tile is returned, tagged stopped=deadline.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// Workers bounds one evaluation's goroutine fan-out (0 = server
	// default). Never changes the result, so it is excluded from the
	// result-cache key.
	Workers int `json:"workers,omitempty"`
	// Islands splits the GA population into concurrently evolving demes
	// with elite migration (0 = the server default, 1 = single
	// population). The island count changes the search trajectory, so it
	// is part of the result-cache key.
	Islands int `json:"islands,omitempty"`
	// Fidelity is the number of successive-halving rungs for multi-fidelity
	// candidate evaluation (0 or 1 = classic full-fidelity evaluation):
	// candidates are first ranked on a coarse prefix of the sample and only
	// survivors pay the full sample, so the same evaluation budget searches
	// more candidates. Changes the search trajectory, so it is part of the
	// result-cache key.
	Fidelity int `json:"fidelity,omitempty"`
}

// RatioEstimate is the response form of a sampled miss-ratio estimate.
type RatioEstimate struct {
	MissRatio        float64 `json:"missRatio"`
	ReplacementRatio float64 `json:"replacementRatio"`
	Half             float64 `json:"half"`
	Points           int     `json:"points"`
}

// TileResponse is the JSON body answering a tile request. Everything in it
// is a deterministic function of the normalized request, so the result
// cache can serve stored bytes verbatim.
type TileResponse struct {
	Kernel string  `json:"kernel"`
	Mode   string  `json:"mode"`
	Tile   []int64 `json:"tile"`
	// Order, for mode "order", maps tile-loop position to original loop.
	Order []int `json:"order,omitempty"`
	// Stopped is the search's stop reason ("converged", "deadline",
	// "budget", "cancelled"), or "fallback" for a breaker-served heuristic
	// tile that ran no search.
	Stopped string `json:"stopped"`
	// Degraded tags a weakened answer: a fallback tile, or a search that
	// completed only by quarantining broken evaluations.
	Degraded bool `json:"degraded"`
	// Fallback reports the circuit breaker served the capacity heuristic
	// instead of running a search.
	Fallback    bool `json:"fallback,omitempty"`
	Generations int  `json:"generations"`
	Evaluations int  `json:"evaluations"`
	Quarantined int  `json:"quarantined,omitempty"`
	// Before and After are the sampled estimates for the original and
	// tiled nest (omitted on fallback responses — no search ran).
	Before *RatioEstimate `json:"before,omitempty"`
	After  *RatioEstimate `json:"after,omitempty"`
}

// errorResponse is the JSON body of every non-200 answer.
type errorResponse struct {
	Error string `json:"error"`
}

// normRequest is a TileRequest with every default resolved and the nest
// built — the unit the admission gate, cache and searches operate on.
type normRequest struct {
	kernelName string
	mode       string
	cacheCfg   cache.Config
	seed       uint64
	points     int
	maxEvals   int
	timeout    time.Duration
	workers    int
	islands    int
	fidelity   int
	nest       *ir.Nest
	key        string
	// idemKey is the request's durability identity: the client's
	// Idempotency-Key header, else key. Set by the handlers after
	// normalize; empty when durability is disabled.
	idemKey string
	// resume is the checkpoint a journal recovery restarts the search
	// from (nil for live requests).
	resume *ga.Checkpoint
}

// hashedRequest is the canonical form the cache key is derived from: every
// field that can change the response bytes, nothing that cannot (Workers
// is result-invariant by the evaluator's worker-count invariance).
type hashedRequest struct {
	Kernel    string       `json:"kernel"`
	Size      int64        `json:"size"`
	Source    string       `json:"source"`
	Cache     cache.Config `json:"cache"`
	Mode      string       `json:"mode"`
	Seed      uint64       `json:"seed"`
	Points    int          `json:"points"`
	MaxEvals  int          `json:"maxEvals"`
	TimeoutMs int64        `json:"timeoutMs"`
	Islands   int          `json:"islands"`
	Fidelity  int          `json:"fidelity,omitempty"`
}

// normalize validates a request against the server's limits and resolves
// the nest, the cache geometry, the effective deadline and the cache key.
func (s *Server) normalize(req TileRequest) (*normRequest, error) {
	cfg, err := cliutil.ParseCache(req.Cache)
	if err != nil {
		return nil, err
	}
	mode := req.Mode
	switch mode {
	case "":
		mode = "tile"
	case "tile", "order":
	default:
		return nil, fmt.Errorf("unknown mode %q (want tile or order)", req.Mode)
	}
	if req.SamplePoints < 0 || req.MaxEvaluations < 0 || req.TimeoutMs < 0 || req.Workers < 0 || req.Islands < 0 || req.Fidelity < 0 {
		return nil, fmt.Errorf("negative search bound")
	}
	if req.SamplePoints > maxSamplePoints {
		return nil, fmt.Errorf("samplePoints %d exceeds the server limit %d", req.SamplePoints, maxSamplePoints)
	}
	if req.Islands > maxIslands {
		return nil, fmt.Errorf("islands %d exceeds the server limit %d", req.Islands, maxIslands)
	}
	if req.Fidelity > maxFidelityRungs {
		return nil, fmt.Errorf("fidelity %d exceeds the server limit %d", req.Fidelity, maxFidelityRungs)
	}
	var nest *ir.Nest
	name := req.Kernel
	if req.Source != "" {
		prog, perr := parser.ParseString(req.Source, "request")
		if perr != nil {
			return nil, fmt.Errorf("source: %w", perr)
		}
		nest = prog.Nest
		name = "inline:" + nest.Name
	} else {
		if req.Kernel == "" {
			return nil, fmt.Errorf("request names no kernel and carries no source")
		}
		k, ok := kernels.Get(req.Kernel)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q", req.Kernel)
		}
		nest, err = k.Instance(req.Size)
		if err != nil {
			return nil, err
		}
	}
	timeout := time.Duration(req.TimeoutMs) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	islands := req.Islands
	if islands == 0 {
		islands = s.cfg.DefaultIslands
	}
	n := &normRequest{
		kernelName: name,
		mode:       mode,
		cacheCfg:   cfg,
		seed:       req.Seed,
		points:     req.SamplePoints,
		maxEvals:   req.MaxEvaluations,
		timeout:    timeout,
		workers:    req.Workers,
		islands:    islands,
		fidelity:   req.Fidelity,
		nest:       nest,
	}
	sum := sha256.Sum256(mustJSON(hashedRequest{
		Kernel: req.Kernel, Size: req.Size, Source: req.Source,
		Cache: cfg, Mode: mode, Seed: req.Seed, Points: req.SamplePoints,
		MaxEvals: req.MaxEvaluations, TimeoutMs: timeout.Milliseconds(),
		Islands: islands, Fidelity: req.Fidelity,
	}))
	n.key = hex.EncodeToString(sum[:])
	return n, nil
}

// maxSamplePoints bounds the per-evaluation work one request can demand of
// the service; the paper's estimator needs 164.
const maxSamplePoints = 100 * sampling.PaperSampleSize

// maxIslands bounds the island fan-out one request can demand: the
// paper's population of 30 cannot usefully fill more than a handful of
// demes, and each island runs its own evaluation goroutine.
const maxIslands = 8

// maxFidelityRungs bounds the successive-halving ladder depth: with the
// default eta of 2 the paper's 164-point sample already collapses to its
// 16-point floor by the sixth rung, so deeper ladders only add bookkeeping.
const maxFidelityRungs = 6

// options maps the normalized request onto the search runtime: the
// per-request deadline rides Options.Deadline, the budget rides
// MaxEvaluations, and the service always quarantines broken evaluations so
// one poisoned candidate degrades a response instead of failing it.
func (n *normRequest) options(s *Server) core.Options {
	opt := core.Options{
		Cache:          n.cacheCfg,
		Seed:           n.seed,
		SamplePoints:   n.points,
		MaxEvaluations: n.maxEvals,
		Workers:        n.workers,
		Islands:        n.islands,
		Fidelity:       ga.Fidelity{Rungs: n.fidelity},
		Deadline:       n.timeout,
		StallTimeout:   s.cfg.StallTimeout,
		FailurePolicy:  core.FailQuarantine,
		Observer:       s.cfg.Observer,
		SharedCache:    s.evalCache,
	}
	// With durability armed, every search journals resumable snapshots at
	// generation boundaries — and a recovered request restarts from the
	// one its crash left behind.
	if s.dur != nil && n.idemKey != "" {
		opt.Checkpoint = s.dur.hook(n.idemKey)
		opt.ResumeFrom = n.resume
	}
	return opt
}

// maxRequestBytes bounds every request body the service decodes.
const maxRequestBytes = 1 << 20

// decodeJSON is the one decode path for every POST body (/v1/tile and
// /v1/tile/batch): bounded read, unknown fields rejected. Validation and
// default-filling then happen in normalize, also shared by both.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// ratio converts a sampling estimate into its response form.
func ratio(e sampling.Estimate) *RatioEstimate {
	return &RatioEstimate{
		MissRatio:        e.MissRatio,
		ReplacementRatio: e.ReplacementRatio,
		Half:             e.Half,
		Points:           e.Points,
	}
}

// mustJSON marshals a value that cannot fail to marshal.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
