package server

import (
	"testing"
)

// TestFidelityNormalization: the fidelity knob is validated at the door,
// splits the cache key when set (it changes the search trajectory), and
// leaves the key byte-identical to the pre-fidelity format when zero so
// existing cached results stay addressable.
func TestFidelityNormalization(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.normalize(TileRequest{Kernel: "MM", Cache: "8k", Fidelity: -1}); err == nil {
		t.Fatal("negative fidelity accepted")
	}
	if _, err := s.normalize(TileRequest{Kernel: "MM", Cache: "8k", Fidelity: maxFidelityRungs + 1}); err == nil {
		t.Fatalf("fidelity above the server limit %d accepted", maxFidelityRungs)
	}

	base, err := s.normalize(TileRequest{Kernel: "MM", Cache: "8k", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fid, err := s.normalize(TileRequest{Kernel: "MM", Cache: "8k", Seed: 1, Fidelity: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fid.fidelity != 3 {
		t.Fatalf("fidelity not carried through normalization: %d", fid.fidelity)
	}
	if fid.key == base.key {
		t.Fatal("fidelity did not split the cache key; it changes the search trajectory")
	}
	if opt := fid.options(s); opt.Fidelity.Rungs != 3 {
		t.Fatalf("options dropped the fidelity rungs: %+v", opt.Fidelity)
	}

	// Explicit zero is the classic path and must hash like the old wire
	// format (omitempty) so pre-fidelity cache entries still hit.
	zero, err := s.normalize(TileRequest{Kernel: "MM", Cache: "8k", Seed: 1, Fidelity: 0})
	if err != nil {
		t.Fatal(err)
	}
	if zero.key != base.key {
		t.Fatal("fidelity 0 split the cache key away from the legacy format")
	}
}
