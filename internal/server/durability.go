package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/ga"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

// errJournalUnavailable marks a request the server refused to run because
// its accepted record could not be made durable: without the record a
// crash would silently lose the request, so the client is told to retry
// instead.
var errJournalUnavailable = errors.New("server: request journal unavailable")

// maxIdemKeyBytes bounds the Idempotency-Key header (it is stored
// verbatim in every journal record for the request).
const maxIdemKeyBytes = 256

// durability is the server's crash-safety layer, armed by Config.StateDir:
// a write-ahead request journal, per-search generation-boundary
// checkpoints, and the idempotency index that serves duplicate retries the
// exact recorded response bytes.
type durability struct {
	jr       *journal.Journal
	ckptDir  string
	interval time.Duration
	now      func() time.Time

	mu sync.Mutex
	// idem maps idempotency key -> recorded response, LRU-bounded.
	idem *idemIndex
	// pending holds the latest not-yet-persisted snapshot per in-flight
	// search, so a drain can flush them before the process exits.
	pending map[string]*pendingSnap
	// incomplete is the replayed backlog Recover works through.
	incomplete []*journal.Entry
	// skipped is the quarantined-record count from startup replay,
	// surfaced on /healthz.
	skipped int
}

// pendingSnap throttles checkpoint persistence for one in-flight search.
type pendingSnap struct {
	last time.Time      // when a snapshot was last persisted
	snap *ga.Checkpoint // newest snapshot not yet persisted
}

// openDurability builds the layer from a server config: the journal is
// replayed (compacting as a side effect), completed entries seed the
// idempotency index, and incomplete ones queue for Recover.
func openDurability(cfg Config) (*durability, error) {
	d := &durability{
		ckptDir:  filepath.Join(cfg.StateDir, "checkpoints"),
		interval: cfg.CheckpointInterval,
		now:      cfg.Now,
		idem:     newIdemIndex(cfg.CacheEntries),
		pending:  make(map[string]*pendingSnap),
	}
	if err := os.MkdirAll(d.ckptDir, 0o755); err != nil {
		return nil, err
	}
	jr, st, err := journal.Open(filepath.Join(cfg.StateDir, "journal"), journal.Options{
		Sync:     cfg.JournalSync,
		Faults:   cfg.Faults,
		Observer: cfg.Observer,
	})
	if err != nil {
		return nil, err
	}
	d.jr = jr
	d.skipped = st.Skipped
	for _, e := range st.Completed() {
		if len(e.Response) > 0 && e.Outcome != "error" {
			d.idem.put(e.Key, e.Response, e.Outcome)
		}
	}
	d.incomplete = st.Incomplete()
	return d, nil
}

// lookup serves a duplicate idempotent retry from the recorded bytes.
func (d *durability) lookup(key string) (body []byte, outcome string, ok bool) {
	return d.idem.get(key)
}

// accepted makes the request durable before its search runs: the
// idempotency key, the canonical cache key, and the request body land in
// the journal, followed by the started marker. An append failure means
// the request is NOT crash-safe — the caller must shed it.
func (d *durability) accepted(key, cacheKey string, req *TileRequest) error {
	if err := d.jr.Append(journal.Record{
		Op: journal.OpAccepted, Key: key, CacheKey: cacheKey,
		Request: mustJSON(req),
	}); err != nil {
		return err
	}
	return d.jr.Append(journal.Record{Op: journal.OpStarted, Key: key})
}

// done closes the request's journal trail with its exact response bytes,
// publishes them to the idempotency index, and discards the now-redundant
// checkpoint files. Journal failures here are swallowed: the response is
// already computed and will be sent; the only cost is a redundant re-run
// after a crash.
func (d *durability) done(key string, body []byte, outcome string) {
	_ = d.jr.Append(journal.Record{
		Op: journal.OpDone, Key: key, Response: body, Outcome: outcome,
	})
	d.idem.put(key, body, outcome)
	d.forget(key)
}

// fail closes the trail of a request that errored: no response bytes to
// replay, so retries (and the post-crash recovery) run it afresh — the
// done record only stops recovery from replaying a request whose client
// already saw the error.
func (d *durability) fail(key string) {
	_ = d.jr.Append(journal.Record{Op: journal.OpDone, Key: key, Outcome: "error"})
	d.forget(key)
}

// forget drops the pending snapshot and checkpoint files for key.
func (d *durability) forget(key string) {
	d.mu.Lock()
	delete(d.pending, key)
	d.mu.Unlock()
	path := d.checkpointPath(key)
	_ = os.Remove(path)
	_ = os.Remove(cliutil.PrevCheckpoint(path))
}

// checkpointPath derives the snapshot file for an idempotency key (the
// key is hashed: it is client-supplied and must not steer file names).
func (d *durability) checkpointPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.ckptDir, hex.EncodeToString(sum[:8])+".ckpt")
}

// hook returns the ga.Checkpoint callback for one search: it persists
// generation-boundary snapshots with the cliutil temp+fsync+rename
// discipline, journals a checkpointed record for each persisted one, and
// throttles the disk traffic to one save per CheckpointInterval (0 =
// every generation). Persistence failures never abort the search — a
// checkpoint is insurance, not a correctness requirement — so the hook
// always returns nil.
func (d *durability) hook(key string) func(*ga.Checkpoint) error {
	return func(c *ga.Checkpoint) error {
		now := d.now()
		d.mu.Lock()
		p := d.pending[key]
		if p == nil {
			p = &pendingSnap{}
			d.pending[key] = p
		}
		due := d.interval <= 0 || p.last.IsZero() || now.Sub(p.last) >= d.interval
		if !due {
			p.snap = c
			d.mu.Unlock()
			return nil
		}
		p.last, p.snap = now, nil
		d.mu.Unlock()
		d.persist(key, c)
		return nil
	}
}

// persist writes one snapshot and journals its location; best-effort.
func (d *durability) persist(key string, c *ga.Checkpoint) {
	path := d.checkpointPath(key)
	if err := cliutil.SaveCheckpoint(path, c); err != nil {
		return
	}
	_ = d.jr.Append(journal.Record{
		Op: journal.OpCheckpointed, Key: key, Checkpoint: path, Gen: c.Gen,
	})
}

// flush persists every throttled-back snapshot — called when a drain
// begins, so a kill during the grace period loses at most the
// generations since the drain started.
func (d *durability) flush() {
	d.mu.Lock()
	type item struct {
		key  string
		snap *ga.Checkpoint
	}
	var todo []item
	for key, p := range d.pending {
		if p.snap != nil {
			todo = append(todo, item{key, p.snap})
			p.snap = nil
			p.last = d.now()
		}
	}
	d.mu.Unlock()
	for _, it := range todo {
		d.persist(it.key, it.snap)
	}
}

// close flushes and closes the journal.
func (d *durability) close() {
	_ = d.jr.Close()
}

// takeIncomplete hands Recover the replayed backlog exactly once.
func (d *durability) takeIncomplete() []*journal.Entry {
	d.mu.Lock()
	defer d.mu.Unlock()
	inc := d.incomplete
	d.incomplete = nil
	return inc
}

// Recover replays the journal backlog: every request that was accepted
// before the last shutdown but never answered is re-run — resumed from
// its latest persisted checkpoint when one loads (bit-identical to the
// uninterrupted run for a fixed seed), from scratch otherwise — and its
// response is journaled and published for idempotent retries. Entries
// whose request no longer normalizes are closed out as unreplayable
// rather than wedging recovery. Requests run sequentially through the
// normal admission gate, so recovery competes fairly with live traffic;
// ctx bounds the whole pass. Returns the number of entries processed.
func (s *Server) Recover(ctx context.Context) int {
	if s.dur == nil {
		return 0
	}
	entries := s.dur.takeIncomplete()
	for _, e := range entries {
		s.recoverOne(ctx, e)
	}
	return len(entries)
}

// recoverOne replays one incomplete journal entry.
func (s *Server) recoverOne(ctx context.Context, e *journal.Entry) {
	norm := s.renormalize(e)
	if norm == nil {
		// The request cannot be rebuilt (corrupt record, kernel gone,
		// limits tightened): close its trail so it is not retried forever.
		s.dur.fail(e.Key)
		s.emit(telemetry.JournalRecovered{Key: e.Key, Outcome: "unreplayable"})
		return
	}
	resumed := false
	if e.Checkpoint != "" {
		if c, _, err := cliutil.LoadCheckpoint(e.Checkpoint, s.cfg.Observer); err == nil {
			norm.resume = c
			resumed = true
		}
	}
	finish, _, reason := s.admitCtx(ctx)
	if finish == nil {
		// Shed (draining or saturated): leave the entry incomplete so the
		// next startup retries it.
		s.emit(telemetry.JournalRecovered{
			Key: e.Key, Kernel: norm.kernelName, Resumed: resumed,
			Gen: e.Gen, Outcome: "deferred: " + reason,
		})
		return
	}
	defer finish()
	body, outcome, _, err := s.serve(ctx, norm)
	if err != nil {
		s.dur.fail(e.Key)
		outcome = "error"
	} else {
		s.dur.done(e.Key, body, outcome)
	}
	// done/fail removed the hash-derived snapshot files; the journal entry
	// may record an older path, now equally redundant.
	if e.Checkpoint != "" {
		_ = os.Remove(e.Checkpoint)
		_ = os.Remove(cliutil.PrevCheckpoint(e.Checkpoint))
	}
	s.emit(telemetry.JournalRecovered{
		Key: e.Key, Kernel: norm.kernelName, Resumed: resumed,
		Gen: e.Gen, Outcome: outcome,
	})
}

// renormalize rebuilds the normalized request from a journal entry.
func (s *Server) renormalize(e *journal.Entry) *normRequest {
	if len(e.Request) == 0 {
		return nil
	}
	var req TileRequest
	if err := json.Unmarshal(e.Request, &req); err != nil {
		return nil
	}
	norm, err := s.normalize(req)
	if err != nil {
		return nil
	}
	norm.idemKey = e.Key
	return norm
}

// durableServe wraps serve with the journal lifecycle for one admitted
// request: accepted and started before the work, done (carrying the exact
// response bytes) after it. Without a state dir it is serve verbatim.
func (s *Server) durableServe(ctx context.Context, norm *normRequest, req *TileRequest) (body []byte, outcome, source string, err error) {
	if s.dur == nil {
		return s.serve(ctx, norm)
	}
	if err := s.dur.accepted(norm.idemKey, norm.key, req); err != nil {
		return nil, "", "", errJournalUnavailable
	}
	body, outcome, source, err = s.serve(ctx, norm)
	if err != nil {
		s.dur.fail(norm.idemKey)
		return nil, "", "", err
	}
	s.dur.done(norm.idemKey, body, outcome)
	return body, outcome, source, nil
}

// idemKeyFor resolves the idempotency key of a request: the client's
// Idempotency-Key header when present, else the canonical cache key (so
// byte-identical retries are idempotent even without the header).
func idemKeyFor(header string, norm *normRequest) string {
	if header != "" {
		return header
	}
	return norm.key
}

// idemEntry is one recorded response in the idempotency index.
type idemEntry struct {
	key     string
	body    []byte
	outcome string
}

// idemIndex is a bounded LRU from idempotency key to recorded response —
// the in-memory projection of the journal's done records.
type idemIndex struct {
	mu    sync.Mutex
	max   int
	order *list.List
	items map[string]*list.Element
}

func newIdemIndex(max int) *idemIndex {
	return &idemIndex{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

func (x *idemIndex) get(key string) ([]byte, string, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	el, ok := x.items[key]
	if !ok {
		return nil, "", false
	}
	x.order.MoveToFront(el)
	e := el.Value.(*idemEntry)
	return e.body, e.outcome, true
}

func (x *idemIndex) put(key string, body []byte, outcome string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if el, ok := x.items[key]; ok {
		x.order.MoveToFront(el)
		e := el.Value.(*idemEntry)
		e.body, e.outcome = body, outcome
		return
	}
	x.items[key] = x.order.PushFront(&idemEntry{key: key, body: body, outcome: outcome})
	for x.order.Len() > x.max {
		oldest := x.order.Back()
		x.order.Remove(oldest)
		delete(x.items, oldest.Value.(*idemEntry).key)
	}
}
