package server

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU over serialized response bodies, keyed by
// the canonical request hash. It stores the exact bytes that were sent on
// the miss, so a hit is byte-identical to the miss by construction.
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the stored body for key and refreshes its recency.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// evictBatch bounds how many evictions one operation performs under the
// mutex. A put only ever needs one eviction to stay bounded; after a
// setMax shrink the backlog is worked off a batch at a time, so no single
// request stalls behind an O(cache) eviction sweep holding the lock.
const evictBatch = 8

// evictLocked removes up to limit least-recently-used entries while the
// cache is over its bound. Callers hold c.mu.
func (c *resultCache) evictLocked(limit int) {
	for i := 0; i < limit && c.order.Len() > c.max; i++ {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// put stores body under key, evicting least-recently-used entries (at most
// evictBatch per call) when the cache is over its bound. Storing an
// existing key updates the body and recency in place — it never inserts a
// duplicate. The caller must not mutate body afterwards.
func (c *resultCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	c.evictLocked(evictBatch)
}

// setMax rebounds the cache (minimum 1). A shrink trims amortized: one
// batch now, the rest as subsequent puts land, so resizing never holds
// the mutex for an O(cache) sweep.
func (c *resultCache) setMax(m int) {
	if m < 1 {
		m = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.max = m
	c.evictLocked(evictBatch)
}

// len reports the live entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// computed is what one search computes for a request: the response bytes
// plus the outcome metadata the breaker and telemetry need.
type computed struct {
	body      []byte
	outcome   string // "ok", "degraded", "fallback"
	cacheable bool
	failure   bool // counts against the circuit breaker
}

// flightGroup deduplicates concurrent identical requests (singleflight):
// the first caller of a key computes, everyone else arriving before it
// finishes waits for and shares the same result, so a thundering herd of
// identical requests costs one search.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  computed
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn once per key at a time; concurrent callers share the leader's
// result. shared reports that this caller rode along instead of computing.
func (g *flightGroup) do(key string, fn func() (computed, error)) (res computed, shared bool, err error) {
	g.mu.Lock()
	if call, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-call.done
		return call.res, true, call.err
	}
	call := &flightCall{done: make(chan struct{})}
	g.calls[key] = call
	g.mu.Unlock()

	call.res, call.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(call.done)
	return call.res, false, call.err
}
