package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// The chaos suite drives the server against deterministic injected faults
// and asserts the robustness contracts from the design: explicit load
// shedding, breaker fallback instead of errors, zero-loss drain, and
// byte-identical responses across cache miss, bypass and hit.

func TestChaosLoadSheddingUnderStall(t *testing.T) {
	// Every evaluation stalls until its context is done, so one request
	// pins the single run slot until its deadline expires.
	faults := faultinject.New(1, faultinject.Rule{
		Point: faultinject.EvalStall, Action: faultinject.Stall,
	})
	s, ts, cap := testServer(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    -1, // no queue: the second request is shed at once
		StallTimeout:  time.Minute,
		RetryAfter:    3 * time.Second,
		Faults:        faults,
	})

	type result struct {
		status int
		body   []byte
	}
	first := make(chan result, 1)
	go func() {
		st, body, _ := post(t, ts.URL, `{"kernel":"MM","size":32,"cache":"8k","seed":1,"timeoutMs":600}`)
		first <- result{st, body}
	}()
	waitFor(t, func() bool { return s.InFlight() == 1 })

	st, body, hdr := post(t, ts.URL, `{"kernel":"MM","size":32,"cache":"8k","seed":2,"timeoutMs":600}`)
	if st != http.StatusTooManyRequests {
		t.Fatalf("overload request: status %d body %s, want 429", st, body)
	}
	if got := hdr.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want 3", got)
	}

	// The stalled request still answers: the deadline degrades it to its
	// best-so-far tile instead of an error.
	r1 := <-first
	if r1.status != http.StatusOK {
		t.Fatalf("stalled request: status %d body %s, want 200", r1.status, r1.body)
	}
	var resp TileResponse
	if err := json.Unmarshal(r1.body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tile) == 0 {
		t.Fatalf("stalled request returned no tile: %+v", resp)
	}
	if resp.Stopped != "deadline" {
		t.Fatalf("stalled request stopped = %q, want deadline", resp.Stopped)
	}

	shed := 0
	for _, e := range cap.Events() {
		if rs, ok := e.(telemetry.RequestShed); ok {
			if rs.Reason != "queue_full" {
				t.Fatalf("shed reason %q, want queue_full", rs.Reason)
			}
			shed++
		}
	}
	if shed != 1 {
		t.Fatalf("RequestShed events = %d, want 1", shed)
	}
}

func TestChaosInjectedAcceptFault(t *testing.T) {
	// server.accept firing sheds the request as if the queue were full,
	// without any real overload.
	faults := faultinject.New(1, faultinject.Rule{
		Point: faultinject.ServerAccept, Action: faultinject.Error, Times: 1,
	})
	_, ts, cap := testServer(t, Config{Faults: faults})

	st, _, hdr := post(t, ts.URL, fastRequest)
	if st != http.StatusTooManyRequests {
		t.Fatalf("injected-fault request: status %d, want 429", st)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	// The fault fires once; the retry succeeds.
	st, _, _ = post(t, ts.URL, fastRequest)
	if st != http.StatusOK {
		t.Fatalf("retry after injected fault: status %d, want 200", st)
	}
	for _, e := range cap.Events() {
		if rs, ok := e.(telemetry.RequestShed); ok && rs.Reason == "injected" {
			return
		}
	}
	t.Fatal("no RequestShed{injected} event recorded")
}

func TestChaosBreakerServesFallback(t *testing.T) {
	// Every evaluation batch quarantines one candidate, so every search
	// completes degraded and counts as a breaker failure. After two, the
	// breaker opens and the third request gets the heuristic fallback tile
	// instead of an error.
	faults := faultinject.New(1, faultinject.Rule{
		Point: faultinject.EvalPanic, Action: faultinject.Panic,
	})
	_, ts, cap := testServer(t, Config{
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // stays open for the whole test
		Faults:           faults,
	})

	for i, seed := range []int{1, 2} {
		req := fmt.Sprintf(`{"kernel":"MM","size":32,"cache":"8k","seed":%d,"maxEvaluations":30,"timeoutMs":30000}`, seed)
		st, body, _ := post(t, ts.URL, req)
		if st != http.StatusOK {
			t.Fatalf("degraded request %d: status %d body %s, want 200", i, st, body)
		}
		var r TileResponse
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		if !r.Degraded || r.Fallback || r.Quarantined == 0 || len(r.Tile) == 0 {
			t.Fatalf("degraded request %d: %+v, want degraded search with quarantined evals", i, r)
		}
	}

	st, body, _ := post(t, ts.URL, `{"kernel":"MM","size":32,"cache":"8k","seed":3,"maxEvaluations":30,"timeoutMs":30000}`)
	if st != http.StatusOK {
		t.Fatalf("fallback request: status %d body %s, want 200", st, body)
	}
	var r TileResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if !r.Fallback || !r.Degraded || r.Stopped != "fallback" || len(r.Tile) == 0 {
		t.Fatalf("fallback response %+v, want breaker-served heuristic tile", r)
	}
	if r.Before != nil || r.After != nil {
		t.Fatalf("fallback response carries estimates: %+v (no search ran)", r)
	}

	tripped := false
	for _, e := range cap.Events() {
		if bs, ok := e.(telemetry.BreakerState); ok && bs.From == "closed" && bs.To == "open" {
			tripped = true
		}
	}
	if !tripped {
		t.Fatal("no closed>open BreakerState event recorded")
	}
}

func TestChaosDrainLosesNoAcceptedRequest(t *testing.T) {
	// A request whose search blocks forever is accepted, then the server
	// is drained with a short grace. The forced drain cancels the search
	// and the request still gets a 200 with a decodable best-so-far tile.
	faults := faultinject.New(1, faultinject.Rule{
		Point: faultinject.EvalStall, Action: faultinject.Stall,
	})
	s, ts, cap := testServer(t, Config{
		MaxConcurrent: 1,
		StallTimeout:  time.Minute,
		Faults:        faults,
	})

	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	go func() {
		st, body, _ := post(t, ts.URL, `{"kernel":"MM","size":32,"cache":"8k","seed":9,"timeoutMs":30000}`)
		inflight <- result{st, body}
	}()
	waitFor(t, func() bool { return s.InFlight() == 1 })

	dctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	s.Drain(dctx) // returns only once the accepted request is answered

	r := <-inflight
	if r.status != http.StatusOK {
		t.Fatalf("drained request: status %d body %s, want 200", r.status, r.body)
	}
	var resp TileResponse
	if err := json.Unmarshal(r.body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tile) == 0 {
		t.Fatalf("forced drain lost the request's tile: %+v", resp)
	}
	if resp.Stopped != "cancelled" {
		t.Fatalf("drained request stopped = %q, want cancelled", resp.Stopped)
	}

	st, _, _ := post(t, ts.URL, fastRequest)
	if st != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", st)
	}

	drained := false
	for _, e := range cap.Events() {
		if d, ok := e.(telemetry.ServerDrained); ok {
			if d.InFlight != 1 || !d.Forced {
				t.Fatalf("ServerDrained = %+v, want InFlight 1, Forced true", d)
			}
			drained = true
		}
	}
	if !drained {
		t.Fatal("no ServerDrained event recorded")
	}
}

func TestChaosCacheFaultByteIdenticalResponses(t *testing.T) {
	// cache.get fails on exactly the second request, forcing a full
	// recompute. Determinism makes all three responses — miss, bypass,
	// hit — byte-identical.
	faults := faultinject.New(1, faultinject.Rule{
		Point: faultinject.CacheGet, Action: faultinject.Error, After: 2, Times: 1,
	})
	_, ts, _ := testServer(t, Config{Faults: faults})

	var bodies [][]byte
	wantSource := []string{"miss", "bypass", "hit"}
	for i := 0; i < 3; i++ {
		st, body, hdr := post(t, ts.URL, fastRequest)
		if st != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, st, body)
		}
		if got := hdr.Get("X-Tilingd-Cache"); got != wantSource[i] {
			t.Fatalf("request %d: cache header %q, want %q", i, got, wantSource[i])
		}
		bodies = append(bodies, body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) || !bytes.Equal(bodies[0], bodies[2]) {
		t.Fatalf("responses differ across miss/bypass/hit:\n%s\n%s\n%s", bodies[0], bodies[1], bodies[2])
	}
}

func TestChaosConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	// The leader's first evaluation batch stalls briefly, holding the
	// search open long enough for the identical second request to ride
	// along on the singleflight instead of searching again.
	faults := faultinject.New(1, faultinject.Rule{
		Point: faultinject.EvalStall, Action: faultinject.Stall,
		Stall: 300 * time.Millisecond, Times: 1,
	})
	s, ts, _ := testServer(t, Config{MaxConcurrent: 2, Faults: faults})

	type result struct {
		body   []byte
		source string
	}
	results := make([]result, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, body, hdr := post(t, ts.URL, fastRequest)
		results[0] = result{body, hdr.Get("X-Tilingd-Cache")}
	}()
	waitFor(t, func() bool { return s.InFlight() == 1 })
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, body, hdr := post(t, ts.URL, fastRequest)
		results[1] = result{body, hdr.Get("X-Tilingd-Cache")}
	}()
	wg.Wait()

	if !bytes.Equal(results[0].body, results[1].body) {
		t.Fatalf("coalesced responses differ:\n%s\n%s", results[0].body, results[1].body)
	}
	if results[0].source != "miss" {
		t.Fatalf("leader cache header %q, want miss", results[0].source)
	}
	// The follower coalesces; on a slow machine it may instead land after
	// the leader cached, which is a hit — both mean "no second search ran".
	if results[1].source != "coalesced" && results[1].source != "hit" {
		t.Fatalf("follower cache header %q, want coalesced or hit", results[1].source)
	}
}
