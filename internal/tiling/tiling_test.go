package tiling

import (
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/expr"
	"repro/internal/ir"
	"repro/internal/iterspace"
	"repro/internal/trace"
)

func t2d(n int64) *ir.Nest {
	a := &ir.Array{Name: "a", Dims: []int64{n, n}, Elem: 8}
	b := &ir.Array{Name: "b", Dims: []int64{n, n}, Elem: 8}
	ir.LayoutArrays(0, 32, a, b)
	return &ir.Nest{
		Name: "t2d",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
			{Var: "j", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: b, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}},
			{Array: a, Subs: []expr.Affine{expr.Var(1), expr.Var(0)}, Write: true},
		},
	}
}

// TestApplyMatchesPaperFigure3 builds the tiled transpose of Figure 3(b)
// and checks the loop structure.
func TestApplyMatchesPaperFigure3(t *testing.T) {
	nest := t2d(10)
	tiled, space, err := Apply(nest, []int64{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tiled.Depth() != 4 {
		t.Fatalf("tiled depth = %d, want 4", tiled.Depth())
	}
	names := tiled.VarNames()
	want := []string{"ii_i", "ii_j", "i", "j"}
	for d := range want {
		if names[d] != want[d] {
			t.Fatalf("loop vars = %v, want %v", names, want)
		}
	}
	if tiled.Loops[0].Step != 4 || tiled.Loops[1].Step != 3 {
		t.Fatal("tile loop steps wrong")
	}
	// Element loop i: lower ii_i, upper min(ii_i+3, 10).
	if got := tiled.Loops[2].Upper.StringVars(names); got != "min(ii_i+3,10)" {
		t.Fatalf("element loop upper = %q", got)
	}
	if space.Count() != 100 {
		t.Fatalf("space count = %d", space.Count())
	}
}

// TestTilingPreservesAccessMultiset: the tiled nest performs exactly the
// same multiset of memory accesses as the original.
func TestTilingPreservesAccessMultiset(t *testing.T) {
	r := rand.New(rand.NewPCG(51, 53))
	nest := t2d(9)
	orig := trace.Addresses(nest)
	sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
	for trial := 0; trial < 8; trial++ {
		tile := []int64{1 + r.Int64N(9), 1 + r.Int64N(9)}
		tiled, _, err := Apply(nest, tile)
		if err != nil {
			t.Fatal(err)
		}
		got := trace.Addresses(tiled)
		if len(got) != len(orig) {
			t.Fatalf("tile %v: %d accesses, want %d", tile, len(got), len(orig))
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		for i := range got {
			if got[i] != orig[i] {
				t.Fatalf("tile %v: access multiset differs at %d", tile, i)
			}
		}
	}
}

// TestTiledNestOrderMatchesSpace: walking the tiled IR nest and walking the
// Tiled iteration space produce the identical access sequence — the two
// independent implementations of "tiled execution order" agree.
func TestTiledNestOrderMatchesSpace(t *testing.T) {
	nest := t2d(7)
	tiled, space, err := Apply(nest, []int64{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	var fromNest []int64
	trace.Generate(tiled, func(_ []int64, a trace.Access) bool {
		fromNest = append(fromNest, a.Addr)
		return true
	})
	var fromSpace []int64
	trace.GenerateSpace(space, nest, func(_ []int64, a trace.Access) bool {
		fromSpace = append(fromSpace, a.Addr)
		return true
	})
	if len(fromNest) != len(fromSpace) {
		t.Fatalf("lengths differ: %d vs %d", len(fromNest), len(fromSpace))
	}
	for i := range fromNest {
		if fromNest[i] != fromSpace[i] {
			t.Fatalf("order differs at access %d: nest %d vs space %d", i, fromNest[i], fromSpace[i])
		}
	}
}

// TestFullTileIsIdentity: tiling with T = extent reproduces the original
// execution order exactly.
func TestFullTileIsIdentity(t *testing.T) {
	nest := t2d(6)
	tile, err := Untile(nest)
	if err != nil {
		t.Fatal(err)
	}
	if tile[0] != 6 || tile[1] != 6 {
		t.Fatalf("Untile = %v", tile)
	}
	tiled, _, err := Apply(nest, tile)
	if err != nil {
		t.Fatal(err)
	}
	a := trace.Addresses(nest)
	b := trace.Addresses(tiled)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("full tile changed order at %d", i)
		}
	}
}

func TestApplyErrors(t *testing.T) {
	nest := t2d(5)
	if _, _, err := Apply(nest, []int64{2}); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, _, err := Apply(nest, []int64{0, 2}); err == nil {
		t.Fatal("zero tile accepted")
	}
	if _, _, err := Apply(nest, []int64{2, 6}); err == nil {
		t.Fatal("oversize tile accepted")
	}
	bad := t2d(5)
	bad.Loops[0].Step = 2
	if _, _, err := Apply(bad, []int64{2, 2}); err == nil {
		t.Fatal("non-rectangular nest accepted")
	}
	if _, err := Box(bad); err == nil {
		t.Fatal("Box accepted non-rectangular nest")
	}
}

// TestNonUnitLowerBound: tiling respects loops that do not start at 1.
func TestNonUnitLowerBound(t *testing.T) {
	n := int64(9)
	arr := &ir.Array{Name: "x", Dims: []int64{n + 2}, Elem: 8, Base: 0}
	nest := &ir.Nest{
		Name: "shift",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(2), Upper: ir.BoundOf(expr.Const(n + 1)), Step: 1},
		},
		Refs: []ir.Ref{{Array: arr, Subs: []expr.Affine{expr.Var(0)}, Write: true}},
	}
	tiled, space, err := Apply(nest, []int64{4})
	if err != nil {
		t.Fatal(err)
	}
	if space.Count() != uint64(n) {
		t.Fatalf("count = %d", space.Count())
	}
	a := trace.Addresses(nest)
	b := trace.Addresses(tiled)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("access multiset changed")
		}
	}
	var _ iterspace.Space = space
}

// TestApplyPermutedMatchesSpace: the permuted tiled IR nest and the
// PermutedTiled space traverse identically, and the access multiset is
// preserved.
func TestApplyPermutedMatchesSpace(t *testing.T) {
	r := rand.New(rand.NewPCG(81, 83))
	nest := t2d(8)
	origAddrs := trace.Addresses(nest)
	sort.Slice(origAddrs, func(i, j int) bool { return origAddrs[i] < origAddrs[j] })
	for trial := 0; trial < 10; trial++ {
		tile := []int64{1 + r.Int64N(8), 1 + r.Int64N(8)}
		order := r.Perm(2)
		tiled, space, err := ApplyPermuted(nest, tile, order)
		if err != nil {
			t.Fatal(err)
		}
		var fromNest, fromSpace []int64
		trace.Generate(tiled, func(_ []int64, a trace.Access) bool {
			fromNest = append(fromNest, a.Addr)
			return true
		})
		trace.GenerateSpace(space, nest, func(_ []int64, a trace.Access) bool {
			fromSpace = append(fromSpace, a.Addr)
			return true
		})
		if len(fromNest) != len(fromSpace) {
			t.Fatalf("trial %d: lengths differ", trial)
		}
		for i := range fromNest {
			if fromNest[i] != fromSpace[i] {
				t.Fatalf("trial %d (tile %v order %v): order differs at %d", trial, tile, order, i)
			}
		}
		sorted := append([]int64(nil), fromNest...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			if sorted[i] != origAddrs[i] {
				t.Fatalf("trial %d: access multiset changed", trial)
			}
		}
	}
}

func TestApplyPermutedErrors(t *testing.T) {
	nest := t2d(5)
	if _, _, err := ApplyPermuted(nest, []int64{2, 2}, []int{0}); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, _, err := ApplyPermuted(nest, []int64{2, 2}, []int{0, 0}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	if _, _, err := ApplyPermuted(nest, []int64{0, 2}, []int{0, 1}); err == nil {
		t.Fatal("bad tile accepted")
	}
}

// TestInterchangeMatchesSpace: the interchanged nest and the PermutedBox
// space traverse identically, and interchange preserves the multiset.
func TestInterchangeMatchesSpace(t *testing.T) {
	r := rand.New(rand.NewPCG(101, 103))
	nest := t2d(7)
	origAddrs := trace.Addresses(nest)
	sort.Slice(origAddrs, func(i, j int) bool { return origAddrs[i] < origAddrs[j] })
	for trial := 0; trial < 6; trial++ {
		order := r.Perm(2)
		inter, space, err := Interchange(nest, order)
		if err != nil {
			t.Fatal(err)
		}
		var fromNest, fromSpace []int64
		trace.Generate(inter, func(_ []int64, a trace.Access) bool {
			fromNest = append(fromNest, a.Addr)
			return true
		})
		trace.GenerateSpace(space, nest, func(_ []int64, a trace.Access) bool {
			fromSpace = append(fromSpace, a.Addr)
			return true
		})
		for i := range fromNest {
			if fromNest[i] != fromSpace[i] {
				t.Fatalf("trial %d (order %v): differs at %d", trial, order, i)
			}
		}
		sorted := append([]int64(nil), fromNest...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			if sorted[i] != origAddrs[i] {
				t.Fatalf("trial %d: multiset changed", trial)
			}
		}
	}
	if _, _, err := Interchange(nest, []int{0}); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, _, err := Interchange(nest, []int{1, 1}); err == nil {
		t.Fatal("non-permutation accepted")
	}
}

// TestInterchangeFixesColumnTranspose: swapping the transpose's loops
// converts b's column stride into a row stream — the classic interchange
// win, visible in exact simulation.
func TestInterchangeFixesColumnTranspose(t *testing.T) {
	nest := t2d(64) // 2 x 32KB arrays
	cfg := struct{ Size, LineSize int64 }{}
	_ = cfg
	inter, _, err := Interchange(nest, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	// After interchange, b(i,j) is traversed j-outer/i-inner: b streams
	// and a strides — the miss burden swaps references but the transpose
	// itself cannot be fully fixed by interchange alone (one ref always
	// strides). Verify the transformation is semantically sound by
	// checking total accesses and compulsory misses are unchanged.
	before := cachesimSim(t, nest)
	after := cachesimSim(t, inter)
	if before.Accesses != after.Accesses || before.Compulsory != after.Compulsory {
		t.Fatalf("interchange changed invariants: %+v vs %+v", before, after)
	}
}

func cachesimSim(t *testing.T, n *ir.Nest) cachesim.Stats {
	t.Helper()
	return cachesim.SimulateNest(n, cache.DM8K)
}
