// Package tiling implements the loop-tiling transformation of §3:
// strip-mining every loop of a rectangular nest and interchanging the tile
// loops outward, producing the classic 2k-deep nest with min() upper bounds
// (Figure 3 of the paper) together with its iteration space.
//
// Tile sizes T_d range over [1, U_d]; T_d = U_d leaves dimension d
// effectively untiled. Tiling only reorders the iteration points — the
// multiset of memory accesses (and hence the compulsory miss count) is
// invariant, which the tests check.
package tiling

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/ir"
	"repro/internal/iterspace"
)

// Box returns the rectangular iteration space of an original nest.
func Box(nest *ir.Nest) (*iterspace.Box, error) {
	if !nest.IsRectangular() {
		return nil, fmt.Errorf("tiling: nest %s is not rectangular", nest.Name)
	}
	k := nest.Depth()
	lo := make([]int64, k)
	hi := make([]int64, k)
	for d, l := range nest.Loops {
		lo[d] = l.Lower.Eval(nil)
		hi[d] = l.Upper.Eval(nil)
		if lo[d] > hi[d] {
			return nil, fmt.Errorf("tiling: nest %s loop %s is empty", nest.Name, l.Var)
		}
	}
	return iterspace.NewBox(lo, hi), nil
}

// Apply tiles the nest with the given tile vector, returning the
// transformed nest (2k loops: tile loops then element loops) and the tiled
// iteration space describing its execution order.
func Apply(nest *ir.Nest, tile []int64) (*ir.Nest, *iterspace.Tiled, error) {
	box, err := Box(nest)
	if err != nil {
		return nil, nil, err
	}
	k := nest.Depth()
	if len(tile) != k {
		return nil, nil, fmt.Errorf("tiling: %d tile sizes for depth-%d nest", len(tile), k)
	}
	for d, t := range tile {
		if t < 1 || t > box.Extent(d) {
			return nil, nil, fmt.Errorf("tiling: tile size %d out of [1,%d] for loop %s",
				t, box.Extent(d), nest.Loops[d].Var)
		}
	}

	out := &ir.Nest{
		Name:  nest.Name + "_tiled",
		Loops: make([]ir.Loop, 0, 2*k),
		Refs:  make([]ir.Ref, len(nest.Refs)),
	}
	// Tile loops: do ii_d = lo_d, hi_d, T_d.
	for d := 0; d < k; d++ {
		out.Loops = append(out.Loops, ir.Loop{
			Var:   "ii_" + nest.Loops[d].Var,
			Lower: expr.Const(box.Lo[d]),
			Upper: ir.BoundOf(expr.Const(box.Hi[d])),
			Step:  tile[d],
		})
	}
	// Element loops: do i_d = ii_d, min(ii_d+T_d-1, hi_d).
	for d := 0; d < k; d++ {
		out.Loops = append(out.Loops, ir.Loop{
			Var:   nest.Loops[d].Var,
			Lower: expr.Var(d),
			Upper: ir.MinBound(expr.VarPlus(d, tile[d]-1), expr.Const(box.Hi[d])),
			Step:  1,
		})
	}
	// References keep their subscript functions, rewritten over the
	// element-loop variables (index d becomes k+d).
	for i := range nest.Refs {
		r := nest.Refs[i]
		subs := make([]expr.Affine, len(r.Subs))
		for s := range r.Subs {
			subs[s] = r.Subs[s].ShiftVars(k)
		}
		out.Refs[i] = ir.Ref{Array: r.Array, Subs: subs, Write: r.Write}
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("tiling: produced invalid nest: %w", err)
	}
	return out, iterspace.NewTiled(box, tile), nil
}

// ApplyPermuted tiles the nest and interchanges the tile loops into the
// given order (order[p] = original loop at tile position p) — the general
// strip-mine + interchange form of §3. Element loops keep the original
// order innermost, which is legal for the fully permutable rectangular
// nests the analysis targets.
func ApplyPermuted(nest *ir.Nest, tile []int64, order []int) (*ir.Nest, *iterspace.PermutedTiled, error) {
	box, err := Box(nest)
	if err != nil {
		return nil, nil, err
	}
	k := nest.Depth()
	if len(tile) != k || len(order) != k {
		return nil, nil, fmt.Errorf("tiling: rank mismatch (tile %d, order %d, depth %d)",
			len(tile), len(order), k)
	}
	seen := make([]bool, k)
	for _, d := range order {
		if d < 0 || d >= k || seen[d] {
			return nil, nil, fmt.Errorf("tiling: order %v is not a permutation", order)
		}
		seen[d] = true
	}
	for d, t := range tile {
		if t < 1 || t > box.Extent(d) {
			return nil, nil, fmt.Errorf("tiling: tile size %d out of [1,%d] for loop %s",
				t, box.Extent(d), nest.Loops[d].Var)
		}
	}
	out := &ir.Nest{
		Name:  nest.Name + "_tiled",
		Loops: make([]ir.Loop, 0, 2*k),
		Refs:  make([]ir.Ref, len(nest.Refs)),
	}
	// Tile loops in interchange order; tile position p holds original
	// dimension order[p] and is genome variable p.
	for p := 0; p < k; p++ {
		d := order[p]
		out.Loops = append(out.Loops, ir.Loop{
			Var:   "ii_" + nest.Loops[d].Var,
			Lower: expr.Const(box.Lo[d]),
			Upper: ir.BoundOf(expr.Const(box.Hi[d])),
			Step:  tile[d],
		})
	}
	// Element loops in original order: i_d from ii_d (variable at the
	// tile position of d) to min(ii_d+T_d-1, hi_d).
	pos := make([]int, k)
	for p, d := range order {
		pos[d] = p
	}
	for d := 0; d < k; d++ {
		out.Loops = append(out.Loops, ir.Loop{
			Var:   nest.Loops[d].Var,
			Lower: expr.Var(pos[d]),
			Upper: ir.MinBound(expr.VarPlus(pos[d], tile[d]-1), expr.Const(box.Hi[d])),
			Step:  1,
		})
	}
	for i := range nest.Refs {
		r := nest.Refs[i]
		subs := make([]expr.Affine, len(r.Subs))
		for s := range r.Subs {
			subs[s] = r.Subs[s].ShiftVars(k)
		}
		out.Refs[i] = ir.Ref{Array: r.Array, Subs: subs, Write: r.Write}
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("tiling: produced invalid nest: %w", err)
	}
	return out, iterspace.NewPermutedTiled(box, tile, order), nil
}

// Untile returns the trivial tile vector that leaves the nest order
// unchanged (one tile per dimension).
func Untile(nest *ir.Nest) ([]int64, error) {
	box, err := Box(nest)
	if err != nil {
		return nil, err
	}
	tile := make([]int64, nest.Depth())
	for d := range tile {
		tile[d] = box.Extent(d)
	}
	return tile, nil
}

// Interchange permutes the loops of a rectangular nest without tiling —
// the pure loop-interchange transform (legal for the fully permutable
// nests analysed here). order[p] is the original loop at position p.
func Interchange(nest *ir.Nest, order []int) (*ir.Nest, *iterspace.PermutedBox, error) {
	box, err := Box(nest)
	if err != nil {
		return nil, nil, err
	}
	k := nest.Depth()
	if len(order) != k {
		return nil, nil, fmt.Errorf("tiling: order rank %d for depth-%d nest", len(order), k)
	}
	seen := make([]bool, k)
	for _, d := range order {
		if d < 0 || d >= k || seen[d] {
			return nil, nil, fmt.Errorf("tiling: order %v is not a permutation", order)
		}
		seen[d] = true
	}
	out := &ir.Nest{
		Name:  nest.Name + "_interchanged",
		Loops: make([]ir.Loop, k),
		Refs:  make([]ir.Ref, len(nest.Refs)),
	}
	// Loop at position p is original loop order[p]; variable index p in
	// the new nest carries original variable order[p], so subscripts remap
	// original variable d to new index pos[d].
	pos := make([]int, k)
	for p, d := range order {
		pos[d] = p
		l := nest.Loops[d]
		out.Loops[p] = ir.Loop{Var: l.Var, Lower: l.Lower, Upper: l.Upper, Step: l.Step}
	}
	for i := range nest.Refs {
		r := nest.Refs[i]
		subs := make([]expr.Affine, len(r.Subs))
		for sIdx := range r.Subs {
			e := r.Subs[sIdx]
			// Remap variables: v_d -> v_pos[d]. Substitute via a fresh
			// expression to avoid index collisions.
			out2 := expr.Const(e.Const)
			for d := 0; d < k; d++ {
				if c := e.Coeff(d); c != 0 {
					out2 = out2.Add(expr.Term(pos[d], c, 0))
				}
			}
			subs[sIdx] = out2
		}
		out.Refs[i] = ir.Ref{Array: r.Array, Subs: subs, Write: r.Write}
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("tiling: produced invalid nest: %w", err)
	}
	return out, iterspace.NewPermutedBox(box, order), nil
}
