// Package reuse computes reuse vectors for affine array references in a
// loop nest, following Wolf & Lam's data-locality framework: self-temporal,
// self-spatial, group-temporal and group-spatial reuse. Reuse vectors are
// the first ingredient of Cache Miss Equations — each reference's CMEs are
// generated per reuse vector (§2.1 of the paper).
package reuse

import (
	"fmt"
	"math/big"

	"repro/internal/cache"
	"repro/internal/ir"
)

// Kind classifies a reuse vector.
type Kind int

const (
	// SelfTemporal: the same reference touches the same element again.
	SelfTemporal Kind = iota
	// SelfSpatial: the same reference touches the same cache line again
	// (different element).
	SelfSpatial
	// GroupTemporal: a different reference touched the same element.
	GroupTemporal
	// GroupSpatial: a different reference touched the same cache line.
	GroupSpatial
)

func (k Kind) String() string {
	switch k {
	case SelfTemporal:
		return "self-temporal"
	case SelfSpatial:
		return "self-spatial"
	case GroupTemporal:
		return "group-temporal"
	case GroupSpatial:
		return "group-spatial"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Vector is one reuse vector: reference Ref potentially reuses data touched
// by reference Source at iteration point ī − R.
type Vector struct {
	Kind   Kind
	Ref    int     // index of the reusing reference in the nest body
	Source int     // index of the source reference (== Ref for self reuse)
	R      []int64 // iteration-space distance, outermost first
}

func (v Vector) String() string {
	return fmt.Sprintf("%v ref%d<-ref%d r=%v", v.Kind, v.Ref, v.Source, v.R)
}

// Compute returns the reuse vectors of every reference in the nest with
// respect to the given cache geometry (the line size determines spatial
// reuse). Vectors are returned grouped by reference in body order and
// sorted by increasing reuse distance within each reference.
//
// Subscript matrices are taken over the original loop variables; for tiled
// nests, pass the original (untiled) nest — tiling does not change the
// subscript functions, only the traversal order.
func Compute(nest *ir.Nest, cfg cache.Config) []Vector {
	depth := nest.Depth()
	var out []Vector

	for ri := range nest.Refs {
		ref := &nest.Refs[ri]
		H := subscriptMatrix(ref, depth)

		// Self-temporal: basis of nullspace(H).
		tBasis := nullspaceBasis(H, depth)
		for _, r := range tBasis {
			out = append(out, Vector{Kind: SelfTemporal, Ref: ri, Source: ri, R: r})
		}

		// Self-spatial: nullspace of H with the fastest-varying
		// dimension's row removed; keep vectors adding dimensions beyond
		// the temporal nullspace, and only when the stride along the new
		// direction stays within a line.
		fast := fastestDim(ref.Array)
		Hs := dropRow(H, fast)
		sBasis := nullspaceBasis(Hs, depth)
		for _, r := range sBasis {
			if inSpan(tBasis, r, depth) {
				continue
			}
			if strideAlong(ref, r) < cfg.LineSize {
				out = append(out, Vector{Kind: SelfSpatial, Ref: ri, Source: ri, R: r})
			}
		}

		// Group reuse: another reference to the same array whose linear
		// part matches; solve H·r = offset(source) − offset(ref).
		for rj := range nest.Refs {
			if rj == ri {
				continue
			}
			src := &nest.Refs[rj]
			if src.Array != ref.Array {
				continue
			}
			Hj := subscriptMatrix(src, depth)
			if !sameMatrix(H, Hj) {
				continue
			}
			// ref at ī touches H·ī + c_ref; src at ī−r touches
			// H·ī − H·r + c_src. They coincide iff H·r = c_src − c_ref.
			diff := make([]int64, len(ref.Subs))
			for d := range ref.Subs {
				diff[d] = src.Subs[d].Const - ref.Subs[d].Const
			}
			if r, ok := solveParticular(H, diff, depth); ok {
				if isZero(r) && rj > ri {
					// Same address within one iteration: the earlier
					// reference in program order is the source; skip the
					// symmetric duplicate.
					continue
				}
				if lexNegative(r) {
					continue // reuse must come from an earlier iteration
				}
				out = append(out, Vector{Kind: GroupTemporal, Ref: ri, Source: rj, R: r})
			} else {
				// No temporal solution; try spatial (drop fastest dim).
				diffS := dropVec(diff, fast)
				if r, ok := solveParticular(dropRow(H, fast), diffS, depth); ok {
					if abs64(elemOffsetAlongFast(ref, src))*ref.Array.Elem < cfg.LineSize &&
						!lexNegative(r) && !isZero(r) {
						out = append(out, Vector{Kind: GroupSpatial, Ref: ri, Source: rj, R: r})
					}
				}
			}
		}
	}
	sortVectors(out)
	return out
}

// subscriptMatrix builds the coefficient matrix H (rows = array dims,
// cols = loop vars) of a reference.
func subscriptMatrix(ref *ir.Ref, depth int) [][]int64 {
	H := make([][]int64, len(ref.Subs))
	for d := range ref.Subs {
		row := make([]int64, depth)
		for v := 0; v < depth; v++ {
			row[v] = ref.Subs[d].Coeff(v)
		}
		H[d] = row
	}
	return H
}

// fastestDim returns the array dimension with the smallest stride.
func fastestDim(a *ir.Array) int {
	strides := a.Strides()
	best := 0
	for d := 1; d < len(strides); d++ {
		if strides[d] < strides[best] {
			best = d
		}
	}
	return best
}

func dropRow(H [][]int64, row int) [][]int64 {
	out := make([][]int64, 0, len(H)-1)
	for i := range H {
		if i != row {
			out = append(out, H[i])
		}
	}
	return out
}

func dropVec(v []int64, idx int) []int64 {
	out := make([]int64, 0, len(v)-1)
	for i := range v {
		if i != idx {
			out = append(out, v[i])
		}
	}
	return out
}

// strideAlong returns the absolute address change of the reference when the
// iteration point moves by r.
func strideAlong(ref *ir.Ref, r []int64) int64 {
	strides := ref.Array.Strides()
	var delta int64
	for d := range ref.Subs {
		var move int64
		for v, c := range r {
			move += ref.Subs[d].Coeff(v) * c
		}
		delta += move * strides[d] * ref.Array.Elem
	}
	return abs64(delta)
}

// elemOffsetAlongFast returns the subscript-constant difference in the
// fastest dimension between two references with equal linear parts.
func elemOffsetAlongFast(a, b *ir.Ref) int64 {
	fast := fastestDim(a.Array)
	return a.Subs[fast].Const - b.Subs[fast].Const
}

func sameMatrix(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func isZero(v []int64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

func lexNegative(v []int64) bool {
	for _, x := range v {
		if x != 0 {
			return x < 0
		}
	}
	return false
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// sortVectors orders by reference index then by reuse distance (sum of
// absolute components as a cheap proxy, then lexicographically).
func sortVectors(vs []Vector) {
	lt := func(a, b Vector) bool {
		if a.Ref != b.Ref {
			return a.Ref < b.Ref
		}
		da, db := absSum(a.R), absSum(b.R)
		if da != db {
			return da < db
		}
		for i := range a.R {
			if a.R[i] != b.R[i] {
				return a.R[i] < b.R[i]
			}
		}
		return a.Kind < b.Kind
	}
	// Insertion sort: lists are short.
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && lt(vs[j], vs[j-1]); j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

func absSum(v []int64) int64 {
	var s int64
	for _, x := range v {
		s += abs64(x)
	}
	return s
}

// --- Exact linear algebra over the rationals -----------------------------

// nullspaceBasis returns an integer basis of the nullspace of H (cols =
// depth variables), each vector primitive and lexicographically positive.
func nullspaceBasis(H [][]int64, depth int) [][]int64 {
	if len(H) == 0 {
		// Every direction is in the nullspace: identity basis.
		basis := make([][]int64, depth)
		for i := range basis {
			v := make([]int64, depth)
			v[i] = 1
			basis[i] = v
		}
		return basis
	}
	// Row-reduce a rational copy of H.
	m := toRat(H, depth)
	pivots := rref(m, depth)
	isPivot := make([]bool, depth)
	for _, p := range pivots {
		isPivot[p] = true
	}
	var basis [][]int64
	for free := 0; free < depth; free++ {
		if isPivot[free] {
			continue
		}
		// Back-substitute with x_free = 1, other free vars 0.
		x := make([]*big.Rat, depth)
		for i := range x {
			x[i] = new(big.Rat)
		}
		x[free].SetInt64(1)
		for r := len(pivots) - 1; r >= 0; r-- {
			p := pivots[r]
			sum := new(big.Rat)
			for c := p + 1; c < depth; c++ {
				term := new(big.Rat).Mul(m[r][c], x[c])
				sum.Add(sum, term)
			}
			x[p].Neg(sum) // pivot coefficient is 1 after rref
		}
		basis = append(basis, ratToPrimitive(x))
	}
	return basis
}

// solveParticular finds an integer solution r of H·r = rhs, or reports
// failure (no rational solution or no integer solution found).
func solveParticular(H [][]int64, rhs []int64, depth int) ([]int64, bool) {
	if len(H) == 0 {
		if !isZero(rhs) {
			return nil, false
		}
		return make([]int64, depth), true
	}
	// Augmented rational elimination.
	m := toRat(H, depth)
	b := make([]*big.Rat, len(H))
	for i := range b {
		b[i] = new(big.Rat).SetInt64(rhs[i])
	}
	pivots := rrefAug(m, b, depth)
	// Inconsistency: zero row with nonzero rhs.
	for i := len(pivots); i < len(m); i++ {
		if b[i].Sign() != 0 {
			return nil, false
		}
	}
	x := make([]*big.Rat, depth)
	for i := range x {
		x[i] = new(big.Rat)
	}
	for r := len(pivots) - 1; r >= 0; r-- {
		p := pivots[r]
		sum := new(big.Rat).Set(b[r])
		for c := p + 1; c < depth; c++ {
			sum.Sub(sum, new(big.Rat).Mul(m[r][c], x[c]))
		}
		x[p].Set(sum)
	}
	out := make([]int64, depth)
	for i, v := range x {
		if !v.IsInt() {
			return nil, false
		}
		out[i] = v.Num().Int64()
	}
	return out, true
}

func toRat(H [][]int64, depth int) [][]*big.Rat {
	m := make([][]*big.Rat, len(H))
	for i := range H {
		m[i] = make([]*big.Rat, depth)
		for j := 0; j < depth; j++ {
			var v int64
			if j < len(H[i]) {
				v = H[i][j]
			}
			m[i][j] = new(big.Rat).SetInt64(v)
		}
	}
	return m
}

// rref reduces m in place to reduced row echelon form, returning the pivot
// columns in order.
func rref(m [][]*big.Rat, cols int) []int {
	var pivots []int
	row := 0
	for col := 0; col < cols && row < len(m); col++ {
		sel := -1
		for r := row; r < len(m); r++ {
			if m[r][col].Sign() != 0 {
				sel = r
				break
			}
		}
		if sel < 0 {
			continue
		}
		m[row], m[sel] = m[sel], m[row]
		inv := new(big.Rat).Inv(m[row][col])
		for c := col; c < cols; c++ {
			m[row][c].Mul(m[row][c], inv)
		}
		for r := 0; r < len(m); r++ {
			if r == row || m[r][col].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Set(m[r][col])
			for c := col; c < cols; c++ {
				m[r][c].Sub(m[r][c], new(big.Rat).Mul(f, m[row][c]))
			}
		}
		pivots = append(pivots, col)
		row++
	}
	return pivots
}

// rrefAug is rref over [m | b].
func rrefAug(m [][]*big.Rat, b []*big.Rat, cols int) []int {
	var pivots []int
	row := 0
	for col := 0; col < cols && row < len(m); col++ {
		sel := -1
		for r := row; r < len(m); r++ {
			if m[r][col].Sign() != 0 {
				sel = r
				break
			}
		}
		if sel < 0 {
			continue
		}
		m[row], m[sel] = m[sel], m[row]
		b[row], b[sel] = b[sel], b[row]
		inv := new(big.Rat).Inv(m[row][col])
		for c := col; c < cols; c++ {
			m[row][c].Mul(m[row][c], inv)
		}
		b[row].Mul(b[row], inv)
		for r := 0; r < len(m); r++ {
			if r == row || m[r][col].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Set(m[r][col])
			for c := col; c < cols; c++ {
				m[r][c].Sub(m[r][c], new(big.Rat).Mul(f, m[row][c]))
			}
			b[r].Sub(b[r], new(big.Rat).Mul(f, b[row]))
		}
		pivots = append(pivots, col)
		row++
	}
	return pivots
}

// ratToPrimitive scales a rational vector to the smallest integer vector
// with the same direction, lexicographically positive.
func ratToPrimitive(x []*big.Rat) []int64 {
	lcm := big.NewInt(1)
	for _, v := range x {
		d := v.Denom()
		g := new(big.Int).GCD(nil, nil, lcm, d)
		lcm.Div(lcm, g)
		lcm.Mul(lcm, d)
	}
	ints := make([]int64, len(x))
	gcd := big.NewInt(0)
	for i, v := range x {
		n := new(big.Int).Mul(v.Num(), lcm)
		n.Div(n, v.Denom())
		ints[i] = n.Int64()
		gcd.GCD(nil, nil, gcd, new(big.Int).Abs(n))
	}
	if g := gcd.Int64(); g > 1 {
		for i := range ints {
			ints[i] /= g
		}
	}
	if lexNegative(ints) {
		for i := range ints {
			ints[i] = -ints[i]
		}
	}
	return ints
}

// inSpan reports whether v lies in the rational span of the basis vectors.
func inSpan(basis [][]int64, v []int64, depth int) bool {
	if len(basis) == 0 {
		return isZero(v)
	}
	// Solve basisᵀ·c = v: build the matrix with basis vectors as columns.
	H := make([][]int64, depth)
	for i := 0; i < depth; i++ {
		row := make([]int64, len(basis))
		for j := range basis {
			row[j] = basis[j][i]
		}
		H[i] = row
	}
	_, ok := solveParticularRat(H, v, len(basis))
	return ok
}

// solveParticularRat is solveParticular without the integrality requirement.
func solveParticularRat(H [][]int64, rhs []int64, depth int) ([]*big.Rat, bool) {
	m := toRat(H, depth)
	b := make([]*big.Rat, len(H))
	for i := range b {
		b[i] = new(big.Rat).SetInt64(rhs[i])
	}
	pivots := rrefAug(m, b, depth)
	for i := len(pivots); i < len(m); i++ {
		if b[i].Sign() != 0 {
			return nil, false
		}
	}
	x := make([]*big.Rat, depth)
	for i := range x {
		x[i] = new(big.Rat)
	}
	for r := len(pivots) - 1; r >= 0; r-- {
		p := pivots[r]
		sum := new(big.Rat).Set(b[r])
		for c := p + 1; c < depth; c++ {
			sum.Sub(sum, new(big.Rat).Mul(m[r][c], x[c]))
		}
		x[p].Set(sum)
	}
	return x, true
}
