package reuse

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/expr"
	"repro/internal/ir"
)

// matmulNest builds the paper's Figure-1 kernel:
// do i; do j; do k: a(i,j) += b(i,k)*c(k,j), column-major REAL*8 arrays.
func matmulNest(n int64) *ir.Nest {
	a := &ir.Array{Name: "a", Dims: []int64{n, n}, Elem: 8}
	b := &ir.Array{Name: "b", Dims: []int64{n, n}, Elem: 8}
	c := &ir.Array{Name: "c", Dims: []int64{n, n}, Elem: 8}
	ir.LayoutArrays(0, 32, a, b, c)
	cn := expr.Const(n)
	return &ir.Nest{
		Name: "mm",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: ir.BoundOf(cn), Step: 1},
			{Var: "j", Lower: expr.Const(1), Upper: ir.BoundOf(cn), Step: 1},
			{Var: "k", Lower: expr.Const(1), Upper: ir.BoundOf(cn), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: a, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}},              // a(i,j) read
			{Array: b, Subs: []expr.Affine{expr.Var(0), expr.Var(2)}},              // b(i,k)
			{Array: c, Subs: []expr.Affine{expr.Var(2), expr.Var(1)}},              // c(k,j)
			{Array: a, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}, Write: true}, // a(i,j) write
		},
	}
}

func vectorsFor(vs []Vector, ref int) []Vector {
	var out []Vector
	for _, v := range vs {
		if v.Ref == ref {
			out = append(out, v)
		}
	}
	return out
}

func hasVector(vs []Vector, kind Kind, r ...int64) bool {
	for _, v := range vs {
		if v.Kind != kind {
			continue
		}
		match := true
		for i := range r {
			if v.R[i] != r[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// TestMatmulPaperExample checks the example from §2.1: (0,0,1) is a reuse
// vector of c(k,j)... for the column-major layout c(k,j) moves by one
// element when k advances, so consecutive k iterations fall in the same
// line: self-spatial reuse along (0,0,1). a(i,j) has self-temporal reuse
// along (0,0,1) since k does not appear in its subscripts.
func TestMatmulPaperExample(t *testing.T) {
	nest := matmulNest(100)
	vs := Compute(nest, cache.DM8K)

	aVecs := vectorsFor(vs, 0)
	if !hasVector(aVecs, SelfTemporal, 0, 0, 1) {
		t.Fatalf("a(i,j): missing self-temporal (0,0,1); got %v", aVecs)
	}

	cVecs := vectorsFor(vs, 2)
	if !hasVector(cVecs, SelfSpatial, 0, 0, 1) {
		t.Fatalf("c(k,j): missing self-spatial (0,0,1); got %v", cVecs)
	}

	// b(i,k): j absent -> self-temporal (0,1,0).
	bVecs := vectorsFor(vs, 1)
	if !hasVector(bVecs, SelfTemporal, 0, 1, 0) {
		t.Fatalf("b(i,k): missing self-temporal (0,1,0); got %v", bVecs)
	}

	// The write a(i,j) group-reuses the read a(i,j) at distance (0,0,0).
	wVecs := vectorsFor(vs, 3)
	if !hasVector(wVecs, GroupTemporal, 0, 0, 0) {
		t.Fatalf("a(i,j) write: missing group-temporal (0,0,0); got %v", wVecs)
	}
}

// TestTransposeSpatial: in b(i,j) with column-major layout and the i loop
// outer, advancing j moves by N elements (no spatial reuse across j for
// large N), while a(j,i) enjoys spatial reuse along j.
func TestTransposeSpatial(t *testing.T) {
	n := int64(100)
	a := &ir.Array{Name: "a", Dims: []int64{n, n}, Elem: 8}
	b := &ir.Array{Name: "b", Dims: []int64{n, n}, Elem: 8}
	ir.LayoutArrays(0, 32, a, b)
	nest := &ir.Nest{
		Name: "t2d",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
			{Var: "j", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: b, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}},              // b(i,j)
			{Array: a, Subs: []expr.Affine{expr.Var(1), expr.Var(0)}, Write: true}, // a(j,i)
		},
	}
	vs := Compute(nest, cache.DM8K)
	aV := vectorsFor(vs, 1)
	if !hasVector(aV, SelfSpatial, 0, 1) {
		t.Fatalf("a(j,i): missing self-spatial (0,1); got %v", aV)
	}
	bV := vectorsFor(vs, 0)
	// b(i,j): spatial reuse is along i (the outer loop).
	if !hasVector(bV, SelfSpatial, 1, 0) {
		t.Fatalf("b(i,j): missing self-spatial (1,0); got %v", bV)
	}
	if hasVector(bV, SelfSpatial, 0, 1) {
		t.Fatalf("b(i,j): bogus spatial reuse along j; got %v", bV)
	}
}

// TestGroupReuseStencil: b(i-1) feeding b(i+1) yields group reuse at
// distance 2 (the later iteration re-reads what b(i+1) read two ago).
func TestGroupReuseStencil(t *testing.T) {
	n := int64(50)
	b := &ir.Array{Name: "b", Dims: []int64{n + 2}, Elem: 8, Base: 0}
	nest := &ir.Nest{
		Name: "stencil",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(2), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: b, Subs: []expr.Affine{expr.VarPlus(0, -1)}}, // b(i-1)
			{Array: b, Subs: []expr.Affine{expr.VarPlus(0, 1)}},  // b(i+1)
		},
	}
	vs := Compute(nest, cache.DM8K)
	// b(i-1) at iteration i reuses b(i+1) from iteration i-2: H·r = diff
	// where diff = (-1) - (+1) = -2 ... r = -2? Reuse must be from earlier
	// iterations, so the realized vector is r=2 on ref 0 <- ref 1.
	v0 := vectorsFor(vs, 0)
	if !hasVector(v0, GroupTemporal, 2) {
		t.Fatalf("b(i-1): missing group-temporal r=2 from b(i+1); got %v", v0)
	}
	// The reverse direction (b(i+1) reusing b(i-1)) would need r=-2:
	// lexicographically negative, so it must NOT appear.
	v1 := vectorsFor(vs, 1)
	if hasVector(v1, GroupTemporal, -2) {
		t.Fatalf("b(i+1): lexicographically negative reuse reported; got %v", v1)
	}
	// Both refs have self-spatial reuse along i.
	if !hasVector(v0, SelfSpatial, 1) || !hasVector(v1, SelfSpatial, 1) {
		t.Fatalf("missing self-spatial vectors: %v %v", v0, v1)
	}
}

// TestNoBogusTemporalReuse: a reference using every loop variable with an
// invertible subscript matrix has no self-temporal reuse.
func TestNoBogusTemporalReuse(t *testing.T) {
	nest := matmulNest(10)
	vs := Compute(nest, cache.DM8K)
	for _, v := range vectorsFor(vs, 2) { // c(k,j) uses k and j
		if v.Kind == SelfTemporal && v.R[1] == 0 && v.R[2] == 0 {
			// Only the i direction is allowed.
			continue
		}
		if v.Kind == SelfTemporal && (v.R[1] != 0 || v.R[2] != 0) {
			t.Fatalf("c(k,j): bogus self-temporal vector %v", v)
		}
	}
	// c(k,j) does not use i: self-temporal (1,0,0) must be present.
	if !hasVector(vectorsFor(vs, 2), SelfTemporal, 1, 0, 0) {
		t.Fatal("c(k,j): missing self-temporal (1,0,0)")
	}
}

// TestVectorsSortedByDistance: within one reference, vectors come shortest
// first (the solver probes nearest reuse first).
func TestVectorsSortedByDistance(t *testing.T) {
	nest := matmulNest(10)
	vs := Compute(nest, cache.DM8K)
	for ref := 0; ref < len(nest.Refs); ref++ {
		prev := int64(-1)
		for _, v := range vectorsFor(vs, ref) {
			d := absSum(v.R)
			if d < prev {
				t.Fatalf("ref %d: vectors not sorted by distance: %v", ref, vectorsFor(vs, ref))
			}
			prev = d
		}
	}
}

func TestKindString(t *testing.T) {
	if SelfTemporal.String() != "self-temporal" || GroupSpatial.String() != "group-spatial" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind empty")
	}
}
