package ir

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

// rectNest builds do i=1,ni { do j=1,nj { read b(i,j); write a(j,i) } }.
func rectNest(ni, nj int64) *Nest {
	a := &Array{Name: "a", Dims: []int64{nj, ni}, Elem: 8, Base: 0}
	b := &Array{Name: "b", Dims: []int64{ni, nj}, Elem: 8, Base: a.SizeBytes()}
	return &Nest{
		Name: "t2d",
		Loops: []Loop{
			{Var: "i", Lower: expr.Const(1), Upper: BoundOf(expr.Const(ni)), Step: 1},
			{Var: "j", Lower: expr.Const(1), Upper: BoundOf(expr.Const(nj)), Step: 1},
		},
		Refs: []Ref{
			{Array: b, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}},
			{Array: a, Subs: []expr.Affine{expr.Var(1), expr.Var(0)}, Write: true},
		},
	}
}

func TestNestValidateAndShape(t *testing.T) {
	n := rectNest(10, 20)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if !n.IsRectangular() {
		t.Fatal("rectangular nest not detected")
	}
	if n.Depth() != 2 {
		t.Fatalf("Depth = %d", n.Depth())
	}
	arrays := n.Arrays()
	if len(arrays) != 2 || arrays[0].Name != "b" || arrays[1].Name != "a" {
		t.Fatalf("Arrays = %v", arrays)
	}
}

func TestNestValidateErrors(t *testing.T) {
	n := rectNest(10, 20)
	n.Loops[1].Step = 0
	if err := n.Validate(); err == nil {
		t.Fatal("zero step accepted")
	}
	n = rectNest(10, 20)
	n.Loops[0].Lower = expr.Var(1) // outer bound using inner var
	if err := n.Validate(); err == nil {
		t.Fatal("forward-referencing lower bound accepted")
	}
	n = rectNest(10, 20)
	n.Refs = nil
	if err := n.Validate(); err == nil {
		t.Fatal("empty body accepted")
	}
	if err := (&Nest{Name: "x", Refs: make([]Ref, 1)}).Validate(); err == nil {
		t.Fatal("empty loop list accepted")
	}
}

func TestBoundEval(t *testing.T) {
	b := MinBound(expr.VarPlus(0, 4), expr.Const(7))
	if got := b.Eval([]int64{1}); got != 5 {
		t.Fatalf("min(v0+4,7) at v0=1 = %d, want 5", got)
	}
	if got := b.Eval([]int64{10}); got != 7 {
		t.Fatalf("min(v0+4,7) at v0=10 = %d, want 7", got)
	}
	if b.IsConst() {
		t.Fatal("variable bound reported constant")
	}
	if s := b.StringVars([]string{"ii"}); s != "min(ii+4,7)" {
		t.Fatalf("Bound string = %q", s)
	}
}

func TestNonRectangularDetection(t *testing.T) {
	n := rectNest(10, 20)
	n.Loops[1].Upper = MinBound(expr.VarPlus(0, 3), expr.Const(20))
	if n.IsRectangular() {
		t.Fatal("min-bound nest reported rectangular")
	}
	n2 := rectNest(10, 20)
	n2.Loops[0].Step = 4
	if n2.IsRectangular() {
		t.Fatal("strided nest reported rectangular")
	}
}

func TestNestString(t *testing.T) {
	s := rectNest(3, 4).String()
	for _, want := range []string{"do i = 1, 3", "do j = 1, 4", "read  b(i,j)", "write a(j,i)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q in:\n%s", want, s)
		}
	}
}

func TestLayoutArrays(t *testing.T) {
	a := &Array{Name: "a", Dims: []int64{10}, Elem: 8}
	b := &Array{Name: "b", Dims: []int64{3}, Elem: 8}
	c := &Array{Name: "c", Dims: []int64{5}, Elem: 8}
	LayoutArrays(100, 32, a, b, c)
	if a.Base != 128 { // aligned up from 100
		t.Fatalf("a.Base = %d, want 128", a.Base)
	}
	if b.Base != 224 { // 128+80=208, aligned up to 224
		t.Fatalf("b.Base = %d, want 224", b.Base)
	}
	if c.Base != 256 { // 224+24=248, aligned up to 256
		t.Fatalf("c.Base = %d, want 256", c.Base)
	}
}
