package ir

import (
	"fmt"
	"strings"

	"repro/internal/expr"
)

// Bound is an upper loop bound: the minimum over one or more affine
// expressions of outer loop variables. Original rectangular loops have a
// single constant expression; tiled loops acquire min(ii+T-1, U) bounds.
type Bound struct {
	Exprs []expr.Affine
}

// BoundOf returns a single-expression bound.
func BoundOf(e expr.Affine) Bound { return Bound{Exprs: []expr.Affine{e}} }

// MinBound returns the bound min(a, b).
func MinBound(a, b expr.Affine) Bound { return Bound{Exprs: []expr.Affine{a, b}} }

// Eval evaluates the bound at the given (partial) point: the minimum of the
// component expressions.
func (b Bound) Eval(point []int64) int64 {
	v := b.Exprs[0].Eval(point)
	for _, e := range b.Exprs[1:] {
		if w := e.Eval(point); w < v {
			v = w
		}
	}
	return v
}

// IsConst reports whether every component expression is constant.
func (b Bound) IsConst() bool {
	for _, e := range b.Exprs {
		if !e.IsConst() {
			return false
		}
	}
	return true
}

// String renders the bound.
func (b Bound) String() string { return b.StringVars(nil) }

// StringVars renders the bound with loop-variable names.
func (b Bound) StringVars(names []string) string {
	if len(b.Exprs) == 1 {
		return b.Exprs[0].StringVars(names)
	}
	parts := make([]string, len(b.Exprs))
	for i, e := range b.Exprs {
		parts[i] = e.StringVars(names)
	}
	return "min(" + strings.Join(parts, ",") + ")"
}

// Loop is one loop of a perfect nest: for Var := Lower; Var <= Upper; Var += Step.
// Lower may reference outer loop variables; Upper is a min-bound over affine
// expressions of outer variables. Step must be positive.
type Loop struct {
	Var   string
	Lower expr.Affine
	Upper Bound
	Step  int64
}

// Nest is a perfectly nested affine loop nest: the loops from outermost to
// innermost, and the memory references of the (single) innermost body in
// program order.
type Nest struct {
	Name  string
	Loops []Loop
	Refs  []Ref
}

// Depth returns the number of loops.
func (n *Nest) Depth() int { return len(n.Loops) }

// VarNames returns the loop variable names outermost-first.
func (n *Nest) VarNames() []string {
	names := make([]string, len(n.Loops))
	for i, l := range n.Loops {
		names[i] = l.Var
	}
	return names
}

// Arrays returns the distinct arrays referenced by the nest, in first-use
// order.
func (n *Nest) Arrays() []*Array {
	var out []*Array
	seen := map[*Array]bool{}
	for i := range n.Refs {
		a := n.Refs[i].Array
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// MaxBoundMagnitude caps the constants and coefficients of loop bounds and
// subscripts. Iteration counts, extents and subscript evaluations multiply
// these against each other and against array strides (themselves under
// MaxArrayBytes); the cap keeps every such product inside int64.
const MaxBoundMagnitude = int64(1) << 40

// affineInRange reports whether every constant and coefficient of e has
// magnitude at most MaxBoundMagnitude.
func affineInRange(e expr.Affine) bool {
	if e.Const > MaxBoundMagnitude || e.Const < -MaxBoundMagnitude {
		return false
	}
	for _, c := range e.Coeffs {
		if c > MaxBoundMagnitude || c < -MaxBoundMagnitude {
			return false
		}
	}
	return true
}

// Validate checks the structural invariants of the nest, including the
// MaxBoundMagnitude overflow caps on bounds and subscripts.
func (n *Nest) Validate() error {
	if len(n.Loops) == 0 {
		return fmt.Errorf("nest %s: no loops", n.Name)
	}
	if len(n.Refs) == 0 {
		return fmt.Errorf("nest %s: no references", n.Name)
	}
	for d, l := range n.Loops {
		if l.Step <= 0 {
			return fmt.Errorf("nest %s: loop %s step %d (must be positive)", n.Name, l.Var, l.Step)
		}
		if l.Step > MaxBoundMagnitude {
			return fmt.Errorf("nest %s: loop %s step %d overflows the bound cap", n.Name, l.Var, l.Step)
		}
		if l.Lower.NumVars() > d {
			return fmt.Errorf("nest %s: loop %s lower bound references inner variable", n.Name, l.Var)
		}
		if !affineInRange(l.Lower) {
			return fmt.Errorf("nest %s: loop %s lower bound overflows the bound cap", n.Name, l.Var)
		}
		if len(l.Upper.Exprs) == 0 {
			return fmt.Errorf("nest %s: loop %s has no upper bound", n.Name, l.Var)
		}
		for _, e := range l.Upper.Exprs {
			if e.NumVars() > d {
				return fmt.Errorf("nest %s: loop %s upper bound references inner variable", n.Name, l.Var)
			}
			if !affineInRange(e) {
				return fmt.Errorf("nest %s: loop %s upper bound overflows the bound cap", n.Name, l.Var)
			}
		}
	}
	for i := range n.Refs {
		if err := n.Refs[i].Validate(len(n.Loops)); err != nil {
			return fmt.Errorf("nest %s: %w", n.Name, err)
		}
		if err := n.Refs[i].Array.Validate(); err != nil {
			return fmt.Errorf("nest %s: %w", n.Name, err)
		}
	}
	return nil
}

// IsRectangular reports whether every loop has constant bounds and step 1:
// the form the original (untiled) kernels take.
func (n *Nest) IsRectangular() bool {
	for _, l := range n.Loops {
		if l.Step != 1 || !l.Lower.IsConst() || !l.Upper.IsConst() || len(l.Upper.Exprs) != 1 {
			return false
		}
	}
	return true
}

// String renders the nest as pseudo-Fortran for diagnostics.
func (n *Nest) String() string {
	names := n.VarNames()
	var b strings.Builder
	for d, l := range n.Loops {
		fmt.Fprintf(&b, "%sdo %s = %s, %s", strings.Repeat("  ", d),
			l.Var, l.Lower.StringVars(names), l.Upper.StringVars(names))
		if l.Step != 1 {
			fmt.Fprintf(&b, ", %d", l.Step)
		}
		b.WriteByte('\n')
	}
	ind := strings.Repeat("  ", len(n.Loops))
	for i := range n.Refs {
		r := &n.Refs[i]
		mode := "read "
		if r.Write {
			mode = "write"
		}
		fmt.Fprintf(&b, "%s%s %s\n", ind, mode, r.StringVars(names))
	}
	return b.String()
}

// LayoutArrays assigns consecutive base addresses to the given arrays
// starting at base, each aligned up to align bytes (align must be a power
// of two, typically the cache line size). It mirrors a simple static linker
// placing Fortran COMMON arrays back to back.
func LayoutArrays(base, align int64, arrays ...*Array) {
	addr := base
	for _, a := range arrays {
		if align > 0 {
			addr = (addr + align - 1) &^ (align - 1)
		}
		a.Base = addr
		addr += a.SizeBytes()
	}
}
