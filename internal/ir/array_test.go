package ir

import (
	"math/rand/v2"
	"testing"

	"repro/internal/expr"
)

func testArray() *Array {
	return &Array{Name: "a", Dims: []int64{10, 20}, Elem: 8, Base: 1024, Layout: ColumnMajor}
}

func TestArrayValidate(t *testing.T) {
	a := testArray()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Array{
		{Name: "", Dims: []int64{2}, Elem: 8},
		{Name: "x", Dims: nil, Elem: 8},
		{Name: "x", Dims: []int64{0}, Elem: 8},
		{Name: "x", Dims: []int64{2}, Elem: 0},
		{Name: "x", Dims: []int64{2}, Elem: 8, Base: -1},
		{Name: "x", Dims: []int64{2, 2}, Elem: 8, Pad: []int64{1}},
		{Name: "x", Dims: []int64{2}, Elem: 8, Pad: []int64{-1}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestColumnMajorAddressing(t *testing.T) {
	a := testArray() // 10x20 doubles, column-major
	// a(1,1) is at base.
	if got := a.Address([]int64{1, 1}); got != 1024 {
		t.Fatalf("a(1,1) = %d, want 1024", got)
	}
	// a(2,1): stride of dim0 is 1 element.
	if got := a.Address([]int64{2, 1}); got != 1024+8 {
		t.Fatalf("a(2,1) = %d, want %d", got, 1024+8)
	}
	// a(1,2): stride of dim1 is 10 elements.
	if got := a.Address([]int64{1, 2}); got != 1024+80 {
		t.Fatalf("a(1,2) = %d, want %d", got, 1024+80)
	}
	if got := a.SizeBytes(); got != 10*20*8 {
		t.Fatalf("SizeBytes = %d", got)
	}
}

func TestRowMajorAddressing(t *testing.T) {
	a := testArray()
	a.Layout = RowMajor
	// Row-major: last subscript fastest.
	if got := a.Address([]int64{1, 2}); got != 1024+8 {
		t.Fatalf("a(1,2) = %d, want %d", got, 1024+8)
	}
	if got := a.Address([]int64{2, 1}); got != 1024+20*8 {
		t.Fatalf("a(2,1) = %d, want %d", got, 1024+20*8)
	}
}

func TestPaddingChangesStridesNotShape(t *testing.T) {
	a := testArray()
	plain := a.Address([]int64{1, 2})
	a.Pad = []int64{3, 0} // leading dimension 10 -> 13
	padded := a.Address([]int64{1, 2})
	if padded != plain+3*8 {
		t.Fatalf("padded a(1,2) = %d, want %d", padded, plain+3*8)
	}
	if a.SizeBytes() != 13*20*8 {
		t.Fatalf("padded size = %d", a.SizeBytes())
	}
	a.BasePad = 16
	if got := a.Address([]int64{1, 1}); got != 1024+16 {
		t.Fatalf("base-padded a(1,1) = %d", got)
	}
}

func TestDelinearizeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for _, layout := range []Layout{ColumnMajor, RowMajor} {
		a := &Array{Name: "a", Dims: []int64{7, 5, 11}, Elem: 8, Layout: layout, Pad: []int64{2, 0, 1}}
		for iter := 0; iter < 500; iter++ {
			subs := []int64{1 + r.Int64N(7), 1 + r.Int64N(5), 1 + r.Int64N(11)}
			idx := a.LinearIndex(subs)
			got, ok := a.Delinearize(idx)
			if !ok {
				t.Fatalf("%v: Delinearize(%d) failed for %v", layout, idx, subs)
			}
			for d := range subs {
				if got[d] != subs[d] {
					t.Fatalf("%v: round trip %v -> %d -> %v", layout, subs, idx, got)
				}
			}
		}
	}
}

func TestDelinearizeRejectsPaddingAndOOB(t *testing.T) {
	a := &Array{Name: "a", Dims: []int64{4, 3}, Elem: 8, Pad: []int64{2, 0}}
	// Element index 4 lies in the pad of column 1 (padded extent 6).
	if _, ok := a.Delinearize(4); ok {
		t.Fatal("index in padding accepted")
	}
	if _, ok := a.Delinearize(-1); ok {
		t.Fatal("negative index accepted")
	}
	if _, ok := a.Delinearize(6*3 + 5); ok {
		t.Fatal("index past array end accepted")
	}
}

func TestRefAddress(t *testing.T) {
	a := testArray()
	// a(i+1, j) with i = v0, j = v1
	r := Ref{Array: a, Subs: []expr.Affine{expr.VarPlus(0, 1), expr.Var(1)}}
	pt := []int64{3, 2}
	want := a.Address([]int64{4, 2})
	if got := r.Address(pt); got != want {
		t.Fatalf("Ref.Address = %d, want %d", got, want)
	}
	if s := r.StringVars([]string{"i", "j"}); s != "a(i+1,j)" {
		t.Fatalf("String = %q", s)
	}
}

func TestRefValidate(t *testing.T) {
	a := testArray()
	good := Ref{Array: a, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}}
	if err := good.Validate(2); err != nil {
		t.Fatal(err)
	}
	wrongRank := Ref{Array: a, Subs: []expr.Affine{expr.Var(0)}}
	if err := wrongRank.Validate(2); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	deepVar := Ref{Array: a, Subs: []expr.Affine{expr.Var(0), expr.Var(5)}}
	if err := deepVar.Validate(2); err == nil {
		t.Fatal("out-of-depth variable accepted")
	}
	if err := (&Ref{}).Validate(1); err == nil {
		t.Fatal("nil array accepted")
	}
}
