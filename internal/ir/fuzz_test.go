package ir_test

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/ir"
	"repro/internal/tiling"
)

// FuzzNestValidate builds loop nests straight from fuzzer-chosen integers —
// including extents, bounds, pads and element sizes far outside anything
// the parser would produce — and checks that Validate never panics, that
// overflowing shapes are rejected, and that every nest Validate accepts
// survives the downstream consumers (String, address arithmetic,
// tiling.Box) without panicking.
func FuzzNestValidate(f *testing.F) {
	f.Add(int64(100), int64(100), int64(8), int64(0), int64(1), int64(99), int64(1), int64(0))
	f.Add(int64(1)<<45, int64(1)<<45, int64(8), int64(3), int64(1), int64(50), int64(2), int64(-7))
	f.Add(int64(0), int64(-4), int64(-8), int64(-64), int64(5), int64(2), int64(0), int64(1)<<41)
	f.Add(int64(1), int64(1), int64(1), int64(1)<<46, int64(1), int64(1), int64(1), int64(1))
	f.Fuzz(func(t *testing.T, dim0, dim1, elem, pad0, lo, hi, coef, cnst int64) {
		arr := &ir.Array{
			Name: "a",
			Dims: []int64{dim0, dim1},
			Elem: elem,
			Pad:  []int64{pad0, 0},
		}
		nest := &ir.Nest{
			Name: "fuzz",
			Loops: []ir.Loop{
				{Var: "i", Lower: expr.Const(lo), Upper: ir.BoundOf(expr.Const(hi)), Step: 1},
				{Var: "j", Lower: expr.Const(lo), Upper: ir.BoundOf(expr.Const(hi)), Step: 1},
			},
			Refs: []ir.Ref{{
				Array: arr,
				Subs:  []expr.Affine{expr.Term(0, coef, cnst), expr.VarPlus(1, 0)},
			}},
		}
		if err := nest.Validate(); err != nil {
			return // rejected cleanly — that is the contract for bad shapes
		}
		// Accepted nests must be safe for every downstream consumer.
		_ = nest.String()
		_ = arr.SizeBytes()
		_ = arr.Strides()
		if subs, ok := arr.Delinearize(arr.LinearIndex([]int64{1, 1})); ok {
			if subs[0] != 1 || subs[1] != 1 {
				t.Fatalf("Delinearize(LinearIndex(1,1)) = %v", subs)
			}
		}
		box, err := tiling.Box(nest)
		if err != nil {
			return // e.g. empty loop range — a clean rejection
		}
		if box.Extent(0) != hi-lo+1 {
			t.Fatalf("box extent %d, want %d", box.Extent(0), hi-lo+1)
		}
		if _, _, err := tiling.Apply(nest, []int64{1, 1}); err != nil {
			t.Fatalf("tiling a validated rectangular nest: %v", err)
		}
	})
}
