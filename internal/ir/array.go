// Package ir defines the loop-nest intermediate representation consumed by
// the locality analysis: arrays with explicit memory layout, affine array
// references, and perfectly nested loops with affine bounds.
//
// The representation deliberately mirrors what Cache Miss Equations need —
// iteration space, array sizes, base addresses and subscript functions — and
// nothing more (no statement bodies; only the memory references matter).
package ir

import (
	"fmt"

	"repro/internal/expr"
)

// Layout selects the linearisation order of a multi-dimensional array.
type Layout int

const (
	// ColumnMajor is Fortran order: the first subscript varies fastest.
	// The paper's kernels are Fortran codes, so this is the default.
	ColumnMajor Layout = iota
	// RowMajor is C order: the last subscript varies fastest.
	RowMajor
)

func (l Layout) String() string {
	if l == RowMajor {
		return "row-major"
	}
	return "column-major"
}

// Array describes one program array: its declared shape, element size,
// layout and base address. Subscripts are 1-based (Fortran convention).
//
// Pad holds per-dimension intra-array padding: Pad[d] extra (unused)
// elements are added to dimension d's extent when computing strides, so
// padding changes addresses without changing the set of valid subscripts.
// BasePad is inter-array padding: extra bytes added to the base address.
type Array struct {
	Name    string
	Dims    []int64 // declared extent per dimension (≥1 each)
	Elem    int64   // element size in bytes
	Base    int64   // base address in bytes
	Layout  Layout
	Pad     []int64 // optional; nil means no intra padding
	BasePad int64   // inter-array padding in bytes
}

// MaxArrayBytes caps an array's padded storage footprint. Strides, linear
// indices and byte addresses are all int64 products of extents; keeping the
// footprint far below 2^63 guarantees those products cannot wrap around.
const MaxArrayBytes = int64(1) << 46

// Validate checks structural invariants, including overflow safety: every
// extent, pad, base address and the total padded footprint must stay under
// MaxArrayBytes so address arithmetic can never wrap.
func (a *Array) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("array with empty name")
	}
	if len(a.Dims) == 0 {
		return fmt.Errorf("array %s: no dimensions", a.Name)
	}
	for d, e := range a.Dims {
		if e < 1 {
			return fmt.Errorf("array %s: dimension %d extent %d < 1", a.Name, d, e)
		}
		if e > MaxArrayBytes {
			return fmt.Errorf("array %s: dimension %d extent %d overflows the %d-byte cap", a.Name, d, e, MaxArrayBytes)
		}
	}
	if a.Elem <= 0 {
		return fmt.Errorf("array %s: element size %d", a.Name, a.Elem)
	}
	if a.Elem > MaxArrayBytes {
		return fmt.Errorf("array %s: element size %d overflows the %d-byte cap", a.Name, a.Elem, MaxArrayBytes)
	}
	if a.Base < 0 || a.Base > MaxArrayBytes {
		return fmt.Errorf("array %s: base address %d outside [0, %d]", a.Name, a.Base, MaxArrayBytes)
	}
	if a.BasePad < -MaxArrayBytes || a.BasePad > MaxArrayBytes || a.Base+a.BasePad < 0 {
		return fmt.Errorf("array %s: negative base address", a.Name)
	}
	if a.Pad != nil && len(a.Pad) != len(a.Dims) {
		return fmt.Errorf("array %s: pad rank %d != dims rank %d", a.Name, len(a.Pad), len(a.Dims))
	}
	for d, p := range a.Pad {
		if p < 0 {
			return fmt.Errorf("array %s: negative pad in dimension %d", a.Name, d)
		}
		if p > MaxArrayBytes {
			return fmt.Errorf("array %s: pad %d in dimension %d overflows the %d-byte cap", a.Name, p, d, MaxArrayBytes)
		}
	}
	// Overflow-safe footprint check: divide before multiplying so the
	// running product itself can never wrap.
	n := a.Elem
	for d := range a.Dims {
		e := a.paddedExtent(d) // each term ≤ MaxArrayBytes, so the sum fits
		if n > MaxArrayBytes/e {
			return fmt.Errorf("array %s: padded footprint overflows the %d-byte cap", a.Name, MaxArrayBytes)
		}
		n *= e
	}
	return nil
}

// Rank returns the number of dimensions.
func (a *Array) Rank() int { return len(a.Dims) }

// paddedExtent returns the extent of dimension d including intra padding.
func (a *Array) paddedExtent(d int) int64 {
	e := a.Dims[d]
	if a.Pad != nil {
		e += a.Pad[d]
	}
	return e
}

// Strides returns the element stride of each dimension under the array's
// layout and padding.
func (a *Array) Strides() []int64 {
	s := make([]int64, len(a.Dims))
	switch a.Layout {
	case ColumnMajor:
		st := int64(1)
		for d := 0; d < len(a.Dims); d++ {
			s[d] = st
			st *= a.paddedExtent(d)
		}
	case RowMajor:
		st := int64(1)
		for d := len(a.Dims) - 1; d >= 0; d-- {
			s[d] = st
			st *= a.paddedExtent(d)
		}
	}
	return s
}

// SizeBytes returns the padded storage footprint of the array in bytes.
func (a *Array) SizeBytes() int64 {
	n := int64(1)
	for d := range a.Dims {
		n *= a.paddedExtent(d)
	}
	return n * a.Elem
}

// LinearIndex returns the 0-based linearised element index of the given
// 1-based subscripts.
func (a *Array) LinearIndex(subs []int64) int64 {
	strides := a.Strides()
	var idx int64
	for d, s := range subs {
		idx += (s - 1) * strides[d]
	}
	return idx
}

// Address returns the byte address of the element with the given 1-based
// subscripts.
func (a *Array) Address(subs []int64) int64 {
	return a.Base + a.BasePad + a.LinearIndex(subs)*a.Elem
}

// Delinearize inverts LinearIndex: it maps a 0-based element index back to
// 1-based subscripts. It reports false if the index is out of range of the
// declared (unpadded) extents — e.g. when a cache line spans padding.
func (a *Array) Delinearize(idx int64) ([]int64, bool) {
	if idx < 0 {
		return nil, false
	}
	subs := make([]int64, len(a.Dims))
	strides := a.Strides()
	// Process dimensions from largest stride to smallest.
	order := make([]int, len(a.Dims))
	for i := range order {
		order[i] = i
	}
	// Simple selection sort by descending stride (rank is tiny).
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if strides[order[j]] > strides[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, d := range order {
		q := idx / strides[d]
		idx -= q * strides[d]
		if q >= a.Dims[d] { // landed in padding or out of bounds
			return nil, false
		}
		subs[d] = q + 1
	}
	return subs, true
}

// Ref is one affine array reference in the loop body. Subscript d is an
// affine expression over the loop variables of the enclosing nest
// (variable index = loop depth, 0 = outermost).
type Ref struct {
	Array *Array
	Subs  []expr.Affine
	Write bool
}

// Address returns the byte address the reference touches at the given
// iteration point (point[d] = value of loop variable d).
func (r *Ref) Address(point []int64) int64 {
	strides := r.Array.Strides()
	addr := r.Array.Base + r.Array.BasePad
	for d, sub := range r.Subs {
		addr += (sub.Eval(point) - 1) * strides[d] * r.Array.Elem
	}
	return addr
}

// Validate checks the reference against its array and the nest depth.
func (r *Ref) Validate(depth int) error {
	if r.Array == nil {
		return fmt.Errorf("reference with nil array")
	}
	if len(r.Subs) != r.Array.Rank() {
		return fmt.Errorf("reference to %s: %d subscripts for rank-%d array",
			r.Array.Name, len(r.Subs), r.Array.Rank())
	}
	for d, s := range r.Subs {
		if s.NumVars() > depth {
			return fmt.Errorf("reference to %s subscript %d uses variable v%d beyond nest depth %d",
				r.Array.Name, d, s.NumVars()-1, depth)
		}
		if !affineInRange(s) {
			return fmt.Errorf("reference to %s subscript %d overflows the bound cap", r.Array.Name, d)
		}
	}
	return nil
}

// String renders the reference like "a(i,j)".
func (r *Ref) String() string { return r.StringVars(nil) }

// StringVars renders the reference with the given loop-variable names.
func (r *Ref) StringVars(names []string) string {
	s := r.Array.Name + "("
	for d, sub := range r.Subs {
		if d > 0 {
			s += ","
		}
		s += sub.StringVars(names)
	}
	return s + ")"
}
