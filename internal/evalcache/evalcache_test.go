package evalcache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/cme"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/telemetry"
	"repro/internal/tiling"
)

// nest builds a catalog kernel instance for key tests.
func nest(t *testing.T, name string, size int64) *ir.Nest {
	t.Helper()
	k, ok := kernels.Get(name)
	if !ok {
		t.Fatalf("kernel %s not in catalog", name)
	}
	n, err := k.Instance(size)
	if err != nil {
		t.Fatalf("instance %s(%d): %v", name, size, err)
	}
	return n
}

func TestFitnessRoundTrip(t *testing.T) {
	c := New(Config{MaxEntries: 64})
	if _, ok := c.GetFitness("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.PutFitness("k", 3.5)
	v, ok := c.GetFitness("k")
	if !ok || v != 3.5 {
		t.Fatalf("GetFitness = %v, %v; want 3.5, true", v, ok)
	}
	// Fitness and stats tiers must not alias even with equal keys.
	if _, ok := c.GetStats("k"); ok {
		t.Fatal("stats tier aliased a fitness entry")
	}
	c.PutStats("k", cachesim.Stats{Accesses: 7, Replacement: 2})
	st, ok := c.GetStats("k")
	if !ok || st.Accesses != 7 || st.Replacement != 2 {
		t.Fatalf("GetStats = %+v, %v", st, ok)
	}
	if v, _ := c.GetFitness("k"); v != 3.5 {
		t.Fatal("stats put clobbered the fitness entry")
	}
}

func TestEvictionBound(t *testing.T) {
	const max = 128
	c := New(Config{MaxEntries: max, Shards: 4})
	for i := 0; i < 10*max; i++ {
		c.PutFitness(fmt.Sprintf("key-%d", i), float64(i))
	}
	// Per-shard bounds round up, so the total bound has at most one
	// slack entry per shard.
	if n := c.Len(); n > max+len(c.shards) {
		t.Fatalf("cache holds %d entries, bound %d (+%d shard slack)", n, max, len(c.shards))
	}
	if m := c.Metrics(); m.Evictions == 0 {
		t.Fatal("no evictions recorded despite 10x overfill")
	}
}

func TestHitAccounting(t *testing.T) {
	cap := &telemetry.Capture{}
	c := New(Config{MaxEntries: 64, Observer: cap})
	c.GetFitness("a") // miss
	c.PutFitness("a", 1)
	c.GetFitness("a") // hit
	c.GetStats("b")   // miss
	m := c.Metrics()
	if m.Hits != 1 || m.Misses != 2 {
		t.Fatalf("Metrics = %+v, want 1 hit / 2 misses", m)
	}
	ctr := cap.Counters()
	if ctr.EvalCacheHits != 1 || ctr.EvalCacheMisses != 2 {
		t.Fatalf("telemetry counters = %+v, want 1 hit / 2 misses", ctr)
	}
	hits, misses := 0, 0
	for _, e := range cap.Events() {
		switch e.(type) {
		case telemetry.EvalCacheHit:
			hits++
		case telemetry.EvalCacheMiss:
			misses++
		}
	}
	if hits != 1 || misses != 2 {
		t.Fatalf("events: %d hits / %d misses, want 1 / 2", hits, misses)
	}
}

func TestPutExistingKeyUpdatesInPlace(t *testing.T) {
	c := New(Config{MaxEntries: 64})
	c.PutFitness("k", 1)
	c.PutFitness("k", 2)
	if c.Len() != 1 {
		t.Fatalf("duplicate insert: Len = %d", c.Len())
	}
	if v, _ := c.GetFitness("k"); v != 2 {
		t.Fatalf("GetFitness = %v, want the updated value 2", v)
	}
}

func TestNestKeyDiscriminates(t *testing.T) {
	mm := nest(t, "MM", 64)
	mm2 := nest(t, "MM", 64)
	if NestKey(mm) != NestKey(mm2) {
		t.Fatal("structurally equal nests hash differently")
	}
	if NestKey(mm) == NestKey(nest(t, "MM", 128)) {
		t.Fatal("different problem sizes hash identically")
	}
	if NestKey(mm) == NestKey(nest(t, "ADD", 64)) {
		t.Fatal("different kernels hash identically")
	}
}

func TestConfigKeyAndScopeDiscriminate(t *testing.T) {
	if ConfigKey(cache.DM8K) == ConfigKey(cache.DM32K) {
		t.Fatal("different geometries hash identically")
	}
	if Scope("tiling", "a") == Scope("tiling", "b") {
		t.Fatal("different scope parts hash identically")
	}
	if Scope("a", "bc") == Scope("ab", "c") {
		t.Fatal("scope framing is ambiguous across part boundaries")
	}
}

func TestPoolCheckoutIsExclusive(t *testing.T) {
	c := New(Config{MaxEntries: 64})
	if _, ok := c.CheckoutPool("p"); ok {
		t.Fatal("checkout hit on empty cache")
	}
	c.ReturnPool("p", nil) // zero-length pools are dropped, not parked
	if _, ok := c.CheckoutPool("p"); ok {
		t.Fatal("zero-length pool was parked")
	}

	n := nest(t, "MM", 32)
	box, err := tiling.Box(n)
	if err != nil {
		t.Fatalf("Box: %v", err)
	}
	an, err := cme.NewAnalyzer(n, box, cache.DM8K)
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	c.ReturnPool("p", []*cme.Analyzer{an})
	pool, ok := c.CheckoutPool("p")
	if !ok || len(pool) != 1 || pool[0] != an {
		t.Fatalf("checkout returned %v, %v", pool, ok)
	}
	// Checkout removes: a second checkout must miss.
	if _, ok := c.CheckoutPool("p"); ok {
		t.Fatal("pool shared across checkouts")
	}
}

func TestPoolBound(t *testing.T) {
	c := New(Config{MaxEntries: 64})
	n := nest(t, "MM", 32)
	box, err := tiling.Box(n)
	if err != nil {
		t.Fatalf("Box: %v", err)
	}
	an, err := cme.NewAnalyzer(n, box, cache.DM8K)
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	for i := 0; i < 3*maxPools; i++ {
		c.ReturnPool(fmt.Sprintf("p-%d", i), []*cme.Analyzer{an})
	}
	c.poolMu.Lock()
	parked := c.poolOrder.Len()
	c.poolMu.Unlock()
	if parked > maxPools {
		t.Fatalf("%d pools parked, bound %d", parked, maxPools)
	}
	if m := c.Metrics(); m.Evictions == 0 {
		t.Fatal("pool overfill recorded no evictions")
	}
}

func TestConcurrentUse(t *testing.T) {
	c := New(Config{MaxEntries: 256, Shards: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k-%d", i%64)
				if v, ok := c.GetFitness(key); ok && v != float64(i%64) {
					t.Errorf("key %s recalled %v", key, v)
					return
				}
				c.PutFitness(key, float64(i%64))
				c.PutStats(key, cachesim.Stats{Accesses: uint64(i)})
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 256+len(c.shards) {
		t.Fatalf("bound violated under concurrency: %d", n)
	}
}
