// Canonical hashing for shared-cache keys. Every key the cache sees is
// derived from content, never from pointers: two requests that describe
// the same loop nest, cache geometry and sample set map to the same
// scope no matter which process lifetime or goroutine built them.
package evalcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"

	"repro/internal/cache"
	"repro/internal/expr"
	"repro/internal/ir"
)

// hashWriter serializes primitives into a running hash with unambiguous
// framing: every variable-length field is preceded by its length, and
// strings are length-prefixed bytes, so no two distinct structures share
// an encoding.
type hashWriter struct {
	h   hash.Hash
	buf [8]byte
}

func newHashWriter() *hashWriter { return &hashWriter{h: sha256.New()} }

func (w *hashWriter) i64(v int64) {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(v))
	w.h.Write(w.buf[:])
}

func (w *hashWriter) str(s string) {
	w.i64(int64(len(s)))
	io.WriteString(w.h, s)
}

func (w *hashWriter) i64s(vs []int64) {
	w.i64(int64(len(vs)))
	for _, v := range vs {
		w.i64(v)
	}
}

func (w *hashWriter) affine(a expr.Affine) {
	w.i64(a.Const)
	w.i64s(a.Coeffs)
}

func (w *hashWriter) sum() string { return hex.EncodeToString(w.h.Sum(nil)) }

// NestKey returns a canonical content hash of a loop nest: name, loop
// bounds and steps, every referenced array's geometry (including padding
// and base address, which change the address stream), and every
// reference's subscripts and access kind. Arrays are identified by their
// first-use order, so structurally equal nests built independently hash
// identically.
func NestKey(n *ir.Nest) string {
	w := newHashWriter()
	w.str(n.Name)
	w.i64(int64(len(n.Loops)))
	for _, l := range n.Loops {
		w.str(l.Var)
		w.affine(l.Lower)
		w.i64(int64(len(l.Upper.Exprs)))
		for _, e := range l.Upper.Exprs {
			w.affine(e)
		}
		w.i64(l.Step)
	}
	arrays := n.Arrays()
	index := make(map[*ir.Array]int, len(arrays))
	w.i64(int64(len(arrays)))
	for i, a := range arrays {
		index[a] = i
		w.str(a.Name)
		w.i64s(a.Dims)
		w.i64(a.Elem)
		w.i64(a.Base)
		w.i64(int64(a.Layout))
		w.i64s(a.Pad)
		w.i64(a.BasePad)
	}
	w.i64(int64(len(n.Refs)))
	for i := range n.Refs {
		r := &n.Refs[i]
		w.i64(int64(index[r.Array]))
		w.i64(int64(len(r.Subs)))
		for _, s := range r.Subs {
			w.affine(s)
		}
		if r.Write {
			w.i64(1)
		} else {
			w.i64(0)
		}
	}
	return w.sum()
}

// ConfigKey returns a canonical hash of one cache geometry.
func ConfigKey(c cache.Config) string {
	w := newHashWriter()
	w.i64(c.Size)
	w.i64(c.LineSize)
	w.i64(int64(c.Assoc))
	return w.sum()
}

// Scope condenses the full evaluation context — search phase label, nest
// hash, geometry hash(es), sample fingerprint, and any extra
// discriminators — into one fixed-width prefix for per-genome keys.
// Distinct scopes can never collide with each other's entries because the
// scope participates in every key.
func Scope(parts ...string) string {
	w := newHashWriter()
	w.i64(int64(len(parts)))
	for _, p := range parts {
		w.str(p)
	}
	return w.sum()
}
