// Package evalcache is the shared evaluation cache: a sharded, bounded,
// concurrency-safe store for finished CME evaluation results, shared
// across GA islands, successive searches, and tiling-service requests.
//
// Three tiers live behind one size bound:
//
//   - fitness: GA objective values keyed by (scope, genome bits), where
//     the scope hashes the search phase, nest IR, cache geometry and
//     sample fingerprint. A hit replays a finished evaluation from an
//     earlier search.
//   - stats: finalized per-tile cachesim.Stats keyed by (nest, geometry,
//     sample, iteration space), recalling the full classification
//     breakdown for a tile that was already finalized.
//   - pool: bound analyzer pools keyed by (nest, geometry), so a repeated
//     request reuses the CME setup work (reference-group analysis,
//     buffers) instead of rebuilding it.
//
// Determinism contract: a fitness or stats value is a pure function of
// its key — the sampled-miss objective depends only on the nest content,
// cache geometry, sample set and candidate genome — so recalling it is
// result-transparent. Callers must never store values that are not
// (quarantine sentinels, poisoned +Inf results); the cache itself only
// stores and recalls.
//
// Eviction is per-shard LRU with a hard total bound; one insert performs
// at most evictBatch removals under the shard mutex, so no caller stalls
// behind an O(cache) sweep.
package evalcache

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/internal/cachesim"
	"repro/internal/cme"
	"repro/internal/telemetry"
)

// Config sizes the cache.
type Config struct {
	// MaxEntries bounds the total fitness + stats entry count across all
	// shards; 0 means DefaultMaxEntries.
	MaxEntries int
	// Shards is the shard count (rounded up to a power of two); 0 means
	// DefaultShards. More shards reduce mutex contention between
	// concurrent searches.
	Shards int
	// Observer receives evalcache_hit/miss/evict events and counter
	// deltas; nil disables telemetry at zero cost.
	Observer telemetry.Recorder
}

// Defaults for Config zero values.
const (
	DefaultMaxEntries = 1 << 15
	DefaultShards     = 16
	// maxPools bounds how many (nest, geometry) keys retain a parked
	// analyzer pool. Pools are heavyweight (per-worker solver state), so
	// the bound is small: enough for a service's hot kernels.
	maxPools = 8
)

// evictBatch bounds evictions per insert under the shard mutex (same
// rationale as the server's response cache).
const evictBatch = 8

type entry struct {
	key string
	val any // float64 (fitness) or cachesim.Stats (stats)
}

type shard struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

// Cache is the shared evaluation cache. The zero value is not usable;
// construct with New. A nil *Cache is the canonical "disabled" state and
// is what Options.SharedCache left unset means.
type Cache struct {
	shards []*shard
	mask   uint64
	seed   maphash.Seed
	obs    telemetry.Recorder

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	poolMu    sync.Mutex
	pools     map[string]*list.Element
	poolOrder *list.List // front = most recently returned
}

type poolEntry struct {
	key  string
	pool []*cme.Analyzer
}

// New builds a cache from cfg, applying defaults for zero values.
func New(cfg Config) *Cache {
	maxEntries := cfg.MaxEntries
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	perShard := (maxEntries + shards - 1) / shards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{
		shards:    make([]*shard, shards),
		mask:      uint64(shards - 1),
		seed:      maphash.MakeSeed(),
		obs:       cfg.Observer,
		pools:     make(map[string]*list.Element),
		poolOrder: list.New(),
	}
	for i := range c.shards {
		c.shards[i] = &shard{max: perShard, order: list.New(), items: make(map[string]*list.Element)}
	}
	return c
}

func (c *Cache) shardOf(key string) *shard {
	return c.shards[maphash.String(c.seed, key)&c.mask]
}

// get looks key up in its shard and refreshes recency on a hit.
func (c *Cache) get(key, tier string) (any, bool) {
	s := c.shardOf(key)
	s.mu.Lock()
	el, ok := s.items[key]
	var v any
	if ok {
		s.order.MoveToFront(el)
		v = el.Value.(*entry).val
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		if c.obs != nil {
			c.obs.Event(telemetry.EvalCacheHit{Tier: tier})
			c.obs.Add(telemetry.Counters{EvalCacheHits: 1})
		}
		return v, true
	}
	c.misses.Add(1)
	if c.obs != nil {
		c.obs.Event(telemetry.EvalCacheMiss{Tier: tier})
		c.obs.Add(telemetry.Counters{EvalCacheMisses: 1})
	}
	return nil, false
}

// put stores val under key; an existing key is updated in place. At most
// evictBatch least-recently-used entries are dropped while the shard is
// over its bound.
func (c *Cache) put(key string, val any) {
	s := c.shardOf(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry).val = val
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.items[key] = s.order.PushFront(&entry{key: key, val: val})
	evicted := 0
	for evicted < evictBatch && s.order.Len() > s.max {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*entry).key)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
		if c.obs != nil {
			c.obs.Event(telemetry.EvalCacheEvict{Evicted: evicted})
			c.obs.Add(telemetry.Counters{EvalCacheEvictions: uint64(evicted)})
		}
	}
}

// GetFitness recalls a finished GA objective value.
func (c *Cache) GetFitness(key string) (float64, bool) {
	v, ok := c.get("f:"+key, "fitness")
	if !ok {
		return 0, false
	}
	return v.(float64), true
}

// PutFitness stores a finished GA objective value. Callers filter out
// sentinel values (quarantine fitness, ±Inf, NaN) before storing.
func (c *Cache) PutFitness(key string, v float64) { c.put("f:"+key, v) }

// GetStats recalls finalized per-tile classification statistics.
func (c *Cache) GetStats(key string) (cachesim.Stats, bool) {
	v, ok := c.get("s:"+key, "stats")
	if !ok {
		return cachesim.Stats{}, false
	}
	return v.(cachesim.Stats), true
}

// PutStats stores finalized per-tile classification statistics.
func (c *Cache) PutStats(key string, st cachesim.Stats) { c.put("s:"+key, st) }

// CheckoutPool removes and returns the parked analyzer pool for key, if
// any. Removal (not sharing) keeps analyzers single-owner: concurrent
// searches over the same nest each check out at most one pool and the
// rest rebuild.
func (c *Cache) CheckoutPool(key string) ([]*cme.Analyzer, bool) {
	c.poolMu.Lock()
	el, ok := c.pools[key]
	var pool []*cme.Analyzer
	if ok {
		pool = el.Value.(*poolEntry).pool
		c.poolOrder.Remove(el)
		delete(c.pools, key)
	}
	c.poolMu.Unlock()
	if c.obs != nil {
		if ok {
			c.obs.Event(telemetry.EvalCacheHit{Tier: "pool"})
			c.obs.Add(telemetry.Counters{EvalCacheHits: 1})
		} else {
			c.obs.Event(telemetry.EvalCacheMiss{Tier: "pool"})
			c.obs.Add(telemetry.Counters{EvalCacheMisses: 1})
		}
	}
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return pool, ok
}

// ReturnPool parks an analyzer pool under key for a later search over
// the same nest and geometry. A pool already parked under key is
// replaced; beyond maxPools distinct keys the least-recently-returned
// pool is dropped. The caller must not use pool afterwards.
func (c *Cache) ReturnPool(key string, pool []*cme.Analyzer) {
	if len(pool) == 0 {
		return
	}
	evicted := 0
	c.poolMu.Lock()
	if el, ok := c.pools[key]; ok {
		el.Value.(*poolEntry).pool = pool
		c.poolOrder.MoveToFront(el)
	} else {
		c.pools[key] = c.poolOrder.PushFront(&poolEntry{key: key, pool: pool})
		for c.poolOrder.Len() > maxPools {
			oldest := c.poolOrder.Back()
			c.poolOrder.Remove(oldest)
			delete(c.pools, oldest.Value.(*poolEntry).key)
			evicted++
		}
	}
	c.poolMu.Unlock()
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
		if c.obs != nil {
			c.obs.Event(telemetry.EvalCacheEvict{Evicted: evicted})
			c.obs.Add(telemetry.Counters{EvalCacheEvictions: uint64(evicted)})
		}
	}
}

// Len reports the live fitness + stats entry count across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Metrics is a point-in-time accounting snapshot.
type Metrics struct {
	// Hits and Misses count lookups across all tiers (fitness, stats,
	// pool); Evictions counts entries dropped by the size bound.
	Hits, Misses, Evictions uint64
	// Entries is the live fitness + stats entry count.
	Entries int
}

// Metrics returns the cache's accounting snapshot.
func (c *Cache) Metrics() Metrics {
	return Metrics{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
