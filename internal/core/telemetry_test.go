package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/ga"
	"repro/internal/kernels"
	"repro/internal/telemetry"
)

// TestValidateBadOptions: every out-of-range field fails Validate with an
// error that wraps the typed ErrBadOption sentinel, and every search
// rejects the configuration up front instead of misbehaving mid-run.
func TestValidateBadOptions(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
	}{
		{"zero cache", Options{}},
		{"negative sample points", Options{Cache: cache.DM8K, SamplePoints: -1}},
		{"confidence at 1", Options{Cache: cache.DM8K, Confidence: 1}},
		{"negative confidence", Options{Cache: cache.DM8K, Confidence: -0.5}},
		{"negative workers", Options{Cache: cache.DM8K, Workers: -2}},
		{"negative deadline", Options{Cache: cache.DM8K, Deadline: -time.Second}},
		{"negative budget", Options{Cache: cache.DM8K, MaxEvaluations: -1}},
	}
	k, _ := kernels.Get("T2D")
	nest, err := k.Instance(40)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.opt.Validate(); !errors.Is(err, ErrBadOption) {
				t.Fatalf("Validate: %v, want ErrBadOption", err)
			}
			if _, err := OptimizeTiling(context.Background(), nest, tc.opt); !errors.Is(err, ErrBadOption) {
				t.Fatalf("OptimizeTiling: %v, want ErrBadOption", err)
			}
		})
	}
}

// TestValidateAcceptsDefaults: the zero values withDefaults fills in are
// valid, so the options every example and CLI tool builds pass unchanged.
func TestValidateAcceptsDefaults(t *testing.T) {
	if err := (Options{Cache: cache.DM8K}).Validate(); err != nil {
		t.Fatalf("Validate(defaults): %v", err)
	}
}

// TestObserverEventSequence: a complete tiling search emits a well-formed
// event stream — SearchStart first, SearchStop last, one GenerationDone
// per generation, a finalize PhaseChange, evaluation batches — and the
// aggregated counters are consistent with the result.
func TestObserverEventSequence(t *testing.T) {
	k, _ := kernels.Get("MM")
	nest, err := k.Instance(40)
	if err != nil {
		t.Fatal(err)
	}
	var cap telemetry.Capture
	opt := Options{Cache: cache.DM8K, Seed: 7, SamplePoints: 64, Workers: 1, Observer: &cap}
	res, err := OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatal(err)
	}

	events := cap.Events()
	if len(events) == 0 {
		t.Fatal("observer saw no events")
	}
	start, ok := events[0].(telemetry.SearchStart)
	if !ok {
		t.Fatalf("first event is %T, want SearchStart", events[0])
	}
	if start.Search != "tiling" || start.Kernel != "MM" || start.Seed != 7 ||
		start.SamplePoints != 64 || start.Workers != 1 || start.Depth != nest.Depth() {
		t.Errorf("SearchStart fields wrong: %+v", start)
	}
	stop, ok := events[len(events)-1].(telemetry.SearchStop)
	if !ok {
		t.Fatalf("last event is %T, want SearchStop", events[len(events)-1])
	}
	if stop.Search != "tiling" || stop.Stopped != res.Stopped.String() ||
		stop.Generations != res.GA.Generations || stop.Evaluations != res.GA.Evaluations {
		t.Errorf("SearchStop fields inconsistent with result: %+v vs %+v", stop, res.GA)
	}

	var gens, batches, finalize int
	lastGen := -1
	for _, e := range events {
		switch ev := e.(type) {
		case telemetry.GenerationDone:
			gens++
			if ev.Gen <= lastGen {
				t.Errorf("GenerationDone out of order: gen %d after %d", ev.Gen, lastGen)
			}
			lastGen = ev.Gen
		case telemetry.EvaluationBatch:
			batches++
			if ev.Points <= 0 || ev.Accesses == 0 {
				t.Errorf("degenerate EvaluationBatch: %+v", ev)
			}
		case telemetry.PhaseChange:
			if ev.Phase == "finalize" {
				finalize++
			}
		}
	}
	// One event for the initial population (gen 0) plus one per generation.
	if gens != res.GA.Generations+1 {
		t.Errorf("saw %d GenerationDone events, result reports %d generations", gens, res.GA.Generations)
	}
	if batches == 0 {
		t.Error("no EvaluationBatch events")
	}
	if finalize != 1 {
		t.Errorf("saw %d finalize PhaseChange events, want 1", finalize)
	}

	c := cap.Counters()
	if c.Evaluations != uint64(res.GA.Evaluations) {
		t.Errorf("counter Evaluations=%d, result reports %d", c.Evaluations, res.GA.Evaluations)
	}
	if c.SampledPoints == 0 || c.WalkSteps == 0 || c.ClassifiedAccesses == 0 {
		t.Errorf("sampling counters not populated: %+v", c)
	}
	if c.PoolHits+c.PoolMisses == 0 {
		t.Errorf("analyzer pool counters not populated: %+v", c)
	}
}

// TestNilObserverSafe: the default nil observer must be accepted
// everywhere without emitting or allocating recorders.
func TestNilObserverSafe(t *testing.T) {
	k, _ := kernels.Get("T2D")
	nest, err := k.Instance(40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimizeTiling(context.Background(), nest, Options{Cache: cache.DM8K, Seed: 1, SamplePoints: 32}); err != nil {
		t.Fatal(err)
	}
}

// TestProgressAdapter: the deprecated Progress callback still fires once
// per generation, driven by the telemetry stream underneath.
func TestProgressAdapter(t *testing.T) {
	k, _ := kernels.Get("T2D")
	nest, err := k.Instance(40)
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	lastGen := -1
	opt := Options{Cache: cache.DM8K, Seed: 1, SamplePoints: 32, Workers: 1}
	opt.Progress = func(p ga.Progress) {
		calls++
		if p.Gen <= lastGen {
			t.Errorf("Progress out of order: gen %d after %d", p.Gen, lastGen)
		}
		lastGen = p.Gen
	}
	res, err := OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Once for the initial population (gen 0) plus once per generation.
	if calls != res.GA.Generations+1 {
		t.Errorf("Progress fired %d times, result reports %d generations", calls, res.GA.Generations)
	}
}
