package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/ga"
)

// islandOpt is the small bounded search the island tests share.
func islandOpt(seed uint64, islands int) Options {
	opt := testOpt(seed)
	opt.SamplePoints = 64
	opt.MaxEvaluations = 200
	opt.Islands = islands
	return opt
}

// TestOptimizeTilingIslandsDeterministic: a fixed seed reproduces the
// multi-island tiling search exactly, even though its demes evaluate on
// concurrent goroutines.
func TestOptimizeTilingIslandsDeterministic(t *testing.T) {
	nest := transpose(64)
	run := func() *TilingResult {
		res, err := OptimizeTiling(context.Background(), nest, islandOpt(21, 2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	requireValidTiling(t, a, nest.Depth())
	if !reflect.DeepEqual(a.Tile, b.Tile) || !reflect.DeepEqual(a.GA, b.GA) {
		t.Fatalf("identical island runs diverged:\ntile %v vs %v\nGA %+v vs %+v",
			a.Tile, b.Tile, a.GA, b.GA)
	}
}

// TestIslandsWorkerCountInvariant: the worker count parallelises one
// objective evaluation and must never change a multi-island search result.
func TestIslandsWorkerCountInvariant(t *testing.T) {
	nest := transpose(64)
	var tiles [][]int64
	var gas []ga.Result
	for _, workers := range []int{1, 3} {
		opt := islandOpt(9, 2)
		opt.Workers = workers
		res, err := OptimizeTiling(context.Background(), nest, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireValidTiling(t, res, nest.Depth())
		tiles = append(tiles, res.Tile)
		gas = append(gas, res.GA)
	}
	if !reflect.DeepEqual(tiles[0], tiles[1]) || !reflect.DeepEqual(gas[0], gas[1]) {
		t.Fatalf("worker count changed the island search:\ntile %v vs %v\nGA %+v vs %+v",
			tiles[0], tiles[1], gas[0], gas[1])
	}
}

// TestIslandsOneMatchesBaseline: Options.Islands = 1 must be bit-identical
// to the classic single-population search.
func TestIslandsOneMatchesBaseline(t *testing.T) {
	nest := transpose(64)
	base, err := OptimizeTiling(context.Background(), nest, islandOpt(33, 0))
	if err != nil {
		t.Fatal(err)
	}
	one, err := OptimizeTiling(context.Background(), nest, islandOpt(33, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Tile, one.Tile) || !reflect.DeepEqual(base.GA, one.GA) ||
		base.Before != one.Before || base.After != one.After {
		t.Fatalf("Islands=1 diverged from baseline:\ntile %v vs %v\nGA %+v vs %+v",
			base.Tile, one.Tile, base.GA, one.GA)
	}
}

// TestIslandsOptionsValidate: bad island counts fail fast as ErrBadOption.
func TestIslandsOptionsValidate(t *testing.T) {
	nest := transpose(16)
	opt := testOpt(1)
	opt.Islands = -1
	if _, err := OptimizeTiling(context.Background(), nest, opt); !errors.Is(err, ErrBadOption) {
		t.Fatalf("Islands=-1: err = %v, want ErrBadOption", err)
	}
	opt.Islands = 16 // default population of 30 cannot fill 16 demes with 2 each
	if _, err := OptimizeTiling(context.Background(), nest, opt); !errors.Is(err, ErrBadOption) {
		t.Fatalf("Islands=16: err = %v, want ErrBadOption", err)
	}
}
