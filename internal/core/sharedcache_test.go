package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/evalcache"
)

// sharedOpt is islandOpt plus a shared evaluation cache.
func sharedOpt(seed uint64, islands int, c *evalcache.Cache) Options {
	opt := islandOpt(seed, islands)
	opt.SharedCache = c
	return opt
}

// requireSameTiling asserts two tiling results are bit-identical in every
// deterministic field.
func requireSameTiling(t *testing.T, label string, a, b *TilingResult) {
	t.Helper()
	if !reflect.DeepEqual(a.Tile, b.Tile) || !reflect.DeepEqual(a.GA, b.GA) ||
		a.Before != b.Before || a.After != b.After || a.Stopped != b.Stopped {
		t.Fatalf("%s diverged:\ntile %v vs %v\nstopped %v vs %v\nGA %+v vs %+v",
			label, a.Tile, b.Tile, a.Stopped, b.Stopped, a.GA, b.GA)
	}
}

// TestSharedCacheIslandDeterminism is the tentpole invariant: for a fixed
// seed, a search returns bit-identical results with the shared cache
// disabled, cold, and pre-warmed — at one island and at four (demes
// racing each other into the shared tier must not perturb trajectories).
func TestSharedCacheIslandDeterminism(t *testing.T) {
	nest := transpose(64)
	for _, islands := range []int{1, 4} {
		disabled, err := OptimizeTiling(context.Background(), nest, islandOpt(17, islands))
		if err != nil {
			t.Fatalf("islands=%d disabled: %v", islands, err)
		}
		requireValidTiling(t, disabled, nest.Depth())

		c := evalcache.New(evalcache.Config{MaxEntries: 1 << 14})
		cold, err := OptimizeTiling(context.Background(), nest, sharedOpt(17, islands, c))
		if err != nil {
			t.Fatalf("islands=%d cold: %v", islands, err)
		}
		requireSameTiling(t, "cold cache vs disabled", disabled, cold)

		warmStart := c.Metrics()
		warm, err := OptimizeTiling(context.Background(), nest, sharedOpt(17, islands, c))
		if err != nil {
			t.Fatalf("islands=%d warm: %v", islands, err)
		}
		requireSameTiling(t, "warm cache vs disabled", disabled, warm)
		if m := c.Metrics(); m.Hits <= warmStart.Hits {
			t.Fatalf("islands=%d: warm run recorded no shared-cache hits (%+v)", islands, m)
		}
		// The budget trajectory must be identical too: a shared hit spends
		// the budget exactly like the evaluation it replaced.
		if disabled.GA.Evaluations != warm.GA.Evaluations {
			t.Fatalf("islands=%d: warm run spent %d evaluations, disabled %d",
				islands, warm.GA.Evaluations, disabled.GA.Evaluations)
		}
	}
}

// TestSharedCacheIslandScopeIsolation: warming the cache with one search
// phase must not leak values into another phase or seed — the scope hash
// (label, nest, geometry, sample) isolates them.
func TestSharedCacheIslandScopeIsolation(t *testing.T) {
	nest := transpose(64)
	c := evalcache.New(evalcache.Config{MaxEntries: 1 << 14})

	// Warm with the plain tiling search at two seeds and a padding search.
	for _, seed := range []uint64{17, 99} {
		if _, err := OptimizeTiling(context.Background(), nest, sharedOpt(seed, 1, c)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OptimizePadding(context.Background(), nest, sharedOpt(17, 1, c)); err != nil {
		t.Fatal(err)
	}

	// The order search against the polluted cache must match its
	// cache-disabled baseline exactly.
	base, err := OptimizeTilingOrder(context.Background(), nest, islandOpt(17, 2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimizeTilingOrder(context.Background(), nest, sharedOpt(17, 2, c))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Tile, got.Tile) || !reflect.DeepEqual(base.Order, got.Order) ||
		!reflect.DeepEqual(base.GA, got.GA) || base.After != got.After {
		t.Fatalf("order search perturbed by foreign cache entries:\ntile %v/%v vs %v/%v\nGA %+v vs %+v",
			base.Tile, base.Order, got.Tile, got.Order, base.GA, got.GA)
	}

	// And a repeat of the warmed tiling search still matches its own
	// disabled baseline.
	disabled, err := OptimizeTiling(context.Background(), nest, islandOpt(99, 1))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := OptimizeTiling(context.Background(), nest, sharedOpt(99, 1, c))
	if err != nil {
		t.Fatal(err)
	}
	requireSameTiling(t, "seed-99 warm vs disabled", disabled, warm)
}

// TestSharedCacheIslandPoolReuse: the analyzer pool parked by one search
// is checked out by the next one over the same nest — the cross-request
// half of the pool optimisation.
func TestSharedCacheIslandPoolReuse(t *testing.T) {
	nest := transpose(64)
	c := evalcache.New(evalcache.Config{MaxEntries: 1 << 14})
	if _, err := OptimizeTiling(context.Background(), nest, sharedOpt(5, 1, c)); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics()
	if _, err := OptimizeTiling(context.Background(), nest, sharedOpt(6, 1, c)); err != nil {
		t.Fatal(err)
	}
	// Seed 6 draws a different sample, so fitness/stats scopes differ —
	// but the parked pool is keyed by (nest, geometry) alone and must hit.
	if m := c.Metrics(); m.Hits <= before.Hits {
		t.Fatalf("second search over the same nest recorded no cache hits: %+v", m)
	}
}

// TestSharedCacheIslandValidate: a caller-supplied GA.SharedMemo alongside
// SharedCache is rejected (the search derives one from the other).
func TestSharedCacheIslandValidate(t *testing.T) {
	opt := sharedOpt(1, 1, evalcache.New(evalcache.Config{}))
	opt.GA = opt.withDefaults().GA
	opt.GA.SharedMemo = &sharedMemo{c: opt.SharedCache, scope: "x"}
	if err := opt.Validate(); err == nil {
		t.Fatal("Validate accepted SharedCache + GA.SharedMemo")
	}
}
