package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/expr"
	"repro/internal/ir"
)

func transpose(n int64) *ir.Nest {
	a := &ir.Array{Name: "a", Dims: []int64{n, n}, Elem: 8}
	b := &ir.Array{Name: "b", Dims: []int64{n, n}, Elem: 8}
	ir.LayoutArrays(0, 32, a, b)
	return &ir.Nest{
		Name: "t2d",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
			{Var: "j", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: b, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}},
			{Array: a, Subs: []expr.Affine{expr.Var(1), expr.Var(0)}, Write: true},
		},
	}
}

// conflictPair: two vectors exactly one cache apart traversed together —
// pure ping-pong conflicts that only padding can cure.
func conflictPair(n, cacheSize int64) *ir.Nest {
	x := &ir.Array{Name: "x", Dims: []int64{n}, Elem: 8, Base: 0}
	y := &ir.Array{Name: "y", Dims: []int64{n}, Elem: 8, Base: cacheSize}
	return &ir.Nest{
		Name: "conflict",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: x, Subs: []expr.Affine{expr.Var(0)}},
			{Array: y, Subs: []expr.Affine{expr.Var(0)}},
			{Array: x, Subs: []expr.Affine{expr.Var(0)}, Write: true},
		},
	}
}

// addLike needs BOTH padding and tiling: u and rhs alias (conflicts), and
// the m-reuse distance spans the whole inner space (capacity).
// do m=1,4 { do j { do i { u(m,i,j) += rhs(m,i,j) } } } with m the fastest
// dimension.
func addLike(s, cacheSize int64) *ir.Nest {
	u := &ir.Array{Name: "u", Dims: []int64{4, s, s}, Elem: 8, Base: 0}
	rhs := &ir.Array{Name: "rhs", Dims: []int64{4, s, s}, Elem: 8, Base: 8 * cacheSize}
	cs := ir.BoundOf(expr.Const(s))
	return &ir.Nest{
		Name: "addlike",
		Loops: []ir.Loop{
			{Var: "m", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(4)), Step: 1},
			{Var: "j", Lower: expr.Const(1), Upper: cs, Step: 1},
			{Var: "i", Lower: expr.Const(1), Upper: cs, Step: 1},
		},
		Refs: []ir.Ref{
			{Array: u, Subs: []expr.Affine{expr.Var(0), expr.Var(2), expr.Var(1)}},
			{Array: rhs, Subs: []expr.Affine{expr.Var(0), expr.Var(2), expr.Var(1)}},
			{Array: u, Subs: []expr.Affine{expr.Var(0), expr.Var(2), expr.Var(1)}, Write: true},
		},
	}
}

func testOpt(seed uint64) Options {
	return Options{
		Cache: cache.Config{Size: 2048, LineSize: 32, Assoc: 1},
		Seed:  seed,
	}
}

// TestOptimizeTilingTransposeEndToEnd: the headline behaviour — the GA
// finds tiles that remove nearly all replacement misses of a transpose,
// confirmed by full trace simulation (not just the sampled objective).
func TestOptimizeTilingTransposeEndToEnd(t *testing.T) {
	nest := transpose(64) // 2 × 32KB arrays through a 2KB cache
	res, err := OptimizeTiling(context.Background(), nest, testOpt(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.Before.ReplacementRatio < 0.15 {
		t.Fatalf("untiled transpose unexpectedly healthy: %v", res.Before)
	}
	if res.After.ReplacementRatio > 0.05 {
		t.Fatalf("tiling left %.1f%% replacement misses (tile %v)",
			100*res.After.ReplacementRatio, res.Tile)
	}
	// Independent confirmation by exhaustive trace simulation of the
	// transformed nest.
	sim := cachesim.SimulateNest(res.TiledNest, testOpt(42).Cache)
	if sim.ReplacementRatio() > 0.05 {
		t.Fatalf("simulator sees %.1f%% replacement misses on the tiled nest (tile %v)",
			100*sim.ReplacementRatio(), res.Tile)
	}
	simBefore := cachesim.SimulateNest(nest, testOpt(42).Cache)
	if sim.Compulsory != simBefore.Compulsory {
		t.Fatalf("tiling changed compulsory misses: %d -> %d", simBefore.Compulsory, sim.Compulsory)
	}
}

func TestOptimizeTilingDeterministic(t *testing.T) {
	nest := transpose(32)
	a, err := OptimizeTiling(context.Background(), nest, testOpt(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := OptimizeTiling(context.Background(), nest, testOpt(7))
	if err != nil {
		t.Fatal(err)
	}
	for d := range a.Tile {
		if a.Tile[d] != b.Tile[d] {
			t.Fatalf("non-deterministic tiles: %v vs %v", a.Tile, b.Tile)
		}
	}
	if a.GA.Evaluations != b.GA.Evaluations {
		t.Fatal("non-deterministic evaluation count")
	}
}

// TestGANearOptimal compares the GA against exhaustive search on a space
// small enough to enumerate (16×16 = 256 tile vectors): the paper's
// "near-optimal" claim.
func TestGANearOptimal(t *testing.T) {
	nest := transpose(16) // 2 × 2KB arrays
	opt := testOpt(11)
	opt.Cache = cache.Config{Size: 512, LineSize: 32, Assoc: 1}
	res, err := OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, bestStats, err := ExhaustiveTiling(context.Background(), nest, opt, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	gaMisses := res.After.Stats.Replacement
	optMisses := bestStats.Replacement
	// Near-optimal: within the optimum plus a small slack of the sampled
	// access count.
	slack := res.After.Stats.Accesses / 20 // 5% of sampled accesses
	if gaMisses > optMisses+slack {
		t.Fatalf("GA found %d replacement misses, optimum %d (tile %v)", gaMisses, optMisses, res.Tile)
	}
}

func TestExhaustiveTilingLimit(t *testing.T) {
	nest := transpose(64)
	if _, _, err := ExhaustiveTiling(context.Background(), nest, testOpt(1), 100); err == nil {
		t.Fatal("limit not enforced")
	}
}

// TestOptimizePaddingRemovesConflicts: the GA padding search cures a pure
// conflict kernel, confirmed by simulation.
func TestOptimizePaddingRemovesConflicts(t *testing.T) {
	cfg := cache.Config{Size: 512, LineSize: 32, Assoc: 1}
	nest := conflictPair(512, cfg.Size)
	opt := Options{Cache: cfg, Seed: 5}
	res, err := OptimizePadding(context.Background(), nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Before.ReplacementRatio < 0.5 {
		t.Fatalf("conflict kernel not conflicted: %v", res.Before)
	}
	sim := cachesim.SimulateNest(res.PaddedNest, cfg)
	if sim.ReplacementRatio() > 0.02 {
		t.Fatalf("padding left %.1f%% replacement misses (plan %+v)",
			100*sim.ReplacementRatio(), res.Plan)
	}
}

// TestPaddingThenTiling reproduces the Table-3 shape on an ADD-like
// kernel: tiling alone and padding alone both fail; padding followed by
// tiling nearly eliminates replacement misses.
func TestPaddingThenTiling(t *testing.T) {
	cfg := cache.Config{Size: 1024, LineSize: 32, Assoc: 1}
	nest := addLike(24, cfg.Size) // m-plane 24*24*8 = 4.5KB > cache
	opt := Options{Cache: cfg, Seed: 9}

	tileOnly, err := OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	padOnly, err := OptimizePadding(context.Background(), nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	both, err := OptimizePaddingThenTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	if both.Combined.ReplacementRatio > 0.10 {
		t.Fatalf("padding+tiling left %.1f%% (plan %+v tile %v)",
			100*both.Combined.ReplacementRatio, both.Plan, both.Tile)
	}
	// The combination must beat both single techniques clearly.
	if both.Combined.ReplacementRatio >= tileOnly.After.ReplacementRatio-0.05 &&
		tileOnly.After.ReplacementRatio > 0.10 {
		// fine: tiling alone failed and combination succeeded
	} else if tileOnly.After.ReplacementRatio <= 0.10 {
		t.Logf("note: tiling alone already solved this instance (%.1f%%)",
			100*tileOnly.After.ReplacementRatio)
	}
	if padOnly.After.ReplacementRatio < 0.10 {
		t.Logf("note: padding alone already solved this instance (%.1f%%)",
			100*padOnly.After.ReplacementRatio)
	}
}

// TestOptimizeJoint: the single-genome search also solves the combined
// problem (future-work extension).
func TestOptimizeJoint(t *testing.T) {
	cfg := cache.Config{Size: 1024, LineSize: 32, Assoc: 1}
	nest := addLike(24, cfg.Size)
	// The joint genome is roughly twice the size of either single search;
	// give the GA a proportionally larger generation budget.
	opt := Options{Cache: cfg, Seed: 17}
	opt = opt.withDefaults()
	opt.GA.MinGens = 40
	opt.GA.MaxGens = 70
	res, err := OptimizeJoint(context.Background(), nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Combined.ReplacementRatio > 0.10 {
		t.Fatalf("joint search left %.1f%% (plan %+v tile %v)",
			100*res.Combined.ReplacementRatio, res.Plan, res.Tile)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{Cache: cache.DM8K}.withDefaults()
	if o.SamplePoints != 164 || o.Confidence != 0.90 || o.GA.PopSize != 30 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestOptimizeTilingRejectsBadNest(t *testing.T) {
	nest := transpose(8)
	nest.Loops[0].Step = 3
	if _, err := OptimizeTiling(context.Background(), nest, testOpt(1)); err == nil {
		t.Fatal("non-rectangular nest accepted")
	}
	if _, err := OptimizePadding(context.Background(), nest, testOpt(1)); err == nil {
		t.Fatal("padding accepted non-rectangular nest")
	}
}

// TestOptimizeTilingOrder: the order-searching extension runs, returns a
// valid permutation, and on T3DJIK (where the best order differs from the
// original) performs at least as well as the fixed-order search under the
// same sampled objective.
func TestOptimizeTilingOrder(t *testing.T) {
	k := transpose(48)
	opt := testOpt(23)
	fixed, err := OptimizeTiling(context.Background(), k, opt)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := OptimizeTilingOrder(context.Background(), k, opt)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, d := range ordered.Order {
		if d < 0 || d >= 2 || seen[d] {
			t.Fatalf("bad order %v", ordered.Order)
		}
		seen[d] = true
	}
	if ordered.After.ReplacementRatio > fixed.After.ReplacementRatio+0.05 {
		t.Fatalf("order search (%.3f) much worse than fixed (%.3f)",
			ordered.After.ReplacementRatio, fixed.After.ReplacementRatio)
	}
	if ordered.TiledNest.Depth() != 4 {
		t.Fatalf("tiled nest depth = %d", ordered.TiledNest.Depth())
	}
	// The transformed nest is confirmed by simulation too.
	sim := cachesim.SimulateNest(ordered.TiledNest, opt.Cache)
	if sim.ReplacementRatio() > ordered.After.ReplacementRatio+0.1 {
		t.Fatalf("simulated %.3f far above sampled %.3f",
			sim.ReplacementRatio(), ordered.After.ReplacementRatio)
	}
}

func TestLehmerToPerm(t *testing.T) {
	if got := lehmerToPerm([]int64{0, 0}, 3); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("identity = %v", got)
	}
	if got := lehmerToPerm([]int64{2, 1}, 3); got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("reverse = %v", got)
	}
	// Out-of-range digits wrap rather than fail.
	got := lehmerToPerm([]int64{5, 7}, 3)
	seen := map[int]bool{}
	for _, d := range got {
		if d < 0 || d > 2 || seen[d] {
			t.Fatalf("wrapped decode not a permutation: %v", got)
		}
		seen[d] = true
	}
	// Every 3! code decodes to a distinct permutation.
	perms := map[string]bool{}
	for a := int64(0); a < 3; a++ {
		for b := int64(0); b < 2; b++ {
			p := lehmerToPerm([]int64{a, b}, 3)
			perms[fmt.Sprint(p)] = true
		}
	}
	if len(perms) != 6 {
		t.Fatalf("decoded %d distinct permutations, want 6", len(perms))
	}
}
