package core

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/ga"
	"repro/internal/ir"
	"repro/internal/kernels"
)

// requireValidTiling asserts the best-so-far contract: whatever stopped the
// search, the result must carry a decodable tile of the right rank with
// positive entries, a transformed nest, and finite estimates.
func requireValidTiling(t *testing.T, res *TilingResult, depth int) {
	t.Helper()
	if res == nil {
		t.Fatal("nil result")
	}
	if len(res.Tile) != depth {
		t.Fatalf("tile %v has rank %d, want %d", res.Tile, len(res.Tile), depth)
	}
	for d, v := range res.Tile {
		if v < 1 {
			t.Fatalf("tile dimension %d is %d", d, v)
		}
	}
	if res.TiledNest == nil {
		t.Fatal("nil tiled nest")
	}
	if err := res.TiledNest.Validate(); err != nil {
		t.Fatalf("tiled nest invalid: %v", err)
	}
}

// TestDeadlineReturnsBestSoFar: a deadline far shorter than the search
// still yields a valid tile, tagged StopDeadline — not an error. The
// deadline is one nanosecond so it is guaranteed to have expired before
// the GA's first halt check no matter how fast the point solver gets;
// the force-evaluated first candidate still provides a best-so-far.
func TestDeadlineReturnsBestSoFar(t *testing.T) {
	nest := transpose(256)
	opt := testOpt(5)
	opt.Deadline = time.Nanosecond
	res, err := OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatalf("deadline surfaced as error: %v", err)
	}
	requireValidTiling(t, res, nest.Depth())
	if res.Stopped != ga.StopDeadline {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, ga.StopDeadline)
	}
}

// TestExpiredContextReturnsBestSoFar: even a context that is already dead
// on entry produces a valid result (the first candidate is force-evaluated).
func TestExpiredContextReturnsBestSoFar(t *testing.T) {
	nest := transpose(64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := OptimizeTiling(ctx, nest, testOpt(5))
	if err != nil {
		t.Fatalf("cancelled context surfaced as error: %v", err)
	}
	requireValidTiling(t, res, nest.Depth())
	if res.Stopped != ga.StopCancelled {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, ga.StopCancelled)
	}
}

// TestBudgetReturnsBestSoFar: a 10-evaluation budget halts the GA with
// StopBudget and at most 10 distinct evaluations, still returning a tile.
func TestBudgetReturnsBestSoFar(t *testing.T) {
	nest := transpose(64)
	opt := testOpt(5)
	opt.MaxEvaluations = 10
	res, err := OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatalf("budget surfaced as error: %v", err)
	}
	requireValidTiling(t, res, nest.Depth())
	if res.Stopped != ga.StopBudget {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, ga.StopBudget)
	}
	if res.GA.Evaluations > 10 {
		t.Fatalf("spent %d evaluations over a budget of 10", res.GA.Evaluations)
	}
}

// TestProgressCancelMidSearch: cancelling from the per-generation progress
// callback stops the search at the next generation boundary with
// StopCancelled, and progress reports arrive in order.
func TestProgressCancelMidSearch(t *testing.T) {
	nest := transpose(64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := testOpt(5)
	var gens []int
	opt.Progress = func(p ga.Progress) {
		gens = append(gens, p.Gen)
		if p.Gen == 2 {
			cancel()
		}
	}
	res, err := OptimizeTiling(ctx, nest, opt)
	if err != nil {
		t.Fatalf("cancel surfaced as error: %v", err)
	}
	requireValidTiling(t, res, nest.Depth())
	if res.Stopped != ga.StopCancelled {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, ga.StopCancelled)
	}
	if len(gens) == 0 || gens[len(gens)-1] != 2 {
		t.Fatalf("progress generations %v, want ... ending at 2", gens)
	}
	if res.GA.Generations != 2 {
		t.Fatalf("ran %d generations after cancelling at 2", res.GA.Generations)
	}
}

// TestWorkerPanicIsError: a corrupted sample point makes an evaluation
// worker panic; the panic must surface as an error from the evaluation (and
// hence the search), never crash the process or hang the WaitGroup.
func TestWorkerPanicIsError(t *testing.T) {
	nest := transpose(64)
	opt := testOpt(5).withDefaults()
	ev, err := newEvaluator(nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	// A too-short point makes exactly one worker's shard panic on index;
	// the others must drain and the panic must come back as an error.
	ev.sample.Points[len(ev.sample.Points)/2] = []int64{}
	_, err = ev.tiled(context.Background(), nest, []int64{16, 16})
	if err == nil {
		t.Fatal("panicking worker returned no error")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error %q does not mention the panic", err)
	}
}

// TestSearchSurfacesWorkerPanic: the same corruption inside a full search
// must fail the search with the panic error rather than return a result.
func TestSearchSurfacesWorkerPanic(t *testing.T) {
	nest := transpose(64)
	opt := testOpt(5).withDefaults()
	ev, err := newEvaluator(nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	ev.sample.Points[0] = []int64{}
	_, err = ev.tiled(context.Background(), nest, []int64{8, 8})
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("tiled evaluation error = %v, want worker panic", err)
	}
}

// interruptedSearch runs OptimizeTiling with per-generation checkpointing,
// cancels after the checkpoint at generation stopAt, and returns the last
// snapshot serialised through the JSON round trip (as a real resume would).
func interruptedSearch(t *testing.T, nest *ir.Nest, opt Options, stopAt int) *ga.Checkpoint {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var latest bytes.Buffer
	opt.Checkpoint = func(c *ga.Checkpoint) error {
		latest.Reset()
		if err := ga.WriteCheckpoint(&latest, c); err != nil {
			return err
		}
		if c.Gen == stopAt {
			cancel()
		}
		return nil
	}
	res, err := OptimizeTiling(ctx, nest, opt)
	if err != nil {
		t.Fatalf("interrupted search errored: %v", err)
	}
	if res.Stopped != ga.StopCancelled {
		t.Fatalf("interrupted search Stopped = %v, want %v", res.Stopped, ga.StopCancelled)
	}
	ckpt, err := ga.ReadCheckpoint(&latest)
	if err != nil {
		t.Fatalf("reading checkpoint back: %v", err)
	}
	if ckpt.Gen != stopAt {
		t.Fatalf("last checkpoint at generation %d, want %d", ckpt.Gen, stopAt)
	}
	return ckpt
}

// TestCheckpointResumeBitForBit: interrupt a search at generation k, resume
// from the (JSON round-tripped) checkpoint, and require the resumed run to
// reproduce the uninterrupted run exactly — same tile, same evaluation
// count, same generation history — for MM and a NAS kernel.
func TestCheckpointResumeBitForBit(t *testing.T) {
	cases := []struct {
		kernel string
		size   int64
	}{
		{"MM", 40},
		{"ADD", 16},
	}
	for _, tc := range cases {
		t.Run(tc.kernel, func(t *testing.T) {
			k, ok := kernels.Get(tc.kernel)
			if !ok {
				t.Fatalf("kernel %s missing from catalog", tc.kernel)
			}
			nest, err := k.Instance(tc.size)
			if err != nil {
				t.Fatal(err)
			}
			opt := testOpt(11)
			opt.SamplePoints = 64 // keep the race-enabled run fast

			full, err := OptimizeTiling(context.Background(), nest, opt)
			if err != nil {
				t.Fatal(err)
			}

			ckpt := interruptedSearch(t, nest, opt, 2)

			opt2 := opt
			opt2.ResumeFrom = ckpt
			resumed, err := OptimizeTiling(context.Background(), nest, opt2)
			if err != nil {
				t.Fatalf("resumed search errored: %v", err)
			}

			if !reflect.DeepEqual(resumed.Tile, full.Tile) {
				t.Fatalf("resumed tile %v != uninterrupted %v", resumed.Tile, full.Tile)
			}
			if resumed.GA.BestValue != full.GA.BestValue {
				t.Fatalf("resumed best %v != uninterrupted %v", resumed.GA.BestValue, full.GA.BestValue)
			}
			if resumed.GA.Evaluations != full.GA.Evaluations {
				t.Fatalf("resumed evaluations %d != uninterrupted %d", resumed.GA.Evaluations, full.GA.Evaluations)
			}
			if resumed.GA.Generations != full.GA.Generations {
				t.Fatalf("resumed generations %d != uninterrupted %d", resumed.GA.Generations, full.GA.Generations)
			}
			if !reflect.DeepEqual(resumed.GA.History, full.GA.History) {
				t.Fatalf("resumed history diverges:\n%v\nvs uninterrupted\n%v", resumed.GA.History, full.GA.History)
			}
			if resumed.Stopped != ga.StopConverged {
				t.Fatalf("resumed run Stopped = %v, want %v", resumed.Stopped, ga.StopConverged)
			}
		})
	}
}

// TestWorkerCountInvariant: the Workers knob changes only how fast a
// search runs, never what it finds — evaluation sums the same per-point
// outcomes whatever the fan-out, so two searches differing only in worker
// count must match tile-for-tile and generation-for-generation.
func TestWorkerCountInvariant(t *testing.T) {
	nest := transpose(64)
	base := testOpt(9)
	base.SamplePoints = 164

	var first *TilingResult
	for _, workers := range []int{1, 3, 7} {
		opt := base
		opt.Workers = workers
		res, err := OptimizeTiling(context.Background(), nest, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if first == nil {
			first = res
			continue
		}
		if !reflect.DeepEqual(res.Tile, first.Tile) {
			t.Fatalf("workers=%d found tile %v, workers=1 found %v", workers, res.Tile, first.Tile)
		}
		if res.GA.BestValue != first.GA.BestValue {
			t.Fatalf("workers=%d best %v != %v", workers, res.GA.BestValue, first.GA.BestValue)
		}
		if res.GA.Evaluations != first.GA.Evaluations {
			t.Fatalf("workers=%d spent %d evaluations, workers=1 spent %d", workers, res.GA.Evaluations, first.GA.Evaluations)
		}
		if !reflect.DeepEqual(res.GA.History, first.GA.History) {
			t.Fatalf("workers=%d history diverges from workers=1", workers)
		}
		if res.Before != first.Before || res.After != first.After {
			t.Fatalf("workers=%d before/after estimates diverge", workers)
		}
	}
}

// TestDefaultWorkersEnv: the CMETILING_WORKERS environment variable
// overrides the fan-out default; garbage and non-positive values fall back
// to min(8, NumCPU).
func TestDefaultWorkersEnv(t *testing.T) {
	t.Setenv("CMETILING_WORKERS", "3")
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers with CMETILING_WORKERS=3: %d", got)
	}
	fallback := min(8, runtime.NumCPU())
	for _, bad := range []string{"0", "-2", "many"} {
		t.Setenv("CMETILING_WORKERS", bad)
		if got := DefaultWorkers(); got != fallback {
			t.Fatalf("DefaultWorkers with CMETILING_WORKERS=%q: %d, want %d", bad, got, fallback)
		}
	}
}

// TestResumeRejectsMismatchedSearch: a checkpoint from one search must not
// silently seed a different one.
func TestResumeRejectsMismatchedSearch(t *testing.T) {
	nest := transpose(64)
	opt := testOpt(5)
	ckpt := interruptedSearch(t, nest, opt, 1)

	bad := opt
	bad.ResumeFrom = ckpt
	if _, err := OptimizePadding(context.Background(), nest, bad); err == nil {
		t.Fatal("padding search accepted a tiling checkpoint")
	}
}
