// Package core is the paper's primary contribution: near-optimal loop
// tiling (and padding) driven by Cache Miss Equations and a genetic
// algorithm.
//
// The objective function f(T₁..Tk) of §3.1 — the number of replacement
// misses of the tiled nest — is evaluated with the fast CME solver
// (internal/cme) over a fixed simple-random sample of iteration points
// (internal/sampling). The genetic algorithm (internal/ga) searches the
// tile-size space [1,U₁]×…×[1,Uk]; the same machinery searches padding
// parameters for the kernels whose residual misses are conflicts (§4.3),
// sequentially (pad then tile, as in Table 3) or jointly in one genome
// (the paper's stated future work).
//
// Every search is bounded and interruptible: it honours its
// context.Context (cancellation and deadlines), an optional evaluation
// budget, and always returns the best candidate found so far tagged with
// a ga.StopReason instead of failing. Checkpoints written at generation
// boundaries make an interrupted search resumable bit-for-bit.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/cme"
	"repro/internal/evalcache"
	"repro/internal/faultinject"
	"repro/internal/ga"
	"repro/internal/ir"
	"repro/internal/iterspace"
	"repro/internal/padding"
	"repro/internal/sampling"
	"repro/internal/telemetry"
	"repro/internal/tiling"
)

// Options configures a search.
type Options struct {
	// Cache is the target cache geometry.
	Cache cache.Config
	// SamplePoints is the number of iteration points per objective
	// evaluation; 0 means the paper's 164 (width 0.1, 90% confidence).
	SamplePoints int
	// Confidence for reported intervals; 0 means 0.90.
	Confidence float64
	// GA holds the genetic-algorithm parameters; the zero value means the
	// paper's configuration (population 30, pc 0.9, pm 0.001, 15–25
	// generations).
	GA ga.Config
	// Seed makes the whole search deterministic.
	Seed uint64
	// Workers bounds the goroutine fan-out of one objective evaluation
	// (0 = DefaultWorkers: the CMETILING_WORKERS environment variable, or
	// min(8, NumCPU)). Parallel evaluation sums the same per-point
	// outcomes as serial evaluation, so the worker count never changes a
	// search result — only how fast it arrives.
	Workers int
	// Fidelity enables deterministic multi-fidelity evaluation by
	// successive halving: fresh candidates are scored on a coarse prefix
	// of the fixed sample, ranked, the bottom fraction pruned at scaled
	// fitness, and survivors promoted rung by rung — only finalists pay
	// the full sample, and a promoted candidate evaluates only points it
	// has not seen. The zero value (off) keeps every search byte-identical
	// to earlier releases. With the ladder on, MaxEvaluations is charged
	// in sample points (budget = MaxEvaluations × sample size), so the
	// cap buys the same classification work either way. Incompatible with
	// a caller-supplied GA.SharedMemo and with the multi-level search. An
	// explicit GA.Fidelity setting takes precedence.
	Fidelity ga.Fidelity
	// Islands splits the GA population into this many concurrently
	// evolving demes with ring-topology elite migration (0 or 1 = the
	// classic single population, bit-identical to earlier releases). Each
	// island draws from its own seed-derived PCG stream and evaluates on
	// its own analyzer pool, so any island count is deterministic for a
	// fixed Seed at any worker count. An explicit GA.Islands setting takes
	// precedence.
	Islands int

	// Deadline bounds the search's wall-clock time (0 = none). It is a
	// duration from the start of the search, layered on top of whatever
	// deadline the caller's context already carries; whichever expires
	// first stops the search with ga.StopDeadline and the best-so-far
	// result. For the sequential padding+tiling search it bounds the two
	// phases together.
	Deadline time.Duration
	// MaxEvaluations caps distinct objective evaluations per GA run
	// (0 = unlimited); exhausting it stops the search with ga.StopBudget.
	MaxEvaluations int
	// Observer, when non-nil, receives the search's typed telemetry: one
	// event per lifecycle transition (search start/stop, phase changes,
	// GA generations, checkpoints, evaluation batches) plus monotonic
	// counter deltas (objective evaluations, memo hits, sampled points,
	// CME walk steps, analyzer-pool hits/misses). The stream for a fixed
	// seed is deterministic; with Workers=1 it is byte-for-byte
	// reproducible through the JSONL sink. A nil Observer is free: the
	// hot paths pay one pointer check and allocate nothing.
	Observer telemetry.Recorder
	// Progress, when non-nil, is invoked after every GA generation with
	// the generation number, best fitness, evaluations spent and elapsed
	// wall-clock time.
	//
	// Deprecated: Progress is a compatibility adapter over the telemetry
	// stream — it is translated into an Observer that forwards
	// GenerationDone events. New code should set Observer directly.
	Progress func(ga.Progress)
	// FailurePolicy selects how a failed candidate evaluation (panic,
	// injected fault, watchdog-stalled) is treated: FailAbort (the zero
	// value, the historical behaviour) fails the search on the first
	// failure; FailQuarantine assigns the candidate worst fitness, records
	// it on the result's Quarantined list, and keeps searching.
	FailurePolicy FailurePolicy
	// StallTimeout arms a per-evaluation watchdog (0 = none): an objective
	// evaluation that has not finished within this duration is cancelled
	// with ErrStalled and treated according to FailurePolicy, so one stuck
	// evaluation degrades the search to best-so-far instead of hanging it.
	StallTimeout time.Duration
	// SharedCache, when non-nil, is the process-wide shared evaluation
	// cache: finished fitness values and per-tile statistics, keyed by
	// content (nest IR, cache geometry, sample set, candidate), recalled
	// across GA islands, successive searches and service requests, plus
	// analyzer-pool reuse across searches over the same nest. It is
	// strictly result-transparent: for a fixed Seed a search returns
	// bit-identical results whether the cache is nil, cold, or pre-warmed
	// by earlier searches — only the work to arrive there changes. Values
	// that are not pure functions of their key (quarantine sentinels,
	// poisoned evaluations) are never stored, and searches running under
	// an injected fault plan bypass the cache entirely so fault schedules
	// keep firing at the same evaluation counts.
	SharedCache *evalcache.Cache
	// Checkpoint, when non-nil, receives a resumable snapshot after every
	// completed GA generation. For the sequential padding+tiling search
	// only the tiling phase is checkpointed.
	Checkpoint func(*ga.Checkpoint) error
	// ResumeFrom restarts the GA from a snapshot previously delivered to
	// Checkpoint; the resumed search reproduces the uninterrupted one
	// exactly (same nest, options and seed required).
	ResumeFrom *ga.Checkpoint
}

// ErrBadOption is the sentinel wrapped by every Options.Validate failure,
// so callers can distinguish a misconfigured search from a runtime fault
// with errors.Is(err, ErrBadOption).
var ErrBadOption = errors.New("core: bad option")

// badOption wraps ErrBadOption with the offending field and detail.
func badOption(field, format string, args ...any) error {
	return fmt.Errorf("%w: %s: %s", ErrBadOption, field, fmt.Sprintf(format, args...))
}

// Validate checks the options for a search. Zero values that withDefaults
// fills in (SamplePoints, Confidence, Workers, the GA block) are valid;
// everything a caller sets explicitly must be in range. SharedCache has
// no invalid states — nil disables sharing and any constructed cache is
// usable — but a caller-supplied GA.SharedMemo alongside SharedCache is
// rejected: the search derives the GA memo tier from SharedCache, and a
// second source of recalled fitness values would break the determinism
// contract. All searches call Validate before running, so a bad
// configuration fails fast with a typed ErrBadOption error instead of
// misbehaving mid-search.
func (o Options) Validate() error {
	if err := o.Cache.Validate(); err != nil {
		return badOption("Cache", "%v", err)
	}
	if o.SamplePoints < 0 {
		return badOption("SamplePoints", "%d is negative", o.SamplePoints)
	}
	if o.Confidence < 0 || o.Confidence >= 1 {
		return badOption("Confidence", "%v not in [0, 1)", o.Confidence)
	}
	if o.Workers < 0 {
		return badOption("Workers", "%d is negative", o.Workers)
	}
	if o.Deadline < 0 {
		return badOption("Deadline", "%v is negative", o.Deadline)
	}
	if o.MaxEvaluations < 0 {
		return badOption("MaxEvaluations", "%d is negative", o.MaxEvaluations)
	}
	if o.Islands < 0 {
		return badOption("Islands", "%d is negative", o.Islands)
	}
	if o.Islands > 1 {
		pop := o.GA.PopSize
		if pop == 0 {
			pop = 30 // the paper's default population
		}
		if pop < 2*o.Islands {
			return badOption("Islands", "population %d cannot fill %d islands with at least 2 individuals each", pop, o.Islands)
		}
	}
	if o.FailurePolicy != FailAbort && o.FailurePolicy != FailQuarantine {
		return badOption("FailurePolicy", "unknown policy %d", int(o.FailurePolicy))
	}
	if o.StallTimeout < 0 {
		return badOption("StallTimeout", "%v is negative", o.StallTimeout)
	}
	if o.SharedCache != nil && o.GA.SharedMemo != nil {
		return badOption("SharedCache", "GA.SharedMemo is derived from SharedCache; set only one")
	}
	if err := o.Fidelity.Validate(); err != nil {
		return badOption("Fidelity", "%v", err)
	}
	if o.Fidelity.Enabled() && o.GA.SharedMemo != nil {
		return badOption("Fidelity", "fidelity pruning records cohort-dependent scaled fitness; it cannot feed a shared memo")
	}
	if o.GA.PopSize != 0 {
		if err := o.GA.Validate(); err != nil {
			return badOption("GA", "%v", err)
		}
	}
	return nil
}

// progressRecorder adapts the deprecated Options.Progress callback onto
// the telemetry stream: GenerationDone events become ga.Progress calls;
// all other events and counters are ignored.
type progressRecorder struct{ fn func(ga.Progress) }

func (p progressRecorder) Event(e telemetry.Event) {
	if g, ok := e.(telemetry.GenerationDone); ok {
		p.fn(ga.Progress{
			Gen: g.Gen, Best: g.Best, Avg: g.Avg, BestEver: g.BestEver,
			Evaluations: g.Evaluations, Island: g.Island, Elapsed: g.Elapsed,
		})
	}
}

func (p progressRecorder) Add(telemetry.Counters) {}

func (o Options) withDefaults() Options {
	if o.SamplePoints == 0 {
		o.SamplePoints = sampling.PaperSampleSize
	}
	if o.Confidence == 0 {
		o.Confidence = 0.90
	}
	if o.GA.PopSize == 0 {
		seed := o.Seed
		o.GA = ga.PaperConfig(seed)
	}
	if o.Workers <= 0 {
		o.Workers = DefaultWorkers()
	}
	if o.Progress != nil {
		// Fold the legacy callback into the observer and clear it, so
		// composite searches that re-default their sub-options never
		// double-wrap the adapter.
		o.Observer = telemetry.Multi(o.Observer, progressRecorder{o.Progress})
		o.Progress = nil
	}
	return o
}

// DefaultWorkers returns the evaluation fan-out used when Options.Workers
// is zero: the CMETILING_WORKERS environment variable when set to a
// positive integer, otherwise min(8, NumCPU).
func DefaultWorkers() int {
	if s := os.Getenv("CMETILING_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return min(8, runtime.NumCPU())
}

// searchContext derives the context governing one search from the
// caller's context and the Deadline option.
func (o Options) searchContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Deadline > 0 {
		return context.WithTimeout(ctx, o.Deadline)
	}
	return context.WithCancel(ctx)
}

// sharedScoped disables the shared evaluation cache for searches running
// under an injected fault plan: fault triggers fire at evaluation entry
// counts, and recalling finished results would skip those entries,
// silently rescheduling the plan. Chaos runs therefore always compute.
func (o Options) sharedScoped(ctx context.Context) Options {
	if o.SharedCache != nil && ctx != nil && faultinject.From(ctx) != nil {
		o.SharedCache = nil
	}
	return o
}

// gaRuntime copies the Options runtime controls (budget, observer,
// checkpointing) into a GA configuration, tagging checkpoints with the
// search-phase label.
func (o Options) gaRuntime(cfg ga.Config, label string) ga.Config {
	if cfg.MaxEvaluations == 0 {
		cfg.MaxEvaluations = o.MaxEvaluations
	}
	if cfg.Observer == nil {
		cfg.Observer = o.Observer
	}
	if cfg.Checkpoint == nil {
		cfg.Checkpoint = o.Checkpoint
	}
	if cfg.ResumeFrom == nil {
		cfg.ResumeFrom = o.ResumeFrom
	}
	if cfg.Label == "" {
		cfg.Label = label
	}
	if cfg.Islands == 0 {
		cfg.Islands = o.Islands
	}
	if cfg.Fidelity == (ga.Fidelity{}) {
		cfg.Fidelity = o.Fidelity
	}
	return cfg
}

// islandRuntime arms the per-island objective forks of a multi-island GA
// configuration: each deme gets its own evaluator fork (private analyzer
// pool and mutex over the shared immutable sample), wrapped in the same
// guard, so islands evaluate concurrently without serialising on one
// pool. The forks are value-identical — same nest, sample and cache — so
// cross-island migration and memo sharing stay sound. Single-population
// configurations pass through untouched.
func islandRuntime(cfg ga.Config, guard *evalGuard, label string, ev *evaluator,
	build func(*evaluator) func([]int64) (float64, error)) ga.Config {
	if cfg.Islands > 1 {
		cfg.IslandObjective = func(i int) ga.Objective {
			return guard.objective(label, build(ev.fork(i+1)))
		}
	}
	return cfg
}

// fidelityRuntime arms the multi-fidelity evaluator hooks of a GA
// configuration: the ladder opens one resumable partial evaluation per
// fresh candidate, built from the same per-search candidate decoder (mk)
// the classic objective uses, so rung scores and full-fidelity fitness
// are computed by the identical machinery. Multi-island configurations
// get one evaluator fork per deme, mirroring islandRuntime. With the
// ladder off this is a no-op.
func fidelityRuntime(cfg ga.Config, ctx context.Context, guard *evalGuard, label string, ev *evaluator,
	mk func(*evaluator, []int64) (*ir.Nest, iterspace.Space, error)) ga.Config {
	if !cfg.Fidelity.Enabled() {
		return cfg
	}
	open := func(e *evaluator) ga.FidelityEvaluator {
		return &fidelityEval{ev: e, ctx: ctx, guard: guard, label: label, mk: mk}
	}
	cfg.FidelityEval = open(ev)
	if cfg.Islands > 1 {
		cfg.IslandFidelityEval = func(i int) ga.FidelityEvaluator {
			return open(ev.fork(i + 1))
		}
	}
	return cfg
}

// fidelityEval implements ga.FidelityEvaluator over one search's fixed
// sample: Open decodes a candidate into its (nest, space) pair lazily and
// returns the partial evaluation that accumulates classified prefix
// ranges across rungs.
type fidelityEval struct {
	ev    *evaluator
	ctx   context.Context
	guard *evalGuard
	label string
	mk    func(*evaluator, []int64) (*ir.Nest, iterspace.Space, error)
}

// Points implements ga.FidelityEvaluator.
func (f *fidelityEval) Points() int { return len(f.ev.sample.Points) }

// Open implements ga.FidelityEvaluator.
func (f *fidelityEval) Open(values []int64) ga.PartialEval {
	return &partialEval{f: f, values: append([]int64(nil), values...)}
}

// partialEval is one candidate's resumable evaluation: classified
// statistics accumulate over cumulative sample prefixes, so promotion to
// a finer rung pays only for the unseen range and no point is classified
// twice. Failures run through the search's evalGuard exactly like the
// classic path — the failure fitness latches and every later rung
// reports it unchanged.
type partialEval struct {
	f      *fidelityEval
	values []int64

	opened bool
	nest   *ir.Nest
	space  iterspace.Space
	seen   int
	st     cachesim.Stats

	failed bool
	failV  float64
}

// Score implements ga.PartialEval: extend the evaluation through the
// first upTo sample points and return the raw objective over them.
func (p *partialEval) Score(upTo, rung int) (score float64) {
	if p.failed {
		return p.failV
	}
	defer func() {
		if r := recover(); r != nil {
			score = p.fail(fmt.Errorf("core: objective panic: %v", r))
		}
	}()
	if !p.opened {
		nest, space, err := p.f.mk(p.f.ev, p.values)
		if err != nil {
			return p.fail(err)
		}
		p.nest, p.space = nest, space
		p.opened = true
	}
	if upTo > p.seen {
		e := p.f.ev
		if key := e.prefixKey(p.nest, p.space, upTo); key != "" {
			if st, ok := e.shared.GetStats(key); ok {
				// Prefix statistics are cumulative, so a recalled entry
				// replaces the accumulated state wholesale.
				p.st, p.seen = st, upTo
				return float64(p.st.Replacement)
			}
		}
		part, err := e.evalRange(p.f.ctx, p.nest, p.space, p.seen, upTo, rung)
		if err != nil {
			return p.fail(err)
		}
		p.st.Add(part)
		p.seen = upTo
		if key := e.prefixKey(p.nest, p.space, upTo); key != "" {
			e.shared.PutStats(key, p.st)
		}
	}
	return float64(p.st.Replacement)
}

// Fitness implements ga.PartialEval: the exact objective at full
// fidelity, or the deterministic N/upTo extrapolation for a candidate
// pruned below it.
func (p *partialEval) Fitness(upTo int) float64 {
	if p.failed {
		return p.failV
	}
	v := float64(p.st.Replacement)
	if n := len(p.f.ev.sample.Points); upTo > 0 && upTo < n {
		return v * float64(n) / float64(upTo)
	}
	return v
}

// fail routes a failed partial evaluation through the search's failure
// policy and latches the resulting fitness.
func (p *partialEval) fail(err error) float64 {
	p.failed = true
	p.failV = p.f.guard.fail(p.f.label, p.values, err)
	return p.failV
}

// emitStart announces a search to the observer: label, kernel, cache
// geometry and the reproducibility-relevant knobs.
func (o Options) emitStart(nest *ir.Nest, label string) time.Time {
	start := time.Now()
	if o.Observer != nil {
		o.Observer.Event(telemetry.SearchStart{
			Search: label, Kernel: nest.Name, Depth: nest.Depth(),
			CacheSize: o.Cache.Size, CacheLine: o.Cache.LineSize, CacheAssoc: o.Cache.Assoc,
			Seed: o.Seed, SamplePoints: o.SamplePoints, Workers: o.Workers,
		})
	}
	return start
}

// emitPhase announces a phase transition within a search.
func (o Options) emitPhase(label, phase string) {
	if o.Observer != nil {
		o.Observer.Event(telemetry.PhaseChange{Search: label, Phase: phase})
	}
}

// emitStop closes a search's event stream with its outcome.
func (o Options) emitStop(label string, res ga.Result, start time.Time) {
	if o.Observer != nil {
		o.Observer.Event(telemetry.SearchStop{
			Search: label, Stopped: res.Stopped.String(),
			Generations: res.Generations, Evaluations: res.Evaluations,
			BestValue: res.BestValue, Elapsed: time.Since(start),
		})
	}
}

// errSink collects the first genuine evaluation error of a search.
// Cancellation and deadline expiry are not errors — the GA engine turns
// them into a StopReason and the search still returns its best-so-far.
type errSink struct{ err error }

func (s *errSink) note(err error) {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	if s.err == nil {
		s.err = err
	}
}

// poison is the objective value of a candidate whose evaluation failed or
// was cut short: never competitive, so a truncated evaluation can never
// masquerade as the best-so-far.
func poison() float64 { return math.Inf(1) }

// evaluator owns the fixed sample shared by every candidate of one search
// (common random numbers: the fitness is deterministic and comparisons are
// low-variance) and a pool of reusable analyzers: one primary plus
// workers−1 clones, rebound to each candidate's iteration space instead of
// paying NewAnalyzer + Clone allocation churn on all 450+ evaluations of a
// GA run. The pool is valid for one nest at a time; evaluating a different
// nest (the padding searches mutate array layouts per candidate) rebuilds
// it.
type evaluator struct {
	nest    *ir.Nest
	box     *iterspace.Box
	cfg     cache.Config
	sample  *sampling.Sample
	conf    float64
	workers int
	obs     telemetry.Recorder
	// stall arms the per-evaluation watchdog (0 = disabled).
	stall time.Duration
	// island tags this evaluator's telemetry batches with a 1-based
	// island index (0 = single-population search).
	island int

	// mu guards the pool: GA objectives run serially, but TileObjective
	// escapes to arbitrary callers.
	mu       sync.Mutex
	pool     []*cme.Analyzer
	poolNest *ir.Nest

	// shared is the cross-search evaluation cache (nil = disabled). The
	// content keys are precomputed once per search; only the primary
	// evaluator carries them — island forks leave shared nil, since
	// fitness sharing happens at the GA layer and pool parking belongs to
	// the search's primary pool.
	shared   *evalcache.Cache
	nestKey  string
	cfgKey   string
	sampleFP string
}

func newEvaluator(nest *ir.Nest, opt Options) (*evaluator, error) {
	if err := nest.Validate(); err != nil {
		return nil, err
	}
	box, err := tiling.Box(nest)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(opt.Seed, opt.Seed^0xda3e39cb94b95bdb))
	workers := opt.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	e := &evaluator{
		nest:    nest,
		box:     box,
		cfg:     opt.Cache,
		sample:  sampling.Draw(box, opt.SamplePoints, rng),
		conf:    opt.Confidence,
		workers: workers,
		obs:     opt.Observer,
		stall:   opt.StallTimeout,
	}
	if opt.SharedCache != nil {
		e.shared = opt.SharedCache
		e.nestKey = evalcache.NestKey(nest)
		e.cfgKey = evalcache.ConfigKey(opt.Cache)
		e.sampleFP = e.sample.Fingerprint()
	}
	return e, nil
}

// fork returns an island-private view of the evaluator: its own mutex
// and (initially empty) analyzer pool, sharing the immutable pieces —
// nest, box, sample, cache geometry, observer — so every fork evaluates
// the identical objective while islands run concurrently.
func (e *evaluator) fork(island int) *evaluator {
	return &evaluator{
		nest: e.nest, box: e.box, cfg: e.cfg, sample: e.sample,
		conf: e.conf, workers: e.workers, obs: e.obs, stall: e.stall,
		island: island,
	}
}

// analyzers returns the worker analyzer pool bound to (nest, space):
// rebinding in place when the pool already analyses nest (reused=true),
// checking a parked pool out of the shared cache when an earlier search
// over a content-equal nest returned one, and rebuilding otherwise.
// Callers hold e.mu.
func (e *evaluator) analyzers(nest *ir.Nest, space iterspace.Space) (ans []*cme.Analyzer, reused bool, err error) {
	if e.poolNest == nest && len(e.pool) > 0 {
		for _, an := range e.pool {
			if err := an.Rebind(space); err != nil {
				return nil, false, err
			}
		}
		return e.pool, true, nil
	}
	if pool := e.checkoutShared(nest, space); pool != nil {
		e.pool, e.poolNest = pool, nest
		return pool, true, nil
	}
	an, err := cme.NewAnalyzer(nest, space, e.cfg)
	if err != nil {
		return nil, false, err
	}
	pool := make([]*cme.Analyzer, 1, max(e.workers, 1))
	pool[0] = an
	for len(pool) < cap(pool) {
		pool = append(pool, an.Clone())
	}
	e.pool, e.poolNest = pool, nest
	return pool, false, nil
}

// poolKey scopes parked analyzer pools to (nest content, geometry):
// analyzers built for a content-equal nest under the same geometry
// classify identically, so a checked-out pool is result-invariant.
func (e *evaluator) poolKey() string {
	return evalcache.Scope("pool", e.nestKey, e.cfgKey)
}

// checkoutShared tries to adopt a parked pool from the shared cache for
// the search's base nest, rebound to space and resized to this search's
// worker count. Any rebind failure drops the pool and reports a miss so
// the caller rebuilds from scratch.
func (e *evaluator) checkoutShared(nest *ir.Nest, space iterspace.Space) []*cme.Analyzer {
	if e.shared == nil || nest != e.nest {
		return nil
	}
	pool, ok := e.shared.CheckoutPool(e.poolKey())
	if !ok {
		return nil
	}
	if n := max(e.workers, 1); len(pool) > n {
		pool = pool[:n]
	}
	for _, an := range pool {
		if err := an.Rebind(space); err != nil {
			return nil
		}
	}
	for len(pool) < max(e.workers, 1) {
		pool = append(pool, pool[0].Clone())
	}
	return pool
}

// release parks the evaluator's analyzer pool in the shared cache for
// the next search over the same nest and geometry. Searches defer it;
// with sharing disabled, or after a padded-nest evaluation rebuilt the
// pool for a different nest, it is a no-op.
func (e *evaluator) release() {
	if e.shared == nil {
		return
	}
	e.mu.Lock()
	pool, poolNest := e.pool, e.poolNest
	e.pool, e.poolNest = nil, nil
	e.mu.Unlock()
	if poolNest == e.nest && len(pool) > 0 {
		e.shared.ReturnPool(e.poolKey(), pool)
	}
}

// evalSpace evaluates the sample over nest traversed in space order, using
// the pooled parallel workers. With an observer attached it also reports
// the evaluation batch and the pool hit/miss counter. With the shared
// cache enabled, finalized statistics for the search's base nest are
// recalled and stored by content key, so repeated requests skip the
// classification work entirely (the recalled value is the one an
// evaluation would compute, so results never change).
func (e *evaluator) evalSpace(ctx context.Context, nest *ir.Nest, space iterspace.Space) (cachesim.Stats, error) {
	statsKey := e.statsKey(nest, space)
	if statsKey != "" {
		if st, ok := e.shared.GetStats(statsKey); ok {
			return st, nil
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ans, reused, err := e.analyzers(nest, space)
	if err != nil {
		return cachesim.Stats{}, err
	}
	if e.obs != nil {
		if reused {
			e.obs.Add(telemetry.Counters{PoolHits: 1})
		} else {
			e.obs.Add(telemetry.Counters{PoolMisses: 1})
		}
	}
	st, err := e.runEval(ctx, ans)
	if err == nil && statsKey != "" {
		e.shared.PutStats(statsKey, st)
	}
	return st, err
}

// runEval runs one pooled evaluation, under the stall watchdog when
// armed. Callers hold e.mu.
func (e *evaluator) runEval(ctx context.Context, ans []*cme.Analyzer) (cachesim.Stats, error) {
	if e.stall <= 0 {
		return e.sample.EvaluateObservedIsland(ctx, ans, e.obs, e.island)
	}
	// Under the watchdog a truly hung evaluation leaks its workers, which
	// still hold the pooled analyzers — abandon the pool (the caller holds
	// e.mu) so the next evaluation rebuilds a fresh one.
	return e.watchedStats(ctx, func() { e.pool, e.poolNest = nil, nil },
		func(wctx context.Context) (cachesim.Stats, error) {
			return e.sample.EvaluateObservedIsland(wctx, ans, e.obs, e.island)
		})
}

// evalRange evaluates the half-open sample range [lo, hi) over nest
// traversed in space order — the multi-fidelity ladder's unit of work —
// using the same pooled workers, watchdog and telemetry as a full
// evaluation. The returned statistics cover only the range; the caller
// accumulates them into the candidate's running prefix total.
func (e *evaluator) evalRange(ctx context.Context, nest *ir.Nest, space iterspace.Space, lo, hi, rung int) (cachesim.Stats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ans, reused, err := e.analyzers(nest, space)
	if err != nil {
		return cachesim.Stats{}, err
	}
	if e.obs != nil {
		if reused {
			e.obs.Add(telemetry.Counters{PoolHits: 1})
		} else {
			e.obs.Add(telemetry.Counters{PoolMisses: 1})
		}
	}
	sub := e.sample.Range(lo, hi)
	if e.stall <= 0 {
		return sub.EvaluateObservedRung(ctx, ans, e.obs, e.island, rung)
	}
	return e.watchedStats(ctx, func() { e.pool, e.poolNest = nil, nil },
		func(wctx context.Context) (cachesim.Stats, error) {
			return sub.EvaluateObservedRung(wctx, ans, e.obs, e.island, rung)
		})
}

// prefixKey returns the shared-cache key for cumulative statistics over
// the first n sample points, or "" when not shareable (same rules as
// statsKey). The full-sample prefix is exactly the classic evaluation,
// so it shares the classic key — a fidelity search warms the cache for
// classic searches over the same nest, and vice versa.
func (e *evaluator) prefixKey(nest *ir.Nest, space iterspace.Space, n int) string {
	base := e.statsKey(nest, space)
	if base == "" {
		return ""
	}
	if n >= len(e.sample.Points) {
		return base
	}
	return evalcache.Scope(base, "pfx", strconv.Itoa(n))
}

// statsKey returns the shared-cache key for finalized statistics of the
// search's base nest over space, or "" when the evaluation is not
// shareable: sharing disabled, a per-candidate mutated (padded) nest, or
// an iteration-space shape without a canonical encoding.
func (e *evaluator) statsKey(nest *ir.Nest, space iterspace.Space) string {
	if e.shared == nil || nest != e.nest {
		return ""
	}
	shape, ok := spaceKey(space)
	if !ok {
		return ""
	}
	return evalcache.Scope("stats", e.nestKey, e.cfgKey, e.sampleFP, shape)
}

// spaceKey canonically encodes the iteration-space shapes the searches
// evaluate. Unknown implementations are not cacheable.
func spaceKey(space iterspace.Space) (string, bool) {
	switch s := space.(type) {
	case *iterspace.Box:
		return "box", true
	case *iterspace.Tiled:
		return "tiled|" + intsKey(s.Tile), true
	case *iterspace.PermutedTiled:
		order := make([]int64, len(s.Order))
		for i, d := range s.Order {
			order[i] = int64(d)
		}
		return "ptiled|" + intsKey(s.Tile) + "|" + intsKey(order), true
	default:
		return "", false
	}
}

func intsKey(vs []int64) string {
	b := make([]byte, 0, 16*len(vs))
	for _, v := range vs {
		b = strconv.AppendInt(b, v, 10)
		b = append(b, ',')
	}
	return string(b)
}

// watchedStats adapts the generic watchdog to the Stats-returning
// evaluation signature.
func (e *evaluator) watchedStats(ctx context.Context, onHang func(),
	fn func(context.Context) (cachesim.Stats, error)) (cachesim.Stats, error) {
	v, err := watched(ctx, e.stall, onHang, func(wctx context.Context) (any, error) {
		return fn(wctx)
	})
	st, _ := v.(cachesim.Stats)
	return st, err
}

// evalFresh evaluates the sample on a one-off analyzer — the multi-level
// and interchange paths, whose per-candidate cache configurations cannot
// reuse the pool — fanning out over worker clones and reporting the batch
// to the observer.
func (e *evaluator) evalFresh(ctx context.Context, an *cme.Analyzer) (cachesim.Stats, error) {
	workers := e.workers
	if n := len(e.sample.Points); workers > n {
		workers = n
	}
	ans := make([]*cme.Analyzer, 1, max(workers, 1))
	ans[0] = an
	if len(e.sample.Points) >= 64 {
		for len(ans) < cap(ans) {
			ans = append(ans, an.Clone())
		}
	}
	if e.stall <= 0 {
		return e.sample.EvaluateObservedIsland(ctx, ans, e.obs, e.island)
	}
	// One-off analyzers: nothing shared to abandon on a hang.
	return e.watchedStats(ctx, nil, func(wctx context.Context) (cachesim.Stats, error) {
		return e.sample.EvaluateObservedIsland(wctx, ans, e.obs, e.island)
	})
}

// tiled evaluates a tile vector over (a possibly padded copy of) the nest.
func (e *evaluator) tiled(ctx context.Context, nest *ir.Nest, tile []int64) (cachesim.Stats, error) {
	return e.evalSpace(ctx, nest, iterspace.NewTiled(e.box, tile))
}

// untiled evaluates the nest in original order.
func (e *evaluator) untiled(ctx context.Context, nest *ir.Nest) (cachesim.Stats, error) {
	return e.evalSpace(ctx, nest, e.box)
}

func (e *evaluator) estimate(st cachesim.Stats) sampling.Estimate {
	return sampling.FromStats(st, len(e.sample.Points), e.conf)
}

// sharedMemo adapts the shared evaluation cache to the ga.SharedMemo
// fitness tier. Keys arriving from the GA are raw genome bits; the scope
// prefix pins them to one evaluation context (phase label, nest content,
// geometry, sample). Put filters every value that is not a pure function
// of the key: quarantine sentinels and poisoned or non-finite fitness
// depend on wall-clock faults, and recalling them in a later run would
// corrupt its results.
type sharedMemo struct {
	c     *evalcache.Cache
	scope string
}

func (m *sharedMemo) Get(key string) (float64, bool) {
	return m.c.GetFitness(m.scope + key)
}

func (m *sharedMemo) Put(key string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v == math.MaxFloat64 {
		return
	}
	m.c.PutFitness(m.scope+key, v)
}

// sharedFitnessMemo returns the GA's shared fitness tier for one search
// phase over this evaluator's nest, geometry and sample (nil when
// sharing is disabled). extra carries additional scope discriminators —
// the multi-level search adds every level's geometry and penalty, since
// its fitness depends on more than the evaluator's single geometry.
func (e *evaluator) sharedFitnessMemo(label string, extra ...string) ga.SharedMemo {
	if e.shared == nil {
		return nil
	}
	parts := append([]string{label, e.nestKey, e.cfgKey, e.sampleFP}, extra...)
	return &sharedMemo{c: e.shared, scope: evalcache.Scope(parts...)}
}

// TilingResult reports a tile-size search.
type TilingResult struct {
	// Tile is the best tile vector found.
	Tile []int64
	// Before and After are the sampled estimates for the original and
	// tiled nest (After uses the same sample: ratios are comparable).
	Before, After sampling.Estimate
	// TiledNest is the transformed loop nest (Figure 3(b) form).
	TiledNest *ir.Nest
	// Space is the tiled iteration space.
	Space *iterspace.Tiled
	// GA is the raw search trace.
	GA ga.Result
	// Stopped records why the search ended; Tile is the valid best-so-far
	// for every reason, but only ga.StopConverged means the full Figure-7
	// schedule ran.
	Stopped ga.StopReason
	// Quarantined lists the candidates set aside under
	// Options.FailQuarantine; non-empty means the run completed degraded.
	Quarantined []QuarantinedEval
}

// OptimizeTiling runs the paper's tile-size search on a rectangular nest.
// The context bounds the search: on cancellation or deadline expiry the
// best-so-far tile is returned with the matching Stopped reason.
func OptimizeTiling(ctx context.Context, nest *ir.Nest, opt Options) (*TilingResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	ctx, cancel := opt.searchContext(ctx)
	defer cancel()
	opt = opt.sharedScoped(ctx)
	ev, err := newEvaluator(nest, opt)
	if err != nil {
		return nil, err
	}
	defer ev.release()
	started := opt.emitStart(nest, "tiling")
	uppers := make([]int64, nest.Depth())
	for d := range uppers {
		uppers[d] = ev.box.Extent(d)
	}
	spec := ga.NewTileSpec(uppers)
	gaCfg := opt.gaRuntime(withMutationFloor(opt.GA, spec), "tiling")
	// Fidelity pruning records cohort-dependent scaled fitness, which must
	// never leak into the cross-search memo tier.
	if gaCfg.SharedMemo == nil && !gaCfg.Fidelity.Enabled() {
		gaCfg.SharedMemo = ev.sharedFitnessMemo("tiling")
	}
	if len(gaCfg.SeedValues) == 0 {
		gaCfg.SeedValues = tileSeeds(nest, ev.box, opt.Cache)
	}
	guard := opt.newGuard()
	build := func(ev *evaluator) func([]int64) (float64, error) {
		return func(v []int64) (float64, error) {
			st, err := ev.tiled(ctx, nest, tileFromGenome(ev.box, v))
			if err != nil {
				return 0, err
			}
			return float64(st.Replacement), nil
		}
	}
	obj := guard.objective("tiling", build(ev))
	gaCfg = islandRuntime(gaCfg, guard, "tiling", ev, build)
	gaCfg = fidelityRuntime(gaCfg, ctx, guard, "tiling", ev,
		func(e *evaluator, v []int64) (*ir.Nest, iterspace.Space, error) {
			return nest, iterspace.NewTiled(e.box, tileFromGenome(e.box, v)), nil
		})
	res, err := ga.Run(ctx, spec, obj, gaCfg)
	if err != nil {
		return nil, err
	}
	if err := guard.err(); err != nil {
		return nil, err
	}

	best := tileFromGenome(ev.box, res.Best)
	tiledNest, space, err := tiling.Apply(nest, best)
	if err != nil {
		return nil, err
	}
	// Finalisation deliberately ignores the (possibly expired) search
	// context: the best-so-far contract promises a fully populated
	// result, and this tail is a bounded two evaluations.
	opt.emitPhase("tiling", "finalize")
	fin := context.Background()
	beforeStats, err := ev.untiled(fin, nest)
	if err != nil {
		return nil, err
	}
	afterStats, err := ev.tiled(fin, nest, best)
	if err != nil {
		return nil, err
	}
	opt.emitStop("tiling", res, started)
	return &TilingResult{
		Tile:        best,
		Before:      ev.estimate(beforeStats),
		After:       ev.estimate(afterStats),
		TiledNest:   tiledNest,
		Space:       space,
		GA:          res,
		Stopped:     res.Stopped,
		Quarantined: guard.quarantined(),
	}, nil
}

// withMutationFloor raises the per-bit mutation probability to 1/(2L) for
// an L-bit genome when the caller's rate is lower. The paper's pm = 0.001
// yields well under one expected flip per individual on the 24–40 bit
// genomes of the larger kernels, and the population homogenises before
// finding good tiles (premature convergence); half a flip per individual
// restores steady exploration. A measured side effect, documented in
// EXPERIMENTS.md: the §3.3 homogeneity criterion then rarely fires on
// tiling-responsive kernels, so searches usually run the full 25
// generations of the Figure-7 schedule (it still fires on the flat
// conflict-bound landscapes).
func withMutationFloor(cfg ga.Config, spec ga.Spec) ga.Config {
	if pm := 1.0 / (2 * float64(spec.TotalBits())); cfg.MutationProb < pm {
		cfg.MutationProb = pm
	}
	return cfg
}

// tileSeeds returns the heuristic individuals injected into the GA's
// initial population: the square-root capacity heuristic, the untiled
// configuration (full extents) and unit tiles. On 2000-sized loops a
// uniform random population has essentially no mass on cache-fitting
// tiles; without a foothold there, selection can converge inside the flat
// "as bad as untiled" basin. Seeding known configurations is standard GA
// practice and keeps 27 of 30 individuals random.
func tileSeeds(nest *ir.Nest, box *iterspace.Box, cfg cache.Config) [][]int64 {
	k := nest.Depth()
	untiled := make([]int64, k)
	ones := make([]int64, k)
	for d := 0; d < k; d++ {
		untiled[d] = box.Extent(d)
		ones[d] = 1
	}
	return [][]int64{capacityTile(nest, box, cfg), untiled, ones}
}

// capacityTile is the square-root capacity heuristic over a prepared box:
// each tile dimension gets the k-th root of the per-array cache budget,
// clamped to the loop extents.
func capacityTile(nest *ir.Nest, box *iterspace.Box, cfg cache.Config) []int64 {
	k := nest.Depth()
	tile := make([]int64, k)
	arrays := len(nest.Arrays())
	if arrays == 0 {
		arrays = 1
	}
	elem := nest.Refs[0].Array.Elem
	budget := float64(cfg.Size) / float64(int64(arrays)*elem)
	t := int64(math.Pow(budget, 1/float64(k)))
	if t < 1 {
		t = 1
	}
	for d := 0; d < k; d++ {
		tile[d] = t
		if e := box.Extent(d); tile[d] > e {
			tile[d] = e
		}
	}
	return tile
}

// HeuristicTile returns the square-root capacity heuristic tile for the
// nest against one cache: the k-th root of the cache capacity divided
// evenly among the nest's arrays, clamped per dimension to the loop
// extents. It needs no search — the GA injects it as a seed individual,
// and the serving layer returns it as the degraded fallback when the
// circuit breaker has taken full searches out of rotation.
func HeuristicTile(nest *ir.Nest, cfg cache.Config) ([]int64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := nest.Validate(); err != nil {
		return nil, err
	}
	box, err := tiling.Box(nest)
	if err != nil {
		return nil, err
	}
	return capacityTile(nest, box, cfg), nil
}

// tileFromGenome clamps decoded genome values into valid tile sizes. The
// genome ranges over [1, extent] already; the clamp guards the Lo offset of
// boxes that do not start at 1.
func tileFromGenome(box *iterspace.Box, v []int64) []int64 {
	tile := make([]int64, len(v))
	for d := range v {
		t := v[d]
		if t < 1 {
			t = 1
		}
		if e := box.Extent(d); t > e {
			t = e
		}
		tile[d] = t
	}
	return tile
}

// OrderedTilingResult reports a joint tile-size + tile-loop-order search.
type OrderedTilingResult struct {
	Tile          []int64
	Order         []int // Order[p] = original loop at tile position p
	Before, After sampling.Estimate
	TiledNest     *ir.Nest
	GA            ga.Result
	Stopped       ga.StopReason
	// Quarantined lists candidates set aside under FailQuarantine.
	Quarantined []QuarantinedEval
}

// OptimizeTilingOrder extends the paper's search with the interchange half
// of "tiling = strip-mining + interchange": the genome carries the tile
// sizes plus a Lehmer-coded permutation of the tile loops, so the GA
// chooses which tile loop runs outermost. For some kernels (e.g. when the
// reuse-carrying loop should be the innermost tile loop) this beats every
// fixed-order tiling.
func OptimizeTilingOrder(ctx context.Context, nest *ir.Nest, opt Options) (*OrderedTilingResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	ctx, cancel := opt.searchContext(ctx)
	defer cancel()
	opt = opt.sharedScoped(ctx)
	ev, err := newEvaluator(nest, opt)
	if err != nil {
		return nil, err
	}
	defer ev.release()
	started := opt.emitStart(nest, "tiling-order")
	k := nest.Depth()
	uppers := make([]int64, k)
	for d := range uppers {
		uppers[d] = ev.box.Extent(d)
	}
	tileSpec := ga.NewTileSpec(uppers)
	// Lehmer code: digit p chooses among the k-p remaining dimensions.
	chroms := append([]ga.Chromosome(nil), tileSpec.Chroms...)
	for p := 0; p < k-1; p++ {
		chroms = append(chroms, ga.NewChromosome(0, int64(k-p)))
	}
	spec := ga.Spec{Chroms: chroms}
	gaCfg := opt.gaRuntime(withMutationFloor(opt.GA, spec), "tiling-order")
	if gaCfg.SharedMemo == nil && !gaCfg.Fidelity.Enabled() {
		gaCfg.SharedMemo = ev.sharedFitnessMemo("tiling-order")
	}
	if len(gaCfg.SeedValues) == 0 {
		for _, tile := range tileSeeds(nest, ev.box, opt.Cache) {
			seed := make([]int64, len(chroms))
			copy(seed, tile)
			gaCfg.SeedValues = append(gaCfg.SeedValues, seed) // identity order
		}
	}
	decode := func(v []int64) ([]int64, []int) {
		return tileFromGenome(ev.box, v[:k]), lehmerToPerm(v[k:], k)
	}
	guard := opt.newGuard()
	build := func(ev *evaluator) func([]int64) (float64, error) {
		return func(v []int64) (float64, error) {
			tile, order := decode(v)
			st, err := ev.evalSpace(ctx, nest, iterspace.NewPermutedTiled(ev.box, tile, order))
			if err != nil {
				return 0, err
			}
			return float64(st.Replacement), nil
		}
	}
	obj := guard.objective("tiling-order", build(ev))
	gaCfg = islandRuntime(gaCfg, guard, "tiling-order", ev, build)
	gaCfg = fidelityRuntime(gaCfg, ctx, guard, "tiling-order", ev,
		func(e *evaluator, v []int64) (*ir.Nest, iterspace.Space, error) {
			tile, order := decode(v)
			return nest, iterspace.NewPermutedTiled(e.box, tile, order), nil
		})
	res, err := ga.Run(ctx, spec, obj, gaCfg)
	if err != nil {
		return nil, err
	}
	if err := guard.err(); err != nil {
		return nil, err
	}
	tile, order := decode(res.Best)
	tiledNest, space, err := tiling.ApplyPermuted(nest, tile, order)
	if err != nil {
		return nil, err
	}
	// Finalisation runs through the same pooled parallel evaluator as the
	// search itself, outside the (possibly expired) search context.
	opt.emitPhase("tiling-order", "finalize")
	fin := context.Background()
	afterStats, err := ev.evalSpace(fin, nest, space)
	if err != nil {
		return nil, err
	}
	beforeStats, err := ev.untiled(fin, nest)
	if err != nil {
		return nil, err
	}
	opt.emitStop("tiling-order", res, started)
	return &OrderedTilingResult{
		Tile:        tile,
		Order:       order,
		Before:      ev.estimate(beforeStats),
		After:       ev.estimate(afterStats),
		TiledNest:   tiledNest,
		GA:          res,
		Stopped:     res.Stopped,
		Quarantined: guard.quarantined(),
	}, nil
}

// lehmerToPerm decodes a Lehmer code (digit p in [0, k-p)) into a
// permutation of 0..k-1; out-of-range digits wrap, so every genome is
// valid.
func lehmerToPerm(code []int64, k int) []int {
	avail := make([]int, k)
	for i := range avail {
		avail[i] = i
	}
	perm := make([]int, 0, k)
	for p := 0; p < k; p++ {
		var idx int64
		if p < len(code) {
			idx = code[p] % int64(len(avail))
			if idx < 0 {
				idx += int64(len(avail))
			}
		}
		perm = append(perm, avail[idx])
		avail = append(avail[:idx], avail[idx+1:]...)
	}
	return perm
}

// TileObjective exposes the §3.1 objective function f(T₁..Tk) — the
// sampled replacement-miss count of the nest tiled with T — together with
// the iteration box bounding the search space. It lets alternative
// optimizers (simulated annealing, random search; see internal/search) be
// compared against the GA on the identical deterministic objective.
func TileObjective(nest *ir.Nest, opt Options) (func(tile []int64) float64, *iterspace.Box, error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, err
	}
	opt = opt.withDefaults()
	ev, err := newEvaluator(nest, opt)
	if err != nil {
		return nil, nil, err
	}
	f := func(tile []int64) float64 {
		st, err := ev.tiled(context.Background(), nest, tileFromGenome(ev.box, tile))
		if err != nil {
			return float64(st.Accesses + 1) // poison invalid candidates
		}
		return float64(st.Replacement)
	}
	return f, ev.box, nil
}

// PaddingResult reports a padding search.
type PaddingResult struct {
	Plan          padding.Plan
	Before, After sampling.Estimate
	PaddedNest    *ir.Nest
	GA            ga.Result
	Stopped       ga.StopReason
	// Quarantined lists candidates set aside under FailQuarantine.
	Quarantined []QuarantinedEval
}

// OptimizePadding searches inter- and intra-array padding with the GA,
// leaving the loop order untouched (Table 3's "Padding" column).
func OptimizePadding(ctx context.Context, nest *ir.Nest, opt Options) (*PaddingResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	ctx, cancel := opt.searchContext(ctx)
	defer cancel()
	opt = opt.sharedScoped(ctx)
	ev, err := newEvaluator(nest, opt)
	if err != nil {
		return nil, err
	}
	defer ev.release()
	started := opt.emitStart(nest, "padding")
	spec, decodePlan := paddingSpec(nest, opt.Cache)
	gaCfg := opt.gaRuntime(withMutationFloor(opt.GA, spec), "padding")
	if gaCfg.SharedMemo == nil && !gaCfg.Fidelity.Enabled() {
		gaCfg.SharedMemo = ev.sharedFitnessMemo("padding")
	}
	if len(gaCfg.SeedValues) == 0 {
		// Seed the identity plan: padding should never end worse than
		// doing nothing.
		gaCfg.SeedValues = [][]int64{make([]int64, len(spec.Chroms))}
	}
	guard := opt.newGuard()
	build := func(ev *evaluator) func([]int64) (float64, error) {
		return func(v []int64) (float64, error) {
			padded, err := padding.Apply(nest, decodePlan(v))
			if err != nil {
				return 0, err
			}
			st, err := ev.untiled(ctx, padded)
			if err != nil {
				return 0, err
			}
			return float64(st.Replacement), nil
		}
	}
	obj := guard.objective("padding", build(ev))
	gaCfg = islandRuntime(gaCfg, guard, "padding", ev, build)
	gaCfg = fidelityRuntime(gaCfg, ctx, guard, "padding", ev,
		func(e *evaluator, v []int64) (*ir.Nest, iterspace.Space, error) {
			padded, err := padding.Apply(nest, decodePlan(v))
			if err != nil {
				return nil, nil, err
			}
			return padded, e.box, nil
		})
	res, err := ga.Run(ctx, spec, obj, gaCfg)
	if err != nil {
		return nil, err
	}
	if err := guard.err(); err != nil {
		return nil, err
	}
	plan := decodePlan(res.Best)
	padded, err := padding.Apply(nest, plan)
	if err != nil {
		return nil, err
	}
	opt.emitPhase("padding", "finalize")
	fin := context.Background()
	beforeStats, err := ev.untiled(fin, nest)
	if err != nil {
		return nil, err
	}
	afterStats, err := ev.untiled(fin, padded)
	if err != nil {
		return nil, err
	}
	opt.emitStop("padding", res, started)
	return &PaddingResult{
		Plan:        plan,
		Before:      ev.estimate(beforeStats),
		After:       ev.estimate(afterStats),
		PaddedNest:  padded,
		GA:          res,
		Stopped:     res.Stopped,
		Quarantined: guard.quarantined(),
	}, nil
}

// paddingSpec builds the GA genome for padding parameters: one chromosome
// per array for the inter pad in line-size units and one for the intra pad
// in elements.
func paddingSpec(nest *ir.Nest, cfg cache.Config) (ga.Spec, func([]int64) padding.Plan) {
	arrays := nest.Arrays()
	var chroms []ga.Chromosome
	for _, a := range arrays {
		// Inter-array padding in cache lines: [0, sets-1] lines reaches
		// every relative set alignment.
		chroms = append(chroms, ga.NewChromosome(0, cfg.NumSets()))
		// Intra-array padding in elements: up to 8 lines' worth.
		chroms = append(chroms, ga.NewChromosome(0, 8*cfg.LineSize/a.Elem+1))
	}
	spec := ga.Spec{Chroms: chroms}
	decode := func(v []int64) padding.Plan {
		plan := padding.Plan{
			Inter: make([]int64, len(arrays)),
			Intra: make([]int64, len(arrays)),
		}
		for i, a := range arrays {
			plan.Inter[i] = v[2*i] * (cfg.LineSize / a.Elem) // lines → elements
			plan.Intra[i] = v[2*i+1]
		}
		return plan
	}
	return spec, decode
}

// CombinedResult reports padding followed by tiling (Table 3's
// "Padding + tiling" column) or the joint single-genome search.
type CombinedResult struct {
	Plan                       padding.Plan
	Tile                       []int64
	Original, Padded, Combined sampling.Estimate
	GA                         ga.Result
	Stopped                    ga.StopReason
	// Quarantined lists candidates set aside under FailQuarantine; for
	// the sequential search it merges both phases.
	Quarantined []QuarantinedEval
}

// OptimizePaddingThenTiling applies the two searches sequentially, exactly
// as the paper's Table 3: first find padding that minimises replacement
// misses of the untiled nest, then search tile sizes over the padded nest.
// Options.Deadline bounds the two phases together; Options.MaxEvaluations
// applies to each phase separately; checkpointing covers the tiling phase.
func OptimizePaddingThenTiling(ctx context.Context, nest *ir.Nest, opt Options) (*CombinedResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	ctx, cancel := opt.searchContext(ctx)
	defer cancel()
	opt.Deadline = 0 // already applied to ctx; phases must not re-arm it
	opt.emitPhase("padding+tiling", "padding")
	padOpt := opt
	padOpt.Checkpoint, padOpt.ResumeFrom = nil, nil
	padRes, err := OptimizePadding(ctx, nest, padOpt)
	if err != nil {
		return nil, err
	}
	// Independent GA randomness for phase two, preserving any caller
	// overrides of the GA parameters.
	opt.emitPhase("padding+tiling", "tiling")
	tileOpt := opt
	tileOpt.Seed ^= 0x5bf03635
	tileOpt.GA.Seed1 ^= 0x5bf03635
	tileOpt.GA.Seed2 ^= 0x9e3779b9
	tileRes, err := OptimizeTiling(ctx, padRes.PaddedNest, tileOpt)
	if err != nil {
		return nil, err
	}
	stopped := tileRes.Stopped
	if stopped == ga.StopConverged {
		stopped = padRes.Stopped
	}
	return &CombinedResult{
		Plan:        padRes.Plan,
		Tile:        tileRes.Tile,
		Original:    padRes.Before,
		Padded:      padRes.After,
		Combined:    tileRes.After,
		GA:          tileRes.GA,
		Stopped:     stopped,
		Quarantined: append(append([]QuarantinedEval(nil), padRes.Quarantined...), tileRes.Quarantined...),
	}, nil
}

// OptimizeJoint searches padding and tile sizes in a single genome — the
// single-step combination the paper leaves as future work (§4.3), which
// can beat the sequential composition when the best padding for the
// untiled order is not the best padding under tiling.
func OptimizeJoint(ctx context.Context, nest *ir.Nest, opt Options) (*CombinedResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	ctx, cancel := opt.searchContext(ctx)
	defer cancel()
	opt = opt.sharedScoped(ctx)
	ev, err := newEvaluator(nest, opt)
	if err != nil {
		return nil, err
	}
	defer ev.release()
	started := opt.emitStart(nest, "joint")
	padSpec, decodePlan := paddingSpec(nest, opt.Cache)
	uppers := make([]int64, nest.Depth())
	for d := range uppers {
		uppers[d] = ev.box.Extent(d)
	}
	tileSpec := ga.NewTileSpec(uppers)
	joint := ga.Spec{Chroms: append(append([]ga.Chromosome(nil), padSpec.Chroms...), tileSpec.Chroms...)}
	nPad := len(padSpec.Chroms)
	gaCfg := opt.gaRuntime(withMutationFloor(opt.GA, joint), "joint")
	if gaCfg.SharedMemo == nil && !gaCfg.Fidelity.Enabled() {
		gaCfg.SharedMemo = ev.sharedFitnessMemo("joint")
	}
	if len(gaCfg.SeedValues) == 0 {
		// Seed zero-padding combined with each tile heuristic.
		for _, tile := range tileSeeds(nest, ev.box, opt.Cache) {
			seed := make([]int64, nPad+len(tile))
			copy(seed[nPad:], tile)
			gaCfg.SeedValues = append(gaCfg.SeedValues, seed)
		}
	}

	guard := opt.newGuard()
	build := func(ev *evaluator) func([]int64) (float64, error) {
		return func(v []int64) (float64, error) {
			padded, err := padding.Apply(nest, decodePlan(v[:nPad]))
			if err != nil {
				return 0, err
			}
			st, err := ev.tiled(ctx, padded, tileFromGenome(ev.box, v[nPad:]))
			if err != nil {
				return 0, err
			}
			return float64(st.Replacement), nil
		}
	}
	obj := guard.objective("joint", build(ev))
	gaCfg = islandRuntime(gaCfg, guard, "joint", ev, build)
	gaCfg = fidelityRuntime(gaCfg, ctx, guard, "joint", ev,
		func(e *evaluator, v []int64) (*ir.Nest, iterspace.Space, error) {
			padded, err := padding.Apply(nest, decodePlan(v[:nPad]))
			if err != nil {
				return nil, nil, err
			}
			return padded, iterspace.NewTiled(e.box, tileFromGenome(e.box, v[nPad:])), nil
		})
	res, err := ga.Run(ctx, joint, obj, gaCfg)
	if err != nil {
		return nil, err
	}
	if err := guard.err(); err != nil {
		return nil, err
	}
	plan := decodePlan(res.Best[:nPad])
	tile := tileFromGenome(ev.box, res.Best[nPad:])
	padded, err := padding.Apply(nest, plan)
	if err != nil {
		return nil, err
	}
	opt.emitPhase("joint", "finalize")
	fin := context.Background()
	origStats, err := ev.untiled(fin, nest)
	if err != nil {
		return nil, err
	}
	padStats, err := ev.untiled(fin, padded)
	if err != nil {
		return nil, err
	}
	combStats, err := ev.tiled(fin, padded, tile)
	if err != nil {
		return nil, err
	}
	opt.emitStop("joint", res, started)
	return &CombinedResult{
		Plan:        plan,
		Tile:        tile,
		Original:    ev.estimate(origStats),
		Padded:      ev.estimate(padStats),
		Combined:    ev.estimate(combStats),
		GA:          res,
		Stopped:     res.Stopped,
		Quarantined: guard.quarantined(),
	}, nil
}

// ExhaustiveTiling enumerates every tile vector (the optimality reference
// the paper compares against) and returns the best under the same sampled
// objective. It refuses search spaces larger than limit candidates and
// returns the context's error if cancelled mid-enumeration (a truncated
// exhaustive sweep is not a reference result).
func ExhaustiveTiling(ctx context.Context, nest *ir.Nest, opt Options, limit uint64) ([]int64, cachesim.Stats, error) {
	if err := opt.Validate(); err != nil {
		return nil, cachesim.Stats{}, err
	}
	opt = opt.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.sharedScoped(ctx)
	ev, err := newEvaluator(nest, opt)
	if err != nil {
		return nil, cachesim.Stats{}, err
	}
	defer ev.release()
	k := nest.Depth()
	total := uint64(1)
	for d := 0; d < k; d++ {
		total *= uint64(ev.box.Extent(d))
		if total > limit {
			return nil, cachesim.Stats{}, fmt.Errorf("core: %d tile vectors exceed limit %d", total, limit)
		}
	}
	tile := make([]int64, k)
	for d := range tile {
		tile[d] = 1
	}
	var best []int64
	var bestStats cachesim.Stats
	bestMisses := uint64(1<<63 - 1)
	for {
		if err := ctx.Err(); err != nil {
			return nil, cachesim.Stats{}, err
		}
		st, err := ev.tiled(ctx, nest, tile)
		if err != nil {
			return nil, cachesim.Stats{}, err
		}
		if st.Replacement < bestMisses {
			bestMisses = st.Replacement
			bestStats = st
			best = append([]int64(nil), tile...)
		}
		d := k - 1
		for ; d >= 0; d-- {
			if tile[d] < ev.box.Extent(d) {
				tile[d]++
				break
			}
			tile[d] = 1
		}
		if d < 0 {
			break
		}
	}
	return best, bestStats, nil
}
