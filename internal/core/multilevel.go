package core

import (
	"context"
	"strconv"

	"repro/internal/cache"
	"repro/internal/cme"
	"repro/internal/evalcache"
	"repro/internal/ga"
	"repro/internal/ir"
	"repro/internal/iterspace"
	"repro/internal/sampling"
	"repro/internal/tiling"
)

// Level couples one cache level with the relative penalty of missing in it
// (e.g. L1 miss ≈ 10 cycles, L2 miss ≈ 100 cycles). Levels are analysed
// independently — the CME model treats each level as its own cache, the
// standard simplification for multi-level analytical models.
type Level struct {
	Cache cache.Config
	// MissPenalty weights this level's replacement misses in the cost.
	MissPenalty float64
}

// LevelEstimate pairs a level with its sampled estimates.
type LevelEstimate struct {
	Level         Level
	Before, After sampling.Estimate
}

// MultiLevelResult reports a multi-level tile search.
type MultiLevelResult struct {
	Tile      []int64
	Levels    []LevelEstimate
	TiledNest *ir.Nest
	GA        ga.Result
	Stopped   ga.StopReason
	// CostBefore/CostAfter are the weighted replacement-miss costs per
	// sampled access.
	CostBefore, CostAfter float64
	// Quarantined lists candidates set aside under FailQuarantine.
	Quarantined []QuarantinedEval
}

// OptimizeTilingMultiLevel extends the single-cache search to a cache
// hierarchy: the objective is the penalty-weighted sum of replacement
// misses across levels, so the GA trades L1 residency against L2
// residency instead of optimising one level blindly. Like the other
// searches it is context-bounded and returns a best-so-far tile tagged
// with the Stopped reason on cancellation, deadline or budget exhaustion.
func OptimizeTilingMultiLevel(ctx context.Context, nest *ir.Nest, levels []Level, opt Options) (*MultiLevelResult, error) {
	if len(levels) == 0 {
		return nil, badOption("levels", "no cache levels")
	}
	for i, l := range levels {
		if err := l.Cache.Validate(); err != nil {
			return nil, badOption("levels", "level %d: %v", i, err)
		}
		if l.MissPenalty <= 0 {
			return nil, badOption("levels", "level %d: non-positive miss penalty %v", i, l.MissPenalty)
		}
	}
	opt.Cache = levels[0].Cache // evaluator's cfg is unused per-level below
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.Fidelity.Enabled() || opt.GA.Fidelity.Enabled() {
		// The per-level one-off analyzers cannot resume partial prefix
		// evaluations across rungs.
		return nil, badOption("Fidelity", "multi-fidelity evaluation is not supported by the multi-level search")
	}
	opt = opt.withDefaults()
	ctx, cancel := opt.searchContext(ctx)
	defer cancel()
	opt = opt.sharedScoped(ctx)
	ev, err := newEvaluator(nest, opt)
	if err != nil {
		return nil, err
	}
	defer ev.release()
	started := opt.emitStart(nest, "multilevel")
	uppers := make([]int64, nest.Depth())
	for d := range uppers {
		uppers[d] = ev.box.Extent(d)
	}
	spec := ga.NewTileSpec(uppers)
	gaCfg := opt.gaRuntime(withMutationFloor(opt.GA, spec), "multilevel")
	if gaCfg.SharedMemo == nil {
		// The multi-level fitness depends on every level's geometry and
		// penalty, not just the evaluator's level-0 geometry: widen the
		// scope so hierarchies differing in any level never share values.
		extra := make([]string, 0, 2*len(levels))
		for _, l := range levels {
			extra = append(extra, evalcache.ConfigKey(l.Cache),
				strconv.FormatFloat(l.MissPenalty, 'g', -1, 64))
		}
		gaCfg.SharedMemo = ev.sharedFitnessMemo("multilevel", extra...)
	}
	if len(gaCfg.SeedValues) == 0 {
		gaCfg.SeedValues = tileSeeds(nest, ev.box, levels[0].Cache)
	}

	cost := func(evalCtx context.Context, tile []int64) (float64, error) {
		space := iterspace.NewTiled(ev.box, tile)
		var c float64
		for _, l := range levels {
			an, err := cme.NewAnalyzer(nest, space, l.Cache)
			if err != nil {
				return 0, err
			}
			st, err := ev.evalFresh(evalCtx, an)
			if err != nil {
				return 0, err
			}
			c += l.MissPenalty * float64(st.Replacement)
		}
		return c, nil
	}
	guard := opt.newGuard()
	obj := guard.objective("multilevel", func(v []int64) (float64, error) {
		return cost(ctx, tileFromGenome(ev.box, v))
	})
	res, err := ga.Run(ctx, spec, obj, gaCfg)
	if err != nil {
		return nil, err
	}
	if err := guard.err(); err != nil {
		return nil, err
	}
	best := tileFromGenome(ev.box, res.Best)
	tiledNest, space, err := tiling.Apply(nest, best)
	if err != nil {
		return nil, err
	}
	out := &MultiLevelResult{
		Tile: best, TiledNest: tiledNest, GA: res, Stopped: res.Stopped,
		Quarantined: guard.quarantined(),
	}
	accesses := float64(len(ev.sample.Points) * len(nest.Refs))
	opt.emitPhase("multilevel", "finalize")
	fin := context.Background()
	for _, l := range levels {
		anU, err := cme.NewAnalyzer(nest, ev.box, l.Cache)
		if err != nil {
			return nil, err
		}
		anT, err := cme.NewAnalyzer(nest, space, l.Cache)
		if err != nil {
			return nil, err
		}
		before, err := ev.evalFresh(fin, anU)
		if err != nil {
			return nil, err
		}
		after, err := ev.evalFresh(fin, anT)
		if err != nil {
			return nil, err
		}
		out.Levels = append(out.Levels, LevelEstimate{
			Level:  l,
			Before: ev.estimate(before),
			After:  ev.estimate(after),
		})
		out.CostBefore += l.MissPenalty * float64(before.Replacement) / accesses
		out.CostAfter += l.MissPenalty * float64(after.Replacement) / accesses
	}
	opt.emitStop("multilevel", res, started)
	return out, nil
}

// BestInterchange evaluates every loop order of the nest under the shared
// sampled objective WITHOUT tiling and returns the best replacement ratio
// and its order. Factorial in depth; the paper's kernels are ≤4 deep. It
// returns the context's error if cancelled mid-enumeration.
func BestInterchange(ctx context.Context, nest *ir.Nest, opt Options) (float64, []int, error) {
	if err := opt.Validate(); err != nil {
		return 0, nil, err
	}
	opt = opt.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	ev, err := newEvaluator(nest, opt)
	if err != nil {
		return 0, nil, err
	}
	k := nest.Depth()
	best := 2.0
	var bestOrder []int
	var rec func(avail []int, cur []int) error
	rec = func(avail []int, cur []int) error {
		if len(avail) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			space := iterspace.NewPermutedBox(ev.box, cur)
			an, err := cme.NewAnalyzer(nest, space, ev.cfg)
			if err != nil {
				return err
			}
			st, err := ev.evalFresh(ctx, an)
			if err != nil {
				return err
			}
			if ratio := st.ReplacementRatio(); ratio < best {
				best = ratio
				bestOrder = append([]int(nil), cur...)
			}
			return nil
		}
		for i := range avail {
			next := make([]int, 0, len(avail)-1)
			next = append(next, avail[:i]...)
			next = append(next, avail[i+1:]...)
			if err := rec(next, append(cur, avail[i])); err != nil {
				return err
			}
		}
		return nil
	}
	all := make([]int, k)
	for i := range all {
		all[i] = i
	}
	if err := rec(all, make([]int, 0, k)); err != nil {
		return 0, nil, err
	}
	return best, bestOrder, nil
}
