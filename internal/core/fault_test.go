package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// faultCtx threads a freshly parsed plan into a context, failing the test
// on a bad spec.
func faultCtx(t *testing.T, spec string) context.Context {
	t.Helper()
	plan, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return faultinject.With(context.Background(), plan)
}

// TestQuarantineCompletesUnderInjectedPanic: with FailQuarantine an
// injected evaluation panic is set aside — the search completes with a
// valid tile, the offending candidate on the quarantine list, and the
// matching telemetry event.
func TestQuarantineCompletesUnderInjectedPanic(t *testing.T) {
	nest := transpose(32)
	opt := testOpt(7)
	opt.FailurePolicy = FailQuarantine
	var cap telemetry.Capture
	opt.Observer = &cap
	res, err := OptimizeTiling(faultCtx(t, "eval.panic:after=3,times=1"), nest, opt)
	if err != nil {
		t.Fatalf("quarantine run failed: %v", err)
	}
	if len(res.Tile) != 2 {
		t.Fatalf("degraded run has no tile: %+v", res)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("quarantined = %v, want exactly one entry", res.Quarantined)
	}
	q := res.Quarantined[0]
	if q.Phase != "tiling" || !strings.Contains(q.Reason, "panic") || len(q.Values) == 0 {
		t.Fatalf("quarantine entry = %+v", q)
	}
	events := 0
	for _, e := range cap.Events() {
		if qe, ok := e.(telemetry.EvaluationQuarantined); ok {
			events++
			if qe.Search != "tiling" || qe.Reason != q.Reason {
				t.Fatalf("event %+v does not match entry %+v", qe, q)
			}
		}
	}
	if events != 1 {
		t.Fatalf("%d EvaluationQuarantined events, want 1", events)
	}
}

// TestQuarantineDeterministicPerSeedAndPlan: two runs with the same seed
// and freshly built identical fault plans produce identical results —
// faults fire in the serial entry section, so scheduling cannot move them.
func TestQuarantineDeterministicPerSeedAndPlan(t *testing.T) {
	run := func() *TilingResult {
		opt := testOpt(7)
		opt.FailurePolicy = FailQuarantine
		res, err := OptimizeTiling(faultCtx(t, "eval.panic:after=4,times=2"), transpose(32), opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Tile) != len(b.Tile) || a.Tile[0] != b.Tile[0] || a.Tile[1] != b.Tile[1] {
		t.Fatalf("tiles diverged: %v vs %v", a.Tile, b.Tile)
	}
	if a.GA.BestValue != b.GA.BestValue || a.GA.Evaluations != b.GA.Evaluations {
		t.Fatalf("GA traces diverged: %+v vs %+v", a.GA, b.GA)
	}
	if len(a.Quarantined) != len(b.Quarantined) {
		t.Fatalf("quarantine lists diverged: %v vs %v", a.Quarantined, b.Quarantined)
	}
	for i := range a.Quarantined {
		if a.Quarantined[i].Reason != b.Quarantined[i].Reason {
			t.Fatalf("quarantine %d diverged: %+v vs %+v", i, a.Quarantined[i], b.Quarantined[i])
		}
	}
}

// TestAbortPolicyFailsOnInjectedPanic: the default policy preserves
// today's contract — a broken evaluation fails the search.
func TestAbortPolicyFailsOnInjectedPanic(t *testing.T) {
	res, err := OptimizeTiling(faultCtx(t, "eval.panic:after=3,times=1"), transpose(32), testOpt(7))
	if err == nil {
		t.Fatalf("abort policy swallowed the fault: %+v", res)
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want the recovered panic", err)
	}
}

// TestPoliciesAgreeOnCleanRuns: with no fault plan, FailQuarantine is
// byte-for-byte the FailAbort search — the policy only matters when an
// evaluation actually fails.
func TestPoliciesAgreeOnCleanRuns(t *testing.T) {
	optA := testOpt(7)
	a, err := OptimizeTiling(context.Background(), transpose(32), optA)
	if err != nil {
		t.Fatal(err)
	}
	optQ := testOpt(7)
	optQ.FailurePolicy = FailQuarantine
	q, err := OptimizeTiling(context.Background(), transpose(32), optQ)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tile[0] != q.Tile[0] || a.Tile[1] != q.Tile[1] || a.GA.BestValue != q.GA.BestValue ||
		a.GA.Evaluations != q.GA.Evaluations || len(q.Quarantined) != 0 {
		t.Fatalf("clean runs diverged: %+v vs %+v (quarantined %v)", a.GA, q.GA, q.Quarantined)
	}
}

// TestWatchdogQuarantinesStalledEvaluation: an injected unbounded stall
// trips the StallTimeout watchdog; under FailQuarantine the search
// degrades to best-so-far instead of hanging.
func TestWatchdogQuarantinesStalledEvaluation(t *testing.T) {
	opt := testOpt(7)
	opt.FailurePolicy = FailQuarantine
	opt.StallTimeout = 50 * time.Millisecond
	res, err := OptimizeTiling(faultCtx(t, "eval.stall:after=5,times=1"), transpose(32), opt)
	if err != nil {
		t.Fatalf("stalled run did not degrade: %v", err)
	}
	if len(res.Quarantined) != 1 || !strings.Contains(res.Quarantined[0].Reason, "stalled") {
		t.Fatalf("quarantined = %+v, want one stalled entry", res.Quarantined)
	}
	if len(res.Tile) != 2 {
		t.Fatalf("degraded run has no tile: %+v", res)
	}
}

// TestWatchedDrainsContextAwareEvaluation: when the watchdog fires and
// the evaluation honours its context, the workers drain inside the grace
// period — ErrStalled is reported and nothing is abandoned.
func TestWatchedDrainsContextAwareEvaluation(t *testing.T) {
	abandoned := false
	_, err := watched(context.Background(), 5*time.Millisecond,
		func() { abandoned = true },
		func(ctx context.Context) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if abandoned {
		t.Fatal("drained evaluation was abandoned anyway")
	}
}

// TestWatchedAbandonsHungEvaluation: an evaluation that ignores its
// cancellation leaks; after the grace period the watchdog calls onHang so
// the owner can stop sharing state with the leaked goroutine.
func TestWatchedAbandonsHungEvaluation(t *testing.T) {
	old := stallGrace
	stallGrace = 10 * time.Millisecond
	t.Cleanup(func() { stallGrace = old })
	hung := make(chan struct{})
	t.Cleanup(func() { close(hung) })
	abandoned := false
	_, err := watched(context.Background(), 5*time.Millisecond,
		func() { abandoned = true },
		func(context.Context) (any, error) {
			<-hung // deliberately ignores ctx: a true hang
			return nil, nil
		})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if !abandoned {
		t.Fatal("hung evaluation did not trigger onHang")
	}
}

// TestWatchedPassthroughFastEvaluation: an evaluation that finishes in
// time passes its result through untouched.
func TestWatchedPassthroughFastEvaluation(t *testing.T) {
	v, err := watched(context.Background(), time.Second, nil,
		func(context.Context) (any, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("watched = %v, %v", v, err)
	}
}

func TestValidateFailureOptions(t *testing.T) {
	opt := testOpt(1)
	opt.FailurePolicy = FailurePolicy(9)
	if err := opt.Validate(); !errors.Is(err, ErrBadOption) {
		t.Fatalf("bad policy accepted: %v", err)
	}
	opt = testOpt(1)
	opt.StallTimeout = -time.Second
	if err := opt.Validate(); !errors.Is(err, ErrBadOption) {
		t.Fatalf("negative stall timeout accepted: %v", err)
	}
	if p, err := ParseFailurePolicy("quarantine"); err != nil || p != FailQuarantine {
		t.Fatalf("ParseFailurePolicy(quarantine) = %v, %v", p, err)
	}
	if p, err := ParseFailurePolicy(""); err != nil || p != FailAbort {
		t.Fatalf("ParseFailurePolicy(\"\") = %v, %v", p, err)
	}
	if _, err := ParseFailurePolicy("explode"); err == nil {
		t.Fatal("ParseFailurePolicy(explode) accepted")
	}
	if FailAbort.String() != "abort" || FailQuarantine.String() != "quarantine" {
		t.Fatal("FailurePolicy.String drifted")
	}
}
