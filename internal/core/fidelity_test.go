package core

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/evalcache"
	"repro/internal/ga"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/telemetry"
)

// fidOpt is the shared configuration of the fidelity tests: a small cache
// and sample so the race-enabled runs stay fast, three rungs of halving.
func fidOpt(seed uint64) Options {
	opt := testOpt(seed)
	opt.SamplePoints = 64
	opt.Fidelity = ga.Fidelity{Rungs: 3}
	return opt
}

// TestFidelityWorkerCountInvariant: the ladder schedules work per rung,
// but worker fan-out still sums the same per-point outcomes — every
// worker count must reproduce the same search bit for bit.
func TestFidelityWorkerCountInvariant(t *testing.T) {
	nest := transpose(64)
	opt := fidOpt(3)
	opt.Workers = 1
	base, err := OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	for workers := 2; workers <= 8; workers++ {
		opt.Workers = workers
		got, err := OptimizeTiling(context.Background(), nest, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got.Tile, base.Tile) || got.GA.BestValue != base.GA.BestValue {
			t.Fatalf("workers=%d: tile %v best %v != workers=1 tile %v best %v",
				workers, got.Tile, got.GA.BestValue, base.Tile, base.GA.BestValue)
		}
		if !reflect.DeepEqual(got.GA.History, base.GA.History) {
			t.Fatalf("workers=%d: generation history diverged", workers)
		}
	}
}

// TestFidelityIslandsDeterministic: with the ladder on, each island runs
// its own successive halving — two runs of the same multi-island search
// must match exactly, and every island count must succeed.
func TestFidelityIslandsDeterministic(t *testing.T) {
	nest := transpose(64)
	for _, islands := range []int{2, 3} {
		opt := fidOpt(9)
		opt.Islands = islands
		a, err := OptimizeTiling(context.Background(), nest, opt)
		if err != nil {
			t.Fatalf("islands=%d: %v", islands, err)
		}
		b, err := OptimizeTiling(context.Background(), nest, opt)
		if err != nil {
			t.Fatalf("islands=%d rerun: %v", islands, err)
		}
		if !reflect.DeepEqual(a.Tile, b.Tile) || a.GA.BestValue != b.GA.BestValue ||
			!reflect.DeepEqual(a.GA.History, b.GA.History) {
			t.Fatalf("islands=%d: reruns diverged: %v/%v vs %v/%v",
				islands, a.Tile, a.GA.BestValue, b.Tile, b.GA.BestValue)
		}
	}
}

// TestFidelityQualityParity: at the same evaluation budget the ladder
// searches more candidates, so its final tile — re-scored at full
// fidelity on the identical sample — must come out at least as good
// within 1% on the tiling-responsive kernels.
func TestFidelityQualityParity(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(t *testing.T) *ir.Nest
	}{
		{"MM", func(t *testing.T) *ir.Nest { return kernelNest(t, "MM", 64) }},
		{"T2D", func(t *testing.T) *ir.Nest { return transpose(64) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nest := tc.mk(t)
			off := fidOpt(7)
			off.Fidelity = ga.Fidelity{}
			off.MaxEvaluations = 150
			offRes, err := OptimizeTiling(context.Background(), nest, off)
			if err != nil {
				t.Fatal(err)
			}
			on := fidOpt(7)
			on.MaxEvaluations = 150
			onRes, err := OptimizeTiling(context.Background(), nest, on)
			if err != nil {
				t.Fatal(err)
			}
			// Score both winners at full fidelity on the same fixed sample.
			probe := off
			probe.MaxEvaluations = 0
			f, _, err := TileObjective(nest, probe)
			if err != nil {
				t.Fatal(err)
			}
			offFull, onFull := f(offRes.Tile), f(onRes.Tile)
			t.Logf("off: tile=%v full=%v evals=%d; on: tile=%v full=%v evals=%d",
				offRes.Tile, offFull, offRes.GA.Evaluations, onRes.Tile, onFull, onRes.GA.Evaluations)
			if onFull > offFull*1.01 {
				t.Fatalf("fidelity tile %v (full-fidelity %v) worse than 1%% over classic tile %v (%v)",
					onRes.Tile, onFull, offRes.Tile, offFull)
			}
		})
	}
}

// kernelNest instantiates a catalog kernel or fails the test.
func kernelNest(t *testing.T, name string, size int64) *ir.Nest {
	t.Helper()
	k, ok := kernels.Get(name)
	if !ok {
		t.Fatalf("kernel %s missing from catalog", name)
	}
	nest, err := k.Instance(size)
	if err != nil {
		t.Fatal(err)
	}
	return nest
}

// TestFidelityCheckpointResumeBitForBit: interrupt a fidelity search at a
// generation boundary and resume from the JSON round-tripped checkpoint;
// the resumed run must replay the uninterrupted one exactly — the v3
// snapshot carries the point budget spent, so the ladder's budget
// trajectory picks up where it left off.
func TestFidelityCheckpointResumeBitForBit(t *testing.T) {
	nest := transpose(64)
	opt := fidOpt(11)
	opt.MaxEvaluations = 400

	full, err := OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := interruptedSearch(t, nest, opt, 2)
	if ckpt.Version != 3 {
		t.Fatalf("fidelity checkpoint Version = %d, want 3", ckpt.Version)
	}
	if ckpt.Fidelity == nil || ckpt.Fidelity.Rungs != 3 {
		t.Fatalf("fidelity checkpoint state missing: %+v", ckpt.Fidelity)
	}
	if ckpt.EvalPoints == 0 {
		t.Fatal("fidelity checkpoint records no evaluation points")
	}

	opt2 := opt
	opt2.ResumeFrom = ckpt
	resumed, err := OptimizeTiling(context.Background(), nest, opt2)
	if err != nil {
		t.Fatalf("resumed search errored: %v", err)
	}
	if !reflect.DeepEqual(resumed.Tile, full.Tile) ||
		resumed.GA.BestValue != full.GA.BestValue ||
		resumed.GA.Generations != full.GA.Generations ||
		!reflect.DeepEqual(resumed.GA.History, full.GA.History) {
		t.Fatalf("resumed run diverged from uninterrupted: %v/%v/%d vs %v/%v/%d",
			resumed.Tile, resumed.GA.BestValue, resumed.GA.Generations,
			full.Tile, full.GA.BestValue, full.GA.Generations)
	}
}

// TestFidelityCheckpointRejectsMismatch: a fidelity checkpoint cannot
// seed a classic run and vice versa — silent trajectory corruption must
// be a typed error instead.
func TestFidelityCheckpointRejectsMismatch(t *testing.T) {
	nest := transpose(64)
	ckpt := interruptedSearch(t, nest, fidOpt(11), 1)

	classic := fidOpt(11)
	classic.Fidelity = ga.Fidelity{}
	classic.ResumeFrom = ckpt
	if _, err := OptimizeTiling(context.Background(), nest, classic); err == nil {
		t.Fatal("classic run accepted a fidelity checkpoint")
	}

	plain := interruptedSearch(t, nest, func() Options {
		o := fidOpt(11)
		o.Fidelity = ga.Fidelity{}
		return o
	}(), 1)
	fid := fidOpt(11)
	fid.ResumeFrom = plain
	if _, err := OptimizeTiling(context.Background(), nest, fid); err == nil {
		t.Fatal("fidelity run accepted a classic checkpoint")
	}
}

// TestFidelityOffByteCompat: with the ladder off, nothing of the feature
// leaks into the observable encodings — checkpoints carry no fidelity or
// point-count fields and the telemetry stream carries no rung tags, so
// classic runs stay byte-identical to earlier releases.
func TestFidelityOffByteCompat(t *testing.T) {
	nest := transpose(64)
	opt := testOpt(5)
	opt.SamplePoints = 64
	var ckptJSON bytes.Buffer
	opt.Checkpoint = func(c *ga.Checkpoint) error {
		ckptJSON.Reset()
		return ga.WriteCheckpoint(&ckptJSON, c)
	}
	var cap telemetry.Capture
	opt.Observer = &cap
	if _, err := OptimizeTiling(context.Background(), nest, opt); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"fidelity", "eval_points", "rung"} {
		if strings.Contains(ckptJSON.String(), needle) {
			t.Errorf("classic checkpoint JSON contains %q", needle)
		}
	}
	for _, e := range cap.Events() {
		switch ev := e.(type) {
		case telemetry.EvaluationRung:
			t.Fatalf("classic run emitted EvaluationRung: %+v", ev)
		case telemetry.EvaluationBatch:
			if ev.Rung != 0 {
				t.Fatalf("classic run tagged a batch with rung %d", ev.Rung)
			}
		}
	}
}

// TestFidelityRungTelemetry: a fidelity run reports its ladder — one
// EvaluationRung event per completed rung with consistent promoted and
// pruned counts, and evaluation batches tagged with their rung.
func TestFidelityRungTelemetry(t *testing.T) {
	nest := transpose(64)
	opt := fidOpt(5)
	opt.Workers = 1
	var cap telemetry.Capture
	opt.Observer = &cap
	if _, err := OptimizeTiling(context.Background(), nest, opt); err != nil {
		t.Fatal(err)
	}
	var rungs, tagged int
	for _, e := range cap.Events() {
		switch ev := e.(type) {
		case telemetry.EvaluationRung:
			rungs++
			if ev.Search != "tiling" || ev.Rung < 1 || ev.Points <= 0 || ev.Candidates < 0 {
				t.Fatalf("malformed EvaluationRung: %+v", ev)
			}
			if ev.Promoted+ev.Pruned > ev.Candidates {
				t.Fatalf("rung accounting broken: %+v", ev)
			}
		case telemetry.EvaluationBatch:
			if ev.Rung > 0 {
				tagged++
			}
		}
	}
	if rungs == 0 {
		t.Fatal("fidelity run emitted no EvaluationRung events")
	}
	if tagged == 0 {
		t.Fatal("no evaluation batch carried a rung tag")
	}
}

// TestFidelitySharedCacheTransparent: prefix-statistics caching is
// result-transparent — a fidelity search returns bit-identical results
// with no cache, a cold cache, and a cache pre-warmed by an identical
// earlier search.
func TestFidelitySharedCacheTransparent(t *testing.T) {
	nest := transpose(64)
	base := fidOpt(13)
	plain, err := OptimizeTiling(context.Background(), nest, base)
	if err != nil {
		t.Fatal(err)
	}
	shared := evalcache.New(evalcache.Config{})
	warm := base
	warm.SharedCache = shared
	cold, err := OptimizeTiling(context.Background(), nest, warm)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := OptimizeTiling(context.Background(), nest, warm)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]*TilingResult{"cold": cold, "warm": hot} {
		if !reflect.DeepEqual(got.Tile, plain.Tile) || got.GA.BestValue != plain.GA.BestValue ||
			!reflect.DeepEqual(got.GA.History, plain.GA.History) {
			t.Fatalf("%s cached run diverged: %v/%v vs uncached %v/%v",
				name, got.Tile, got.GA.BestValue, plain.Tile, plain.GA.BestValue)
		}
	}
	if m := shared.Metrics(); m.Hits == 0 {
		t.Fatalf("warm rerun hit the shared cache 0 times: %+v", m)
	}
}

// TestFidelityBudgetStops: with the ladder on the budget is charged in
// sample points (MaxEvaluations × sample size), so a tight budget still
// stops the search with StopBudget and a valid best-so-far.
func TestFidelityBudgetStops(t *testing.T) {
	nest := transpose(64)
	opt := fidOpt(17)
	opt.MaxEvaluations = 40
	res, err := OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != ga.StopBudget {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, ga.StopBudget)
	}
	if len(res.Tile) != nest.Depth() {
		t.Fatalf("budget-stopped run returned no tile: %v", res.Tile)
	}
}

// TestFidelityOptionsValidate: the Options layer rejects bad ladders and
// incompatible combinations up front with ErrBadOption.
func TestFidelityOptionsValidate(t *testing.T) {
	bad := []Options{
		{Cache: testOpt(1).Cache, Fidelity: ga.Fidelity{Rungs: -1}},
		{Cache: testOpt(1).Cache, Fidelity: ga.Fidelity{Rungs: 2, Eta: 1}},
		{Cache: testOpt(1).Cache, Fidelity: ga.Fidelity{Rungs: 2, MinPoints: -1}},
	}
	for _, opt := range bad {
		if err := opt.Validate(); !errors.Is(err, ErrBadOption) {
			t.Errorf("Validate(%+v) = %v, want ErrBadOption", opt.Fidelity, err)
		}
	}
	ok := testOpt(1)
	ok.Fidelity = ga.Fidelity{Rungs: 3}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate(valid fidelity) = %v", err)
	}
}

// TestFidelityMultiLevelRejected: the multi-level search cannot resume
// partial prefix evaluations and must refuse the ladder explicitly.
func TestFidelityMultiLevelRejected(t *testing.T) {
	nest := transpose(64)
	opt := fidOpt(1)
	levels := []Level{{Cache: opt.Cache, MissPenalty: 1}}
	_, err := OptimizeTilingMultiLevel(context.Background(), nest, levels, opt)
	if !errors.Is(err, ErrBadOption) {
		t.Fatalf("OptimizeTilingMultiLevel = %v, want ErrBadOption", err)
	}
}

// TestFidelityOtherSearches: the ladder drives every GA search, not just
// plain tiling — order, padding and joint searches complete and return
// well-formed results with rungs enabled.
func TestFidelityOtherSearches(t *testing.T) {
	nest := addLike(24, 2048)
	opt := fidOpt(19)
	opt.MaxEvaluations = 60
	if res, err := OptimizeTilingOrder(context.Background(), nest, opt); err != nil {
		t.Fatalf("order: %v", err)
	} else if len(res.Tile) != nest.Depth() || len(res.Order) != nest.Depth() {
		t.Fatalf("order: malformed result %v/%v", res.Tile, res.Order)
	}
	if res, err := OptimizePadding(context.Background(), nest, opt); err != nil {
		t.Fatalf("padding: %v", err)
	} else if res.PaddedNest == nil {
		t.Fatal("padding: nil padded nest")
	}
	if res, err := OptimizeJoint(context.Background(), nest, opt); err != nil {
		t.Fatalf("joint: %v", err)
	} else if len(res.Tile) != nest.Depth() {
		t.Fatalf("joint: malformed tile %v", res.Tile)
	}
}
