package core

import (
	"context"
	"repro/internal/ir"
	"testing"

	"repro/internal/cache"
)

func TestOptimizeTilingMultiLevel(t *testing.T) {
	nest := transpose(96) // 2 × 72KB arrays
	levels := []Level{
		{Cache: cache.Config{Size: 2048, LineSize: 32, Assoc: 1}, MissPenalty: 10},
		{Cache: cache.Config{Size: 16 * 1024, LineSize: 32, Assoc: 1}, MissPenalty: 100},
	}
	res, err := OptimizeTilingMultiLevel(context.Background(), nest, levels, Options{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 2 {
		t.Fatalf("levels = %d", len(res.Levels))
	}
	if res.CostAfter >= res.CostBefore {
		t.Fatalf("cost did not improve: %.3f -> %.3f", res.CostBefore, res.CostAfter)
	}
	// The chosen tile must help BOTH levels substantially — the point of
	// the weighted objective.
	for _, l := range res.Levels {
		if l.Before.ReplacementRatio > 0.1 && l.After.ReplacementRatio > l.Before.ReplacementRatio/2 {
			t.Errorf("level %v: %.1f%% -> %.1f%%", l.Level.Cache,
				100*l.Before.ReplacementRatio, 100*l.After.ReplacementRatio)
		}
	}
}

func TestOptimizeTilingMultiLevelErrors(t *testing.T) {
	nest := transpose(16)
	if _, err := OptimizeTilingMultiLevel(context.Background(), nest, nil, Options{}); err == nil {
		t.Fatal("empty levels accepted")
	}
	bad := []Level{{Cache: cache.Config{Size: 100, LineSize: 32, Assoc: 1}, MissPenalty: 1}}
	if _, err := OptimizeTilingMultiLevel(context.Background(), nest, bad, Options{}); err == nil {
		t.Fatal("invalid cache accepted")
	}
	neg := []Level{{Cache: cache.DM8K, MissPenalty: 0}}
	if _, err := OptimizeTilingMultiLevel(context.Background(), nest, neg, Options{}); err == nil {
		t.Fatal("zero penalty accepted")
	}
}

// TestMultiLevelBeatsL1OnlyOnL2: optimizing only the small L1 can pick
// tiles that thrash a larger L2's long-distance reuse; the weighted
// objective must do at least as well on combined cost as the L1-only tile.
func TestMultiLevelBeatsL1OnlyOnL2(t *testing.T) {
	nest := transpose(96)
	l1 := cache.Config{Size: 2048, LineSize: 32, Assoc: 1}
	l2 := cache.Config{Size: 16 * 1024, LineSize: 32, Assoc: 1}
	levels := []Level{{Cache: l1, MissPenalty: 10}, {Cache: l2, MissPenalty: 100}}

	multi, err := OptimizeTilingMultiLevel(context.Background(), nest, levels, Options{Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	l1only, err := OptimizeTiling(context.Background(), nest, Options{Cache: l1, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate the L1-only tile under the same multi-level cost and the
	// same shared sample: the weighted search must not lose to it.
	ref := tileCost(t, nest, levels, l1only.Tile)
	if multi.CostAfter > ref+1e-9 {
		t.Fatalf("multi-level cost %.4f worse than L1-only tile's cost %.4f",
			multi.CostAfter, ref)
	}
}

// tileCost computes the weighted cost of a fixed tile under the same
// sample the seed-44 searches use.
func tileCost(t *testing.T, nest *ir.Nest, levels []Level, tile []int64) float64 {
	t.Helper()
	opt := Options{Seed: 44, Cache: levels[0].Cache}
	opt = opt.withDefaults()
	var c float64
	for _, l := range levels {
		// One evaluator per level: the sample draw is deterministic per
		// seed, so every level sees the identical point set.
		lopt := opt
		lopt.Cache = l.Cache
		ev, err := newEvaluator(nest, lopt)
		if err != nil {
			t.Fatal(err)
		}
		accesses := float64(len(ev.sample.Points) * len(nest.Refs))
		st, err := ev.tiled(context.Background(), nest, tile)
		if err != nil {
			t.Fatal(err)
		}
		c += l.MissPenalty * float64(st.Replacement) / accesses
	}
	return c
}
