package core

import (
	"context"
	"testing"

	"repro/internal/cache"
)

// TestTileObjectiveDeterministicAndBounded: the exposed objective is
// deterministic for a seed and poisons invalid candidates instead of
// failing.
func TestTileObjective(t *testing.T) {
	nest := transpose(32)
	opt := Options{Cache: cache.Config{Size: 1024, LineSize: 32, Assoc: 1}, Seed: 8}
	obj, box, err := TileObjective(nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	if box.Extent(0) != 32 || box.Extent(1) != 32 {
		t.Fatalf("box extents wrong")
	}
	a := obj([]int64{8, 8})
	b := obj([]int64{8, 8})
	if a != b {
		t.Fatalf("objective not deterministic: %v vs %v", a, b)
	}
	full := obj([]int64{32, 32})
	if full < a {
		t.Fatalf("untiled (%v) better than 8x8 (%v) on this transpose", full, a)
	}
	// Out-of-range candidates are clamped, not fatal.
	if got := obj([]int64{0, 99}); got < 0 {
		t.Fatalf("clamped objective = %v", got)
	}
	// Non-rectangular nest is rejected.
	bad := transpose(8)
	bad.Loops[0].Step = 2
	if _, _, err := TileObjective(bad, opt); err == nil {
		t.Fatal("non-rectangular accepted")
	}
}

// TestBestInterchangeIdentityCovered: on a symmetric kernel the identity
// order must be among the evaluated ones (best ratio ≤ untiled ratio).
func TestBestInterchange(t *testing.T) {
	nest := transpose(48)
	opt := Options{Cache: cache.Config{Size: 1024, LineSize: 32, Assoc: 1}, Seed: 4}
	best, order, err := BestInterchange(context.Background(), nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	obj, _, err := TileObjective(nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	accesses := float64(164 * len(nest.Refs))
	untiled := obj([]int64{48, 48}) / accesses
	if best > untiled+1e-9 {
		t.Fatalf("best interchange %.3f worse than identity %.3f", best, untiled)
	}
	bad := transpose(8)
	bad.Loops[0].Step = 2
	if _, _, err := BestInterchange(context.Background(), bad, opt); err == nil {
		t.Fatal("non-rectangular accepted")
	}
}

// TestOrderedTilingRejectsBadNest covers the error paths of the order and
// multi-level searches.
func TestOrderedAndMultiLevelErrors(t *testing.T) {
	bad := transpose(8)
	bad.Loops[0].Step = 2
	if _, err := OptimizeTilingOrder(context.Background(), bad, Options{Cache: cache.DM8K}); err == nil {
		t.Fatal("order search accepted non-rectangular nest")
	}
	if _, err := OptimizeJoint(context.Background(), bad, Options{Cache: cache.DM8K}); err == nil {
		t.Fatal("joint search accepted non-rectangular nest")
	}
	if _, err := OptimizePaddingThenTiling(context.Background(), bad, Options{Cache: cache.DM8K}); err == nil {
		t.Fatal("sequential search accepted non-rectangular nest")
	}
}
