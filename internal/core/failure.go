package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// FailurePolicy selects how a search treats a candidate whose objective
// evaluation fails (an analyzer panic, an injected fault, a stalled
// evaluation cut off by the watchdog). Cancellation and deadline expiry
// are never failures under either policy: the GA engine turns them into a
// StopReason and the search returns its best-so-far.
type FailurePolicy int

const (
	// FailAbort (the zero value, and the historical behaviour) records
	// the first failure and reports it as the search's error after the GA
	// drains: one broken evaluation fails the whole search.
	FailAbort FailurePolicy = iota
	// FailQuarantine sets the offending candidate aside instead: it is
	// assigned the worst finite fitness (so it can never win, but the
	// arithmetic of generation statistics and checkpoints stays finite),
	// an EvaluationQuarantined telemetry event is emitted, and the search
	// continues. The quarantine list rides on the result; a run with a
	// non-empty list completed in degraded mode.
	FailQuarantine
)

func (p FailurePolicy) String() string {
	if p == FailQuarantine {
		return "quarantine"
	}
	return "abort"
}

// ParseFailurePolicy parses the CLI spelling of a policy.
func ParseFailurePolicy(s string) (FailurePolicy, error) {
	switch s {
	case "", "abort":
		return FailAbort, nil
	case "quarantine":
		return FailQuarantine, nil
	}
	return FailAbort, fmt.Errorf("core: unknown failure policy %q (want abort or quarantine)", s)
}

// QuarantinedEval records one candidate set aside under FailQuarantine.
type QuarantinedEval struct {
	// Values is the candidate's genome value vector as the objective saw
	// it (tile sizes for the tiling searches, pad parameters + tile sizes
	// for the combined ones).
	Values []int64
	// Reason is the failure: the recovered panic value or error text.
	Reason string
	// Phase is the search label the candidate belonged to ("tiling",
	// "padding", ...).
	Phase string
}

// ErrStalled marks an objective evaluation that exceeded
// Options.StallTimeout and was cut off by the watchdog. Under
// FailQuarantine the stalled candidate is quarantined and the search
// degrades to best-so-far instead of hanging; under FailAbort the search
// reports this error.
var ErrStalled = errors.New("core: evaluation stalled")

// quarantineFitness is the objective value a quarantined candidate gets:
// the worst finite float64, so the candidate never competes but — unlike
// +Inf — keeps generation averages and checkpointed memo values
// JSON-serialisable.
func quarantineFitness() float64 { return math.MaxFloat64 }

// evalGuard wraps a search's objective closures with the failure policy:
// panics are recovered, errors are either noted for the post-run abort or
// converted into a quarantine entry, and context cancellation always
// passes through as a plain poison value. The guard is shared across the
// phases of one search, accumulating every quarantined candidate.
type evalGuard struct {
	policy FailurePolicy
	obs    telemetry.Recorder

	mu   sync.Mutex
	sink errSink
	quar []QuarantinedEval
}

// newGuard builds the guard for one search run.
func (o Options) newGuard() *evalGuard {
	return &evalGuard{policy: o.FailurePolicy, obs: o.Observer}
}

// objective wraps fn — the raw (value, error) evaluation of one candidate
// — into the ga.Objective the engine calls. label tags quarantine entries
// with the search phase.
func (g *evalGuard) objective(label string, fn func(v []int64) (float64, error)) func([]int64) float64 {
	return func(v []int64) (val float64) {
		defer func() {
			if r := recover(); r != nil {
				val = g.fail(label, v, fmt.Errorf("core: objective panic: %v", r))
			}
		}()
		f, err := fn(v)
		if err != nil {
			return g.fail(label, v, err)
		}
		return f
	}
}

// fail applies the policy to one failed evaluation and returns the
// fitness the candidate gets.
func (g *evalGuard) fail(label string, v []int64, err error) float64 {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// A bounded run winding down, not a fault.
		return poison()
	}
	if g.policy != FailQuarantine {
		g.mu.Lock()
		g.sink.note(err)
		g.mu.Unlock()
		return poison()
	}
	values := append([]int64(nil), v...)
	g.mu.Lock()
	g.quar = append(g.quar, QuarantinedEval{Values: values, Reason: err.Error(), Phase: label})
	g.mu.Unlock()
	if g.obs != nil {
		g.obs.Event(telemetry.EvaluationQuarantined{Search: label, Values: values, Reason: err.Error()})
	}
	return quarantineFitness()
}

// err returns the first aborting failure (nil under FailQuarantine).
func (g *evalGuard) err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sink.err
}

// quarantined returns the accumulated quarantine list (nil when clean).
func (g *evalGuard) quarantined() []QuarantinedEval {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.quar) == 0 {
		return nil
	}
	return append([]QuarantinedEval(nil), g.quar...)
}

// stallGrace is how long the watchdog waits, after cancelling a stalled
// evaluation, for its workers to notice and drain before declaring them
// leaked and abandoning the analyzer pool. Package-level so tests can
// shrink it.
var stallGrace = 250 * time.Millisecond

// watched runs one evaluation under the stall watchdog: if fn has not
// returned within stall, its context is cancelled with ErrStalled and the
// evaluation fails with that error instead of hanging the search. Workers
// that honour their context drain within the grace period and the pooled
// analyzers stay reusable; a worker that truly hangs leaks its goroutine,
// and onHang (when non-nil) is called so the owner can abandon shared
// state the leaked goroutine still references.
func watched(ctx context.Context, stall time.Duration, onHang func(),
	fn func(context.Context) (any, error)) (any, error) {
	wctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	timer := time.AfterFunc(stall, func() { cancel(ErrStalled) })
	defer timer.Stop()
	type result struct {
		v   any
		err error
	}
	done := make(chan result, 1)
	go func() {
		v, err := fn(wctx)
		done <- result{v, err}
	}()
	stalled := func() bool { return errors.Is(context.Cause(wctx), ErrStalled) }
	wrap := func(r result) (any, error) {
		if r.err != nil && stalled() {
			return r.v, fmt.Errorf("%w after %v", ErrStalled, stall)
		}
		return r.v, r.err
	}
	select {
	case r := <-done:
		return wrap(r)
	case <-wctx.Done():
		grace := time.NewTimer(stallGrace)
		defer grace.Stop()
		select {
		case r := <-done:
			return wrap(r)
		case <-grace.C:
			// The evaluation ignored its cancellation: its goroutines are
			// leaked. Hand shared state back to the owner and fail.
			if onHang != nil {
				onHang()
			}
			if stalled() {
				return nil, fmt.Errorf("%w after %v (workers leaked)", ErrStalled, stall)
			}
			return nil, context.Cause(wctx)
		}
	}
}
