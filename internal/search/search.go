// Package search implements the alternative global optimizers the paper's
// §3.1 surveys before settling on a genetic algorithm — simulated
// annealing (Kirkpatrick et al.), pure random search, and stochastic hill
// climbing with restarts — over the same nonlinear integer objective
// f(T₁..Tk). They share a common Problem interface so benchmarks can
// compare search quality at equal evaluation budgets.
package search

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Problem is a bound-constrained integer minimisation problem: find
// x ∈ ∏[Lo[d], Hi[d]] minimising Objective(x).
type Problem struct {
	Lo, Hi    []int64
	Objective func(x []int64) float64
}

// Validate checks the bounds.
func (p Problem) Validate() error {
	if len(p.Lo) == 0 || len(p.Lo) != len(p.Hi) {
		return fmt.Errorf("search: bad bounds rank %d/%d", len(p.Lo), len(p.Hi))
	}
	for d := range p.Lo {
		if p.Lo[d] > p.Hi[d] {
			return fmt.Errorf("search: empty range in dimension %d", d)
		}
	}
	if p.Objective == nil {
		return fmt.Errorf("search: nil objective")
	}
	return nil
}

func (p Problem) dims() int { return len(p.Lo) }

func (p Problem) sample(r *rand.Rand, x []int64) {
	for d := range x {
		x[d] = p.Lo[d] + r.Int64N(p.Hi[d]-p.Lo[d]+1)
	}
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Result reports one optimisation run.
type Result struct {
	Best        []int64
	BestValue   float64
	Evaluations int
}

// memoized wraps an objective with a seen-set so Evaluations counts
// distinct candidates, mirroring the GA engine's accounting.
type memoized struct {
	f     func([]int64) float64
	seen  map[string]float64
	calls int
}

func newMemo(f func([]int64) float64) *memoized {
	return &memoized{f: f, seen: map[string]float64{}}
}

func (m *memoized) eval(x []int64) float64 {
	key := fmt.Sprint(x)
	if v, ok := m.seen[key]; ok {
		return v
	}
	v := m.f(x)
	m.seen[key] = v
	m.calls++
	return v
}

// Random draws budget uniform candidates and keeps the best — the
// baseline any structured search must beat.
func Random(p Problem, budget int, seed uint64) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	r := rand.New(rand.NewPCG(seed, seed^0x51f5a7d3))
	m := newMemo(p.Objective)
	x := make([]int64, p.dims())
	best := Result{BestValue: math.Inf(1)}
	for i := 0; i < budget; i++ {
		p.sample(r, x)
		if v := m.eval(x); v < best.BestValue {
			best.BestValue = v
			best.Best = append([]int64(nil), x...)
		}
	}
	best.Evaluations = m.calls
	return best, nil
}

// HillClimb runs first-improvement stochastic hill climbing with random
// restarts: from a random point, propose geometric steps in random
// coordinates, accept improvements, restart when a local minimum wastes
// patience proposals.
func HillClimb(p Problem, budget int, seed uint64) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	r := rand.New(rand.NewPCG(seed, seed^0x2545f491))
	m := newMemo(p.Objective)
	best := Result{BestValue: math.Inf(1)}
	x := make([]int64, p.dims())
	cand := make([]int64, p.dims())
	const patience = 30

	// Memoised repeats are free but must not spin forever on small or
	// exhausted search spaces: bound total proposals as well as distinct
	// evaluations.
	for attempts := 0; m.calls < budget && attempts < 50*budget; attempts++ {
		p.sample(r, x)
		cur := m.eval(x)
		if cur < best.BestValue {
			best.BestValue = cur
			best.Best = append([]int64(nil), x...)
		}
		stale := 0
		for stale < patience && m.calls < budget {
			attempts++
			if attempts >= 50*budget {
				break
			}
			copy(cand, x)
			d := int(r.Int64N(int64(p.dims())))
			span := p.Hi[d] - p.Lo[d]
			// Geometric step: mostly local, occasionally long-range.
			step := int64(1) << r.Int64N(int64(bits(span)+1))
			if r.Int64N(2) == 0 {
				step = -step
			}
			cand[d] = clamp(cand[d]+step, p.Lo[d], p.Hi[d])
			v := m.eval(cand)
			if v < cur {
				cur = v
				copy(x, cand)
				stale = 0
				if v < best.BestValue {
					best.BestValue = v
					best.Best = append([]int64(nil), cand...)
				}
			} else {
				stale++
			}
		}
	}
	best.Evaluations = m.calls
	return best, nil
}

// Anneal is simulated annealing with geometric cooling: the acceptance
// temperature starts at a fraction of the initial objective value and
// decays so that the budget's end is effectively greedy.
func Anneal(p Problem, budget int, seed uint64) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	r := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	m := newMemo(p.Objective)
	x := make([]int64, p.dims())
	cand := make([]int64, p.dims())
	p.sample(r, x)
	cur := m.eval(x)
	best := Result{BestValue: cur, Best: append([]int64(nil), x...)}

	temp := math.Max(cur/5, 1)
	cool := math.Pow(1e-3, 1/math.Max(float64(budget), 1)) // temp*cool^budget = temp/1000

	// Bounded proposals: memoised repeats must not spin forever once the
	// reachable neighbourhood is exhausted.
	for attempts := 0; m.calls < budget && attempts < 50*budget; attempts++ {
		copy(cand, x)
		d := int(r.Int64N(int64(p.dims())))
		span := p.Hi[d] - p.Lo[d]
		step := int64(1) << r.Int64N(int64(bits(span)+1))
		if r.Int64N(2) == 0 {
			step = -step
		}
		cand[d] = clamp(cand[d]+step, p.Lo[d], p.Hi[d])
		v := m.eval(cand)
		if v <= cur || r.Float64() < math.Exp((cur-v)/math.Max(temp, 1e-9)) {
			cur = v
			copy(x, cand)
			if v < best.BestValue {
				best.BestValue = v
				best.Best = append([]int64(nil), cand...)
			}
		}
		temp *= cool
	}
	best.Evaluations = m.calls
	return best, nil
}

// bits returns the bit length of v (0 for 0).
func bits(v int64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// TileProblem adapts a tile-size search space to a Problem: dimensions are
// the loop extents, the objective is supplied by core.TileObjective.
func TileProblem(extents []int64, objective func([]int64) float64) Problem {
	lo := make([]int64, len(extents))
	hi := make([]int64, len(extents))
	for d, e := range extents {
		lo[d] = 1
		hi[d] = e
	}
	return Problem{Lo: lo, Hi: hi, Objective: objective}
}
