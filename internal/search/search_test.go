package search

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/tiling"
)

func sphere(target []int64) func([]int64) float64 {
	return func(x []int64) float64 {
		var s float64
		for d := range x {
			diff := float64(x[d] - target[d])
			s += diff * diff
		}
		return s
	}
}

func boundsProblem(n int, hi int64, f func([]int64) float64) Problem {
	lo := make([]int64, n)
	his := make([]int64, n)
	for d := 0; d < n; d++ {
		lo[d] = 1
		his[d] = hi
	}
	return Problem{Lo: lo, Hi: his, Objective: f}
}

func TestValidate(t *testing.T) {
	good := boundsProblem(2, 10, sphere([]int64{1, 1}))
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Problem{
		{},
		{Lo: []int64{1}, Hi: []int64{2, 3}, Objective: func([]int64) float64 { return 0 }},
		{Lo: []int64{5}, Hi: []int64{2}, Objective: func([]int64) float64 { return 0 }},
		{Lo: []int64{1}, Hi: []int64{2}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestOptimizersFindSphereMinimum: all three metaheuristics reach the
// neighbourhood of a smooth minimum within a modest budget.
func TestOptimizersFindSphereMinimum(t *testing.T) {
	target := []int64{13, 47}
	p := boundsProblem(2, 64, sphere(target))
	for name, run := range map[string]func(Problem, int, uint64) (Result, error){
		"random": Random, "hillclimb": HillClimb, "anneal": Anneal,
	} {
		res, err := run(p, 600, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.BestValue > 50 {
			t.Errorf("%s: best %v value %v too far from optimum", name, res.Best, res.BestValue)
		}
		if res.Evaluations == 0 || res.Evaluations > 600 {
			t.Errorf("%s: evaluations = %d", name, res.Evaluations)
		}
	}
}

// TestStructuredBeatsRandomOnNarrowValley: hill climbing and annealing
// exploit structure a uniform sampler cannot on a narrow 3D valley with a
// tiny budget relative to the space (64³ points, 300 evals).
func TestStructuredBeatsRandomOnNarrowValley(t *testing.T) {
	target := []int64{9, 33, 57}
	valley := func(x []int64) float64 {
		var s float64
		for d := range x {
			s += math.Abs(float64(x[d] - target[d]))
		}
		return s
	}
	p := boundsProblem(3, 64, valley)
	// Average over seeds to avoid flaky single-run comparisons.
	var randSum, hillSum, annealSum float64
	const runs = 10
	for seed := uint64(0); seed < runs; seed++ {
		r, err := Random(p, 300, seed)
		if err != nil {
			t.Fatal(err)
		}
		h, err := HillClimb(p, 300, seed)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Anneal(p, 300, seed)
		if err != nil {
			t.Fatal(err)
		}
		randSum += r.BestValue
		hillSum += h.BestValue
		annealSum += a.BestValue
	}
	if hillSum >= randSum {
		t.Errorf("hill climbing (%v) not better than random (%v) on average", hillSum/runs, randSum/runs)
	}
	if annealSum >= randSum {
		t.Errorf("annealing (%v) not better than random (%v) on average", annealSum/runs, randSum/runs)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	p := boundsProblem(2, 100, sphere([]int64{50, 50}))
	for name, run := range map[string]func(Problem, int, uint64) (Result, error){
		"random": Random, "hillclimb": HillClimb, "anneal": Anneal,
	} {
		a, _ := run(p, 200, 7)
		b, _ := run(p, 200, 7)
		if a.BestValue != b.BestValue || a.Evaluations != b.Evaluations {
			t.Errorf("%s: non-deterministic", name)
		}
	}
}

// TestTileProblemOnRealObjective wires the metaheuristics to the actual
// §3.1 objective on matrix multiply and checks they, too, remove most
// replacement misses — while the GA remains the reference (compared in
// BenchmarkOptimizerShootout).
func TestTileProblemOnRealObjective(t *testing.T) {
	k, _ := kernels.Get("MM")
	nest, err := k.Instance(100)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{Cache: cache.DM8K, Seed: 3}
	obj, box, err := core.TileObjective(nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	extents := make([]int64, nest.Depth())
	for d := range extents {
		extents[d] = box.Extent(d)
	}
	p := TileProblem(extents, obj)
	untiled := obj(extents) // full tiles = original order
	for name, run := range map[string]func(Problem, int, uint64) (Result, error){
		"anneal": Anneal, "hillclimb": HillClimb,
	} {
		res, err := run(p, 450, 3) // the GA's nominal budget
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.BestValue > untiled/2 {
			t.Errorf("%s: best %v misses %v vs untiled %v", name, res.Best, res.BestValue, untiled)
		}
	}
	if _, _, err := tiling.Apply(nest, extents); err != nil {
		t.Fatal(err)
	}
}
