package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

func tileStr(t []int64) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// RenderFigure prints a Figure-8/9 result set as a text table.
func RenderFigure(w io.Writer, title string, rows []FigureRow) {
	fmt.Fprintf(w, "%s\n%-14s %10s %10s %6s  %s\n", title,
		"Kernel", "NO Tiling", "Tiling", "Gens", "Tile")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10s %10s %6d  %s\n",
			r.Label(), pct(r.NoTiling), pct(r.Tiling), r.Generations, tileStr(r.Tile))
	}
}

// CSVFigure writes a Figure result set as CSV (label,no_tiling,tiling).
func CSVFigure(w io.Writer, rows []FigureRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kernel", "no_tiling", "tiling", "generations", "tile"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Label(),
			strconv.FormatFloat(r.NoTiling, 'f', 6, 64),
			strconv.FormatFloat(r.Tiling, 'f', 6, 64),
			strconv.Itoa(r.Generations),
			tileStr(r.Tile),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderFigureBars prints a Figure-8/9 result set as paired ASCII bars —
// the visual form the paper uses (dark bar: no tiling, light bar: tiling).
func RenderFigureBars(w io.Writer, title string, rows []FigureRow) {
	const width = 50
	fmt.Fprintf(w, "%s\n(█ no tiling, ░ tiling; full scale = 100%%)\n", title)
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %s %6s\n", r.Label(), bar('█', r.NoTiling, width), pct(r.NoTiling))
		fmt.Fprintf(w, "%-14s %s %6s\n", "", bar('░', r.Tiling, width), pct(r.Tiling))
	}
}

func bar(ch rune, ratio float64, width int) string {
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	n := int(ratio*float64(width) + 0.5)
	return strings.Repeat(string(ch), n) + strings.Repeat(" ", width-n)
}

// RenderTable2 prints Table 2.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2: miss ratios (8KB direct-mapped, 32B lines)\n")
	fmt.Fprintf(w, "%-10s %-10s | %10s %10s | %10s %10s | %s\n",
		"Kernel", "Prob size", "Total", "Repl.", "Total", "Repl.", "Tile")
	fmt.Fprintf(w, "%-10s %-10s | %21s | %21s |\n", "", "", "No Tiling", "Tiling")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s N=%-8d | %10s %10s | %10s %10s | %s\n",
			r.Kernel, r.Size, pct(r.BeforeTotal), pct(r.BeforeRepl),
			pct(r.AfterTotal), pct(r.AfterRepl), tileStr(r.Tile))
	}
}

// RenderTable3 prints one cache's half of Table 3.
func RenderTable3(w io.Writer, rows []Table3Row) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Table 3 (%v)\n", rows[0].Cache)
	fmt.Fprintf(w, "%-12s %10s %10s %16s\n", "Kernel", "Original", "Padding", "Padding+tiling")
	for _, r := range rows {
		name := r.Kernel
		if r.Size != 0 && r.Kernel == "ADI" {
			name = fmt.Sprintf("%s %d", r.Kernel, r.Size)
		}
		fmt.Fprintf(w, "%-12s %10s %10s %16s\n",
			name, pct(r.Original), pct(r.Padding), pct(r.PaddingTiling))
	}
}

// RenderTable4 prints Table 4.
func RenderTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "Table 4: replacement miss ratios after tiling (excl. Table-3 kernels)\n")
	fmt.Fprintf(w, "%-10s %8s %8s %8s %6s\n", "Cache", "<1%", "<2%", "<5%", "N")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8s %8s %8s %6d\n",
			r.Cache, pct(r.Below1), pct(r.Below2), pct(r.Below5), r.N)
	}
}

// RenderConvergence prints the §3.3 GA-convergence measurements.
func RenderConvergence(w io.Writer, rows []ConvergenceRow) {
	fmt.Fprintf(w, "GA convergence (§3.3: 15-25 generations, ~450 evaluations)\n")
	fmt.Fprintf(w, "%-14s %6s %6s %10s %12s\n", "Kernel", "Gens", "Evals", "ConvAt", "Best repl.")
	for _, r := range rows {
		label := r.Kernel
		if r.Size != 0 {
			label = fmt.Sprintf("%s_%d", r.Kernel, r.Size)
		}
		fmt.Fprintf(w, "%-14s %6d %6d %10d %12s\n",
			label, r.Generations, r.Evaluations, r.ConvergedAt, pct(r.BestRatio))
	}
}
