package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/kernels"
)

// AssocRow is one point of the associativity-sweep extension: the paper
// evaluates direct-mapped caches only; the CME point solver handles any
// LRU associativity, so we can measure how much of the conflict residue
// associativity absorbs on its own.
type AssocRow struct {
	Kernel           string
	Size             int64
	Assoc            int
	NoTiling, Tiling float64
	Tile             []int64
}

// AssocSweep runs the before/after-tiling comparison at constant capacity
// (8KB, 32B lines) across the given associativities.
func AssocSweep(ctx context.Context, kernel string, size int64, assocs []int, c Config) ([]AssocRow, error) {
	k, ok := kernels.Get(kernel)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown kernel %s", kernel)
	}
	size = c.clampSize(kernel, size)
	nest, err := k.Instance(size)
	if err != nil {
		return nil, err
	}
	rows := make([]AssocRow, 0, len(assocs))
	for i, a := range assocs {
		cfg := cache.Config{Size: 8 * 1024, LineSize: 32, Assoc: a}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		res, err := core.OptimizeTiling(ctx, nest, c.options(cfg, 400+uint64(i)))
		if err != nil {
			return nil, err
		}
		rows = append(rows, AssocRow{
			Kernel:   kernel,
			Size:     size,
			Assoc:    a,
			NoTiling: res.Before.ReplacementRatio,
			Tiling:   res.After.ReplacementRatio,
			Tile:     res.Tile,
		})
	}
	return rows, nil
}

// InterchangeRow compares pure loop interchange (best of all k! orders,
// no tiling) against GA tiling — tiling subsumes interchange for the
// paper's kernels, and this experiment quantifies by how much.
type InterchangeRow struct {
	Kernel               string
	Size                 int64
	Untiled              float64
	BestInterchange      float64
	BestInterchangeOrder []int
	Tiling               float64
	Tile                 []int64
}

// InterchangeVsTiling evaluates every loop order of the kernel (no
// tiling) under the sampled objective and compares the best one with the
// GA tiling result at 8KB.
func InterchangeVsTiling(ctx context.Context, kernel string, size int64, c Config) (InterchangeRow, error) {
	k, ok := kernels.Get(kernel)
	if !ok {
		return InterchangeRow{}, fmt.Errorf("experiments: unknown kernel %s", kernel)
	}
	size = c.clampSize(kernel, size)
	nest, err := k.Instance(size)
	if err != nil {
		return InterchangeRow{}, err
	}
	opt := c.options(cache.DM8K, 500)
	row := InterchangeRow{Kernel: kernel, Size: size}

	res, err := core.OptimizeTiling(ctx, nest, opt)
	if err != nil {
		return InterchangeRow{}, err
	}
	row.Untiled = res.Before.ReplacementRatio
	row.Tiling = res.After.ReplacementRatio
	row.Tile = res.Tile

	best, bestOrder, err := core.BestInterchange(ctx, nest, opt)
	if err != nil {
		return InterchangeRow{}, err
	}
	row.BestInterchange = best
	row.BestInterchangeOrder = bestOrder
	return row, nil
}

// RenderInterchange prints interchange-vs-tiling rows.
func RenderInterchange(w io.Writer, rows []InterchangeRow) {
	fmt.Fprintf(w, "Loop interchange vs tiling (extension, 8KB direct-mapped)\n")
	fmt.Fprintf(w, "%-14s %10s %14s %10s\n", "Kernel", "untiled", "interchange", "tiling")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10s %14s %10s\n",
			fmt.Sprintf("%s_%d", r.Kernel, r.Size),
			pct(r.Untiled), pct(r.BestInterchange), pct(r.Tiling))
	}
}

// RenderAssoc prints an associativity sweep.
func RenderAssoc(w io.Writer, rows []AssocRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Associativity sweep (extension): %s_%d, 8KB, 32B lines\n",
		rows[0].Kernel, rows[0].Size)
	fmt.Fprintf(w, "%-8s %12s %12s   %s\n", "ways", "NO Tiling", "Tiling", "Tile")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %12s %12s   %s\n", r.Assoc, pct(r.NoTiling), pct(r.Tiling), tileStr(r.Tile))
	}
}
