package experiments

import (
	"context"
	"bytes"
	"strings"
	"testing"

	"repro/internal/cache"
)

func quick() Config {
	return Config{Seed: 2024, Quick: true, QuickCap: 100}
}

func TestFigureEntriesMatchPaper(t *testing.T) {
	entries := FigureEntries()
	if len(entries) != 27 {
		t.Fatalf("figure has %d entries, the paper's x-axis lists 27", len(entries))
	}
	labels := map[string]bool{}
	for _, e := range entries {
		labels[e.Label()] = true
	}
	for _, want := range []string{
		"T2D_100", "T2D_500", "T2D_2000", "T3DJIK_20", "T3DJIK_100", "T3DJIK_200",
		"T3DIKJ_20", "T3DIKJ_100", "T3DIKJ_200", "JACOBI3D_20", "JACOBI3D_100",
		"JACOBI3D_200", "MATMUL_100", "MATMUL_500", "MATMUL_2000", "MM_100",
		"MM_500", "MM_2000", "ADI_100", "ADI_500", "ADI_2000", "ADD", "BTRIX",
		"VPENTA2", "DPSSB", "DRADBG1", "DRADFG1",
	} {
		if !labels[want] {
			t.Errorf("missing figure entry %s", want)
		}
	}
}

// TestFigure8ShapeQuick: the headline result on a quick subset — tiling
// drives the replacement ratio of capacity-bound kernels to (near) zero.
func TestFigure8ShapeQuick(t *testing.T) {
	// Sizes avoid power-of-two array strides (which alias mod the cache
	// size and need padding, not tiling — that is Table 3's territory).
	entries := []Entry{
		{Kernel: "T2D", Size: 500},
		{Kernel: "T3DJIK", Size: 100},
		{Kernel: "MM", Size: 100},
		{Kernel: "DPSSB", Size: 60},
	}
	c := quick()
	c.QuickCap = 500
	rows, err := Figure(context.Background(), cache.DM8K, entries, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.NoTiling < 0.05 {
			t.Errorf("%s: untiled ratio %.1f%% suspiciously low", r.Label(), 100*r.NoTiling)
		}
		if r.Tiling > r.NoTiling/2 {
			t.Errorf("%s: tiling only got %.1f%% -> %.1f%%", r.Label(), 100*r.NoTiling, 100*r.Tiling)
		}
		if r.Generations < 15 || r.Generations > 25 {
			t.Errorf("%s: GA ran %d generations, expected the Figure-7 schedule (15-25)",
				r.Label(), r.Generations)
		}
	}
	var buf bytes.Buffer
	RenderFigure(&buf, "Figure 8 (quick)", rows)
	if !strings.Contains(buf.String(), "T2D_500") {
		t.Fatal("render missing rows")
	}
	var csvBuf bytes.Buffer
	if err := CSVFigure(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csvBuf.String(), "\n"); lines != len(rows)+1 {
		t.Fatalf("csv has %d lines", lines)
	}
}

// TestLargerCacheDoesNotHurt: Figure 9's qualitative relation to Figure 8 —
// with 4x the cache, the untiled replacement ratio does not increase.
func TestLargerCacheDoesNotHurt(t *testing.T) {
	entries := []Entry{{Kernel: "T2D", Size: 100}, {Kernel: "MM", Size: 100}}
	rows8, err := Figure(context.Background(), cache.DM8K, entries, quick())
	if err != nil {
		t.Fatal(err)
	}
	rows32, err := Figure(context.Background(), cache.DM32K, entries, quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows8 {
		if rows32[i].NoTiling > rows8[i].NoTiling+0.05 {
			t.Errorf("%s: 32KB untiled ratio %.1f%% exceeds 8KB %.1f%%",
				rows8[i].Label(), 100*rows32[i].NoTiling, 100*rows8[i].NoTiling)
		}
	}
}

func TestTable2Quick(t *testing.T) {
	rows, err := Table2(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("table 2 has %d rows", len(rows))
	}
	for _, r := range rows {
		// Total = compulsory + replacement, so total ≥ replacement.
		if r.BeforeTotal < r.BeforeRepl || r.AfterTotal < r.AfterRepl {
			t.Errorf("%s: total < replacement", r.Kernel)
		}
		// Tiling must slash the replacement ratio (Table 2's point). The
		// paper's post-tiling ratios are all ≤3.6%; with 164 sample
		// points the estimate carries ±4% half-width, so assert the
		// ratio is either halved or small in absolute terms.
		if r.AfterRepl > r.BeforeRepl/2 && r.AfterRepl > 0.05 {
			t.Errorf("%s: repl %.1f%% -> %.1f%%", r.Kernel, 100*r.BeforeRepl, 100*r.AfterRepl)
		}
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "JACOBI3D") {
		t.Fatal("render missing rows")
	}
}

// TestTable3Quick reproduces the Table-3 shape on the conflict kernels at
// reduced size: padding+tiling ends near zero and never behind padding
// alone by a margin.
func TestTable3Quick(t *testing.T) {
	c := quick()
	c.QuickCap = 128 // VPENTA needs enough rows for capacity misses
	rows, err := Table3(context.Background(), cache.DM8K, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("8KB table 3 has %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Original < 0.05 {
			t.Errorf("%s: original ratio %.1f%% too low for a Table-3 kernel", r.Kernel, 100*r.Original)
		}
		if r.PaddingTiling > 0.10 {
			t.Errorf("%s: padding+tiling left %.1f%%", r.Kernel, 100*r.PaddingTiling)
		}
	}
	var buf bytes.Buffer
	RenderTable3(&buf, rows)
	// Quick mode clamps the ADI sizes to the cap, so the label shows the
	// clamped size.
	if !strings.Contains(buf.String(), "VPENTA1") || !strings.Contains(buf.String(), "ADI 128") {
		t.Fatalf("render missing rows:\n%s", buf.String())
	}
	// 32KB half omits ADI.
	if got := Table3Entries(cache.DM32K); len(got) != 4 {
		t.Fatalf("32KB table 3 entries = %d, want 4", len(got))
	}
}

func TestTable4(t *testing.T) {
	rows := []FigureRow{
		{Entry: Entry{Kernel: "T2D", Size: 100}, Tiling: 0.005},
		{Entry: Entry{Kernel: "MM", Size: 100}, Tiling: 0.015},
		{Entry: Entry{Kernel: "ADI", Size: 100}, Tiling: 0.04},
		{Entry: Entry{Kernel: "ADD"}, Tiling: 0.5},     // conflict-bound: excluded
		{Entry: Entry{Kernel: "VPENTA2"}, Tiling: 0.6}, // excluded
	}
	r := Table4("8KB", rows)
	if r.N != 3 {
		t.Fatalf("N = %d, want 3 (conflict kernels excluded)", r.N)
	}
	if r.Below1 != 1.0/3 || r.Below2 != 2.0/3 || r.Below5 != 1.0 {
		t.Fatalf("buckets = %v %v %v", r.Below1, r.Below2, r.Below5)
	}
	var buf bytes.Buffer
	RenderTable4(&buf, []Table4Row{r})
	if !strings.Contains(buf.String(), "8KB") {
		t.Fatal("render missing row")
	}
}

// TestConvergenceMatchesSection33: the GA terminates within the paper's
// 15–25 generation schedule and its evaluation count stays within the
// nominal budget of generations × population.
func TestConvergenceMatchesSection33(t *testing.T) {
	rows, err := Convergence(context.Background(), []Entry{{Kernel: "MM", Size: 64}, {Kernel: "T2D", Size: 100}}, quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Generations < 15 || r.Generations > 25 {
			t.Errorf("%s: %d generations", r.Kernel, r.Generations)
		}
		if r.Evaluations > (r.Generations+1)*30 {
			t.Errorf("%s: %d evaluations exceed nominal budget", r.Kernel, r.Evaluations)
		}
	}
	var buf bytes.Buffer
	RenderConvergence(&buf, rows)
	if !strings.Contains(buf.String(), "MM_64") {
		t.Fatalf("render missing rows:\n%s", buf.String())
	}
}

// TestCheckSampling validates the §2.3 rule end to end.
func TestCheckSampling(t *testing.T) {
	chk, err := CheckSampling("T2D", 500, Config{Seed: 4, Quick: true, QuickCap: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !chk.WithinInterval {
		t.Fatalf("164-point estimate missed the reference: %+v", chk)
	}
	if chk.IntervalHalfWidth > 0.06 {
		t.Fatalf("interval half-width %.3f exceeds the paper's 0.05 by far", chk.IntervalHalfWidth)
	}
	if _, err := CheckSampling("NOPE", 0, Config{}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

// TestAssocSweep: the extension experiment runs and higher associativity
// does not increase the untiled replacement ratio.
func TestAssocSweep(t *testing.T) {
	rows, err := AssocSweep(context.Background(), "MM", 100, []int{1, 2, 4}, quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].NoTiling > rows[i-1].NoTiling+0.05 {
			t.Errorf("untiled ratio rose with associativity: %v -> %v",
				rows[i-1].NoTiling, rows[i].NoTiling)
		}
	}
	var buf bytes.Buffer
	RenderAssoc(&buf, rows)
	if !strings.Contains(buf.String(), "ways") {
		t.Fatal("render missing header")
	}
	if _, err := AssocSweep(context.Background(), "NOPE", 0, []int{1}, quick()); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := AssocSweep(context.Background(), "MM", 100, []int{3}, quick()); err == nil {
		t.Fatal("invalid associativity accepted")
	}
}

// TestInterchangeVsTiling: for the MM kernel, the best pure interchange
// improves on the untiled order but tiling does at least as well.
func TestInterchangeVsTiling(t *testing.T) {
	row, err := InterchangeVsTiling(context.Background(), "MM", 100, quick())
	if err != nil {
		t.Fatal(err)
	}
	if row.BestInterchange > row.Untiled+1e-9 {
		t.Fatalf("best interchange %.3f worse than untiled %.3f", row.BestInterchange, row.Untiled)
	}
	if row.Tiling > row.BestInterchange+0.02 {
		t.Fatalf("tiling %.3f worse than interchange %.3f", row.Tiling, row.BestInterchange)
	}
	if len(row.BestInterchangeOrder) != 3 {
		t.Fatalf("order = %v", row.BestInterchangeOrder)
	}
	var buf bytes.Buffer
	RenderInterchange(&buf, []InterchangeRow{row})
	if !strings.Contains(buf.String(), "MM_100") {
		t.Fatal("render missing row")
	}
	if _, err := InterchangeVsTiling(context.Background(), "NOPE", 0, quick()); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}
