package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func sampleRows() []FigureRow {
	return []FigureRow{
		{Entry: Entry{Kernel: "T2D", Size: 500}, NoTiling: 0.38, Tiling: 0.005, Tile: []int64{228, 4}, Generations: 25},
		{Entry: Entry{Kernel: "ADD"}, NoTiling: 0.86, Tiling: 0.59, Tile: []int64{5, 1, 18, 2}, Generations: 17},
	}
}

func TestRenderFigureBars(t *testing.T) {
	var buf bytes.Buffer
	RenderFigureBars(&buf, "Figure 8", sampleRows())
	out := buf.String()
	if !strings.Contains(out, "T2D_500") || !strings.Contains(out, "ADD") {
		t.Fatalf("missing labels:\n%s", out)
	}
	// The no-tiling bar of ADD (86%) must be longer than T2D's (38%).
	lines := strings.Split(out, "\n")
	var t2dBar, addBar int
	for _, l := range lines {
		if strings.HasPrefix(l, "T2D_500") {
			t2dBar = strings.Count(l, "█")
		}
		if strings.HasPrefix(l, "ADD") {
			addBar = strings.Count(l, "█")
		}
	}
	if addBar <= t2dBar || t2dBar == 0 {
		t.Fatalf("bar lengths wrong: t2d=%d add=%d\n%s", t2dBar, addBar, out)
	}
}

func TestBarClamping(t *testing.T) {
	if got := bar('#', -0.5, 10); strings.Count(got, "#") != 0 {
		t.Fatalf("negative ratio produced bars: %q", got)
	}
	if got := bar('#', 2.0, 10); strings.Count(got, "#") != 10 {
		t.Fatalf("overflow ratio not clamped: %q", got)
	}
	if got := bar('#', 0.5, 10); strings.Count(got, "#") != 5 {
		t.Fatalf("half ratio: %q", got)
	}
	if len([]rune(bar('#', 0.3, 20))) != 20 {
		t.Fatal("bar not padded to width")
	}
}

func TestPctAndTileStr(t *testing.T) {
	if pct(0.1234) != "12.34%" {
		t.Fatalf("pct = %q", pct(0.1234))
	}
	if tileStr([]int64{8, 16, 4}) != "(8,16,4)" {
		t.Fatalf("tileStr = %q", tileStr([]int64{8, 16, 4}))
	}
}
