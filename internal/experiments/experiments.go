// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): Table 2 (miss ratios before/after tiling for four
// kernels), Figures 8 and 9 (replacement miss ratio before/after tiling
// for the whole benchmark list at 8KB and 32KB), Table 3 (padding and
// padding+tiling for the conflict-bound kernels), Table 4 (the <1%/<2%/<5%
// buckets), plus the GA-convergence measurements backing §3.3.
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/kernels"
	"repro/internal/sampling"
	"repro/internal/telemetry"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives every random choice; a fixed seed reproduces the run.
	Seed uint64
	// SamplePoints per objective evaluation (0 = the paper's 164).
	SamplePoints int
	// Quick trims problem sizes (≤ QuickCap) so the full suite runs in
	// seconds — used by tests; the shapes are preserved.
	Quick bool
	// QuickCap is the size ceiling in quick mode (0 = 200).
	QuickCap int64
	// Deadline bounds each individual search (0 = none); bounded runs
	// report their best-so-far tile, so the tables stay complete.
	Deadline time.Duration
	// MaxEvaluations caps objective evaluations per search (0 = none).
	MaxEvaluations int
	// Workers bounds the evaluation fan-out per objective
	// (0 = core.DefaultWorkers). Worker count never changes results.
	Workers int
	// Islands splits each search's GA population into concurrently
	// evolving demes with elite migration (0/1 = single population).
	// Results stay deterministic per seed for any island count, but a
	// multi-island run follows a different search trajectory than a
	// single-population one.
	Islands int
	// FidelityRungs enables multi-fidelity evaluation with this many
	// successive-halving rungs per search (0/1 = classic full-fidelity
	// evaluation). Deterministic per seed, but like Islands it changes
	// the search trajectory.
	FidelityRungs int
	// FailurePolicy selects how each search reacts to a broken
	// evaluation (the zero value aborts, preserving the historical
	// contract; core.FailQuarantine completes degraded on best-so-far).
	FailurePolicy core.FailurePolicy
	// StallTimeout arms the per-evaluation watchdog of every search
	// (0 = no watchdog).
	StallTimeout time.Duration
	// Observer receives the telemetry stream of every search the
	// experiment suite runs (nil = unobserved).
	Observer telemetry.Recorder
}

func (c Config) cap() int64 {
	if !c.Quick {
		return 1 << 62
	}
	if c.QuickCap == 0 {
		return 200
	}
	return c.QuickCap
}

func (c Config) options(cfg cache.Config, salt uint64) core.Options {
	return core.Options{
		Cache:          cfg,
		SamplePoints:   c.SamplePoints,
		Seed:           c.Seed*0x9e3779b97f4a7c15 + salt,
		Deadline:       c.Deadline,
		MaxEvaluations: c.MaxEvaluations,
		Workers:        c.Workers,
		Islands:        c.Islands,
		Fidelity:       ga.Fidelity{Rungs: c.FidelityRungs},
		FailurePolicy:  c.FailurePolicy,
		StallTimeout:   c.StallTimeout,
		Observer:       c.Observer,
	}
}

// Entry identifies one kernel/size configuration of Figures 8–9.
type Entry struct {
	Kernel string
	Size   int64 // 0 = the kernel's fixed default size
}

// Label renders the figure's x-axis label (e.g. "T2D_500", "ADD").
func (e Entry) Label() string {
	if e.Size == 0 {
		return e.Kernel
	}
	return fmt.Sprintf("%s_%d", e.Kernel, e.Size)
}

// FigureEntries returns the 27 kernel/size configurations on the x-axis of
// Figures 8 and 9.
func FigureEntries() []Entry {
	var out []Entry
	for _, name := range []string{"T2D", "T3DJIK", "T3DIKJ", "JACOBI3D", "MATMUL", "MM", "ADI"} {
		k, _ := kernels.Get(name)
		for _, s := range k.Sizes {
			out = append(out, Entry{Kernel: name, Size: s})
		}
	}
	for _, name := range []string{"ADD", "BTRIX", "VPENTA2", "DPSSB", "DRADBG1", "DRADFG1"} {
		out = append(out, Entry{Kernel: name})
	}
	return out
}

// clampSize applies quick-mode size reduction.
func (c Config) clampSize(kernel string, size int64) int64 {
	k, _ := kernels.Get(kernel)
	if size == 0 {
		size = k.DefaultSize
	}
	if size > c.cap() {
		size = c.cap()
	}
	return size
}

// FigureRow is one bar pair of Figure 8/9.
type FigureRow struct {
	Entry
	// NoTiling and Tiling are replacement miss ratios (0..1).
	NoTiling, Tiling float64
	// Tile is the GA-selected tile vector.
	Tile []int64
	// Generations the GA ran (§3.3 claims 15–25).
	Generations int
}

// Figure runs the before/after-tiling comparison of Figure 8 (cache =
// DM8K) or Figure 9 (DM32K) for the given entries (nil = all 27).
func Figure(ctx context.Context, cfg cache.Config, entries []Entry, c Config) ([]FigureRow, error) {
	if entries == nil {
		entries = FigureEntries()
	}
	rows := make([]FigureRow, 0, len(entries))
	for i, e := range entries {
		k, ok := kernels.Get(e.Kernel)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown kernel %s", e.Kernel)
		}
		nest, err := k.Instance(c.clampSize(e.Kernel, e.Size))
		if err != nil {
			return nil, err
		}
		res, err := core.OptimizeTiling(ctx, nest, c.options(cfg, uint64(i)+1))
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.Label(), err)
		}
		rows = append(rows, FigureRow{
			Entry:       e,
			NoTiling:    res.Before.ReplacementRatio,
			Tiling:      res.After.ReplacementRatio,
			Tile:        res.Tile,
			Generations: res.GA.Generations,
		})
	}
	return rows, nil
}

// Table2Row is one row of Table 2 (8KB direct-mapped, 32B lines).
type Table2Row struct {
	Kernel string
	Size   int64
	// Miss ratios before and after tiling: total and replacement.
	BeforeTotal, BeforeRepl float64
	AfterTotal, AfterRepl   float64
	Tile                    []int64
}

// Table2Entries returns the four kernel/size pairs of Table 2.
func Table2Entries() []Entry {
	return []Entry{
		{Kernel: "T2D", Size: 2000},
		{Kernel: "T3DJIK", Size: 200},
		{Kernel: "T3DIKJ", Size: 200},
		{Kernel: "JACOBI3D", Size: 200},
	}
}

// Table2 regenerates Table 2.
func Table2(ctx context.Context, c Config) ([]Table2Row, error) {
	rows := make([]Table2Row, 0, 4)
	for i, e := range Table2Entries() {
		k, _ := kernels.Get(e.Kernel)
		size := c.clampSize(e.Kernel, e.Size)
		nest, err := k.Instance(size)
		if err != nil {
			return nil, err
		}
		res, err := core.OptimizeTiling(ctx, nest, c.options(cache.DM8K, 100+uint64(i)))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Kernel:      e.Kernel,
			Size:        size,
			BeforeTotal: res.Before.MissRatio,
			BeforeRepl:  res.Before.ReplacementRatio,
			AfterTotal:  res.After.MissRatio,
			AfterRepl:   res.After.ReplacementRatio,
			Tile:        res.Tile,
		})
	}
	return rows, nil
}

// Table3Row is one row of Table 3.
type Table3Row struct {
	Kernel string
	Size   int64
	Cache  cache.Config
	// Replacement miss ratios: untouched, padding only, padding+tiling.
	Original, Padding, PaddingTiling float64
	Plan                             string // rendered padding plan
	Tile                             []int64
}

// Table3Entries returns the kernel set of Table 3 for the given cache
// (the 32KB half omits the ADI rows, as in the paper).
func Table3Entries(cfg cache.Config) []Entry {
	es := []Entry{{Kernel: "ADD"}, {Kernel: "BTRIX"}, {Kernel: "VPENTA1"}, {Kernel: "VPENTA2"}}
	if cfg.Size == cache.DM8K.Size {
		es = append(es, Entry{Kernel: "ADI", Size: 1000}, Entry{Kernel: "ADI", Size: 2000})
	}
	return es
}

// Table3 regenerates one cache's half of Table 3.
func Table3(ctx context.Context, cfg cache.Config, c Config) ([]Table3Row, error) {
	entries := Table3Entries(cfg)
	rows := make([]Table3Row, 0, len(entries))
	for i, e := range entries {
		k, _ := kernels.Get(e.Kernel)
		size := c.clampSize(e.Kernel, e.Size)
		nest, err := k.Instance(size)
		if err != nil {
			return nil, err
		}
		res, err := core.OptimizePaddingThenTiling(ctx, nest, c.options(cfg, 200+uint64(i)))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			Kernel:        e.Kernel,
			Size:          size,
			Cache:         cfg,
			Original:      res.Original.ReplacementRatio,
			Padding:       res.Padded.ReplacementRatio,
			PaddingTiling: res.Combined.ReplacementRatio,
			Plan:          fmt.Sprintf("inter%v intra%v", res.Plan.Inter, res.Plan.Intra),
			Tile:          res.Tile,
		})
	}
	return rows, nil
}

// Table4Row is one row of Table 4: the fraction of kernel configurations
// (excluding the Table-3 conflict set) whose post-tiling replacement miss
// ratio falls below 1%, 2% and 5%.
type Table4Row struct {
	Cache                  string
	Below1, Below2, Below5 float64
	N                      int
}

// Table4 derives Table 4 from figure rows (pass the Figure-8 rows with
// "8KB" and Figure-9 rows with "32KB").
func Table4(label string, rows []FigureRow) Table4Row {
	conflict := map[string]bool{}
	for _, k := range kernels.All() {
		if k.ConflictBound {
			conflict[k.Name] = true
		}
	}
	out := Table4Row{Cache: label}
	for _, r := range rows {
		if conflict[r.Kernel] {
			continue
		}
		out.N++
		if r.Tiling < 0.01 {
			out.Below1++
		}
		if r.Tiling < 0.02 {
			out.Below2++
		}
		if r.Tiling < 0.05 {
			out.Below5++
		}
	}
	if out.N > 0 {
		out.Below1 /= float64(out.N)
		out.Below2 /= float64(out.N)
		out.Below5 /= float64(out.N)
	}
	return out
}

// ConvergenceRow records the GA behaviour §3.3 reports: generations to
// termination (15–25) and distinct objective evaluations (≤450 nominal).
type ConvergenceRow struct {
	Kernel      string
	Size        int64
	Generations int
	Evaluations int
	BestRatio   float64
	ConvergedAt int // first generation the 2% criterion held at/after MinGens
}

// Convergence measures GA convergence on a set of kernels.
func Convergence(ctx context.Context, entries []Entry, c Config) ([]ConvergenceRow, error) {
	rows := make([]ConvergenceRow, 0, len(entries))
	for i, e := range entries {
		k, ok := kernels.Get(e.Kernel)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown kernel %s", e.Kernel)
		}
		size := c.clampSize(e.Kernel, e.Size)
		nest, err := k.Instance(size)
		if err != nil {
			return nil, err
		}
		res, err := core.OptimizeTiling(ctx, nest, c.options(cache.DM8K, 300+uint64(i)))
		if err != nil {
			return nil, err
		}
		row := ConvergenceRow{
			Kernel:      e.Kernel,
			Size:        size,
			Generations: res.GA.Generations,
			Evaluations: res.GA.Evaluations,
			BestRatio:   res.After.ReplacementRatio,
			ConvergedAt: -1,
		}
		for _, h := range res.GA.History {
			if h.Converged && row.ConvergedAt < 0 {
				row.ConvergedAt = h.Gen
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SamplingCheck verifies the §2.3 claim on a kernel: the 164-point
// estimate's interval brackets a high-precision estimate.
type SamplingCheck struct {
	Kernel            string
	Size              int64
	PaperEstimate     sampling.Estimate
	PreciseEstimate   sampling.Estimate
	WithinInterval    bool
	IntervalHalfWidth float64
}

// CheckSampling runs the §2.3 validation for one kernel under DM8K: a
// 164-point estimate against a 50x larger reference sample. The paper's
// claim holds when the precise ratio falls inside the small estimate's
// 90% interval (allowing the reference's own residual width).
func CheckSampling(kernel string, size int64, c Config) (SamplingCheck, error) {
	k, ok := kernels.Get(kernel)
	if !ok {
		return SamplingCheck{}, fmt.Errorf("experiments: unknown kernel %s", kernel)
	}
	size = c.clampSize(kernel, size)
	nest, err := k.Instance(size)
	if err != nil {
		return SamplingCheck{}, err
	}
	small, precise, err := sampling.CompareSampleSizes(nest, cache.DM8K,
		sampling.PaperSampleSize, 50*sampling.PaperSampleSize, c.Seed)
	if err != nil {
		return SamplingCheck{}, err
	}
	lo, hi := small.Interval()
	slack := precise.Half
	out := SamplingCheck{
		Kernel:            kernel,
		Size:              size,
		PaperEstimate:     small,
		PreciseEstimate:   precise,
		WithinInterval:    precise.MissRatio >= lo-slack && precise.MissRatio <= hi+slack,
		IntervalHalfWidth: small.Half,
	}
	return out, nil
}
