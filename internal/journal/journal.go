// Package journal is a crash-safe write-ahead request journal for
// tilingd: every accepted tiling request is recorded durably before its
// search runs, progress snapshots and the final response bytes are
// appended as the request advances, and a restart replays the whole
// trail to (a) serve duplicate idempotent retries the exact recorded
// bytes and (b) resume interrupted searches from their latest snapshot.
//
// On-disk layout (one directory):
//
//	seg-00000001.wal
//	seg-00000002.wal      <- active segment, append-only
//
// Each segment is JSONL: one frame per line,
//
//	{"crc":"<crc32c hex of rec bytes>","rec":{...record...}}
//
// so a torn tail (a crash mid-append), a bit flip, or an injected
// journal.replay fault disqualifies exactly one line. Replay quarantines
// such records — counted and reported as journal_skipped telemetry —
// and keeps going; corruption never refuses a boot.
//
// Records are ordered by a monotonic sequence number and keyed by the
// request's idempotency key; replay folds them last-wins into per-key
// entries. Open compacts on startup: after replaying the existing
// segments it rewrites the live state (unfinished requests in full, the
// most recent completed responses for idempotent retries) into a fresh
// segment and deletes the old ones, so the journal's size is bounded by
// the live state, not the request history. A crash mid-compaction is
// harmless: old segments are removed only after the fresh one is synced,
// and replaying both yields the same folded state.
//
// Appends follow the cliutil checkpoint durability discipline scoped to
// a log: segments are created exclusively, each record is written in one
// Write call and (under SyncAlways) fsynced before Append returns, and
// the directory entry is synced when segments rotate.
package journal

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Op is the lifecycle stage a record marks.
type Op string

// The record operations, in lifecycle order.
const (
	// OpAccepted journals a request past admission, before its search
	// runs: the idempotency key, the canonical cache key and the original
	// request body (so a restart can re-normalize and re-run it).
	OpAccepted Op = "accepted"
	// OpStarted marks the search actually beginning (it left the queue).
	OpStarted Op = "started"
	// OpCheckpointed records that a resumable generation-boundary
	// snapshot of the in-flight search was persisted at Checkpoint.
	OpCheckpointed Op = "checkpointed"
	// OpDone closes a request with its exact response bytes and outcome;
	// duplicate idempotent retries are served these bytes verbatim.
	OpDone Op = "done"
)

// Record is one journal entry. Fields are populated per Op; Seq is
// assigned by Append.
type Record struct {
	Op  Op     `json:"op"`
	Seq uint64 `json:"seq"`
	// Key is the request's idempotency key — the identity records fold
	// under during replay.
	Key string `json:"key"`
	// CacheKey is the canonical request hash (accepted records).
	CacheKey string `json:"cacheKey,omitempty"`
	// Request is the original request body (accepted records), kept
	// verbatim so replay re-normalizes exactly what the client sent.
	Request json.RawMessage `json:"request,omitempty"`
	// Checkpoint is the snapshot path (checkpointed records); Gen the
	// last completed generation it captures.
	Checkpoint string `json:"checkpoint,omitempty"`
	Gen        int    `json:"gen,omitempty"`
	// Response is the exact response bytes (done records); Outcome the
	// request outcome ("ok", "degraded", "fallback", "error").
	Response []byte `json:"response,omitempty"`
	Outcome  string `json:"outcome,omitempty"`
}

// frame is the CRC envelope around one record line.
type frame struct {
	CRC string          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// castagnoli is the CRC32-C table (the polynomial storage systems use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcOf renders the checksum of a record's raw bytes.
func crcOf(rec []byte) string {
	return fmt.Sprintf("%08x", crc32.Checksum(rec, castagnoli))
}

// SyncMode selects the append durability level.
type SyncMode int

const (
	// SyncAlways fsyncs after every append: an Append that returned is on
	// stable storage. The default.
	SyncAlways SyncMode = iota
	// SyncNone leaves flushing to the OS page cache: faster, but a crash
	// may lose the most recent appends (replay still recovers everything
	// older, and torn tails are quarantined as usual).
	SyncNone
)

// ParseSyncMode maps the -journal-sync flag values onto a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("journal: unknown sync mode %q (want always or none)", s)
}

// Options configures Open. The zero value is production-shaped.
type Options struct {
	// Sync is the append durability level (default SyncAlways).
	Sync SyncMode
	// MaxSegmentBytes bounds the active segment before rotation
	// (0 = 4 MiB).
	MaxSegmentBytes int64
	// KeepDone bounds how many completed entries startup compaction
	// retains for idempotent retries, newest first (0 = 1024,
	// negative = none).
	KeepDone int
	// Faults arms the journal.write / journal.replay fault points.
	Faults *faultinject.Plan
	// Observer receives JournalSkipped events for quarantined records.
	Observer telemetry.Recorder
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	if o.KeepDone == 0 {
		o.KeepDone = 1024
	}
	return o
}

// Entry is the folded per-key replay state: the latest information the
// journal holds about one request.
type Entry struct {
	// Seq is the sequence number of the entry's accepted record (or the
	// first record seen for the key).
	Seq uint64
	// Key, CacheKey and Request mirror the accepted record.
	Key      string
	CacheKey string
	Request  json.RawMessage
	// Started reports an OpStarted record was seen.
	Started bool
	// Checkpoint and Gen are the latest persisted snapshot (if any).
	Checkpoint string
	Gen        int
	// Done, Response and Outcome mirror the done record.
	Done     bool
	Response []byte
	Outcome  string
}

// State is the result of replaying a journal directory.
type State struct {
	// Entries holds the folded per-key state in first-seen order.
	Entries []*Entry
	// Skipped counts quarantined records (torn tail, CRC mismatch,
	// undecodable frame, injected replay fault).
	Skipped int
	// maxSeq is the highest sequence number seen, so appends continue
	// monotonically across restarts.
	maxSeq uint64
}

// Incomplete returns the entries that were accepted but never finished —
// the requests a restart must resume or re-run.
func (s *State) Incomplete() []*Entry {
	var out []*Entry
	for _, e := range s.Entries {
		if !e.Done {
			out = append(out, e)
		}
	}
	return out
}

// Completed returns the entries holding recorded response bytes, in
// first-seen order.
func (s *State) Completed() []*Entry {
	var out []*Entry
	for _, e := range s.Entries {
		if e.Done {
			out = append(out, e)
		}
	}
	return out
}

// Journal is an open, appendable journal. Safe for concurrent use.
type Journal struct {
	mu       sync.Mutex
	dir      string
	opts     Options
	seg      *os.File
	segName  string
	segIndex int
	segSize  int64
	seq      uint64
	closed   bool
}

// segmentName renders the file name of segment index i.
func segmentName(i int) string { return fmt.Sprintf("seg-%08d.wal", i) }

// segments lists the journal's segment files in index order.
func segments(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return matches, nil
}

// segmentIndex parses the index out of a segment path, -1 when malformed.
func segmentIndex(path string) int {
	var i int
	if _, err := fmt.Sscanf(filepath.Base(path), "seg-%08d.wal", &i); err != nil {
		return -1
	}
	return i
}

// Replay reads every segment under dir and folds the readable records
// into a State. Unreadable records — torn tails, CRC mismatches,
// undecodable frames, or records the journal.replay fault point rejects —
// are quarantined: counted on State.Skipped, reported to opts.Observer,
// and skipped. Replay itself fails only when the directory cannot be
// read; record-level damage never does.
func Replay(dir string, opts Options) (*State, error) {
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	st := &State{}
	byKey := map[string]*Entry{}
	skip := func(seg string, line int, cause string) {
		st.Skipped++
		if opts.Observer != nil {
			opts.Observer.Event(telemetry.JournalSkipped{
				Segment: filepath.Base(seg), Line: line, Cause: cause,
			})
		}
	}
	for _, seg := range segs {
		if err := replaySegment(seg, opts, st, byKey, skip); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// replaySegment folds one segment file into the state.
func replaySegment(path string, opts Options, st *State, byKey map[string]*Entry, skip func(string, int, string)) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxRecordBytes)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		rec, cause := decodeFrame(raw)
		if cause == "" {
			if ferr := opts.Faults.Fire(context.Background(), faultinject.JournalReplay); ferr != nil {
				cause = ferr.Error()
			}
		}
		if cause != "" {
			skip(path, line, cause)
			continue
		}
		apply(st, byKey, rec)
	}
	if err := sc.Err(); err != nil {
		// An oversized or unreadable tail: quarantine the remainder of
		// the segment rather than failing the boot.
		skip(path, line+1, "unreadable tail: "+err.Error())
	}
	return nil
}

// decodeFrame parses one line into its record, returning a non-empty
// cause when the line is torn, oversized, or fails its CRC.
func decodeFrame(raw []byte) (*Record, string) {
	var fr frame
	if err := json.Unmarshal(raw, &fr); err != nil {
		return nil, "bad frame: " + err.Error()
	}
	if got := crcOf(fr.Rec); got != fr.CRC {
		return nil, fmt.Sprintf("crc mismatch: %s != recorded %s", got, fr.CRC)
	}
	var rec Record
	if err := json.Unmarshal(fr.Rec, &rec); err != nil {
		return nil, "bad record: " + err.Error()
	}
	return &rec, ""
}

// apply folds one readable record into the per-key state, last-wins.
func apply(st *State, byKey map[string]*Entry, rec *Record) {
	if rec.Seq > st.maxSeq {
		st.maxSeq = rec.Seq
	}
	e, ok := byKey[rec.Key]
	if !ok {
		e = &Entry{Seq: rec.Seq, Key: rec.Key}
		byKey[rec.Key] = e
		st.Entries = append(st.Entries, e)
	}
	switch rec.Op {
	case OpAccepted:
		e.CacheKey = rec.CacheKey
		e.Request = rec.Request
	case OpStarted:
		e.Started = true
	case OpCheckpointed:
		e.Checkpoint = rec.Checkpoint
		e.Gen = rec.Gen
	case OpDone:
		e.Done = true
		e.Response = rec.Response
		e.Outcome = rec.Outcome
	}
}

// maxRecordBytes bounds one journal line (responses are small JSON; 8 MiB
// leaves room for large inline-source requests).
const maxRecordBytes = 8 << 20

// Open replays dir (creating it if needed), compacts the live state into
// a fresh active segment, deletes the replayed segments, and returns the
// appendable journal plus the replayed state. Record-level corruption is
// quarantined into State.Skipped; only directory-level I/O errors fail
// Open.
func Open(dir string, opts Options) (*Journal, *State, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	st, err := Replay(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	old, err := segments(dir)
	if err != nil {
		return nil, nil, err
	}
	next := 1
	if n := len(old); n > 0 {
		if i := segmentIndex(old[n-1]); i >= 0 {
			next = i + 1
		}
	}
	j := &Journal{dir: dir, opts: opts, segIndex: next, seq: st.maxSeq}
	if err := j.openSegmentLocked(); err != nil {
		return nil, nil, err
	}
	if err := j.compact(st); err != nil {
		j.Close()
		return nil, nil, err
	}
	// The fresh segment now carries the whole live state; the replayed
	// segments are redundant. Removal failures are non-fatal (replaying
	// both old and new folds to the same state).
	for _, p := range old {
		_ = os.Remove(p)
	}
	syncDir(dir)
	return j, st, nil
}

// compact rewrites the live state into the (fresh, empty) active
// segment: unfinished entries in full — accepted, started and the latest
// checkpoint pointer — and the most recent opts.KeepDone completed
// entries as single done records carrying their response bytes. Appends
// here bypass the journal.write fault point: compaction replays state
// that was already accepted durably.
func (j *Journal) compact(st *State) error {
	done := st.Completed()
	if keep := j.opts.KeepDone; keep < 0 {
		done = nil
	} else if len(done) > keep {
		done = done[len(done)-keep:]
	}
	keepDone := make(map[string]bool, len(done))
	for _, e := range done {
		keepDone[e.Key] = true
	}
	for _, e := range st.Entries {
		if e.Done {
			if !keepDone[e.Key] {
				continue
			}
			if err := j.append(Record{Op: OpDone, Key: e.Key, Response: e.Response, Outcome: e.Outcome}, false); err != nil {
				return err
			}
			continue
		}
		if err := j.append(Record{Op: OpAccepted, Key: e.Key, CacheKey: e.CacheKey, Request: e.Request}, false); err != nil {
			return err
		}
		if e.Started {
			if err := j.append(Record{Op: OpStarted, Key: e.Key}, false); err != nil {
				return err
			}
		}
		if e.Checkpoint != "" {
			if err := j.append(Record{Op: OpCheckpointed, Key: e.Key, Checkpoint: e.Checkpoint, Gen: e.Gen}, false); err != nil {
				return err
			}
		}
	}
	return j.Sync()
}

// openSegmentLocked creates the next segment exclusively and makes it
// active. Callers hold j.mu (or have exclusive access during Open).
func (j *Journal) openSegmentLocked() error {
	name := filepath.Join(j.dir, segmentName(j.segIndex))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if j.seg != nil {
		_ = j.seg.Sync()
		_ = j.seg.Close()
	}
	j.seg, j.segName, j.segSize = f, name, 0
	j.segIndex++
	syncDir(j.dir)
	return nil
}

// Append journals one record durably: the sequence number is assigned,
// the CRC frame written in a single Write, and (under SyncAlways) the
// segment fsynced before Append returns. The active segment rotates when
// it exceeds the size bound. The journal.write fault point can fail the
// append, which the caller must treat as "this record is not durable".
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.opts.Faults.Fire(context.Background(), faultinject.JournalWrite); err != nil {
		return err
	}
	return j.append(rec, j.opts.Sync == SyncAlways)
}

// append writes one framed record; callers hold j.mu.
func (j *Journal) append(rec Record, sync bool) error {
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	j.seq++
	rec.Seq = j.seq
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line, err := json.Marshal(frame{CRC: crcOf(body), Rec: body})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := j.seg.Write(line); err != nil {
		return err
	}
	j.segSize += int64(len(line))
	if sync {
		if err := j.seg.Sync(); err != nil {
			return err
		}
	}
	if j.segSize >= j.opts.MaxSegmentBytes {
		if err := j.openSegmentLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes the active segment to stable storage (a no-op effect
// under SyncAlways, where every append already synced).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.seg == nil {
		return nil
	}
	return j.seg.Sync()
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Close syncs and closes the active segment. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.seg == nil {
		return nil
	}
	_ = j.seg.Sync()
	return j.seg.Close()
}

// syncDir best-effort fsyncs a directory entry (not every filesystem
// supports it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
