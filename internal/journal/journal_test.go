package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// captureRecorder collects telemetry events for assertions.
type captureRecorder struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (c *captureRecorder) Event(e telemetry.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *captureRecorder) Add(telemetry.Counters) {}

func (c *captureRecorder) skipped() []telemetry.JournalSkipped {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []telemetry.JournalSkipped
	for _, e := range c.events {
		if s, ok := e.(telemetry.JournalSkipped); ok {
			out = append(out, s)
		}
	}
	return out
}

// accept appends a full accepted/started pair for key.
func accept(t *testing.T, j *Journal, key string) {
	t.Helper()
	req := json.RawMessage(fmt.Sprintf(`{"kernel":"MM","size":48,"seed":%d}`, len(key)))
	if err := j.Append(Record{Op: OpAccepted, Key: key, CacheKey: "cache-" + key, Request: req}); err != nil {
		t.Fatalf("append accepted: %v", err)
	}
	if err := j.Append(Record{Op: OpStarted, Key: key}); err != nil {
		t.Fatalf("append started: %v", err)
	}
}

func finish(t *testing.T, j *Journal, key, outcome string) {
	t.Helper()
	if err := j.Append(Record{Op: OpDone, Key: key, Response: []byte(`{"result":"` + key + `"}`), Outcome: outcome}); err != nil {
		t.Fatalf("append done: %v", err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(st.Entries) != 0 || st.Skipped != 0 {
		t.Fatalf("fresh journal state: %+v", st)
	}
	accept(t, j, "a")
	if err := j.Append(Record{Op: OpCheckpointed, Key: "a", Checkpoint: "ckpt/a.ckpt", Gen: 7}); err != nil {
		t.Fatalf("append checkpointed: %v", err)
	}
	accept(t, j, "b")
	finish(t, j, "b", "ok")
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, err := Replay(dir, Options{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if st2.Skipped != 0 {
		t.Fatalf("skipped %d records on clean journal", st2.Skipped)
	}
	if len(st2.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(st2.Entries))
	}
	a := st2.Entries[0]
	if a.Key != "a" || !a.Started || a.Done || a.Checkpoint != "ckpt/a.ckpt" || a.Gen != 7 {
		t.Fatalf("entry a folded wrong: %+v", a)
	}
	if a.CacheKey != "cache-a" || !strings.Contains(string(a.Request), `"kernel":"MM"`) {
		t.Fatalf("entry a lost accepted payload: %+v", a)
	}
	b := st2.Entries[1]
	if !b.Done || b.Outcome != "ok" || string(b.Response) != `{"result":"b"}` {
		t.Fatalf("entry b folded wrong: %+v", b)
	}
	if inc := st2.Incomplete(); len(inc) != 1 || inc[0].Key != "a" {
		t.Fatalf("incomplete = %+v, want just a", inc)
	}
	if done := st2.Completed(); len(done) != 1 || done[0].Key != "b" {
		t.Fatalf("completed = %+v, want just b", done)
	}
}

func TestJournalSeqContinuesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	accept(t, j, "a")
	j.Close()

	j2, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if len(st.Incomplete()) != 1 {
		t.Fatalf("incomplete after reopen = %d, want 1", len(st.Incomplete()))
	}
	// Compaction re-appends the live records into the fresh segment, so
	// the in-memory sequence has already advanced past the replayed max.
	finish(t, j2, "a", "ok")
	j2.Close()
	st2, err := Replay(dir, Options{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	var max uint64
	for _, e := range st2.Entries {
		if e.Seq > max {
			max = e.Seq
		}
	}
	if !st2.Entries[0].Done {
		t.Fatalf("entry not done after reopen+finish: %+v", st2.Entries[0])
	}
}

func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 8; i++ {
		accept(t, j, fmt.Sprintf("k%d", i))
	}
	j.Close()
	segs, err := segments(dir)
	if err != nil {
		t.Fatalf("segments: %v", err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation to create multiple segments, got %v", segs)
	}
	st, err := Replay(dir, Options{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(st.Entries) != 8 || st.Skipped != 0 {
		t.Fatalf("replay across segments: entries=%d skipped=%d", len(st.Entries), st.Skipped)
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("done%d", i)
		accept(t, j, key)
		finish(t, j, key, "ok")
	}
	accept(t, j, "inflight")
	j.Close()
	before, _ := segments(dir)

	// Reopen with a small done-entry budget: compaction must keep the two
	// newest completed entries, the unfinished one in full, and delete the
	// replayed segments.
	j2, st, err := Open(dir, Options{KeepDone: 2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if got := len(st.Completed()); got != 6 {
		t.Fatalf("replayed completed = %d, want 6 (compaction trims the rewrite, not the replay)", got)
	}
	after, _ := segments(dir)
	for _, old := range before {
		for _, now := range after {
			if old == now {
				t.Fatalf("old segment %s survived compaction", old)
			}
		}
	}
	st2, err := Replay(dir, Options{})
	if err != nil {
		t.Fatalf("replay compacted: %v", err)
	}
	done := st2.Completed()
	if len(done) != 2 || done[0].Key != "done4" || done[1].Key != "done5" {
		t.Fatalf("compacted done entries = %+v, want newest two", done)
	}
	for _, e := range done {
		if string(e.Response) != `{"result":"`+e.Key+`"}` {
			t.Fatalf("compaction lost response bytes for %s: %q", e.Key, e.Response)
		}
	}
	inc := st2.Incomplete()
	if len(inc) != 1 || inc[0].Key != "inflight" || !inc[0].Started || inc[0].Request == nil {
		t.Fatalf("compacted incomplete entry = %+v", inc)
	}
}

func TestJournalTornTailQuarantined(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	accept(t, j, "good")
	accept(t, j, "torn")
	j.Close()

	segs, _ := segments(dir)
	seg := segs[len(segs)-1]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	// Tear the final record mid-byte, exactly what a crash mid-append
	// leaves behind.
	if err := os.WriteFile(seg, data[:len(data)-17], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	rec := &captureRecorder{}
	st, err := Replay(dir, Options{Observer: rec})
	if err != nil {
		t.Fatalf("replay torn journal: %v", err)
	}
	if st.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", st.Skipped)
	}
	if len(st.Entries) != 2 || !st.Entries[0].Started {
		t.Fatalf("good records lost: %+v", st.Entries)
	}
	// The torn record was entry "torn"'s started op; accepted survived.
	if st.Entries[1].Started {
		t.Fatalf("torn started record should not have applied: %+v", st.Entries[1])
	}
	sk := rec.skipped()
	if len(sk) != 1 || sk[0].Line == 0 || sk[0].Cause == "" {
		t.Fatalf("JournalSkipped telemetry = %+v", sk)
	}

	// Open on the damaged directory must still boot and compact.
	j2, st2, err := Open(dir, Options{Observer: rec})
	if err != nil {
		t.Fatalf("open over torn journal: %v", err)
	}
	defer j2.Close()
	if st2.Skipped != 1 {
		t.Fatalf("open skipped = %d, want 1", st2.Skipped)
	}
}

func TestJournalBadCRCQuarantined(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	accept(t, j, "a")
	finish(t, j, "a", "ok")
	j.Close()

	segs, _ := segments(dir)
	seg := segs[len(segs)-1]
	data, _ := os.ReadFile(seg)
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	// Flip a payload byte inside the done record (the last line) without
	// breaking the JSON framing: corrupt a character of the response.
	last := lines[len(lines)-1]
	idx := bytes.Index(last, []byte("ok"))
	if idx < 0 {
		t.Fatalf("outcome not found in %q", last)
	}
	last[idx] = 'x'
	lines[len(lines)-1] = last
	out := append(bytes.Join(lines, []byte("\n")), '\n')
	if err := os.WriteFile(seg, out, 0o644); err != nil {
		t.Fatalf("rewrite: %v", err)
	}

	rec := &captureRecorder{}
	st, err := Replay(dir, Options{Observer: rec})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if st.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", st.Skipped)
	}
	if st.Entries[0].Done {
		t.Fatalf("corrupt done record applied: %+v", st.Entries[0])
	}
	sk := rec.skipped()
	if len(sk) != 1 || !strings.Contains(sk[0].Cause, "crc mismatch") {
		t.Fatalf("skip cause = %+v, want crc mismatch", sk)
	}
}

func TestJournalZeroLengthSegment(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open over zero-length segment: %v", err)
	}
	defer j.Close()
	if len(st.Entries) != 0 || st.Skipped != 0 {
		t.Fatalf("state from empty segment: %+v", st)
	}
}

func TestJournalWriteFault(t *testing.T) {
	plan, err := faultinject.Parse("journal.write:times=1")
	if err != nil {
		t.Fatalf("parse fault spec: %v", err)
	}
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Faults: plan})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer j.Close()
	err = j.Append(Record{Op: OpAccepted, Key: "a"})
	if err == nil {
		t.Fatalf("expected injected append failure")
	}
	// The fault fires once; the retry succeeds and the failed append left
	// nothing behind.
	if err := j.Append(Record{Op: OpAccepted, Key: "a"}); err != nil {
		t.Fatalf("append after fault: %v", err)
	}
	j.Close()
	st, err := Replay(dir, Options{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(st.Entries) != 1 || st.Skipped != 0 {
		t.Fatalf("state after faulted append: %+v", st)
	}
}

func TestJournalReplayFault(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	accept(t, j, "a")
	j.Close()

	plan, err := faultinject.Parse("journal.replay:times=1")
	if err != nil {
		t.Fatalf("parse fault spec: %v", err)
	}
	rec := &captureRecorder{}
	st, err := Replay(dir, Options{Faults: plan, Observer: rec})
	if err != nil {
		t.Fatalf("replay with fault: %v", err)
	}
	if st.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (injected)", st.Skipped)
	}
	if len(rec.skipped()) != 1 {
		t.Fatalf("telemetry events = %+v", rec.events)
	}
}

func TestParseSyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncMode
		ok   bool
	}{
		{"", SyncAlways, true},
		{"always", SyncAlways, true},
		{"none", SyncNone, true},
		{"fsync", 0, false},
	} {
		got, err := ParseSyncMode(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncMode(%q) = %v, %v", tc.in, got, err)
		}
	}
}
