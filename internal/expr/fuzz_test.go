package expr

import "testing"

// FuzzAffine checks the algebraic identities of Affine on arbitrary
// expressions, scales and evaluation points. The operations are
// coefficient-wise int64 arithmetic, so the identities hold modulo 2^64
// even when individual terms overflow; overflow *rejection* happens at the
// ir.Validate layer, not here. String and Eval must never panic on any
// well-indexed input.
func FuzzAffine(f *testing.F) {
	f.Add(int64(0), int64(1), int64(-1), int64(3), int64(2), int64(5), int64(7), uint8(1), int64(4), int64(-9))
	f.Add(int64(1)<<62, int64(1)<<62, int64(-1)<<62, int64(9), int64(-3), int64(4), int64(-11), uint8(0), int64(0), int64(1))
	f.Add(int64(-5), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), uint8(7), int64(1)<<40, int64(2))
	f.Fuzz(func(t *testing.T, ac, a0, a1, bc, b0, b1, k int64, vi uint8, sc, p int64) {
		a := Affine{Const: ac, Coeffs: []int64{a0, a1}}
		b := Affine{Const: bc, Coeffs: []int64{b0, b1}}
		point := []int64{p, p - k}

		sum := a.Add(b)
		if got, want := sum.Eval(point), a.Eval(point)+b.Eval(point); got != want {
			t.Fatalf("Add: eval %d, want %d", got, want)
		}
		diff := a.Sub(b)
		if got, want := diff.Eval(point), a.Eval(point)-b.Eval(point); got != want {
			t.Fatalf("Sub: eval %d, want %d", got, want)
		}
		if !diff.Add(b).Equal(a) {
			t.Fatalf("Sub then Add is not identity: %v", diff.Add(b))
		}
		scaled := a.Scale(k)
		if got, want := scaled.Eval(point), k*a.Eval(point); got != want {
			t.Fatalf("Scale: eval %d, want %d", got, want)
		}
		if got, want := a.AddConst(k).Eval(point), a.Eval(point)+k; got != want {
			t.Fatalf("AddConst: eval %d, want %d", got, want)
		}

		// Substituting v0 := sc must equal evaluating with point[0] = sc.
		subst := a.Substitute(0, Const(sc))
		if subst.Coeff(0) != 0 {
			t.Fatalf("Substitute left v0 in %v", subst)
		}
		if got, want := subst.Eval(point), a.Eval([]int64{sc, point[1]}); got != want {
			t.Fatalf("Substitute: eval %d, want %d", got, want)
		}

		// Shifting by d moves every coefficient up d slots.
		d := int(vi % 4)
		shifted := a.ShiftVars(d)
		wide := make([]int64, d+len(point))
		copy(wide[d:], point)
		if got, want := shifted.Eval(wide), a.Eval(point); got != want {
			t.Fatalf("ShiftVars(%d): eval %d, want %d", d, got, want)
		}
		for i := 0; i < d; i++ {
			if shifted.Coeff(i) != 0 {
				t.Fatalf("ShiftVars(%d): nonzero low coefficient in %v", d, shifted)
			}
		}

		// Renderers and predicates must not panic, and IsConst must agree
		// with NumVars.
		_ = a.String()
		_ = sum.StringVars([]string{"i"})
		if a.IsConst() != (a.NumVars() == 0) {
			t.Fatalf("IsConst/NumVars disagree on %v", a)
		}
		if idx, coef, ok := a.SingleVar(); ok {
			if a.Coeff(idx) != coef || coef == 0 {
				t.Fatalf("SingleVar returned (%d,%d) for %v", idx, coef, a)
			}
		}
	})
}
