// Package expr provides affine integer expressions over loop variables.
//
// An affine expression has the form c0 + c1*v1 + ... + cn*vn where the vi
// are loop variables identified by their depth index in a loop nest. Affine
// expressions are the common currency of the whole analysis: array
// subscripts, loop bounds and cache-miss-equation terms are all affine.
package expr

import (
	"fmt"
	"strings"
)

// Affine is an affine expression c0 + sum(Coeffs[i] * var_i). Coeffs may be
// shorter than the number of variables in scope; missing entries are zero.
// The zero value is the constant 0.
type Affine struct {
	Const  int64
	Coeffs []int64
}

// Const returns the affine expression with constant value c.
func Const(c int64) Affine { return Affine{Const: c} }

// Var returns the affine expression 1*v_i for variable index i.
func Var(i int) Affine {
	c := make([]int64, i+1)
	c[i] = 1
	return Affine{Coeffs: c}
}

// VarPlus returns v_i + c, the most common subscript form.
func VarPlus(i int, c int64) Affine {
	a := Var(i)
	a.Const = c
	return a
}

// Term returns coef*v_i + c.
func Term(i int, coef, c int64) Affine {
	cs := make([]int64, i+1)
	cs[i] = coef
	return Affine{Const: c, Coeffs: cs}
}

// Coeff returns the coefficient of variable i (zero if absent).
func (a Affine) Coeff(i int) int64 {
	if i < len(a.Coeffs) {
		return a.Coeffs[i]
	}
	return 0
}

// NumVars returns one past the highest variable index with a nonzero
// coefficient.
func (a Affine) NumVars() int {
	for i := len(a.Coeffs) - 1; i >= 0; i-- {
		if a.Coeffs[i] != 0 {
			return i + 1
		}
	}
	return 0
}

// IsConst reports whether the expression has no variable terms.
func (a Affine) IsConst() bool { return a.NumVars() == 0 }

// Add returns a+b.
func (a Affine) Add(b Affine) Affine {
	n := max(len(a.Coeffs), len(b.Coeffs))
	c := make([]int64, n)
	copy(c, a.Coeffs)
	for i, v := range b.Coeffs {
		c[i] += v
	}
	return Affine{Const: a.Const + b.Const, Coeffs: c}
}

// Sub returns a-b.
func (a Affine) Sub(b Affine) Affine { return a.Add(b.Scale(-1)) }

// Scale returns k*a.
func (a Affine) Scale(k int64) Affine {
	c := make([]int64, len(a.Coeffs))
	for i, v := range a.Coeffs {
		c[i] = k * v
	}
	return Affine{Const: k * a.Const, Coeffs: c}
}

// AddConst returns a+c.
func (a Affine) AddConst(c int64) Affine {
	out := a
	out.Coeffs = append([]int64(nil), a.Coeffs...)
	out.Const += c
	return out
}

// Eval evaluates the expression at the given point. The point must cover
// every variable the expression references.
func (a Affine) Eval(point []int64) int64 {
	v := a.Const
	for i, c := range a.Coeffs {
		if c != 0 {
			v += c * point[i]
		}
	}
	return v
}

// Substitute replaces variable i with the expression e, returning the new
// affine expression.
func (a Affine) Substitute(i int, e Affine) Affine {
	c := a.Coeff(i)
	if c == 0 {
		return a
	}
	out := a
	out.Coeffs = append([]int64(nil), a.Coeffs...)
	out.Coeffs[i] = 0
	return out.Add(e.Scale(c))
}

// ShiftVars returns the expression with every variable index increased by d.
// It is used when embedding an expression written over inner loop variables
// into a nest with d additional outer loops.
func (a Affine) ShiftVars(d int) Affine {
	if a.IsConst() {
		return Affine{Const: a.Const}
	}
	c := make([]int64, len(a.Coeffs)+d)
	copy(c[d:], a.Coeffs)
	return Affine{Const: a.Const, Coeffs: c}
}

// Equal reports structural equality (same constant and coefficients).
func (a Affine) Equal(b Affine) bool {
	if a.Const != b.Const {
		return false
	}
	n := max(len(a.Coeffs), len(b.Coeffs))
	for i := 0; i < n; i++ {
		if a.Coeff(i) != b.Coeff(i) {
			return false
		}
	}
	return true
}

// SingleVar reports whether the expression is of the form coef*v + c with
// exactly one variable, returning that variable's index and coefficient.
func (a Affine) SingleVar() (idx int, coef int64, ok bool) {
	idx = -1
	for i, c := range a.Coeffs {
		if c == 0 {
			continue
		}
		if idx >= 0 {
			return -1, 0, false
		}
		idx, coef = i, c
	}
	return idx, coef, idx >= 0
}

// String renders the expression using variable names v0, v1, ...
func (a Affine) String() string { return a.StringVars(nil) }

// StringVars renders the expression using the provided variable names,
// falling back to v<i> when names run out.
func (a Affine) StringVars(names []string) string {
	var b strings.Builder
	first := true
	for i, c := range a.Coeffs {
		if c == 0 {
			continue
		}
		name := fmt.Sprintf("v%d", i)
		if i < len(names) {
			name = names[i]
		}
		switch {
		case first && c == 1:
			b.WriteString(name)
		case first && c == -1:
			b.WriteString("-" + name)
		case first:
			fmt.Fprintf(&b, "%d*%s", c, name)
		case c == 1:
			b.WriteString("+" + name)
		case c == -1:
			b.WriteString("-" + name)
		case c > 0:
			fmt.Fprintf(&b, "+%d*%s", c, name)
		default:
			fmt.Fprintf(&b, "%d*%s", c, name)
		}
		first = false
	}
	if first {
		return fmt.Sprintf("%d", a.Const)
	}
	if a.Const > 0 {
		fmt.Fprintf(&b, "+%d", a.Const)
	} else if a.Const < 0 {
		fmt.Fprintf(&b, "%d", a.Const)
	}
	return b.String()
}
