package expr

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestConstAndVar(t *testing.T) {
	c := Const(7)
	if !c.IsConst() || c.Eval(nil) != 7 {
		t.Fatalf("Const(7) = %v", c)
	}
	v := Var(2)
	if got := v.Eval([]int64{1, 2, 3}); got != 3 {
		t.Fatalf("Var(2).Eval = %d, want 3", got)
	}
	if v.NumVars() != 3 {
		t.Fatalf("NumVars = %d, want 3", v.NumVars())
	}
}

func TestVarPlusAndTerm(t *testing.T) {
	a := VarPlus(1, -1) // v1 - 1
	if got := a.Eval([]int64{10, 20}); got != 19 {
		t.Fatalf("VarPlus eval = %d, want 19", got)
	}
	b := Term(0, 3, 5) // 3*v0 + 5
	if got := b.Eval([]int64{4}); got != 17 {
		t.Fatalf("Term eval = %d, want 17", got)
	}
}

func TestAddSubScale(t *testing.T) {
	a := VarPlus(0, 2) // v0+2
	b := Term(1, 3, 1) // 3*v1+1
	sum := a.Add(b)
	pt := []int64{5, 7}
	if got, want := sum.Eval(pt), a.Eval(pt)+b.Eval(pt); got != want {
		t.Fatalf("Add eval = %d, want %d", got, want)
	}
	diff := a.Sub(b)
	if got, want := diff.Eval(pt), a.Eval(pt)-b.Eval(pt); got != want {
		t.Fatalf("Sub eval = %d, want %d", got, want)
	}
	sc := a.Scale(-4)
	if got, want := sc.Eval(pt), -4*a.Eval(pt); got != want {
		t.Fatalf("Scale eval = %d, want %d", got, want)
	}
}

func TestSubstitute(t *testing.T) {
	// a = 2*v0 + v1; substitute v0 := v2 + 3 -> 2*v2 + v1 + 6
	a := Term(0, 2, 0).Add(Var(1))
	s := a.Substitute(0, VarPlus(2, 3))
	pt := []int64{99, 5, 4} // v0 ignored after substitution
	if got := s.Eval(pt); got != 2*(4+3)+5 {
		t.Fatalf("Substitute eval = %d, want %d", got, 2*(4+3)+5)
	}
	if s.Coeff(0) != 0 {
		t.Fatalf("v0 coefficient should vanish, got %d", s.Coeff(0))
	}
	// substituting an absent variable is a no-op
	if got := a.Substitute(5, Const(1)); !got.Equal(a) {
		t.Fatalf("no-op substitution changed expression")
	}
}

func TestShiftVars(t *testing.T) {
	a := VarPlus(0, 1).Add(Term(1, 2, 0)) // v0 + 2*v1 + 1
	s := a.ShiftVars(2)
	if got := s.Eval([]int64{0, 0, 3, 4}); got != 3+8+1 {
		t.Fatalf("ShiftVars eval = %d, want 12", got)
	}
	c := Const(9).ShiftVars(3)
	if !c.IsConst() || c.Const != 9 {
		t.Fatalf("shifting a constant changed it: %v", c)
	}
}

func TestSingleVar(t *testing.T) {
	a := Term(3, -2, 7)
	idx, coef, ok := a.SingleVar()
	if !ok || idx != 3 || coef != -2 {
		t.Fatalf("SingleVar = %d,%d,%v", idx, coef, ok)
	}
	if _, _, ok := Const(1).SingleVar(); ok {
		t.Fatal("constant reported as single-var")
	}
	if _, _, ok := Var(0).Add(Var(1)).SingleVar(); ok {
		t.Fatal("two-var expression reported as single-var")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		a    Affine
		want string
	}{
		{Const(0), "0"},
		{Const(-3), "-3"},
		{Var(0), "v0"},
		{VarPlus(1, -1), "v1-1"},
		{Term(0, 2, 3), "2*v0+3"},
		{Var(0).Scale(-1), "-v0"},
		{Var(0).Add(Var(1).Scale(-1)), "v0-v1"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.a, got, c.want)
		}
	}
	named := VarPlus(0, 1).StringVars([]string{"i"})
	if named != "i+1" {
		t.Errorf("StringVars = %q, want i+1", named)
	}
}

func randAffine(r *rand.Rand, nvars int) Affine {
	a := Const(r.Int64N(21) - 10)
	for i := 0; i < nvars; i++ {
		a = a.Add(Term(i, r.Int64N(11)-5, 0))
	}
	return a
}

// Property: Add/Sub/Scale agree with pointwise arithmetic on random points.
func TestAffineArithmeticProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for iter := 0; iter < 200; iter++ {
		nv := 1 + int(r.Int64N(5))
		a, b := randAffine(r, nv), randAffine(r, nv)
		pt := make([]int64, nv)
		for i := range pt {
			pt[i] = r.Int64N(2001) - 1000
		}
		if a.Add(b).Eval(pt) != a.Eval(pt)+b.Eval(pt) {
			t.Fatal("Add property violated")
		}
		if a.Sub(b).Eval(pt) != a.Eval(pt)-b.Eval(pt) {
			t.Fatal("Sub property violated")
		}
		k := r.Int64N(9) - 4
		if a.Scale(k).Eval(pt) != k*a.Eval(pt) {
			t.Fatal("Scale property violated")
		}
	}
}

// Property: substitution then evaluation equals evaluation with the
// substituted value plugged in.
func TestSubstituteProperty(t *testing.T) {
	f := func(c0 int8, c1 int8, k int8, x int8, y int8) bool {
		a := Term(0, int64(c0), 3).Add(Term(1, int64(c1), 0))
		e := Term(1, int64(k), -2) // v0 := k*v1 - 2
		s := a.Substitute(0, e)
		pt := []int64{0, int64(y)}
		full := []int64{e.Eval(pt), int64(y)}
		_ = x
		return s.Eval(pt) == a.Eval(full)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
