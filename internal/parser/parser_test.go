package parser

import (
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/cme"
	"repro/internal/tiling"
)

const transposeSrc = `
# 2D transpose
array a(100,100) real8
array b(100,100) real8
do i = 1, 100
  do j = 1, 100
    read  b(i, j)
    write a(j, i)
  end
end
`

func TestParseTranspose(t *testing.T) {
	prog, err := ParseString(transposeSrc, "t2d")
	if err != nil {
		t.Fatal(err)
	}
	nest := prog.Nest
	if nest.Depth() != 2 || len(nest.Refs) != 2 {
		t.Fatalf("depth %d refs %d", nest.Depth(), len(nest.Refs))
	}
	if !nest.IsRectangular() {
		t.Fatal("not rectangular")
	}
	if nest.Refs[0].Array.Name != "b" || nest.Refs[1].Array.Name != "a" || !nest.Refs[1].Write {
		t.Fatalf("refs wrong: %v", nest.Refs)
	}
	// a and b laid back to back, line-aligned, non-overlapping.
	a, b := prog.Arrays[0], prog.Arrays[1]
	if a.Name != "a" || b.Name != "b" {
		t.Fatalf("array order %v", prog.Arrays)
	}
	if b.Base < a.Base+a.SizeBytes() || b.Base%32 != 0 {
		t.Fatalf("layout: a@%d(%dB) b@%d", a.Base, a.SizeBytes(), b.Base)
	}
	// Subscripts evaluate correctly: b(i,j) at i=2,j=3.
	addr := nest.Refs[0].Address([]int64{2, 3})
	want := a.SizeBytes() // b base (a is 80000B, already 32-aligned)
	want = b.Base + (2-1)*8 + (3-1)*100*8
	if addr != want {
		t.Fatalf("b(2,3) at %d, want %d", addr, want)
	}
}

// TestParsedKernelAnalyzes: a parsed kernel runs through the whole
// pipeline — analyzer matches simulator on it.
func TestParsedKernelAnalyzes(t *testing.T) {
	src := `
array x(40,40) real8
array y(40,40) real8 align 8192
do i = 2, 39
  do j = 1, 40
    read  x(i-1, j)
    read  y(i, j)
    write x(i, j)
  end
end
`
	prog, err := ParseString(src, "custom")
	if err != nil {
		t.Fatal(err)
	}
	box, err := tiling.Box(prog.Nest)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cache.Config{Size: 1024, LineSize: 32, Assoc: 1}
	an, err := cme.NewAnalyzer(prog.Nest, box, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact := an.ExhaustiveStats()
	sim := cachesim.SimulateNest(prog.Nest, cfg)
	if exact != sim {
		t.Fatalf("analyzer %+v != simulator %+v", exact, sim)
	}
}

func TestAffineSubscripts(t *testing.T) {
	src := `
array a(200) real8
do i = 1, 50
  do j = 1, 2
    read a(2*i - 1)
    read a(101-i)
    write a(i+j)
  end
end
`
	prog, err := ParseString(src, "affine")
	if err != nil {
		t.Fatal(err)
	}
	refs := prog.Nest.Refs
	pt := []int64{10, 2}
	base := prog.Arrays[0].Base
	if got := refs[0].Address(pt); got != base+(2*10-1-1)*8 {
		t.Fatalf("2*i-1: %d", got)
	}
	if got := refs[1].Address(pt); got != base+(101-10-1)*8 {
		t.Fatalf("101-i: %d", got)
	}
	if got := refs[2].Address(pt); got != base+(10+2-1)*8 {
		t.Fatalf("i+j: %d", got)
	}
}

func TestArrayAttributes(t *testing.T) {
	src := `
array a(10,10) real4 pad(3,0)
array b(10) real8 base 12345
do i = 1, 10
  read a(i, i)
  read b(i)
end
`
	prog, err := ParseString(src, "attrs")
	if err != nil {
		t.Fatal(err)
	}
	a, b := prog.Arrays[0], prog.Arrays[1]
	if a.Elem != 4 || a.Pad[0] != 3 {
		t.Fatalf("a attrs: %+v", a)
	}
	if b.Base != 12345 {
		t.Fatalf("b base: %d", b.Base)
	}
	// a(1,2) stride uses padded leading dim 13.
	if got := a.Address([]int64{1, 2}); got != a.Base+13*4 {
		t.Fatalf("padded a(1,2): %d", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown stmt":      "foo bar",
		"end without do":    "end",
		"ref outside loops": "array a(4) real8\nread a(1)",
		"unknown array":     "do i = 1, 4\n read z(i)\nend",
		"rank mismatch":     "array a(4,4) real8\ndo i = 1, 4\n read a(i)\nend",
		"unknown variable":  "array a(9) real8\ndo i = 1, 3\n read a(q)\nend",
		"unclosed do":       "array a(9) real8\ndo i = 1, 3\n read a(i)",
		"empty body":        "do i = 1, 3\nend",
		"imperfect nest":    "array a(9) real8\ndo i = 1, 3\n read a(i)\n do j = 1, 3\n  read a(j)\n end\nend",
		"reused variable":   "array a(9) real8\ndo i = 1, 3\n do i = 1, 2\n  read a(i)\n end\nend",
		"empty loop":        "array a(9) real8\ndo i = 5, 3\n read a(i)\nend",
		"bad dimension":     "array a(0) real8\ndo i = 1, 2\n read a(i)\nend",
		"redeclared":        "array a(4) real8\narray a(4) real8\ndo i = 1, 2\n read a(i)\nend",
		"bad align":         "array a(4) real8 align 33\ndo i = 1, 2\n read a(i)\nend",
		"two nests":         "array a(4) real8\ndo i = 1, 2\n read a(i)\nend\ndo j = 1, 2\n read a(j)\nend",
		"trailing":          "array a(4) real8\ndo i = 1, 2\n read a(i) junk\nend",
		"bad bound":         "array a(4) real8\ndo i = 1, x\n read a(i)\nend",
		"unbalanced parens": "array a(4 real8\ndo i = 1, 2\n read a(i)\nend",
		"unknown attribute": "array a(4) real8 huge\ndo i = 1, 2\n read a(i)\nend",
	}
	for name, src := range cases {
		if _, err := ParseString(src, name); err == nil {
			t.Errorf("%s: accepted:\n%s", name, src)
		}
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	src := "# header\n\narray a(8) real8  # trailing\n\ndo i = 1, 8  # loop\n  read a(i)\nend\n"
	if _, err := ParseString(src, "c"); err != nil {
		t.Fatal(err)
	}
	_ = strings.TrimSpace
}

// TestParserNeverPanics: randomly corrupted variants of a valid source
// must produce errors, never panics.
func TestParserNeverPanics(t *testing.T) {
	base := "array a(16,16) real8\narray b(16,16) real8\ndo i = 1, 16\n do j = 1, 16\n  read b(i, j)\n  write a(j, i)\n end\nend\n"
	r := rand.New(rand.NewPCG(7, 11))
	junk := []byte("()=,*+-#xz09 \n")
	for iter := 0; iter < 3000; iter++ {
		bs := []byte(base)
		for m := 0; m < 1+int(r.Int64N(5)); m++ {
			pos := int(r.Int64N(int64(len(bs))))
			switch r.Int64N(3) {
			case 0: // mutate
				bs[pos] = junk[r.Int64N(int64(len(junk)))]
			case 1: // delete
				bs = append(bs[:pos], bs[pos+1:]...)
			case 2: // insert
				c := junk[r.Int64N(int64(len(junk)))]
				bs = append(bs[:pos], append([]byte{c}, bs[pos:]...)...)
			}
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on input:\n%s\n%v", bs, rec)
				}
			}()
			prog, err := ParseString(string(bs), "fuzz")
			if err == nil {
				// A still-valid program must at least validate.
				if verr := prog.Nest.Validate(); verr != nil {
					t.Fatalf("parser accepted invalid nest: %v\n%s", verr, bs)
				}
			}
		}()
	}
}
