package parser

import "testing"

// FuzzParse is a native fuzz entry for the textual front end: any input
// must either parse into a valid nest or return an error — never panic.
func FuzzParse(f *testing.F) {
	f.Add(transposeSrc)
	f.Add("array a(4) real8\ndo i = 1, 4\n read a(i)\nend\n")
	f.Add("do i = 1, 3\nend")
	f.Add("array a(10,10) real4 pad(1,0) align 64\ndo i = 1, 9\n do j = 1, 9\n  write a(i+1, 2*j-1)\n end\nend")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseString(src, "fuzz")
		if err == nil {
			if verr := prog.Nest.Validate(); verr != nil {
				t.Fatalf("accepted invalid nest: %v", verr)
			}
		}
	})
}
