// Package parser reads textual loop-nest descriptions into the IR — the
// reproduction's stand-in for the paper's Polaris/Ictineo Fortran front
// end. The format mirrors the pseudo-Fortran the paper prints:
//
//	# comment
//	array a(100,100) real8
//	array b(100,100) real8 pad(3,0) align 8192
//	do i = 1, 100
//	  do j = 1, 100
//	    read  b(i, j)
//	    write a(j, i)
//	  end
//	end
//
// Arrays are column-major (Fortran order) and are laid out back to back in
// declaration order, each aligned to its "align" attribute (default: the
// 32-byte line size). Subscripts are affine expressions over the loop
// variables: sums of integer constants and optionally-scaled variables,
// e.g. "i", "j+1", "2*k-1", "101-i".
package parser

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/ir"
)

// Program is a parsed kernel file.
type Program struct {
	Nest   *ir.Nest
	Arrays []*ir.Array
}

// Parse reads a kernel description.
func Parse(r io.Reader, name string) (*Program, error) {
	p := &parser{
		name:   name,
		arrays: map[string]*ir.Array{},
		vars:   map[string]int{},
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		p.lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, p.lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.depth() != 0 {
		return nil, fmt.Errorf("%s: %d unclosed do loop(s)", name, p.depth())
	}
	if p.nest == nil {
		return nil, fmt.Errorf("%s: no loop nest", name)
	}
	if err := p.nest.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &Program{Nest: p.nest, Arrays: p.order}, nil
}

// ParseString is Parse over a string.
func ParseString(s, name string) (*Program, error) {
	return Parse(strings.NewReader(s), name)
}

type parser struct {
	name   string
	lineNo int

	arrays   map[string]*ir.Array
	order    []*ir.Array
	nextAddr int64

	vars  map[string]int
	loops []ir.Loop
	refs  []ir.Ref
	nest  *ir.Nest
	open  int // currently open do loops
	body  bool
}

func (p *parser) depth() int { return p.open }

func (p *parser) line(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "array":
		return p.array(line)
	case "do":
		return p.do_(line)
	case "end", "enddo", "endo":
		if p.open == 0 {
			return fmt.Errorf("end without open do")
		}
		if p.open == len(p.loops) && len(p.refs) == 0 {
			return fmt.Errorf("loop body has no references")
		}
		p.open--
		if p.open == 0 {
			if p.nest != nil {
				return fmt.Errorf("multiple top-level loop nests")
			}
			p.nest = &ir.Nest{Name: p.name, Loops: p.loops, Refs: p.refs}
		}
		return nil
	case "read", "write":
		return p.ref(fields[0] == "write", line)
	default:
		return fmt.Errorf("unknown statement %q", fields[0])
	}
}

// array NAME(d1,d2,...) [real8|real4] [pad(p1,...)] [align N] [base N]
func (p *parser) array(line string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "array"))
	name, dims, rest, err := nameAndList(rest)
	if err != nil {
		return err
	}
	if _, dup := p.arrays[name]; dup {
		return fmt.Errorf("array %s redeclared", name)
	}
	a := &ir.Array{Name: name, Elem: 8, Layout: ir.ColumnMajor}
	for _, d := range dims {
		v, err := strconv.ParseInt(d, 10, 64)
		if err != nil || v < 1 {
			return fmt.Errorf("bad dimension %q", d)
		}
		a.Dims = append(a.Dims, v)
	}
	align := int64(32)
	toks := strings.Fields(rest)
	for i := 0; i < len(toks); i++ {
		switch {
		case toks[i] == "real8":
			a.Elem = 8
		case toks[i] == "real4":
			a.Elem = 4
		case strings.HasPrefix(toks[i], "pad("):
			_, pads, _, err := nameAndList(toks[i])
			if err != nil {
				return fmt.Errorf("bad pad: %v", err)
			}
			if len(pads) != len(a.Dims) {
				return fmt.Errorf("pad rank %d != array rank %d", len(pads), len(a.Dims))
			}
			a.Pad = make([]int64, len(pads))
			for d, s := range pads {
				v, err := strconv.ParseInt(s, 10, 64)
				if err != nil || v < 0 {
					return fmt.Errorf("bad pad %q", s)
				}
				a.Pad[d] = v
			}
		case toks[i] == "align" && i+1 < len(toks):
			i++
			v, err := strconv.ParseInt(toks[i], 10, 64)
			if err != nil || v < 1 || v&(v-1) != 0 {
				return fmt.Errorf("bad align %q", toks[i])
			}
			align = v
		case toks[i] == "base" && i+1 < len(toks):
			i++
			v, err := strconv.ParseInt(toks[i], 10, 64)
			if err != nil || v < 0 {
				return fmt.Errorf("bad base %q", toks[i])
			}
			align = 0
			a.Base = v
		default:
			return fmt.Errorf("unknown array attribute %q", toks[i])
		}
	}
	if align > 0 {
		a.Base = (p.nextAddr + align - 1) &^ (align - 1)
	}
	if a.Base < p.nextAddr && align > 0 {
		return fmt.Errorf("internal layout error")
	}
	end := a.Base + a.SizeBytes()
	if end > p.nextAddr {
		p.nextAddr = end
	}
	if err := a.Validate(); err != nil {
		return err
	}
	p.arrays[name] = a
	p.order = append(p.order, a)
	return nil
}

// do VAR = LO, HI
func (p *parser) do_(line string) error {
	if p.nest != nil {
		return fmt.Errorf("multiple top-level loop nests")
	}
	if len(p.refs) > 0 {
		return fmt.Errorf("do after body references (nest must be perfect)")
	}
	rest := strings.TrimSpace(strings.TrimPrefix(line, "do"))
	eq := strings.IndexByte(rest, '=')
	if eq < 0 {
		return fmt.Errorf("malformed do %q", line)
	}
	v := strings.TrimSpace(rest[:eq])
	if !isIdent(v) {
		return fmt.Errorf("bad loop variable %q", v)
	}
	if _, dup := p.vars[v]; dup {
		return fmt.Errorf("loop variable %s reused", v)
	}
	bounds := strings.Split(rest[eq+1:], ",")
	if len(bounds) != 2 {
		return fmt.Errorf("do needs 'var = lo, hi'")
	}
	lo, err := strconv.ParseInt(strings.TrimSpace(bounds[0]), 10, 64)
	if err != nil {
		return fmt.Errorf("bad lower bound %q", bounds[0])
	}
	hi, err := strconv.ParseInt(strings.TrimSpace(bounds[1]), 10, 64)
	if err != nil {
		return fmt.Errorf("bad upper bound %q", bounds[1])
	}
	if lo > hi {
		return fmt.Errorf("empty loop %s = %d, %d", v, lo, hi)
	}
	p.vars[v] = len(p.loops)
	p.loops = append(p.loops, ir.Loop{
		Var: v, Lower: expr.Const(lo), Upper: ir.BoundOf(expr.Const(hi)), Step: 1,
	})
	p.open++
	return nil
}

// read|write NAME(e1, e2, ...)
func (p *parser) ref(write bool, line string) error {
	if p.open == 0 {
		return fmt.Errorf("reference outside loops")
	}
	if p.open != len(p.loops) {
		return fmt.Errorf("reference must be in the innermost loop (perfect nest)")
	}
	word := "read"
	if write {
		word = "write"
	}
	rest := strings.TrimSpace(strings.TrimPrefix(line, word))
	name, subs, tail, err := nameAndList(rest)
	if err != nil {
		return err
	}
	if strings.TrimSpace(tail) != "" {
		return fmt.Errorf("trailing input %q", tail)
	}
	arr, ok := p.arrays[name]
	if !ok {
		return fmt.Errorf("unknown array %s", name)
	}
	if len(subs) != arr.Rank() {
		return fmt.Errorf("%s has rank %d, got %d subscripts", name, arr.Rank(), len(subs))
	}
	r := ir.Ref{Array: arr, Write: write}
	for _, s := range subs {
		e, err := p.affine(s)
		if err != nil {
			return fmt.Errorf("subscript %q: %w", s, err)
		}
		r.Subs = append(r.Subs, e)
	}
	p.refs = append(p.refs, r)
	return nil
}

// affine parses "2*i - j + 3" style expressions over declared variables.
func (p *parser) affine(s string) (expr.Affine, error) {
	out := expr.Const(0)
	// Tokenise into signed terms.
	s = strings.ReplaceAll(s, " ", "")
	if s == "" {
		return out, fmt.Errorf("empty expression")
	}
	sign := int64(1)
	i := 0
	for i < len(s) {
		switch s[i] {
		case '+':
			sign = 1
			i++
			continue
		case '-':
			sign = -1
			i++
			continue
		}
		// term: [num][*ident] | ident
		j := i
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		coef := int64(1)
		if j > i {
			v, err := strconv.ParseInt(s[i:j], 10, 64)
			if err != nil {
				return out, err
			}
			coef = v
			i = j
			if i < len(s) && s[i] == '*' {
				i++
			} else {
				out = out.AddConst(sign * coef)
				sign = 1
				continue
			}
		}
		j = i
		for j < len(s) && isIdentByte(s[j]) {
			j++
		}
		if j == i {
			return out, fmt.Errorf("expected identifier at %q", s[i:])
		}
		name := s[i:j]
		idx, ok := p.vars[name]
		if !ok {
			return out, fmt.Errorf("unknown loop variable %q", name)
		}
		out = out.Add(expr.Term(idx, sign*coef, 0))
		sign = 1
		i = j
	}
	return out, nil
}

// nameAndList parses "name(item1,item2,...)" and returns the remainder.
func nameAndList(s string) (name string, items []string, rest string, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open <= 0 {
		return "", nil, "", fmt.Errorf("expected name(...) in %q", s)
	}
	name = strings.TrimSpace(s[:open])
	if !isIdent(name) {
		return "", nil, "", fmt.Errorf("bad name %q", name)
	}
	depth := 0
	for i := open; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				inner := s[open+1 : i]
				for _, part := range strings.Split(inner, ",") {
					items = append(items, strings.TrimSpace(part))
				}
				return name, items, s[i+1:], nil
			}
		}
	}
	return "", nil, "", fmt.Errorf("unbalanced parentheses in %q", s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isIdentByte(s[i]) {
			return false
		}
	}
	return s[0] < '0' || s[0] > '9'
}

func isIdentByte(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}
