package baselines

import (
	"testing"

	"math/rand/v2"
	"repro/internal/cache"
	"repro/internal/cme"
	"repro/internal/iterspace"

	"repro/internal/kernels"
	"repro/internal/sampling"
	"repro/internal/tiling"
)

// TestSelectorsProduceValidTiles: every selector yields in-range tile
// vectors for every catalog kernel.
func TestSelectorsProduceValidTiles(t *testing.T) {
	for _, k := range kernels.All() {
		nest, err := k.Instance(0)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		box, _ := tiling.Box(nest)
		for _, sel := range All() {
			tile, err := sel.Select(nest, cache.DM8K)
			if err != nil {
				t.Fatalf("%s/%s: %v", sel.Name, k.Name, err)
			}
			if len(tile) != nest.Depth() {
				t.Fatalf("%s/%s: tile rank %d", sel.Name, k.Name, len(tile))
			}
			for d, v := range tile {
				if v < 1 || v > box.Extent(d) {
					t.Fatalf("%s/%s: tile %v out of range in dim %d", sel.Name, k.Name, tile, d)
				}
			}
			// The tile must be applicable.
			if _, _, err := tiling.Apply(nest, tile); err != nil {
				t.Fatalf("%s/%s: %v", sel.Name, k.Name, err)
			}
		}
	}
}

// TestBaselinesImproveMM: every baseline beats the untiled order on
// matrix multiplication — the kernel all four algorithms were designed
// around. Uses a shared fixed sample so the comparison is exact.
func TestBaselinesImproveMM(t *testing.T) {
	k, _ := kernels.Get("MM")
	nest, err := k.Instance(200)
	if err != nil {
		t.Fatal(err)
	}
	box, _ := tiling.Box(nest)
	sample := sampling.Draw(box, 1500, rand.New(rand.NewPCG(3, 5)))
	anU, err := cme.NewAnalyzer(nest, box, cache.DM8K)
	if err != nil {
		t.Fatal(err)
	}
	before := sample.Evaluate(anU)
	if before.ReplacementRatio() < 0.15 {
		t.Fatalf("untiled MM unexpectedly healthy: %v", before)
	}
	for _, sel := range All() {
		tile, err := sel.Select(nest, cache.DM8K)
		if err != nil {
			t.Fatalf("%s: %v", sel.Name, err)
		}
		space := iterspace.NewTiled(box, tile)
		an, err := cme.NewAnalyzer(nest, space, cache.DM8K)
		if err != nil {
			t.Fatalf("%s: %v", sel.Name, err)
		}
		after := sample.Evaluate(an)
		if after.Replacement >= before.Replacement/2 {
			t.Errorf("%s: tile %v did not halve replacement misses (%d -> %d)",
				sel.Name, tile, before.Replacement, after.Replacement)
		}
	}
}

func TestLRWAvoidsSelfInterference(t *testing.T) {
	// A 256-element column stride with a 2KB cache: rows exactly 8 lines
	// apart alias after 8 rows.
	cfg := cache.Config{Size: 2048, LineSize: 32, Assoc: 1}
	if !selfInterferes(64, 2048, cfg) {
		t.Fatal("aliasing rows not detected")
	}
	if selfInterferes(4, 256, cfg) {
		t.Fatal("non-aliasing tile flagged")
	}
}

func TestRangesOverlapMod(t *testing.T) {
	if !rangesOverlapMod(0, 64, 32, 64, 1024) {
		t.Fatal("overlap missed")
	}
	if rangesOverlapMod(0, 32, 64, 32, 1024) {
		t.Fatal("disjoint ranges flagged")
	}
	// Wraparound case.
	if !rangesOverlapMod(1000, 64, 8, 32, 1024) {
		t.Fatal("wraparound overlap missed")
	}
}
