// Package baselines implements the tile-size selection algorithms the
// paper's related-work section compares against conceptually (§5): a fixed
// square-root heuristic, Lam–Rothberg–Wolf's largest non-self-interfering
// square, a Coleman–McKinley-style Euclidean candidate search (TSS), and
// the Ghosh/Martonosi/Malik self-interference maximisation. They produce
// tile vectors for the same nests the GA optimises, enabling head-to-head
// ablation benchmarks.
//
// Each selector is a documented reconstruction of the published
// algorithm's core idea, specialised to this repository's IR; none of the
// original implementations are available.
package baselines

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/tiling"
)

// Selector is one tile-size selection algorithm.
type Selector struct {
	Name        string
	Description string
	Select      func(nest *ir.Nest, cfg cache.Config) ([]int64, error)
}

// All returns the selectors in comparison order.
func All() []Selector {
	return []Selector{
		{
			Name:        "fixed-sqrt",
			Description: "square tiles sized so one tile per array fits in cache",
			Select:      FixedSquare,
		},
		{
			Name:        "lrw",
			Description: "Lam–Rothberg–Wolf largest non-self-interfering square",
			Select:      LRW,
		},
		{
			Name:        "tss",
			Description: "Coleman–McKinley Euclidean candidate tiles (TSS/ESS)",
			Select:      TSS,
		},
		{
			Name:        "ghosh-self",
			Description: "Ghosh et al. per-equation self-interference maximisation",
			Select:      GhoshSelf,
		},
	}
}

// FixedSquare sizes equal tile extents so that the per-array tile
// footprint sums to the cache capacity: T = ⌊(C / (A·elem))^(1/k)⌋,
// clamped per dimension.
func FixedSquare(nest *ir.Nest, cfg cache.Config) ([]int64, error) {
	box, err := tiling.Box(nest)
	if err != nil {
		return nil, err
	}
	arrays := nest.Arrays()
	if len(arrays) == 0 {
		return nil, fmt.Errorf("baselines: nest has no arrays")
	}
	elem := arrays[0].Elem
	k := nest.Depth()
	budget := float64(cfg.Size) / float64(int64(len(arrays))*elem)
	t := int64(math.Floor(math.Pow(budget, 1/float64(k))))
	if t < 1 {
		t = 1
	}
	tile := make([]int64, k)
	for d := range tile {
		tile[d] = clamp(t, 1, box.Extent(d))
	}
	return tile, nil
}

// LRW implements the Lam–Rothberg–Wolf idea: the largest square tile of
// the critical array (the reference with the largest column stride) whose
// rows occupy pairwise disjoint cache-set ranges — no self-interference.
// Dimensions not used by the critical reference stay untiled.
func LRW(nest *ir.Nest, cfg cache.Config) ([]int64, error) {
	box, err := tiling.Box(nest)
	if err != nil {
		return nil, err
	}
	ref, rowVar, colVar, colStride := criticalRef(nest)
	if ref == nil {
		// No two-dimensional reference: fall back to the fixed heuristic.
		return FixedSquare(nest, cfg)
	}
	elem := ref.Array.Elem
	maxT := min64(box.Extent(rowVar), box.Extent(colVar))
	if lines := cfg.Size / cfg.LineSize; maxT > lines {
		maxT = lines
	}
	best := int64(1)
	for t := maxT; t >= 1; t-- {
		if !selfInterferes(t, colStride*elem, cfg) {
			best = t
			break
		}
	}
	tile := make([]int64, nest.Depth())
	for d := range tile {
		tile[d] = box.Extent(d)
	}
	tile[rowVar] = clamp(best, 1, box.Extent(rowVar))
	tile[colVar] = clamp(best, 1, box.Extent(colVar))
	return tile, nil
}

// selfInterferes reports whether a t×t tile with the given column stride
// (bytes) has two rows whose footprints overlap in cache-set space.
func selfInterferes(t, colStrideBytes int64, cfg cache.Config) bool {
	rowBytes := t * 8 // row footprint along the fast dimension
	starts := make([]int64, t)
	for j := int64(0); j < t; j++ {
		starts[j] = (j * colStrideBytes) % cfg.Size
	}
	for a := 0; a < len(starts); a++ {
		for b := a + 1; b < len(starts); b++ {
			if rangesOverlapMod(starts[a], rowBytes, starts[b], rowBytes, cfg.Size) {
				return true
			}
		}
	}
	return false
}

func rangesOverlapMod(a, alen, b, blen, m int64) bool {
	d := (b - a) % m
	if d < 0 {
		d += m
	}
	return d < alen || m-d < blen
}

// TSS implements the Coleman–McKinley tile-size-selection idea: Euclidean-
// algorithm remainders of (cache size, column stride) generate candidate
// tile heights whose rows pack the cache without self-conflict; the
// algorithm picks the candidate maximising tile area under the capacity
// constraint shared by all arrays.
func TSS(nest *ir.Nest, cfg cache.Config) ([]int64, error) {
	box, err := tiling.Box(nest)
	if err != nil {
		return nil, err
	}
	ref, rowVar, colVar, colStride := criticalRef(nest)
	if ref == nil {
		return FixedSquare(nest, cfg)
	}
	elem := ref.Array.Elem
	arrays := int64(len(nest.Arrays()))
	capacityElems := cfg.Size / elem / arrays

	// Euclidean chain on (cache elements, column stride in elements).
	cand := []int64{1}
	a, b := cfg.Size/elem, colStride
	for b > 0 {
		cand = append(cand, b)
		a, b = b, a%b
	}
	bestArea := int64(0)
	bestH, bestW := int64(1), int64(1)
	for _, h := range cand {
		h = clamp(h, 1, box.Extent(colVar))
		w := capacityElems / h
		w = clamp(w, 1, box.Extent(rowVar))
		if h*w > bestArea {
			bestArea, bestH, bestW = h*w, h, w
		}
	}
	tile := make([]int64, nest.Depth())
	for d := range tile {
		tile[d] = box.Extent(d)
	}
	tile[rowVar] = bestW
	tile[colVar] = bestH
	return tile, nil
}

// GhoshSelf reconstructs the CME-based selection sketched in [29]: for
// each loop dimension, the largest tile extent such that the tile's
// footprint in each array stays within one cache-sized window (no
// self-interference equation has a solution). Cross interference is
// ignored, as in the original proposal.
func GhoshSelf(nest *ir.Nest, cfg cache.Config) ([]int64, error) {
	box, err := tiling.Box(nest)
	if err != nil {
		return nil, err
	}
	k := nest.Depth()
	tile := make([]int64, k)
	for d := 0; d < k; d++ {
		tile[d] = box.Extent(d)
	}
	// Shrink dimensions (innermost array strides last) until every
	// reference's tile footprint fits within the cache.
	for {
		if maxFootprint(nest, tile) <= cfg.Size {
			return tile, nil
		}
		// Halve the dimension contributing the largest stride growth.
		grow := -1
		var growAmt int64
		for d := 0; d < k; d++ {
			if tile[d] == 1 {
				continue
			}
			amt := dimCost(nest, d) * tile[d]
			if amt > growAmt {
				growAmt, grow = amt, d
			}
		}
		if grow < 0 {
			return tile, nil // cannot shrink further
		}
		tile[grow] = (tile[grow] + 1) / 2
	}
}

// maxFootprint returns the largest per-reference tile footprint in bytes.
func maxFootprint(nest *ir.Nest, tile []int64) int64 {
	var worst int64
	for i := range nest.Refs {
		ref := &nest.Refs[i]
		strides := ref.Array.Strides()
		span := int64(1) // bytes spanned by the tile through this ref
		spanAddr := int64(0)
		for d, sub := range ref.Subs {
			if idx, coef, ok := sub.SingleVar(); ok {
				extent := tile[idx]
				spanAddr += abs64(coef) * (extent - 1) * strides[d] * ref.Array.Elem
			}
		}
		span = spanAddr + ref.Array.Elem
		if span > worst {
			worst = span
		}
	}
	return worst
}

// dimCost estimates how strongly loop dimension d stretches reference
// footprints (the max stride it drives).
func dimCost(nest *ir.Nest, d int) int64 {
	var worst int64
	for i := range nest.Refs {
		ref := &nest.Refs[i]
		strides := ref.Array.Strides()
		for s, sub := range ref.Subs {
			if idx, coef, ok := sub.SingleVar(); ok && idx == d {
				c := abs64(coef) * strides[s] * ref.Array.Elem
				if c > worst {
					worst = c
				}
			}
		}
	}
	if worst == 0 {
		worst = 1
	}
	return worst
}

// criticalRef picks the array whose tile footprint the published
// algorithms size the cache for: preferably a reference with temporal
// reuse across the outermost loop (it does not use loop variable 0 — the
// matmul c(k,j) case), falling back to the reference with the largest
// column stride. It returns the loop variables of the fastest (row) and
// slowest (column) subscript dimensions.
func criticalRef(nest *ir.Nest) (ref *ir.Ref, rowVar, colVar int, colStride int64) {
	if r, rv, cv, cs := pickCritical(nest, true); r != nil {
		return r, rv, cv, cs
	}
	return pickCritical(nest, false)
}

func pickCritical(nest *ir.Nest, requireOuterReuse bool) (ref *ir.Ref, rowVar, colVar int, colStride int64) {
	var bestStride int64 = -1
	for i := range nest.Refs {
		r := &nest.Refs[i]
		if requireOuterReuse {
			usesOuter := false
			for _, sub := range r.Subs {
				if idx, _, ok := sub.SingleVar(); ok && idx == 0 {
					usesOuter = true
					break
				}
			}
			if usesOuter {
				continue
			}
		}
		strides := r.Array.Strides()
		fastVar, slowVar := -1, -1
		var fastStride, slowStride int64 = 1 << 62, -1
		for d, sub := range r.Subs {
			idx, _, ok := sub.SingleVar()
			if !ok {
				continue
			}
			sb := strides[d]
			if sb < fastStride {
				fastStride, fastVar = sb, idx
			}
			if sb > slowStride {
				slowStride, slowVar = sb, idx
			}
		}
		if fastVar < 0 || slowVar < 0 || fastVar == slowVar {
			continue
		}
		if slowStride > bestStride {
			bestStride = slowStride
			ref, rowVar, colVar, colStride = r, fastVar, slowVar, slowStride
		}
	}
	return ref, rowVar, colVar, colStride
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
