// Package trace generates the exact memory-reference trace of a loop nest
// by interpreting the IR in execution order. The trace is the ground truth
// the analytical model (Cache Miss Equations) is validated against.
package trace

import (
	"repro/internal/ir"
	"repro/internal/iterspace"
)

// Access is one memory access of the trace.
type Access struct {
	// Addr is the byte address touched.
	Addr int64
	// RefIdx is the index of the reference in the nest body.
	RefIdx int
	// Write reports whether the access is a store.
	Write bool
}

// Generate walks the nest in execution order and invokes fn for every
// access (references in program order within each iteration). Generation
// stops early if fn returns false.
func Generate(n *ir.Nest, fn func(point []int64, a Access) bool) {
	depth := n.Depth()
	point := make([]int64, depth)
	var walk func(d int) bool
	walk = func(d int) bool {
		if d == depth {
			for i := range n.Refs {
				r := &n.Refs[i]
				a := Access{Addr: r.Address(point), RefIdx: i, Write: r.Write}
				if !fn(point, a) {
					return false
				}
			}
			return true
		}
		l := &n.Loops[d]
		hi := l.Upper.Eval(point)
		for v := l.Lower.Eval(point); v <= hi; v += l.Step {
			point[d] = v
			if !walk(d + 1) {
				return false
			}
		}
		point[d] = 0
		return true
	}
	walk(0)
}

// Count returns the number of iteration points and accesses of the nest by
// exhaustive walking. Intended for tests and small nests.
func Count(n *ir.Nest) (points, accesses uint64) {
	depth := n.Depth()
	point := make([]int64, depth)
	var walk func(d int)
	walk = func(d int) {
		if d == depth {
			points++
			accesses += uint64(len(n.Refs))
			return
		}
		l := &n.Loops[d]
		hi := l.Upper.Eval(point)
		for v := l.Lower.Eval(point); v <= hi; v += l.Step {
			point[d] = v
			walk(d + 1)
		}
		point[d] = 0
	}
	walk(0)
	return points, accesses
}

// GenerateSpace emits the access trace of the nest's references traversed
// in the execution order of the given iteration space (e.g. a tiled order).
// The nest's references must be written over the original loop variables;
// the space supplies them via OrigView. fn receives the full space point.
func GenerateSpace(s iterspace.Space, n *ir.Nest, fn func(point []int64, a Access) bool) {
	p := make([]int64, s.NumCoords())
	if !s.First(p) {
		return
	}
	for {
		orig := s.OrigView(p)
		for i := range n.Refs {
			r := &n.Refs[i]
			a := Access{Addr: r.Address(orig), RefIdx: i, Write: r.Write}
			if !fn(p, a) {
				return
			}
		}
		if !s.Next(p) {
			return
		}
	}
}

// Addresses collects the full address trace. Only for small nests (tests).
func Addresses(n *ir.Nest) []int64 {
	var out []int64
	Generate(n, func(_ []int64, a Access) bool {
		out = append(out, a.Addr)
		return true
	})
	return out
}
