package trace

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/ir"
)

// vecNest builds do i=1,n { read x(i); write y(i) }.
func vecNest(n int64) *ir.Nest {
	x := &ir.Array{Name: "x", Dims: []int64{n}, Elem: 8, Base: 0}
	y := &ir.Array{Name: "y", Dims: []int64{n}, Elem: 8, Base: 8 * n}
	return &ir.Nest{
		Name: "vec",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: x, Subs: []expr.Affine{expr.Var(0)}},
			{Array: y, Subs: []expr.Affine{expr.Var(0)}, Write: true},
		},
	}
}

func TestGenerateOrderAndAddresses(t *testing.T) {
	n := vecNest(3)
	var got []Access
	Generate(n, func(_ []int64, a Access) bool {
		got = append(got, a)
		return true
	})
	want := []Access{
		{0, 0, false}, {24, 1, true},
		{8, 0, false}, {32, 1, true},
		{16, 0, false}, {40, 1, true},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d accesses, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestGenerateEarlyStop(t *testing.T) {
	n := vecNest(100)
	count := 0
	Generate(n, func(_ []int64, a Access) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d accesses", count)
	}
}

func TestCount(t *testing.T) {
	pts, acc := Count(vecNest(7))
	if pts != 7 || acc != 14 {
		t.Fatalf("Count = %d points %d accesses", pts, acc)
	}
}

// TestGenerateTiledMinBound checks that min() upper bounds are honored:
// the tiled 1D loop of the paper's Figure 2(b) touches a(1..7) once each.
func TestGenerateTiledMinBound(t *testing.T) {
	a := &ir.Array{Name: "a", Dims: []int64{7}, Elem: 8, Base: 0}
	n := &ir.Nest{
		Name: "fig2b",
		Loops: []ir.Loop{
			{Var: "ii", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(7)), Step: 3},
			{Var: "i", Lower: expr.Var(0), Upper: ir.MinBound(expr.VarPlus(0, 2), expr.Const(7)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: a, Subs: []expr.Affine{expr.Var(1)}, Write: true},
		},
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	addrs := Addresses(n)
	if len(addrs) != 7 {
		t.Fatalf("tiled loop made %d accesses, want 7", len(addrs))
	}
	for i, addr := range addrs {
		if addr != int64(i*8) {
			t.Fatalf("access %d at addr %d, want %d", i, addr, i*8)
		}
	}
}

func TestGenerateVisitsPointsInOrder(t *testing.T) {
	n := vecNest(3)
	var pts [][]int64
	Generate(n, func(p []int64, a Access) bool {
		if a.RefIdx == 0 {
			pts = append(pts, append([]int64(nil), p...))
		}
		return true
	})
	if len(pts) != 3 || pts[0][0] != 1 || pts[1][0] != 2 || pts[2][0] != 3 {
		t.Fatalf("points = %v", pts)
	}
}
