package cachesim

import (
	"reflect"
	"testing"
)

// TestStatsAddAllFields: Add must accumulate EVERY field of Stats —
// including the Conflict/Capacity shadow split that a hand-written sum
// once dropped. The reflection sweep fails the moment a new field is
// added to Stats without extending Add, and guards against regressing to
// a partial merge.
func TestStatsAddAllFields(t *testing.T) {
	var a, b Stats
	bv := reflect.ValueOf(&b).Elem()
	for i := 0; i < bv.NumField(); i++ {
		if bv.Field(i).Kind() != reflect.Uint64 {
			t.Fatalf("Stats field %s is not uint64; update this test and Add", bv.Type().Field(i).Name)
		}
		bv.Field(i).SetUint(uint64(i + 1))
	}
	a.Add(b)
	if a != b {
		t.Fatalf("zero.Add(%+v) = %+v; some field was dropped", b, a)
	}
	a.Add(b)
	av := reflect.ValueOf(a)
	for i := 0; i < av.NumField(); i++ {
		if got, want := av.Field(i).Uint(), 2*uint64(i+1); got != want {
			t.Fatalf("field %s after two Adds = %d, want %d", av.Type().Field(i).Name, got, want)
		}
	}
}
