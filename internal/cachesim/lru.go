package cachesim

import "container/list"

// fullyLRU is a fully-associative LRU cache over memory-line numbers, used
// as the capacity oracle of the three-C miss classification: a replacement
// miss that hits in a fully-associative cache of the same size is a
// conflict miss; one that also misses there is a capacity miss.
type fullyLRU struct {
	capacity int
	order    *list.List // front = MRU, values are int64 line numbers
	index    map[int64]*list.Element
}

func newFullyLRU(capacity int) *fullyLRU {
	return &fullyLRU{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[int64]*list.Element, capacity+1),
	}
}

// access touches the line and reports whether it was resident.
func (f *fullyLRU) access(line int64) bool {
	if e, ok := f.index[line]; ok {
		f.order.MoveToFront(e)
		return true
	}
	f.index[line] = f.order.PushFront(line)
	if f.order.Len() > f.capacity {
		back := f.order.Back()
		f.order.Remove(back)
		delete(f.index, back.Value.(int64))
	}
	return false
}

// len returns the number of resident lines.
func (f *fullyLRU) len() int { return f.order.Len() }
