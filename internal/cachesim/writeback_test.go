package cachesim

import (
	"math/rand/v2"
	"testing"

	"repro/internal/cache"
	"repro/internal/expr"
	"repro/internal/ir"
	"repro/internal/tiling"
)

func TestWBBasics(t *testing.T) {
	s := NewWB(tiny(1)) // 4 sets, direct-mapped
	if got := s.Access(0, true); got != CompulsoryMiss {
		t.Fatalf("first write = %v", got)
	}
	// Aliasing read evicts the dirty line: one writeback.
	s.Access(128, false)
	tr := s.Traffic()
	if tr.Writebacks != 1 || tr.Fills != 2 {
		t.Fatalf("traffic = %+v", tr)
	}
	// Clean eviction: no writeback.
	s.Access(256, false)
	if s.Traffic().Writebacks != 1 {
		t.Fatalf("clean eviction wrote back: %+v", s.Traffic())
	}
	// Flush writes back the currently dirty lines (none: 256 is clean).
	s.FlushDirty()
	if s.Traffic().Writebacks != 1 {
		t.Fatalf("flush of clean cache wrote back: %+v", s.Traffic())
	}
	// Dirty then flush.
	s.Access(256, true)
	s.FlushDirty()
	if s.Traffic().Writebacks != 2 {
		t.Fatalf("flush missed dirty line: %+v", s.Traffic())
	}
	if s.Traffic().BytesMoved(32) != (s.Traffic().Fills+2)*32 {
		t.Fatal("BytesMoved wrong")
	}
}

// TestWBHitMissEqualsSim: dirty bits change traffic, never hit/miss
// behaviour — the write-back simulator's outcomes equal the plain one's.
func TestWBHitMissEqualsSim(t *testing.T) {
	cfg := cache.Config{Size: 512, LineSize: 32, Assoc: 2}
	plain := New(cfg)
	wb := NewWB(cfg)
	r := rand.New(rand.NewPCG(3, 9))
	for i := 0; i < 30000; i++ {
		addr := r.Int64N(8192)
		write := r.Int64N(3) == 0
		if got, want := wb.Access(addr, write), plain.Access(addr); got != want {
			t.Fatalf("access %d: wb %v != plain %v", i, got, want)
		}
	}
	if wb.Traffic().Stats != plain.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", wb.Traffic().Stats, plain.Stats())
	}
	if wb.Traffic().Fills != plain.Stats().Misses() {
		t.Fatal("fills != misses under write-allocate")
	}
}

// TestTilingReducesTraffic: tiling the transpose cuts memory traffic, not
// just miss counts.
func TestTilingReducesTraffic(t *testing.T) {
	n := int64(64)
	a := &ir.Array{Name: "a", Dims: []int64{n, n}, Elem: 8, Base: 0}
	b := &ir.Array{Name: "b", Dims: []int64{n, n}, Elem: 8, Base: a.SizeBytes()}
	nest := &ir.Nest{
		Name: "t2d",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
			{Var: "j", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: b, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}},
			{Array: a, Subs: []expr.Affine{expr.Var(1), expr.Var(0)}, Write: true},
		},
	}
	cfg := cache.Config{Size: 2048, LineSize: 32, Assoc: 1}
	before := SimulateNestTraffic(nest, cfg)

	// 4x4: small enough that the tile's b-columns (16 sets apart in this
	// geometry) occupy distinct sets — 8x8 would self-interfere, which is
	// exactly why tile sizes are searched rather than guessed.
	tiledNest := tileT2D(t, nest, []int64{4, 4})
	after := SimulateNestTraffic(tiledNest, cfg)
	if after.BytesMoved(32) >= before.BytesMoved(32) {
		t.Fatalf("tiling did not reduce traffic: %d -> %d bytes",
			before.BytesMoved(32), after.BytesMoved(32))
	}
	// Every resident dirty line is flushed, so writebacks are at least
	// the number of distinct lines of the written array.
	minWB := uint64(n * n * 8 / 32)
	if before.Writebacks < minWB || after.Writebacks < minWB {
		t.Fatalf("writebacks below written footprint: %d/%d < %d",
			before.Writebacks, after.Writebacks, minWB)
	}
}

func tileT2D(t *testing.T, nest *ir.Nest, tile []int64) *ir.Nest {
	t.Helper()
	tiled, _, err := tiling.Apply(nest, tile)
	if err != nil {
		t.Fatal(err)
	}
	return tiled
}
