package cachesim

import (
	"math/rand/v2"
	"testing"

	"repro/internal/cache"
	"repro/internal/expr"
	"repro/internal/ir"
)

func tiny(assoc int) cache.Config {
	// 4 lines of 32B.
	return cache.Config{Size: 128, LineSize: 32, Assoc: assoc}
}

func TestDirectMappedBasics(t *testing.T) {
	s := New(tiny(1)) // 4 sets
	if got := s.Access(0); got != CompulsoryMiss {
		t.Fatalf("first access = %v", got)
	}
	if got := s.Access(8); got != Hit { // same line
		t.Fatalf("same-line access = %v", got)
	}
	if got := s.Access(128); got != CompulsoryMiss { // conflicts with line 0 (set 0)
		t.Fatalf("aliasing first access = %v", got)
	}
	if got := s.Access(0); got != ReplacementMiss { // evicted by 128
		t.Fatalf("return access = %v", got)
	}
	st := s.Stats()
	if st.Accesses != 4 || st.Hits != 1 || st.Compulsory != 2 || st.Replacement != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUWithinSet(t *testing.T) {
	s := New(tiny(2))                          // 2 sets, 2 ways; lines with even line# -> set 0
	a, b, c := int64(0), int64(64), int64(128) // lines 0,2,4: all set 0
	s.Access(a)                                // miss; set0: [a]
	s.Access(b)                                // miss; set0: [b,a]
	if got := s.Access(a); got != Hit {        // a still resident
		t.Fatalf("a = %v", got)
	}
	s.Access(c) // evicts LRU=b; set0: [c,a]
	if got := s.Access(a); got != Hit {
		t.Fatalf("a after c = %v", got)
	}
	if got := s.Access(b); got != ReplacementMiss {
		t.Fatalf("b after eviction = %v", got)
	}
}

func TestFullyAssociativeNeverConflicts(t *testing.T) {
	// 4-way fully associative of 4 lines: any 4 distinct lines coexist.
	s := New(tiny(4))
	for _, addr := range []int64{0, 128, 256, 384} {
		if got := s.Access(addr); got != CompulsoryMiss {
			t.Fatalf("access %d = %v", addr, got)
		}
	}
	for _, addr := range []int64{0, 128, 256, 384} {
		if got := s.Access(addr); got != Hit {
			t.Fatalf("re-access %d = %v", addr, got)
		}
	}
	// A 5th line evicts the LRU (line 0).
	s.Access(512)
	if got := s.Access(0); got != ReplacementMiss {
		t.Fatalf("evicted line = %v", got)
	}
}

func TestShadowConflictCapacitySplit(t *testing.T) {
	// Direct-mapped 4 lines. Two aliasing lines ping-pong: conflict
	// misses (fully-assoc cache would hold both).
	s := NewWithShadow(tiny(1))
	for i := 0; i < 10; i++ {
		s.Access(0)
		s.Access(128)
	}
	st := s.Stats()
	if st.Conflict == 0 || st.Capacity != 0 {
		t.Fatalf("ping-pong stats = %+v, want pure conflict misses", st)
	}
	if st.Conflict != st.Replacement {
		t.Fatalf("conflict %d != replacement %d", st.Conflict, st.Replacement)
	}

	// Cycling over 8 distinct lines in a 4-line cache: capacity misses.
	s2 := NewWithShadow(cache.Config{Size: 128, LineSize: 32, Assoc: 4})
	for round := 0; round < 5; round++ {
		for l := int64(0); l < 8; l++ {
			s2.Access(l * 32)
		}
	}
	st2 := s2.Stats()
	if st2.Capacity == 0 || st2.Conflict != 0 {
		t.Fatalf("cycling stats = %+v, want pure capacity misses", st2)
	}
}

func TestReset(t *testing.T) {
	s := NewWithShadow(tiny(1))
	s.Access(0)
	s.Access(128)
	s.Reset()
	if s.Stats() != (Stats{}) {
		t.Fatalf("stats after reset = %+v", s.Stats())
	}
	if got := s.Access(0); got != CompulsoryMiss {
		t.Fatalf("after reset access = %v", got)
	}
}

func TestStatsRatios(t *testing.T) {
	st := Stats{Accesses: 200, Hits: 150, Compulsory: 20, Replacement: 30}
	if st.Misses() != 50 {
		t.Fatalf("Misses = %d", st.Misses())
	}
	if got := st.MissRatio(); got != 0.25 {
		t.Fatalf("MissRatio = %v", got)
	}
	if got := st.ReplacementRatio(); got != 0.15 {
		t.Fatalf("ReplacementRatio = %v", got)
	}
	if (Stats{}).MissRatio() != 0 || (Stats{}).ReplacementRatio() != 0 {
		t.Fatal("zero-access ratios should be 0")
	}
}

// TestSimulateNestTransposeShape: a 2D transpose of a 64x64 double array
// (64KB of data) through an 8KB direct-mapped cache shows substantial
// replacement misses; the same arrays through a huge cache show none.
func TestSimulateNestTransposeShape(t *testing.T) {
	n := int64(64)
	a := &ir.Array{Name: "a", Dims: []int64{n, n}, Elem: 8, Base: 0}
	b := &ir.Array{Name: "b", Dims: []int64{n, n}, Elem: 8, Base: a.SizeBytes()}
	nest := &ir.Nest{
		Name: "t2d",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
			{Var: "j", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: b, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}},
			{Array: a, Subs: []expr.Affine{expr.Var(1), expr.Var(0)}, Write: true},
		},
	}
	if err := nest.Validate(); err != nil {
		t.Fatal(err)
	}
	small := SimulateNest(nest, cache.DM8K)
	if small.Accesses != uint64(2*n*n) {
		t.Fatalf("accesses = %d", small.Accesses)
	}
	if small.ReplacementRatio() < 0.10 {
		t.Fatalf("transpose through 8KB cache: replacement ratio %.3f unexpectedly low",
			small.ReplacementRatio())
	}
	big := SimulateNest(nest, cache.Config{Size: 1 << 20, LineSize: 32, Assoc: 1})
	if big.Replacement != 0 {
		t.Fatalf("1MB cache replacement misses = %d, want 0", big.Replacement)
	}
	// Compulsory misses are one per distinct line: 2 arrays * 64*64
	// doubles / 4 per line = 2048.
	if big.Compulsory != 2048 {
		t.Fatalf("compulsory misses = %d, want 2048", big.Compulsory)
	}
	// Compulsory count is identical across cache sizes.
	if small.Compulsory != big.Compulsory {
		t.Fatalf("compulsory differs across caches: %d vs %d", small.Compulsory, big.Compulsory)
	}
}

// Property: against a reference model (map per set with explicit recency
// lists built naively), the simulator agrees on every access.
func TestSimAgainstNaiveModel(t *testing.T) {
	cfg := cache.Config{Size: 256, LineSize: 32, Assoc: 2} // 4 sets, 2 ways
	s := New(cfg)
	type naiveSet struct{ lines []int64 } // MRU first
	naive := make([]naiveSet, cfg.NumSets())
	seen := map[int64]bool{}
	r := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 20000; i++ {
		addr := r.Int64N(4096)
		line := cfg.LineOf(addr)
		set := cfg.SetOfLine(line)
		ns := &naive[set]
		want := ReplacementMiss
		found := -1
		for j, l := range ns.lines {
			if l == line {
				found = j
				break
			}
		}
		if found >= 0 {
			want = Hit
			ns.lines = append(ns.lines[:found], ns.lines[found+1:]...)
		} else {
			if !seen[line] {
				want = CompulsoryMiss
				seen[line] = true
			}
			if len(ns.lines) == cfg.Assoc {
				ns.lines = ns.lines[:len(ns.lines)-1]
			}
		}
		ns.lines = append([]int64{line}, ns.lines...)
		if got := s.Access(addr); got != want {
			t.Fatalf("access %d (addr %d): got %v, want %v", i, addr, got, want)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	if Hit.String() != "hit" || CompulsoryMiss.String() != "compulsory-miss" ||
		ReplacementMiss.String() != "replacement-miss" {
		t.Fatal("Outcome strings wrong")
	}
	if Outcome(99).String() == "" {
		t.Fatal("unknown outcome string empty")
	}
}

// TestSimulateNestByRef: the per-reference breakdown sums to the aggregate
// and attributes the transpose's misses to the strided reference.
func TestSimulateNestByRef(t *testing.T) {
	n := int64(64)
	a := &ir.Array{Name: "a", Dims: []int64{n, n}, Elem: 8, Base: 0}
	b := &ir.Array{Name: "b", Dims: []int64{n, n}, Elem: 8, Base: a.SizeBytes()}
	nest := &ir.Nest{
		Name: "t2d",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
			{Var: "j", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: b, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}},
			{Array: a, Subs: []expr.Affine{expr.Var(1), expr.Var(0)}, Write: true},
		},
	}
	total, per := SimulateNestByRef(nest, cache.DM8K)
	if len(per) != 2 {
		t.Fatalf("per-ref count = %d", len(per))
	}
	var sum Stats
	for _, r := range per {
		sum.Accesses += r.Stats.Accesses
		sum.Hits += r.Stats.Hits
		sum.Compulsory += r.Stats.Compulsory
		sum.Replacement += r.Stats.Replacement
	}
	if sum != total {
		t.Fatalf("per-ref sum %+v != total %+v", sum, total)
	}
	if per[0].Ref != "b(i,j)" || per[1].Ref != "a(j,i)" || !per[1].Write {
		t.Fatalf("labels wrong: %+v", per)
	}
	// b(i,j) strides a column per j step: it must carry the misses.
	if per[0].Stats.Replacement <= per[1].Stats.Replacement {
		t.Fatalf("expected b to dominate misses: b=%d a=%d",
			per[0].Stats.Replacement, per[1].Stats.Replacement)
	}
	// The separate aggregate-only simulation agrees.
	if agg := SimulateNest(nest, cache.DM8K); agg != total {
		t.Fatalf("aggregate mismatch: %+v vs %+v", agg, total)
	}
}
