package cachesim

import (
	"math/rand/v2"
	"testing"
)

func TestFullyLRUBasics(t *testing.T) {
	f := newFullyLRU(3)
	for _, l := range []int64{1, 2, 3} {
		if f.access(l) {
			t.Fatalf("cold access to %d hit", l)
		}
	}
	if f.len() != 3 {
		t.Fatalf("len = %d", f.len())
	}
	if !f.access(1) { // 1 becomes MRU; order 1,3,2
		t.Fatal("resident line missed")
	}
	f.access(4) // evicts LRU = 2
	if f.access(2) {
		t.Fatal("evicted line hit")
	}
	// That access re-inserted 2, evicting 3.
	if f.access(3) {
		t.Fatal("second-evicted line hit")
	}
	if f.len() != 3 {
		t.Fatalf("len after churn = %d", f.len())
	}
}

// TestFullyLRUAgainstNaive cross-checks the list+map implementation with a
// slice-based reference model.
func TestFullyLRUAgainstNaive(t *testing.T) {
	const capLines = 8
	f := newFullyLRU(capLines)
	var naive []int64 // MRU first
	r := rand.New(rand.NewPCG(9, 10))
	for i := 0; i < 50000; i++ {
		line := r.Int64N(20)
		wantHit := false
		for j, l := range naive {
			if l == line {
				wantHit = true
				naive = append(naive[:j], naive[j+1:]...)
				break
			}
		}
		naive = append([]int64{line}, naive...)
		if len(naive) > capLines {
			naive = naive[:capLines]
		}
		if got := f.access(line); got != wantHit {
			t.Fatalf("access %d (line %d): got %v want %v", i, line, got, wantHit)
		}
	}
}
