// Package cachesim is a trace-driven set-associative LRU cache simulator.
// It provides exact per-access hit/miss outcomes, the compulsory vs
// replacement miss split the paper's objective function is defined over
// (§3.1: replacement misses = total − compulsory), and an optional
// fully-associative shadow cache for the conflict/capacity split.
package cachesim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/trace"
)

// Outcome classifies one access.
type Outcome int

const (
	// Hit: the line was resident.
	Hit Outcome = iota
	// CompulsoryMiss: the first access ever to the memory line.
	CompulsoryMiss
	// ReplacementMiss: the line had been resident before but was evicted
	// (capacity or conflict miss).
	ReplacementMiss
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case CompulsoryMiss:
		return "compulsory-miss"
	case ReplacementMiss:
		return "replacement-miss"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Stats accumulates access outcomes.
type Stats struct {
	Accesses    uint64
	Hits        uint64
	Compulsory  uint64
	Replacement uint64
	// Conflict and Capacity split Replacement when the simulator runs
	// with a shadow cache; otherwise both stay zero.
	Conflict uint64
	Capacity uint64
}

// Add accumulates other into s, field by field — the single merge point
// for partial counts from parallel evaluation workers, so no field (in
// particular the Conflict/Capacity split) can be dropped by a hand-written
// sum.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Compulsory += other.Compulsory
	s.Replacement += other.Replacement
	s.Conflict += other.Conflict
	s.Capacity += other.Capacity
}

// Misses returns the total miss count.
func (s Stats) Misses() uint64 { return s.Compulsory + s.Replacement }

// MissRatio returns total misses / accesses.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Accesses)
}

// ReplacementRatio returns replacement misses / accesses — the quantity the
// paper's figures plot and its GA minimises.
func (s Stats) ReplacementRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Replacement) / float64(s.Accesses)
}

func (s Stats) String() string {
	return fmt.Sprintf("accesses=%d hits=%d compulsory=%d replacement=%d (miss ratio %.2f%%, repl ratio %.2f%%)",
		s.Accesses, s.Hits, s.Compulsory, s.Replacement, 100*s.MissRatio(), 100*s.ReplacementRatio())
}

// Sim is a set-associative LRU cache simulator.
type Sim struct {
	cfg    cache.Config
	sets   [][]int64 // per set: resident line numbers, MRU first
	seen   map[int64]struct{}
	shadow *fullyLRU // optional capacity oracle
	stats  Stats
}

// New creates a simulator for the given geometry.
func New(cfg cache.Config) *Sim {
	if err := cfg.Validate(); err != nil {
		panic("cachesim: " + err.Error())
	}
	return &Sim{
		cfg:  cfg,
		sets: make([][]int64, cfg.NumSets()),
		seen: make(map[int64]struct{}),
	}
}

// NewWithShadow creates a simulator that additionally classifies
// replacement misses into conflict and capacity misses using a
// fully-associative LRU cache of the same total size (the standard
// three-C classification).
func NewWithShadow(cfg cache.Config) *Sim {
	s := New(cfg)
	s.shadow = newFullyLRU(int(cfg.NumLines()))
	return s
}

// Config returns the simulated geometry.
func (s *Sim) Config() cache.Config { return s.cfg }

// Stats returns the accumulated statistics.
func (s *Sim) Stats() Stats { return s.stats }

// Reset clears cache contents and statistics.
func (s *Sim) Reset() {
	for i := range s.sets {
		s.sets[i] = s.sets[i][:0]
	}
	s.seen = make(map[int64]struct{})
	if s.shadow != nil {
		s.shadow = newFullyLRU(int(s.cfg.NumLines()))
	}
	s.stats = Stats{}
}

// Access simulates one access and returns its outcome.
func (s *Sim) Access(addr int64) Outcome {
	line := s.cfg.LineOf(addr)
	set := s.cfg.SetOfLine(line)
	ways := s.sets[set]
	s.stats.Accesses++

	shadowHit := false
	if s.shadow != nil {
		shadowHit = s.shadow.access(line)
	}

	for i, l := range ways {
		if l == line {
			// Hit: move to MRU position.
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			s.stats.Hits++
			return Hit
		}
	}
	// Miss: insert at MRU, evicting LRU if the set is full.
	if len(ways) < s.cfg.Assoc {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = line
	s.sets[set] = ways

	if _, ok := s.seen[line]; !ok {
		s.seen[line] = struct{}{}
		s.stats.Compulsory++
		return CompulsoryMiss
	}
	s.stats.Replacement++
	if s.shadow != nil {
		if shadowHit {
			s.stats.Conflict++
		} else {
			s.stats.Capacity++
		}
	}
	return ReplacementMiss
}

// SimulateNest runs the full reference trace of a nest through a fresh
// simulator and returns the statistics.
func SimulateNest(n *ir.Nest, cfg cache.Config) Stats {
	s := New(cfg)
	trace.Generate(n, func(_ []int64, a trace.Access) bool {
		s.Access(a.Addr)
		return true
	})
	return s.Stats()
}

// SimulateNestShadow is SimulateNest with the conflict/capacity split.
func SimulateNestShadow(n *ir.Nest, cfg cache.Config) Stats {
	s := NewWithShadow(cfg)
	trace.Generate(n, func(_ []int64, a trace.Access) bool {
		s.Access(a.Addr)
		return true
	})
	return s.Stats()
}

// RefStats holds per-body-reference statistics from one simulation.
type RefStats struct {
	Ref   string // rendered reference, e.g. "b(i,k)"
	Write bool
	Stats Stats
}

// SimulateNestByRef runs the full trace and returns both the aggregate and
// a per-reference breakdown — the diagnostic view showing which access
// pattern is responsible for the misses.
func SimulateNestByRef(n *ir.Nest, cfg cache.Config) (Stats, []RefStats) {
	s := New(cfg)
	names := n.VarNames()
	per := make([]RefStats, len(n.Refs))
	for i := range n.Refs {
		per[i].Ref = n.Refs[i].StringVars(names)
		per[i].Write = n.Refs[i].Write
	}
	trace.Generate(n, func(_ []int64, a trace.Access) bool {
		st := &per[a.RefIdx].Stats
		st.Accesses++
		switch s.Access(a.Addr) {
		case Hit:
			st.Hits++
		case CompulsoryMiss:
			st.Compulsory++
		case ReplacementMiss:
			st.Replacement++
		}
		return true
	})
	return s.Stats(), per
}
