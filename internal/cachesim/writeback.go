package cachesim

import (
	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/trace"
)

// Traffic summarises the memory traffic of a write-back, write-allocate
// cache: fills (line reads from memory) and write-backs of dirty victims.
// The paper counts misses only; traffic is the natural next metric a
// downstream user asks for, and the dirty-bit machinery is standard.
type Traffic struct {
	Stats
	// Fills counts lines read from memory (== misses under
	// write-allocate).
	Fills uint64
	// Writebacks counts dirty lines written back on eviction (plus those
	// still dirty at the end if FlushDirty was called).
	Writebacks uint64
}

// BytesMoved returns the total memory traffic in bytes for the given line
// size.
func (t Traffic) BytesMoved(lineSize int64) uint64 {
	return (t.Fills + t.Writebacks) * uint64(lineSize)
}

// WBSim is a write-back, write-allocate LRU simulator with per-line dirty
// bits, layered on the same set structure as Sim.
type WBSim struct {
	cfg     cache.Config
	sets    [][]wbLine
	seen    map[int64]struct{}
	traffic Traffic
}

type wbLine struct {
	line  int64
	dirty bool
}

// NewWB creates a write-back simulator.
func NewWB(cfg cache.Config) *WBSim {
	if err := cfg.Validate(); err != nil {
		panic("cachesim: " + err.Error())
	}
	return &WBSim{
		cfg:  cfg,
		sets: make([][]wbLine, cfg.NumSets()),
		seen: make(map[int64]struct{}),
	}
}

// Access simulates one access (write=true marks the line dirty) and
// returns its outcome.
func (s *WBSim) Access(addr int64, write bool) Outcome {
	line := s.cfg.LineOf(addr)
	set := s.cfg.SetOfLine(line)
	ways := s.sets[set]
	s.traffic.Accesses++

	for i := range ways {
		if ways[i].line == line {
			entry := ways[i]
			entry.dirty = entry.dirty || write
			copy(ways[1:i+1], ways[:i])
			ways[0] = entry
			s.traffic.Hits++
			return Hit
		}
	}
	// Miss: write-allocate fill; evict (and possibly write back) the LRU.
	s.traffic.Fills++
	if len(ways) < s.cfg.Assoc {
		ways = append(ways, wbLine{})
	} else if ways[len(ways)-1].dirty {
		s.traffic.Writebacks++
	}
	copy(ways[1:], ways)
	ways[0] = wbLine{line: line, dirty: write}
	s.sets[set] = ways

	if _, ok := s.seen[line]; !ok {
		s.seen[line] = struct{}{}
		s.traffic.Compulsory++
		return CompulsoryMiss
	}
	s.traffic.Replacement++
	return ReplacementMiss
}

// FlushDirty writes back every dirty resident line (end-of-run flush) and
// marks them clean.
func (s *WBSim) FlushDirty() {
	for si := range s.sets {
		for i := range s.sets[si] {
			if s.sets[si][i].dirty {
				s.traffic.Writebacks++
				s.sets[si][i].dirty = false
			}
		}
	}
}

// Traffic returns the accumulated statistics.
func (s *WBSim) Traffic() Traffic { return s.traffic }

// SimulateNestTraffic runs the nest's trace through a write-back simulator
// including the final dirty flush.
func SimulateNestTraffic(n *ir.Nest, cfg cache.Config) Traffic {
	s := NewWB(cfg)
	trace.Generate(n, func(_ []int64, a trace.Access) bool {
		s.Access(a.Addr, a.Write)
		return true
	})
	s.FlushDirty()
	return s.Traffic()
}
