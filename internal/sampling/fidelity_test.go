package sampling

import (
	"context"
	"math/rand/v2"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/cme"
	"repro/internal/iterspace"
	"repro/internal/telemetry"
)

// TestRangePrefixSumsToWhole: evaluating a partition of the sample as
// Range sub-samples and summing the pieces equals one whole evaluation —
// the invariant the multi-fidelity ladder's rung promotion rests on (no
// point classified twice, nothing skipped).
func TestRangePrefixSumsToWhole(t *testing.T) {
	an := transposeAnalyzer(t, 48, []int64{6, 10})
	box := iterspace.NewBox([]int64{1, 1}, []int64{48, 48})
	s := Draw(box, 164, rand.New(rand.NewPCG(21, 5)))
	want := s.Evaluate(an)

	var sum cachesim.Stats
	for _, cut := range [][2]int{{0, 41}, {41, 82}, {82, 164}} {
		part, err := s.Range(cut[0], cut[1]).EvaluateWith(context.Background(), []*cme.Analyzer{an})
		if err != nil {
			t.Fatalf("range [%d,%d): %v", cut[0], cut[1], err)
		}
		sum.Add(part)
	}
	if sum != want {
		t.Fatalf("summed range evaluations %+v != whole evaluation %+v", sum, want)
	}
}

// TestEvaluateObservedRungTagsBatch: the rung index rides the telemetry
// batch (and only there — the statistics are rung-independent), and the
// classic entry point keeps emitting untagged batches.
func TestEvaluateObservedRungTagsBatch(t *testing.T) {
	an := transposeAnalyzer(t, 48, []int64{6, 10})
	box := iterspace.NewBox([]int64{1, 1}, []int64{48, 48})
	s := Draw(box, 64, rand.New(rand.NewPCG(1, 2)))

	var cap telemetry.Capture
	ans := []*cme.Analyzer{an}
	tagged, err := s.EvaluateObservedRung(context.Background(), ans, &cap, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	classic, err := s.EvaluateObservedIsland(context.Background(), ans, &cap, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tagged != classic {
		t.Fatalf("rung tag changed the statistics: %+v vs %+v", tagged, classic)
	}
	events := cap.Events()
	if len(events) != 2 {
		t.Fatalf("captured %d events, want 2 batches", len(events))
	}
	first, ok := events[0].(telemetry.EvaluationBatch)
	if !ok || first.Rung != 3 || first.Island != 2 {
		t.Fatalf("rung batch mis-tagged: %+v", events[0])
	}
	second, ok := events[1].(telemetry.EvaluationBatch)
	if !ok || second.Rung != 0 {
		t.Fatalf("classic batch carries a rung tag: %+v", events[1])
	}
}

// TestSetProfileLabelsEvaluates: flipping the label switch must not
// change results — it only wraps workers in pprof label contexts.
func TestSetProfileLabelsEvaluates(t *testing.T) {
	an := transposeAnalyzer(t, 48, []int64{6, 10})
	box := iterspace.NewBox([]int64{1, 1}, []int64{48, 48})
	s := Draw(box, 128, rand.New(rand.NewPCG(7, 9)))
	want := s.Evaluate(an)

	SetProfileLabels(true)
	defer SetProfileLabels(false)
	got, err := s.EvaluateContext(context.Background(), an, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("labelled evaluation %+v != serial %+v", got, want)
	}
}
