package sampling

import (
	"context"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/iterspace"
)

// TestEvaluateWithInjectedPanicBecomesError: an eval.panic fault fires at
// the armed batch and surfaces as an error from EvaluateWith — at every
// worker count, since the fault fires in the serial entry section.
func TestEvaluateWithInjectedPanicBecomesError(t *testing.T) {
	an := transposeAnalyzer(t, 64, []int64{8, 8})
	box := iterspace.NewBox([]int64{1, 1}, []int64{64, 64})
	s := Draw(box, 300, rand.New(rand.NewPCG(7, 9)))
	for _, workers := range []int{1, 4} {
		plan := faultinject.New(1, faultinject.Rule{Point: faultinject.EvalPanic, After: 2, Times: 1})
		ctx := faultinject.With(context.Background(), plan)
		// Batch 1 passes.
		if _, err := s.EvaluateContext(ctx, an, workers); err != nil {
			t.Fatalf("workers=%d batch 1: %v", workers, err)
		}
		// Batch 2 trips the injected panic, recovered to an error.
		_, err := s.EvaluateContext(ctx, an, workers)
		if err == nil || !strings.Contains(err.Error(), "panic") {
			t.Fatalf("workers=%d batch 2: err = %v, want recovered panic", workers, err)
		}
		// Batch 3 passes again (times=1) and is complete.
		want := s.Evaluate(an)
		got, err := s.EvaluateContext(ctx, an, workers)
		if err != nil || got != want {
			t.Fatalf("workers=%d batch 3: %+v, %v (want %+v)", workers, got, err, want)
		}
		if hits, fired := plan.Counts(faultinject.EvalPanic); hits != 3 || fired != 1 {
			t.Fatalf("workers=%d: counts = %d/%d, want 3/1", workers, hits, fired)
		}
	}
}

// TestEvaluateWithInjectedStallHonoursContext: an unbounded eval.stall
// blocks until the context is cancelled, then reports the context error —
// it cannot hang an evaluation forever.
func TestEvaluateWithInjectedStallHonoursContext(t *testing.T) {
	an := transposeAnalyzer(t, 64, []int64{8, 8})
	box := iterspace.NewBox([]int64{1, 1}, []int64{64, 64})
	s := Draw(box, 300, rand.New(rand.NewPCG(7, 9)))
	plan := faultinject.New(1, faultinject.Rule{Point: faultinject.EvalStall, Action: faultinject.Stall})
	ctx, cancel := context.WithCancel(faultinject.With(context.Background(), plan))
	done := make(chan error, 1)
	go func() {
		_, err := s.EvaluateContext(ctx, an, 4)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled evaluation returned before cancel: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("stalled evaluation did not unblock on cancel")
	}
}

// TestEvaluateWithBoundedStallCompletes: a bounded stall only delays the
// batch; the result is still complete and correct.
func TestEvaluateWithBoundedStallCompletes(t *testing.T) {
	an := transposeAnalyzer(t, 64, []int64{8, 8})
	box := iterspace.NewBox([]int64{1, 1}, []int64{64, 64})
	s := Draw(box, 300, rand.New(rand.NewPCG(7, 9)))
	plan := faultinject.New(1, faultinject.Rule{
		Point: faultinject.EvalStall, Action: faultinject.Stall, Stall: time.Millisecond,
	})
	ctx := faultinject.With(context.Background(), plan)
	want := s.Evaluate(an)
	got, err := s.EvaluateContext(ctx, an, 4)
	if err != nil || got != want {
		t.Fatalf("bounded stall: %+v, %v (want %+v)", got, err, want)
	}
}

// TestEvaluateWithNoPlanUnchanged: without a plan in the context the
// results and errors are exactly the pre-fault-injection behaviour.
func TestEvaluateWithNoPlanUnchanged(t *testing.T) {
	an := transposeAnalyzer(t, 64, []int64{8, 8})
	box := iterspace.NewBox([]int64{1, 1}, []int64{64, 64})
	s := Draw(box, 300, rand.New(rand.NewPCG(7, 9)))
	want := s.Evaluate(an)
	for _, workers := range []int{1, 4} {
		got, err := s.EvaluateContext(context.Background(), an, workers)
		if err != nil || got != want {
			t.Fatalf("workers=%d: %+v, %v (want %+v)", workers, got, err, want)
		}
	}
}
