package sampling

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/cme"
	"repro/internal/expr"
	"repro/internal/ir"
	"repro/internal/iterspace"
)

// TestPaperSampleSize reproduces §2.3: width 0.1 at 90% confidence needs
// 164 points.
func TestPaperSampleSize(t *testing.T) {
	n := SampleSize(0.1, 0.90)
	if n != PaperSampleSize {
		t.Fatalf("SampleSize(0.1, 0.90) = %d, want %d", n, PaperSampleSize)
	}
	// Tighter intervals need more points; higher confidence too.
	if SampleSize(0.05, 0.90) <= n {
		t.Fatal("halving the width should increase the sample size")
	}
	if SampleSize(0.1, 0.95) <= n {
		t.Fatal("raising confidence should increase the sample size")
	}
}

func TestSampleSizePanics(t *testing.T) {
	for _, c := range [][2]float64{{0, 0.9}, {0.1, 0}, {0.1, 1}, {2, 0.9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SampleSize(%v, %v): expected panic", c[0], c[1])
				}
			}()
			SampleSize(c[0], c[1])
		}()
	}
}

func TestZQuantile(t *testing.T) {
	// Φ⁻¹(0.975) = 1.95996...
	if z := zQuantile(0.975); math.Abs(z-1.95996) > 1e-4 {
		t.Fatalf("zQuantile(0.975) = %v", z)
	}
	if z := zQuantile(0.5); math.Abs(z) > 1e-12 {
		t.Fatalf("zQuantile(0.5) = %v", z)
	}
}

func transposeAnalyzer(t *testing.T, n int64, tile []int64) *cme.Analyzer {
	t.Helper()
	a := &ir.Array{Name: "a", Dims: []int64{n, n}, Elem: 8}
	b := &ir.Array{Name: "b", Dims: []int64{n, n}, Elem: 8}
	ir.LayoutArrays(0, 32, a, b)
	nest := &ir.Nest{
		Name: "t2d",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
			{Var: "j", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: b, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}},
			{Array: a, Subs: []expr.Affine{expr.Var(1), expr.Var(0)}, Write: true},
		},
	}
	box := iterspace.NewBox([]int64{1, 1}, []int64{n, n})
	var sp iterspace.Space = box
	if tile != nil {
		sp = iterspace.NewTiled(box, tile)
	}
	an, err := cme.NewAnalyzer(nest, sp, cache.DM8K)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

// TestEstimateWithinInterval: the sampled estimate brackets the exact
// exhaustive ratio for a kernel small enough to enumerate.
func TestEstimateWithinInterval(t *testing.T) {
	an := transposeAnalyzer(t, 64, nil)
	exact := an.ExhaustiveStats()
	rng := rand.New(rand.NewPCG(101, 103))
	est := EstimateMissRatio(an, 400, 0.90, rng)
	lo, hi := est.Interval()
	if exact.MissRatio() < lo-0.05 || exact.MissRatio() > hi+0.05 {
		t.Fatalf("exact ratio %.3f far outside interval [%.3f, %.3f]", exact.MissRatio(), lo, hi)
	}
	if est.Points != 400 || est.Stats.Accesses != 800 {
		t.Fatalf("estimate bookkeeping: %+v", est)
	}
	if est.String() == "" {
		t.Fatal("empty String")
	}
}

// TestEstimateConvergence: estimates from disjoint seeds agree within the
// combined interval width.
func TestEstimateConvergence(t *testing.T) {
	an := transposeAnalyzer(t, 128, nil)
	e1 := EstimateMissRatio(an, PaperSampleSize, 0.90, rand.New(rand.NewPCG(1, 1)))
	e2 := EstimateMissRatio(an, PaperSampleSize, 0.90, rand.New(rand.NewPCG(2, 2)))
	if d := math.Abs(e1.MissRatio - e2.MissRatio); d > e1.Half+e2.Half+0.05 {
		t.Fatalf("estimates disagree: %.3f vs %.3f", e1.MissRatio, e2.MissRatio)
	}
}

// TestFixedSampleDeterministic: evaluating the same Sample twice gives
// identical counts, and evaluating it under two analyzers ranks tilings
// the same way as the exact exhaustive counts.
func TestFixedSampleDeterministic(t *testing.T) {
	n := int64(64)
	box := iterspace.NewBox([]int64{1, 1}, []int64{n, n})
	s := Draw(box, 300, rand.New(rand.NewPCG(7, 9)))
	anU := transposeAnalyzer(t, n, nil)
	st1 := s.Evaluate(anU)
	st2 := s.Evaluate(anU)
	if st1 != st2 {
		t.Fatalf("fixed sample not deterministic: %+v vs %+v", st1, st2)
	}

	anT := transposeAnalyzer(t, n, []int64{8, 8})
	sampU := s.Evaluate(anU)
	sampT := s.Evaluate(anT)
	exactU := anU.ExhaustiveStats()
	exactT := anT.ExhaustiveStats()
	if (exactT.Replacement < exactU.Replacement) != (sampT.Replacement < sampU.Replacement) {
		t.Fatalf("sampled ranking disagrees with exact: sampled %d vs %d, exact %d vs %d",
			sampT.Replacement, sampU.Replacement, exactT.Replacement, exactU.Replacement)
	}
	est := s.EvaluateEstimate(anT, 0.9)
	if est.Points != 300 {
		t.Fatalf("EvaluateEstimate points = %d", est.Points)
	}
}

func TestEstimateZeroAccesses(t *testing.T) {
	e := finish(cachesim.Stats{}, 0, 0.9)
	if e.MissRatio != 0 || e.Half != 0 {
		t.Fatalf("zero-sample estimate = %+v", e)
	}
	lo, hi := e.Interval()
	if lo != 0 || hi != 0 {
		t.Fatalf("zero-sample interval = [%v, %v]", lo, hi)
	}
}

// TestEstimatePerRef: per-reference estimates sum to the aggregate and
// expose the asymmetry of the transpose kernel (a(j,i) misses far more
// than b(i,j)).
func TestEstimatePerRef(t *testing.T) {
	an := transposeAnalyzer(t, 500, nil)
	rng := rand.New(rand.NewPCG(5, 6))
	per := EstimatePerRef(an, 600, 0.9, rng)
	if len(per) != 2 {
		t.Fatalf("per-ref count = %d", len(per))
	}
	// With column-major arrays and j innermost, a(j,i) walks its fastest
	// dimension (streams) while b(i,j) strides a whole column per step:
	// the read must miss far more than the write.
	if per[0].MissRatio <= per[1].MissRatio {
		t.Fatalf("b(i,j) miss %.3f not above a(j,i) %.3f", per[0].MissRatio, per[1].MissRatio)
	}
	for _, e := range per {
		if e.Stats.Accesses != 600 {
			t.Fatalf("per-ref accesses = %d", e.Stats.Accesses)
		}
	}
}

// TestCompareSampleSizes: the paper-size estimate's interval brackets the
// large-sample reference.
func TestCompareSampleSizes(t *testing.T) {
	n := int64(256)
	a := &ir.Array{Name: "a", Dims: []int64{n, n}, Elem: 8}
	b := &ir.Array{Name: "b", Dims: []int64{n, n}, Elem: 8}
	ir.LayoutArrays(0, 32, a, b)
	nest := &ir.Nest{
		Name: "t2d",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
			{Var: "j", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: b, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}},
			{Array: a, Subs: []expr.Affine{expr.Var(1), expr.Var(0)}, Write: true},
		},
	}
	small, large, err := CompareSampleSizes(nest, cache.DM8K, PaperSampleSize, 8200, 99)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := small.Interval()
	if large.MissRatio < lo-large.Half || large.MissRatio > hi+large.Half {
		t.Fatalf("precise ratio %.3f outside paper interval [%.3f, %.3f]", large.MissRatio, lo, hi)
	}
	if large.Half >= small.Half {
		t.Fatal("larger sample should have tighter interval")
	}
}

// TestEvaluateParallelMatchesSerial: parallel evaluation returns identical
// counts (bit-for-bit determinism of searches is preserved).
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	n := int64(128)
	box := iterspace.NewBox([]int64{1, 1}, []int64{n, n})
	s := Draw(box, 500, rand.New(rand.NewPCG(21, 22)))
	an := transposeAnalyzer(t, n, []int64{16, 8})
	serial := s.Evaluate(an)
	for _, workers := range []int{2, 3, 8, 1000} {
		got := s.EvaluateParallel(an, workers)
		if got != serial {
			t.Fatalf("workers=%d: %+v != serial %+v", workers, got, serial)
		}
	}
	// Degenerate worker counts fall back to serial.
	if got := s.EvaluateParallel(an, 1); got != serial {
		t.Fatal("workers=1 mismatch")
	}
}
