package sampling

import (
	"context"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/cme"
	"repro/internal/iterspace"
)

// TestEvaluateWorkerCountsMatchSerial: for every worker count 1..8, the
// parallel evaluation paths return Stats exactly equal (all six fields) to
// serial Evaluate — worker count must never perturb a search result.
func TestEvaluateWorkerCountsMatchSerial(t *testing.T) {
	an := transposeAnalyzer(t, 48, []int64{6, 10})
	box := iterspace.NewBox([]int64{1, 1}, []int64{48, 48})
	s := Draw(box, 257, rand.New(rand.NewPCG(11, 13)))
	want := s.Evaluate(an)
	for workers := 1; workers <= 8; workers++ {
		got, err := s.EvaluateContext(context.Background(), an, workers)
		if err != nil {
			t.Fatalf("EvaluateContext workers=%d: %v", workers, err)
		}
		if got != want {
			t.Fatalf("EvaluateContext workers=%d: %+v != serial %+v", workers, got, want)
		}
		if got := s.EvaluateParallel(an, workers); got != want {
			t.Fatalf("EvaluateParallel workers=%d: %+v != serial %+v", workers, got, want)
		}
	}
}

// TestEvaluateWithPooledAnalyzers: EvaluateWith over a caller-supplied
// analyzer pool matches serial evaluation, and the same pool Rebind-ed to a
// different tiling still matches a fresh serial evaluation there — the
// reuse pattern the core evaluator's analyzer pool depends on.
func TestEvaluateWithPooledAnalyzers(t *testing.T) {
	an := transposeAnalyzer(t, 48, []int64{6, 10})
	box := iterspace.NewBox([]int64{1, 1}, []int64{48, 48})
	s := Draw(box, 300, rand.New(rand.NewPCG(3, 5)))

	pool := []*cme.Analyzer{an, an.Clone(), an.Clone(), an.Clone()}
	want := s.Evaluate(transposeAnalyzer(t, 48, []int64{6, 10}))
	got, err := s.EvaluateWith(context.Background(), pool)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("EvaluateWith: %+v != serial %+v", got, want)
	}

	// Rebind the whole pool at a new tiling and evaluate again.
	tiled := iterspace.NewTiled(box, []int64{12, 4})
	for _, a := range pool {
		if err := a.Rebind(tiled); err != nil {
			t.Fatal(err)
		}
	}
	want = s.Evaluate(transposeAnalyzer(t, 48, []int64{12, 4}))
	got, err = s.EvaluateWith(context.Background(), pool)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("EvaluateWith after Rebind: %+v != serial %+v", got, want)
	}

	if _, err := s.EvaluateWith(context.Background(), nil); err == nil {
		t.Fatal("EvaluateWith accepted an empty analyzer pool")
	}
}

// expiredAfterCtx models a context that expires only after the last point
// is classified: Err() reports cancellation but Done() never fires, so
// every worker completes its slice. The evaluation must return its
// complete result with a nil error instead of discarding finished work.
type expiredAfterCtx struct{}

func (expiredAfterCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (expiredAfterCtx) Done() <-chan struct{}       { return nil }
func (expiredAfterCtx) Err() error                  { return context.Canceled }
func (expiredAfterCtx) Value(key any) any           { return nil }

// TestEvaluateCompleteResultNotDiscarded is the regression test for the
// tail-error bug: a run that classified every sampled point used to return
// ctx.Err(), throwing away a complete, valid result when the context
// expired after the final point.
func TestEvaluateCompleteResultNotDiscarded(t *testing.T) {
	an := transposeAnalyzer(t, 48, []int64{6, 10})
	box := iterspace.NewBox([]int64{1, 1}, []int64{48, 48})
	s := Draw(box, 300, rand.New(rand.NewPCG(21, 23)))
	want := s.Evaluate(an)
	for _, workers := range []int{2, 4} {
		got, err := s.EvaluateContext(expiredAfterCtx{}, an, workers)
		if err != nil {
			t.Fatalf("workers=%d: complete run discarded with error %v", workers, err)
		}
		if got != want {
			t.Fatalf("workers=%d: %+v != serial %+v", workers, got, want)
		}
	}
}
