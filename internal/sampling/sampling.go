// Package sampling implements the statistical miss-ratio estimation of
// §2.3: instead of solving the Cache Miss Equations over the whole
// iteration space, a Simple Random Sample of iteration points is classified
// and the miss ratio is inferred with a binomial confidence interval. The
// paper uses a width-0.1 interval at 90% confidence, which requires only
// 164 iteration points regardless of problem size.
package sampling

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand/v2"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/cme"
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/iterspace"
	"repro/internal/telemetry"
	"repro/internal/tiling"
)

// profileLabels gates pprof goroutine labelling on the evaluation workers.
// Off by default: labels cost an allocation per worker launch, which the
// zero-overhead telemetry contract forbids on unprofiled runs.
var profileLabels atomic.Bool

// SetProfileLabels toggles pprof labels (kernel, phase, rung) on the
// parallel evaluation workers, so CPU profiles attribute classification
// time per kernel and per fidelity rung. The CLIs enable it alongside
// -pprof.
func SetProfileLabels(on bool) { profileLabels.Store(on) }

// PaperSampleSize is the sample size the paper derives for a confidence
// interval of width 0.1 at 90% confidence (§2.3).
const PaperSampleSize = 164

// SampleSize returns the number of iteration points needed for a binomial
// confidence interval of the given total width and confidence level, using
// the worst-case variance p(1−p) = 1/4:
//
//	n = z² · p(1−p) / (width/2)²  with  z = Φ⁻¹(confidence).
//
// With width 0.1 and confidence 0.90 this reproduces the paper's 164 (up
// to rounding of z).
func SampleSize(width, confidence float64) int {
	if width <= 0 || width >= 2 || confidence <= 0 || confidence >= 1 {
		panic(fmt.Sprintf("sampling: bad interval parameters width=%v confidence=%v", width, confidence))
	}
	z := zQuantile(confidence)
	h := width / 2
	return int(math.Round(z * z * 0.25 / (h * h)))
}

// zQuantile returns Φ⁻¹(p), the standard normal quantile.
func zQuantile(p float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// Estimate is a sampled miss-ratio estimate with its confidence interval.
type Estimate struct {
	// Stats holds the sampled outcome counts (Accesses = sample points ×
	// references).
	Stats cachesim.Stats
	// MissRatio and ReplacementRatio are the point estimates (interval
	// centres).
	MissRatio        float64
	ReplacementRatio float64
	// Half is the confidence half-width actually achieved for the miss
	// ratio at the given confidence.
	Half       float64
	Confidence float64
	Points     int
}

func (e Estimate) String() string {
	return fmt.Sprintf("miss %.2f%% ±%.2f%% (repl %.2f%%) from %d points",
		100*e.MissRatio, 100*e.Half, 100*e.ReplacementRatio, e.Points)
}

// Interval returns the confidence interval for the total miss ratio.
func (e Estimate) Interval() (lo, hi float64) {
	lo = math.Max(0, e.MissRatio-e.Half)
	hi = math.Min(1, e.MissRatio+e.Half)
	return lo, hi
}

// FromStats wraps already-sampled counts in an Estimate, deriving the
// ratios and the confidence half-width. points is the number of iteration
// points the counts came from.
func FromStats(st cachesim.Stats, points int, confidence float64) Estimate {
	return finish(st, points, confidence)
}

// finish derives the ratios and half-width from sampled counts. The
// binomial model is over the independently drawn iteration POINTS (the
// accesses of one point are correlated), matching the paper's derivation
// of the 164-point sample size.
func finish(st cachesim.Stats, points int, confidence float64) Estimate {
	e := Estimate{Stats: st, Confidence: confidence, Points: points}
	if st.Accesses > 0 && points > 0 {
		e.MissRatio = st.MissRatio()
		e.ReplacementRatio = st.ReplacementRatio()
		p := e.MissRatio
		e.Half = zQuantile(confidence) * math.Sqrt(p*(1-p)/float64(points))
	}
	return e
}

// EstimateMissRatio draws n iteration points uniformly (simple random
// sampling, with replacement) from the analyzer's iteration space,
// classifies every reference at each point with the exact CME point solver
// and returns the inferred ratios.
func EstimateMissRatio(an *cme.Analyzer, n int, confidence float64, rng *rand.Rand) Estimate {
	sp := an.Space()
	p := make([]int64, sp.NumCoords())
	var st cachesim.Stats
	for i := 0; i < n; i++ {
		sp.Sample(rng, p)
		an.ClassifyAll(p, &st)
	}
	return finish(st, n, confidence)
}

// EstimatePerRef samples n iteration points and returns one estimate per
// body reference, in body order — the per-reference locality view the
// cmereport tool prints.
func EstimatePerRef(an *cme.Analyzer, n int, confidence float64, rng *rand.Rand) []Estimate {
	sp := an.Space()
	nrefs := len(an.Nest().Refs)
	p := make([]int64, sp.NumCoords())
	stats := make([]cachesim.Stats, nrefs)
	for i := 0; i < n; i++ {
		sp.Sample(rng, p)
		for r := 0; r < nrefs; r++ {
			stats[r].Accesses++
			switch an.Classify(p, r) {
			case cachesim.Hit:
				stats[r].Hits++
			case cachesim.CompulsoryMiss:
				stats[r].Compulsory++
			case cachesim.ReplacementMiss:
				stats[r].Replacement++
			}
		}
	}
	out := make([]Estimate, nrefs)
	for r := range out {
		out[r] = finish(stats[r], n, confidence)
	}
	return out
}

// EstimateMissRatioWorkers is EstimateMissRatio fanned out over workers
// analyzer clones. All n points are drawn from rng first — consuming the
// identical random sequence as the serial estimator — and only then
// classified in parallel chunks, so the returned Estimate is equal to the
// serial one for the same rng state (the counts are sums over the same
// points). workers < 2 (or a small n) falls back to the serial path.
func EstimateMissRatioWorkers(an *cme.Analyzer, n int, confidence float64, rng *rand.Rand, workers int) Estimate {
	if workers > n {
		workers = n
	}
	if workers < 2 || n < 64 {
		return EstimateMissRatio(an, n, confidence, rng)
	}
	sp := an.Space()
	pts := make([][]int64, n)
	for i := range pts {
		p := make([]int64, sp.NumCoords())
		sp.Sample(rng, p)
		pts[i] = p
	}
	ans := make([]*cme.Analyzer, workers)
	ans[0] = an
	for w := 1; w < workers; w++ {
		ans[w] = an.Clone()
	}
	partial := make([]cachesim.Stats, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for _, p := range pts[lo:hi] {
				ans[w].ClassifyAll(p, &partial[w])
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var st cachesim.Stats
	for _, ps := range partial {
		st.Add(ps)
	}
	return finish(st, n, confidence)
}

// CompareSampleSizes estimates the untiled miss ratio of a nest twice —
// with small and with large samples — used to validate the §2.3 claim
// that 164 points suffice.
func CompareSampleSizes(nest *ir.Nest, cfg cache.Config, small, large int, seed uint64) (Estimate, Estimate, error) {
	box, err := tiling.Box(nest)
	if err != nil {
		return Estimate{}, Estimate{}, err
	}
	an, err := cme.NewAnalyzer(nest, box, cfg)
	if err != nil {
		return Estimate{}, Estimate{}, err
	}
	rs := rand.New(rand.NewPCG(seed, seed^0x1234))
	rl := rand.New(rand.NewPCG(seed^0x9999, seed))
	return EstimateMissRatio(an, small, 0.90, rs), EstimateMissRatio(an, large, 0.90, rl), nil
}

// Sample is a fixed set of original-space iteration points, drawn once and
// reusable across candidate tilings. Using common points for every
// candidate (common random numbers) makes the genetic algorithm's fitness
// deterministic within a search and reduces comparison variance: tiling
// permutes the iteration space, so a uniform sample of the original box is
// a uniform sample of every tiled space.
type Sample struct {
	Points [][]int64
}

// Draw draws n original-space points uniformly from the box.
func Draw(box *iterspace.Box, n int, rng *rand.Rand) *Sample {
	s := &Sample{Points: make([][]int64, n)}
	for i := range s.Points {
		p := make([]int64, box.NumCoords())
		box.Sample(rng, p)
		s.Points[i] = p
	}
	return s
}

// Range returns a view of the sample holding points [lo, hi) — the unit
// the multi-fidelity ladder evaluates: rung r extends a candidate from
// its previous prefix to the next, so no point is classified twice. The
// view shares the backing points; it must not be mutated.
func (s *Sample) Range(lo, hi int) *Sample {
	return &Sample{Points: s.Points[lo:hi]}
}

// Fingerprint returns a canonical content hash of the sample: two samples
// fingerprint equally iff they hold the same points in the same order.
// Because the fitness of a candidate is a pure function of (nest, cache
// geometry, sample, genome), the fingerprint is what makes sampled
// evaluation results safely shareable across searches and requests — two
// searches over the same nest that drew the same sample may exchange
// results no matter which seeds or budgets drove them.
func (s *Sample) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	w := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	w(int64(len(s.Points)))
	for _, p := range s.Points {
		w(int64(len(p)))
		for _, c := range p {
			w(c)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Evaluate classifies every reference at every sampled point under the
// analyzer's traversal order and returns the aggregate counts.
func (s *Sample) Evaluate(an *cme.Analyzer) cachesim.Stats {
	sp := an.Space()
	p := make([]int64, sp.NumCoords())
	var st cachesim.Stats
	for _, orig := range s.Points {
		sp.FromOriginal(orig, p)
		an.ClassifyAll(p, &st)
	}
	return st
}

// EvaluateEstimate is Evaluate wrapped into an Estimate at the given
// confidence.
func (s *Sample) EvaluateEstimate(an *cme.Analyzer, confidence float64) Estimate {
	return finish(s.Evaluate(an), len(s.Points), confidence)
}

// EvaluateParallel is Evaluate fanned out over workers goroutines, each
// classifying a contiguous slice of the sample on its own analyzer clone.
// The result is identical to Evaluate (the counts are sums over the same
// points), so parallelism never perturbs search results.
//
// It is EvaluateContext without cancellation; an analyzer panic, converted
// to an error there, re-panics here to preserve this signature's contract.
func (s *Sample) EvaluateParallel(an *cme.Analyzer, workers int) cachesim.Stats {
	st, err := s.EvaluateContext(context.Background(), an, workers)
	if err != nil {
		panic(err)
	}
	return st
}

// EvaluateContext is the fault-tolerant evaluation entry: like
// EvaluateParallel it fans the sample out over workers analyzer clones
// (workers < 2 evaluates serially on an itself), but it honours ctx
// cancellation between points and converts a panic in any worker into an
// error instead of crashing the process. Every worker drains cleanly —
// the WaitGroup is always released — and the first failure is reported.
// On error the returned counts are partial and must be discarded. A run
// that classified every point before the context expired returns its
// complete result with a nil error.
func (s *Sample) EvaluateContext(ctx context.Context, an *cme.Analyzer, workers int) (cachesim.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(s.Points)
	if workers > n {
		workers = n
	}
	if workers < 2 || n < 64 {
		// Serial runs still route through EvaluateWith so fault injection
		// and panic recovery behave identically at every worker count.
		return s.EvaluateWith(ctx, []*cme.Analyzer{an})
	}
	// WorkerPool caches the clones on the analyzer, so repeated parallel
	// evaluations over one analyzer reuse them instead of re-cloning
	// (2 KiB of scratch per clone) every call.
	return s.EvaluateWith(ctx, an.WorkerPool(workers))
}

// EvaluateWith is the pooling-friendly core of EvaluateContext: the caller
// supplies the per-worker analyzers (all observing the same nest, space
// and cache), one goroutine per analyzer. Search evaluators that Rebind
// and reuse a fixed analyzer pool across candidates skip the per-call
// Clone allocation churn entirely. Cancellation, panic recovery and the
// complete-result guarantee match EvaluateContext.
//
// A fault-injection plan threaded through ctx (faultinject.With) is
// consulted once at entry, before any worker starts: the eval.stall and
// eval.panic points fire here, in the serial section, so their hit counts
// equal the number of evaluation batches regardless of the worker count —
// which batch a scripted fault lands on is deterministic. Any panic,
// injected or genuine, surfaces as an error, never a crash.
func (s *Sample) EvaluateWith(ctx context.Context, ans []*cme.Analyzer) (cachesim.Stats, error) {
	return s.evaluateWith(ctx, ans, 0)
}

// evalScratch is one parallel evaluation's per-worker result arrays,
// pooled so the multi-worker path stays near-zero-alloc across the
// thousands of batches a search runs.
type evalScratch struct {
	partial []cachesim.Stats
	errs    []error
}

var scratchPool = sync.Pool{New: func() any { return new(evalScratch) }}

// take sizes the scratch for n workers, zeroing reused entries.
func (sc *evalScratch) take(n int) {
	if cap(sc.partial) < n {
		sc.partial = make([]cachesim.Stats, n)
		sc.errs = make([]error, n)
		return
	}
	sc.partial = sc.partial[:n]
	sc.errs = sc.errs[:n]
	for i := range sc.partial {
		sc.partial[i] = cachesim.Stats{}
		sc.errs[i] = nil
	}
}

// evaluateWith is the core of EvaluateWith; rung (1-based, 0 = classic
// full-fidelity evaluation) tags the workers' pprof labels so profiles
// attribute time per fidelity rung.
func (s *Sample) evaluateWith(ctx context.Context, ans []*cme.Analyzer, rung int) (st cachesim.Stats, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(ans) == 0 {
		return cachesim.Stats{}, fmt.Errorf("sampling: EvaluateWith needs at least one analyzer")
	}
	defer func() {
		if r := recover(); r != nil {
			st, err = cachesim.Stats{}, fmt.Errorf("sampling: evaluation panic: %v", r)
		}
	}()
	if plan := faultinject.From(ctx); plan != nil {
		if ferr := plan.Fire(ctx, faultinject.EvalStall); ferr != nil {
			return cachesim.Stats{}, ferr
		}
		if ferr := plan.Fire(ctx, faultinject.EvalPanic); ferr != nil {
			return cachesim.Stats{}, ferr
		}
	}
	n := len(s.Points)
	workers := len(ans)
	if workers > n {
		workers = n
	}
	if workers < 2 || n < 64 {
		err = classifyRange(ctx, ans[0], s.Points, &st)
		return st, err
	}
	labels := profileLabels.Load()
	sc := scratchPool.Get().(*evalScratch)
	sc.take(workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			if labels {
				pprof.Do(ctx, pprof.Labels(
					"kernel", ans[0].Nest().Name,
					"phase", "evaluate",
					"rung", strconv.Itoa(rung),
				), func(ctx context.Context) {
					sc.errs[w] = classifyRange(ctx, ans[w], s.Points[lo:hi], &sc.partial[w])
				})
				return
			}
			sc.errs[w] = classifyRange(ctx, ans[w], s.Points[lo:hi], &sc.partial[w])
		}(w, lo, hi)
	}
	wg.Wait()
	for _, ps := range sc.partial {
		st.Add(ps)
	}
	err = nil
	for _, werr := range sc.errs {
		if werr != nil {
			err = werr
			break
		}
	}
	// Every worker has drained (wg.Wait above), so the scratch can be
	// recycled; a panic path simply drops it.
	scratchPool.Put(sc)
	if err != nil {
		return st, err
	}
	// Every worker finished its slice: the result is complete and valid
	// even if ctx expired after the last point was classified.
	return st, nil
}

// EvaluateObserved is EvaluateWith plus telemetry: on success it emits one
// EvaluationBatch event and the matching counter deltas (sampled points,
// walk steps, classified accesses, cap hits) to obs. The walk accounting
// is computed as before/after deltas over the supplied analyzers, so it is
// correct even when the caller Rebinds pooled analyzers (which zeroes
// their counters) between batches. A nil obs is exactly EvaluateWith —
// the hot path pays only a nil check. Failed or cancelled evaluations
// record nothing: their partial counts are discarded by the caller too.
func (s *Sample) EvaluateObserved(ctx context.Context, ans []*cme.Analyzer, obs telemetry.Recorder) (cachesim.Stats, error) {
	return s.EvaluateObservedIsland(ctx, ans, obs, 0)
}

// EvaluateObservedIsland is EvaluateObserved with the batch tagged by its
// 1-based island index (0 = single-population run): per-island evaluators
// of the island-model GA report which deme each batch served, so a stream
// consumer can attribute evaluation work per island.
func (s *Sample) EvaluateObservedIsland(ctx context.Context, ans []*cme.Analyzer, obs telemetry.Recorder, island int) (cachesim.Stats, error) {
	return s.EvaluateObservedRung(ctx, ans, obs, island, 0)
}

// EvaluateObservedRung is EvaluateObservedIsland with the batch tagged by
// its 1-based fidelity rung (0 = classic full-fidelity evaluation): the
// multi-fidelity ladder evaluates cumulative sample-prefix ranges, and
// rung attribution in the event stream (and in pprof labels) is how a
// consumer sees where the pruning spends its points. The emitted batch
// covers exactly this sample view's points — for a ladder extension,
// the newly classified range, not the cumulative prefix.
func (s *Sample) EvaluateObservedRung(ctx context.Context, ans []*cme.Analyzer, obs telemetry.Recorder, island, rung int) (cachesim.Stats, error) {
	if obs == nil {
		return s.evaluateWith(ctx, ans, rung)
	}
	before := make([]cme.WalkCounts, len(ans))
	for i, an := range ans {
		before[i] = an.WalkCounts()
	}
	st, err := s.evaluateWith(ctx, ans, rung)
	if err != nil {
		return st, err
	}
	var wc cme.WalkCounts
	for i, an := range ans {
		wc = wc.Plus(an.WalkCounts().Sub(before[i]))
	}
	obs.Event(telemetry.EvaluationBatch{
		Island:      island,
		Points:      len(s.Points),
		Accesses:    st.Accesses,
		Hits:        st.Hits,
		Compulsory:  st.Compulsory,
		Replacement: st.Replacement,
		WalkSteps:   wc.Steps,
		Rung:        rung,
	})
	obs.Add(telemetry.Counters{
		SampledPoints:      uint64(len(s.Points)),
		WalkSteps:          wc.Steps,
		ClassifiedAccesses: wc.Classified,
		WalkCapHits:        wc.CapHits,
	})
	return st, nil
}

// classifyRange classifies one worker's slice of the sample, polling ctx
// every few points and recovering a panicking analyzer into an error.
func classifyRange(ctx context.Context, an *cme.Analyzer, points [][]int64, st *cachesim.Stats) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sampling: evaluation worker panic: %v", r)
		}
	}()
	sp := an.Space()
	// Each worker owns its analyzer, so the analyzer-cached scratch point
	// is private to this loop; reusing it removes the last per-batch
	// allocation on the hot path.
	p := an.PointScratch()
	for i, orig := range points {
		if i&31 == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		sp.FromOriginal(orig, p)
		an.ClassifyAll(p, st)
	}
	return nil
}
