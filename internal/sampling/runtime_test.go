package sampling

import (
	"context"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/iterspace"
)

// TestEvaluateContextCancel: a cancelled context stops the evaluation with
// the context's error, in both the serial and the parallel path.
func TestEvaluateContextCancel(t *testing.T) {
	an := transposeAnalyzer(t, 64, []int64{8, 8})
	box := iterspace.NewBox([]int64{1, 1}, []int64{64, 64})
	s := Draw(box, 300, rand.New(rand.NewPCG(7, 9)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := s.EvaluateContext(ctx, an, workers); err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestEvaluateContextPanicRecovery: a corrupt point panics inside exactly
// one worker; every path (serial and parallel) must return the panic as an
// error, with the remaining workers draining instead of deadlocking the
// WaitGroup or crashing the process.
func TestEvaluateContextPanicRecovery(t *testing.T) {
	an := transposeAnalyzer(t, 64, []int64{8, 8})
	box := iterspace.NewBox([]int64{1, 1}, []int64{64, 64})
	s := Draw(box, 300, rand.New(rand.NewPCG(7, 9)))
	s.Points[150] = []int64{} // too short for the tiled space: index panic
	for _, workers := range []int{1, 4} {
		_, err := s.EvaluateContext(context.Background(), an, workers)
		if err == nil {
			t.Fatalf("workers=%d: panic was swallowed", workers)
		}
		if !strings.Contains(err.Error(), "panic") {
			t.Fatalf("workers=%d: error %q does not report the panic", workers, err)
		}
	}
}

// TestEvaluateContextMatchesSerial: the parallel path sums the same
// per-point outcomes as serial evaluation — identical Stats, any worker
// count.
func TestEvaluateContextMatchesSerial(t *testing.T) {
	an := transposeAnalyzer(t, 64, []int64{8, 8})
	box := iterspace.NewBox([]int64{1, 1}, []int64{64, 64})
	s := Draw(box, 300, rand.New(rand.NewPCG(7, 9)))
	want := s.Evaluate(an)
	for _, workers := range []int{0, 1, 2, 5, 64} {
		got, err := s.EvaluateContext(context.Background(), an, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Fatalf("workers=%d: %+v != serial %+v", workers, got, want)
		}
	}
	if got := s.EvaluateParallel(an, 4); got != want {
		t.Fatalf("EvaluateParallel: %+v != serial %+v", got, want)
	}
}
