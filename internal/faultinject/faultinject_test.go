package faultinject

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if err := p.Fire(context.Background(), EvalPanic); err != nil {
		t.Fatalf("nil plan fired: %v", err)
	}
	if h, f := p.Counts(EvalPanic); h != 0 || f != 0 {
		t.Fatalf("nil plan counts = %d/%d", h, f)
	}
	ctx := context.Background()
	if With(ctx, nil) != ctx {
		t.Fatal("With(nil) rewrapped the context")
	}
	if From(ctx) != nil {
		t.Fatal("From on a bare context is not nil")
	}
}

func TestAfterTimesTriggers(t *testing.T) {
	p := New(1, Rule{Point: CheckpointWrite, After: 3, Times: 2})
	var fails []int
	for i := 1; i <= 6; i++ {
		if err := p.Fire(context.Background(), CheckpointWrite); err != nil {
			var f *Fault
			if !errors.As(err, &f) || f.Point != CheckpointWrite {
				t.Fatalf("hit %d: unexpected error %v", i, err)
			}
			fails = append(fails, i)
		}
	}
	if len(fails) != 2 || fails[0] != 3 || fails[1] != 4 {
		t.Fatalf("fired on hits %v, want [3 4]", fails)
	}
	if h, f := p.Counts(CheckpointWrite); h != 6 || f != 2 {
		t.Fatalf("counts = %d/%d, want 6/2", h, f)
	}
	// An unarmed point never fires, but an armed one also never fires for
	// a different point's hits.
	if err := p.Fire(context.Background(), SinkWrite); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	p := New(1, Rule{Point: EvalPanic, Action: Panic})
	defer func() {
		r := recover()
		f, ok := r.(*Fault)
		if !ok || f.Point != EvalPanic || f.Hit != 1 {
			t.Fatalf("recovered %v, want *Fault{eval.panic, 1}", r)
		}
	}()
	p.Fire(context.Background(), EvalPanic)
	t.Fatal("did not panic")
}

func TestStallHonoursContext(t *testing.T) {
	p := New(1, Rule{Point: EvalStall, Action: Stall}) // unbounded stall
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Fire(ctx, EvalStall) }()
	select {
	case err := <-done:
		t.Fatalf("stall returned before cancel: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("stall returned %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("stall did not unblock on cancel")
	}
}

func TestBoundedStallCompletes(t *testing.T) {
	p := New(1, Rule{Point: EvalStall, Action: Stall, Stall: time.Millisecond})
	start := time.Now()
	if err := p.Fire(context.Background(), EvalStall); err != nil {
		t.Fatalf("bounded stall errored: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("bounded stall returned too early")
	}
}

// TestProbDeterministic: a probabilistic trigger fires on the identical
// hit numbers for the identical seed — the property chaos-suite
// determinism rests on.
func TestProbDeterministic(t *testing.T) {
	fired := func(seed uint64) []int {
		p := New(seed, Rule{Point: SinkWrite, Prob: 0.3})
		var hits []int
		for i := 1; i <= 200; i++ {
			if p.Fire(context.Background(), SinkWrite) != nil {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := fired(42), fired(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("prob=0.3 fired %d/200 times", len(a))
	}
	if c := fired(43); fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced the identical schedule")
	}
}

func TestFireConcurrencySafe(t *testing.T) {
	p := New(1, Rule{Point: SinkWrite, After: 50, Times: 10})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if p.Fire(context.Background(), SinkWrite) != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if h, f := p.Counts(SinkWrite); h != 200 || f != 10 || fired != 10 {
		t.Fatalf("hits=%d fired=%d observed=%d, want 200/10/10", h, f, fired)
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("seed=7; eval.panic:after=3,times=1; sink.write:prob=0.5; eval.stall:stall=5ms")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // hits 1-2 pass
		if err := p.Fire(context.Background(), EvalPanic); err != nil {
			t.Fatalf("hit %d fired: %v", i+1, err)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("hit 3 did not panic")
			}
		}()
		p.Fire(context.Background(), EvalPanic)
	}()
	// times=1: the fourth hit passes again.
	if err := p.Fire(context.Background(), EvalPanic); err != nil {
		t.Fatalf("hit 4 fired after times=1 exhausted: %v", err)
	}

	for _, bad := range []string{
		"",
		"nope.unknown:after=1",
		"eval.panic:after=x",
		"eval.panic:prob=1.5",
		"eval.panic:mode=explode",
		"eval.panic:after",
		"seed=abc;eval.panic",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestParseModeOverride(t *testing.T) {
	p, err := Parse("checkpoint.write:mode=panic")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mode=panic did not panic")
		}
	}()
	p.Fire(context.Background(), CheckpointWrite)
}

func TestContextThreading(t *testing.T) {
	p := New(1, Rule{Point: EvalPanic})
	ctx := With(context.Background(), p)
	if From(ctx) != p {
		t.Fatal("From did not recover the installed plan")
	}
	if From(nil) != nil {
		t.Fatal("From(nil ctx) not nil")
	}
}

func TestWriter(t *testing.T) {
	var buf bytes.Buffer
	p := New(1, Rule{Point: SinkWrite, After: 2, Times: 1})
	w := Writer(&buf, p, SinkWrite)
	if _, err := w.Write([]byte("one\n")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if n, err := w.Write([]byte("two\n")); err == nil || n != 0 {
		t.Fatalf("write 2 = %d, %v; want injected fault", n, err)
	} else if !Is(err) {
		t.Fatalf("write 2 error %v is not a *Fault", err)
	}
	if _, err := w.Write([]byte("three\n")); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	if got := buf.String(); got != "one\nthree\n" {
		t.Fatalf("buffer = %q", got)
	}
	// Nil plan: Writer degrades to the bare writer.
	if Writer(&buf, nil, SinkWrite) != &buf {
		t.Fatal("Writer(nil plan) wrapped anyway")
	}
}

func TestStringRendersRules(t *testing.T) {
	p, err := Parse("eval.panic:after=2;sink.write:prob=0.25")
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if !strings.Contains(s, "eval.panic:mode=panic,after=2") || !strings.Contains(s, "prob=0.25") {
		t.Fatalf("String() = %q", s)
	}
	var nilPlan *Plan
	if nilPlan.String() == "" {
		t.Fatal("nil plan String empty")
	}
}
