// Package faultinject is a deterministic, seeded fault-injection layer
// for rehearsing failures in the search pipeline. Production code calls
// Fire at named fault points; with no plan installed (the nil default)
// every call is a nil check and the hot paths pay nothing. Tests and the
// CLIs' -fault-spec flag install a Plan that scripts which points fire,
// when (after the Nth hit, at most K times, or with a seeded per-hit
// probability), and how (an injected error, a panic, or a stall).
//
// A Plan is deterministic: trigger decisions depend only on the per-point
// hit counter and the plan's own seeded PCG stream, so a fixed seed and
// spec reproduce the identical fault schedule on every run — the property
// the chaos suite's bit-identical-outcome assertions rely on.
//
// Plans thread through the search pipeline on the context (With/From);
// paths without a context — checkpoint persistence, telemetry sink
// writes — take the plan explicitly or through a Writer wrapper.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The named fault points the search pipeline exposes.
const (
	// EvalPanic panics inside an objective evaluation (recovered by the
	// parallel evaluator into an error, then handled per FailurePolicy).
	EvalPanic = "eval.panic"
	// EvalStall stalls an objective evaluation: for the configured
	// duration, or until the context is cancelled when no duration is
	// given — the scenario the per-generation watchdog guards against.
	EvalStall = "eval.stall"
	// CheckpointWrite fails a checkpoint persistence attempt.
	CheckpointWrite = "checkpoint.write"
	// SinkWrite fails a telemetry sink write (transient I/O error).
	SinkWrite = "sink.write"
	// ServerAccept sheds a tiling-service request at admission as if the
	// queue were full, so chaos tests drive load shedding deterministically
	// without generating real overload.
	ServerAccept = "server.accept"
	// CacheGet fails a result-cache lookup, forcing the request down the
	// full-search miss path (the response must still be byte-identical —
	// the determinism property the chaos suite asserts).
	CacheGet = "cache.get"
	// JournalWrite fails one durable request-journal append, so chaos runs
	// prove the service degrades (sheds the request, or serves it without
	// a durability guarantee) instead of crashing or silently losing the
	// record.
	JournalWrite = "journal.write"
	// JournalReplay corrupts one journal record during startup replay: the
	// record is quarantined and counted (journal_skipped) exactly like a
	// torn or bit-flipped record found on disk, and the boot continues.
	JournalReplay = "journal.replay"
)

// knownPoints guards -fault-spec typos: Parse rejects unknown names.
var knownPoints = map[string]Action{
	EvalPanic:       Panic,
	EvalStall:       Stall,
	CheckpointWrite: Error,
	SinkWrite:       Error,
	ServerAccept:    Error,
	CacheGet:        Error,
	JournalWrite:    Error,
	JournalReplay:   Error,
}

// Action is what a fault point does when it fires.
type Action int

const (
	// Error returns a *Fault error from Fire.
	Error Action = iota
	// Panic panics with a *Fault value.
	Panic
	// Stall blocks — for Rule.Stall, or until ctx is done when zero —
	// then returns the context's error (nil if the sleep completed).
	Stall
)

func (a Action) String() string {
	switch a {
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	default:
		return "error"
	}
}

// Rule scripts one fault point.
type Rule struct {
	// Point names the fault point the rule arms.
	Point string
	// Action is what happens on a fire (Error, Panic, Stall).
	Action Action
	// After is the first hit eligible to fire, 1-based; 0 means the
	// first hit. Hits before it pass through untouched.
	After int
	// Times caps the number of fires (0 = unlimited).
	Times int
	// Prob, when in (0,1], gates each eligible hit on a Bernoulli draw
	// from the plan's seeded stream; 0 fires every eligible hit.
	Prob float64
	// Stall is the stall duration for Action Stall; 0 blocks until the
	// context is cancelled.
	Stall time.Duration
}

// Fault is the error (and panic value) an armed point produces; match it
// with errors.As or Is to distinguish injected faults from real ones.
type Fault struct {
	// Point is the fault point that fired.
	Point string
	// Hit is the 1-based hit count at which it fired.
	Hit int
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: %s fired (hit %d)", f.Point, f.Hit)
}

// Is reports whether err (anywhere in its chain) is an injected fault.
func Is(err error) bool {
	var f *Fault
	return errors.As(err, &f)
}

// pointState tracks one armed point's rule and counters.
type pointState struct {
	rule  Rule
	hits  int
	fired int
}

// Plan is a scripted set of armed fault points. A nil *Plan is inert:
// every method is a no-op, so production paths carry nil and pay only the
// nil check. Safe for concurrent use.
type Plan struct {
	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*pointState
}

// New builds a plan from rules, with seed driving the probabilistic
// triggers. Later rules for the same point replace earlier ones.
func New(seed uint64, rules ...Rule) *Plan {
	p := &Plan{
		rng:    rand.New(rand.NewPCG(seed, seed^0x6a09e667f3bcc908)),
		points: make(map[string]*pointState, len(rules)),
	}
	for _, r := range rules {
		p.points[r.Point] = &pointState{rule: r}
	}
	return p
}

// Fire records a hit on point and carries out its rule's action when the
// triggers line up: a *Fault error (Error action), a panic with a *Fault
// (Panic action), or a stall honouring ctx (Stall action). Unarmed
// points, ineligible hits, and a nil plan return nil. A nil ctx is
// treated as context.Background().
func (p *Plan) Fire(ctx context.Context, point string) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	st, ok := p.points[point]
	if !ok {
		p.mu.Unlock()
		return nil
	}
	st.hits++
	hit := st.hits
	r := st.rule
	after := r.After
	if after < 1 {
		after = 1
	}
	fire := hit >= after && (r.Times == 0 || st.fired < r.Times)
	if fire && r.Prob > 0 {
		fire = p.rng.Float64() < r.Prob
	}
	if fire {
		st.fired++
	}
	p.mu.Unlock()
	if !fire {
		return nil
	}
	f := &Fault{Point: point, Hit: hit}
	switch r.Action {
	case Panic:
		panic(f)
	case Stall:
		return stall(ctx, r.Stall)
	default:
		return f
	}
}

// stall blocks for d (or until ctx is done; d <= 0 waits on ctx alone)
// and returns the context's error, nil when the full sleep completed.
func stall(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if d <= 0 {
		<-ctx.Done()
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Counts returns how often point was hit and how often it fired.
func (p *Plan) Counts(point string) (hits, fired int) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.points[point]; ok {
		return st.hits, st.fired
	}
	return 0, 0
}

// String renders the armed points and their rules, sorted by point name.
func (p *Plan) String() string {
	if p == nil {
		return "faultinject: no plan"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.points))
	for n := range p.points {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(';')
		}
		r := p.points[n].rule
		fmt.Fprintf(&b, "%s:mode=%s,after=%d,times=%d", n, r.Action, r.After, r.Times)
		if r.Prob > 0 {
			fmt.Fprintf(&b, ",prob=%g", r.Prob)
		}
		if r.Action == Stall && r.Stall > 0 {
			fmt.Fprintf(&b, ",stall=%s", r.Stall)
		}
	}
	return b.String()
}

// Parse builds a plan from the -fault-spec syntax:
//
//	[seed=N;]point[:k=v[,k=v...]][;point...]
//
// Points are the named constants above; keys are after=N, times=K,
// prob=P, stall=DURATION and mode=error|panic|stall. Each point defaults
// to its natural action (eval.panic panics, eval.stall stalls, the write
// points error). Example:
//
//	seed=7;eval.panic:after=3,times=1;sink.write:prob=0.2
func Parse(spec string) (*Plan, error) {
	seed := uint64(1)
	var rules []Rule
	for _, seg := range strings.Split(spec, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if v, ok := strings.CutPrefix(seg, "seed="); ok {
			s, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q", v)
			}
			seed = s
			continue
		}
		point, args, _ := strings.Cut(seg, ":")
		point = strings.TrimSpace(point)
		defAction, ok := knownPoints[point]
		if !ok {
			return nil, fmt.Errorf("faultinject: unknown fault point %q", point)
		}
		r := Rule{Point: point, Action: defAction}
		if strings.TrimSpace(args) != "" {
			for _, kv := range strings.Split(args, ",") {
				k, v, found := strings.Cut(kv, "=")
				k, v = strings.TrimSpace(k), strings.TrimSpace(v)
				if !found {
					return nil, fmt.Errorf("faultinject: %s: bad trigger %q (want key=value)", point, kv)
				}
				var err error
				switch k {
				case "after":
					r.After, err = strconv.Atoi(v)
				case "times":
					r.Times, err = strconv.Atoi(v)
				case "prob":
					r.Prob, err = strconv.ParseFloat(v, 64)
					if err == nil && (r.Prob < 0 || r.Prob > 1) {
						err = fmt.Errorf("out of [0,1]")
					}
				case "stall":
					r.Stall, err = time.ParseDuration(v)
				case "mode":
					switch v {
					case "error":
						r.Action = Error
					case "panic":
						r.Action = Panic
					case "stall":
						r.Action = Stall
					default:
						err = fmt.Errorf("unknown mode")
					}
				default:
					err = fmt.Errorf("unknown key")
				}
				if err != nil {
					return nil, fmt.Errorf("faultinject: %s: bad trigger %q: %v", point, kv, err)
				}
			}
		}
		if r.After < 0 || r.Times < 0 {
			return nil, fmt.Errorf("faultinject: %s: negative trigger", point)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultinject: spec %q arms no fault points", spec)
	}
	return New(seed, rules...), nil
}

// ctxKey carries a plan on a context.
type ctxKey struct{}

// With returns a context carrying the plan; a nil plan returns ctx
// unchanged, preserving the inert default.
func With(ctx context.Context, p *Plan) context.Context {
	if p == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, ctxKey{}, p)
}

// From extracts the plan a context carries, nil when none is installed.
// The nil result composes with the nil-plan no-op methods, so call sites
// need no guard of their own beyond avoiding work building arguments.
func From(ctx context.Context) *Plan {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(ctxKey{}).(*Plan)
	return p
}

// Writer wraps w so every Write first consults the plan at the given
// point: a fired Error hit fails the write with the *Fault (no bytes
// written), simulating a transient sink I/O error. A nil plan degrades to
// the bare writer.
func Writer(w io.Writer, p *Plan, point string) io.Writer {
	if p == nil {
		return w
	}
	return &faultyWriter{w: w, plan: p, point: point}
}

type faultyWriter struct {
	w     io.Writer
	plan  *Plan
	point string
}

// Write implements io.Writer.
func (fw *faultyWriter) Write(b []byte) (int, error) {
	if err := fw.plan.Fire(context.Background(), fw.point); err != nil {
		return 0, err
	}
	return fw.w.Write(b)
}
