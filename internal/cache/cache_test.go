package cache

import "testing"

func TestValidate(t *testing.T) {
	if err := DM8K.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DM32K.Validate(); err != nil {
		t.Fatal(err)
	}
	ok := Config{Size: 8192, LineSize: 32, Assoc: 4}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Size: 0, LineSize: 32, Assoc: 1},
		{Size: 8192, LineSize: 0, Assoc: 1},
		{Size: 8192, LineSize: 32, Assoc: 0},
		{Size: 8000, LineSize: 32, Assoc: 1},   // size not multiple of line
		{Size: 8192, LineSize: 32, Assoc: 512}, // assoc > lines
		{Size: 8192, LineSize: 32, Assoc: 3},   // lines not divisible
		{Size: 96, LineSize: 24, Assoc: 1},     // line not power of two
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): expected error", i, c)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := DM8K
	if c.NumLines() != 256 || c.NumSets() != 256 {
		t.Fatalf("lines=%d sets=%d", c.NumLines(), c.NumSets())
	}
	w4 := Config{Size: 8192, LineSize: 32, Assoc: 4}
	if w4.NumSets() != 64 {
		t.Fatalf("4-way sets = %d", w4.NumSets())
	}
}

func TestMapping(t *testing.T) {
	c := DM8K
	if c.LineOf(0) != 0 || c.LineOf(31) != 0 || c.LineOf(32) != 1 {
		t.Fatal("LineOf wrong")
	}
	if c.LineStart(100) != 96 {
		t.Fatalf("LineStart(100) = %d", c.LineStart(100))
	}
	// Addresses one cache-size apart map to the same set.
	if c.SetOf(1234) != c.SetOf(1234+c.Size) {
		t.Fatal("aliasing addresses map to different sets")
	}
	// Consecutive lines map to consecutive sets (mod sets).
	if c.SetOf(0) != 0 || c.SetOf(32) != 1 || c.SetOfLine(257) != 1 {
		t.Fatal("set mapping wrong")
	}
}

func TestElemsPerLine(t *testing.T) {
	if DM8K.ElemsPerLine(8) != 4 {
		t.Fatalf("ElemsPerLine(8) = %d", DM8K.ElemsPerLine(8))
	}
	if DM8K.ElemsPerLine(64) != 1 { // element larger than line
		t.Fatalf("ElemsPerLine(64) = %d", DM8K.ElemsPerLine(64))
	}
}

func TestString(t *testing.T) {
	if s := DM8K.String(); s != "8KB 1-way 32B lines" {
		t.Fatalf("String = %q", s)
	}
	if s := (Config{Size: 1 << 20, LineSize: 64, Assoc: 8}).String(); s != "1MB 8-way 64B lines" {
		t.Fatalf("String = %q", s)
	}
}
