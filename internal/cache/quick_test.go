package cache

import (
	"testing"
	"testing/quick"
)

// Property: addresses one cache size apart always share a set; addresses
// within one line share a line and hence a set.
func TestQuickAliasing(t *testing.T) {
	cfg := DM8K
	f := func(addr uint32, k uint8) bool {
		a := int64(addr)
		if cfg.SetOf(a) != cfg.SetOf(a+int64(k)*cfg.Size) {
			return false
		}
		off := int64(k) % cfg.LineSize
		return cfg.LineOf(cfg.LineStart(a)+off) == cfg.LineOf(a) || off >= cfg.LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LineStart is idempotent, line-aligned, and never exceeds addr.
func TestQuickLineStart(t *testing.T) {
	cfg := Config{Size: 4096, LineSize: 64, Assoc: 2}
	f := func(addr uint32) bool {
		a := int64(addr)
		ls := cfg.LineStart(a)
		return ls%cfg.LineSize == 0 && ls <= a && a-ls < cfg.LineSize &&
			cfg.LineStart(ls) == ls
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: set indices stay within [0, NumSets).
func TestQuickSetRange(t *testing.T) {
	for _, cfg := range []Config{DM8K, DM32K, {Size: 2048, LineSize: 32, Assoc: 4}} {
		cfg := cfg
		f := func(addr uint32) bool {
			s := cfg.SetOf(int64(addr))
			return s >= 0 && s < cfg.NumSets()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatal(err)
		}
	}
}
