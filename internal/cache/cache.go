// Package cache models the cache geometry used by both the analytical
// locality analysis (Cache Miss Equations) and the reference trace
// simulator: size, line size, associativity, and the address→(line,set)
// mapping of a physically indexed cache.
package cache

import "fmt"

// Config describes one cache level. All sizes are in bytes. Assoc is the
// number of ways; Assoc == 1 is a direct-mapped cache and
// Assoc == Size/LineSize is fully associative.
type Config struct {
	Size     int64
	LineSize int64
	Assoc    int
}

// Common configurations used throughout the paper's evaluation.
var (
	// DM8K is the paper's primary configuration: 8KB direct-mapped,
	// 32-byte lines (Tables 2–4, Figure 8).
	DM8K = Config{Size: 8 * 1024, LineSize: 32, Assoc: 1}
	// DM32K is the secondary configuration (Figure 9, Table 3 bottom).
	DM32K = Config{Size: 32 * 1024, LineSize: 32, Assoc: 1}
)

// Validate checks geometric invariants: power-of-two line count per set
// arrangement and divisibility.
func (c Config) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: nonpositive geometry %+v", c)
	}
	if c.Size%c.LineSize != 0 {
		return fmt.Errorf("cache: size %d not a multiple of line size %d", c.Size, c.LineSize)
	}
	lines := c.Size / c.LineSize
	if int64(c.Assoc) > lines {
		return fmt.Errorf("cache: associativity %d exceeds %d lines", c.Assoc, lines)
	}
	if lines%int64(c.Assoc) != 0 {
		return fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineSize)
	}
	if s := c.NumSets(); s&(s-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", s)
	}
	return nil
}

// NumLines returns the total number of cache lines.
func (c Config) NumLines() int64 { return c.Size / c.LineSize }

// NumSets returns the number of cache sets.
func (c Config) NumSets() int64 { return c.NumLines() / int64(c.Assoc) }

// LineOf returns the memory-line number containing addr.
func (c Config) LineOf(addr int64) int64 { return addr / c.LineSize }

// LineStart returns the first byte address of the memory line containing addr.
func (c Config) LineStart(addr int64) int64 { return addr &^ (c.LineSize - 1) }

// SetOf returns the cache set index the address maps to.
func (c Config) SetOf(addr int64) int64 { return c.LineOf(addr) % c.NumSets() }

// SetOfLine returns the cache set index for a memory-line number.
func (c Config) SetOfLine(line int64) int64 { return line % c.NumSets() }

// ElemsPerLine returns how many elements of the given size fit in one line.
func (c Config) ElemsPerLine(elem int64) int64 {
	n := c.LineSize / elem
	if n < 1 {
		n = 1
	}
	return n
}

// String renders the configuration like "8KB 1-way 32B lines".
func (c Config) String() string {
	return fmt.Sprintf("%s %d-way %dB lines", sizeStr(c.Size), c.Assoc, c.LineSize)
}

func sizeStr(b int64) string {
	switch {
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
