package kernels

import "repro/internal/ir"

func init() {
	register(Kernel{
		Name:        "T2D",
		Program:     "-",
		Description: "2D matrix transposition",
		Depth:       2,
		Sizes:       []int64{100, 500, 2000},
		DefaultSize: 500,
		Build: func(n int64) *ir.Nest {
			a := &ir.Array{Name: "a", Dims: []int64{n, n}, Elem: 8}
			b := &ir.Array{Name: "b", Dims: []int64{n, n}, Elem: 8}
			ir.LayoutArrays(0, lineAlign, a, b)
			return &ir.Nest{
				Name:  "T2D",
				Loops: []ir.Loop{rect("i", 1, n), rect("j", 1, n)},
				Refs: []ir.Ref{
					// a(j,i) = b(i,j): b streams along its slow dimension
					// (j inner, stride n), a streams along its fast one.
					{Array: b, Subs: subs(v(0), v(1))},
					{Array: a, Subs: subs(v(1), v(0)), Write: true},
				},
			}
		},
	})

	register(Kernel{
		Name:        "T3DJIK",
		Program:     "-",
		Description: "3D matrix transposition a(k,j,i) = b(j,i,k)",
		Depth:       3,
		Sizes:       []int64{20, 100, 200},
		DefaultSize: 100,
		Build: func(n int64) *ir.Nest {
			a := &ir.Array{Name: "a", Dims: []int64{n, n, n}, Elem: 8}
			b := &ir.Array{Name: "b", Dims: []int64{n, n, n}, Elem: 8}
			ir.LayoutArrays(0, lineAlign, a, b)
			// Loop order j, i, k (the kernel's name gives the order).
			return &ir.Nest{
				Name:  "T3DJIK",
				Loops: []ir.Loop{rect("j", 1, n), rect("i", 1, n), rect("k", 1, n)},
				Refs: []ir.Ref{
					// vars: v0=j v1=i v2=k
					{Array: b, Subs: subs(v(0), v(1), v(2))},              // b(j,i,k)
					{Array: a, Subs: subs(v(2), v(0), v(1)), Write: true}, // a(k,j,i)
				},
			}
		},
	})

	register(Kernel{
		Name:        "T3DIKJ",
		Program:     "-",
		Description: "3D matrix transposition a(k,j,i) = b(i,k,j)",
		Depth:       3,
		Sizes:       []int64{20, 100, 200},
		DefaultSize: 100,
		Build: func(n int64) *ir.Nest {
			a := &ir.Array{Name: "a", Dims: []int64{n, n, n}, Elem: 8}
			b := &ir.Array{Name: "b", Dims: []int64{n, n, n}, Elem: 8}
			ir.LayoutArrays(0, lineAlign, a, b)
			// Loop order i, k, j.
			return &ir.Nest{
				Name:  "T3DIKJ",
				Loops: []ir.Loop{rect("i", 1, n), rect("k", 1, n), rect("j", 1, n)},
				Refs: []ir.Ref{
					// vars: v0=i v1=k v2=j
					{Array: b, Subs: subs(v(0), v(1), v(2))},              // b(i,k,j)
					{Array: a, Subs: subs(v(1), v(2), v(0)), Write: true}, // a(k,j,i)
				},
			}
		},
	})
}
