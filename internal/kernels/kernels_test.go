package kernels

import (
	"math/rand/v2"
	"testing"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/cme"
	"repro/internal/iterspace"
	"repro/internal/sampling"
	"repro/internal/tiling"
	"repro/internal/trace"
)

// TestCatalogMatchesTable1 checks that every kernel of the paper's Table 1
// is present with the right nesting depth and program attribution.
func TestCatalogMatchesTable1(t *testing.T) {
	want := map[string]struct {
		program string
		depth   int
	}{
		"T2D":      {"-", 2},
		"T3DJIK":   {"-", 3},
		"T3DIKJ":   {"-", 3},
		"JACOBI3D": {"-", 3},
		"MATMUL":   {"-", 3},
		"MM":       {"LIVERMORE", 3},
		"ADI":      {"LIVERMORE", 2},
		"ADD":      {"NAS", 4},
		"BTRIX":    {"NAS", 3},
		"VPENTA1":  {"NAS", 2},
		"VPENTA2":  {"NAS", 2},
		"DPSSB":    {"BIHAR", 3},
		"DPSSF":    {"BIHAR", 3},
		"DRADBG1":  {"BIHAR", 3},
		"DRADBG2":  {"BIHAR", 3},
		"DRADFG1":  {"BIHAR", 3},
		"DRADFG2":  {"BIHAR", 3},
	}
	if len(All()) != len(want) {
		t.Fatalf("catalog has %d kernels, Table 1 lists %d", len(All()), len(want))
	}
	for name, w := range want {
		k, ok := Get(name)
		if !ok {
			t.Errorf("missing kernel %s", name)
			continue
		}
		if k.Program != w.program {
			t.Errorf("%s: program %q, want %q", name, k.Program, w.program)
		}
		if k.Depth != w.depth {
			t.Errorf("%s: depth %d, want %d", name, k.Depth, w.depth)
		}
		nest, err := k.Instance(0)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if nest.Depth() != w.depth {
			t.Errorf("%s: built nest depth %d, declared %d", name, nest.Depth(), w.depth)
		}
	}
}

// TestFigureSizes: the multi-size kernels carry the sizes of Figures 8–9.
func TestFigureSizes(t *testing.T) {
	want := map[string][]int64{
		"T2D":      {100, 500, 2000},
		"T3DJIK":   {20, 100, 200},
		"T3DIKJ":   {20, 100, 200},
		"JACOBI3D": {20, 100, 200},
		"MATMUL":   {100, 500, 2000},
		"MM":       {100, 500, 2000},
		"ADI":      {100, 500, 2000},
	}
	for name, sizes := range want {
		k, _ := Get(name)
		if len(k.Sizes) != len(sizes) {
			t.Fatalf("%s: sizes %v, want %v", name, k.Sizes, sizes)
		}
		for i := range sizes {
			if k.Sizes[i] != sizes[i] {
				t.Fatalf("%s: sizes %v, want %v", name, k.Sizes, sizes)
			}
		}
	}
}

// TestAllKernelsAnalyzable: every kernel builds a nest the CME analyzer
// accepts (rectangular, single-variable subscripts) and produces a finite
// sampled estimate under both evaluated caches.
func TestAllKernelsAnalyzable(t *testing.T) {
	for _, k := range All() {
		nest, err := k.Instance(0)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		box, err := tiling.Box(nest)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		for _, cfg := range []cache.Config{cache.DM8K, cache.DM32K} {
			an, err := cme.NewAnalyzer(nest, box, cfg)
			if err != nil {
				t.Fatalf("%s/%v: %v", k.Name, cfg, err)
			}
			est := sampling.EstimateMissRatio(an, 64, 0.9, rand.New(rand.NewPCG(1, 2)))
			if est.MissRatio < 0 || est.MissRatio > 1 {
				t.Fatalf("%s/%v: ratio %v", k.Name, cfg, est.MissRatio)
			}
			if an.CapHits() != 0 {
				t.Fatalf("%s/%v: walk cap tripped", k.Name, cfg)
			}
		}
	}
}

// TestKernelsHaveHighReplacementRatios: the paper chose these kernels
// "because they exhibit a high number of capacity misses" — every kernel
// must show a substantial replacement ratio untiled at 8KB.
func TestKernelsHaveHighReplacementRatios(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 17))
	for _, k := range All() {
		nest, err := k.Instance(0)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		box, _ := tiling.Box(nest)
		an, err := cme.NewAnalyzer(nest, box, cache.DM8K)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		est := sampling.EstimateMissRatio(an, sampling.PaperSampleSize, 0.9, rng)
		// JACOBI3D sits lowest in the paper too (7.2% replacement in
		// Table 2); 5% still separates these kernels from streaming ones.
		if est.ReplacementRatio < 0.05 {
			t.Errorf("%s: untiled replacement ratio only %.1f%% — not a capacity/conflict-bound kernel",
				k.Name, 100*est.ReplacementRatio)
		}
	}
}

// TestConflictKernelsAreAligned: the Table-3 kernels must have their
// arrays at 8KB-aliasing base addresses (that is what makes them
// padding-bound).
func TestConflictKernelsAreAligned(t *testing.T) {
	for _, k := range All() {
		if !k.ConflictBound {
			continue
		}
		nest, err := k.Instance(0)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		arrays := nest.Arrays()
		for _, a := range arrays[1:] {
			if (a.Base-arrays[0].Base)%(8*1024) != 0 {
				t.Errorf("%s: arrays %s and %s not cache-aligned", k.Name, arrays[0].Name, a.Name)
			}
		}
	}
	// Exactly the Table-3 set is marked conflict-bound.
	wantConflict := map[string]bool{"ADD": true, "BTRIX": true, "VPENTA1": true, "VPENTA2": true}
	for _, k := range All() {
		if wantConflict[k.Name] != k.ConflictBound {
			t.Errorf("%s: ConflictBound = %v", k.Name, k.ConflictBound)
		}
	}
}

func TestInstanceErrors(t *testing.T) {
	k, _ := Get("MM")
	if _, err := k.Instance(2); err == nil {
		t.Fatal("tiny size accepted")
	}
	if _, ok := Get("NOPE"); ok {
		t.Fatal("unknown kernel found")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

// TestAllKernelsLockstepTinySizes: for every catalog kernel at a tiny
// problem size, the CME point solver agrees with the trace-driven
// simulator on every single access, untiled and under one tiling.
func TestAllKernelsLockstepTinySizes(t *testing.T) {
	cfg := cache.Config{Size: 512, LineSize: 32, Assoc: 1}
	rng := rand.New(rand.NewPCG(13, 29))
	for _, k := range All() {
		size := int64(6)
		if k.Name == "ADD" {
			size = 4 // 4-deep: keep the trace small
		}
		nest, err := k.Instance(size)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		box, err := tiling.Box(nest)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		spaces := []iterspace.Space{box}
		tile := make([]int64, nest.Depth())
		for d := range tile {
			tile[d] = 1 + rng.Int64N(box.Extent(d))
		}
		spaces = append(spaces, iterspace.NewTiled(box, tile))
		for _, sp := range spaces {
			an, err := cme.NewAnalyzer(nest, sp, cfg)
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			sim := cachesim.New(cfg)
			n := 0
			trace.GenerateSpace(sp, nest, func(p []int64, a trace.Access) bool {
				want := sim.Access(a.Addr)
				got := an.Classify(p, a.RefIdx)
				if got != want {
					t.Fatalf("%s access %d (ref %d): analyzer %v != simulator %v",
						k.Name, n, a.RefIdx, got, want)
				}
				n++
				return true
			})
		}
	}
}
