package kernels

import "repro/internal/ir"

func init() {
	register(Kernel{
		Name:        "MM",
		Program:     "LIVERMORE",
		Description: "Matrix multiplication (Figure 1)",
		Depth:       3,
		Sizes:       []int64{100, 500, 2000},
		DefaultSize: 500,
		Build: func(n int64) *ir.Nest {
			a := &ir.Array{Name: "a", Dims: []int64{n, n}, Elem: 8}
			b := &ir.Array{Name: "b", Dims: []int64{n, n}, Elem: 8}
			c := &ir.Array{Name: "c", Dims: []int64{n, n}, Elem: 8}
			ir.LayoutArrays(0, lineAlign, a, b, c)
			return &ir.Nest{
				Name:  "MM",
				Loops: []ir.Loop{rect("i", 1, n), rect("j", 1, n), rect("k", 1, n)},
				Refs: []ir.Ref{
					// a(i,j) = a(i,j) + b(i,k)*c(k,j)
					{Array: a, Subs: subs(v(0), v(1))},
					{Array: b, Subs: subs(v(0), v(2))},
					{Array: c, Subs: subs(v(2), v(1))},
					{Array: a, Subs: subs(v(0), v(1)), Write: true},
				},
			}
		},
	})

	register(Kernel{
		Name:    "MATMUL",
		Program: "-",
		Description: "Matrix by vector multiplication, repeated n times " +
			"(iterative-solver style; the repetition loop restores the " +
			"paper's 3-deep nest)",
		Depth:       3,
		Sizes:       []int64{100, 500, 2000},
		DefaultSize: 500,
		Build: func(n int64) *ir.Nest {
			a := &ir.Array{Name: "a", Dims: []int64{n, n}, Elem: 8}
			x := &ir.Array{Name: "x", Dims: []int64{n}, Elem: 8}
			y := &ir.Array{Name: "y", Dims: []int64{n}, Elem: 8}
			ir.LayoutArrays(0, lineAlign, a, x, y)
			return &ir.Nest{
				Name:  "MATMUL",
				Loops: []ir.Loop{rect("r", 1, n), rect("j", 1, n), rect("i", 1, n)},
				Refs: []ir.Ref{
					// y(i) = y(i) + a(i,j)*x(j), repeated r times; the
					// j-outer order streams whole columns of a between
					// successive uses of x(j) and y(i).
					{Array: y, Subs: subs(v(2))},
					{Array: a, Subs: subs(v(2), v(1))},
					{Array: x, Subs: subs(v(1))},
					{Array: y, Subs: subs(v(2)), Write: true},
				},
			}
		},
	})

	register(Kernel{
		Name:        "JACOBI3D",
		Program:     "-",
		Description: "Partial differential equations solver (3D 7-point Jacobi sweep)",
		Depth:       3,
		Sizes:       []int64{20, 100, 200},
		DefaultSize: 100,
		Build: func(n int64) *ir.Nest {
			m := n + 2
			a := &ir.Array{Name: "a", Dims: []int64{m, m, m}, Elem: 8}
			b := &ir.Array{Name: "b", Dims: []int64{m, m, m}, Elem: 8}
			ir.LayoutArrays(0, lineAlign, a, b)
			return &ir.Nest{
				Name:  "JACOBI3D",
				Loops: []ir.Loop{rect("k", 2, n+1), rect("j", 2, n+1), rect("i", 2, n+1)},
				Refs: []ir.Ref{
					// vars: v0=k v1=j v2=i; arrays indexed (i,j,k) so the
					// innermost loop walks the fastest dimension.
					{Array: b, Subs: subs(vp(2, -1), v(1), v(0))},
					{Array: b, Subs: subs(vp(2, 1), v(1), v(0))},
					{Array: b, Subs: subs(v(2), vp(1, -1), v(0))},
					{Array: b, Subs: subs(v(2), vp(1, 1), v(0))},
					{Array: b, Subs: subs(v(2), v(1), vp(0, -1))},
					{Array: b, Subs: subs(v(2), v(1), vp(0, 1))},
					{Array: b, Subs: subs(v(2), v(1), v(0))},
					{Array: a, Subs: subs(v(2), v(1), v(0)), Write: true},
				},
			}
		},
	})

	register(Kernel{
		Name:        "ADI",
		Program:     "LIVERMORE",
		Description: "2D ADI integration (row sweep with i-carried recurrence)",
		Depth:       2,
		Sizes:       []int64{100, 500, 2000},
		DefaultSize: 500,
		Build: func(n int64) *ir.Nest {
			x := &ir.Array{Name: "x", Dims: []int64{n, n}, Elem: 8}
			y := &ir.Array{Name: "y", Dims: []int64{n, n}, Elem: 8}
			z := &ir.Array{Name: "z", Dims: []int64{n, n}, Elem: 8}
			ir.LayoutArrays(0, lineAlign, x, y, z)
			// Row sweep: the recurrence runs along the OUTER i loop while
			// the inner j loop walks each row with stride n — every row
			// of every array is revisited one line-element at a time, so
			// the intervening footprint (3n lines) dwarfs the cache.
			return &ir.Nest{
				Name:  "ADI",
				Loops: []ir.Loop{rect("i", 2, n), rect("j", 1, n)},
				Refs: []ir.Ref{
					// x(i,j) = x(i,j) - y(i,j)*x(i-1,j) - z(i,j)
					{Array: x, Subs: subs(v(0), v(1))},
					{Array: y, Subs: subs(v(0), v(1))},
					{Array: x, Subs: subs(vp(0, -1), v(1))},
					{Array: z, Subs: subs(v(0), v(1))},
					{Array: x, Subs: subs(v(0), v(1)), Write: true},
				},
			}
		},
	})
}
