package kernels

import (
	"repro/internal/expr"
	"repro/internal/ir"
)

// The four NAS kernels are the paper's conflict-bound set (Table 3):
// their arrays sit at cache-aligned bases, so references with equal
// subscripts collide in the same cache set on every iteration. Tiling
// cannot change relative alignment; padding can.

func init() {
	register(Kernel{
		Name:          "ADD",
		Program:       "NAS",
		Description:   "Addition of update to a matrix (u += rhs, 5-component)",
		Depth:         4,
		DefaultSize:   32,
		ConflictBound: true,
		Build: func(n int64) *ir.Nest {
			u := &ir.Array{Name: "u", Dims: []int64{5, n, n, n}, Elem: 8}
			rhs := &ir.Array{Name: "rhs", Dims: []int64{5, n, n, n}, Elem: 8}
			ir.LayoutArrays(0, cacheAlign, u, rhs)
			// m (the component index, the fastest array dimension) is the
			// OUTERMOST loop, as in the BT solver's add routine: each
			// memory line is revisited once per m at a distance of the
			// whole spatial volume — capacity misses tiling shortens —
			// while u/rhs alignment adds conflicts only padding removes.
			return &ir.Nest{
				Name: "ADD",
				Loops: []ir.Loop{
					rect("m", 1, 5), rect("k", 1, n), rect("j", 1, n), rect("i", 1, n),
				},
				Refs: []ir.Ref{
					// vars: v0=m v1=k v2=j v3=i; u(m,i,j,k)
					{Array: u, Subs: subs(v(0), v(3), v(2), v(1))},
					{Array: rhs, Subs: subs(v(0), v(3), v(2), v(1))},
					{Array: u, Subs: subs(v(0), v(3), v(2), v(1)), Write: true},
				},
			}
		},
	})

	register(Kernel{
		Name:          "BTRIX",
		Program:       "NAS",
		Description:   "Block tri-diagonal solver, backward block sweep",
		Depth:         3,
		DefaultSize:   24,
		ConflictBound: true,
		Build: func(n int64) *ir.Nest {
			a := &ir.Array{Name: "a", Dims: []int64{n, n, n}, Elem: 8}
			b := &ir.Array{Name: "b", Dims: []int64{n, n, n}, Elem: 8}
			c := &ir.Array{Name: "c", Dims: []int64{n, n, n}, Elem: 8}
			s := &ir.Array{Name: "s", Dims: []int64{n + 1, n, n}, Elem: 8}
			ir.LayoutArrays(0, cacheAlign, a, b, c, s)
			// Backward sweep: the innermost loop walks the fastest array
			// dimension in reverse via the n+1-k subscript. The four
			// aligned arrays evict each other every iteration (pure
			// conflicts); there is no long-distance reuse, so padding
			// alone recovers nearly all misses, as in Table 3.
			return &ir.Nest{
				Name:  "BTRIX",
				Loops: []ir.Loop{rect("j", 1, n), rect("i", 1, n), rect("k", 1, n)},
				Refs: []ir.Ref{
					// vars: v0=j v1=i v2=k
					{Array: a, Subs: subs(v(2), v(1), v(0))},           // a(k,i,j)
					{Array: b, Subs: subs(v(2), v(1), v(0))},           // b(k,i,j)
					{Array: c, Subs: subs(v(2), v(1), v(0))},           // c(k,i,j)
					{Array: s, Subs: subs(revSub(2, n+1), v(1), v(0))}, // s(n+1-k,i,j)
					{Array: s, Subs: subs(revSub(2, n+2), v(1), v(0))}, // s(n+2-k,i,j)
					{Array: s, Subs: subs(revSub(2, n+1), v(1), v(0)), Write: true},
				},
			}
		},
	})

	register(Kernel{
		Name:          "VPENTA1",
		Program:       "NAS",
		Description:   "Invert 3 pentadiagonals simultaneously, loop 1",
		Depth:         2,
		DefaultSize:   512,
		ConflictBound: true,
		Build:         buildVpenta(4),
	})

	register(Kernel{
		Name:          "VPENTA2",
		Program:       "NAS",
		Description:   "Invert 3 pentadiagonals simultaneously, loop 2",
		Depth:         2,
		DefaultSize:   512,
		ConflictBound: true,
		Build:         buildVpenta(7),
	})
}

// buildVpenta constructs the VPENTA sweep with the given number of
// coefficient arrays: x(i,j) = f1(i,j) - f2(i,j)*x(i,j-1) - ... with a
// j-carried recurrence. The aligned coefficient arrays conflict pairwise
// (padding's job); the x(i,j-1)/x(i,j-2) reuse spans a footprint larger
// than the cache (tiling's job) — reproducing VPENTA's Table-3 behaviour
// where only padding+tiling reaches ~0%.
func buildVpenta(coeffs int) func(n int64) *ir.Nest {
	return func(n int64) *ir.Nest {
		arrays := make([]*ir.Array, 0, coeffs+1)
		for c := 0; c < coeffs; c++ {
			arrays = append(arrays, &ir.Array{
				Name: "f" + string(rune('1'+c)), Dims: []int64{n, n}, Elem: 8,
			})
		}
		x := &ir.Array{Name: "x", Dims: []int64{n, n}, Elem: 8}
		arrays = append(arrays, x)
		ir.LayoutArrays(0, cacheAlign, arrays...)
		refs := make([]ir.Ref, 0, coeffs+3)
		for _, f := range arrays[:coeffs] {
			refs = append(refs, ir.Ref{Array: f, Subs: subs(v(1), v(0))}) // f(i,j)
		}
		refs = append(refs,
			ir.Ref{Array: x, Subs: subs(v(1), vp(0, -1))},         // x(i,j-1)
			ir.Ref{Array: x, Subs: subs(v(1), vp(0, -2))},         // x(i,j-2)
			ir.Ref{Array: x, Subs: subs(v(1), v(0)), Write: true}, // x(i,j)
		)
		name := "VPENTA1"
		if coeffs > 4 {
			name = "VPENTA2"
		}
		return &ir.Nest{
			Name:  name,
			Loops: []ir.Loop{rect("j", 3, n), rect("i", 1, n)},
			Refs:  refs,
		}
	}
}

// revSub builds the reversed subscript c - v_i (e.g. n+1-k).
func revSub(i int, c int64) expr.Affine {
	return vp(i, 0).Scale(-1).AddConst(c)
}
