// Package kernels is the benchmark catalog: every loop nest of the paper's
// Table 1, reconstructed as affine IR.
//
// The original Fortran sources (NAS, BIHAR, LIVERMORE) are not available to
// this reproduction, so each kernel is an affine reconstruction chosen to
// match its published description and — more importantly — its miss
// behaviour class:
//
//   - transposition/transform kernels (T2D, T3D*, DPSS*, DRAD*): at least
//     one reference's fastest-varying array dimension is indexed by an
//     outer loop, so cache lines are revisited at distances proportional
//     to inner-space volume — capacity misses that tiling removes;
//   - stencil/sweep kernels (JACOBI3D, ADI, MATMUL, MM): reuse across an
//     outer loop whose intervening footprint exceeds the cache;
//   - conflict kernels (ADD, BTRIX, VPENTA1/2): arrays laid out at
//     cache-size-aligned bases, so same-subscript references collide in
//     the same set every iteration — misses tiling cannot cure but
//     padding can (§4.3 / Table 3).
//
// All arrays are column-major REAL*8 (8-byte elements), matching the
// Fortran layout the CMEs were formulated for.
package kernels

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/ir"
)

// Kernel is one catalog entry.
type Kernel struct {
	// Name is the paper's kernel name (e.g. "MM", "VPENTA1").
	Name string
	// Program is the suite the kernel comes from ("NAS", "BIHAR",
	// "LIVERMORE", or "-" for the standalone kernels).
	Program string
	// Description matches Table 1.
	Description string
	// Depth is the nesting depth from Table 1.
	Depth int
	// Sizes are the problem sizes evaluated in Figures 8–9 (nil for
	// kernels the paper runs at a single fixed size).
	Sizes []int64
	// DefaultSize is used when the caller passes size 0.
	DefaultSize int64
	// ConflictBound marks kernels whose residual misses are conflicts
	// (the Table-3 set: tiling alone is not enough).
	ConflictBound bool
	// Build constructs the loop nest for problem size n.
	Build func(n int64) *ir.Nest
}

// Instance builds the kernel at the given size (0 = DefaultSize) and
// validates it.
func (k Kernel) Instance(n int64) (*ir.Nest, error) {
	if n == 0 {
		n = k.DefaultSize
	}
	if n < 4 {
		return nil, fmt.Errorf("kernels: %s size %d too small", k.Name, n)
	}
	nest := k.Build(n)
	if err := nest.Validate(); err != nil {
		return nil, fmt.Errorf("kernels: %s: %w", k.Name, err)
	}
	return nest, nil
}

// catalog is populated by the kernel definition files.
var catalog = map[string]Kernel{}

func register(k Kernel) {
	if _, dup := catalog[k.Name]; dup {
		panic("kernels: duplicate " + k.Name)
	}
	catalog[k.Name] = k
}

// Get looks a kernel up by name.
func Get(name string) (Kernel, bool) {
	k, ok := catalog[name]
	return k, ok
}

// Names returns the catalog names in stable order.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for n := range catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns the catalog in stable order.
func All() []Kernel {
	names := Names()
	out := make([]Kernel, len(names))
	for i, n := range names {
		out[i] = catalog[n]
	}
	return out
}

// --- shared construction helpers -----------------------------------------

// rect builds a loop with constant bounds [lo, hi].
func rect(name string, lo, hi int64) ir.Loop {
	return ir.Loop{Var: name, Lower: expr.Const(lo), Upper: ir.BoundOf(expr.Const(hi)), Step: 1}
}

// v is shorthand for a plain loop-variable subscript.
func v(i int) expr.Affine { return expr.Var(i) }

// vp is shorthand for variable+constant.
func vp(i int, c int64) expr.Affine { return expr.VarPlus(i, c) }

// subs collects subscript expressions.
func subs(es ...expr.Affine) []expr.Affine { return es }

// lineAlign lays arrays back to back aligned to the 32-byte line size.
const lineAlign = 32

// cacheAlign lays arrays at 8KB-aligned bases so that equal-subscript
// references map to the same cache set in both evaluated caches (8KB and
// 32KB share the alignment factor) — the conflict-kernel layout.
const cacheAlign = 32 * 1024
