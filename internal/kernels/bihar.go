package kernels

import "repro/internal/ir"

// The six BIHAR kernels are FFTPACK-style transform passes: 3-deep nests
// in which at least one array is traversed with its fastest dimension
// bound to an outer loop, so its cache lines are consumed one element per
// inner-space sweep — the classic transposition-shaped capacity-miss
// pattern that tiling removes.

func init() {
	register(Kernel{
		Name:        "DPSSB",
		Program:     "BIHAR",
		Description: "Unnormalized inverse of a forward transform of a complex periodic sequence",
		Depth:       3,
		DefaultSize: 60,
		Build: func(n int64) *ir.Nest {
			cc := &ir.Array{Name: "cc", Dims: []int64{n, n, n}, Elem: 8}
			cc2 := &ir.Array{Name: "cc2", Dims: []int64{n, n, n}, Elem: 8}
			ch := &ir.Array{Name: "ch", Dims: []int64{n, n, n}, Elem: 8}
			ir.LayoutArrays(0, lineAlign, cc, cc2, ch)
			// ch(i,j,l) = cc(l,i,j) + cc2(l,i,j); vars v0=l v1=j v2=i.
			// Both reads walk their fastest dimension with the OUTERMOST
			// loop: heavy line revisiting across the whole (j,i) plane.
			return &ir.Nest{
				Name:  "DPSSB",
				Loops: []ir.Loop{rect("l", 1, n), rect("j", 1, n), rect("i", 1, n)},
				Refs: []ir.Ref{
					{Array: cc, Subs: subs(v(0), v(2), v(1))},
					{Array: cc2, Subs: subs(v(0), v(2), v(1))},
					{Array: ch, Subs: subs(v(2), v(1), v(0)), Write: true},
				},
			}
		},
	})

	register(Kernel{
		Name:        "DPSSF",
		Program:     "BIHAR",
		Description: "Forward transform of a complex periodic sequence",
		Depth:       3,
		DefaultSize: 60,
		Build: func(n int64) *ir.Nest {
			cc := &ir.Array{Name: "cc", Dims: []int64{n, n, n}, Elem: 8}
			cc2 := &ir.Array{Name: "cc2", Dims: []int64{n, n, n}, Elem: 8}
			ch := &ir.Array{Name: "ch", Dims: []int64{n, n, n}, Elem: 8}
			ir.LayoutArrays(0, lineAlign, cc, cc2, ch)
			// Forward direction: the WRITE walks its fastest dimension
			// with the outer loop, the reads stream.
			return &ir.Nest{
				Name:  "DPSSF",
				Loops: []ir.Loop{rect("l", 1, n), rect("j", 1, n), rect("i", 1, n)},
				Refs: []ir.Ref{
					{Array: cc, Subs: subs(v(2), v(1), v(0))},
					{Array: cc2, Subs: subs(v(2), v(1), v(0))},
					{Array: ch, Subs: subs(v(0), v(2), v(1)), Write: true},
				},
			}
		},
	})

	register(Kernel{
		Name:        "DRADBG1",
		Program:     "BIHAR",
		Description: "Backward transform of a real coefficient array, loop 1",
		Depth:       3,
		DefaultSize: 60,
		Build: func(n int64) *ir.Nest {
			cc := &ir.Array{Name: "cc", Dims: []int64{n, n, n}, Elem: 8}
			ch := &ir.Array{Name: "ch", Dims: []int64{n, n, n}, Elem: 8}
			w := &ir.Array{Name: "w", Dims: []int64{n}, Elem: 8}
			ir.LayoutArrays(0, lineAlign, cc, ch, w)
			// ch(i,j,k) = w(j)*cc(k,i,j); vars v0=k v1=j v2=i. The read's
			// fastest dimension is bound to the OUTERMOST k loop: each of
			// its lines is consumed one element per (j,i) plane sweep.
			return &ir.Nest{
				Name:  "DRADBG1",
				Loops: []ir.Loop{rect("k", 1, n), rect("j", 1, n), rect("i", 1, n)},
				Refs: []ir.Ref{
					{Array: cc, Subs: subs(v(0), v(2), v(1))},
					{Array: w, Subs: subs(v(1))},
					{Array: ch, Subs: subs(v(2), v(1), v(0)), Write: true},
				},
			}
		},
	})

	register(Kernel{
		Name:        "DRADBG2",
		Program:     "BIHAR",
		Description: "Backward transform of a real coefficient array, loop 2",
		Depth:       3,
		// The middle-loop line revisits of this kernel need ~2n resident
		// lines; 108 pushes that past both evaluated caches while staying
		// clear of cache-size-aligned array strides.
		DefaultSize: 108,
		Build: func(n int64) *ir.Nest {
			cc := &ir.Array{Name: "cc", Dims: []int64{n, n, n}, Elem: 8}
			ch := &ir.Array{Name: "ch", Dims: []int64{n, n, n}, Elem: 8}
			w := &ir.Array{Name: "w", Dims: []int64{n}, Elem: 8}
			ir.LayoutArrays(0, lineAlign, cc, ch, w)
			// ch(j,i,k) = ch(j,i,k) + w(k)*cc(j,k,i); vars v0=k v1=j v2=i.
			// Both 3D arrays have their fastest dimension on the middle
			// loop.
			return &ir.Nest{
				Name:  "DRADBG2",
				Loops: []ir.Loop{rect("k", 1, n), rect("j", 1, n), rect("i", 1, n)},
				Refs: []ir.Ref{
					{Array: ch, Subs: subs(v(1), v(2), v(0))},
					{Array: w, Subs: subs(v(0))},
					{Array: cc, Subs: subs(v(1), v(0), v(2))},
					{Array: ch, Subs: subs(v(1), v(2), v(0)), Write: true},
				},
			}
		},
	})

	register(Kernel{
		Name:        "DRADFG1",
		Program:     "BIHAR",
		Description: "Forward transform of a real periodic sequence, loop 1",
		Depth:       3,
		DefaultSize: 60,
		Build: func(n int64) *ir.Nest {
			cc := &ir.Array{Name: "cc", Dims: []int64{n, n, n}, Elem: 8}
			ch := &ir.Array{Name: "ch", Dims: []int64{n, n, n}, Elem: 8}
			w := &ir.Array{Name: "w", Dims: []int64{n}, Elem: 8}
			ir.LayoutArrays(0, lineAlign, cc, ch, w)
			// ch(k,j,i) = w(j)*cc(i,j,k): mirror of DRADBG1 — here the
			// WRITE has its fastest dimension on the outer loop while the
			// read streams.
			return &ir.Nest{
				Name:  "DRADFG1",
				Loops: []ir.Loop{rect("k", 1, n), rect("j", 1, n), rect("i", 1, n)},
				Refs: []ir.Ref{
					{Array: cc, Subs: subs(v(2), v(1), v(0))},
					{Array: w, Subs: subs(v(1))},
					{Array: ch, Subs: subs(v(0), v(1), v(2)), Write: true},
				},
			}
		},
	})

	register(Kernel{
		Name:        "DRADFG2",
		Program:     "BIHAR",
		Description: "Forward transform of a real periodic sequence, loop 2",
		Depth:       3,
		DefaultSize: 60,
		Build: func(n int64) *ir.Nest {
			cc := &ir.Array{Name: "cc", Dims: []int64{n, n, n}, Elem: 8}
			ch := &ir.Array{Name: "ch", Dims: []int64{n, n, n}, Elem: 8}
			c2 := &ir.Array{Name: "c2", Dims: []int64{n, n, n}, Elem: 8}
			ir.LayoutArrays(0, lineAlign, cc, ch, c2)
			// c2(k,j,i) = cc(j,k,i) - ch(i,j,k): two distinct transposed
			// patterns in one statement.
			return &ir.Nest{
				Name:  "DRADFG2",
				Loops: []ir.Loop{rect("k", 1, n), rect("j", 1, n), rect("i", 1, n)},
				Refs: []ir.Ref{
					{Array: cc, Subs: subs(v(1), v(0), v(2))},
					{Array: ch, Subs: subs(v(2), v(1), v(0))},
					{Array: c2, Subs: subs(v(0), v(1), v(2)), Write: true},
				},
			}
		},
	})
}
