package cme

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/iterspace"
)

// TestWorkerPool: the cached worker pool hands back the same clones call
// after call (no per-evaluation allocation churn), grows on demand,
// rebinds stale clones to the primary's current space, and classifies
// identically to the primary.
func TestWorkerPool(t *testing.T) {
	nest := transposeNest(16)
	box := iterspace.NewBox([]int64{1, 1}, []int64{16, 16})
	an, err := NewAnalyzer(nest, box, cache.Config{Size: 256, LineSize: 32, Assoc: 1})
	if err != nil {
		t.Fatal(err)
	}

	pool := an.WorkerPool(4)
	if len(pool) != 4 || pool[0] != an {
		t.Fatalf("WorkerPool(4): len=%d primary=%v", len(pool), pool[0] == an)
	}
	again := an.WorkerPool(4)
	for i := range pool {
		if again[i] != pool[i] {
			t.Fatalf("worker %d reallocated on second call", i)
		}
	}
	// Shrinking returns a prefix; growing keeps the old clones.
	if small := an.WorkerPool(2); len(small) != 2 || small[1] != pool[1] {
		t.Fatalf("WorkerPool(2) did not reuse the cached clones")
	}
	grown := an.WorkerPool(6)
	if len(grown) != 6 || grown[3] != pool[3] {
		t.Fatalf("WorkerPool(6) did not extend the cached pool")
	}

	// Rebind the primary to a tiled space; the next checkout must bring
	// every clone along and agree with the primary point for point.
	tiled := iterspace.NewTiled(box, []int64{4, 8})
	if err := an.Rebind(tiled); err != nil {
		t.Fatal(err)
	}
	p := []int64{3, 5, 1, 2}
	for _, w := range an.WorkerPool(4) {
		for r := 0; r < 2; r++ {
			if got, want := w.Classify(p, r), an.Classify(p, r); got != want {
				t.Fatalf("rebound worker disagrees with primary: %v vs %v", got, want)
			}
		}
	}

	// Clones must not inherit the pool (a worker of a worker would share
	// analyzers across goroutines).
	if cl := an.Clone(); cl.workers != nil {
		t.Fatal("Clone inherited the worker pool")
	}
}

// TestPointScratch: the reusable coordinate buffer survives rebinds to
// spaces of different coordinate counts and never aliases a fresh call's
// expectation of zeroed-by-overwrite semantics.
func TestPointScratch(t *testing.T) {
	nest := transposeNest(16)
	box := iterspace.NewBox([]int64{1, 1}, []int64{16, 16})
	an, err := NewAnalyzer(nest, box, cache.Config{Size: 256, LineSize: 32, Assoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf := an.PointScratch()
	if len(buf) != an.Space().NumCoords() {
		t.Fatalf("scratch len %d != coords %d", len(buf), an.Space().NumCoords())
	}
	if &buf[0] != &an.PointScratch()[0] {
		t.Fatal("scratch reallocated between calls")
	}
	if err := an.Rebind(iterspace.NewTiled(box, []int64{4, 8})); err != nil {
		t.Fatal(err)
	}
	if got := an.PointScratch(); len(got) != an.Space().NumCoords() {
		t.Fatalf("scratch not resized after rebind: %d != %d", len(got), an.Space().NumCoords())
	}
}
