package cme

import (
	"math/rand/v2"
	"testing"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/expr"
	"repro/internal/ir"
	"repro/internal/iterspace"
	"repro/internal/trace"
)

// --- test kernels ---------------------------------------------------------

func mmNest(n int64) *ir.Nest {
	a := &ir.Array{Name: "a", Dims: []int64{n, n}, Elem: 8}
	b := &ir.Array{Name: "b", Dims: []int64{n, n}, Elem: 8}
	c := &ir.Array{Name: "c", Dims: []int64{n, n}, Elem: 8}
	ir.LayoutArrays(0, 32, a, b, c)
	cn := ir.BoundOf(expr.Const(n))
	return &ir.Nest{
		Name: "mm",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: cn, Step: 1},
			{Var: "j", Lower: expr.Const(1), Upper: cn, Step: 1},
			{Var: "k", Lower: expr.Const(1), Upper: cn, Step: 1},
		},
		Refs: []ir.Ref{
			{Array: a, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}},
			{Array: b, Subs: []expr.Affine{expr.Var(0), expr.Var(2)}},
			{Array: c, Subs: []expr.Affine{expr.Var(2), expr.Var(1)}},
			{Array: a, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}, Write: true},
		},
	}
}

func transposeNest(n int64) *ir.Nest {
	a := &ir.Array{Name: "a", Dims: []int64{n, n}, Elem: 8}
	b := &ir.Array{Name: "b", Dims: []int64{n, n}, Elem: 8}
	ir.LayoutArrays(0, 32, a, b)
	cn := ir.BoundOf(expr.Const(n))
	return &ir.Nest{
		Name: "t2d",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: cn, Step: 1},
			{Var: "j", Lower: expr.Const(1), Upper: cn, Step: 1},
		},
		Refs: []ir.Ref{
			{Array: b, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}},
			{Array: a, Subs: []expr.Affine{expr.Var(1), expr.Var(0)}, Write: true},
		},
	}
}

// stencilNest has group reuse and off-by-constant subscripts.
func stencilNest(n int64) *ir.Nest {
	a := &ir.Array{Name: "a", Dims: []int64{n + 2, n + 2}, Elem: 8}
	b := &ir.Array{Name: "b", Dims: []int64{n + 2, n + 2}, Elem: 8}
	ir.LayoutArrays(0, 32, a, b)
	lo, hi := expr.Const(2), ir.BoundOf(expr.Const(n+1))
	return &ir.Nest{
		Name: "jacobi2d",
		Loops: []ir.Loop{
			{Var: "i", Lower: lo, Upper: hi, Step: 1},
			{Var: "j", Lower: lo, Upper: hi, Step: 1},
		},
		Refs: []ir.Ref{
			{Array: b, Subs: []expr.Affine{expr.VarPlus(0, -1), expr.Var(1)}},
			{Array: b, Subs: []expr.Affine{expr.VarPlus(0, 1), expr.Var(1)}},
			{Array: b, Subs: []expr.Affine{expr.Var(0), expr.VarPlus(1, -1)}},
			{Array: b, Subs: []expr.Affine{expr.Var(0), expr.VarPlus(1, 1)}},
			{Array: a, Subs: []expr.Affine{expr.Var(0), expr.Var(1)}, Write: true},
		},
	}
}

// reverseNest exercises negative subscript coefficients: a(N+1-i) = b(i).
func reverseNest(n int64) *ir.Nest {
	a := &ir.Array{Name: "a", Dims: []int64{n}, Elem: 8}
	b := &ir.Array{Name: "b", Dims: []int64{n}, Elem: 8}
	ir.LayoutArrays(0, 32, a, b)
	return &ir.Nest{
		Name: "rev",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: b, Subs: []expr.Affine{expr.Var(0)}},
			{Array: a, Subs: []expr.Affine{expr.Term(0, -1, n+1)}, Write: true},
		},
	}
}

// --- lockstep validation --------------------------------------------------

// lockstep runs the simulator and the analyzer over the same trace and
// fails on the first disagreement.
func lockstep(t *testing.T, nest *ir.Nest, space iterspace.Space, cfg cache.Config) cachesim.Stats {
	t.Helper()
	an, err := NewAnalyzer(nest, space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := cachesim.New(cfg)
	n := 0
	trace.GenerateSpace(space, nest, func(p []int64, a trace.Access) bool {
		want := sim.Access(a.Addr)
		got := an.Classify(p, a.RefIdx)
		if got != want {
			t.Fatalf("%s %v access %d (ref %d, addr %d, point %v): analyzer=%v simulator=%v",
				nest.Name, cfg, n, a.RefIdx, a.Addr, p, got, want)
		}
		n++
		return true
	})
	if an.CapHits() != 0 {
		t.Fatalf("walk cap tripped %d times", an.CapHits())
	}
	return sim.Stats()
}

func smallCaches() []cache.Config {
	return []cache.Config{
		{Size: 256, LineSize: 32, Assoc: 1},  // 8 sets, very conflicty
		{Size: 512, LineSize: 32, Assoc: 2},  // 8 sets, 2-way
		{Size: 1024, LineSize: 32, Assoc: 4}, // 8 sets, 4-way
		{Size: 2048, LineSize: 32, Assoc: 1}, // 64 sets
	}
}

func TestAnalyzerMatchesSimulatorUntiled(t *testing.T) {
	kernels := []*ir.Nest{mmNest(8), transposeNest(12), stencilNest(8), reverseNest(64)}
	for _, nest := range kernels {
		lo := make([]int64, nest.Depth())
		hi := make([]int64, nest.Depth())
		for d, l := range nest.Loops {
			lo[d] = l.Lower.Eval(nil)
			hi[d] = l.Upper.Eval(nil)
		}
		box := iterspace.NewBox(lo, hi)
		for _, cfg := range smallCaches() {
			lockstep(t, nest, box, cfg)
		}
	}
}

func TestAnalyzerMatchesSimulatorTiled(t *testing.T) {
	r := rand.New(rand.NewPCG(41, 43))
	kernels := []*ir.Nest{mmNest(9), transposeNest(13), stencilNest(7)}
	for _, nest := range kernels {
		lo := make([]int64, nest.Depth())
		hi := make([]int64, nest.Depth())
		for d, l := range nest.Loops {
			lo[d] = l.Lower.Eval(nil)
			hi[d] = l.Upper.Eval(nil)
		}
		box := iterspace.NewBox(lo, hi)
		for trial := 0; trial < 6; trial++ {
			tile := make([]int64, nest.Depth())
			for d := range tile {
				tile[d] = 1 + r.Int64N(box.Extent(d))
			}
			space := iterspace.NewTiled(box, tile)
			for _, cfg := range smallCaches()[:2] {
				lockstep(t, nest, space, cfg)
			}
		}
	}
}

// TestExhaustiveStatsMatchesSimulator compares aggregate statistics.
func TestExhaustiveStatsMatchesSimulator(t *testing.T) {
	nest := mmNest(10)
	box := iterspace.NewBox([]int64{1, 1, 1}, []int64{10, 10, 10})
	cfg := cache.Config{Size: 512, LineSize: 32, Assoc: 1}
	an, err := NewAnalyzer(nest, box, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := an.ExhaustiveStats()
	want := cachesim.SimulateNest(nest, cfg)
	if got.Accesses != want.Accesses || got.Hits != want.Hits ||
		got.Compulsory != want.Compulsory || got.Replacement != want.Replacement {
		t.Fatalf("analyzer stats %+v != simulator stats %+v", got, want)
	}
}

// TestTilingReducesMissesEndToEnd: the whole point of the machinery — a
// well-chosen tiling slashes replacement misses for transpose through a
// small cache, and the analyzer sees it.
func TestTilingReducesMissesEndToEnd(t *testing.T) {
	nest := transposeNest(32) // 2 * 8KB of data
	box := iterspace.NewBox([]int64{1, 1}, []int64{32, 32})
	cfg := cache.Config{Size: 2048, LineSize: 32, Assoc: 1}

	anU, err := NewAnalyzer(nest, box, cfg)
	if err != nil {
		t.Fatal(err)
	}
	untiled := anU.ExhaustiveStats()

	tiled := iterspace.NewTiled(box, []int64{4, 4})
	anT, err := NewAnalyzer(nest, tiled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := anT.ExhaustiveStats()

	if untiled.Compulsory != after.Compulsory {
		t.Fatalf("tiling changed compulsory misses: %d -> %d", untiled.Compulsory, after.Compulsory)
	}
	if after.Replacement*2 >= untiled.Replacement {
		t.Fatalf("4x4 tiling did not halve replacement misses: %d -> %d",
			untiled.Replacement, after.Replacement)
	}
}

func TestNewAnalyzerRejectsBadInput(t *testing.T) {
	nest := mmNest(4)
	box := iterspace.NewBox([]int64{1, 1, 1}, []int64{4, 4, 4})
	if _, err := NewAnalyzer(nest, box, cache.Config{Size: 100, LineSize: 32, Assoc: 1}); err == nil {
		t.Fatal("bad cache accepted")
	}
	wrongBox := iterspace.NewBox([]int64{1}, []int64{4})
	if _, err := NewAnalyzer(nest, wrongBox, cache.DM8K); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	// Multi-variable subscript rejected.
	arr := &ir.Array{Name: "x", Dims: []int64{64}, Elem: 8, Base: 0}
	bad := &ir.Nest{
		Name: "bad",
		Loops: []ir.Loop{
			{Var: "i", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(4)), Step: 1},
			{Var: "j", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(4)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: arr, Subs: []expr.Affine{expr.Var(0).Add(expr.Var(1))}},
		},
	}
	if _, err := NewAnalyzer(bad, iterspace.NewBox([]int64{1, 1}, []int64{4, 4}), cache.DM8K); err == nil {
		t.Fatal("multi-variable subscript accepted")
	}
}

func TestClone(t *testing.T) {
	nest := transposeNest(8)
	box := iterspace.NewBox([]int64{1, 1}, []int64{8, 8})
	an, err := NewAnalyzer(nest, box, cache.Config{Size: 256, LineSize: 32, Assoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl := an.Clone()
	// Both must produce identical classifications independently.
	p := []int64{3, 5}
	for r := 0; r < 2; r++ {
		if an.Classify(p, r) != cl.Classify(p, r) {
			t.Fatal("clone disagrees")
		}
	}
}

// TestConstantSubscript covers refs like x(3,j).
func TestConstantSubscript(t *testing.T) {
	n := int64(16)
	x := &ir.Array{Name: "x", Dims: []int64{4, n}, Elem: 8, Base: 0}
	nest := &ir.Nest{
		Name: "constsub",
		Loops: []ir.Loop{
			{Var: "j", Lower: expr.Const(1), Upper: ir.BoundOf(expr.Const(n)), Step: 1},
		},
		Refs: []ir.Ref{
			{Array: x, Subs: []expr.Affine{expr.Const(3), expr.Var(0)}},
			{Array: x, Subs: []expr.Affine{expr.Const(1), expr.Var(0)}, Write: true},
		},
	}
	box := iterspace.NewBox([]int64{1}, []int64{n})
	for _, cfg := range smallCaches() {
		lockstep(t, nest, box, cfg)
	}
}

// TestWalkCostSizeIndependent anchors the complexity claim: the average
// backward-walk length per access stays within a small multiple of the
// set count as the problem grows 5x in linear size (125x in points).
func TestWalkCostSizeIndependent(t *testing.T) {
	cfg := cache.Config{Size: 2048, LineSize: 32, Assoc: 1} // 64 sets
	perSize := map[int64]float64{}
	for _, n := range []int64{40, 200} {
		nest := mmNest(n)
		box := iterspace.NewBox([]int64{1, 1, 1}, []int64{n, n, n})
		an, err := NewAnalyzer(nest, box, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(uint64(n), 5))
		p := make([]int64, 3)
		var st cachesim.Stats
		for i := 0; i < 400; i++ {
			box.Sample(rng, p)
			an.ClassifyAll(p, &st)
		}
		steps, accesses := an.WalkStats()
		perSize[n] = float64(steps) / float64(accesses)
	}
	sets := float64(cfg.NumSets())
	for n, avg := range perSize {
		if avg > 4*sets {
			t.Fatalf("N=%d: %.1f walk steps/access exceeds 4x sets (%v)", n, avg, sets)
		}
	}
	// Growth bounded: 5x the size must not even double the walk cost.
	if perSize[200] > 2*perSize[40]+sets {
		t.Fatalf("walk cost grew with problem size: %.1f -> %.1f", perSize[40], perSize[200])
	}
}
