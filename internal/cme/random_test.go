package cme

import (
	"math/rand/v2"
	"testing"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/expr"
	"repro/internal/ir"
	"repro/internal/iterspace"
	"repro/internal/trace"
)

// randomNest generates a random rectangular affine loop nest: 1–3 loops,
// 1–3 arrays (with random padding and base alignment), 2–6 references with
// random single-variable affine subscripts (including constants, reversed
// and strided subscripts).
func randomNest(r *rand.Rand) *ir.Nest {
	depth := 1 + int(r.Int64N(3))
	loops := make([]ir.Loop, depth)
	extents := make([]int64, depth)
	names := []string{"i", "j", "k"}
	for d := 0; d < depth; d++ {
		lo := 1 + r.Int64N(3)
		extents[d] = 3 + r.Int64N(8)
		loops[d] = ir.Loop{
			Var:   names[d],
			Lower: expr.Const(lo),
			Upper: ir.BoundOf(expr.Const(lo + extents[d] - 1)),
			Step:  1,
		}
	}
	nArrays := 1 + int(r.Int64N(3))
	arrays := make([]*ir.Array, nArrays)
	for a := 0; a < nArrays; a++ {
		rank := 1 + int(r.Int64N(3))
		dims := make([]int64, rank)
		for d := range dims {
			// Big enough for any subscript the generator produces:
			// coef up to 2, offset up to +3, lower bound up to 3,
			// extent up to 10 -> max subscript value ~2*13+3 = 29.
			dims[d] = 30 + r.Int64N(8)
		}
		arr := &ir.Array{
			Name: string(rune('a' + a)),
			Dims: dims,
			Elem: 8,
		}
		if r.Int64N(3) == 0 {
			arr.Pad = make([]int64, rank)
			arr.Pad[r.Int64N(int64(rank))] = r.Int64N(4)
		}
		arrays[a] = arr
	}
	// Random layout: sometimes line-aligned, sometimes cache-aligned
	// (conflict-heavy), sometimes packed tight.
	aligns := []int64{32, 256, 1024, 8}
	ir.LayoutArrays(r.Int64N(3)*8, aligns[r.Int64N(int64(len(aligns)))], arrays...)

	nRefs := 2 + int(r.Int64N(5))
	refs := make([]ir.Ref, nRefs)
	for i := range refs {
		arr := arrays[r.Int64N(int64(nArrays))]
		subs := make([]expr.Affine, arr.Rank())
		for d := range subs {
			switch r.Int64N(5) {
			case 0: // constant subscript
				subs[d] = expr.Const(1 + r.Int64N(4))
			case 1: // reversed: c - v
				v := int(r.Int64N(int64(depth)))
				hi := loops[v].Upper.Eval(nil)
				subs[d] = expr.Term(v, -1, hi+1)
			case 2: // strided: 2v - 1
				v := int(r.Int64N(int64(depth)))
				subs[d] = expr.Term(v, 2, -1)
			default: // plain v + c
				v := int(r.Int64N(int64(depth)))
				subs[d] = expr.VarPlus(v, r.Int64N(4))
			}
		}
		refs[i] = ir.Ref{Array: arr, Subs: subs, Write: r.Int64N(4) == 0}
	}
	return &ir.Nest{Name: "rand", Loops: loops, Refs: refs}
}

func randomCache(r *rand.Rand) cache.Config {
	sizes := []int64{128, 256, 512, 1024, 4096}
	assocs := []int{1, 1, 2, 4} // direct-mapped twice as likely
	for {
		cfg := cache.Config{
			Size:     sizes[r.Int64N(int64(len(sizes)))],
			LineSize: 32,
			Assoc:    assocs[r.Int64N(int64(len(assocs)))],
		}
		if cfg.Validate() == nil {
			return cfg
		}
	}
}

// TestRandomKernelsLockstep is the package's strongest property test:
// for hundreds of randomly generated kernels, caches and (for some) random
// tilings, the CME point solver must agree with the trace-driven LRU
// simulator on EVERY access.
func TestRandomKernelsLockstep(t *testing.T) {
	r := rand.New(rand.NewPCG(2002, 7))
	iters := 250
	if testing.Short() {
		iters = 40
	}
	for iter := 0; iter < iters; iter++ {
		nest := randomNest(r)
		if err := nest.Validate(); err != nil {
			t.Fatalf("iter %d: generator produced invalid nest: %v", iter, err)
		}
		cfg := randomCache(r)

		lo := make([]int64, nest.Depth())
		hi := make([]int64, nest.Depth())
		for d, l := range nest.Loops {
			lo[d] = l.Lower.Eval(nil)
			hi[d] = l.Upper.Eval(nil)
		}
		box := iterspace.NewBox(lo, hi)
		var space iterspace.Space = box
		switch r.Int64N(3) {
		case 0:
			tile := make([]int64, nest.Depth())
			for d := range tile {
				tile[d] = 1 + r.Int64N(box.Extent(d))
			}
			space = iterspace.NewTiled(box, tile)
		case 1:
			tile := make([]int64, nest.Depth())
			for d := range tile {
				tile[d] = 1 + r.Int64N(box.Extent(d))
			}
			space = iterspace.NewPermutedTiled(box, tile, r.Perm(nest.Depth()))
		}

		an, err := NewAnalyzer(nest, space, cfg)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		sim := cachesim.New(cfg)
		n := 0
		trace.GenerateSpace(space, nest, func(p []int64, a trace.Access) bool {
			want := sim.Access(a.Addr)
			got := an.Classify(p, a.RefIdx)
			if got != want {
				t.Fatalf("iter %d (cache %v): access %d ref %d addr %d point %v: analyzer=%v simulator=%v\nnest:\n%s",
					iter, cfg, n, a.RefIdx, a.Addr, p, got, want, nest)
			}
			n++
			return true
		})
		if an.CapHits() != 0 {
			t.Fatalf("iter %d: walk cap tripped", iter)
		}
	}
}

// TestRandomKernelsSamplingBrackets: on random kernels, the sampled
// estimate's interval brackets the exhaustive ratio (within the stated
// confidence, checked loosely across many kernels).
func TestRandomKernelsSamplingBrackets(t *testing.T) {
	r := rand.New(rand.NewPCG(77, 78))
	outside := 0
	total := 60
	if testing.Short() {
		total = 15
	}
	for iter := 0; iter < total; iter++ {
		nest := randomNest(r)
		cfg := randomCache(r)
		lo := make([]int64, nest.Depth())
		hi := make([]int64, nest.Depth())
		for d, l := range nest.Loops {
			lo[d] = l.Lower.Eval(nil)
			hi[d] = l.Upper.Eval(nil)
		}
		box := iterspace.NewBox(lo, hi)
		an, err := NewAnalyzer(nest, box, cfg)
		if err != nil {
			t.Fatal(err)
		}
		exact := an.ExhaustiveStats().MissRatio()
		var st cachesim.Stats
		p := make([]int64, box.NumCoords())
		for s := 0; s < 164; s++ {
			box.Sample(r, p)
			an.ClassifyAll(p, &st)
		}
		est := st.MissRatio()
		if est < exact-0.12 || est > exact+0.12 {
			outside++
		}
	}
	// With width-0.1/90% sampling plus slack 0.12, gross outliers should
	// be rare.
	if outside > total/5 {
		t.Fatalf("%d/%d sampled estimates far from exact ratios", outside, total)
	}
}

// TestWalkCapFallback: with an artificially tiny walk cap the analyzer
// still terminates, classifying unresolved accesses as replacement misses
// and recording the fallback.
func TestWalkCapFallback(t *testing.T) {
	nest := mmNest(16)
	box := iterspace.NewBox([]int64{1, 1, 1}, []int64{16, 16, 16})
	an, err := NewAnalyzer(nest, box, cache.Config{Size: 256, LineSize: 32, Assoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	an.walkCap = 2 // pathological
	var st cachesim.Stats
	p := make([]int64, 3)
	box.First(p)
	for i := 0; i < 500; i++ {
		an.ClassifyAll(p, &st)
		if !box.Next(p) {
			break
		}
	}
	if an.CapHits() == 0 {
		t.Fatal("tiny walk cap never tripped")
	}
	if st.Accesses != st.Hits+st.Compulsory+st.Replacement {
		t.Fatal("outcome counts inconsistent")
	}
}
