package cme

import (
	"repro/internal/ir"
	"repro/internal/iterspace"
)

// arrInfo caches the layout data needed for allocation-free subscript
// inversion of one array.
type arrInfo struct {
	strides []int64
	order   []int // dimension indices by descending stride
	dims    []int64
	total   int64 // padded element count
}

func newArrInfo(a *ir.Array) *arrInfo {
	strides := a.Strides()
	order := make([]int, len(strides))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if strides[order[j]] > strides[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	total := a.SizeBytes() / a.Elem
	return &arrInfo{strides: strides, order: order, dims: a.Dims, total: total}
}

// delinearize inverts the element index into 1-based subscripts without
// allocating; it reports false for indices in padding or out of range.
func (ai *arrInfo) delinearize(idx int64, subs []int64) bool {
	if idx < 0 || idx >= ai.total {
		return false
	}
	for _, d := range ai.order {
		q := idx / ai.strides[d]
		idx -= q * ai.strides[d]
		if q >= ai.dims[d] {
			return false
		}
		subs[d] = q + 1
	}
	return true
}

// isFirstAccess reports whether the access by reference refIdx at space
// point p is the first access ever (in execution order) to the given
// memory line — i.e. a compulsory miss.
//
// The test is exact and runs in O(refs × elementsPerLine × dims): a cache
// line holds at most LineSize/Elem array elements; for each reference and
// each such element we invert the (single-variable) subscripts to the loop
// variables they pin and ask the space for the lexicographically earliest
// point with those pins. If any such point precedes p (or coincides with p
// at an earlier body reference), the line was touched before.
func (a *Analyzer) isFirstAccess(p []int64, refIdx int, line int64) bool {
	lineStart := line * a.cfg.LineSize
	lineEnd := lineStart + a.cfg.LineSize - 1

	for rj := range a.refs {
		ref := &a.nest.Refs[rj]
		arr := ref.Array
		ai := a.arrays[arr]
		b := arr.Base + arr.BasePad
		elem := arr.Elem

		// Element-index range of this array whose start byte lies in the
		// line.
		if lineEnd < b {
			continue
		}
		k0 := int64(0)
		if lineStart > b {
			k0 = (lineStart - b + elem - 1) / elem
		}
		k1 := (lineEnd - b) / elem
		subs := a.subsBuf[:len(arr.Dims)]
		for k := k0; k <= k1; k++ {
			if !ai.delinearize(k, subs) {
				continue // index in padding or past the array
			}
			if !a.pinsFor(rj, subs) {
				continue // element unreachable by this reference
			}
			if !a.space.MinWithPinned(a.pinned, a.minPoint) {
				continue // pinned values outside the iteration space
			}
			switch iterspace.Compare(a.minPoint, p) {
			case -1:
				return false
			case 0:
				if rj < refIdx {
					return false
				}
			}
		}
	}
	return true
}

// pinsFor computes, into a.pinned, the loop-variable values reference rj
// must take to touch the element with the given subscripts. It reports
// false when the element is unreachable (constant-subscript mismatch,
// non-integral solution, or conflicting pins).
func (a *Analyzer) pinsFor(rj int, subs []int64) bool {
	for v := range a.pinned {
		a.pinned[v] = iterspace.Free
	}
	for d, inv := range a.refs[rj].inv {
		if inv.varIdx < 0 {
			if subs[d] != inv.cst {
				return false
			}
			continue
		}
		num := subs[d] - inv.cst
		if num%inv.coef != 0 {
			return false
		}
		val := num / inv.coef
		if cur := a.pinned[inv.varIdx]; cur != iterspace.Free && cur != val {
			return false
		}
		a.pinned[inv.varIdx] = val
	}
	return true
}
