package cme

import (
	"math/rand/v2"
	"testing"

	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/iterspace"
)

// randomSpace wraps a nest's bounding box in a random traversal order:
// the box itself, a random tiling, or a random permuted tiling.
func randomSpace(r *rand.Rand, depth int, lo, hi []int64) iterspace.Space {
	box := iterspace.NewBox(lo, hi)
	switch r.Int64N(3) {
	case 0:
		return box
	case 1:
		tile := make([]int64, depth)
		for d := range tile {
			tile[d] = 1 + r.Int64N(box.Extent(d))
		}
		return iterspace.NewTiled(box, tile)
	default:
		tile := make([]int64, depth)
		for d := range tile {
			tile[d] = 1 + r.Int64N(box.Extent(d))
		}
		return iterspace.NewPermutedTiled(box, tile, r.Perm(depth))
	}
}

// TestDifferentialRandomKernels is the equivalence guarantee of the
// optimized walk: for random kernels, caches and traversal spaces, the
// incremental walk (Classify) and the retained reference walk
// (ClassifyReference) must agree on EVERY access — and, because both count
// a step at exactly the same probes, on the cumulative walk statistics.
// Two analyzer instances are used so neither implementation can lean on
// scratch state the other left behind.
func TestDifferentialRandomKernels(t *testing.T) {
	r := rand.New(rand.NewPCG(424242, 17))
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for iter := 0; iter < iters; iter++ {
		nest := randomNest(r)
		if err := nest.Validate(); err != nil {
			t.Fatalf("iter %d: generator produced invalid nest: %v", iter, err)
		}
		cfg := randomCache(r)

		lo := make([]int64, nest.Depth())
		hi := make([]int64, nest.Depth())
		for d, l := range nest.Loops {
			lo[d] = l.Lower.Eval(nil)
			hi[d] = l.Upper.Eval(nil)
		}
		space := randomSpace(r, nest.Depth(), lo, hi)

		fast, err := NewAnalyzer(nest, space, cfg)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		ref, err := NewAnalyzer(nest, space, cfg)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}

		p := make([]int64, space.NumCoords())
		if !space.First(p) {
			continue
		}
		for {
			for ri := range nest.Refs {
				got := fast.Classify(p, ri)
				want := ref.ClassifyReference(p, ri)
				if got != want {
					t.Fatalf("iter %d (cache %v, space %T): point %v ref %d: Classify=%v ClassifyReference=%v\nnest:\n%s",
						iter, cfg, space, p, ri, got, want, nest)
				}
			}
			if !space.Next(p) {
				break
			}
		}
		fs, fa := fast.WalkStats()
		rs, ra := ref.WalkStats()
		if fs != rs || fa != ra {
			t.Fatalf("iter %d: walk stats diverge: incremental (%d steps, %d accesses) vs reference (%d, %d)",
				iter, fs, fa, rs, ra)
		}
		if fast.CapHits() != ref.CapHits() {
			t.Fatalf("iter %d: cap hits diverge: %d vs %d", iter, fast.CapHits(), ref.CapHits())
		}
	}
}

// TestDifferentialAssociativitySweep pins the equivalence on the suite's
// named kernels across associativities 1..8 (1 exercises walkDirect, the
// rest walkAssoc) and a tiled traversal, complementing the random sweep.
func TestDifferentialAssociativitySweep(t *testing.T) {
	cases := []struct {
		name string
		nest *ir.Nest
		lo   []int64
		hi   []int64
		tile []int64
	}{
		{"mm", mmNest(10), []int64{1, 1, 1}, []int64{10, 10, 10}, []int64{4, 5, 3}},
		{"stencil", stencilNest(10), []int64{2, 2}, []int64{11, 11}, []int64{3, 6}},
	}
	for _, tc := range cases {
		for _, assoc := range []int{1, 2, 4, 8} {
			space := iterspace.NewTiled(iterspace.NewBox(tc.lo, tc.hi), tc.tile)
			cfg := cache.Config{Size: int64(assoc) * 512, LineSize: 32, Assoc: assoc}
			fast, err := NewAnalyzer(tc.nest, space, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewAnalyzer(tc.nest, space, cfg)
			if err != nil {
				t.Fatal(err)
			}
			p := make([]int64, space.NumCoords())
			space.First(p)
			for {
				for ri := range tc.nest.Refs {
					got := fast.Classify(p, ri)
					want := ref.ClassifyReference(p, ri)
					if got != want {
						t.Fatalf("%s assoc=%d point %v ref %d: Classify=%v ClassifyReference=%v",
							tc.name, assoc, p, ri, got, want)
					}
				}
				if !space.Next(p) {
					break
				}
			}
		}
	}
}

// TestCloneAccountingFresh is the regression test for the clone
// counter-inheritance bug: a clone taken from a parent that has already
// done work must start its WalkStats and CapHits at zero, so aggregating
// per-worker clone counters never double-counts the parent's history.
func TestCloneAccountingFresh(t *testing.T) {
	nest := mmNest(12)
	box := iterspace.NewBox([]int64{1, 1, 1}, []int64{12, 12, 12})
	an, err := NewAnalyzer(nest, box, cache.Config{Size: 256, LineSize: 32, Assoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := make([]int64, 3)
	box.First(p)
	for i := 0; i < 300; i++ {
		for r := range nest.Refs {
			an.Classify(p, r)
		}
		if !box.Next(p) {
			break
		}
	}
	steps, accesses := an.WalkStats()
	if steps == 0 || accesses == 0 {
		t.Fatalf("parent did no measurable work (steps=%d accesses=%d)", steps, accesses)
	}
	an.walkCap = 1 // force a cap hit so the clone must clear it too
	box.First(p)
	for an.CapHits() == 0 {
		for r := range nest.Refs {
			an.Classify(p, r)
		}
		if !box.Next(p) {
			break
		}
	}
	an.walkCap = DefaultWalkCap
	if an.CapHits() == 0 {
		t.Fatal("failed to provoke a cap hit on the parent")
	}

	cl := an.Clone()
	if s, a := cl.WalkStats(); s != 0 || a != 0 {
		t.Fatalf("clone inherited walk accounting: steps=%d accesses=%d, want 0,0", s, a)
	}
	if cl.CapHits() != 0 {
		t.Fatalf("clone inherited %d cap hits, want 0", cl.CapHits())
	}
	// And the clone still classifies identically to the parent.
	box.First(p)
	for i := 0; i < 50; i++ {
		for r := range nest.Refs {
			if cl.Classify(p, r) != an.Classify(p, r) {
				t.Fatalf("clone classification diverges at %v ref %d", p, r)
			}
		}
		if !box.Next(p) {
			break
		}
	}
}

// TestRebindMatchesFreshAnalyzer: an analyzer rebound from one space to
// another must classify exactly like a freshly constructed analyzer on the
// target space, with its accounting restarted — the contract the core
// evaluator's analyzer pool relies on.
func TestRebindMatchesFreshAnalyzer(t *testing.T) {
	nest := transposeNest(16)
	box := iterspace.NewBox([]int64{1, 1}, []int64{16, 16})
	cfg := cache.Config{Size: 512, LineSize: 32, Assoc: 2}

	an, err := NewAnalyzer(nest, box, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Do some work on the box so rebinding has state to clear.
	p := make([]int64, box.NumCoords())
	box.First(p)
	for i := 0; i < 100; i++ {
		for r := range nest.Refs {
			an.Classify(p, r)
		}
		if !box.Next(p) {
			break
		}
	}

	tiled := iterspace.NewTiled(box, []int64{4, 6})
	if err := an.Rebind(tiled); err != nil {
		t.Fatal(err)
	}
	if s, a := an.WalkStats(); s != 0 || a != 0 {
		t.Fatalf("rebind kept walk accounting: steps=%d accesses=%d", s, a)
	}
	fresh, err := NewAnalyzer(nest, tiled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tp := make([]int64, tiled.NumCoords())
	tiled.First(tp)
	for {
		for r := range nest.Refs {
			got := an.Classify(tp, r)
			want := fresh.Classify(tp, r)
			if got != want {
				t.Fatalf("rebound analyzer diverges at %v ref %d: %v vs fresh %v", tp, r, got, want)
			}
		}
		if !tiled.Next(tp) {
			break
		}
	}
	// Identical work must yield identical accounting.
	rs, ra := an.WalkStats()
	fs, fa := fresh.WalkStats()
	if rs != fs || ra != fa {
		t.Fatalf("rebound walk stats (%d, %d) != fresh (%d, %d)", rs, ra, fs, fa)
	}

	// Rebinding at a space of mismatched original rank must fail cleanly.
	bad := iterspace.NewBox([]int64{1}, []int64{8})
	if err := an.Rebind(bad); err == nil {
		t.Fatal("rebind accepted a space with the wrong original rank")
	}
}
