package cme

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/expr"
	"repro/internal/ir"
	"repro/internal/iterspace"
	"repro/internal/polyhedra"
	"repro/internal/reuse"
)

// EquationKind distinguishes the two CME families of §2.1.
type EquationKind int

const (
	// Compulsory equations describe the first time a memory line is
	// brought into the cache (the reuse source falls outside the
	// iteration space).
	Compulsory EquationKind = iota
	// Replacement equations describe interference: another reference
	// touches the same cache set between the reuse source and the reuse.
	Replacement
)

func (k EquationKind) String() string {
	if k == Replacement {
		return "replacement"
	}
	return "compulsory"
}

// Equation is one Cache Miss Equation: a polyhedron whose integer points
// are potential misses of reference Ref along reuse vector Vector.
//
// Variable layout of the system:
//   - compulsory: the iteration-point variables ī (space coordinates).
//   - replacement: ī, then the interfering point j (same count), then one
//     trailing "wrap" variable n from the modulo-cache-size linearisation
//     Mem_B(j) − Mem_A(ī) = n·CacheSize + b, |b| < LineSize.
//
// The lexicographic "j between ī−r and ī" condition is represented in its
// componentwise (bounding-box) relaxation, a standard simplification: the
// polyhedron is a superset of the exact miss set, so an EMPTY replacement
// polyhedron proves the reuse is realised. The exact per-point answer comes
// from the point solver (Analyzer.Classify).
type Equation struct {
	Kind       EquationKind
	Ref        int
	Vector     reuse.Vector
	Interferer int // replacement only; -1 otherwise
	// RegionA is the convex region of ī; RegionB the region of j
	// (replacement only, -1 otherwise). Untiled spaces have one region.
	RegionA, RegionB int
	System           *polyhedra.System
	VarNames         []string
}

func (e Equation) String() string {
	switch e.Kind {
	case Replacement:
		return fmt.Sprintf("replacement ref%d (vec %v) vs ref%d regions(%d,%d): %s",
			e.Ref, e.Vector.R, e.Interferer, e.RegionA, e.RegionB, e.System)
	default:
		return fmt.Sprintf("compulsory ref%d (vec %v) region %d: %s",
			e.Ref, e.Vector.R, e.RegionA, e.System)
	}
}

// Set is the full system of CMEs generated for a nest under one cache
// configuration and traversal space.
type Set struct {
	Nest        *ir.Nest
	Cache       cache.Config
	Vectors     []reuse.Vector
	Compulsory  []Equation
	Replacement []Equation
	NumRegions  int
}

// Generate produces the CMEs of an untiled rectangular nest: a single
// convex region (§2.1).
func Generate(nest *ir.Nest, cfg cache.Config) (*Set, error) {
	box, err := rectBox(nest)
	if err != nil {
		return nil, err
	}
	return generate(nest, cfg, box, nil)
}

// GenerateTiled produces the CMEs of the nest tiled with the given tile
// sizes: equations are emitted per convex region, so compulsory equations
// multiply by the region count n and replacement equations by n² (§2.4).
func GenerateTiled(nest *ir.Nest, cfg cache.Config, tile []int64) (*Set, error) {
	box, err := rectBox(nest)
	if err != nil {
		return nil, err
	}
	return generate(nest, cfg, box, iterspace.NewTiled(box, tile))
}

// rectBox extracts the rectangular bounds of an original nest.
func rectBox(nest *ir.Nest) (*iterspace.Box, error) {
	if !nest.IsRectangular() {
		return nil, fmt.Errorf("cme: nest %s is not rectangular", nest.Name)
	}
	lo := make([]int64, nest.Depth())
	hi := make([]int64, nest.Depth())
	for d, l := range nest.Loops {
		lo[d] = l.Lower.Eval(nil)
		hi[d] = l.Upper.Eval(nil)
	}
	return iterspace.NewBox(lo, hi), nil
}

func generate(nest *ir.Nest, cfg cache.Config, box *iterspace.Box, tiled *iterspace.Tiled) (*Set, error) {
	vectors := reuse.Compute(nest, cfg)
	k := nest.Depth()

	// Convex regions and their constraint builders.
	type regionCons struct {
		// add appends the region's constraints on a point whose
		// coordinates start at variable offset off in the system.
		add func(s *polyhedra.System, off int)
		n   int // number of point coordinates (k or 2k)
	}
	var regions []regionCons
	if tiled == nil {
		regions = []regionCons{{
			n: k,
			add: func(s *polyhedra.System, off int) {
				for d := 0; d < k; d++ {
					s.AddRange(off+d, box.Lo[d], box.Hi[d])
				}
			},
		}}
	} else {
		for _, reg := range tiled.Regions() {
			reg := reg
			regions = append(regions, regionCons{
				n: 2 * k,
				add: func(s *polyhedra.System, off int) {
					for d := 0; d < k; d++ {
						// Tile loop within the region's tile range.
						s.AddRange(off+d, reg.TileLo[d], reg.TileHi[d])
						// Element loop within its tile: ii ≤ i, and
						// i ≤ ii+T−1 for full tiles or i ≤ Hi for the
						// remainder tile.
						s.AddGE(expr.Var(off + k + d).Sub(expr.Var(off + d)))
						if reg.Remainder[d] {
							s.AddGE(expr.Term(off+k+d, -1, box.Hi[d]))
						} else {
							s.AddGE(expr.Var(off + d).Sub(expr.Var(off + k + d)).AddConst(tiled.Tile[d] - 1))
						}
					}
				},
			})
		}
	}

	set := &Set{Nest: nest, Cache: cfg, Vectors: vectors, NumRegions: len(regions)}
	coords := k
	if tiled != nil {
		coords = 2 * k
	}
	origOff := func(base int) int { // offset of original vars within a point block
		if tiled != nil {
			return base + k
		}
		return base
	}

	refInfos := make([]refInfo, len(nest.Refs))
	for i := range nest.Refs {
		ri, err := buildRefInfo(&nest.Refs[i], k)
		if err != nil {
			return nil, err
		}
		refInfos[i] = ri
	}
	// addrExpr builds the byte-address affine expression of ref at the
	// point block starting at variable offset base.
	addrExpr := func(ref int, base int) expr.Affine {
		e := expr.Const(refInfos[ref].base)
		for v, c := range refInfos[ref].coef {
			if c != 0 {
				e = e.Add(expr.Term(origOff(base)+v, c, 0))
			}
		}
		return e
	}

	// addrDelta returns the constant address distance between the access
	// of vec.Ref at ī and its reuse source at ī−r. It is constant because
	// group vectors require identical subscript linear parts.
	addrDelta := func(vec reuse.Vector) int64 {
		d := refInfos[vec.Ref].base - refInfos[vec.Source].base
		for v, c := range refInfos[vec.Source].coef {
			d += c * vec.R[v]
		}
		return d
	}

	for _, vec := range vectors {
		// --- Line-boundary equations (spatial vectors only): the source
		// access touches the previous/next memory line when a line
		// boundary falls between the two addresses. Folded into the
		// compulsory family — they describe reuse that is cold along
		// this vector. -----------------------------------------------------
		if vec.Kind == reuse.SelfSpatial || vec.Kind == reuse.GroupSpatial {
			delta := addrDelta(vec)
			if delta != 0 {
				for ra, reg := range regions {
					s := polyhedra.NewSystem(coords + 1)
					reg.add(s, 0)
					m := coords // boundary line index variable
					addr := addrExpr(vec.Ref, 0)
					if delta > 0 {
						// m·LS ∈ [addr−δ+1, addr]
						s.AddGE(expr.Term(m, cfg.LineSize, 0).Sub(addr).AddConst(delta - 1))
						s.AddGE(addr.Sub(expr.Term(m, cfg.LineSize, 0)))
					} else {
						// m·LS ∈ [addr+1, addr−δ]
						s.AddGE(expr.Term(m, cfg.LineSize, 0).Sub(addr).AddConst(-1))
						s.AddGE(addr.Sub(expr.Term(m, cfg.LineSize, 0)).AddConst(-delta))
					}
					set.Compulsory = append(set.Compulsory, Equation{
						Kind: Compulsory, Ref: vec.Ref, Vector: vec,
						Interferer: -1, RegionA: ra, RegionB: -1,
						System:   s,
						VarNames: append(varNames(nest, tiled, 1), "m"),
					})
				}
			}
		}

		// --- Compulsory equations: source point outside the space -------
		for ra, reg := range regions {
			for d := 0; d < k; d++ {
				if vec.R[d] == 0 {
					continue
				}
				s := polyhedra.NewSystem(coords)
				reg.add(s, 0)
				o := origOff(0)
				if vec.R[d] > 0 {
					// ī_d − r_d ≤ lo_d − 1
					s.AddGE(expr.Term(o+d, -1, box.Lo[d]-1+vec.R[d]))
				} else {
					// ī_d − r_d ≥ hi_d + 1
					s.AddGE(expr.Term(o+d, 1, -box.Hi[d]-1-vec.R[d]))
				}
				set.Compulsory = append(set.Compulsory, Equation{
					Kind: Compulsory, Ref: vec.Ref, Vector: vec,
					Interferer: -1, RegionA: ra, RegionB: -1,
					System:   s,
					VarNames: varNames(nest, tiled, 1),
				})
			}
		}

		// --- Replacement equations: per interfering reference, per
		// region pair ----------------------------------------------------
		for rb := range nest.Refs {
			for ra, regA := range regions {
				for rbg, regB := range regions {
					// A different memory line mapping to the same cache
					// set lies exactly n·CacheSize (n ≠ 0) away, up to the
					// intra-line offset b, |b| < LineSize. "n ≠ 0" is not
					// convex, so each pair expands into two equations:
					// n ≥ 1 and n ≤ −1.
					for _, nSign := range []int64{1, -1} {
						s := polyhedra.NewSystem(2*coords + 1)
						regA.add(s, 0)
						regB.add(s, coords)
						oi := origOff(0)
						oj := origOff(coords)
						nVar := 2 * coords
						// j within the convex hull of the lexicographic
						// segment (ī−r, ī]: dimensions before the leading
						// nonzero component of r are pinned to ī, the
						// leading dimension spans [ī_l − r_l, ī_l], and
						// inner dimensions sweep their full extent (their
						// box/region bounds are already present).
						lead := leadingDim(vec.R)
						for d := 0; d < k; d++ {
							switch {
							case lead < 0 || d < lead:
								s.AddEQ(expr.Var(oj + d).Sub(expr.Var(oi + d)))
							case d == lead:
								lo := expr.Var(oi + d).AddConst(-vec.R[d])
								s.AddGE(expr.Var(oj + d).Sub(lo))               // j ≥ ī−r
								s.AddGE(expr.Var(oi + d).Sub(expr.Var(oj + d))) // j ≤ ī
							}
						}
						// Same-set linearisation:
						// −(LS−1) ≤ addr_B(j) − addr_A(ī) − n·CacheSize ≤ LS−1.
						diff := addrExpr(rb, coords).Sub(addrExpr(vec.Ref, 0)).
							Sub(expr.Term(nVar, cfg.Size, 0))
						s.AddGE(diff.AddConst(cfg.LineSize - 1))
						s.AddGE(diff.Scale(-1).AddConst(cfg.LineSize - 1))
						if nSign > 0 {
							s.AddGE(expr.VarPlus(nVar, -1)) // n ≥ 1
						} else {
							s.AddGE(expr.Term(nVar, -1, -1)) // n ≤ −1
						}
						set.Replacement = append(set.Replacement, Equation{
							Kind: Replacement, Ref: vec.Ref, Vector: vec,
							Interferer: rb, RegionA: ra, RegionB: rbg,
							System:   s,
							VarNames: varNames(nest, tiled, 2),
						})
					}
				}
			}
		}
	}
	return set, nil
}

// varNames builds diagnostic variable names for 1 or 2 point blocks (the
// second block prefixed j_) plus the wrap variable for replacement systems.
func varNames(nest *ir.Nest, tiled *iterspace.Tiled, blocks int) []string {
	var base []string
	if tiled != nil {
		for _, l := range nest.Loops {
			base = append(base, l.Var+l.Var) // ii, jj, ...
		}
	}
	for _, l := range nest.Loops {
		base = append(base, l.Var)
	}
	names := append([]string(nil), base...)
	if blocks == 2 {
		for _, b := range base {
			names = append(names, "j_"+b)
		}
		names = append(names, "n")
	}
	return names
}

// PotentialMiss reports whether iteration point ī (space coordinates) is a
// potential miss of reference ref according to the generated equations:
// following §2.2, the point is a potential miss if for EVERY reuse vector
// of the reference, substituting ī leaves some equation polyhedron
// non-empty (the reuse is cold or potentially interfered with).
func (set *Set) PotentialMiss(point []int64, ref int) bool {
	hasVector := false
	for _, vec := range set.Vectors {
		if vec.Ref != ref {
			continue
		}
		hasVector = true
		if !set.potentialMissAlong(point, vec) {
			return false // this reuse is provably realised: a hit
		}
	}
	// All vectors remain potentially missing (or there is no reuse at
	// all): the point is a potential miss.
	_ = hasVector
	return true
}

// ProvablyHit reports whether the equations prove the access at ī by ref
// is a hit: some reuse vector's equations are all empty after substituting
// ī (the source exists, no line boundary is crossed, and no interference
// polyhedron is feasible). Because every polyhedron over-approximates its
// miss condition, this is a sound hit proof — validated against the exact
// point solver in tests.
func (set *Set) ProvablyHit(point []int64, ref int) bool {
	return !set.PotentialMiss(point, ref)
}

// potentialMissAlong checks whether any equation of (ref, vector) remains
// feasible after substituting the iteration point.
func (set *Set) potentialMissAlong(point []int64, vec reuse.Vector) bool {
	for _, eq := range set.Compulsory {
		if eq.Ref != vec.Ref || !sameVec(eq.Vector.R, vec.R) || eq.Vector.Source != vec.Source {
			continue
		}
		if feasibleAfterPoint(eq.System, point) {
			return true
		}
	}
	for _, eq := range set.Replacement {
		if eq.Ref != vec.Ref || !sameVec(eq.Vector.R, vec.R) || eq.Vector.Source != vec.Source {
			continue
		}
		if feasibleAfterPoint(eq.System, point) {
			return true
		}
	}
	return false
}

func feasibleAfterPoint(s *polyhedra.System, point []int64) bool {
	sub := s
	for d, v := range point {
		sub = sub.Substitute(d, v)
	}
	return !sub.IsEmpty()
}

// CountPotentialMisses implements the paper's first solution method (§2.2,
// "Solver") for small spaces: enumerate the iteration points and count,
// per reference, those inside Set_Misses = ∩ over reuse vectors of the
// union of that vector's equation polyhedra. The counts over-approximate
// the exact miss counts (every polyhedron over-approximates its miss
// condition), which the tests verify against the point solver. It refuses
// spaces larger than limit points.
func (set *Set) CountPotentialMisses(box *iterspace.Box, limit uint64) ([]uint64, error) {
	if box.Count() > limit {
		return nil, fmt.Errorf("cme: %d points exceed limit %d", box.Count(), limit)
	}
	counts := make([]uint64, len(set.Nest.Refs))
	p := make([]int64, box.NumCoords())
	box.First(p)
	for {
		for r := range set.Nest.Refs {
			if set.PotentialMiss(p, r) {
				counts[r]++
			}
		}
		if !box.Next(p) {
			break
		}
	}
	return counts, nil
}

// leadingDim returns the index of the first nonzero component of r, or -1
// for the zero vector (same-iteration group reuse).
func leadingDim(r []int64) int {
	for d, v := range r {
		if v != 0 {
			return d
		}
	}
	return -1
}

func sameVec(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
