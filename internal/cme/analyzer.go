// Package cme implements Cache Miss Equations (Ghosh, Martonosi & Malik)
// as used by the paper: an exact analytical model of cache behaviour for
// perfectly nested affine loops.
//
// The package has two layers:
//
//   - The point solver (this file): the paper's "traversing the iteration
//     space" solution method (§2.2–2.3). For one iteration point and one
//     reference it decides hit / compulsory miss / replacement miss exactly
//     for a k-way LRU cache, in expected O(assoc·sets/refs) time per point
//     independent of problem size. Combined with simple random sampling
//     (internal/sampling) this is the fast CME solver the paper builds.
//
//   - The symbolic equation generator (gen.go): the diophantine
//     equalities/inequalities themselves — compulsory and replacement
//     equations per reference × reuse vector × convex region (§2.1, §2.4) —
//     materialised as polyhedra for inspection, reporting and the ×n / ×n²
//     region-count accounting.
//
// The point solver is validated access-for-access against the trace-driven
// simulator (internal/cachesim) in this package's tests, and the optimized
// interference walk is validated outcome-for-outcome against the retained
// reference walk (ClassifyReference) over randomized kernels.
package cme

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/ir"
	"repro/internal/iterspace"
)

// refInfo is the precomputed address function of one reference:
// addr(v) = base + Σ coef[d]·v[d] over original loop variables, in bytes.
// coefCoord is the same function re-expressed over the SPACE COORDINATES
// (zero for tile coordinates), so the interference walk evaluates
// addresses directly on space points without extracting original
// variables.
type refInfo struct {
	base      int64
	coef      []int64
	coefCoord []int64
	// inv[d] describes how to recover original variable values from array
	// subscripts (see firstaccess.go).
	inv []subInv
}

// subInv is the inversion info of one array subscript of the form
// coef·v_var + cst (or a constant when var < 0).
type subInv struct {
	varIdx int // original variable index, -1 for constant subscripts
	coef   int64
	cst    int64
}

// coordRef links one space coordinate to a reference whose address depends
// on it — the transpose of the nonzero coefCoord entries. The interference
// walk applies coef·Δcoord to the reference's live address whenever the
// coordinate changes, so one backward step costs O(changed coordinates)
// instead of O(references × coordinates).
type coordRef struct {
	ref  int
	coef int64
}

// Analyzer decides per-access cache outcomes for a loop nest traversed in
// the order of a given iteration space. The nest's references must use
// subscripts of the form c or ±a·v + c (single loop variable per
// subscript), which covers every kernel in the paper's Table 1.
//
// An Analyzer is not safe for concurrent use; Clone one per goroutine.
// Rebind repoints an analyzer at a new traversal space without
// reallocating, which is how the search evaluators recycle analyzers
// across GA candidates.
type Analyzer struct {
	nest  *ir.Nest
	space iterspace.Space
	cfg   cache.Config
	nsets int64 // cfg.NumSets(), hoisted off the walk's hot path
	// lineShift/setMask exploit the validated power-of-two geometry:
	// for non-negative addresses addr>>lineShift == addr/LineSize and
	// ql&setMask == ql%NumSets exactly, so the walk's inner loop avoids
	// two integer divisions per probe. Negative addresses (possible only
	// with exotic array bases) take the exact div/mod path instead.
	lineShift uint
	setMask   int64

	refs   []refInfo
	arrays map[*ir.Array]*arrInfo
	// coordRefs[c] lists the references whose address depends on space
	// coordinate c (rebuilt on every Rebind).
	coordRefs [][]coordRef

	// Scratch buffers.
	walkPoint []int64
	prevPoint []int64
	liveAddr  []int64 // per-reference address at walkPoint
	conflicts []int64
	pinned    []int64
	minPoint  []int64
	subsBuf   []int64
	walkCap   uint64
	capHits   uint64

	// Walk-cost accounting: total backward-walk steps and classified
	// accesses, for verifying the expected O(assoc·sets/refs) bound.
	walkSteps  uint64
	classified uint64

	// workers caches the per-goroutine clones WorkerPool hands out, so a
	// search's repeated parallel evaluations reuse the same clones
	// (rebound per space) instead of re-cloning every call. pointBuf is
	// the caller-side point scratch PointScratch returns. Neither is
	// inherited by clones.
	workers  []*Analyzer
	pointBuf []int64
}

// DefaultWalkCap bounds the backward interference walk as a safety net; it
// is high enough that no kernel in the suite reaches it with a resolvable
// reuse, and the analyzer falls back to classifying the access as a
// replacement miss when it trips (recorded in CapHits).
const DefaultWalkCap = 1 << 22

// NewAnalyzer builds an analyzer for nest traversed in space order under
// the cache configuration cfg. The nest must be the ORIGINAL nest (its
// references written over original loop variables); space supplies the
// (possibly tiled) traversal order.
func NewAnalyzer(nest *ir.Nest, space iterspace.Space, cfg cache.Config) (*Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := nest.Validate(); err != nil {
		return nil, err
	}
	a := &Analyzer{
		nest:      nest,
		cfg:       cfg,
		nsets:     cfg.NumSets(),
		lineShift: uint(bits.TrailingZeros64(uint64(cfg.LineSize))),
		setMask:   cfg.NumSets() - 1,
		refs:      make([]refInfo, len(nest.Refs)),
		conflicts: make([]int64, 0, cfg.Assoc),
		pinned:    make([]int64, nest.Depth()),
		walkCap:   DefaultWalkCap,
	}
	a.arrays = make(map[*ir.Array]*arrInfo)
	maxRank := 0
	for i := range nest.Refs {
		ri, err := buildRefInfo(&nest.Refs[i], nest.Depth())
		if err != nil {
			return nil, fmt.Errorf("cme: ref %d (%s): %w", i, nest.Refs[i].String(), err)
		}
		a.refs[i] = ri
		arr := nest.Refs[i].Array
		if _, ok := a.arrays[arr]; !ok {
			a.arrays[arr] = newArrInfo(arr)
		}
		if r := arr.Rank(); r > maxRank {
			maxRank = r
		}
	}
	a.subsBuf = make([]int64, maxRank)
	if err := a.bindSpace(space); err != nil {
		return nil, err
	}
	return a, nil
}

// bindSpace points the analyzer at a traversal space, (re)building every
// space-dependent structure: the per-coordinate address coefficients, their
// transpose used by the incremental walk, and the point-sized scratch
// buffers. Existing buffers are reused whenever they are large enough, so
// rebinding an analyzer between same-shape spaces allocates nothing.
func (a *Analyzer) bindSpace(space iterspace.Space) error {
	if space.OrigDims() != a.nest.Depth() {
		return fmt.Errorf("cme: space has %d original dims, nest depth %d", space.OrigDims(), a.nest.Depth())
	}
	a.space = space
	nc := space.NumCoords()
	a.walkPoint = resizeInt64(a.walkPoint, nc)
	a.prevPoint = resizeInt64(a.prevPoint, nc)
	a.minPoint = resizeInt64(a.minPoint, nc)
	a.liveAddr = resizeInt64(a.liveAddr, len(a.refs))
	if cap(a.coordRefs) >= nc {
		a.coordRefs = a.coordRefs[:nc]
	} else {
		a.coordRefs = make([][]coordRef, nc)
	}
	for c := range a.coordRefs {
		a.coordRefs[c] = a.coordRefs[c][:0]
	}
	origMap := space.OrigMap()
	for i := range a.refs {
		ri := &a.refs[i]
		ri.coefCoord = resizeInt64(ri.coefCoord, nc)
		for c := range ri.coefCoord {
			ri.coefCoord[c] = 0
		}
		for c, d := range origMap {
			if d >= 0 {
				ri.coefCoord[c] = ri.coef[d]
			}
		}
		for c, co := range ri.coefCoord {
			if co != 0 {
				a.coordRefs[c] = append(a.coordRefs[c], coordRef{ref: i, coef: co})
			}
		}
	}
	return nil
}

// resizeInt64 returns a slice of length n, reusing s's backing array when
// it is large enough.
func resizeInt64(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}

// Rebind repoints the analyzer at a new traversal space over the same nest
// and cache configuration, reusing every internal buffer — the
// allocation-free path search evaluators use to recycle analyzers across
// candidate tilings instead of paying NewAnalyzer per evaluation. The
// walk accounting (WalkStats, CapHits) restarts from zero.
func (a *Analyzer) Rebind(space iterspace.Space) error {
	if err := a.bindSpace(space); err != nil {
		return err
	}
	a.walkSteps, a.classified, a.capHits = 0, 0, 0
	return nil
}

// Clone returns an independent analyzer sharing the immutable nest/space.
// The clone's accounting (WalkStats, CapHits) starts at zero: counters
// describe the work an analyzer itself performed, so per-worker clones
// aggregate without double-counting the parent's history.
func (a *Analyzer) Clone() *Analyzer {
	out := *a
	// Space-independent immutable state (nest, arrays, each ref's coef and
	// inv) is shared; every mutable buffer is re-created so the clone is
	// fully independent of the parent, including under a later Rebind of
	// either.
	out.refs = make([]refInfo, len(a.refs))
	copy(out.refs, a.refs)
	for i := range out.refs {
		out.refs[i].coefCoord = nil
	}
	out.conflicts = make([]int64, 0, cap(a.conflicts))
	out.pinned = make([]int64, len(a.pinned))
	out.subsBuf = make([]int64, len(a.subsBuf))
	out.walkPoint, out.prevPoint, out.minPoint, out.liveAddr, out.coordRefs = nil, nil, nil, nil, nil
	out.workers, out.pointBuf = nil, nil
	if err := out.bindSpace(a.space); err != nil {
		// a.space was accepted when the parent bound it.
		panic("cme: clone rebind failed: " + err.Error())
	}
	out.walkSteps, out.classified, out.capHits = 0, 0, 0
	return &out
}

// WorkerPool returns n analyzers over a's nest and space — a itself plus
// n-1 cached clones — for one parallel evaluation (one analyzer per
// goroutine). The clones persist on a across calls: the first call pays
// Clone, later calls only Rebind clones whose space drifted from a's
// (Rebind after a pool call repoints only a, not the cached clones), so
// a search's steady state evaluates with zero clone allocations. The
// returned slice is valid until the next WorkerPool call.
func (a *Analyzer) WorkerPool(n int) []*Analyzer {
	if n < 1 {
		n = 1
	}
	if a.workers == nil {
		a.workers = make([]*Analyzer, 1, n)
		a.workers[0] = a
	}
	for len(a.workers) < n {
		a.workers = append(a.workers, a.Clone())
	}
	pool := a.workers[:n]
	for _, w := range pool[1:] {
		if w.space != a.space {
			if err := w.Rebind(a.space); err != nil {
				// a.space was accepted when a bound it.
				panic("cme: worker rebind failed: " + err.Error())
			}
		}
	}
	return pool
}

// PointScratch returns a caller-owned scratch point sized to the bound
// space's coordinate count, reused across calls. Classification loops use
// it to translate sampled points without a per-batch allocation; it is
// independent of the walk's internal buffers.
func (a *Analyzer) PointScratch() []int64 {
	a.pointBuf = resizeInt64(a.pointBuf, a.space.NumCoords())
	return a.pointBuf
}

// Space returns the traversal space.
func (a *Analyzer) Space() iterspace.Space { return a.space }

// Nest returns the analyzed nest.
func (a *Analyzer) Nest() *ir.Nest { return a.nest }

// Config returns the cache configuration.
func (a *Analyzer) Config() cache.Config { return a.cfg }

// CapHits reports how many classifications tripped the walk cap (0 in all
// normal operation).
func (a *Analyzer) CapHits() uint64 { return a.capHits }

// WalkStats reports the cumulative backward-walk steps and the number of
// classified accesses — the empirical cost of the point solver. The
// expected steps per access is O(assoc · sets / references-per-iteration),
// independent of problem size (checked in tests).
func (a *Analyzer) WalkStats() (steps, accesses uint64) {
	return a.walkSteps, a.classified
}

// WalkCounts is the WalkStats/CapHits triple as a value, so callers can
// snapshot an analyzer before and after a batch and report the delta even
// when Rebind (which zeroes the accounting) happens in between.
type WalkCounts struct {
	Steps      uint64
	Classified uint64
	CapHits    uint64
}

// WalkCounts returns the analyzer's cumulative walk accounting.
func (a *Analyzer) WalkCounts() WalkCounts {
	return WalkCounts{Steps: a.walkSteps, Classified: a.classified, CapHits: a.capHits}
}

// Plus returns the fieldwise sum w + o.
func (w WalkCounts) Plus(o WalkCounts) WalkCounts {
	return WalkCounts{w.Steps + o.Steps, w.Classified + o.Classified, w.CapHits + o.CapHits}
}

// Sub returns the fieldwise difference w - o (a delta since a snapshot).
func (w WalkCounts) Sub(o WalkCounts) WalkCounts {
	return WalkCounts{w.Steps - o.Steps, w.Classified - o.Classified, w.CapHits - o.CapHits}
}

func buildRefInfo(r *ir.Ref, depth int) (refInfo, error) {
	strides := r.Array.Strides()
	info := refInfo{
		base: r.Array.Base + r.Array.BasePad,
		coef: make([]int64, depth),
		inv:  make([]subInv, len(r.Subs)),
	}
	for d, sub := range r.Subs {
		idx, coef, single := sub.SingleVar()
		switch {
		case sub.IsConst():
			info.inv[d] = subInv{varIdx: -1, cst: sub.Const}
		case single:
			info.inv[d] = subInv{varIdx: idx, coef: coef, cst: sub.Const}
		default:
			return refInfo{}, fmt.Errorf("subscript %d is multi-variable (%s); not supported", d, sub)
		}
		info.base += (sub.Const - 1) * strides[d] * r.Array.Elem
		for v := 0; v < depth; v++ {
			info.coef[v] += sub.Coeff(v) * strides[d] * r.Array.Elem
		}
	}
	return info, nil
}

// addrAt computes the byte address reference refIdx touches at the given
// space point.
func (a *Analyzer) addrAt(point []int64, refIdx int) int64 {
	ri := &a.refs[refIdx]
	addr := ri.base
	for c, co := range ri.coefCoord {
		if co != 0 {
			addr += co * point[c]
		}
	}
	return addr
}

// Classify decides the outcome of the access performed by reference refIdx
// at space point p. It is exact for LRU caches of the configured geometry.
func (a *Analyzer) Classify(p []int64, refIdx int) cachesim.Outcome {
	a.classified++
	addr := a.addrAt(p, refIdx)
	line := a.cfg.LineOf(addr)

	if a.isFirstAccess(p, refIdx, line) {
		return cachesim.CompulsoryMiss
	}
	if a.cfg.Assoc == 1 {
		return a.walkDirect(p, refIdx, line)
	}
	return a.walkAssoc(p, refIdx, line)
}

// startWalk primes the backward interference walk at p: walkPoint holds
// the current point and liveAddr the address every reference touches
// there. From here stepBack maintains the addresses incrementally.
func (a *Analyzer) startWalk(p []int64) {
	copy(a.walkPoint, p)
	for r := range a.refs {
		a.liveAddr[r] = a.addrAt(p, r)
	}
}

// stepBack moves the walk one iteration point earlier and updates the live
// addresses incrementally: space.Prev typically changes one or two
// coordinates, and only the references depending on a changed coordinate
// are touched — O(changed coords) work instead of recomputing every
// reference's full affine address.
func (a *Analyzer) stepBack() bool {
	cur := a.walkPoint
	copy(a.prevPoint, cur)
	if !a.space.Prev(cur) {
		return false
	}
	for c, v := range cur {
		if d := v - a.prevPoint[c]; d != 0 {
			for _, cr := range a.coordRefs[c] {
				a.liveAddr[cr.ref] += cr.coef * d
			}
		}
	}
	return true
}

// walkDirect is the direct-mapped (assoc = 1) fast path of the backward
// interference walk: with a single way per set, the first other line
// landing in the target set evicts the reuse source, so no conflict list
// is kept at all — the walk is a pure scan over live addresses.
func (a *Analyzer) walkDirect(p []int64, refIdx int, line int64) cachesim.Outcome {
	set := a.cfg.SetOfLine(line)
	a.startWalk(p)
	lineSize, nsets := a.cfg.LineSize, a.nsets
	lineShift, setMask := a.lineShift, a.setMask
	live := a.liveAddr
	walkCap := a.walkCap
	ref := refIdx
	var steps uint64
	for {
		ref--
		if ref < 0 {
			if !a.stepBack() {
				// No earlier access to the line exists, contradicting the
				// first-access test: unreachable by construction.
				panic("cme: walked past the start of a non-compulsory access")
			}
			ref = len(a.refs) - 1
		}
		if q := live[ref]; q >= 0 {
			ql := q >> lineShift
			if ql == line {
				a.walkSteps += steps
				return cachesim.Hit
			}
			if ql&setMask == set {
				a.walkSteps += steps
				return cachesim.ReplacementMiss
			}
		} else {
			ql := q / lineSize
			if ql == line {
				a.walkSteps += steps
				return cachesim.Hit
			}
			if ql%nsets == set {
				a.walkSteps += steps
				return cachesim.ReplacementMiss
			}
		}
		steps++
		if steps >= walkCap {
			a.walkSteps += steps
			a.capHits++
			return cachesim.ReplacementMiss
		}
	}
}

// walkAssoc is the k-way walk: scan accesses in reverse execution order
// until we meet the previous access to this line. The line is still
// resident iff fewer than `assoc` distinct other lines mapping to the same
// set were touched in between (the LRU stack property). Addresses come
// from the incrementally maintained liveAddr.
func (a *Analyzer) walkAssoc(p []int64, refIdx int, line int64) cachesim.Outcome {
	set := a.cfg.SetOfLine(line)
	a.startWalk(p)
	conflicts := a.conflicts[:0]
	lineSize, nsets := a.cfg.LineSize, a.nsets
	lineShift, setMask := a.lineShift, a.setMask
	live := a.liveAddr
	walkCap := a.walkCap
	assoc := a.cfg.Assoc
	ref := refIdx
	var steps uint64
	for {
		ref--
		if ref < 0 {
			if !a.stepBack() {
				panic("cme: walked past the start of a non-compulsory access")
			}
			ref = len(a.refs) - 1
		}
		var ql int64
		var sameSet bool
		if q := live[ref]; q >= 0 {
			ql = q >> lineShift
			sameSet = ql&setMask == set
		} else {
			ql = q / lineSize
			sameSet = ql%nsets == set
		}
		if ql == line {
			a.walkSteps += steps
			if len(conflicts) < assoc {
				return cachesim.Hit
			}
			return cachesim.ReplacementMiss
		}
		if sameSet {
			known := false
			for _, c := range conflicts {
				if c == ql {
					known = true
					break
				}
			}
			if !known {
				conflicts = append(conflicts, ql)
				if len(conflicts) >= assoc {
					a.walkSteps += steps
					return cachesim.ReplacementMiss
				}
			}
		}
		steps++
		if steps >= walkCap {
			a.walkSteps += steps
			a.capHits++
			return cachesim.ReplacementMiss
		}
	}
}

// ClassifyReference is the retained pre-optimization interference walk: it
// recomputes every reference's full affine address at every backward step
// instead of maintaining live addresses incrementally, and runs the
// general k-way path even for direct-mapped caches. It classifies exactly
// like Classify and exists as the behavioural oracle for the differential
// tests and the BenchmarkClassify baseline; production paths always use
// Classify.
func (a *Analyzer) ClassifyReference(p []int64, refIdx int) cachesim.Outcome {
	a.classified++
	addr := a.addrAt(p, refIdx)
	line := a.cfg.LineOf(addr)
	set := a.cfg.SetOfLine(line)

	if a.isFirstAccess(p, refIdx, line) {
		return cachesim.CompulsoryMiss
	}

	cur := a.walkPoint
	copy(cur, p)
	ref := refIdx
	a.conflicts = a.conflicts[:0]
	assoc := a.cfg.Assoc
	var steps uint64
	for {
		ref--
		if ref < 0 {
			if !a.space.Prev(cur) {
				panic("cme: walked past the start of a non-compulsory access")
			}
			ref = len(a.refs) - 1
		}
		q := a.addrAt(cur, ref)
		ql := a.cfg.LineOf(q)
		if ql == line {
			if len(a.conflicts) < assoc {
				return cachesim.Hit
			}
			return cachesim.ReplacementMiss
		}
		if a.cfg.SetOfLine(ql) == set {
			known := false
			for _, c := range a.conflicts {
				if c == ql {
					known = true
					break
				}
			}
			if !known {
				a.conflicts = append(a.conflicts, ql)
				if len(a.conflicts) >= assoc {
					return cachesim.ReplacementMiss
				}
			}
		}
		steps++
		a.walkSteps++
		if steps >= a.walkCap {
			a.capHits++
			return cachesim.ReplacementMiss
		}
	}
}

// ClassifyAll classifies every reference at point p, accumulating into st.
func (a *Analyzer) ClassifyAll(p []int64, st *cachesim.Stats) {
	for r := range a.refs {
		st.Accesses++
		switch a.Classify(p, r) {
		case cachesim.Hit:
			st.Hits++
		case cachesim.CompulsoryMiss:
			st.Compulsory++
		case cachesim.ReplacementMiss:
			st.Replacement++
		}
	}
}

// ExhaustiveStats classifies every access of the space (small spaces only)
// and returns the aggregate statistics. This is the exact CME solution of
// the whole iteration space.
func (a *Analyzer) ExhaustiveStats() cachesim.Stats {
	var st cachesim.Stats
	p := make([]int64, a.space.NumCoords())
	if !a.space.First(p) {
		return st
	}
	for {
		a.ClassifyAll(p, &st)
		if !a.space.Next(p) {
			break
		}
	}
	return st
}
