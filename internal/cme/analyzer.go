// Package cme implements Cache Miss Equations (Ghosh, Martonosi & Malik)
// as used by the paper: an exact analytical model of cache behaviour for
// perfectly nested affine loops.
//
// The package has two layers:
//
//   - The point solver (this file): the paper's "traversing the iteration
//     space" solution method (§2.2–2.3). For one iteration point and one
//     reference it decides hit / compulsory miss / replacement miss exactly
//     for a k-way LRU cache, in expected O(assoc·sets/refs) time per point
//     independent of problem size. Combined with simple random sampling
//     (internal/sampling) this is the fast CME solver the paper builds.
//
//   - The symbolic equation generator (gen.go): the diophantine
//     equalities/inequalities themselves — compulsory and replacement
//     equations per reference × reuse vector × convex region (§2.1, §2.4) —
//     materialised as polyhedra for inspection, reporting and the ×n / ×n²
//     region-count accounting.
//
// The point solver is validated access-for-access against the trace-driven
// simulator (internal/cachesim) in this package's tests.
package cme

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/ir"
	"repro/internal/iterspace"
)

// refInfo is the precomputed address function of one reference:
// addr(v) = base + Σ coef[d]·v[d] over original loop variables, in bytes.
// coefCoord is the same function re-expressed over the SPACE COORDINATES
// (zero for tile coordinates), so the interference walk evaluates
// addresses directly on space points without extracting original
// variables.
type refInfo struct {
	base      int64
	coef      []int64
	coefCoord []int64
	// inv[d] describes how to recover original variable values from array
	// subscripts (see firstaccess.go).
	inv []subInv
}

// subInv is the inversion info of one array subscript of the form
// coef·v_var + cst (or a constant when var < 0).
type subInv struct {
	varIdx int // original variable index, -1 for constant subscripts
	coef   int64
	cst    int64
}

// Analyzer decides per-access cache outcomes for a loop nest traversed in
// the order of a given iteration space. The nest's references must use
// subscripts of the form c or ±a·v + c (single loop variable per
// subscript), which covers every kernel in the paper's Table 1.
//
// An Analyzer is not safe for concurrent use; Clone one per goroutine.
type Analyzer struct {
	nest  *ir.Nest
	space iterspace.Space
	cfg   cache.Config

	refs   []refInfo
	arrays map[*ir.Array]*arrInfo

	// Scratch buffers.
	walkPoint []int64
	conflicts []int64
	pinned    []int64
	minPoint  []int64
	subsBuf   []int64
	walkCap   uint64
	capHits   uint64

	// Walk-cost accounting: total backward-walk steps and classified
	// accesses, for verifying the expected O(assoc·sets/refs) bound.
	walkSteps  uint64
	classified uint64
}

// DefaultWalkCap bounds the backward interference walk as a safety net; it
// is high enough that no kernel in the suite reaches it with a resolvable
// reuse, and the analyzer falls back to classifying the access as a
// replacement miss when it trips (recorded in CapHits).
const DefaultWalkCap = 1 << 22

// NewAnalyzer builds an analyzer for nest traversed in space order under
// the cache configuration cfg. The nest must be the ORIGINAL nest (its
// references written over original loop variables); space supplies the
// (possibly tiled) traversal order.
func NewAnalyzer(nest *ir.Nest, space iterspace.Space, cfg cache.Config) (*Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := nest.Validate(); err != nil {
		return nil, err
	}
	if space.OrigDims() != nest.Depth() {
		return nil, fmt.Errorf("cme: space has %d original dims, nest depth %d", space.OrigDims(), nest.Depth())
	}
	a := &Analyzer{
		nest:      nest,
		space:     space,
		cfg:       cfg,
		refs:      make([]refInfo, len(nest.Refs)),
		walkPoint: make([]int64, space.NumCoords()),
		conflicts: make([]int64, 0, cfg.Assoc),
		pinned:    make([]int64, nest.Depth()),
		minPoint:  make([]int64, space.NumCoords()),
		walkCap:   DefaultWalkCap,
	}
	a.arrays = make(map[*ir.Array]*arrInfo)
	origMap := space.OrigMap()
	maxRank := 0
	for i := range nest.Refs {
		ri, err := buildRefInfo(&nest.Refs[i], nest.Depth())
		if err != nil {
			return nil, fmt.Errorf("cme: ref %d (%s): %w", i, nest.Refs[i].String(), err)
		}
		ri.coefCoord = make([]int64, space.NumCoords())
		for c, d := range origMap {
			if d >= 0 {
				ri.coefCoord[c] = ri.coef[d]
			}
		}
		a.refs[i] = ri
		arr := nest.Refs[i].Array
		if _, ok := a.arrays[arr]; !ok {
			a.arrays[arr] = newArrInfo(arr)
		}
		if r := arr.Rank(); r > maxRank {
			maxRank = r
		}
	}
	a.subsBuf = make([]int64, maxRank)
	return a, nil
}

// Clone returns an independent analyzer sharing the immutable nest/space.
func (a *Analyzer) Clone() *Analyzer {
	out := *a
	out.walkPoint = make([]int64, len(a.walkPoint))
	out.conflicts = make([]int64, 0, cap(a.conflicts))
	out.pinned = make([]int64, len(a.pinned))
	out.minPoint = make([]int64, len(a.minPoint))
	out.subsBuf = make([]int64, len(a.subsBuf))
	out.capHits = 0
	return &out
}

// Space returns the traversal space.
func (a *Analyzer) Space() iterspace.Space { return a.space }

// Nest returns the analyzed nest.
func (a *Analyzer) Nest() *ir.Nest { return a.nest }

// Config returns the cache configuration.
func (a *Analyzer) Config() cache.Config { return a.cfg }

// CapHits reports how many classifications tripped the walk cap (0 in all
// normal operation).
func (a *Analyzer) CapHits() uint64 { return a.capHits }

// WalkStats reports the cumulative backward-walk steps and the number of
// classified accesses — the empirical cost of the point solver. The
// expected steps per access is O(assoc · sets / references-per-iteration),
// independent of problem size (checked in tests).
func (a *Analyzer) WalkStats() (steps, accesses uint64) {
	return a.walkSteps, a.classified
}

func buildRefInfo(r *ir.Ref, depth int) (refInfo, error) {
	strides := r.Array.Strides()
	info := refInfo{
		base: r.Array.Base + r.Array.BasePad,
		coef: make([]int64, depth),
		inv:  make([]subInv, len(r.Subs)),
	}
	for d, sub := range r.Subs {
		idx, coef, single := sub.SingleVar()
		switch {
		case sub.IsConst():
			info.inv[d] = subInv{varIdx: -1, cst: sub.Const}
		case single:
			info.inv[d] = subInv{varIdx: idx, coef: coef, cst: sub.Const}
		default:
			return refInfo{}, fmt.Errorf("subscript %d is multi-variable (%s); not supported", d, sub)
		}
		info.base += (sub.Const - 1) * strides[d] * r.Array.Elem
		for v := 0; v < depth; v++ {
			info.coef[v] += sub.Coeff(v) * strides[d] * r.Array.Elem
		}
	}
	return info, nil
}

// addrAt computes the byte address reference refIdx touches at the given
// space point.
func (a *Analyzer) addrAt(point []int64, refIdx int) int64 {
	ri := &a.refs[refIdx]
	addr := ri.base
	for c, co := range ri.coefCoord {
		if co != 0 {
			addr += co * point[c]
		}
	}
	return addr
}

// Classify decides the outcome of the access performed by reference refIdx
// at space point p. It is exact for LRU caches of the configured geometry.
func (a *Analyzer) Classify(p []int64, refIdx int) cachesim.Outcome {
	a.classified++
	addr := a.addrAt(p, refIdx)
	line := a.cfg.LineOf(addr)
	set := a.cfg.SetOfLine(line)

	if a.isFirstAccess(p, refIdx, line) {
		return cachesim.CompulsoryMiss
	}

	// Backward interference walk: scan accesses in reverse execution
	// order until we meet the previous access to this line. The line is
	// still resident iff fewer than `assoc` distinct other lines mapping
	// to the same set were touched in between (the LRU stack property).
	cur := a.walkPoint
	copy(cur, p)
	ref := refIdx
	a.conflicts = a.conflicts[:0]
	assoc := a.cfg.Assoc
	var steps uint64
	for {
		ref--
		if ref < 0 {
			if !a.space.Prev(cur) {
				// No earlier access to the line exists, contradicting the
				// first-access test: unreachable by construction.
				panic("cme: walked past the start of a non-compulsory access")
			}
			ref = len(a.refs) - 1
		}
		q := a.addrAt(cur, ref)
		ql := a.cfg.LineOf(q)
		if ql == line {
			if len(a.conflicts) < assoc {
				return cachesim.Hit
			}
			return cachesim.ReplacementMiss
		}
		if a.cfg.SetOfLine(ql) == set {
			known := false
			for _, c := range a.conflicts {
				if c == ql {
					known = true
					break
				}
			}
			if !known {
				a.conflicts = append(a.conflicts, ql)
				if len(a.conflicts) >= assoc {
					return cachesim.ReplacementMiss
				}
			}
		}
		steps++
		a.walkSteps++
		if steps >= a.walkCap {
			a.capHits++
			return cachesim.ReplacementMiss
		}
	}
}

// ClassifyAll classifies every reference at point p, accumulating into st.
func (a *Analyzer) ClassifyAll(p []int64, st *cachesim.Stats) {
	for r := range a.refs {
		st.Accesses++
		switch a.Classify(p, r) {
		case cachesim.Hit:
			st.Hits++
		case cachesim.CompulsoryMiss:
			st.Compulsory++
		case cachesim.ReplacementMiss:
			st.Replacement++
		}
	}
}

// ExhaustiveStats classifies every access of the space (small spaces only)
// and returns the aggregate statistics. This is the exact CME solution of
// the whole iteration space.
func (a *Analyzer) ExhaustiveStats() cachesim.Stats {
	var st cachesim.Stats
	p := make([]int64, a.space.NumCoords())
	if !a.space.First(p) {
		return st
	}
	for {
		a.ClassifyAll(p, &st)
		if !a.space.Next(p) {
			break
		}
	}
	return st
}
