package cme

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/ir"
	"repro/internal/iterspace"
)

func TestGenerateCounts(t *testing.T) {
	nest := mmNest(8)
	cfg := cache.Config{Size: 512, LineSize: 32, Assoc: 1}
	set, err := Generate(nest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if set.NumRegions != 1 {
		t.Fatalf("untiled regions = %d", set.NumRegions)
	}
	if len(set.Vectors) == 0 {
		t.Fatal("no reuse vectors")
	}
	// One replacement equation per (vector, interfering ref, region²).
	if want := 2 * len(set.Vectors) * len(nest.Refs); len(set.Replacement) != want {
		t.Fatalf("replacement equations = %d, want %d", len(set.Replacement), want)
	}
	// Compulsory: per vector, one piece per nonzero vector component plus
	// one boundary equation for spatial vectors with nonzero delta.
	if len(set.Compulsory) == 0 {
		t.Fatal("no compulsory equations")
	}
	for _, eq := range set.Compulsory {
		if eq.Kind != Compulsory || eq.Interferer != -1 || eq.RegionA != 0 {
			t.Fatalf("malformed compulsory equation %+v", eq)
		}
	}
	for _, eq := range set.Replacement {
		if eq.Kind != Replacement || eq.Interferer < 0 {
			t.Fatalf("malformed replacement equation %+v", eq)
		}
	}
}

// TestRegionScaling reproduces §2.4's accounting: with n convex regions,
// compulsory equations multiply by n and replacement equations by n².
func TestRegionScaling(t *testing.T) {
	nest := mmNest(8)
	cfg := cache.Config{Size: 512, LineSize: 32, Assoc: 1}
	base, err := Generate(nest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tile 8x8x8 with 3x8x3: dims 0 and 2 ragged -> 4 regions.
	set, err := GenerateTiled(nest, cfg, []int64{3, 8, 3})
	if err != nil {
		t.Fatal(err)
	}
	if set.NumRegions != 4 {
		t.Fatalf("regions = %d, want 4", set.NumRegions)
	}
	if want := 4 * len(base.Compulsory); len(set.Compulsory) != want {
		t.Fatalf("tiled compulsory = %d, want %d (=4x%d)", len(set.Compulsory), want, len(base.Compulsory))
	}
	if want := 16 * len(base.Replacement); len(set.Replacement) != want {
		t.Fatalf("tiled replacement = %d, want %d (=16x%d)", len(set.Replacement), want, len(base.Replacement))
	}
	// Even tiling (2,2,2 divides 8): single region, same counts as untiled.
	even, err := GenerateTiled(nest, cfg, []int64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if even.NumRegions != 1 {
		t.Fatalf("even tiling regions = %d, want 1", even.NumRegions)
	}
	if len(even.Compulsory) != len(base.Compulsory) || len(even.Replacement) != len(base.Replacement) {
		t.Fatal("even tiling changed equation counts")
	}
}

// TestProvablyHitSound: on an untiled nest, every access the equations
// prove to be a hit must be classified Hit by the exact point solver —
// equivalently, every actual miss is a PotentialMiss of the equations.
func TestProvablyHitSound(t *testing.T) {
	for _, mk := range []struct {
		name string
		nest func() *iterspaceNest
		cfg  cache.Config
	}{
		{"transpose", func() *iterspaceNest { return wrapNest(transposeNest(8)) }, cache.Config{Size: 256, LineSize: 32, Assoc: 1}},
		{"mm", func() *iterspaceNest { return wrapNest(mmNest(6)) }, cache.Config{Size: 256, LineSize: 32, Assoc: 1}},
		// The stencil's two arrays are 512B each; a 1KB cache avoids
		// whole-array aliasing so that provable hits exist at all.
		{"stencil", func() *iterspaceNest { return wrapNest(stencilNest(6)) }, cache.Config{Size: 1024, LineSize: 32, Assoc: 1}},
	} {
		w := mk.nest()
		cfg := mk.cfg
		set, err := Generate(w.nest, cfg)
		if err != nil {
			t.Fatal(err)
		}
		an, err := NewAnalyzer(w.nest, w.box, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := make([]int64, w.box.NumCoords())
		w.box.First(p)
		checked, proved := 0, 0
		for {
			for r := range w.nest.Refs {
				exact := an.Classify(p, r)
				if set.ProvablyHit(p, r) {
					proved++
					if exact != cachesim.Hit {
						t.Fatalf("%s: point %v ref %d: equations prove hit but solver says %v",
							mk.name, p, r, exact)
					}
				}
				checked++
			}
			if !w.box.Next(p) {
				break
			}
		}
		if proved == 0 {
			t.Fatalf("%s: equations proved no hits at all over %d accesses (vacuous test)", mk.name, checked)
		}
		t.Logf("%s: %d/%d accesses proven hits by the symbolic layer", mk.name, proved, checked)
	}
}

type iterspaceNest struct {
	nest *ir.Nest
	box  *iterspace.Box
}

func wrapNest(n *ir.Nest) *iterspaceNest {
	lo := make([]int64, n.Depth())
	hi := make([]int64, n.Depth())
	for d, l := range n.Loops {
		lo[d] = l.Lower.Eval(nil)
		hi[d] = l.Upper.Eval(nil)
	}
	return &iterspaceNest{nest: n, box: iterspace.NewBox(lo, hi)}
}

func TestEquationString(t *testing.T) {
	nest := transposeNest(4)
	set, err := Generate(nest, cache.Config{Size: 256, LineSize: 32, Assoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Compulsory) == 0 || len(set.Replacement) == 0 {
		t.Fatal("missing equations")
	}
	if s := set.Compulsory[0].String(); !strings.Contains(s, "compulsory") {
		t.Fatalf("compulsory String = %q", s)
	}
	if s := set.Replacement[0].String(); !strings.Contains(s, "replacement") {
		t.Fatalf("replacement String = %q", s)
	}
	if Compulsory.String() != "compulsory" || Replacement.String() != "replacement" {
		t.Fatal("EquationKind strings")
	}
}

func TestGenerateRejectsNonRectangular(t *testing.T) {
	nest := transposeNest(4)
	nest.Loops[0].Step = 2
	if _, err := Generate(nest, cache.DM8K); err == nil {
		t.Fatal("non-rectangular nest accepted")
	}
}

// TestCountPotentialMissesUpperBounds: the §2.2 "Solver" method's counts
// are valid upper bounds on the exact per-reference miss counts, and not
// vacuous (strictly below the access count where hits are provable).
func TestCountPotentialMissesUpperBounds(t *testing.T) {
	w := wrapNest(transposeNest(8))
	cfg := cache.Config{Size: 256, LineSize: 32, Assoc: 1}
	set, err := Generate(w.nest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := set.CountPotentialMisses(w.box, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(w.nest, w.box, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact := make([]uint64, len(w.nest.Refs))
	total := w.box.Count()
	p := make([]int64, 2)
	w.box.First(p)
	for {
		for r := range w.nest.Refs {
			if an.Classify(p, r) != cachesim.Hit {
				exact[r]++
			}
		}
		if !w.box.Next(p) {
			break
		}
	}
	for r := range counts {
		if counts[r] < exact[r] {
			t.Fatalf("ref %d: potential %d < exact %d (unsound)", r, counts[r], exact[r])
		}
		if counts[r] > total {
			t.Fatalf("ref %d: potential %d > points %d", r, counts[r], total)
		}
	}
	// At least one reference must have a non-vacuous bound.
	nonVacuous := false
	for r := range counts {
		if counts[r] < total {
			nonVacuous = true
		}
	}
	if !nonVacuous {
		t.Fatal("all bounds vacuous")
	}
	if _, err := set.CountPotentialMisses(w.box, 3); err == nil {
		t.Fatal("limit not enforced")
	}
}
