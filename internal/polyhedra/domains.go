package polyhedra

import "math"

// Domains computes a per-variable integer interval enclosing the polyhedron
// by iterated interval-constraint propagation (the polynomial-time domain
// computation §2.3 describes for replacement polyhedra, in place of vertex
// enumeration). The result is a sound over-approximation: every integer
// point of the system lies within the returned intervals. It reports
// ok=false when propagation proves the system empty.
func (s *System) Domains() (doms []Interval, ok bool) {
	doms = make([]Interval, s.NumVars)
	for i := range doms {
		doms[i] = Interval{math.MinInt64, math.MaxInt64}
	}
	// Propagate to a fixpoint, bounded to avoid slow convergence on
	// degenerate systems (each pass can only shrink intervals).
	const maxPasses = 64
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, c := range s.Cons {
			if !s.propagateCons(c, doms, &changed) {
				return doms, false
			}
			if c.Kind == EQ {
				// e = 0 also implies -e >= 0.
				neg := Constraint{GE, c.Expr.Scale(-1)}
				if !s.propagateCons(neg, doms, &changed) {
					return doms, false
				}
			}
		}
		if !changed {
			break
		}
	}
	return doms, true
}

// propagateCons tightens doms using constraint c viewed as c.Expr >= 0.
// Returns false if some domain becomes empty.
func (s *System) propagateCons(c Constraint, doms []Interval, changed *bool) bool {
	// For a0 + Σ ai·xi >= 0, bound each xi given interval bounds on the
	// other terms:
	//   ai > 0: xi >= ceil( (-a0 - maxRest) / ai )
	//   ai < 0: xi <= floor( (a0 + maxRest) / -ai ) where maxRest uses the
	//   other terms' maxima.
	for i := 0; i < s.NumVars; i++ {
		ai := c.Expr.Coeff(i)
		if ai == 0 {
			continue
		}
		// maxRest = a0 + Σ_{j≠i} max(aj·xj) over the domains.
		maxRest, finite := c.Expr.Const, true
		for j := 0; j < s.NumVars && finite; j++ {
			if j == i {
				continue
			}
			aj := c.Expr.Coeff(j)
			if aj == 0 {
				continue
			}
			var ext int64
			if aj > 0 {
				ext = doms[j].Hi
			} else {
				ext = doms[j].Lo
			}
			if ext == math.MaxInt64 || ext == math.MinInt64 {
				finite = false
				break
			}
			maxRest += aj * ext
		}
		if !finite {
			continue
		}
		// ai·xi >= -maxRest
		if ai > 0 {
			lo := ceilDiv(-maxRest, ai)
			if lo > doms[i].Lo {
				doms[i].Lo = lo
				*changed = true
			}
		} else {
			hi := floorDiv(maxRest, -ai)
			if hi < doms[i].Hi {
				doms[i].Hi = hi
				*changed = true
			}
		}
		if doms[i].Empty() {
			return false
		}
	}
	// Pure-constant constraint: must hold outright.
	if c.Expr.NumVars() == 0 {
		if c.Kind == EQ && c.Expr.Const != 0 {
			return false
		}
		if c.Kind == GE && c.Expr.Const < 0 {
			return false
		}
	}
	return true
}

func ceilDiv(a, b int64) int64 {
	// b > 0.
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

func floorDiv(a, b int64) int64 {
	// b > 0.
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// CountPoints counts the integer points of the system by enumerating the
// (finite) domain box and testing each point, up to limit points examined.
// Variables that appear in no constraint (e.g. after substitution) are
// projected out — they contribute a factor of one, not infinity. It reports
// ok=false when a constrained domain is unbounded or the box exceeds limit.
// Intended for the small polyhedra CMEs produce and for tests.
func (s *System) CountPoints(limit uint64) (count uint64, ok bool) {
	doms, feasible := s.Domains()
	if !feasible {
		return 0, true
	}
	used := make([]bool, s.NumVars)
	for _, v := range s.Vars() {
		used[v] = true
	}
	for i := range doms {
		if !used[i] {
			doms[i] = Interval{0, 0}
		}
	}
	total := uint64(1)
	for _, d := range doms {
		if d.Lo == math.MinInt64 || d.Hi == math.MaxInt64 {
			return 0, false
		}
		sz := d.Size()
		if sz == 0 {
			return 0, true
		}
		if total > limit/sz+1 {
			return 0, false
		}
		total *= sz
		if total > limit {
			return 0, false
		}
	}
	pt := make([]int64, s.NumVars)
	for i, d := range doms {
		pt[i] = d.Lo
	}
	for {
		if s.Satisfied(pt) {
			count++
		}
		// Advance odometer.
		i := s.NumVars - 1
		for ; i >= 0; i-- {
			if pt[i] < doms[i].Hi {
				pt[i]++
				break
			}
			pt[i] = doms[i].Lo
		}
		if i < 0 {
			break
		}
	}
	return count, true
}

// IsEmpty decides whether the system has no integer points, using exact
// Fourier–Motzkin elimination for the real relaxation plus a final
// single-variable integrality check. For CME polyhedra (whose constraint
// matrices are unimodular-ish box constraints) the relaxation answer is
// exact; a non-empty relaxation with no integer point can only arise from
// equality constraints with non-unit coefficients, which CountPoints
// handles exactly when domains are finite.
func (s *System) IsEmpty() bool {
	// Fast path: finite small box -> exact enumeration.
	if n, ok := s.CountPoints(1 << 16); ok {
		return n == 0
	}
	return fmEmpty(s)
}
