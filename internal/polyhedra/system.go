// Package polyhedra implements the small integer linear-constraint systems
// that Cache Miss Equations produce: conjunctions of affine equalities and
// inequalities over loop (and auxiliary) variables. It provides the three
// operations §2.3 of the paper relies on — substituting an iteration point,
// computing per-variable domains, and deciding emptiness / counting integer
// points — specialised for the very small systems CMEs generate (a handful
// of variables, tens of constraints).
package polyhedra

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/expr"
)

// Kind distinguishes constraint forms.
type Kind int

const (
	// GE is "expr ≥ 0".
	GE Kind = iota
	// EQ is "expr = 0".
	EQ
)

// Constraint is one affine constraint over the system's variables.
type Constraint struct {
	Kind Kind
	Expr expr.Affine
}

func (c Constraint) String() string { return c.StringVars(nil) }

// StringVars renders the constraint with variable names.
func (c Constraint) StringVars(names []string) string {
	op := ">="
	if c.Kind == EQ {
		op = "=="
	}
	return fmt.Sprintf("%s %s 0", c.Expr.StringVars(names), op)
}

// System is a conjunction of constraints over NumVars integer variables.
type System struct {
	NumVars int
	Cons    []Constraint
}

// NewSystem creates an empty system over n variables.
func NewSystem(n int) *System { return &System{NumVars: n} }

// Clone deep-copies the system.
func (s *System) Clone() *System {
	out := &System{NumVars: s.NumVars, Cons: make([]Constraint, len(s.Cons))}
	copy(out.Cons, s.Cons)
	return out
}

// AddGE appends the constraint e ≥ 0.
func (s *System) AddGE(e expr.Affine) { s.Cons = append(s.Cons, Constraint{GE, e}) }

// AddEQ appends the constraint e = 0.
func (s *System) AddEQ(e expr.Affine) { s.Cons = append(s.Cons, Constraint{EQ, e}) }

// AddRange appends lo ≤ v_i ≤ hi.
func (s *System) AddRange(i int, lo, hi int64) {
	s.AddGE(expr.VarPlus(i, -lo)) // v - lo >= 0
	s.AddGE(expr.Term(i, -1, hi)) // hi - v >= 0
}

// Substitute returns a copy of the system with variable i fixed to value.
func (s *System) Substitute(i int, value int64) *System {
	out := &System{NumVars: s.NumVars, Cons: make([]Constraint, len(s.Cons))}
	for j, c := range s.Cons {
		out.Cons[j] = Constraint{c.Kind, c.Expr.Substitute(i, expr.Const(value))}
	}
	return out
}

// Vars returns the set of variables with a nonzero coefficient somewhere.
func (s *System) Vars() []int {
	used := make([]bool, s.NumVars)
	for _, c := range s.Cons {
		for i := 0; i < s.NumVars; i++ {
			if c.Expr.Coeff(i) != 0 {
				used[i] = true
			}
		}
	}
	var out []int
	for i, u := range used {
		if u {
			out = append(out, i)
		}
	}
	return out
}

// Satisfied reports whether the point satisfies every constraint.
func (s *System) Satisfied(point []int64) bool {
	for _, c := range s.Cons {
		v := c.Expr.Eval(point)
		if c.Kind == EQ && v != 0 {
			return false
		}
		if c.Kind == GE && v < 0 {
			return false
		}
	}
	return true
}

// Interval is a closed integer interval; Lo > Hi encodes emptiness.
// Unbounded ends are math.MinInt64 / math.MaxInt64.
type Interval struct {
	Lo, Hi int64
}

// Empty reports whether the interval contains no integers.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Size returns the number of integers in the interval (0 if empty);
// saturates for unbounded intervals.
func (iv Interval) Size() uint64 {
	if iv.Empty() {
		return 0
	}
	if iv.Lo == math.MinInt64 || iv.Hi == math.MaxInt64 {
		return math.MaxUint64
	}
	return uint64(iv.Hi - iv.Lo + 1)
}

func (s *System) String() string {
	parts := make([]string, len(s.Cons))
	for i, c := range s.Cons {
		parts[i] = c.String()
	}
	return "{" + strings.Join(parts, " && ") + "}"
}
