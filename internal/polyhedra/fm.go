package polyhedra

import "math/big"

// fmEmpty decides emptiness of the real relaxation of the system by exact
// Fourier–Motzkin elimination over the rationals. A "false" answer means
// the relaxation is non-empty; callers that need integer exactness should
// prefer CountPoints when the domains are finite.
func fmEmpty(s *System) bool {
	// Convert to a list of rational GE rows: row · (1, x1..xn) >= 0,
	// expanding equalities into two inequalities.
	type row []*big.Rat // row[0] = const, row[1..] = coefficients
	mkRow := func(c Constraint, neg bool) row {
		r := make(row, s.NumVars+1)
		sign := int64(1)
		if neg {
			sign = -1
		}
		r[0] = new(big.Rat).SetInt64(sign * c.Expr.Const)
		for i := 0; i < s.NumVars; i++ {
			r[i+1] = new(big.Rat).SetInt64(sign * c.Expr.Coeff(i))
		}
		return r
	}
	var rows []row
	for _, c := range s.Cons {
		rows = append(rows, mkRow(c, false))
		if c.Kind == EQ {
			rows = append(rows, mkRow(c, true))
		}
	}

	for v := 1; v <= s.NumVars; v++ {
		var pos, neg, zero []row
		for _, r := range rows {
			switch r[v].Sign() {
			case 1:
				pos = append(pos, r)
			case -1:
				neg = append(neg, r)
			default:
				zero = append(zero, r)
			}
		}
		rows = zero
		// Combine each (lower bound, upper bound) pair: from p (xv >= Lp)
		// and n (xv <= Un), derive Un - Lp >= 0 scaled appropriately:
		// p + (|p_v|/|n_v|)·n but simplest exact form: n_scaled*p + p_scaled*n.
		for _, p := range pos {
			for _, n := range neg {
				nr := make(row, s.NumVars+1)
				pv := p[v]                   // > 0
				nv := new(big.Rat).Neg(n[v]) // > 0
				for i := 0; i <= s.NumVars; i++ {
					// nv*p[i] + pv*n[i]
					a := new(big.Rat).Mul(nv, p[i])
					b := new(big.Rat).Mul(pv, n[i])
					nr[i] = a.Add(a, b)
				}
				rows = append(rows, nr)
				// Guard against FM blowup: CME systems are tiny, so a
				// large intermediate set signals misuse.
				if len(rows) > 4096 {
					// Fall back to "unknown, assume non-empty" — callers
					// treat non-empty conservatively (a potential miss).
					return false
				}
			}
		}
	}
	// All variables eliminated: rows are constant constraints.
	for _, r := range rows {
		if r[0].Sign() < 0 {
			return true // contradiction: empty
		}
	}
	return false
}
