package polyhedra

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/expr"
)

func TestSatisfied(t *testing.T) {
	s := NewSystem(2)
	s.AddRange(0, 1, 5)
	s.AddRange(1, 1, 5)
	s.AddEQ(expr.Var(0).Sub(expr.Var(1))) // x == y
	if !s.Satisfied([]int64{3, 3}) {
		t.Fatal("diagonal point rejected")
	}
	if s.Satisfied([]int64{3, 4}) || s.Satisfied([]int64{0, 0}) {
		t.Fatal("invalid point accepted")
	}
}

func TestSubstitute(t *testing.T) {
	s := NewSystem(2)
	s.AddRange(0, 1, 5)
	s.AddEQ(expr.Var(0).Sub(expr.Var(1)))
	s2 := s.Substitute(1, 3)
	// Now x in [1,5] and x == 3.
	n, ok := s2.CountPoints(1000)
	if !ok || n != 1 {
		t.Fatalf("count after substitution = %d ok=%v", n, ok)
	}
	// The original is unchanged.
	if n0, _ := s.CountPoints(1000); n0 != 5 {
		t.Fatalf("original mutated: count = %d", n0)
	}
}

func TestDomainsBox(t *testing.T) {
	s := NewSystem(2)
	s.AddRange(0, 2, 9)
	s.AddRange(1, -3, 3)
	doms, ok := s.Domains()
	if !ok {
		t.Fatal("box reported empty")
	}
	if doms[0] != (Interval{2, 9}) || doms[1] != (Interval{-3, 3}) {
		t.Fatalf("domains = %v", doms)
	}
}

func TestDomainsPropagation(t *testing.T) {
	// x in [0,10], y in [0,10], x + y <= 4 -> both domains shrink to [0,4].
	s := NewSystem(2)
	s.AddRange(0, 0, 10)
	s.AddRange(1, 0, 10)
	s.AddGE(expr.Const(4).Sub(expr.Var(0)).Sub(expr.Var(1)))
	doms, ok := s.Domains()
	if !ok {
		t.Fatal("feasible system reported empty")
	}
	if doms[0].Hi != 4 || doms[1].Hi != 4 {
		t.Fatalf("domains = %v, want Hi=4", doms)
	}
	// Equality x - 2y == 0 with x in [1,9] forces y in [1,4].
	s2 := NewSystem(2)
	s2.AddRange(0, 1, 9)
	s2.AddRange(1, math.MinInt32, math.MaxInt32)
	s2.AddEQ(expr.Var(0).Sub(expr.Var(1).Scale(2)))
	doms2, ok := s2.Domains()
	if !ok {
		t.Fatal("feasible system reported empty")
	}
	if doms2[1].Lo != 1 || doms2[1].Hi != 4 {
		t.Fatalf("y domain = %v, want [1,4]", doms2[1])
	}
}

func TestDomainsDetectEmpty(t *testing.T) {
	s := NewSystem(1)
	s.AddRange(0, 5, 10)
	s.AddGE(expr.Term(0, -1, 3)) // x <= 3
	if _, ok := s.Domains(); ok {
		t.Fatal("empty system not detected")
	}
	// Constant contradiction.
	s2 := NewSystem(1)
	s2.AddGE(expr.Const(-1))
	if _, ok := s2.Domains(); ok {
		t.Fatal("constant contradiction not detected")
	}
}

func TestCountPoints(t *testing.T) {
	// Triangle x,y >= 0, x+y <= 3: 10 integer points.
	s := NewSystem(2)
	s.AddGE(expr.Var(0))
	s.AddGE(expr.Var(1))
	s.AddGE(expr.Const(3).Sub(expr.Var(0)).Sub(expr.Var(1)))
	n, ok := s.CountPoints(1000)
	if !ok || n != 10 {
		t.Fatalf("triangle count = %d ok=%v, want 10", n, ok)
	}
	// Diophantine line: 2x == y, x in [0,5], y in [0,10]: 6 points.
	s2 := NewSystem(2)
	s2.AddRange(0, 0, 5)
	s2.AddRange(1, 0, 10)
	s2.AddEQ(expr.Var(0).Scale(2).Sub(expr.Var(1)))
	if n, ok := s2.CountPoints(1000); !ok || n != 6 {
		t.Fatalf("line count = %d ok=%v, want 6", n, ok)
	}
}

func TestCountPointsLimit(t *testing.T) {
	s := NewSystem(2)
	s.AddRange(0, 0, 999)
	s.AddRange(1, 0, 999)
	if _, ok := s.CountPoints(100); ok {
		t.Fatal("limit not enforced")
	}
	// Unbounded domain.
	s2 := NewSystem(1)
	s2.AddGE(expr.Var(0)) // x >= 0, no upper bound
	if _, ok := s2.CountPoints(100); ok {
		t.Fatal("unbounded domain not reported")
	}
}

func TestIsEmpty(t *testing.T) {
	// Feasible box.
	s := NewSystem(2)
	s.AddRange(0, 1, 3)
	s.AddRange(1, 1, 3)
	if s.IsEmpty() {
		t.Fatal("feasible box reported empty")
	}
	// x >= 4 and x <= 2.
	s2 := NewSystem(1)
	s2.AddGE(expr.VarPlus(0, -4))
	s2.AddGE(expr.Term(0, -1, 2))
	if !s2.IsEmpty() {
		t.Fatal("infeasible system not detected")
	}
	// Unbounded but feasible: x >= 0 (FM path).
	s3 := NewSystem(1)
	s3.AddGE(expr.Var(0))
	if s3.IsEmpty() {
		t.Fatal("unbounded feasible system reported empty")
	}
	// Unbounded infeasible over the reals: x >= 1, -x >= 0 (FM path,
	// plus a large second variable to defeat enumeration).
	s4 := NewSystem(2)
	s4.AddGE(expr.VarPlus(0, -1))
	s4.AddGE(expr.Var(0).Scale(-1))
	s4.AddGE(expr.Var(1)) // y >= 0 unbounded
	if !s4.IsEmpty() {
		t.Fatal("FM failed to detect real infeasibility")
	}
}

func TestCeilFloorDiv(t *testing.T) {
	cases := []struct{ a, b, ceil, floor int64 }{
		{7, 2, 4, 3},
		{-7, 2, -3, -4},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
		{1, 7, 1, 0},
		{-1, 7, 0, -1},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
		if got := floorDiv(c.a, c.b); got != c.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
	}
}

// Property: on random bounded systems, CountPoints agrees with brute-force
// enumeration over a fixed box, and Domains never excludes a feasible point.
func TestCountAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewPCG(31, 37))
	for iter := 0; iter < 150; iter++ {
		nv := 1 + int(r.Int64N(3))
		s := NewSystem(nv)
		for i := 0; i < nv; i++ {
			s.AddRange(i, 0, 6)
		}
		ncons := 1 + int(r.Int64N(3))
		for c := 0; c < ncons; c++ {
			e := expr.Const(r.Int64N(13) - 6)
			for i := 0; i < nv; i++ {
				e = e.Add(expr.Term(i, r.Int64N(5)-2, 0))
			}
			if r.Int64N(4) == 0 {
				s.AddEQ(e)
			} else {
				s.AddGE(e)
			}
		}
		// Brute force over the box.
		var want uint64
		pt := make([]int64, nv)
		var rec func(d int)
		rec = func(d int) {
			if d == nv {
				if s.Satisfied(pt) {
					want++
				}
				return
			}
			for v := int64(0); v <= 6; v++ {
				pt[d] = v
				rec(d + 1)
			}
		}
		rec(0)
		got, ok := s.CountPoints(1 << 20)
		if !ok {
			t.Fatalf("iter %d: CountPoints refused bounded system", iter)
		}
		if got != want {
			t.Fatalf("iter %d: CountPoints = %d, brute force = %d\nsystem: %v", iter, got, want, s)
		}
		if s.IsEmpty() != (want == 0) {
			t.Fatalf("iter %d: IsEmpty = %v but count = %d", iter, s.IsEmpty(), want)
		}
	}
}

func TestVarsAndString(t *testing.T) {
	s := NewSystem(3)
	s.AddGE(expr.VarPlus(0, -1))
	s.AddEQ(expr.Var(2))
	vars := s.Vars()
	if len(vars) != 2 || vars[0] != 0 || vars[1] != 2 {
		t.Fatalf("Vars = %v", vars)
	}
	if s.String() != "{v0-1 >= 0 && v2 == 0}" {
		t.Fatalf("String = %q", s.String())
	}
	if (Interval{3, 2}).Size() != 0 || (Interval{1, 4}).Size() != 4 {
		t.Fatal("Interval.Size wrong")
	}
}
