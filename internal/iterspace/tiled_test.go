package iterspace

import (
	"math/rand/v2"
	"testing"
)

// enumerate returns every point of the space in execution order.
func enumerate(s Space) [][]int64 {
	p := make([]int64, s.NumCoords())
	if !s.First(p) {
		return nil
	}
	var out [][]int64
	for {
		out = append(out, append([]int64(nil), p...))
		if !s.Next(p) {
			break
		}
	}
	return out
}

// TestTiledMatchesPaperFigure2 checks the exact traversal of the paper's
// Figure 2(b): do ii=1,7,3 / do i=ii,min(ii+2,7).
func TestTiledMatchesPaperFigure2(t *testing.T) {
	s := NewTiled(NewBox([]int64{1}, []int64{7}), []int64{3})
	pts := enumerate(s)
	want := [][2]int64{{1, 1}, {1, 2}, {1, 3}, {4, 4}, {4, 5}, {4, 6}, {7, 7}}
	if len(pts) != len(want) {
		t.Fatalf("visited %d points, want %d", len(pts), len(want))
	}
	for i, p := range pts {
		if p[0] != want[i][0] || p[1] != want[i][1] {
			t.Fatalf("point %d = %v, want %v", i, p, want[i])
		}
	}
}

func TestTiled2DExecutionOrder(t *testing.T) {
	// 4x4 box, 2x3 tiles: tiles (ii=1,3) x (jj=1,4) with jj=4 a remainder.
	s := NewTiled(NewBox([]int64{1, 1}, []int64{4, 4}), []int64{2, 3})
	pts := enumerate(s)
	if len(pts) != 16 {
		t.Fatalf("visited %d points, want 16", len(pts))
	}
	// First tile (ii=1,jj=1) covers i in 1..2, j in 1..3 — 6 points in
	// row-of-tile order.
	want0 := [][]int64{
		{1, 1, 1, 1}, {1, 1, 1, 2}, {1, 1, 1, 3},
		{1, 1, 2, 1}, {1, 1, 2, 2}, {1, 1, 2, 3},
		{1, 4, 1, 4}, // next tile: jj=4 remainder
	}
	for i, w := range want0 {
		if Compare(pts[i], w) != 0 {
			t.Fatalf("point %d = %v, want %v", i, pts[i], w)
		}
	}
	// Every original point appears exactly once.
	seen := map[[2]int64]int{}
	orig := make([]int64, 2)
	for _, p := range pts {
		s.ToOriginal(p, orig)
		seen[[2]int64{orig[0], orig[1]}]++
	}
	if len(seen) != 16 {
		t.Fatalf("distinct original points = %d", len(seen))
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("original point %v visited %d times", k, c)
		}
	}
}

func tiledCases() []*Tiled {
	return []*Tiled{
		NewTiled(NewBox([]int64{1}, []int64{7}), []int64{3}),
		NewTiled(NewBox([]int64{1, 1}, []int64{4, 4}), []int64{2, 3}),
		NewTiled(NewBox([]int64{1, 1}, []int64{5, 6}), []int64{5, 1}),
		NewTiled(NewBox([]int64{0, 2, 1}, []int64{4, 7, 3}), []int64{2, 3, 3}),
		NewTiled(NewBox([]int64{1, 1}, []int64{9, 9}), []int64{4, 9}),
	}
}

func TestTiledPrevInvertsNext(t *testing.T) {
	for ci, s := range tiledCases() {
		seq := enumerate(s)
		if uint64(len(seq)) != s.Count() {
			t.Fatalf("case %d: enumerated %d points, Count says %d", ci, len(seq), s.Count())
		}
		p := append([]int64(nil), seq[len(seq)-1]...)
		for i := len(seq) - 2; i >= 0; i-- {
			if !s.Prev(p) {
				t.Fatalf("case %d: Prev ended early at %d", ci, i)
			}
			if Compare(p, seq[i]) != 0 {
				t.Fatalf("case %d: Prev mismatch at %d: %v vs %v", ci, i, p, seq[i])
			}
		}
		if s.Prev(p) {
			t.Fatalf("case %d: Prev past first point", ci)
		}
	}
}

func TestTiledContains(t *testing.T) {
	for ci, s := range tiledCases() {
		for _, p := range enumerate(s) {
			if !s.Contains(p) {
				t.Fatalf("case %d: enumerated point %v not contained", ci, p)
			}
		}
	}
	s := NewTiled(NewBox([]int64{1, 1}, []int64{4, 4}), []int64{2, 3})
	bad := [][]int64{
		{2, 1, 2, 1}, // ii=2 is not a tile start
		{1, 1, 3, 1}, // i outside its tile
		{1, 4, 1, 7}, // j beyond Hi
		{5, 1, 5, 1}, // ii beyond Hi
	}
	for _, p := range bad {
		if s.Contains(p) {
			t.Fatalf("bad point %v accepted", p)
		}
	}
}

func TestTiledFromToOriginal(t *testing.T) {
	s := NewTiled(NewBox([]int64{1, 1}, []int64{10, 10}), []int64{3, 4})
	p := make([]int64, 4)
	orig := []int64{8, 5}
	s.FromOriginal(orig, p)
	if p[0] != 7 || p[1] != 5 || p[2] != 8 || p[3] != 5 {
		t.Fatalf("FromOriginal = %v", p)
	}
	if !s.Contains(p) {
		t.Fatal("lifted point not contained")
	}
	back := make([]int64, 2)
	s.ToOriginal(p, back)
	if back[0] != 8 || back[1] != 5 {
		t.Fatalf("ToOriginal = %v", back)
	}
}

func TestTiledSampleUniform(t *testing.T) {
	s := NewTiled(NewBox([]int64{1, 1}, []int64{4, 4}), []int64{3, 2})
	r := rand.New(rand.NewPCG(11, 13))
	p := make([]int64, 4)
	orig := make([]int64, 2)
	counts := map[[2]int64]int{}
	const draws = 16000
	for i := 0; i < draws; i++ {
		s.Sample(r, p)
		if !s.Contains(p) {
			t.Fatalf("sampled invalid point %v", p)
		}
		s.ToOriginal(p, orig)
		counts[[2]int64{orig[0], orig[1]}]++
	}
	if len(counts) != 16 {
		t.Fatalf("sampled %d distinct original points, want 16", len(counts))
	}
	for k, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("point %v sampled %d times (expected ~1000)", k, c)
		}
	}
}

func TestTiledMinWithPinned(t *testing.T) {
	s := NewTiled(NewBox([]int64{1, 1}, []int64{10, 10}), []int64{4, 4})
	p := make([]int64, 4)
	if !s.MinWithPinned([]int64{7, Free}, p) {
		t.Fatal("MinWithPinned failed")
	}
	// i1 pinned to 7 (tile start 5), i2 free -> 1 (tile start 1).
	if p[0] != 5 || p[1] != 1 || p[2] != 7 || p[3] != 1 {
		t.Fatalf("MinWithPinned = %v", p)
	}
	if s.MinWithPinned([]int64{11, Free}, p) {
		t.Fatal("out-of-range pin accepted")
	}
	// The result must be lexicographically minimal among matching points:
	// verify by brute force.
	var best []int64
	for _, q := range enumerate(s) {
		if q[2] == 7 {
			best = q
			break // enumeration is in execution order
		}
	}
	s.MinWithPinned([]int64{7, Free}, p)
	if Compare(p, best) != 0 {
		t.Fatalf("MinWithPinned %v != brute force %v", p, best)
	}
}

// Property: for random boxes and tiles, the tiled traversal is a
// permutation of the box and FromOriginal agrees with the enumeration.
func TestTiledPermutationProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(17, 19))
	for iter := 0; iter < 60; iter++ {
		k := 1 + int(r.Int64N(3))
		lo := make([]int64, k)
		hi := make([]int64, k)
		tile := make([]int64, k)
		for d := 0; d < k; d++ {
			lo[d] = r.Int64N(4)
			hi[d] = lo[d] + r.Int64N(6)
			tile[d] = 1 + r.Int64N(hi[d]-lo[d]+1)
		}
		box := NewBox(lo, hi)
		s := NewTiled(box, tile)
		pts := enumerate(s)
		if uint64(len(pts)) != box.Count() {
			t.Fatalf("iter %d: %d points, want %d", iter, len(pts), box.Count())
		}
		seen := map[string]bool{}
		orig := make([]int64, k)
		lifted := make([]int64, 2*k)
		for _, p := range pts {
			s.ToOriginal(p, orig)
			if !box.Contains(orig) {
				t.Fatalf("iter %d: original %v outside box", iter, orig)
			}
			key := ""
			for _, v := range orig {
				key += string(rune(v)) + ","
			}
			if seen[key] {
				t.Fatalf("iter %d: original point %v repeated", iter, orig)
			}
			seen[key] = true
			s.FromOriginal(orig, lifted)
			if Compare(lifted, p) != 0 {
				t.Fatalf("iter %d: FromOriginal(%v) = %v, want %v", iter, orig, lifted, p)
			}
		}
	}
}
