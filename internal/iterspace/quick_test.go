package iterspace

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// Property: Next then Prev (and Prev then Next) return to the same point,
// anywhere in a tiled space.
func TestQuickNextPrevInverse(t *testing.T) {
	box := NewBox([]int64{1, 1, 1}, []int64{9, 7, 5})
	spaces := []Space{
		box,
		NewTiled(box, []int64{4, 3, 2}),
		NewPermutedTiled(box, []int64{2, 7, 3}, []int{2, 0, 1}),
		NewPermutedBox(box, []int{1, 2, 0}),
	}
	r := rand.New(rand.NewPCG(123, 321))
	for si, sp := range spaces {
		p := make([]int64, sp.NumCoords())
		q := make([]int64, sp.NumCoords())
		for iter := 0; iter < 500; iter++ {
			sp.Sample(r, p)
			copy(q, p)
			if sp.Next(q) {
				if !sp.Prev(q) || Compare(p, q) != 0 {
					t.Fatalf("space %d: Prev(Next(%v)) = %v", si, p, q)
				}
			}
			copy(q, p)
			if sp.Prev(q) {
				if !sp.Next(q) || Compare(p, q) != 0 {
					t.Fatalf("space %d: Next(Prev(%v)) = %v", si, p, q)
				}
			}
		}
	}
}

// Property: FromOriginal produces a contained point whose ToOriginal is
// the input, for arbitrary in-range original points.
func TestQuickLiftRoundTrip(t *testing.T) {
	box := NewBox([]int64{2, 0}, []int64{21, 16})
	spaces := []Space{
		NewTiled(box, []int64{5, 4}),
		NewPermutedTiled(box, []int64{3, 9}, []int{1, 0}),
		NewPermutedBox(box, []int{1, 0}),
	}
	for si, sp := range spaces {
		sp := sp
		f := func(a, b uint8) bool {
			orig := []int64{2 + int64(a)%20, int64(b) % 17}
			p := make([]int64, sp.NumCoords())
			back := make([]int64, 2)
			sp.FromOriginal(orig, p)
			if !sp.Contains(p) {
				return false
			}
			sp.ToOriginal(p, back)
			return back[0] == orig[0] && back[1] == orig[1]
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("space %d: %v", si, err)
		}
	}
}

// Property: OrigMap is consistent with ToOriginal on every space type.
func TestQuickOrigMapConsistent(t *testing.T) {
	box := NewBox([]int64{1, 1}, []int64{8, 6})
	spaces := []Space{
		box,
		NewTiled(box, []int64{3, 2}),
		NewPermutedTiled(box, []int64{3, 2}, []int{1, 0}),
		NewPermutedBox(box, []int{1, 0}),
	}
	r := rand.New(rand.NewPCG(55, 66))
	for si, sp := range spaces {
		om := sp.OrigMap()
		if len(om) != sp.NumCoords() {
			t.Fatalf("space %d: OrigMap len %d", si, len(om))
		}
		p := make([]int64, sp.NumCoords())
		orig := make([]int64, sp.OrigDims())
		for iter := 0; iter < 200; iter++ {
			sp.Sample(r, p)
			sp.ToOriginal(p, orig)
			for c, d := range om {
				if d >= 0 && p[c] != orig[d] {
					t.Fatalf("space %d: coord %d claims dim %d but %d != %d",
						si, c, d, p[c], orig[d])
				}
			}
		}
	}
}
