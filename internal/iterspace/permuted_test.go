package iterspace

import (
	"math/rand/v2"
	"testing"
)

func identityOrder(k int) []int {
	o := make([]int, k)
	for i := range o {
		o[i] = i
	}
	return o
}

// TestPermutedIdentityMatchesTiled: with the identity order the permuted
// space traverses exactly like Tiled.
func TestPermutedIdentityMatchesTiled(t *testing.T) {
	box := NewBox([]int64{1, 1}, []int64{7, 5})
	tile := []int64{3, 2}
	a := enumerate(NewTiled(box, tile))
	b := enumerate(NewPermutedTiled(box, tile, identityOrder(2)))
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if Compare(a[i], b[i]) != 0 {
			t.Fatalf("point %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestPermutedOrderChangesTraversal: swapping the tile loops visits tiles
// column-of-tiles first.
func TestPermutedOrderChangesTraversal(t *testing.T) {
	box := NewBox([]int64{1, 1}, []int64{4, 4})
	tile := []int64{2, 2}
	s := NewPermutedTiled(box, tile, []int{1, 0}) // jj outermost
	pts := enumerate(s)
	if len(pts) != 16 {
		t.Fatalf("points = %d", len(pts))
	}
	// First tile is (ii=1, jj=1); the SECOND tile must advance ii (the
	// inner tile loop), i.e. original dim 0, keeping jj fixed.
	// Coordinates: p[0]=jj, p[1]=ii, p[2]=i, p[3]=j.
	second := pts[4]
	if second[0] != 1 || second[1] != 3 {
		t.Fatalf("second tile at jj=%d ii=%d, want jj=1 ii=3", second[0], second[1])
	}
	orig := make([]int64, 2)
	s.ToOriginal(second, orig)
	if orig[0] != 3 || orig[1] != 1 {
		t.Fatalf("second tile original start %v, want (3,1)", orig)
	}
}

func permutedCases() []*PermutedTiled {
	return []*PermutedTiled{
		NewPermutedTiled(NewBox([]int64{1}, []int64{7}), []int64{3}, []int{0}),
		NewPermutedTiled(NewBox([]int64{1, 1}, []int64{4, 4}), []int64{2, 3}, []int{1, 0}),
		NewPermutedTiled(NewBox([]int64{0, 2, 1}, []int64{4, 7, 3}), []int64{2, 3, 3}, []int{2, 0, 1}),
		NewPermutedTiled(NewBox([]int64{1, 1, 1}, []int64{5, 6, 4}), []int64{5, 1, 2}, []int{1, 2, 0}),
	}
}

func TestPermutedPrevInvertsNext(t *testing.T) {
	for ci, s := range permutedCases() {
		seq := enumerate(s)
		if uint64(len(seq)) != s.Count() {
			t.Fatalf("case %d: %d points, Count %d", ci, len(seq), s.Count())
		}
		p := append([]int64(nil), seq[len(seq)-1]...)
		for i := len(seq) - 2; i >= 0; i-- {
			if !s.Prev(p) {
				t.Fatalf("case %d: Prev ended early at %d", ci, i)
			}
			if Compare(p, seq[i]) != 0 {
				t.Fatalf("case %d: Prev mismatch at %d: %v vs %v", ci, i, p, seq[i])
			}
		}
		if s.Prev(p) {
			t.Fatalf("case %d: Prev past first", ci)
		}
	}
}

func TestPermutedPermutationProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(61, 67))
	for iter := 0; iter < 60; iter++ {
		k := 1 + int(r.Int64N(3))
		lo := make([]int64, k)
		hi := make([]int64, k)
		tile := make([]int64, k)
		for d := 0; d < k; d++ {
			lo[d] = r.Int64N(3)
			hi[d] = lo[d] + r.Int64N(6)
			tile[d] = 1 + r.Int64N(hi[d]-lo[d]+1)
		}
		order := r.Perm(k)
		box := NewBox(lo, hi)
		s := NewPermutedTiled(box, tile, order)
		pts := enumerate(s)
		if uint64(len(pts)) != box.Count() {
			t.Fatalf("iter %d: %d points, want %d", iter, len(pts), box.Count())
		}
		seen := map[[3]int64]bool{}
		orig := make([]int64, k)
		lifted := make([]int64, 2*k)
		for _, p := range pts {
			if !s.Contains(p) {
				t.Fatalf("iter %d: enumerated %v not contained", iter, p)
			}
			s.ToOriginal(p, orig)
			var key [3]int64
			copy(key[:], orig)
			if seen[key] {
				t.Fatalf("iter %d: original %v repeated", iter, orig)
			}
			seen[key] = true
			s.FromOriginal(orig, lifted)
			if Compare(lifted, p) != 0 {
				t.Fatalf("iter %d: FromOriginal(%v)=%v want %v", iter, orig, lifted, p)
			}
		}
	}
}

func TestPermutedSampleAndMinPinned(t *testing.T) {
	box := NewBox([]int64{1, 1}, []int64{6, 6})
	s := NewPermutedTiled(box, []int64{2, 3}, []int{1, 0})
	r := rand.New(rand.NewPCG(71, 73))
	p := make([]int64, 4)
	for i := 0; i < 2000; i++ {
		s.Sample(r, p)
		if !s.Contains(p) {
			t.Fatalf("sampled %v not contained", p)
		}
	}
	// MinWithPinned agrees with brute-force first match.
	if !s.MinWithPinned([]int64{Free, 5}, p) {
		t.Fatal("MinWithPinned failed")
	}
	for _, q := range enumerate(s) {
		if q[3] == 5 {
			if Compare(p, q) != 0 {
				t.Fatalf("MinWithPinned %v != first match %v", p, q)
			}
			break
		}
	}
	if s.MinWithPinned([]int64{9, Free}, p) {
		t.Fatal("out-of-range pin accepted")
	}
}

func TestNewPermutedTiledPanics(t *testing.T) {
	box := NewBox([]int64{1, 1}, []int64{4, 4})
	for name, f := range map[string]func(){
		"rank":      func() { NewPermutedTiled(box, []int64{2}, []int{0, 1}) },
		"not perm":  func() { NewPermutedTiled(box, []int64{2, 2}, []int{0, 0}) },
		"oob order": func() { NewPermutedTiled(box, []int64{2, 2}, []int{0, 2}) },
		"bad tile":  func() { NewPermutedTiled(box, []int64{0, 2}, []int{0, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
