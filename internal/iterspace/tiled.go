package iterspace

import "math/rand/v2"

// Tiled is the iteration space of a fully tiled rectangular nest: every
// original loop d is strip-mined with tile size Tile[d] and the tile loops
// are interchanged outward, giving the classic form
//
//	do ii_d = Lo_d, Hi_d, T_d
//	  ...
//	    do i_d = ii_d, min(ii_d+T_d-1, Hi_d)
//
// A point has 2k coordinates: the k tile-loop values followed by the k
// element-loop values. Tile[d] == extent(d) leaves dimension d effectively
// untiled (a single tile), and Tile[d] == 1 makes ii_d track i_d.
type Tiled struct {
	Box  *Box
	Tile []int64
}

// NewTiled builds a tiled space over box with the given tile sizes. It
// panics on malformed tile vectors (they come from validated genomes).
func NewTiled(box *Box, tile []int64) *Tiled {
	if len(tile) != len(box.Lo) {
		panic("iterspace: tile rank mismatch")
	}
	for d, t := range tile {
		if t < 1 || t > box.Extent(d) {
			panic("iterspace: tile size out of range")
		}
	}
	return &Tiled{Box: box, Tile: append([]int64(nil), tile...)}
}

func (t *Tiled) k() int { return len(t.Box.Lo) }

// NumCoords implements Space.
func (t *Tiled) NumCoords() int { return 2 * t.k() }

// OrigDims implements Space.
func (t *Tiled) OrigDims() int { return t.k() }

// tileStart returns the tile-loop value covering original value v in dim d.
func (t *Tiled) tileStart(d int, v int64) int64 {
	lo := t.Box.Lo[d]
	return lo + (v-lo)/t.Tile[d]*t.Tile[d]
}

// lastTileStart returns the largest tile-loop value of dimension d.
func (t *Tiled) lastTileStart(d int) int64 {
	return t.tileStart(d, t.Box.Hi[d])
}

// tileEnd returns the last element-loop value of the tile starting at ii in
// dimension d: min(ii+T-1, Hi).
func (t *Tiled) tileEnd(d int, ii int64) int64 {
	end := ii + t.Tile[d] - 1
	if hi := t.Box.Hi[d]; end > hi {
		end = hi
	}
	return end
}

// First implements Space.
func (t *Tiled) First(p []int64) bool {
	k := t.k()
	for d := 0; d < k; d++ {
		p[d] = t.Box.Lo[d]
		p[k+d] = t.Box.Lo[d]
	}
	return true
}

// Next implements Space.
func (t *Tiled) Next(p []int64) bool {
	k := t.k()
	// Element loops, innermost first.
	for d := k - 1; d >= 0; d-- {
		if p[k+d] < t.tileEnd(d, p[d]) {
			p[k+d]++
			return true
		}
		p[k+d] = p[d] // reset to tile start
	}
	// Tile loops, innermost first.
	for d := k - 1; d >= 0; d-- {
		if p[d]+t.Tile[d] <= t.Box.Hi[d] {
			p[d] += t.Tile[d]
			p[k+d] = p[d]
			return true
		}
		p[d] = t.Box.Lo[d]
		p[k+d] = p[d]
	}
	return false
}

// Prev implements Space.
func (t *Tiled) Prev(p []int64) bool {
	k := t.k()
	for d := k - 1; d >= 0; d-- {
		if p[k+d] > p[d] {
			p[k+d]--
			return true
		}
		p[k+d] = t.tileEnd(d, p[d]) // reset to tile end
	}
	for d := k - 1; d >= 0; d-- {
		if p[d] > t.Box.Lo[d] {
			p[d] -= t.Tile[d]
			// Inner tile loops wrap to their last tile; element loops
			// to the end of their (possibly new) tile.
			for e := d + 1; e < k; e++ {
				p[e] = t.lastTileStart(e)
			}
			for e := d; e < k; e++ {
				p[k+e] = t.tileEnd(e, p[e])
			}
			return true
		}
		p[d] = t.lastTileStart(d)
		p[k+d] = t.tileEnd(d, p[d])
	}
	return false
}

// Contains implements Space.
func (t *Tiled) Contains(p []int64) bool {
	k := t.k()
	for d := 0; d < k; d++ {
		ii, i := p[d], p[k+d]
		if ii < t.Box.Lo[d] || ii > t.Box.Hi[d] || (ii-t.Box.Lo[d])%t.Tile[d] != 0 {
			return false
		}
		if i < ii || i > t.tileEnd(d, ii) {
			return false
		}
	}
	return true
}

// Count implements Space. Tiling preserves the point count.
func (t *Tiled) Count() uint64 { return t.Box.Count() }

// Sample implements Space: draw a uniform original point and lift it.
func (t *Tiled) Sample(r *rand.Rand, p []int64) {
	k := t.k()
	for d := 0; d < k; d++ {
		v := t.Box.Lo[d] + r.Int64N(t.Box.Extent(d))
		p[k+d] = v
		p[d] = t.tileStart(d, v)
	}
}

// ToOriginal implements Space: the element-loop coordinates.
func (t *Tiled) ToOriginal(p, orig []int64) { copy(orig, p[t.k():]) }

// OrigView implements Space.
func (t *Tiled) OrigView(p []int64) []int64 { return p[t.k():] }

// OrigMap implements Space: tile coordinates carry no original variable;
// element coordinate k+d carries dimension d.
func (t *Tiled) OrigMap() []int {
	k := t.k()
	m := make([]int, 2*k)
	for i := 0; i < k; i++ {
		m[i] = -1
		m[k+i] = i
	}
	return m
}

// FromOriginal implements Space.
func (t *Tiled) FromOriginal(orig, p []int64) {
	k := t.k()
	for d := 0; d < k; d++ {
		p[k+d] = orig[d]
		p[d] = t.tileStart(d, orig[d])
	}
}

// MinWithPinned implements Space. Because tile coordinates are monotone in
// the element coordinates and the candidate set is a product set, the
// coordinate-wise minimum of the original point is the lexicographic
// minimum of the lifted point.
func (t *Tiled) MinWithPinned(pinned, p []int64) bool {
	k := t.k()
	for d := 0; d < k; d++ {
		var v int64
		switch {
		case pinned[d] == Free:
			v = t.Box.Lo[d]
		case pinned[d] < t.Box.Lo[d] || pinned[d] > t.Box.Hi[d]:
			return false
		default:
			v = pinned[d]
		}
		p[k+d] = v
		p[d] = t.tileStart(d, v)
	}
	return true
}
