package iterspace

import "math/rand/v2"

// PermutedTiled is a tiled iteration space whose tile loops are
// interchanged into an arbitrary order — the general form of "tiling =
// strip-mining + loop interchange" (§3). Order[p] names the original
// dimension whose tile loop sits at outermost position p; the element
// loops always stay in original order innermost, so the transformation is
// always legal for the fully permutable nests the paper analyses.
//
// Coordinates are stored in EXECUTION order: (ii_{Order[0]}, ...,
// ii_{Order[k-1]}, i_1, ..., i_k), so lexicographic coordinate order is
// execution order, as every Space in this package guarantees.
type PermutedTiled struct {
	Box   *Box
	Tile  []int64 // indexed by original dimension
	Order []int   // Order[p] = original dimension at tile position p
	inv   []int   // inv[d] = tile position of original dimension d
}

// NewPermutedTiled builds the space. Order must be a permutation of
// 0..k-1; Tile is indexed by original dimension. It panics on malformed
// input (inputs come from validated genomes).
func NewPermutedTiled(box *Box, tile []int64, order []int) *PermutedTiled {
	k := len(box.Lo)
	if len(tile) != k || len(order) != k {
		panic("iterspace: permuted tiling rank mismatch")
	}
	inv := make([]int, k)
	seen := make([]bool, k)
	for p, d := range order {
		if d < 0 || d >= k || seen[d] {
			panic("iterspace: order is not a permutation")
		}
		seen[d] = true
		inv[d] = p
	}
	for d, t := range tile {
		if t < 1 || t > box.Extent(d) {
			panic("iterspace: tile size out of range")
		}
	}
	return &PermutedTiled{
		Box:   box,
		Tile:  append([]int64(nil), tile...),
		Order: append([]int(nil), order...),
		inv:   inv,
	}
}

func (t *PermutedTiled) k() int { return len(t.Box.Lo) }

// NumCoords implements Space.
func (t *PermutedTiled) NumCoords() int { return 2 * t.k() }

// OrigDims implements Space.
func (t *PermutedTiled) OrigDims() int { return t.k() }

func (t *PermutedTiled) tileStart(d int, v int64) int64 {
	lo := t.Box.Lo[d]
	return lo + (v-lo)/t.Tile[d]*t.Tile[d]
}

func (t *PermutedTiled) lastTileStart(d int) int64 { return t.tileStart(d, t.Box.Hi[d]) }

func (t *PermutedTiled) tileEnd(d int, ii int64) int64 {
	end := ii + t.Tile[d] - 1
	if hi := t.Box.Hi[d]; end > hi {
		end = hi
	}
	return end
}

// First implements Space.
func (t *PermutedTiled) First(p []int64) bool {
	k := t.k()
	for pos, d := range t.Order {
		p[pos] = t.Box.Lo[d]
	}
	for d := 0; d < k; d++ {
		p[k+d] = t.Box.Lo[d]
	}
	return true
}

// Next implements Space.
func (t *PermutedTiled) Next(p []int64) bool {
	k := t.k()
	// Element loops, innermost (original order) first.
	for d := k - 1; d >= 0; d-- {
		ii := p[t.inv[d]]
		if p[k+d] < t.tileEnd(d, ii) {
			p[k+d]++
			return true
		}
		p[k+d] = ii
	}
	// Tile loops, innermost tile position first.
	for pos := k - 1; pos >= 0; pos-- {
		d := t.Order[pos]
		if p[pos]+t.Tile[d] <= t.Box.Hi[d] {
			p[pos] += t.Tile[d]
			p[k+d] = p[pos]
			return true
		}
		p[pos] = t.Box.Lo[d]
		p[k+d] = p[pos]
	}
	return false
}

// Prev implements Space.
func (t *PermutedTiled) Prev(p []int64) bool {
	k := t.k()
	for d := k - 1; d >= 0; d-- {
		ii := p[t.inv[d]]
		if p[k+d] > ii {
			p[k+d]--
			return true
		}
		p[k+d] = t.tileEnd(d, ii)
	}
	for pos := k - 1; pos >= 0; pos-- {
		d := t.Order[pos]
		if p[pos] > t.Box.Lo[d] {
			p[pos] -= t.Tile[d]
			for e := pos + 1; e < k; e++ {
				de := t.Order[e]
				p[e] = t.lastTileStart(de)
			}
			// Reset element loops to the end of their (new) tiles.
			for e := 0; e < k; e++ {
				p[k+e] = t.tileEnd(e, p[t.inv[e]])
			}
			return true
		}
		p[pos] = t.lastTileStart(d)
		p[k+d] = t.tileEnd(d, p[pos])
	}
	return false
}

// Contains implements Space.
func (t *PermutedTiled) Contains(p []int64) bool {
	k := t.k()
	for pos, d := range t.Order {
		ii, i := p[pos], p[k+d]
		if ii < t.Box.Lo[d] || ii > t.Box.Hi[d] || (ii-t.Box.Lo[d])%t.Tile[d] != 0 {
			return false
		}
		if i < ii || i > t.tileEnd(d, ii) {
			return false
		}
	}
	return true
}

// Count implements Space.
func (t *PermutedTiled) Count() uint64 { return t.Box.Count() }

// Sample implements Space.
func (t *PermutedTiled) Sample(r *rand.Rand, p []int64) {
	k := t.k()
	for d := 0; d < k; d++ {
		v := t.Box.Lo[d] + r.Int64N(t.Box.Extent(d))
		p[k+d] = v
		p[t.inv[d]] = t.tileStart(d, v)
	}
}

// ToOriginal implements Space.
func (t *PermutedTiled) ToOriginal(p, orig []int64) { copy(orig, p[t.k():]) }

// OrigView implements Space.
func (t *PermutedTiled) OrigView(p []int64) []int64 { return p[t.k():] }

// OrigMap implements Space.
func (t *PermutedTiled) OrigMap() []int {
	k := t.k()
	m := make([]int, 2*k)
	for i := 0; i < k; i++ {
		m[i] = -1
		m[k+i] = i
	}
	return m
}

// FromOriginal implements Space.
func (t *PermutedTiled) FromOriginal(orig, p []int64) {
	k := t.k()
	for d := 0; d < k; d++ {
		p[k+d] = orig[d]
		p[t.inv[d]] = t.tileStart(d, orig[d])
	}
}

// MinWithPinned implements Space. As with Tiled, the candidate set is a
// product set and every coordinate is monotone in its original variable,
// so the coordinate-wise minimum is the lexicographic minimum.
func (t *PermutedTiled) MinWithPinned(pinned, p []int64) bool {
	k := t.k()
	for d := 0; d < k; d++ {
		var v int64
		switch {
		case pinned[d] == Free:
			v = t.Box.Lo[d]
		case pinned[d] < t.Box.Lo[d] || pinned[d] > t.Box.Hi[d]:
			return false
		default:
			v = pinned[d]
		}
		p[k+d] = v
		p[t.inv[d]] = t.tileStart(d, v)
	}
	return true
}
