package iterspace

import (
	"math/rand/v2"
	"testing"
)

func TestBoxTraversalOrder(t *testing.T) {
	b := NewBox([]int64{1, 1}, []int64{2, 3})
	p := make([]int64, 2)
	if !b.First(p) {
		t.Fatal("empty box")
	}
	var got [][2]int64
	for {
		got = append(got, [2]int64{p[0], p[1]})
		if !b.Next(p) {
			break
		}
	}
	want := [][2]int64{{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 2}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("visited %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
	if b.Count() != 6 {
		t.Fatalf("Count = %d", b.Count())
	}
}

func TestBoxPrevInvertsNext(t *testing.T) {
	b := NewBox([]int64{0, 2, -1}, []int64{2, 4, 1})
	p := make([]int64, 3)
	b.First(p)
	var seq [][]int64
	for {
		seq = append(seq, append([]int64(nil), p...))
		if !b.Next(p) {
			break
		}
	}
	// Walk backwards from the last point.
	copy(p, seq[len(seq)-1])
	for i := len(seq) - 2; i >= 0; i-- {
		if !b.Prev(p) {
			t.Fatalf("Prev ended early at %d", i)
		}
		if Compare(p, seq[i]) != 0 {
			t.Fatalf("Prev mismatch at %d: %v vs %v", i, p, seq[i])
		}
	}
	if b.Prev(p) {
		t.Fatal("Prev past the first point")
	}
}

func TestBoxContainsAndSample(t *testing.T) {
	b := NewBox([]int64{1, 5}, []int64{3, 9})
	if !b.Contains([]int64{2, 7}) || b.Contains([]int64{0, 7}) || b.Contains([]int64{2, 10}) {
		t.Fatal("Contains wrong")
	}
	r := rand.New(rand.NewPCG(7, 7))
	p := make([]int64, 2)
	counts := map[[2]int64]int{}
	for i := 0; i < 15000; i++ {
		b.Sample(r, p)
		if !b.Contains(p) {
			t.Fatalf("sampled point %v outside box", p)
		}
		counts[[2]int64{p[0], p[1]}]++
	}
	// 15 cells, 1000 expected each; loose uniformity check.
	if len(counts) != 15 {
		t.Fatalf("sampled %d distinct cells, want 15", len(counts))
	}
	for cell, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("cell %v sampled %d times (expected ~1000)", cell, c)
		}
	}
}

func TestBoxMinWithPinned(t *testing.T) {
	b := NewBox([]int64{1, 1, 1}, []int64{4, 5, 6})
	p := make([]int64, 3)
	if !b.MinWithPinned([]int64{Free, 3, Free}, p) {
		t.Fatal("MinWithPinned failed")
	}
	if p[0] != 1 || p[1] != 3 || p[2] != 1 {
		t.Fatalf("MinWithPinned = %v", p)
	}
	if b.MinWithPinned([]int64{Free, 9, Free}, p) {
		t.Fatal("out-of-range pin accepted")
	}
}

func TestCompare(t *testing.T) {
	if Compare([]int64{1, 2}, []int64{1, 3}) != -1 {
		t.Fatal("compare lt")
	}
	if Compare([]int64{2, 0}, []int64{1, 9}) != 1 {
		t.Fatal("compare gt")
	}
	if Compare([]int64{5, 5}, []int64{5, 5}) != 0 {
		t.Fatal("compare eq")
	}
}

func TestNewBoxPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"rank mismatch": func() { NewBox([]int64{1}, []int64{2, 3}) },
		"empty rank":    func() { NewBox(nil, nil) },
		"inverted":      func() { NewBox([]int64{5}, []int64{4}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
