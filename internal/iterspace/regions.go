package iterspace

// Region is one convex region of a tiled iteration space (§2.4 of the
// paper). Tiling a loop whose extent is not a multiple of the tile size
// splits the space into a "full tiles" part and a "remainder tile" part per
// such dimension; the tiled space is the union of up to 2ⁿ convex regions,
// one per combination.
type Region struct {
	// Remainder[d] reports whether this region takes the remainder tile
	// of original dimension d.
	Remainder []bool
	// TileLo[d] and TileHi[d] bound the tile-loop value ii_d within the
	// region (both inclusive; ii_d steps by Tile[d]).
	TileLo, TileHi []int64
	// Points is the number of iteration points in the region.
	Points uint64
}

// Regions decomposes the tiled space into its convex regions, in a fixed
// order (full-tiles combination first). Dimensions whose extent divides
// evenly contribute only a full region, so a space with n ragged dimensions
// yields 2ⁿ regions.
func (t *Tiled) Regions() []Region {
	k := t.k()
	type dimInfo struct {
		ragged             bool
		fullLo, fullHi     int64 // ii range of full tiles
		remStart           int64 // ii of the remainder tile
		fullPts, remainPts uint64
	}
	dims := make([]dimInfo, k)
	for d := 0; d < k; d++ {
		extent := t.Box.Extent(d)
		tile := t.Tile[d]
		full := extent / tile
		rem := extent % tile
		di := dimInfo{
			ragged:    rem != 0,
			fullLo:    t.Box.Lo[d],
			fullHi:    t.Box.Lo[d] + (full-1)*tile,
			remStart:  t.Box.Lo[d] + full*tile,
			fullPts:   uint64(full * tile),
			remainPts: uint64(rem),
		}
		dims[d] = di
	}
	regions := []Region{}
	var build func(d int, cur Region, pts uint64)
	build = func(d int, cur Region, pts uint64) {
		if d == k {
			cur.Points = pts
			// Deep-copy the per-dimension slices.
			cur.Remainder = append([]bool(nil), cur.Remainder...)
			cur.TileLo = append([]int64(nil), cur.TileLo...)
			cur.TileHi = append([]int64(nil), cur.TileHi...)
			regions = append(regions, cur)
			return
		}
		di := dims[d]
		if di.fullPts > 0 {
			cur.Remainder = append(cur.Remainder, false)
			cur.TileLo = append(cur.TileLo, di.fullLo)
			cur.TileHi = append(cur.TileHi, di.fullHi)
			build(d+1, cur, pts*di.fullPts)
			cur.Remainder = cur.Remainder[:d]
			cur.TileLo = cur.TileLo[:d]
			cur.TileHi = cur.TileHi[:d]
		}
		if di.ragged {
			cur.Remainder = append(cur.Remainder, true)
			cur.TileLo = append(cur.TileLo, di.remStart)
			cur.TileHi = append(cur.TileHi, di.remStart)
			build(d+1, cur, pts*di.remainPts)
			cur.Remainder = cur.Remainder[:d]
			cur.TileLo = cur.TileLo[:d]
			cur.TileHi = cur.TileHi[:d]
		}
	}
	build(0, Region{}, 1)
	return regions
}

// RegionOf returns the index (into Regions()) of the region containing
// point p, or -1 if p is not in the space.
func (t *Tiled) RegionOf(p []int64) int {
	if !t.Contains(p) {
		return -1
	}
	k := t.k()
	idx := 0
	for d := 0; d < k; d++ {
		extent := t.Box.Extent(d)
		tile := t.Tile[d]
		rem := extent % tile
		full := extent / tile
		inRemainder := rem != 0 && p[d] == t.Box.Lo[d]+full*tile
		// Region enumeration order: full branch before remainder branch
		// per dimension, so the index is a mixed-radix number over ragged
		// dimensions.
		if rem != 0 {
			idx *= 2
			if inRemainder {
				idx++
			}
		}
	}
	return idx
}

// NumRegions returns the number of convex regions of the tiled space
// without materialising them: 2ⁿ for n ragged dimensions (dimensions with
// no full tile contribute only the remainder region and halve the count).
func (t *Tiled) NumRegions() int {
	n := 1
	for d := 0; d < t.k(); d++ {
		extent := t.Box.Extent(d)
		tile := t.Tile[d]
		if extent%tile != 0 && extent/tile > 0 {
			n *= 2
		}
	}
	return n
}
