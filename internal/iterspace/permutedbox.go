package iterspace

import "math/rand/v2"

// PermutedBox is a rectangular space traversed with its loops interchanged
// into an arbitrary order — pure loop interchange, the classic
// computation-reordering transform tiling builds upon. Order[p] is the
// original dimension iterated at nesting position p.
//
// Coordinates are stored in EXECUTION order (position-major), so
// lexicographic coordinate order is execution order.
type PermutedBox struct {
	Box     *Box
	Order   []int
	inv     []int // inv[d] = position of original dimension d
	scratch []int64
}

// NewPermutedBox builds the space; order must be a permutation of 0..k-1.
func NewPermutedBox(box *Box, order []int) *PermutedBox {
	k := len(box.Lo)
	if len(order) != k {
		panic("iterspace: order rank mismatch")
	}
	inv := make([]int, k)
	seen := make([]bool, k)
	for p, d := range order {
		if d < 0 || d >= k || seen[d] {
			panic("iterspace: order is not a permutation")
		}
		seen[d] = true
		inv[d] = p
	}
	return &PermutedBox{Box: box, Order: append([]int(nil), order...), inv: inv}
}

// NumCoords implements Space.
func (b *PermutedBox) NumCoords() int { return len(b.Box.Lo) }

// OrigDims implements Space.
func (b *PermutedBox) OrigDims() int { return len(b.Box.Lo) }

// First implements Space.
func (b *PermutedBox) First(p []int64) bool {
	for pos, d := range b.Order {
		p[pos] = b.Box.Lo[d]
	}
	return true
}

// Next implements Space.
func (b *PermutedBox) Next(p []int64) bool {
	for pos := len(p) - 1; pos >= 0; pos-- {
		d := b.Order[pos]
		if p[pos] < b.Box.Hi[d] {
			p[pos]++
			return true
		}
		p[pos] = b.Box.Lo[d]
	}
	return false
}

// Prev implements Space.
func (b *PermutedBox) Prev(p []int64) bool {
	for pos := len(p) - 1; pos >= 0; pos-- {
		d := b.Order[pos]
		if p[pos] > b.Box.Lo[d] {
			p[pos]--
			return true
		}
		p[pos] = b.Box.Hi[d]
	}
	return false
}

// Contains implements Space.
func (b *PermutedBox) Contains(p []int64) bool {
	for pos, d := range b.Order {
		if p[pos] < b.Box.Lo[d] || p[pos] > b.Box.Hi[d] {
			return false
		}
	}
	return true
}

// Count implements Space.
func (b *PermutedBox) Count() uint64 { return b.Box.Count() }

// Sample implements Space.
func (b *PermutedBox) Sample(r *rand.Rand, p []int64) {
	for pos, d := range b.Order {
		p[pos] = b.Box.Lo[d] + r.Int64N(b.Box.Extent(d))
	}
}

// ToOriginal implements Space.
func (b *PermutedBox) ToOriginal(p, orig []int64) {
	for pos, d := range b.Order {
		orig[d] = p[pos]
	}
}

// OrigView implements Space. Unlike the tiled spaces, the original
// variables are scattered across the coordinates; a scratch buffer backs
// the view, valid until the next call.
func (b *PermutedBox) OrigView(p []int64) []int64 {
	if b.scratch == nil {
		b.scratch = make([]int64, len(b.Order))
	}
	b.ToOriginal(p, b.scratch)
	return b.scratch
}

// FromOriginal implements Space.
func (b *PermutedBox) FromOriginal(orig, p []int64) {
	for pos, d := range b.Order {
		p[pos] = orig[d]
	}
}

// OrigMap implements Space: coordinate pos carries dimension Order[pos].
func (b *PermutedBox) OrigMap() []int { return append([]int(nil), b.Order...) }

// MinWithPinned implements Space: product set, so the coordinate-wise
// minimum is the lexicographic minimum regardless of the order.
func (b *PermutedBox) MinWithPinned(pinned, p []int64) bool {
	for pos, d := range b.Order {
		switch {
		case pinned[d] == Free:
			p[pos] = b.Box.Lo[d]
		case pinned[d] < b.Box.Lo[d] || pinned[d] > b.Box.Hi[d]:
			return false
		default:
			p[pos] = pinned[d]
		}
	}
	return true
}
