package iterspace

import (
	"math/rand/v2"
	"testing"
)

// TestPermutedBoxInterchange: order (1,0) on a 2x3 box visits columns
// first.
func TestPermutedBoxInterchange(t *testing.T) {
	b := NewPermutedBox(NewBox([]int64{1, 1}, []int64{2, 3}), []int{1, 0})
	pts := enumerate(b)
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	// Coordinates are (j, i); first point (1,1), second (1,2): i varies
	// innermost now.
	if pts[0][0] != 1 || pts[0][1] != 1 || pts[1][0] != 1 || pts[1][1] != 2 {
		t.Fatalf("first points: %v %v", pts[0], pts[1])
	}
	orig := make([]int64, 2)
	b.ToOriginal(pts[1], orig)
	if orig[0] != 2 || orig[1] != 1 {
		t.Fatalf("second point original = %v, want (2,1)", orig)
	}
}

func TestPermutedBoxRoundTripAndOrder(t *testing.T) {
	r := rand.New(rand.NewPCG(91, 93))
	for iter := 0; iter < 60; iter++ {
		k := 1 + int(r.Int64N(3))
		lo := make([]int64, k)
		hi := make([]int64, k)
		for d := 0; d < k; d++ {
			lo[d] = r.Int64N(3)
			hi[d] = lo[d] + r.Int64N(5)
		}
		b := NewPermutedBox(NewBox(lo, hi), r.Perm(k))
		seq := enumerate(b)
		if uint64(len(seq)) != b.Count() {
			t.Fatalf("iter %d: count mismatch", iter)
		}
		// Prev inverts Next.
		p := append([]int64(nil), seq[len(seq)-1]...)
		for i := len(seq) - 2; i >= 0; i-- {
			if !b.Prev(p) || Compare(p, seq[i]) != 0 {
				t.Fatalf("iter %d: Prev mismatch at %d", iter, i)
			}
		}
		// From/ToOriginal round trip; OrigMap consistency.
		orig := make([]int64, k)
		lifted := make([]int64, k)
		om := b.OrigMap()
		for _, q := range seq {
			if !b.Contains(q) {
				t.Fatalf("iter %d: %v not contained", iter, q)
			}
			b.ToOriginal(q, orig)
			b.FromOriginal(orig, lifted)
			if Compare(q, lifted) != 0 {
				t.Fatalf("iter %d: round trip failed", iter)
			}
			for pos, d := range om {
				if q[pos] != orig[d] {
					t.Fatalf("iter %d: OrigMap inconsistent", iter)
				}
			}
		}
	}
}

func TestPermutedBoxSamplePinned(t *testing.T) {
	b := NewPermutedBox(NewBox([]int64{1, 1, 1}, []int64{4, 5, 6}), []int{2, 0, 1})
	r := rand.New(rand.NewPCG(95, 97))
	p := make([]int64, 3)
	for i := 0; i < 1000; i++ {
		b.Sample(r, p)
		if !b.Contains(p) {
			t.Fatalf("sampled %v not contained", p)
		}
	}
	if !b.MinWithPinned([]int64{3, Free, Free}, p) {
		t.Fatal("pin failed")
	}
	orig := make([]int64, 3)
	b.ToOriginal(p, orig)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 1 {
		t.Fatalf("pinned min original = %v", orig)
	}
	if b.MinWithPinned([]int64{5, Free, Free}, p) {
		t.Fatal("out-of-range pin accepted")
	}
	// OrigView returns the original variables (scratch-backed).
	b.FromOriginal([]int64{2, 4, 6}, p)
	v := b.OrigView(p)
	if v[0] != 2 || v[1] != 4 || v[2] != 6 {
		t.Fatalf("OrigView = %v", v)
	}
}

func TestNewPermutedBoxPanics(t *testing.T) {
	box := NewBox([]int64{1, 1}, []int64{3, 3})
	for name, f := range map[string]func(){
		"rank":     func() { NewPermutedBox(box, []int{0}) },
		"not perm": func() { NewPermutedBox(box, []int{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
