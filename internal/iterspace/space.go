// Package iterspace provides iteration-space abstractions: rectangular
// (original) spaces, tiled spaces with min() upper bounds, lexicographic
// traversal in execution order, uniform sampling, and the decomposition of
// a tiled space into the 2ⁿ convex regions described in §2.4 of the paper.
//
// A point is a []int64 of coordinates in loop order, outermost first. For a
// tiled space over k original loops the coordinates are
// (ii_1..ii_k, i_1..i_k): the k tile loops followed by the k element loops.
// Tiling permutes execution order but preserves the set of original points,
// which is what makes uniform sampling over tiled spaces cheap.
package iterspace

import (
	"math"
	"math/rand/v2"
)

// Free marks an unpinned coordinate in MinWithPinned queries.
const Free = math.MinInt64

// Space is an iteration space traversed in lexicographic coordinate order,
// which by construction equals program execution order.
type Space interface {
	// NumCoords returns the number of coordinates of a point.
	NumCoords() int
	// OrigDims returns the number of original loop variables.
	OrigDims() int
	// First writes the first point in execution order; false if empty.
	First(p []int64) bool
	// Next advances p to the next point in execution order; false at end.
	Next(p []int64) bool
	// Prev moves p to the previous point; false at the beginning.
	Prev(p []int64) bool
	// Contains reports whether p is a valid point of the space.
	Contains(p []int64) bool
	// Count returns the total number of points.
	Count() uint64
	// Sample writes a uniformly random point of the space.
	Sample(r *rand.Rand, p []int64)
	// ToOriginal extracts the original loop variables from a point.
	ToOriginal(p, orig []int64)
	// OrigView returns the original loop variables of p as a slice. For
	// spaces whose trailing coordinates are the original variables it
	// aliases p; otherwise it may use an internal scratch buffer, valid
	// until the next call.
	OrigView(p []int64) []int64
	// OrigMap returns, for each coordinate, the original dimension whose
	// value it carries, or -1 for tile coordinates (which duplicate
	// information already present in the element coordinates).
	OrigMap() []int
	// FromOriginal writes the unique space point whose original
	// coordinates equal orig.
	FromOriginal(orig, p []int64)
	// MinWithPinned writes the lexicographically smallest point whose
	// original coordinate d equals pinned[d] for every pinned[d] != Free.
	// It reports false when a pinned value lies outside the space.
	MinWithPinned(pinned, p []int64) bool
}

// Box is a rectangular iteration space: Lo[d] ≤ p[d] ≤ Hi[d], step 1.
type Box struct {
	Lo, Hi []int64
}

// NewBox builds a box from inclusive bounds. It panics on malformed input
// since boxes come from validated kernels.
func NewBox(lo, hi []int64) *Box {
	if len(lo) != len(hi) || len(lo) == 0 {
		panic("iterspace: bad box rank")
	}
	for d := range lo {
		if lo[d] > hi[d] {
			panic("iterspace: empty box dimension")
		}
	}
	return &Box{Lo: append([]int64(nil), lo...), Hi: append([]int64(nil), hi...)}
}

// Extent returns the number of values of dimension d.
func (b *Box) Extent(d int) int64 { return b.Hi[d] - b.Lo[d] + 1 }

// NumCoords implements Space.
func (b *Box) NumCoords() int { return len(b.Lo) }

// OrigDims implements Space.
func (b *Box) OrigDims() int { return len(b.Lo) }

// First implements Space.
func (b *Box) First(p []int64) bool {
	copy(p, b.Lo)
	return true
}

// Next implements Space.
func (b *Box) Next(p []int64) bool {
	for d := len(p) - 1; d >= 0; d-- {
		if p[d] < b.Hi[d] {
			p[d]++
			return true
		}
		p[d] = b.Lo[d]
	}
	return false
}

// Prev implements Space.
func (b *Box) Prev(p []int64) bool {
	for d := len(p) - 1; d >= 0; d-- {
		if p[d] > b.Lo[d] {
			p[d]--
			return true
		}
		p[d] = b.Hi[d]
	}
	return false
}

// Contains implements Space.
func (b *Box) Contains(p []int64) bool {
	for d := range p {
		if p[d] < b.Lo[d] || p[d] > b.Hi[d] {
			return false
		}
	}
	return true
}

// Count implements Space.
func (b *Box) Count() uint64 {
	n := uint64(1)
	for d := range b.Lo {
		n *= uint64(b.Extent(d))
	}
	return n
}

// Sample implements Space.
func (b *Box) Sample(r *rand.Rand, p []int64) {
	for d := range b.Lo {
		p[d] = b.Lo[d] + r.Int64N(b.Extent(d))
	}
}

// ToOriginal implements Space.
func (b *Box) ToOriginal(p, orig []int64) { copy(orig, p) }

// OrigView implements Space.
func (b *Box) OrigView(p []int64) []int64 { return p }

// OrigMap implements Space: the identity.
func (b *Box) OrigMap() []int {
	m := make([]int, len(b.Lo))
	for i := range m {
		m[i] = i
	}
	return m
}

// FromOriginal implements Space.
func (b *Box) FromOriginal(orig, p []int64) { copy(p, orig) }

// MinWithPinned implements Space.
func (b *Box) MinWithPinned(pinned, p []int64) bool {
	for d := range b.Lo {
		switch {
		case pinned[d] == Free:
			p[d] = b.Lo[d]
		case pinned[d] < b.Lo[d] || pinned[d] > b.Hi[d]:
			return false
		default:
			p[d] = pinned[d]
		}
	}
	return true
}

// Compare orders two points of the same space by execution order: -1 if a
// executes before b, 0 if equal, 1 if after. Lexicographic coordinate order
// is execution order for every Space in this package.
func Compare(a, b []int64) int {
	for d := range a {
		switch {
		case a[d] < b[d]:
			return -1
		case a[d] > b[d]:
			return 1
		}
	}
	return 0
}
