package iterspace

import (
	"math/rand/v2"
	"testing"
)

// TestRegionsPaperFigure2 reproduces the decomposition of Figure 2(b):
// a 7-iteration loop tiled by 3 splits into a full region (two tiles, 6
// points) and a remainder region (1 point).
func TestRegionsPaperFigure2(t *testing.T) {
	s := NewTiled(NewBox([]int64{1}, []int64{7}), []int64{3})
	regs := s.Regions()
	if len(regs) != 2 {
		t.Fatalf("regions = %d, want 2", len(regs))
	}
	if regs[0].Remainder[0] || regs[0].Points != 6 || regs[0].TileLo[0] != 1 || regs[0].TileHi[0] != 4 {
		t.Fatalf("full region = %+v", regs[0])
	}
	if !regs[1].Remainder[0] || regs[1].Points != 1 || regs[1].TileLo[0] != 7 {
		t.Fatalf("remainder region = %+v", regs[1])
	}
	if s.NumRegions() != 2 {
		t.Fatalf("NumRegions = %d", s.NumRegions())
	}
}

// TestRegions2n checks the paper's 2ⁿ claim: tiling n ragged dimensions
// yields 2ⁿ convex regions.
func TestRegions2n(t *testing.T) {
	// 3 dims, all ragged (extent 7, tile 3).
	s := NewTiled(NewBox([]int64{1, 1, 1}, []int64{7, 7, 7}), []int64{3, 3, 3})
	if got := len(s.Regions()); got != 8 {
		t.Fatalf("regions = %d, want 8", got)
	}
	// One even dim (extent 6, tile 3) drops a factor of two.
	s2 := NewTiled(NewBox([]int64{1, 1, 1}, []int64{7, 6, 7}), []int64{3, 3, 3})
	if got := len(s2.Regions()); got != 4 {
		t.Fatalf("regions = %d, want 4", got)
	}
	// Tile == extent: single region.
	s3 := NewTiled(NewBox([]int64{1, 1}, []int64{5, 5}), []int64{5, 5})
	if got := len(s3.Regions()); got != 1 {
		t.Fatalf("regions = %d, want 1", got)
	}
}

func TestRegionPointsSumToTotal(t *testing.T) {
	r := rand.New(rand.NewPCG(23, 29))
	for iter := 0; iter < 100; iter++ {
		k := 1 + int(r.Int64N(3))
		lo := make([]int64, k)
		hi := make([]int64, k)
		tile := make([]int64, k)
		for d := 0; d < k; d++ {
			lo[d] = 1
			hi[d] = 1 + r.Int64N(12)
			tile[d] = 1 + r.Int64N(hi[d])
		}
		s := NewTiled(NewBox(lo, hi), tile)
		var sum uint64
		for _, reg := range s.Regions() {
			sum += reg.Points
		}
		if sum != s.Count() {
			t.Fatalf("iter %d: region points sum %d != total %d (tiles %v extents %v)",
				iter, sum, s.Count(), tile, hi)
		}
		if len(s.Regions()) != s.NumRegions() {
			t.Fatalf("iter %d: NumRegions disagrees with Regions()", iter)
		}
	}
}

// TestRegionOfPartitions checks that RegionOf assigns every point to
// exactly one region and that per-region point counts match.
func TestRegionOfPartitions(t *testing.T) {
	s := NewTiled(NewBox([]int64{1, 1}, []int64{7, 5}), []int64{3, 2})
	regs := s.Regions()
	counts := make([]uint64, len(regs))
	for _, p := range enumerate(s) {
		idx := s.RegionOf(p)
		if idx < 0 || idx >= len(regs) {
			t.Fatalf("RegionOf(%v) = %d", p, idx)
		}
		counts[idx]++
		// The point's tile coordinates must be within the region bounds.
		for d := 0; d < 2; d++ {
			if p[d] < regs[idx].TileLo[d] || p[d] > regs[idx].TileHi[d] {
				t.Fatalf("point %v assigned region %d with tile bounds [%d,%d] in dim %d",
					p, idx, regs[idx].TileLo[d], regs[idx].TileHi[d], d)
			}
		}
	}
	for i, reg := range regs {
		if counts[i] != reg.Points {
			t.Fatalf("region %d observed %d points, declared %d", i, counts[i], reg.Points)
		}
	}
	if s.RegionOf([]int64{2, 1, 2, 1}) != -1 {
		t.Fatal("invalid point assigned a region")
	}
}
