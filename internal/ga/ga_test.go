package ga

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
)

// TestPaperMappingExample reproduces the worked example of §3.3: upper
// bounds 10 and 100 give k=4 and k=8 bits; raw values 12 and 74 decode to
// tile sizes 8 and 29.
func TestPaperMappingExample(t *testing.T) {
	c1 := TileChromosome(10)
	if c1.Bits != 4 {
		t.Fatalf("U=10: bits = %d, want 4", c1.Bits)
	}
	c2 := TileChromosome(100)
	if c2.Bits != 8 { // ceil(log2 100) = 7, odd -> 8
		t.Fatalf("U=100: bits = %d, want 8", c2.Bits)
	}
	if got := c1.Decode(12); got != 8 {
		t.Fatalf("g1(12) = %d, want 8", got)
	}
	if got := c2.Decode(74); got != 29 {
		t.Fatalf("g2(74) = %d, want 29", got)
	}
}

// TestDecodeRangeAndSurjectivity: §3.3 claims every tile size has at least
// one representation, and decoded values always lie in [1, U].
func TestDecodeRangeAndSurjectivity(t *testing.T) {
	for _, u := range []int64{1, 2, 3, 7, 10, 16, 100, 127, 128, 1000} {
		c := TileChromosome(u)
		seen := map[int64]bool{}
		for x := uint64(0); x < uint64(1)<<c.Bits; x++ {
			v := c.Decode(x)
			if v < 1 || v > u {
				t.Fatalf("U=%d: Decode(%d) = %d out of range", u, x, v)
			}
			seen[v] = true
		}
		if int64(len(seen)) != u {
			t.Fatalf("U=%d: only %d of %d values representable", u, len(seen), u)
		}
	}
}

func TestSpecDecodeEncodeRoundTrip(t *testing.T) {
	spec := NewTileSpec([]int64{10, 100, 7})
	if spec.TotalBits() != 4+8+4 {
		t.Fatalf("TotalBits = %d", spec.TotalBits())
	}
	for _, vals := range [][]int64{{1, 1, 1}, {10, 100, 7}, {8, 29, 3}, {5, 50, 6}} {
		bits := spec.Encode(vals)
		got := spec.Decode(bits)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("round trip %v -> %v", vals, got)
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := PaperConfig(1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{PopSize: 1, CrossoverProb: 0.9, MutationProb: 0.001, MinGens: 1, MaxGens: 2},
		{PopSize: 10, CrossoverProb: 1.5, MutationProb: 0.001, MinGens: 1, MaxGens: 2},
		{PopSize: 10, CrossoverProb: 0.9, MutationProb: -1, MinGens: 1, MaxGens: 2},
		{PopSize: 10, CrossoverProb: 0.9, MutationProb: 0.001, MinGens: 5, MaxGens: 2},
		{PopSize: 10, CrossoverProb: 0.9, MutationProb: 0.001, MinGens: 1, MaxGens: 2, ConvergeFrac: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

// TestRunOptimizesSphere: the GA finds the minimum of a separable convex
// integer function over a modest search space.
func TestRunOptimizesSphere(t *testing.T) {
	spec := NewTileSpec([]int64{64, 64})
	target := []int64{17, 42}
	obj := func(v []int64) float64 {
		d0 := float64(v[0] - target[0])
		d1 := float64(v[1] - target[1])
		return d0*d0 + d1*d1
	}
	cfg := PaperConfig(12345)
	cfg.MaxGens = 60
	cfg.MinGens = 30
	res, err := Run(context.Background(), spec, obj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue > 25 { // within distance 5 of the optimum
		t.Fatalf("GA best %v (value %v) far from optimum %v", res.Best, res.BestValue, target)
	}
	if res.Evaluations == 0 || len(res.History) != res.Generations+1 {
		t.Fatalf("bookkeeping: evals=%d gens=%d history=%d", res.Evaluations, res.Generations, len(res.History))
	}
}

// TestRunDeterministic: same seed, same result.
func TestRunDeterministic(t *testing.T) {
	spec := NewTileSpec([]int64{32, 32})
	obj := func(v []int64) float64 { return float64((v[0]-9)*(v[0]-9)) + float64((v[1]-3)*(v[1]-3)) }
	a, err := Run(context.Background(), spec, obj, PaperConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), spec, obj, PaperConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.BestValue != b.BestValue || a.Generations != b.Generations || a.Evaluations != b.Evaluations {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
	c, err := Run(context.Background(), spec, obj, PaperConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seed may legitimately coincide; just ensure it runs
}

// TestScheduleBounds: the Figure-7 schedule runs at least MinGens and at
// most MaxGens generations.
func TestScheduleBounds(t *testing.T) {
	spec := NewTileSpec([]int64{16})
	obj := func(v []int64) float64 { return 0 } // flat: converges instantly
	cfg := PaperConfig(3)
	res, err := Run(context.Background(), spec, obj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations != cfg.MinGens {
		t.Fatalf("flat objective ran %d generations, want MinGens=%d", res.Generations, cfg.MinGens)
	}

	// An objective that punishes homogeneity can't converge: must stop at
	// MaxGens.
	calls := 0
	noisy := func(v []int64) float64 {
		calls++
		return float64(calls % 97) // effectively random, never homogeneous
	}
	res2, err := Run(context.Background(), spec, noisy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Generations > cfg.MaxGens {
		t.Fatalf("ran %d generations, cap %d", res2.Generations, cfg.MaxGens)
	}
}

// TestBestEverMonotone: the recorded best-ever trajectory never worsens.
func TestBestEverMonotone(t *testing.T) {
	spec := NewTileSpec([]int64{64, 64, 64})
	obj := func(v []int64) float64 {
		return math.Abs(float64(v[0]-31)) + math.Abs(float64(v[1]-1)) + math.Abs(float64(v[2]-64))
	}
	res, err := Run(context.Background(), spec, obj, PaperConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, h := range res.History {
		if h.BestEver > prev {
			t.Fatalf("best-ever worsened: %v", res.History)
		}
		prev = h.BestEver
		if h.Best < h.BestEver-1e-12 {
			t.Fatalf("generation best below best-ever: %+v", h)
		}
	}
}

// TestPaperEvaluationBudget: with the paper's parameters, the nominal
// evaluation budget is 15 generations × 30 individuals = 450 (§3.3). Our
// memoised engine performs at most that many distinct objective calls for
// a run that converges at generation 15.
func TestPaperEvaluationBudget(t *testing.T) {
	spec := NewTileSpec([]int64{100, 100})
	obj := func(v []int64) float64 { return float64(v[0] + v[1]) }
	cfg := PaperConfig(2024)
	res, err := Run(context.Background(), spec, obj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	budget := (res.Generations + 1) * cfg.PopSize
	if res.Evaluations > budget {
		t.Fatalf("evaluations %d exceed nominal budget %d", res.Evaluations, budget)
	}
}

func TestRunRejectsEmptySpec(t *testing.T) {
	if _, err := Run(context.Background(), Spec{}, func([]int64) float64 { return 0 }, PaperConfig(1)); err == nil {
		t.Fatal("empty spec accepted")
	}
}

// TestSeedValues: heuristic seeds are injected into the initial population
// and an optimal seed is found immediately.
func TestSeedValues(t *testing.T) {
	spec := NewTileSpec([]int64{1000, 1000})
	target := []int64{3, 997}
	obj := func(v []int64) float64 {
		d0 := float64(v[0] - target[0])
		d1 := float64(v[1] - target[1])
		return d0*d0 + d1*d1
	}
	cfg := PaperConfig(1)
	cfg.SeedValues = [][]int64{target}
	res, err := Run(context.Background(), spec, obj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue != 0 {
		t.Fatalf("seeded optimum not retained: best %v value %v", res.Best, res.BestValue)
	}
	// Seeds beyond PopSize-1 must not crowd out random individuals.
	cfg2 := PaperConfig(2)
	for i := 0; i < 40; i++ {
		cfg2.SeedValues = append(cfg2.SeedValues, []int64{int64(i + 1), int64(i + 1)})
	}
	if _, err := Run(context.Background(), spec, obj, cfg2); err != nil {
		t.Fatal(err)
	}
}

// TestSelectRSSProperties: remainder stochastic selection without
// replacement preserves the population size and, across many draws, gives
// fitter individuals at least as many expected copies.
func TestSelectRSSProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 5))
	pop := make([]individual, 10)
	for i := range pop {
		pop[i] = individual{bits: []byte{byte(i)}, value: float64(i)} // 0 best
	}
	counts := make([]int, len(pop))
	const rounds = 2000
	for round := 0; round < rounds; round++ {
		sel := selectRSS(pop, rng)
		if len(sel) != len(pop) {
			t.Fatalf("selection size %d != %d", len(sel), len(pop))
		}
		for _, ind := range sel {
			counts[ind.bits[0]]++
		}
	}
	// The best individual must be selected strictly more often than the
	// worst, and roughly monotonically across ranks.
	if counts[0] <= counts[9] {
		t.Fatalf("best selected %d times, worst %d", counts[0], counts[9])
	}
	if counts[0] <= counts[5] {
		t.Fatalf("best selected %d times, median %d", counts[0], counts[5])
	}
	// Scaling caps the best's expected copies near 2 per generation.
	perGen := float64(counts[0]) / rounds
	if perGen > 2.6 {
		t.Fatalf("best gets %.2f copies/gen; scaling cap not applied", perGen)
	}
}

// TestSelectRSSUniformPopulation: equal fitness selects everyone roughly
// uniformly without dividing by zero.
func TestSelectRSSUniform(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	pop := make([]individual, 6)
	for i := range pop {
		pop[i] = individual{bits: []byte{byte(i)}, value: 5}
	}
	counts := make([]int, len(pop))
	for round := 0; round < 3000; round++ {
		for _, ind := range selectRSS(pop, rng) {
			counts[ind.bits[0]]++
		}
	}
	for i, c := range counts {
		if c < 2400 || c > 3600 { // expect ~3000 each
			t.Fatalf("individual %d selected %d times (expected ~3000)", i, c)
		}
	}
}

// TestChromosomeAlphabets: gene-width rounding per alphabet.
func TestChromosomeAlphabets(t *testing.T) {
	// U=100 needs 7 bits: 1-bit alphabet keeps 7, 2-bit rounds to 8,
	// 3-bit rounds to 9.
	for _, c := range []struct{ gene, want int }{{1, 7}, {2, 8}, {3, 9}} {
		got := NewChromosomeBits(1, 100, c.gene).Bits
		if got != c.want {
			t.Errorf("geneBits=%d: bits=%d want %d", c.gene, got, c.want)
		}
	}
	// Surjectivity holds for any alphabet.
	for _, gene := range []int{1, 2, 3} {
		ch := NewChromosomeBits(1, 37, gene)
		seen := map[int64]bool{}
		for x := uint64(0); x < uint64(1)<<ch.Bits; x++ {
			seen[ch.Decode(x)] = true
		}
		if len(seen) != 37 {
			t.Errorf("geneBits=%d: %d/37 values representable", gene, len(seen))
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero gene width accepted")
			}
		}()
		NewChromosomeBits(1, 4, 0)
	}()
}

// TestCrossoverOperators: each operator preserves the multiset of bits at
// every position across the pair, and each finds the sphere optimum.
func TestCrossoverOperators(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 41))
	for _, kind := range []CrossoverKind{SinglePoint, TwoPoint, Uniform} {
		for iter := 0; iter < 500; iter++ {
			a := make([]byte, 12)
			b := make([]byte, 12)
			for i := range a {
				a[i] = byte(rng.IntN(2))
				b[i] = byte(rng.IntN(2))
			}
			sa := append([]byte(nil), a...)
			sb := append([]byte(nil), b...)
			crossover(kind, a, b, rng)
			for i := range a {
				if a[i]+b[i] != sa[i]+sb[i] {
					t.Fatalf("%v: position %d bits not conserved", kind, i)
				}
			}
		}
		spec := NewTileSpec([]int64{64, 64})
		obj := func(v []int64) float64 {
			d0, d1 := float64(v[0]-20), float64(v[1]-44)
			return d0*d0 + d1*d1
		}
		cfg := PaperConfig(77)
		cfg.Crossover = kind
		res, err := Run(context.Background(), spec, obj, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.BestValue > 100 {
			t.Errorf("%v: best %v too far from optimum", kind, res.BestValue)
		}
	}
	if SinglePoint.String() != "single-point" || TwoPoint.String() != "two-point" || Uniform.String() != "uniform" {
		t.Fatal("CrossoverKind strings")
	}
}
