package ga

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// mapMemo is a minimal SharedMemo: a locked map plus op counters.
type mapMemo struct {
	mu        sync.Mutex
	m         map[string]float64
	gets, hit int
}

func newMapMemo() *mapMemo { return &mapMemo{m: map[string]float64{}} }

func (mm *mapMemo) Get(key string) (float64, bool) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.gets++
	v, ok := mm.m[key]
	if ok {
		mm.hit++
	}
	return v, ok
}

func (mm *mapMemo) Put(key string, value float64) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.m[key] = value
}

// countingObjective is the deterministic test objective with a call
// counter (atomic: island demes evaluate concurrently), so tests can
// see which evaluations the memo absorbed.
func countingObjective(calls *atomic.Int64) Objective {
	return func(values []int64) float64 {
		calls.Add(1)
		var s float64
		for i, v := range values {
			s += float64(v%97) * float64(i+1)
		}
		return s
	}
}

// TestSharedMemoIslandTransparent: for a fixed seed, a run is
// bit-identical with no shared memo, a cold one, and a pre-warmed one —
// at one island and at four — and a warm run absorbs objective calls
// without changing the reported evaluation count (a shared hit spends
// the budget exactly like the evaluation it replaced).
func TestSharedMemoIslandTransparent(t *testing.T) {
	spec := NewTileSpec([]int64{64, 64, 64})
	for _, islands := range []int{1, 4} {
		cfg := PaperConfig(11)
		cfg.Islands = islands
		var baseCalls atomic.Int64
		base, err := Run(context.Background(), spec, countingObjective(&baseCalls), cfg)
		if err != nil {
			t.Fatal(err)
		}

		memo := newMapMemo()
		cfg.SharedMemo = memo
		var coldCalls atomic.Int64
		cold, err := Run(context.Background(), spec, countingObjective(&coldCalls), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Best, cold.Best) || base.BestValue != cold.BestValue ||
			base.Evaluations != cold.Evaluations || base.Generations != cold.Generations {
			t.Fatalf("islands=%d: cold shared memo changed the run: %+v vs %+v", islands, base, cold)
		}
		// A cold memo adds no work at one island; at several it may
		// already absorb duplicates across demes — never add calls.
		if c := coldCalls.Load(); c > baseCalls.Load() || (islands == 1 && c != baseCalls.Load()) {
			t.Fatalf("islands=%d: cold run made %d objective calls, baseline %d", islands, c, baseCalls.Load())
		}

		var warmCalls atomic.Int64
		warm, err := Run(context.Background(), spec, countingObjective(&warmCalls), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Best, warm.Best) || base.BestValue != warm.BestValue ||
			base.Evaluations != warm.Evaluations || base.Generations != warm.Generations {
			t.Fatalf("islands=%d: warm shared memo changed the run: %+v vs %+v", islands, base, warm)
		}
		if warmCalls.Load() >= baseCalls.Load() {
			t.Fatalf("islands=%d: warm run made %d objective calls, want fewer than %d", islands, warmCalls.Load(), baseCalls.Load())
		}
		if memo.hit == 0 {
			t.Fatalf("islands=%d: warm run recorded no shared-memo hits (%d gets)", islands, memo.gets)
		}
	}
}

// TestSharedMemoConsultedAfterLocal: a value present in the shared tier
// for a genome the run evaluates repeatedly is fetched once — later
// occurrences are served by the run's local memo, which never touches
// the shared tier.
func TestSharedMemoConsultedAfterLocal(t *testing.T) {
	spec := NewTileSpec([]int64{16, 16})
	cfg := PaperConfig(3)
	var calls atomic.Int64
	if _, err := Run(context.Background(), spec, countingObjective(&calls), cfg); err != nil {
		t.Fatal(err)
	}
	memo := newMapMemo()
	cfg.SharedMemo = memo
	res, err := Run(context.Background(), spec, countingObjective(&calls), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every shared Get must correspond to one budget-spending evaluation:
	// local-memo hits bypass the shared tier entirely.
	if memo.gets != res.Evaluations {
		t.Fatalf("shared memo consulted %d times for %d evaluations", memo.gets, res.Evaluations)
	}
}
