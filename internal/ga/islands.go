package ga

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// This file implements the island-model runtime behind Config.Islands:
// the population is split into N demes, each evolving the classic
// Figure-4/6/7 algorithm on its own PCG stream, with ring-topology elite
// migration at fixed generation barriers and a deterministic merge of the
// per-island results.
//
// Determinism is the design constraint everything bends around. Each
// island's RNG stream is derived from Seed1/Seed2 and the island index
// alone, every deme advances an exact number of generations between
// barriers, and all cross-island effects (migration, telemetry flushes,
// checkpoints, the final merge) happen serially in island order at the
// barriers. Goroutines only parallelise the stretches between barriers,
// where demes share nothing, so the result is a pure function of
// (spec, objective, config) at any worker interleaving.

// splitmix64 is the SplitMix64 finalizer; it turns structured seed inputs
// (seed XOR island index) into statistically independent PCG seeds.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// islandSeeds derives island i's PCG seed pair. The derivation depends
// only on the run's seeds and the island index — not the island count —
// and island 0's stream deliberately differs from the single-population
// stream: the two runtimes are different algorithms and must not be
// conflated by a seed collision.
func islandSeeds(cfg Config, island int) (uint64, uint64) {
	k := uint64(island) + 1
	return splitmix64(cfg.Seed1 ^ (k * 0x9e3779b97f4a7c15)),
		splitmix64(cfg.Seed2 ^ (k * 0xd1342543de82ef95))
}

// islandSizes splits popSize across n demes as evenly as possible, the
// remainder going to the lowest-indexed islands.
func islandSizes(popSize, n int) []int {
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = popSize / n
		if i < popSize%n {
			sizes[i]++
		}
	}
	return sizes
}

// islandBudgets splits a MaxEvaluations budget the same way (0 stays
// unlimited for every deme).
func islandBudgets(budget, n int) []int {
	out := make([]int, n)
	if budget <= 0 {
		return out
	}
	for i := range out {
		out[i] = budget / n
		if i < budget%n {
			out[i]++
		}
	}
	return out
}

// deme is one island: a sub-population with its own RNG stream, memo
// table, evaluation-budget share and Figure-7 schedule state. Its methods
// mirror the closures of the single-population Run loop.
type deme struct {
	idx  int // 0-based island index
	spec Spec
	cfg  Config
	obj  Objective
	size int // target population size

	src *rand.PCG
	rng *rand.Rand
	pop []individual

	memo     map[string]float64
	evals    int
	memoHits int
	budget   int // this deme's MaxEvaluations share (0 = unlimited)

	// Multi-fidelity state (nil fe = classic path): the deme's ladder
	// evaluator, its classified-point counter and its point-budget share
	// (budget × the full sample size, 0 = unlimited).
	fe          FidelityEvaluator
	evalPoints  int64
	pointBudget int64

	gen       int
	history   []GenStats
	best      []int64
	bestValue float64

	halted     bool
	haltReason StopReason
	done       bool // the Figure-7 schedule stopped this deme

	// flushedEvals/flushedMemoHits track what the coordinator already
	// reported to the observer; events buffers per-generation telemetry
	// between barriers so the stream stays in deterministic island order.
	flushedEvals    int
	flushedMemoHits int
	events          []telemetry.Event

	start time.Time
}

// checkHalt is the per-deme halt predicate: context first, then this
// deme's budget share.
func (d *deme) checkHalt(ctx context.Context) (StopReason, bool) {
	select {
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return StopDeadline, true
		}
		return StopCancelled, true
	default:
	}
	if d.fe != nil {
		if d.pointBudget > 0 && d.evalPoints >= d.pointBudget {
			return StopBudget, true
		}
	} else if d.budget > 0 && d.evals >= d.budget {
		return StopBudget, true
	}
	return StopConverged, false
}

// ladder builds this deme's successive-halving ladder, bound to its memo,
// counters and halt state. Rung events are buffered like every other
// per-island event and flushed in island order at the barriers.
func (d *deme) ladder(ctx context.Context) *fidelityLadder {
	l := &fidelityLadder{
		fe: d.fe, sched: d.cfg.Fidelity.Schedule(d.fe.Points()), eta: d.cfg.Fidelity.eta(),
		spec: d.spec, label: d.cfg.Label, island: d.idx + 1, memo: d.memo,
		checkHalt: func() (StopReason, bool) { return d.checkHalt(ctx) },
		onHalt:    func(r StopReason) { d.halted, d.haltReason = true, r },
		isHalted:  func() bool { return d.halted },
		charge:    func(points int) { d.evalPoints += int64(points) },
		evals:     &d.evals, memoHits: &d.memoHits,
	}
	if d.cfg.Observer != nil {
		l.emit = func(e telemetry.Event) { d.events = append(d.events, e) }
	}
	return l
}

// evalFn builds the memoised halt-aware evaluation closure nextGeneration
// expects, bound to this deme's memo, budget and objective.
func (d *deme) evalFn(ctx context.Context) func(*individual, bool) bool {
	return func(ind *individual, force bool) bool {
		key := string(ind.bits)
		if v, ok := d.memo[key]; ok {
			ind.value = v
			d.memoHits++
			return true
		}
		if !force && !d.halted {
			if r, h := d.checkHalt(ctx); h {
				d.halted, d.haltReason = true, r
				return false
			}
		}
		if d.halted {
			return false
		}
		// Shared tier behind the local memo and halt check, exactly like
		// the single-population eval: a hit spends this deme's budget and
		// fills its memo as the computation would, so deme trajectories
		// are identical cold or warm. Demes also exchange finished values
		// through the shared tier, which is safe on the same grounds as
		// migrated memo entries: islands must compute identical values for
		// identical genomes.
		if d.cfg.SharedMemo != nil {
			if v, ok := d.cfg.SharedMemo.Get(key); ok {
				ind.value = v
				d.memo[key] = v
				d.evals++
				return true
			}
		}
		ind.value = d.obj(d.spec.Decode(ind.bits))
		d.memo[key] = ind.value
		d.evals++
		if d.cfg.SharedMemo != nil {
			d.cfg.SharedMemo.Put(key, ind.value)
		}
		return true
	}
}

// record appends this generation's statistics to the deme history,
// updates the deme best-ever and buffers the island-tagged GenerationDone
// event for the next barrier flush.
func (d *deme) record() {
	best, sum := math.Inf(1), 0.0
	for i := range d.pop {
		sum += d.pop[i].value
		if d.pop[i].value < best {
			best = d.pop[i].value
		}
		if d.pop[i].value < d.bestValue {
			d.bestValue = d.pop[i].value
			d.best = d.spec.Decode(d.pop[i].bits)
		}
	}
	if d.best == nil && len(d.pop) > 0 {
		// All +Inf (context died before the first evaluation finished):
		// keep the least-bad individual so the merge always has a
		// decodable candidate, exactly like the single-population path.
		bi := 0
		for i := range d.pop {
			if d.pop[i].value < d.pop[bi].value {
				bi = i
			}
		}
		d.bestValue = d.pop[bi].value
		d.best = d.spec.Decode(d.pop[bi].bits)
	}
	avg := sum / float64(len(d.pop))
	st := GenStats{Gen: d.gen, Best: best, Avg: avg, BestEver: d.bestValue}
	if avg == 0 {
		st.Converged = best == 0
	} else {
		st.Converged = (avg-best)/avg < d.cfg.ConvergeFrac
	}
	d.history = append(d.history, st)
	if d.cfg.Observer != nil {
		d.events = append(d.events, telemetry.GenerationDone{
			Search: d.cfg.Label, Island: d.idx + 1, Gen: d.gen,
			Best: st.Best, Avg: st.Avg, BestEver: d.bestValue,
			Evaluations: d.evals, MemoHits: d.memoHits,
			Elapsed: time.Since(d.start),
		})
	}
}

// initPopulation builds and evaluates the deme's generation-0 population:
// this island's share of the seed individuals first (clamped to size-1 so
// random diversity survives), random bits for the rest. The first
// individual is force-evaluated so every deme always has a best-so-far.
func (d *deme) initPopulation(ctx context.Context, seeds [][]int64) {
	eval := d.evalFn(ctx)
	d.pop = make([]individual, 0, d.size)
	for i := 0; i < d.size; i++ {
		var ind individual
		if i < len(seeds) && i < d.size-1 {
			ind.bits = d.spec.Encode(seeds[i])
		} else {
			ind.bits = make([]byte, d.spec.TotalBits())
			for b := range ind.bits {
				ind.bits[b] = byte(d.rng.IntN(2))
			}
		}
		if d.fe != nil {
			// Fidelity: collect the whole batch first (same RNG
			// consumption), then ladder it together below.
			d.pop = append(d.pop, ind)
			continue
		}
		if !eval(&ind, i == 0) {
			break
		}
		d.pop = append(d.pop, ind)
	}
	if d.fe != nil {
		batch := make([]*individual, len(d.pop))
		for i := range d.pop {
			batch[i] = &d.pop[i]
		}
		assigned, _ := d.ladder(ctx).run(batch, true)
		d.pop = d.pop[:assigned]
	}
	d.record()
}

// advance evolves the deme up to the target generation (the next
// migration barrier), stopping early when its Figure-7 schedule fires or
// a halt (context, budget share) lands. Each call makes progress: it
// either completes generations, sets done, or sets halted.
func (d *deme) advance(ctx context.Context, target int) {
	eval := d.evalFn(ctx)
	for !d.halted && !d.done && d.gen < target {
		var stop bool
		switch {
		case d.gen < d.cfg.MinGens:
		case d.gen < d.cfg.MaxGens:
			stop = d.history[len(d.history)-1].Converged
		default:
			stop = true
		}
		if stop {
			d.done = true
			return
		}
		if r, h := d.checkHalt(ctx); h {
			d.halted, d.haltReason = true, r
			return
		}
		var next []individual
		var ok bool
		if d.fe != nil {
			next, ok = nextGenerationFidelity(d.pop, d.spec, d.cfg, d.rng, d.ladder(ctx))
		} else {
			next, ok = nextGeneration(d.pop, d.spec, d.cfg, d.rng, eval)
		}
		if !ok {
			// Halted mid-generation: the partial generation is discarded
			// and the deme stays on its last completed boundary.
			return
		}
		d.gen++
		d.pop = next
		d.record()
	}
}

// active reports whether the deme still evolves.
func (d *deme) active() bool { return !d.halted && !d.done }

// state snapshots the deme for a version-2 checkpoint.
func (d *deme) state() (IslandState, error) {
	rngState, err := d.src.MarshalBinary()
	if err != nil {
		return IslandState{}, fmt.Errorf("ga: marshalling island %d RNG state: %w", d.idx+1, err)
	}
	st := IslandState{
		Gen:       d.gen,
		Evals:     d.evals,
		RNG:       rngState,
		Pop:       make([][]byte, len(d.pop)),
		Memo:      make([]MemoEntry, 0, len(d.memo)),
		Best:      append([]int64(nil), d.best...),
		BestValue: d.bestValue,
		History:   append([]GenStats(nil), d.history...),
	}
	for i := range d.pop {
		st.Pop[i] = cloneBits(d.pop[i].bits)
	}
	for k, v := range d.memo {
		st.Memo = append(st.Memo, MemoEntry{Bits: []byte(k), Value: v})
	}
	st.EvalPoints = d.evalPoints
	return st, nil
}

// restore rebuilds the deme from a version-2 checkpoint entry.
func (d *deme) restore(st IslandState) error {
	if err := d.src.UnmarshalBinary(st.RNG); err != nil {
		return fmt.Errorf("ga: restoring island %d RNG state: %w", d.idx+1, err)
	}
	d.gen = st.Gen
	d.evals = st.Evals
	d.evalPoints = st.EvalPoints
	// The interrupted run already reported this deme's work.
	d.flushedEvals = st.Evals
	for _, e := range st.Memo {
		d.memo[string(e.Bits)] = e.Value
	}
	d.pop = make([]individual, len(st.Pop))
	for i, bits := range st.Pop {
		v, ok := d.memo[string(bits)]
		if !ok {
			return fmt.Errorf("ga: island %d checkpoint individual %d missing from memo", d.idx+1, i)
		}
		d.pop[i] = individual{bits: cloneBits(bits), value: v}
	}
	d.best = append([]int64(nil), st.Best...)
	d.bestValue = st.BestValue
	d.history = append([]GenStats(nil), st.History...)
	return nil
}

// parallelDemes runs fn over the demes concurrently and waits for all of
// them; the first captured panic is re-raised only after every goroutine
// has drained, so a panicking objective cannot leak demes mid-barrier.
func parallelDemes(ds []*deme, fn func(*deme)) {
	var wg sync.WaitGroup
	panics := make([]any, len(ds))
	for i, d := range ds {
		wg.Add(1)
		go func(i int, d *deme) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			fn(d)
		}(i, d)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// eliteCopies returns deep copies of the k best individuals of pop
// (lowest value first, ties to the lower index).
func eliteCopies(pop []individual, k int) []individual {
	if k > len(pop) {
		k = len(pop)
	}
	taken := make([]bool, len(pop))
	out := make([]individual, 0, k)
	for c := 0; c < k; c++ {
		bi := -1
		for i := range pop {
			if taken[i] {
				continue
			}
			if bi < 0 || pop[i].value < pop[bi].value {
				bi = i
			}
		}
		taken[bi] = true
		out = append(out, individual{bits: cloneBits(pop[bi].bits), value: pop[bi].value})
	}
	return out
}

// receiveMigrants replaces the deme's worst individuals with the incoming
// elites (highest value evicted first, ties to the higher index) and
// records their objective values in the memo — valid because every island
// evaluates the same objective over the same sample.
func (d *deme) receiveMigrants(migrants []individual) {
	for _, m := range migrants {
		wi := 0
		for i := 1; i < len(d.pop); i++ {
			if d.pop[i].value >= d.pop[wi].value {
				wi = i
			}
		}
		d.pop[wi] = individual{bits: cloneBits(m.bits), value: m.value}
		d.memo[string(m.bits)] = m.value
	}
}

// migrate performs one simultaneous ring exchange: every island's elites
// are snapshotted first, then each still-active island i receives from
// its ring predecessor (i-1+N) mod N. Returned events are the buffered
// IslandMigration records in island order.
func migrate(demes []*deme, count int, observed bool) []telemetry.Event {
	n := len(demes)
	elites := make([][]individual, n)
	for i, d := range demes {
		elites[i] = eliteCopies(d.pop, count)
	}
	var events []telemetry.Event
	for i, d := range demes {
		if !d.active() {
			// A finished deme's population is final; it still donates its
			// elites to its ring successor above.
			continue
		}
		from := (i - 1 + n) % n
		mig := elites[from]
		if len(mig) == 0 {
			continue
		}
		d.receiveMigrants(mig)
		if observed {
			events = append(events, telemetry.IslandMigration{
				Search: d.cfg.Label, From: from + 1, To: i + 1,
				Count: len(mig), Gen: d.gen,
			})
		}
	}
	return events
}

// stopRank orders halt reasons for the merged Stopped field: the most
// externally forceful reason wins across islands.
func stopRank(r StopReason) int {
	switch r {
	case StopCancelled:
		return 3
	case StopDeadline:
		return 2
	case StopBudget:
		return 1
	default:
		return 0
	}
}

// mergeResult folds the per-island outcomes into one Result: best of the
// bests (ties to the lower island), summed evaluations, the maximum
// generation count, a size-weighted merged history and the most forceful
// stop reason.
func mergeResult(demes []*deme, warnings []string) Result {
	var res Result
	res.BestValue = math.Inf(1)
	res.Warnings = warnings
	for _, d := range demes {
		res.Evaluations += d.evals
		if d.gen > res.Generations {
			res.Generations = d.gen
		}
		if d.best == nil {
			continue
		}
		if res.Best == nil || d.bestValue < res.BestValue {
			res.BestValue = d.bestValue
			res.Best = append([]int64(nil), d.best...)
		}
	}
	// Merge histories generation by generation: Best is the min across
	// islands, Avg weights each island by its population share, BestEver
	// is the running cross-island minimum (monotone by construction).
	bestEver := math.Inf(1)
	for g := 0; g <= res.Generations; g++ {
		var (
			st     GenStats
			weight int
			any    bool
		)
		st.Gen = g
		st.Best = math.Inf(1)
		st.Converged = true
		for _, d := range demes {
			if g >= len(d.history) {
				continue
			}
			h := d.history[g]
			if !any {
				any = true
			}
			if h.Best < st.Best {
				st.Best = h.Best
			}
			st.Avg += h.Avg * float64(d.size)
			weight += d.size
			if h.BestEver < bestEver {
				bestEver = h.BestEver
			}
			st.Converged = st.Converged && h.Converged
		}
		if !any {
			break
		}
		st.Avg /= float64(weight)
		st.BestEver = bestEver
		res.History = append(res.History, st)
	}
	for _, d := range demes {
		if d.halted && stopRank(d.haltReason) > stopRank(res.Stopped) {
			res.Stopped = d.haltReason
		}
	}
	return res
}

// runIslands is the island-model coordinator. The demes evolve
// concurrently between migration barriers; at every barrier the
// coordinator — single-threaded, in island order — flushes buffered
// telemetry, performs the ring migration and writes one version-2
// checkpoint capturing every island, so ResumeFrom replays the run
// bit-for-bit from any barrier.
func runIslands(ctx context.Context, spec Spec, obj Objective, cfg Config) (Result, error) {
	n := cfg.Islands
	interval := cfg.migrationInterval()
	count := cfg.migrationCount()
	start := time.Now()
	nbits := spec.TotalBits()

	sizes := islandSizes(cfg.PopSize, n)
	budgets := islandBudgets(cfg.MaxEvaluations, n)
	demes := make([]*deme, n)
	for i := range demes {
		s1, s2 := islandSeeds(cfg, i)
		src := rand.NewPCG(s1, s2)
		d := &deme{
			idx: i, spec: spec, cfg: cfg, obj: obj, size: sizes[i],
			src: src, rng: rand.New(src),
			memo: map[string]float64{}, budget: budgets[i],
			bestValue: math.Inf(1), start: start,
		}
		if cfg.IslandObjective != nil {
			d.obj = cfg.IslandObjective(i)
		}
		if cfg.Fidelity.Enabled() {
			d.fe = cfg.FidelityEval
			if cfg.IslandFidelityEval != nil {
				d.fe = cfg.IslandFidelityEval(i)
			}
			if d.fe == nil {
				return Result{}, fmt.Errorf("ga: fidelity enabled but no FidelityEval supplied")
			}
			npts := d.fe.Points()
			if npts <= 0 {
				return Result{}, fmt.Errorf("ga: fidelity evaluator reports %d sample points", npts)
			}
			if d.budget > 0 {
				d.pointBudget = int64(d.budget) * int64(npts)
			}
		}
		demes[i] = d
	}

	// flush forwards buffered per-island events and counter deltas to the
	// observer, serially in island order.
	flush := func() {
		if cfg.Observer == nil {
			return
		}
		for _, d := range demes {
			for _, e := range d.events {
				cfg.Observer.Event(e)
			}
			d.events = d.events[:0]
			dE, dM := d.evals-d.flushedEvals, d.memoHits-d.flushedMemoHits
			if dE != 0 || dM != 0 {
				cfg.Observer.Add(telemetry.Counters{Evaluations: uint64(dE), MemoHits: uint64(dM)})
				d.flushedEvals, d.flushedMemoHits = d.evals, d.memoHits
			}
		}
	}
	defer flush()

	round := 0
	snapshot := func() error {
		if cfg.Checkpoint == nil {
			return nil
		}
		cp := &Checkpoint{
			Version:  checkpointVersionIslands,
			Label:    cfg.Label,
			SpecBits: nbits,
			Round:    round,
			Islands:  make([]IslandState, n),
		}
		if cfg.Fidelity.Enabled() {
			cp.Version = checkpointVersionFidelity
			cp.Fidelity = &FidelityState{
				Rungs: cfg.Fidelity.Rungs, Eta: cfg.Fidelity.eta(),
				MinPoints: cfg.Fidelity.minPoints(), Points: demes[0].fe.Points(),
			}
		}
		individuals, memoEntries := 0, 0
		for i, d := range demes {
			st, err := d.state()
			if err != nil {
				return err
			}
			cp.Islands[i] = st
			cp.Evals += d.evals
			cp.EvalPoints += d.evalPoints
			if d.gen > cp.Gen {
				cp.Gen = d.gen
			}
			if d.best != nil && (cp.Best == nil || d.bestValue < cp.BestValue) {
				cp.Best = append([]int64(nil), d.best...)
				cp.BestValue = d.bestValue
			}
			individuals += len(d.pop)
			memoEntries += len(d.memo)
		}
		if err := cfg.Checkpoint(cp); err != nil {
			return err
		}
		if cfg.Observer != nil {
			cfg.Observer.Event(telemetry.CheckpointWritten{
				Search: cfg.Label, Gen: cp.Gen,
				Individuals: individuals, MemoEntries: memoEntries,
			})
		}
		return nil
	}

	var warnings []string
	if cp := cfg.ResumeFrom; cp != nil {
		if err := cp.validate(spec, cfg); err != nil {
			return Result{}, err
		}
		if cfg.Fidelity.Enabled() && cp.Fidelity != nil && cp.Fidelity.Points != demes[0].fe.Points() {
			return Result{}, fmt.Errorf("ga: checkpoint records a %d-point sample, evaluator has %d", cp.Fidelity.Points, demes[0].fe.Points())
		}
		for i, d := range demes {
			if err := d.restore(cp.Islands[i]); err != nil {
				return Result{}, err
			}
		}
		round = cp.Round
	} else {
		// Deal the seed individuals round-robin across the islands so every
		// deme gets a heuristic foothold, then build generation 0 in
		// parallel and flush/checkpoint at the first barrier.
		seeds := make([][][]int64, n)
		for j, sv := range cfg.SeedValues {
			seeds[j%n] = append(seeds[j%n], sv)
		}
		for i := range demes {
			warnings = append(warnings, seedClampWarnings(len(seeds[i]), sizes[i], i)...)
		}
		parallelDemes(demes, func(d *deme) { d.initPopulation(ctx, seeds[d.idx]) })
		flush()
		if allComplete(demes) {
			if err := snapshot(); err != nil {
				return Result{}, err
			}
		}
	}

	for {
		var active []*deme
		for _, d := range demes {
			if d.active() {
				active = append(active, d)
			}
		}
		if len(active) == 0 {
			break
		}
		round++
		target := round * interval
		parallelDemes(active, func(d *deme) { d.advance(ctx, target) })
		flush()
		events := migrate(demes, count, cfg.Observer != nil)
		for _, e := range events {
			cfg.Observer.Event(e)
		}
		if allComplete(demes) {
			if err := snapshot(); err != nil {
				return Result{}, err
			}
		}
	}

	return mergeResult(demes, warnings), nil
}

// allComplete reports that every island sits on a clean boundary: full
// population evaluated and no deme halted. A halted deme's state is
// frozen at the instant its bound fired — mid-generation RNG position,
// possibly a partial generation-0 population — which depends on *which*
// bound (budget slice, deadline, cancellation) interrupted it. Writing
// that state would poison the resume contract: a snapshot chain must
// contain only states the same seed reaches under any bound, so that
// resuming an interrupted run with a different (or no) budget replays
// the uninterrupted search exactly, just like the single-population
// runtime. Demes stopped by their schedule (done) are complete by
// definition and budget-independent.
func allComplete(demes []*deme) bool {
	for _, d := range demes {
		if d.halted || len(d.pop) != d.size {
			return false
		}
	}
	return true
}
