package ga

import (
	"bytes"
	"strings"
	"testing"
)

// sampleCheckpoint builds a small self-consistent snapshot with the memo
// deliberately out of genome order.
func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Version:  checkpointVersion,
		Label:    "tiling",
		SpecBits: 4,
		Gen:      2,
		Evals:    7,
		RNG:      []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		Pop: [][]byte{
			{1, 1, 0, 0},
			{0, 1, 0, 1},
		},
		Memo: []MemoEntry{
			{Bits: []byte{1, 1, 0, 0}, Value: 9},
			{Bits: []byte{0, 0, 0, 1}, Value: 3},
			{Bits: []byte{0, 1, 0, 1}, Value: 5},
		},
		Best:      []int64{3, 5},
		BestValue: 3,
		History: []GenStats{
			{Gen: 0, Best: 5, Avg: 7, BestEver: 5},
			{Gen: 1, Best: 3, Avg: 6, BestEver: 3},
			{Gen: 2, Best: 3, Avg: 5.5, BestEver: 3},
		},
	}
}

// TestWriteCheckpointDoesNotMutateMemo: the serialiser sorts a copy of
// the memo, never the caller's slice — the GA hands WriteCheckpoint its
// live snapshot, and reordering it behind the caller's back corrupted
// any later use of the same Checkpoint value.
func TestWriteCheckpointDoesNotMutateMemo(t *testing.T) {
	c := sampleCheckpoint()
	orig := make([]MemoEntry, len(c.Memo))
	copy(orig, c.Memo)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if !bytes.Equal(c.Memo[i].Bits, orig[i].Bits) || c.Memo[i].Value != orig[i].Value {
			t.Fatalf("WriteCheckpoint reordered the caller's memo:\n got %v\nwant %v", c.Memo, orig)
		}
	}
	// The caller's Sum stays untouched too.
	if c.Sum != "" {
		t.Fatalf("WriteCheckpoint mutated the caller's Sum to %q", c.Sum)
	}
	// And the written form is still sorted (deterministic bytes).
	var buf2 bytes.Buffer
	c2 := sampleCheckpoint()
	c2.Memo[0], c2.Memo[1] = c2.Memo[1], c2.Memo[0] // different input order
	if err := WriteCheckpoint(&buf2, c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("memo input order leaked into the serialised bytes")
	}
}

func TestCheckpointSumRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"sum"`) {
		t.Fatalf("serialised checkpoint has no sum field:\n%s", buf.String())
	}
	c, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round trip rejected: %v", err)
	}
	if c.Gen != 2 || c.Evals != 7 || len(c.Memo) != 3 || c.Sum == "" {
		t.Fatalf("round trip lost state: %+v", c)
	}
}

func TestCheckpointSumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	// Flip a value inside the body without breaking JSON syntax.
	corrupted := strings.Replace(buf.String(), `"evals": 7`, `"evals": 8`, 1)
	if corrupted == buf.String() {
		t.Fatalf("fixture drift: evals field not found in\n%s", buf.String())
	}
	if _, err := ReadCheckpoint(strings.NewReader(corrupted)); err == nil {
		t.Fatal("bit-flipped checkpoint accepted")
	} else if !strings.Contains(err.Error(), "integrity") {
		t.Fatalf("corruption surfaced as %v, want an integrity error", err)
	}
}

func TestCheckpointWithoutSumAccepted(t *testing.T) {
	// Snapshots written before the integrity field existed decode fine.
	c := sampleCheckpoint()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	legacy := strings.Replace(buf.String(), `,
 "sum"`, `,
 "nosum"`, 1)
	got, err := ReadCheckpoint(strings.NewReader(legacy))
	if err != nil {
		// The replace above renames the field; if the fixture drifts, be
		// loud about it rather than silently testing nothing.
		t.Fatalf("legacy (sum-less) checkpoint rejected: %v", err)
	}
	if got.Gen != c.Gen {
		t.Fatalf("legacy decode lost state: %+v", got)
	}
}

func TestCheckpointTruncatedRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}
