package ga

import (
	"reflect"
	"strings"
	"testing"
)

// TestFidelitySchedule: the rung schedule is a pure function of the knobs
// and the sample size — ascending cumulative prefixes, floored at
// MinPoints, capped and terminated at the full sample, duplicates
// collapsed.
func TestFidelitySchedule(t *testing.T) {
	cases := []struct {
		name string
		f    Fidelity
		n    int
		want []int
	}{
		{"off", Fidelity{}, 164, []int{164}},
		{"one rung", Fidelity{Rungs: 1}, 164, []int{164}},
		{"paper sample eta2", Fidelity{Rungs: 3}, 164, []int{41, 82, 164}},
		{"eta3 with floor", Fidelity{Rungs: 4, Eta: 3}, 164, []int{16, 19, 55, 164}},
		{"floor collapses small sample", Fidelity{Rungs: 3}, 8, []int{8}},
		{"custom floor", Fidelity{Rungs: 3, MinPoints: 60}, 164, []int{60, 82, 164}},
		{"deep ladder dedups", Fidelity{Rungs: 6}, 64, []int{16, 32, 64}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.f.Schedule(tc.n)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Schedule(%d) = %v, want %v", tc.n, got, tc.want)
			}
			if got[len(got)-1] != tc.n {
				t.Fatalf("schedule does not end at the full sample: %v", got)
			}
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Fatalf("schedule not strictly ascending: %v", got)
				}
			}
		})
	}
}

// TestFidelityValidate: bad knobs are rejected, the zero value and
// sensible configurations pass.
func TestFidelityValidate(t *testing.T) {
	for _, f := range []Fidelity{{}, {Rungs: 3}, {Rungs: 4, Eta: 2.5, MinPoints: 8}} {
		if err := f.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", f, err)
		}
	}
	for _, f := range []Fidelity{{Rungs: -1}, {Eta: 1}, {Eta: 0.5}, {MinPoints: -3}} {
		if err := f.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid configuration", f)
		}
	}
}

// TestFidelityRejectsSharedMemo: pruned candidates memoise cohort-dependent
// scaled fitness, which must never feed the cross-search memo tier.
func TestFidelityRejectsSharedMemo(t *testing.T) {
	cfg := PaperConfig(1)
	cfg.Fidelity = Fidelity{Rungs: 3}
	cfg.SharedMemo = &mapMemo{}
	err := cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "shared memo") {
		t.Fatalf("Validate = %v, want shared-memo incompatibility", err)
	}
}
