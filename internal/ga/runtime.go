package ga

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// ErrCheckpointCorrupt is wrapped by every ReadCheckpoint failure caused
// by the snapshot's content — undecodable JSON (including a zero-length
// file) or a failed integrity sum — as opposed to the I/O errors of
// reading it. Callers use errors.Is to distinguish "the file is bad"
// (fall back to the previous-good copy, alert on storage) from "the read
// failed" (alert on the environment).
var ErrCheckpointCorrupt = errors.New("ga: checkpoint corrupt")

// StopReason explains why a search run terminated. The zero value,
// StopConverged, is the normal Figure-7 termination (convergence criterion
// or generation cap); every other reason marks an externally bounded run
// whose Result still carries the best candidate found so far.
type StopReason int

const (
	// StopConverged is normal termination: the §3.3 convergence criterion
	// fired inside the 15–25 generation window, or the hard generation cap
	// was reached. Only this reason matches the paper's Figure-7 schedule.
	StopConverged StopReason = iota
	// StopDeadline means the context's deadline expired mid-search.
	StopDeadline
	// StopBudget means the MaxEvaluations budget was exhausted.
	StopBudget
	// StopCancelled means the context was cancelled (e.g. SIGINT).
	StopCancelled
)

func (r StopReason) String() string {
	switch r {
	case StopDeadline:
		return "deadline"
	case StopBudget:
		return "budget"
	case StopCancelled:
		return "cancelled"
	default:
		return "converged"
	}
}

// Progress is the per-generation report delivered to the deprecated
// Options.Progress callback of the facade. It is derived from the
// GenerationDone telemetry event by a compatibility adapter; new code
// should observe the typed event stream through Config.Observer instead.
type Progress struct {
	// Gen is the generation just recorded (0 = initial population).
	Gen int
	// Best and Avg are the generation's best (lowest) and average
	// objective values; BestEver is the best seen across the whole run.
	Best, Avg, BestEver float64
	// Evaluations is the number of distinct objective evaluations so far.
	Evaluations int
	// Island is the 1-based island the generation belongs to; 0 means the
	// classic single-population runtime.
	Island int
	// Elapsed is the wall-clock time since Run started (resumed runs
	// count from the resume, not the original start).
	Elapsed time.Duration
}

// MemoEntry is one (genome, objective value) pair of the evaluation memo.
type MemoEntry struct {
	Bits  []byte  `json:"bits"`
	Value float64 `json:"value"`
}

// Checkpoint is a JSON-serialisable snapshot of a run taken at a
// generation boundary. Restoring it with Config.ResumeFrom continues the
// search deterministically: a run interrupted at generation k and resumed
// from its checkpoint produces exactly the result of the uninterrupted
// run, because the snapshot carries the population, the PCG state, the
// evaluation memo and the accumulated history.
type Checkpoint struct {
	Version int `json:"version"`
	// Label names the search phase that wrote the snapshot (e.g.
	// "tiling", "padding"); resuming under a different non-empty label is
	// rejected.
	Label string `json:"label,omitempty"`
	// SpecBits guards against resuming with a different genome layout.
	SpecBits int `json:"spec_bits"`
	// Gen is the last completed generation; Evals the objective calls
	// spent so far.
	Gen   int `json:"gen"`
	Evals int `json:"evals"`
	// RNG is the marshalled PCG state at the generation boundary.
	RNG []byte `json:"rng"`
	// Pop holds each individual's genome (one byte per bit).
	Pop [][]byte `json:"pop"`
	// Memo replays the evaluation cache so resumed runs neither re-spend
	// budget on known genomes nor drift in their Evaluations count.
	Memo []MemoEntry `json:"memo"`
	// Best-so-far state and the recorded per-generation history.
	Best      []int64    `json:"best"`
	BestValue float64    `json:"best_value"`
	History   []GenStats `json:"history"`
	// Round and Islands are the version-2 island-model extension: Round is
	// the number of completed migration rounds, Islands one entry per deme
	// in island order. Both carry omitempty so version-1 single-population
	// snapshots keep their exact historical encoding; in a version-2
	// snapshot the top-level Gen/Evals/Best/BestValue summarise the merged
	// state while RNG/Pop/Memo/History stay empty (the per-island copies
	// are authoritative).
	Round   int           `json:"round,omitempty"`
	Islands []IslandState `json:"islands,omitempty"`
	// EvalPoints and Fidelity are the version-3 multi-fidelity extension:
	// EvalPoints is the sample-point budget counter (points classified so
	// far), Fidelity the resolved ladder schedule the run was using. Both
	// carry omitempty so version-1/2 snapshots keep their exact historical
	// encoding.
	EvalPoints int64          `json:"eval_points,omitempty"`
	Fidelity   *FidelityState `json:"fidelity,omitempty"`
	// Sum is the hex SHA-256 of the snapshot's canonical encoding (the
	// same JSON with Sum itself empty). WriteCheckpoint fills it in;
	// ReadCheckpoint refuses a snapshot whose body does not hash back to
	// it, so a torn write or bit-flipped file is detected instead of
	// silently resuming corrupted state. Snapshots without a Sum (written
	// before it existed) are accepted unverified.
	Sum string `json:"sum,omitempty"`
}

// checkpointVersion is bumped whenever the snapshot layout changes.
const checkpointVersion = 1

// checkpointVersionIslands marks snapshots written by the island-model
// runtime (Config.Islands > 1): version 2 adds the Round counter and one
// IslandState per deme. Version-1 snapshots still load for
// single-population runs.
const checkpointVersionIslands = 2

// checkpointVersionFidelity marks snapshots written with the
// multi-fidelity ladder enabled (Config.Fidelity): version 3 adds the
// classified-point counters and the resolved rung schedule, for both the
// single-population and island layouts. A fidelity run can only resume a
// version-3 snapshot whose schedule matches its own.
const checkpointVersionFidelity = 3

// FidelityState records the resolved fidelity schedule inside a
// version-3 checkpoint, guarding a resume against a drifted ladder.
type FidelityState struct {
	Rungs     int     `json:"rungs"`
	Eta       float64 `json:"eta"`
	MinPoints int     `json:"min_points"`
	// Points is the full-fidelity sample size the schedule was built on.
	Points int `json:"points"`
}

// IslandState is one deme's share of a version-2 checkpoint: the same
// population/RNG/memo/history capture the single-population snapshot
// holds, scoped to one island.
type IslandState struct {
	Gen       int         `json:"gen"`
	Evals     int         `json:"evals"`
	RNG       []byte      `json:"rng"`
	Pop       [][]byte    `json:"pop"`
	Memo      []MemoEntry `json:"memo"`
	Best      []int64     `json:"best"`
	BestValue float64     `json:"best_value"`
	History   []GenStats  `json:"history"`
	// EvalPoints is the deme's classified-point counter (version 3 only;
	// omitempty keeps version-2 snapshots byte-identical).
	EvalPoints int64 `json:"eval_points,omitempty"`
}

// validate checks a snapshot against the run configuration it is about to
// restart. Island-model runs (cfg.Islands > 1) require a version-2
// snapshot with one IslandState per configured deme; single-population
// runs require the classic version-1 layout.
func (c *Checkpoint) validate(spec Spec, cfg Config) error {
	want := checkpointVersion
	if cfg.Islands > 1 {
		want = checkpointVersionIslands
	}
	if cfg.Fidelity.Enabled() {
		want = checkpointVersionFidelity
	}
	switch {
	case c.Version != want:
		return fmt.Errorf("ga: checkpoint version %d (want %d)", c.Version, want)
	case c.SpecBits != spec.TotalBits():
		return fmt.Errorf("ga: checkpoint genome is %d bits, spec wants %d", c.SpecBits, spec.TotalBits())
	case cfg.Label != "" && c.Label != "" && c.Label != cfg.Label:
		return fmt.Errorf("ga: checkpoint labelled %q, search is %q", c.Label, cfg.Label)
	}
	if cfg.Fidelity.Enabled() {
		f := c.Fidelity
		if f == nil {
			return fmt.Errorf("ga: checkpoint version %d records no fidelity schedule", c.Version)
		}
		if f.Rungs != cfg.Fidelity.Rungs || f.Eta != cfg.Fidelity.eta() || f.MinPoints != cfg.Fidelity.minPoints() {
			return fmt.Errorf("ga: checkpoint fidelity schedule (rungs=%d eta=%v min=%d) does not match config (rungs=%d eta=%v min=%d)",
				f.Rungs, f.Eta, f.MinPoints, cfg.Fidelity.Rungs, cfg.Fidelity.eta(), cfg.Fidelity.minPoints())
		}
	} else if c.Fidelity != nil {
		return fmt.Errorf("ga: checkpoint was written with fidelity pruning enabled; this run has it off")
	}
	if cfg.Islands > 1 {
		return c.validateIslands(spec, cfg)
	}
	switch {
	case len(c.Pop) != cfg.PopSize:
		return fmt.Errorf("ga: checkpoint population %d, config wants %d", len(c.Pop), cfg.PopSize)
	case c.Gen < 0 || c.Evals < 0:
		return fmt.Errorf("ga: checkpoint counters gen=%d evals=%d", c.Gen, c.Evals)
	case len(c.History) == 0:
		return fmt.Errorf("ga: checkpoint has no recorded history")
	}
	for i, bits := range c.Pop {
		if len(bits) != spec.TotalBits() {
			return fmt.Errorf("ga: checkpoint individual %d has %d bits, want %d", i, len(bits), spec.TotalBits())
		}
	}
	return nil
}

// validateIslands checks the version-2 per-island payload.
func (c *Checkpoint) validateIslands(spec Spec, cfg Config) error {
	if len(c.Islands) != cfg.Islands {
		return fmt.Errorf("ga: checkpoint has %d islands, config wants %d", len(c.Islands), cfg.Islands)
	}
	if c.Round < 0 {
		return fmt.Errorf("ga: checkpoint migration round %d", c.Round)
	}
	sizes := islandSizes(cfg.PopSize, cfg.Islands)
	for i := range c.Islands {
		st := &c.Islands[i]
		switch {
		case len(st.Pop) == 0 || len(st.Pop) > sizes[i]:
			return fmt.Errorf("ga: checkpoint island %d population %d, config allows 1..%d", i+1, len(st.Pop), sizes[i])
		case st.Gen < 0 || st.Evals < 0:
			return fmt.Errorf("ga: checkpoint island %d counters gen=%d evals=%d", i+1, st.Gen, st.Evals)
		case len(st.History) == 0:
			return fmt.Errorf("ga: checkpoint island %d has no recorded history", i+1)
		}
		for j, bits := range st.Pop {
			if len(bits) != spec.TotalBits() {
				return fmt.Errorf("ga: checkpoint island %d individual %d has %d bits, want %d", i+1, j, len(bits), spec.TotalBits())
			}
		}
	}
	return nil
}

// marshalCheckpoint is the one canonical encoding (indented JSON, fixed
// field order) shared by writing and checksum verification.
func marshalCheckpoint(c *Checkpoint) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// checkpointSum is the hex SHA-256 of a snapshot's canonical body.
func checkpointSum(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// WriteCheckpoint serialises a snapshot as indented JSON with its
// SHA-256 integrity sum filled in. The memo is written in sorted genome
// order so identical states produce identical bytes; the sort operates
// on a copy, so the caller's Checkpoint (often the GA's live snapshot)
// is never reordered behind its back.
func WriteCheckpoint(w io.Writer, c *Checkpoint) error {
	cp := *c
	cp.Memo = append([]MemoEntry(nil), c.Memo...)
	sort.Slice(cp.Memo, func(i, j int) bool {
		return bytes.Compare(cp.Memo[i].Bits, cp.Memo[j].Bits) < 0
	})
	// Version-2 snapshots carry one memo per island; each gets the same
	// canonical ordering on its own copy.
	if len(c.Islands) > 0 {
		cp.Islands = append([]IslandState(nil), c.Islands...)
		for i := range cp.Islands {
			memo := append([]MemoEntry(nil), cp.Islands[i].Memo...)
			sort.Slice(memo, func(a, b int) bool {
				return bytes.Compare(memo[a].Bits, memo[b].Bits) < 0
			})
			cp.Islands[i].Memo = memo
		}
	}
	cp.Sum = ""
	body, err := marshalCheckpoint(&cp)
	if err != nil {
		return err
	}
	cp.Sum = checkpointSum(body)
	out, err := marshalCheckpoint(&cp)
	if err != nil {
		return err
	}
	_, err = w.Write(out)
	return err
}

// ReadCheckpoint deserialises a snapshot written by WriteCheckpoint and
// verifies its integrity sum: the decoded state must hash back to the
// recorded SHA-256, so truncated or bit-flipped snapshots are rejected
// here rather than corrupting a resumed search. Legacy snapshots with no
// sum are accepted unverified.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("%w: decoding: %v", ErrCheckpointCorrupt, err)
	}
	if c.Sum != "" {
		want := c.Sum
		c.Sum = ""
		body, err := marshalCheckpoint(&c)
		if err != nil {
			return nil, fmt.Errorf("ga: re-encoding checkpoint for verification: %w", err)
		}
		if got := checkpointSum(body); got != want {
			return nil, fmt.Errorf("%w: integrity: sum %s does not match recorded %s", ErrCheckpointCorrupt, got, want)
		}
		c.Sum = want
	}
	return &c, nil
}
