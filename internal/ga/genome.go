// Package ga implements the genetic algorithm of §3.2–3.3: individuals are
// bit strings split into one chromosome per decision variable, genes drawn
// from the 2-bit alphabet {00,01,10,11}, fitness-proportionate remainder
// stochastic selection without replacement, single-point crossover and
// per-bit mutation, with the paper's 15–25 generation termination schedule
// (Figure 7) and 2% best-vs-average convergence criterion.
//
// The engine is generic over the objective: the paper uses it both for tile
// sizes (§3.3) and padding parameters (§4.3 / reference [28]).
package ga

import "fmt"

// GeneBits is the width of one gene: the paper found the 4-letter alphabet
// {00, 01, 10, 11} to work well, i.e. 2 bits per gene.
const GeneBits = 2

// Chromosome describes the encoding of one decision variable with range
// [1..Upper] (tile sizes) or [Lo..Lo+Span−1] in general.
type Chromosome struct {
	// Lo is the smallest decoded value (1 for tile sizes).
	Lo int64
	// Span is the number of representable values (Upper−Lo+1).
	Span int64
	// Bits is k = ⌈log₂ Span⌉, rounded up to an even number so the
	// chromosome is a whole number of 2-bit genes.
	Bits int
}

// NewChromosome builds the encoding for a variable ranging over
// [lo, lo+span-1], span ≥ 1, using the paper's 2-bit gene alphabet.
func NewChromosome(lo, span int64) Chromosome {
	return NewChromosomeBits(lo, span, GeneBits)
}

// NewChromosomeBits is NewChromosome with an explicit gene width: the bit
// count k = ⌈log₂ span⌉ is rounded up to a whole number of geneBits-wide
// genes (§3.3 rounds odd k up by one for the 2-bit alphabet; a 1-bit
// alphabet performs no rounding). Exposed for the alphabet ablation.
func NewChromosomeBits(lo, span int64, geneBits int) Chromosome {
	if span < 1 {
		panic(fmt.Sprintf("ga: chromosome span %d", span))
	}
	if geneBits < 1 {
		panic(fmt.Sprintf("ga: gene width %d", geneBits))
	}
	bits := 0
	for int64(1)<<bits < span {
		bits++
	}
	if bits == 0 {
		bits = 1 // degenerate single-value variable still occupies a slot
	}
	if rem := bits % geneBits; rem != 0 {
		bits += geneBits - rem
	}
	return Chromosome{Lo: lo, Span: span, Bits: bits}
}

// TileChromosome is the paper's tile-size chromosome for a loop with upper
// bound u: values in [1..u].
func TileChromosome(u int64) Chromosome { return NewChromosome(1, u) }

// Decode maps the raw chromosome value x ∈ [0, 2^k−1] to the variable's
// range using the paper's mapping (equation 2):
//
//	g(x) = ⌊x·(U−1)/(2^k−1)⌋ + 1, generalised to an arbitrary base Lo.
//
// Every value of the range has at least one representation.
func (c Chromosome) Decode(x uint64) int64 {
	maxRaw := uint64(1)<<c.Bits - 1
	return c.Lo + int64(x*(uint64(c.Span)-1)/maxRaw)
}

// Spec is the genome layout: the concatenation of the chromosomes.
type Spec struct {
	Chroms []Chromosome
}

// NewTileSpec builds the genome for tile-size search over loops with the
// given upper bounds (extents).
func NewTileSpec(uppers []int64) Spec {
	return NewTileSpecBits(uppers, GeneBits)
}

// NewTileSpecBits is NewTileSpec with an explicit gene alphabet width.
func NewTileSpecBits(uppers []int64, geneBits int) Spec {
	s := Spec{Chroms: make([]Chromosome, len(uppers))}
	for i, u := range uppers {
		s.Chroms[i] = NewChromosomeBits(1, u, geneBits)
	}
	return s
}

// TotalBits returns the genome length in bits.
func (s Spec) TotalBits() int {
	n := 0
	for _, c := range s.Chroms {
		n += c.Bits
	}
	return n
}

// Decode maps a genome (one byte per bit, MSB first within each
// chromosome) to the decision-variable values.
func (s Spec) Decode(bits []byte) []int64 {
	out := make([]int64, len(s.Chroms))
	off := 0
	for i, c := range s.Chroms {
		var x uint64
		for b := 0; b < c.Bits; b++ {
			x = x<<1 | uint64(bits[off+b])
		}
		out[i] = c.Decode(x)
		off += c.Bits
	}
	return out
}

// Encode produces some genome decoding to the given values (the smallest
// raw preimage per chromosome). Useful for seeding known-good individuals.
func (s Spec) Encode(values []int64) []byte {
	bits := make([]byte, s.TotalBits())
	off := 0
	for i, c := range s.Chroms {
		target := values[i]
		maxRaw := uint64(1)<<c.Bits - 1
		// Smallest x with Decode(x) == target: invert the floor mapping.
		var x uint64
		if c.Span > 1 {
			// Decode(x) = Lo + floor(x*(Span-1)/maxRaw); want the smallest
			// x with floor(x*(Span-1)/maxRaw) = target-Lo.
			t := uint64(target - c.Lo)
			x = (t*maxRaw + uint64(c.Span) - 2) / (uint64(c.Span) - 1)
			for c.Decode(x) < target {
				x++
			}
		}
		for b := c.Bits - 1; b >= 0; b-- {
			bits[off+b] = byte(x & 1)
			x >>= 1
		}
		off += c.Bits
	}
	return bits
}
