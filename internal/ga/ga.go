package ga

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/telemetry"
)

// Objective evaluates one decoded individual and returns the quantity to
// MINIMISE (the paper minimises the number of replacement misses).
type Objective func(values []int64) float64

// SharedMemo is a cross-run memo tier for finished objective values,
// keyed by the individual's raw genome bits. The caller scopes keys to
// the evaluation context (nest, geometry, sample, phase) before handing
// the memo to a run, so the run itself only sees genome keys. Get
// returns a previously Put value; Put offers a freshly computed value
// (implementations may drop it, e.g. under a size bound). Both must be
// safe for concurrent use — islands of one run share the memo.
type SharedMemo interface {
	Get(key string) (float64, bool)
	Put(key string, value float64)
}

// CrossoverKind selects the recombination operator.
type CrossoverKind int

const (
	// SinglePoint is the paper's simple crossover (Figure 5): swap the
	// tails after one random site.
	SinglePoint CrossoverKind = iota
	// TwoPoint swaps the segment between two random sites.
	TwoPoint
	// Uniform swaps each bit independently with probability 1/2.
	Uniform
)

func (k CrossoverKind) String() string {
	switch k {
	case TwoPoint:
		return "two-point"
	case Uniform:
		return "uniform"
	default:
		return "single-point"
	}
}

// Config holds the GA parameters. The zero value is invalid; use
// PaperConfig for the settings of §3.3.
type Config struct {
	PopSize       int           // population size N
	Crossover     CrossoverKind // recombination operator (default: the paper's single-point)
	CrossoverProb float64       // probability a selected pair crosses over
	MutationProb  float64       // per-bit flip probability
	MinGens       int           // generations always run (Figure 7: 15)
	MaxGens       int           // hard generation cap (Figure 7: 25)
	ConvergeFrac  float64       // best-vs-average convergence threshold (0.02)
	Seed1, Seed2  uint64        // PCG seed
	// SeedValues are decoded-value vectors injected into the otherwise
	// random initial population (standard heuristic seeding). On search
	// spaces with huge per-variable ranges a uniform initial population
	// can miss the interesting region entirely; a couple of heuristic
	// individuals give selection a foothold. At most PopSize-1 seeds are
	// used, so the population always keeps random diversity; supplying
	// more is not an error, but the excess seeds are dropped and the run
	// reports it on Result.Warnings. With Islands > 1 the seeds are dealt
	// round-robin across the islands, each clamped to its deme size minus
	// one on the same terms.
	SeedValues [][]int64

	// Islands splits the population into this many demes evolved
	// concurrently (the island model), with ring-topology elite migration
	// every MigrationInterval generations. 0 or 1 runs the classic single
	// population, bit-identical to previous releases. Each island owns a
	// PCG stream derived from Seed1/Seed2 and its island index alone, so
	// a run is bit-reproducible for a fixed seed at any island count, and
	// demes advance between barriers independent of goroutine scheduling.
	Islands int
	// MigrationInterval is the number of generations each island evolves
	// between migration barriers (0 = 5).
	MigrationInterval int
	// MigrationCount is how many elite individuals each island sends to
	// its ring successor at a barrier (0 = 1). It must stay below the
	// smallest deme size.
	MigrationCount int
	// IslandObjective, when non-nil and Islands > 1, supplies island i's
	// objective (i is the 0-based island index). It lets callers hand
	// each island an independent evaluator so demes evaluate concurrently
	// without serialising on shared state; the returned objectives MUST
	// compute identical values for identical inputs, because migrated
	// memo entries carry values across islands. When nil, every island
	// shares obj, which must then be safe for concurrent calls.
	IslandObjective func(island int) Objective

	// Fidelity enables deterministic successive-halving evaluation: each
	// generation's fresh candidates are ranked on coarse sample prefixes
	// and the bottom fraction pruned before anyone pays full fidelity.
	// The zero value keeps the classic one-at-a-time path byte-identical
	// to previous releases. Enabled fidelity requires FidelityEval and is
	// incompatible with SharedMemo (pruned candidates record
	// cohort-dependent scaled fitness a cross-run tier must never serve).
	// With the ladder on, MaxEvaluations is accounted in sample points:
	// the budget is MaxEvaluations × FidelityEval.Points() points
	// classified, so the knob keeps its full-fidelity meaning
	// proportionally.
	Fidelity Fidelity
	// FidelityEval opens partial evaluations when Fidelity is enabled;
	// obj is then unused by the run.
	FidelityEval FidelityEvaluator
	// IslandFidelityEval, like IslandObjective, supplies island i's
	// fidelity evaluator (0-based index) so demes evaluate concurrently.
	// The evaluators MUST compute identical values for identical inputs.
	// When nil, every island shares FidelityEval, which must then be safe
	// for concurrent use.
	IslandFidelityEval func(island int) FidelityEvaluator

	// SharedMemo, when non-nil, is a second memo tier behind the run's
	// own memo table: finished objective values shared across runs (and
	// across islands of one run). A lookup that misses the local memo
	// consults the shared tier before computing; either way the value is
	// stored locally, and freshly computed values are offered back via
	// Put. Determinism contract: the shared tier must be result-
	// transparent — Get may only return values that Put stored for the
	// exact same key, and a shared hit counts against MaxEvaluations
	// exactly like the computation it replaced, so a run's trajectory
	// (generations, budget stops, checkpoints) is bit-identical whether
	// the shared tier is cold, warm, or absent. Implementations must be
	// safe for concurrent use.
	SharedMemo SharedMemo
	// MaxEvaluations caps the number of distinct objective evaluations
	// (0 = unlimited). When the budget runs out the search halts with
	// StopBudget and returns the best individual evaluated so far. The
	// very first individual is always evaluated so a best-so-far exists.
	MaxEvaluations int
	// Observer, when non-nil, receives the typed telemetry stream: one
	// GenerationDone event after the initial population and after every
	// completed generation, a CheckpointWritten event per snapshot, and
	// Evaluations/MemoHits counter deltas flushed at the same boundaries.
	// A nil Observer costs a single pointer check per generation, keeping
	// the unobserved search path allocation-free.
	Observer telemetry.Recorder
	// Checkpoint, when non-nil, receives a resumable snapshot at the
	// same points OnProgress fires. A snapshot error aborts the run.
	Checkpoint func(*Checkpoint) error
	// ResumeFrom restarts the search from a snapshot instead of a fresh
	// random population. The resumed run replays the interrupted one
	// deterministically (same spec, objective and config required).
	ResumeFrom *Checkpoint
	// Label tags written checkpoints and is matched against ResumeFrom's
	// label, guarding against resuming the wrong search phase.
	Label string
}

// PaperConfig returns the parameters the paper found to give near-optimal
// results: population 30, crossover 0.9, mutation 0.001, 15–25 generations
// with 2% convergence.
func PaperConfig(seed uint64) Config {
	return Config{
		PopSize:       30,
		CrossoverProb: 0.9,
		MutationProb:  0.001,
		MinGens:       15,
		MaxGens:       25,
		ConvergeFrac:  0.02,
		Seed1:         seed,
		Seed2:         seed ^ 0x9e3779b97f4a7c15,
	}
}

// Validate checks parameter sanity.
func (c Config) Validate() error {
	switch {
	case c.PopSize < 2:
		return fmt.Errorf("ga: population %d < 2", c.PopSize)
	case c.CrossoverProb < 0 || c.CrossoverProb > 1:
		return fmt.Errorf("ga: crossover probability %v", c.CrossoverProb)
	case c.MutationProb < 0 || c.MutationProb > 1:
		return fmt.Errorf("ga: mutation probability %v", c.MutationProb)
	case c.MinGens < 1 || c.MaxGens < c.MinGens:
		return fmt.Errorf("ga: generation schedule %d..%d", c.MinGens, c.MaxGens)
	case c.ConvergeFrac < 0:
		return fmt.Errorf("ga: convergence fraction %v", c.ConvergeFrac)
	case c.Islands < 0:
		return fmt.Errorf("ga: island count %d", c.Islands)
	case c.MigrationInterval < 0:
		return fmt.Errorf("ga: migration interval %d", c.MigrationInterval)
	case c.MigrationCount < 0:
		return fmt.Errorf("ga: migration count %d", c.MigrationCount)
	}
	if err := c.Fidelity.Validate(); err != nil {
		return err
	}
	if c.Fidelity.Enabled() && c.SharedMemo != nil {
		return fmt.Errorf("ga: fidelity pruning is incompatible with a shared memo (pruned candidates record cohort-dependent scaled fitness)")
	}
	if c.Islands > 1 {
		if c.PopSize < 2*c.Islands {
			return fmt.Errorf("ga: population %d cannot fill %d islands with at least 2 individuals each", c.PopSize, c.Islands)
		}
		if c.MaxEvaluations > 0 && c.MaxEvaluations < c.Islands {
			return fmt.Errorf("ga: evaluation budget %d is below the island count %d (every island force-evaluates one individual)", c.MaxEvaluations, c.Islands)
		}
		if k, smallest := c.migrationCount(), c.PopSize/c.Islands; k >= smallest {
			return fmt.Errorf("ga: migration count %d must stay below the smallest island population %d", k, smallest)
		}
	}
	return nil
}

// migrationInterval returns the effective barrier spacing.
func (c Config) migrationInterval() int {
	if c.MigrationInterval > 0 {
		return c.MigrationInterval
	}
	return 5
}

// migrationCount returns the effective elites-per-exchange count.
func (c Config) migrationCount() int {
	if c.MigrationCount > 0 {
		return c.MigrationCount
	}
	return 1
}

// GenStats records one generation for convergence analysis.
type GenStats struct {
	Gen       int
	Best      float64 // best (lowest) objective in the generation
	Avg       float64 // population average objective
	BestEver  float64 // best seen so far across generations
	Converged bool
}

// Result is the outcome of a run.
type Result struct {
	Best        []int64 // decoded best-ever individual
	BestValue   float64 // its objective value
	Generations int     // generations executed
	Evaluations int     // objective calls (cache misses of the memo table)
	History     []GenStats
	// Stopped records why the run ended. Best/BestValue are valid for
	// every reason; only StopConverged means the Figure-7 schedule ran
	// to its natural end.
	Stopped StopReason
	// Warnings lists non-fatal configuration adjustments the run made
	// (e.g. seed individuals dropped because SeedValues exceeded the
	// PopSize-1 injection cap). Empty on a clean run.
	Warnings []string
}

type individual struct {
	bits  []byte
	value float64
}

// Run executes the genetic algorithm of Figure 4 with the termination
// schedule of Figure 7 and returns the best individual found. Objective
// values are memoised per decoded genome, so Evaluations counts distinct
// candidate solutions examined.
//
// The run is bounded and interruptible: it honours ctx cancellation and
// deadlines plus cfg.MaxEvaluations, halting between objective calls and
// returning the best-so-far Result tagged with the StopReason — never an
// error. A generation interrupted mid-flight is discarded wholesale, so
// the retained state always sits on a generation boundary and a
// checkpoint written there resumes deterministically.
func Run(ctx context.Context, spec Spec, obj Objective, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(spec.Chroms) == 0 {
		return Result{}, fmt.Errorf("ga: empty genome spec")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Islands > 1 {
		// The island-model runtime lives in islands.go; Islands <= 1 stays
		// on this single-population path untouched, so existing seeds keep
		// their exact historical results.
		return runIslands(ctx, spec, obj, cfg)
	}
	start := time.Now()
	src := rand.NewPCG(cfg.Seed1, cfg.Seed2)
	rng := rand.New(src)
	nbits := spec.TotalBits()

	memo := map[string]float64{}
	evals := 0
	memoHits := 0
	gen := 0
	var res Result
	res.BestValue = math.Inf(1)

	// Multi-fidelity state: with the ladder on, the budget is accounted in
	// sample points classified (MaxEvaluations × full sample size), so a
	// pruned candidate spends only what it actually evaluated. lad stays
	// nil on the classic path, which therefore runs byte-identically.
	var lad *fidelityLadder
	var evalPoints, pointBudget int64

	// flush reports the evaluation/memo-hit counter deltas accumulated
	// since the last flush. Deltas (not totals) compose across resumed
	// runs and multi-phase searches sharing one recorder.
	flushedEvals, flushedMemoHits := 0, 0
	flush := func() {
		if cfg.Observer == nil {
			return
		}
		dE, dM := evals-flushedEvals, memoHits-flushedMemoHits
		if dE == 0 && dM == 0 {
			return
		}
		cfg.Observer.Add(telemetry.Counters{Evaluations: uint64(dE), MemoHits: uint64(dM)})
		flushedEvals, flushedMemoHits = evals, memoHits
	}
	defer flush()

	// checkHalt reports whether the run must stop before spending another
	// objective evaluation, and why.
	checkHalt := func() (StopReason, bool) {
		select {
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return StopDeadline, true
			}
			return StopCancelled, true
		default:
		}
		if lad != nil {
			if pointBudget > 0 && evalPoints >= pointBudget {
				return StopBudget, true
			}
		} else if cfg.MaxEvaluations > 0 && evals >= cfg.MaxEvaluations {
			return StopBudget, true
		}
		return StopConverged, false
	}
	var halted bool
	var haltReason StopReason
	// eval computes (or recalls) one individual's objective. It returns
	// false when the run must halt first; the individual is then left
	// unevaluated. force skips the halt check so the very first candidate
	// of a run is always evaluated and a best-so-far always exists.
	//
	// The shared tier sits strictly behind the local memo and the halt
	// check: a shared hit replaces only the computation, spending the
	// budget and filling the local memo exactly as the computation would,
	// so the run's trajectory is identical cold or warm.
	eval := func(ind *individual, force bool) bool {
		key := string(ind.bits)
		if v, ok := memo[key]; ok {
			ind.value = v
			memoHits++
			return true
		}
		if !force && !halted {
			if r, h := checkHalt(); h {
				halted, haltReason = true, r
				return false
			}
		}
		if halted {
			return false
		}
		if cfg.SharedMemo != nil {
			if v, ok := cfg.SharedMemo.Get(key); ok {
				ind.value = v
				memo[key] = v
				evals++
				return true
			}
		}
		ind.value = obj(spec.Decode(ind.bits))
		memo[key] = ind.value
		evals++
		if cfg.SharedMemo != nil {
			cfg.SharedMemo.Put(key, ind.value)
		}
		return true
	}

	if cfg.Fidelity.Enabled() {
		fe := cfg.FidelityEval
		if fe == nil {
			return Result{}, fmt.Errorf("ga: fidelity enabled but no FidelityEval supplied")
		}
		npts := fe.Points()
		if npts <= 0 {
			return Result{}, fmt.Errorf("ga: fidelity evaluator reports %d sample points", npts)
		}
		if cfg.MaxEvaluations > 0 {
			pointBudget = int64(cfg.MaxEvaluations) * int64(npts)
		}
		lad = &fidelityLadder{
			fe: fe, sched: cfg.Fidelity.Schedule(npts), eta: cfg.Fidelity.eta(),
			spec: spec, label: cfg.Label, memo: memo,
			checkHalt: checkHalt,
			onHalt:    func(r StopReason) { halted, haltReason = true, r },
			isHalted:  func() bool { return halted },
			charge:    func(points int) { evalPoints += int64(points) },
			evals:     &evals, memoHits: &memoHits,
		}
		if cfg.Observer != nil {
			lad.emit = cfg.Observer.Event
		}
	}

	record := func(pop []individual) GenStats {
		best, sum := math.Inf(1), 0.0
		for i := range pop {
			sum += pop[i].value
			if pop[i].value < best {
				best = pop[i].value
			}
			if pop[i].value < res.BestValue {
				res.BestValue = pop[i].value
				res.Best = spec.Decode(pop[i].bits)
			}
		}
		if res.Best == nil && len(pop) > 0 {
			// Every candidate evaluated to +Inf (e.g. the context expired
			// before the first evaluation finished and the objective
			// poisoned it): still expose the first least-bad individual so
			// callers always receive a decodable best-so-far.
			bi := 0
			for i := range pop {
				if pop[i].value < pop[bi].value {
					bi = i
				}
			}
			res.BestValue = pop[bi].value
			res.Best = spec.Decode(pop[bi].bits)
		}
		avg := sum / float64(len(pop))
		st := GenStats{Gen: gen, Best: best, Avg: avg, BestEver: res.BestValue}
		// §3.3: converged when the best individual's objective differs
		// from the population average by less than ConvergeFrac of the
		// average.
		if avg == 0 {
			st.Converged = best == 0
		} else {
			st.Converged = (avg-best)/avg < cfg.ConvergeFrac
		}
		res.History = append(res.History, st)
		if cfg.Observer != nil {
			cfg.Observer.Event(telemetry.GenerationDone{
				Search: cfg.Label, Gen: gen, Best: st.Best, Avg: st.Avg,
				BestEver: res.BestValue, Evaluations: evals, MemoHits: memoHits,
				Elapsed: time.Since(start),
			})
			flush()
		}
		return st
	}
	snapshot := func(pop []individual) error {
		if cfg.Checkpoint == nil {
			return nil
		}
		rngState, err := src.MarshalBinary()
		if err != nil {
			return fmt.Errorf("ga: marshalling RNG state: %w", err)
		}
		cp := &Checkpoint{
			Version:   checkpointVersion,
			Label:     cfg.Label,
			SpecBits:  nbits,
			Gen:       gen,
			Evals:     evals,
			RNG:       rngState,
			Pop:       make([][]byte, len(pop)),
			Memo:      make([]MemoEntry, 0, len(memo)),
			Best:      append([]int64(nil), res.Best...),
			BestValue: res.BestValue,
			History:   append([]GenStats(nil), res.History...),
		}
		for i := range pop {
			cp.Pop[i] = cloneBits(pop[i].bits)
		}
		for k, v := range memo {
			cp.Memo = append(cp.Memo, MemoEntry{Bits: []byte(k), Value: v})
		}
		if lad != nil {
			// Version-3 extension: the ladder's point counter and resolved
			// schedule knobs, so a resume rebuilds the exact rung trajectory.
			cp.Version = checkpointVersionFidelity
			cp.EvalPoints = evalPoints
			cp.Fidelity = &FidelityState{
				Rungs: cfg.Fidelity.Rungs, Eta: cfg.Fidelity.eta(),
				MinPoints: cfg.Fidelity.minPoints(), Points: lad.fe.Points(),
			}
		}
		if err := cfg.Checkpoint(cp); err != nil {
			return err
		}
		if cfg.Observer != nil {
			cfg.Observer.Event(telemetry.CheckpointWritten{
				Search: cfg.Label, Gen: gen,
				Individuals: len(pop), MemoEntries: len(memo),
			})
		}
		return nil
	}

	var pop []individual
	if cp := cfg.ResumeFrom; cp != nil {
		// Restore the generation-boundary state: population, RNG stream,
		// memo, counters and history. Continuing from here replays the
		// uninterrupted run exactly.
		if err := cp.validate(spec, cfg); err != nil {
			return Result{}, err
		}
		if err := src.UnmarshalBinary(cp.RNG); err != nil {
			return Result{}, fmt.Errorf("ga: restoring RNG state: %w", err)
		}
		gen = cp.Gen
		evals = cp.Evals
		// The interrupted run already reported its evaluations; only work
		// done after the resume point flows to this run's observer.
		flushedEvals = cp.Evals
		if lad != nil {
			if cp.Fidelity != nil && cp.Fidelity.Points != lad.fe.Points() {
				return Result{}, fmt.Errorf("ga: checkpoint records a %d-point sample, evaluator has %d", cp.Fidelity.Points, lad.fe.Points())
			}
			evalPoints = cp.EvalPoints
		}
		for _, e := range cp.Memo {
			memo[string(e.Bits)] = e.Value
		}
		pop = make([]individual, len(cp.Pop))
		for i, bits := range cp.Pop {
			v, ok := memo[string(bits)]
			if !ok {
				return Result{}, fmt.Errorf("ga: checkpoint individual %d missing from memo", i)
			}
			pop[i] = individual{bits: cloneBits(bits), value: v}
		}
		res.Best = append([]int64(nil), cp.Best...)
		res.BestValue = cp.BestValue
		res.History = append([]GenStats(nil), cp.History...)
	} else {
		// Random initial population (Figure 4: "Supply a population P0"),
		// with any heuristic seed individuals replacing the first slots.
		res.Warnings = seedClampWarnings(len(cfg.SeedValues), cfg.PopSize, -1)
		pop = make([]individual, 0, cfg.PopSize)
		for i := 0; i < cfg.PopSize; i++ {
			var ind individual
			if i < len(cfg.SeedValues) && i < cfg.PopSize-1 {
				ind.bits = spec.Encode(cfg.SeedValues[i])
			} else {
				ind.bits = make([]byte, nbits)
				for b := range ind.bits {
					ind.bits[b] = byte(rng.IntN(2))
				}
			}
			if lad != nil {
				// Fidelity: collect the whole initial batch first (same RNG
				// consumption as the classic loop), then ladder it together.
				pop = append(pop, ind)
				continue
			}
			if !eval(&ind, i == 0) {
				break
			}
			pop = append(pop, ind)
		}
		if lad != nil {
			batch := make([]*individual, len(pop))
			for i := range pop {
				batch[i] = &pop[i]
			}
			assigned, _ := lad.run(batch, true)
			// Like the classic path, a halt keeps the evaluated prefix.
			pop = pop[:assigned]
		}
		record(pop)
		if !halted {
			if err := snapshot(pop); err != nil {
				return Result{}, err
			}
		}
	}

	// Figure 7 schedule, cut short by cancellation or budget exhaustion.
	for !halted {
		var stop bool
		switch {
		case gen < cfg.MinGens:
		case gen < cfg.MaxGens:
			stop = res.History[len(res.History)-1].Converged
		default:
			stop = true
		}
		if stop {
			break
		}
		if r, h := checkHalt(); h {
			halted, haltReason = true, r
			break
		}
		var next []individual
		var ok bool
		if lad != nil {
			next, ok = nextGenerationFidelity(pop, spec, cfg, rng, lad)
		} else {
			next, ok = nextGeneration(pop, spec, cfg, rng, eval)
		}
		if !ok {
			// The partial generation is discarded: pop stays on the last
			// completed boundary, matching the last checkpoint.
			break
		}
		gen++
		pop = next
		record(pop)
		if err := snapshot(pop); err != nil {
			return Result{}, err
		}
	}
	res.Generations = gen
	res.Evaluations = evals
	if halted {
		res.Stopped = haltReason
	}
	return res, nil
}

// nextGeneration applies selection, crossover and mutation (Figure 6). It
// reports false when eval halted mid-generation; the partial population is
// then abandoned by the caller.
func nextGeneration(pop []individual, spec Spec, cfg Config, rng *rand.Rand, eval func(*individual, bool) bool) ([]individual, bool) {
	selected := selectRSS(pop, rng)
	next := make([]individual, 0, len(pop))
	// Pair consecutive selected individuals (Figure 5).
	for i := 0; i+1 < len(selected); i += 2 {
		a := cloneBits(selected[i].bits)
		b := cloneBits(selected[i+1].bits)
		if rng.Float64() < cfg.CrossoverProb {
			crossover(cfg.Crossover, a, b, rng)
		}
		next = append(next, individual{bits: a}, individual{bits: b})
	}
	if len(next) < len(pop) { // odd population: carry the last selection
		next = append(next, individual{bits: cloneBits(selected[len(selected)-1].bits)})
	}
	// Mutation: flip each bit with probability MutationProb.
	for i := range next {
		for b := range next[i].bits {
			if rng.Float64() < cfg.MutationProb {
				next[i].bits[b] ^= 1
			}
		}
		if !eval(&next[i], false) {
			return nil, false
		}
	}
	return next, true
}

// selectRSS implements remainder stochastic selection without replacement
// (Goldberg): each individual receives ⌊eᵢ⌋ deterministic copies where
// eᵢ = N·fitᵢ/Σfit, and the remaining slots are filled by Bernoulli trials
// on the fractional parts, each individual winning at most one extra copy.
// Because the GA minimises, raw objective values are transformed into
// fitness by reflecting around the generation's worst value.
func selectRSS(pop []individual, rng *rand.Rand) []individual {
	n := len(pop)
	worst := math.Inf(-1)
	for i := range pop {
		if pop[i].value > worst {
			worst = pop[i].value
		}
	}
	fits := make([]float64, n)
	var sum float64
	for i := range pop {
		// +ε keeps the worst individual selectable and avoids a zero sum
		// in uniform populations.
		fits[i] = worst - pop[i].value + 1e-9
		sum += fits[i]
	}
	// Goldberg's linear fitness scaling: cap the expected copies of the
	// best individual at scalingCap to prevent premature takeover (the
	// standard companion of remainder stochastic selection).
	const scalingCap = 2.0
	avg := sum / float64(n)
	fmax := 0.0
	for _, f := range fits {
		if f > fmax {
			fmax = f
		}
	}
	if fmax > scalingCap*avg && fmax > avg {
		a := (scalingCap - 1) * avg / (fmax - avg)
		b := avg * (fmax - scalingCap*avg) / (fmax - avg)
		sum = 0
		for i := range fits {
			fits[i] = a*fits[i] + b
			if fits[i] < 0 {
				fits[i] = 0
			}
			sum += fits[i]
		}
		if sum <= 0 { // degenerate: fall back to unscaled uniformity
			for i := range fits {
				fits[i] = 1
			}
			sum = float64(n)
		}
	}
	selected := make([]individual, 0, n)
	frac := make([]float64, n)
	for i := range pop {
		e := float64(n) * fits[i] / sum
		whole := int(e)
		frac[i] = e - float64(whole)
		for c := 0; c < whole; c++ {
			selected = append(selected, pop[i])
		}
	}
	// Fill remaining slots from fractional parts, without replacement.
	order := rng.Perm(n)
	taken := make([]bool, n)
	for len(selected) < n {
		progress := false
		for _, i := range order {
			if len(selected) >= n {
				break
			}
			if taken[i] {
				continue
			}
			if rng.Float64() < frac[i] {
				selected = append(selected, pop[i])
				taken[i] = true
				progress = true
			}
		}
		if !progress {
			// All fractions exhausted (or zero): fill uniformly.
			for len(selected) < n {
				selected = append(selected, pop[rng.IntN(n)])
			}
		}
	}
	// Shuffle so crossover pairs are random.
	rng.Shuffle(len(selected), func(i, j int) { selected[i], selected[j] = selected[j], selected[i] })
	return selected
}

// crossover recombines two genomes in place.
func crossover(kind CrossoverKind, a, b []byte, rng *rand.Rand) {
	switch kind {
	case TwoPoint:
		i := 1 + rng.IntN(len(a)-1)
		j := 1 + rng.IntN(len(a)-1)
		if i > j {
			i, j = j, i
		}
		for p := i; p < j; p++ {
			a[p], b[p] = b[p], a[p]
		}
	case Uniform:
		for p := range a {
			if rng.IntN(2) == 0 {
				a[p], b[p] = b[p], a[p]
			}
		}
	default: // SinglePoint (Figure 5)
		site := 1 + rng.IntN(len(a)-1)
		for p := site; p < len(a); p++ {
			a[p], b[p] = b[p], a[p]
		}
	}
}

func cloneBits(b []byte) []byte { return append([]byte(nil), b...) }

// seedClampWarnings documents the SeedValues injection cap: at most
// popSize-1 seed individuals are used so the initial population always
// keeps at least one random member, and excess seeds are dropped with a
// warning instead of silently. island >= 0 tags the warning with the deme
// the clamp happened in; -1 is the single-population run.
func seedClampWarnings(seeds, popSize, island int) []string {
	cap := popSize - 1
	if seeds <= cap {
		return nil
	}
	where := ""
	if island >= 0 {
		where = fmt.Sprintf(" on island %d", island+1)
	}
	return []string{fmt.Sprintf(
		"ga: %d of %d seed individuals dropped%s: at most PopSize-1 = %d seeds are injected so the initial population keeps random diversity",
		seeds-cap, seeds, where, cap)}
}
