package ga

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/telemetry"
)

// Fidelity configures deterministic multi-fidelity evaluation by
// successive halving: every generation's fresh candidates are first
// scored on a coarse prefix of the fixed evaluation sample, ranked, the
// bottom fraction is pruned at scaled fitness, and the survivors are
// promoted rung by rung — only the finalists pay the full sample. A
// promoted candidate keeps its partial result and evaluates only the
// points it has not seen, so no sample point is ever classified twice.
//
// The zero value disables the ladder entirely: Rungs <= 1 leaves the
// classic one-candidate-at-a-time evaluation path byte-identical to
// previous releases. With the ladder on, a run is still a pure function
// of (spec, evaluator, config): the schedule is fixed up front, pruning
// ranks ties by batch position, and nothing depends on goroutine
// scheduling, so fixed seed + fixed schedule is bit-identical at any
// worker or island count.
type Fidelity struct {
	// Rungs is the number of fidelity rungs; 0 or 1 disables the ladder.
	Rungs int
	// Eta is the halving factor: each rung's sample prefix is eta times
	// the previous rung's, and each pruning keeps ceil(n/eta) survivors
	// (0 = 2, classic successive halving).
	Eta float64
	// MinPoints floors the coarsest rung's sample prefix (0 = 16), so a
	// tiny first rung never ranks candidates on statistical noise alone.
	MinPoints int
}

// Enabled reports whether the ladder is active.
func (f Fidelity) Enabled() bool { return f.Rungs > 1 }

// eta returns the effective halving factor.
func (f Fidelity) eta() float64 {
	if f.Eta > 1 {
		return f.Eta
	}
	return 2
}

// minPoints returns the effective coarsest-rung floor.
func (f Fidelity) minPoints() int {
	if f.MinPoints > 0 {
		return f.MinPoints
	}
	return 16
}

// Validate checks the knobs; the zero value (ladder off) is valid.
func (f Fidelity) Validate() error {
	switch {
	case f.Rungs < 0:
		return fmt.Errorf("ga: fidelity rungs %d is negative", f.Rungs)
	case f.Eta != 0 && f.Eta <= 1:
		return fmt.Errorf("ga: fidelity eta %v must exceed 1", f.Eta)
	case f.MinPoints < 0:
		return fmt.Errorf("ga: fidelity min points %d is negative", f.MinPoints)
	}
	return nil
}

// Schedule returns the ascending cumulative sample-prefix sizes of the
// ladder over an n-point sample: rung r scores candidates on the first
// Schedule(n)[r] points. The last rung is always the full sample, sizes
// below the MinPoints floor are raised to it, and duplicate sizes
// collapse (a 24-point sample with 3 rungs has fewer distinct prefixes
// than rungs). The schedule depends only on the knobs and n, never on
// the candidates, which is what keeps pruning deterministic.
func (f Fidelity) Schedule(n int) []int {
	if !f.Enabled() || n <= 0 {
		return []int{n}
	}
	eta := f.eta()
	floor := f.minPoints()
	sched := make([]int, 0, f.Rungs)
	for r := 0; r < f.Rungs; r++ {
		sz := int(math.Ceil(float64(n) / math.Pow(eta, float64(f.Rungs-1-r))))
		if sz < floor {
			sz = floor
		}
		if sz > n {
			sz = n
		}
		if len(sched) == 0 || sz > sched[len(sched)-1] {
			sched = append(sched, sz)
		}
	}
	if sched[len(sched)-1] != n {
		sched = append(sched, n)
	}
	return sched
}

// FidelityEvaluator opens partial evaluations for the ladder. The
// sampling layer implements it over the search's fixed sample; Points
// is the full sample size the schedule is built from.
type FidelityEvaluator interface {
	// Points is the full-fidelity sample size.
	Points() int
	// Open starts one candidate's evaluation. values is the decoded
	// genome; the returned PartialEval accumulates classified points
	// across rungs.
	Open(values []int64) PartialEval
}

// PartialEval is one candidate's resumable evaluation state.
type PartialEval interface {
	// Score extends the evaluation through the first upTo sample points
	// — only the unseen range is computed; previously classified points
	// are kept — and returns the raw objective over those points. rung
	// is the 1-based rung index, for telemetry and profiling attribution
	// only; it must not change the result. A failed evaluation reports
	// its failure fitness (poison or quarantine sentinel) and latches.
	Score(upTo, rung int) float64
	// Fitness returns the value recorded for a candidate whose ladder
	// stopped after upTo points: the exact objective at full fidelity,
	// and a deterministic extrapolation (score scaled by N/upTo) below
	// it, so pruned candidates still rank sensibly in the memo.
	Fitness(upTo int) float64
}

// rungCand tracks one distinct fresh genome through the ladder.
type rungCand struct {
	first   int   // first batch index carrying this genome (rank tie-break)
	members []int // every batch index carrying it
	pe      PartialEval
	seen    int
	score   float64
}

// fidelityLadder binds the successive-halving machinery to one
// population's run state. The single-population loop and each island
// deme construct one with their own memo, counters and halt hooks; the
// ladder itself is pure control flow, so both runtimes prune
// identically.
type fidelityLadder struct {
	fe    FidelityEvaluator
	sched []int
	eta   float64
	spec  Spec

	label  string
	island int // 1-based; 0 = single population

	memo map[string]float64
	// emit delivers one EvaluationRung event per completed rung (nil =
	// unobserved). Demes buffer; the single-population loop sends direct.
	emit func(telemetry.Event)

	checkHalt func() (StopReason, bool)
	onHalt    func(StopReason)
	isHalted  func() bool
	// charge spends sample points against the run's point budget; it is
	// called before the points are classified, cache-warm or cold alike,
	// so budget trajectories never depend on cache state.
	charge   func(points int)
	evals    *int
	memoHits *int
}

// run evaluates one generation's batch through the ladder and assigns
// every individual its fitness. It returns the count of assigned
// individuals (always a prefix of the batch) and whether the whole
// batch completed; false means the run halted mid-ladder — candidates
// with partial results receive scaled fitness, untouched ones stay
// unassigned, and the caller discards or truncates accordingly. force
// skips the halt check for the first fresh candidate's coarsest rung,
// so the very first individual of a run always gets a fitness and a
// best-so-far exists.
func (l *fidelityLadder) run(batch []*individual, force bool) (int, bool) {
	valued := make([]bool, len(batch))
	assign := func(c *rungCand, v float64) {
		l.memo[string(batch[c.first].bits)] = v
		for _, m := range c.members {
			batch[m].value = v
			valued[m] = true
		}
	}
	// Resolve memo hits and collapse duplicate genomes, in batch order.
	fresh := make([]*rungCand, 0, len(batch))
	byKey := make(map[string]*rungCand, len(batch))
	for i, ind := range batch {
		key := string(ind.bits)
		if v, ok := l.memo[key]; ok {
			ind.value = v
			valued[i] = true
			*l.memoHits++
			continue
		}
		if c, ok := byKey[key]; ok {
			c.members = append(c.members, i)
			continue
		}
		c := &rungCand{first: i, members: []int{i}}
		byKey[key] = c
		fresh = append(fresh, c)
	}

	cohort := fresh
	completed := true
ladder:
	for r, upTo := range l.sched {
		for ci, c := range cohort {
			if !(force && r == 0 && ci == 0) {
				if l.isHalted() {
					completed = false
					break ladder
				}
				if reason, h := l.checkHalt(); h {
					l.onHalt(reason)
					completed = false
					break ladder
				}
			}
			if c.pe == nil {
				c.pe = l.fe.Open(l.spec.Decode(batch[c.first].bits))
				*l.evals++
			}
			l.charge(upTo - c.seen)
			c.score = c.pe.Score(upTo, r+1)
			c.seen = upTo
		}
		if r == len(l.sched)-1 {
			// Final rung: the accumulated score over the full sample is the
			// exact single-fidelity objective.
			for _, c := range cohort {
				assign(c, c.pe.Fitness(c.seen))
			}
			l.emitRung(r+1, upTo, len(cohort), 0, 0)
			break
		}
		keep := int(math.Ceil(float64(len(cohort)) / l.eta))
		if keep < 1 {
			keep = 1
		}
		if keep >= len(cohort) {
			l.emitRung(r+1, upTo, len(cohort), len(cohort), 0)
			continue
		}
		// Rank ascending by partial score (the GA minimises), ties to the
		// earlier batch position — a total deterministic order.
		order := make([]int, len(cohort))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			ca, cb := cohort[order[a]], cohort[order[b]]
			if ca.score != cb.score {
				return ca.score < cb.score
			}
			return ca.first < cb.first
		})
		kept := make(map[*rungCand]bool, keep)
		for _, oi := range order[:keep] {
			kept[cohort[oi]] = true
		}
		promoted := make([]*rungCand, 0, keep)
		for _, c := range cohort {
			if kept[c] {
				promoted = append(promoted, c)
			} else {
				assign(c, c.pe.Fitness(c.seen))
			}
		}
		l.emitRung(r+1, upTo, len(cohort), len(promoted), len(cohort)-len(promoted))
		cohort = promoted
	}
	if !completed {
		// Halted mid-ladder: everything with partial results gets its
		// scaled fitness so a truncated generation 0 still ranks.
		for _, c := range cohort {
			if c.pe != nil && c.seen > 0 && !valued[c.first] {
				assign(c, c.pe.Fitness(c.seen))
			}
		}
	}
	assigned := 0
	for assigned < len(batch) && valued[assigned] {
		assigned++
	}
	return assigned, completed
}

// emitRung reports one completed rung to the observer.
func (l *fidelityLadder) emitRung(rung, points, candidates, promoted, pruned int) {
	if l.emit == nil {
		return
	}
	l.emit(telemetry.EvaluationRung{
		Search: l.label, Island: l.island, Rung: rung, Points: points,
		Candidates: candidates, Promoted: promoted, Pruned: pruned,
	})
}

// nextGenerationFidelity is nextGeneration with evaluation batched
// through the ladder: selection, crossover and mutation consume the RNG
// in exactly the same order (evaluation consumes no randomness, so
// moving it after the mutation loop preserves the genome sequence), and
// the whole offspring batch is then ranked and pruned together. It
// reports false when the ladder halted; the partial generation is then
// abandoned by the caller exactly like the classic path.
func nextGenerationFidelity(pop []individual, spec Spec, cfg Config, rng *rand.Rand, lad *fidelityLadder) ([]individual, bool) {
	selected := selectRSS(pop, rng)
	next := make([]individual, 0, len(pop))
	for i := 0; i+1 < len(selected); i += 2 {
		a := cloneBits(selected[i].bits)
		b := cloneBits(selected[i+1].bits)
		if rng.Float64() < cfg.CrossoverProb {
			crossover(cfg.Crossover, a, b, rng)
		}
		next = append(next, individual{bits: a}, individual{bits: b})
	}
	if len(next) < len(pop) { // odd population: carry the last selection
		next = append(next, individual{bits: cloneBits(selected[len(selected)-1].bits)})
	}
	for i := range next {
		for b := range next[i].bits {
			if rng.Float64() < cfg.MutationProb {
				next[i].bits[b] ^= 1
			}
		}
	}
	batch := make([]*individual, len(next))
	for i := range next {
		batch[i] = &next[i]
	}
	if _, ok := lad.run(batch, false); !ok {
		return nil, false
	}
	return next, true
}
