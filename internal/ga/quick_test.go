package ga

import (
	"testing"
	"testing/quick"
)

// Property: Decode always lands in [Lo, Lo+Span-1], for any raw value and
// any representable range.
func TestQuickDecodeInRange(t *testing.T) {
	f := func(rawSeed uint16, spanSeed uint8, loSeed int8) bool {
		span := int64(spanSeed)%500 + 1
		lo := int64(loSeed)
		c := NewChromosome(lo, span)
		raw := uint64(rawSeed) % (uint64(1) << c.Bits)
		v := c.Decode(raw)
		return v >= lo && v < lo+span
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Encode∘Decode is the identity on every representable value.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(u1, u2 uint8, t1, t2 uint8) bool {
		up1 := int64(u1)%200 + 1
		up2 := int64(u2)%200 + 1
		spec := NewTileSpec([]int64{up1, up2})
		vals := []int64{int64(t1)%up1 + 1, int64(t2)%up2 + 1}
		got := spec.Decode(spec.Encode(vals))
		return got[0] == vals[0] && got[1] == vals[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode is monotone non-decreasing in the raw value (the g
// mapping preserves order, which crossover exploits).
func TestQuickDecodeMonotone(t *testing.T) {
	c := TileChromosome(1000)
	f := func(a, b uint16) bool {
		ra := uint64(a) % (uint64(1) << c.Bits)
		rb := uint64(b) % (uint64(1) << c.Bits)
		if ra > rb {
			ra, rb = rb, ra
		}
		return c.Decode(ra) <= c.Decode(rb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
