package ga

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// sphereSpec is a small 3-variable genome for island tests.
func sphereSpec() Spec {
	return Spec{Chroms: []Chromosome{
		NewChromosome(0, 64), NewChromosome(0, 64), NewChromosome(0, 64),
	}}
}

// sphereObj is a deterministic unimodal objective with minimum at 17.
func sphereObj(v []int64) float64 {
	s := 0.0
	for _, x := range v {
		d := float64(x) - 17
		s += d * d
	}
	return s
}

// TestIslandRunDeterministic: a fixed seed must reproduce the multi-island
// run bit-for-bit at every island count, including under -race (the demes
// evolve on their own goroutines).
func TestIslandRunDeterministic(t *testing.T) {
	for _, n := range []int{2, 4} {
		cfg := PaperConfig(42)
		cfg.Islands = n
		run := func() Result {
			res, err := Run(context.Background(), sphereSpec(), sphereObj, cfg)
			if err != nil {
				t.Fatalf("islands=%d: %v", n, err)
			}
			return res
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("islands=%d: two identical runs diverged:\n%+v\n%+v", n, a, b)
		}
		if a.Best == nil || a.Evaluations == 0 {
			t.Fatalf("islands=%d: degenerate result %+v", n, a)
		}
	}
}

// TestIslandsOneIsSinglePopulation: Islands=1 must take the classic
// single-population path and match Islands=0 exactly.
func TestIslandsOneIsSinglePopulation(t *testing.T) {
	base := PaperConfig(7)
	one := base
	one.Islands = 1
	resBase, err := Run(context.Background(), sphereSpec(), sphereObj, base)
	if err != nil {
		t.Fatal(err)
	}
	resOne, err := Run(context.Background(), sphereSpec(), sphereObj, one)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resBase, resOne) {
		t.Fatalf("Islands=1 diverged from single population:\n%+v\n%+v", resBase, resOne)
	}
}

// TestIslandConfigValidate covers the island-specific Validate rules.
func TestIslandConfigValidate(t *testing.T) {
	mk := func(mut func(*Config)) Config {
		cfg := PaperConfig(1)
		mut(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" = valid
	}{
		{"negative islands", mk(func(c *Config) { c.Islands = -1 }), "island count"},
		{"negative interval", mk(func(c *Config) { c.MigrationInterval = -1 }), "migration interval"},
		{"negative count", mk(func(c *Config) { c.MigrationCount = -2 }), "migration count"},
		{"pop too small", mk(func(c *Config) { c.PopSize = 6; c.Islands = 4 }), "cannot fill"},
		{"budget below islands", mk(func(c *Config) { c.Islands = 4; c.MaxEvaluations = 3 }), "below the island count"},
		{"migration count too large", mk(func(c *Config) { c.PopSize = 8; c.Islands = 4; c.MigrationCount = 2 }), "smallest island population"},
		{"valid", mk(func(c *Config) { c.Islands = 4; c.MigrationCount = 2 }), ""},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestIslandBudget: MaxEvaluations bounds the summed per-island spend and
// the halt merges to StopBudget; a budget-halted run is as reproducible as
// a converged one.
func TestIslandBudget(t *testing.T) {
	cfg := PaperConfig(11)
	cfg.Islands = 3
	cfg.MaxEvaluations = 40
	run := func() Result {
		res, err := Run(context.Background(), sphereSpec(), sphereObj, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("budget-halted runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Evaluations > cfg.MaxEvaluations {
		t.Fatalf("spent %d evaluations, budget %d", a.Evaluations, cfg.MaxEvaluations)
	}
	if a.Stopped != StopBudget {
		t.Fatalf("stopped %v, want StopBudget", a.Stopped)
	}
	if a.Best == nil {
		t.Fatal("budget halt returned no best-so-far")
	}
}

// TestSeedInjectionClampWarns is the regression test for the seed-injection
// bound: supplying more than PopSize-1 seed individuals must run (seeds
// beyond the cap dropped) and report the drop on Result.Warnings.
func TestSeedInjectionClampWarns(t *testing.T) {
	cfg := PaperConfig(5)
	cfg.PopSize = 6
	for i := 0; i < 8; i++ {
		cfg.SeedValues = append(cfg.SeedValues, []int64{int64(i), int64(i), int64(i)})
	}
	res, err := Run(context.Background(), sphereSpec(), sphereObj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "3 of 8 seed individuals dropped") {
		t.Fatalf("warnings = %q, want one 3-of-8-dropped warning", res.Warnings)
	}
	if res.Best == nil {
		t.Fatal("clamped run returned no result")
	}

	// At or under the cap: no warning.
	cfg.SeedValues = cfg.SeedValues[:5]
	res, err = Run(context.Background(), sphereSpec(), sphereObj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Fatalf("unexpected warnings %q for %d seeds in population %d", res.Warnings, 5, cfg.PopSize)
	}
}

// TestIslandSeedClampWarns: with islands the seeds are dealt round-robin
// and each deme clamps against its own size, naming the island.
func TestIslandSeedClampWarns(t *testing.T) {
	cfg := PaperConfig(5)
	cfg.PopSize = 6
	cfg.Islands = 2 // deme sizes 3 and 3, per-deme cap 2
	for i := 0; i < 8; i++ {
		cfg.SeedValues = append(cfg.SeedValues, []int64{int64(i), int64(i), int64(i)})
	}
	res, err := Run(context.Background(), sphereSpec(), sphereObj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 2 {
		t.Fatalf("warnings = %q, want one per island", res.Warnings)
	}
	for i, w := range res.Warnings {
		if !strings.Contains(w, "on island") || !strings.Contains(w, "2 of 4 seed individuals dropped") {
			t.Errorf("island %d warning %q lacks island tag or drop count", i+1, w)
		}
	}
}

// TestIslandTelemetry checks the island-tagged event stream: every deme
// reports its generations with a 1-based island index, and every barrier
// emits ring-shaped migration events.
func TestIslandTelemetry(t *testing.T) {
	const n = 3
	var cap telemetry.Capture
	cfg := PaperConfig(9)
	cfg.Islands = n
	cfg.Observer = &cap
	if _, err := Run(context.Background(), sphereSpec(), sphereObj, cfg); err != nil {
		t.Fatal(err)
	}
	genZero := map[int]bool{}
	migrations := 0
	for _, e := range cap.Events() {
		switch ev := e.(type) {
		case telemetry.GenerationDone:
			if ev.Island < 1 || ev.Island > n {
				t.Fatalf("generation event island %d outside 1..%d", ev.Island, n)
			}
			if ev.Gen == 0 {
				genZero[ev.Island] = true
			}
		case telemetry.IslandMigration:
			migrations++
			if ev.Count < 1 {
				t.Fatalf("migration carried %d elites", ev.Count)
			}
			wantFrom := ((ev.To-1)-1+n)%n + 1
			if ev.From != wantFrom {
				t.Fatalf("migration %d -> %d is not the ring edge (want from %d)", ev.From, ev.To, wantFrom)
			}
		}
	}
	if len(genZero) != n {
		t.Fatalf("only %d of %d islands reported generation 0", len(genZero), n)
	}
	if migrations == 0 {
		t.Fatal("no migration events recorded")
	}
}

// TestIslandCheckpointResume: interrupting a multi-island run at any
// barrier snapshot and resuming from it must replay the uninterrupted run
// bit-for-bit, through the version-2 checkpoint's serialised round trip.
func TestIslandCheckpointResume(t *testing.T) {
	cfg := PaperConfig(13)
	cfg.Islands = 2
	cfg.MigrationInterval = 3
	cfg.Label = "island-test"

	var snaps []*Checkpoint
	full := cfg
	full.Checkpoint = func(c *Checkpoint) error {
		// Round-trip through the serialised form: what a resume would read
		// is what we keep (also exercising the v2 sum verification).
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, c); err != nil {
			return err
		}
		cp, err := ReadCheckpoint(&buf)
		if err != nil {
			return err
		}
		snaps = append(snaps, cp)
		return nil
	}
	want, err := Run(context.Background(), sphereSpec(), sphereObj, full)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("only %d snapshots written; need a mid-run one", len(snaps))
	}

	// Resume from every snapshot, including the mid-migration-cycle ones.
	for i, cp := range snaps {
		resumed := cfg
		resumed.ResumeFrom = cp
		got, err := Run(context.Background(), sphereSpec(), sphereObj, resumed)
		if err != nil {
			t.Fatalf("resume from snapshot %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("resume from snapshot %d diverged:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestIslandCheckpointValidation: version and shape mismatches between a
// snapshot and the island configuration are rejected.
func TestIslandCheckpointValidation(t *testing.T) {
	cfg := PaperConfig(3)
	cfg.Islands = 2
	var snap *Checkpoint
	withCp := cfg
	withCp.Checkpoint = func(c *Checkpoint) error {
		if snap == nil {
			var buf bytes.Buffer
			if err := WriteCheckpoint(&buf, c); err != nil {
				return err
			}
			cp, err := ReadCheckpoint(&buf)
			if err != nil {
				return err
			}
			snap = cp
		}
		return nil
	}
	if _, err := Run(context.Background(), sphereSpec(), sphereObj, withCp); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot captured")
	}
	if snap.Version != checkpointVersionIslands || len(snap.Islands) != 2 {
		t.Fatalf("snapshot version %d islands %d, want v%d with 2 islands",
			snap.Version, len(snap.Islands), checkpointVersionIslands)
	}

	// A v2 snapshot must not resume a single-population run...
	single := PaperConfig(3)
	single.ResumeFrom = snap
	if _, err := Run(context.Background(), sphereSpec(), sphereObj, single); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("single-population resume of a v2 snapshot: err = %v, want version mismatch", err)
	}
	// ...nor a run with a different island count.
	three := cfg
	three.Islands = 3
	three.ResumeFrom = snap
	if _, err := Run(context.Background(), sphereSpec(), sphereObj, three); err == nil ||
		!strings.Contains(err.Error(), "islands") {
		t.Fatalf("3-island resume of a 2-island snapshot: err = %v, want island-count mismatch", err)
	}
}

// TestIslandSeedsStable pins the RNG-stream derivation: island seeds
// depend on the run seeds and the island index alone, never on the island
// count, so checkpoint compatibility cannot drift silently.
func TestIslandSeedsStable(t *testing.T) {
	cfg2 := Config{Seed1: 100, Seed2: 200, Islands: 2}
	cfg8 := Config{Seed1: 100, Seed2: 200, Islands: 8}
	for i := 0; i < 2; i++ {
		a1, a2 := islandSeeds(cfg2, i)
		b1, b2 := islandSeeds(cfg8, i)
		if a1 != b1 || a2 != b2 {
			t.Fatalf("island %d seeds changed with island count", i)
		}
	}
	a1, a2 := islandSeeds(cfg2, 0)
	b1, b2 := islandSeeds(cfg2, 1)
	if a1 == b1 || a2 == b2 {
		t.Fatal("adjacent islands share a seed")
	}
}

// TestIslandSizesAndBudgets checks the even-split helpers.
func TestIslandSizesAndBudgets(t *testing.T) {
	if got := islandSizes(30, 4); !reflect.DeepEqual(got, []int{8, 8, 7, 7}) {
		t.Fatalf("islandSizes(30, 4) = %v", got)
	}
	if got := islandBudgets(10, 3); !reflect.DeepEqual(got, []int{4, 3, 3}) {
		t.Fatalf("islandBudgets(10, 3) = %v", got)
	}
	if got := islandBudgets(0, 3); !reflect.DeepEqual(got, []int{0, 0, 0}) {
		t.Fatalf("islandBudgets(0, 3) = %v (0 must stay unlimited)", got)
	}
}
