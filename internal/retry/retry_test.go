package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeSleep records requested delays and never waits.
func fakeSleep(log *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*log = append(*log, d)
		return nil
	}
}

func TestFirstTrySuccessNoSleep(t *testing.T) {
	var slept []time.Duration
	p := Policy{Sleep: fakeSleep(&slept)}
	calls := 0
	if err := p.Do(context.Background(), func() error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || len(slept) != 0 {
		t.Fatalf("calls=%d slept=%v", calls, slept)
	}
}

func TestTransientFailureRecovered(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 3, Base: time.Millisecond, Max: 10 * time.Millisecond, Sleep: fakeSleep(&slept)}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("backoff sequence = %v", slept)
	}
}

func TestBackoffCapped(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 6, Base: 4 * time.Millisecond, Max: 10 * time.Millisecond, Sleep: fakeSleep(&slept)}
	fail := errors.New("always")
	err := p.Do(context.Background(), func() error { return fail })
	if !errors.Is(err, fail) {
		t.Fatalf("err = %v", err)
	}
	want := []time.Duration{4 * time.Millisecond, 8 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

func TestAttemptsExhaustedReportsCount(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 3, Sleep: fakeSleep(&slept)}
	fail := errors.New("persistent")
	err := p.Do(context.Background(), func() error { return fail })
	if !errors.Is(err, fail) {
		t.Fatalf("cause lost: %v", err)
	}
	if got := err.Error(); got != "retry: 3 attempts: persistent" {
		t.Fatalf("err = %q", got)
	}
}

func TestSingleAttemptErrorUnwrapped(t *testing.T) {
	p := Policy{Attempts: 1}
	fail := errors.New("once")
	if err := p.Do(context.Background(), func() error { return fail }); err != fail {
		t.Fatalf("single-attempt error was wrapped: %v", err)
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{Attempts: 5, Sleep: func(context.Context, time.Duration) error { return nil }}
	err := p.Do(ctx, func() error {
		calls++
		cancel()
		return errors.New("fail then cancel")
	})
	if err == nil || calls != 1 {
		t.Fatalf("calls=%d err=%v; want 1 call and the fn error", calls, err)
	}
}

func TestContextCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	fail := errors.New("transient")
	p := Policy{Attempts: 5, Sleep: func(ctx context.Context, _ time.Duration) error {
		cancel()
		return ctx.Err()
	}}
	err := p.Do(ctx, func() error { return fail })
	if !errors.Is(err, fail) {
		t.Fatalf("err = %v, want the operation error", err)
	}
}

func TestJitterSpreadsBackoff(t *testing.T) {
	var slept []time.Duration
	draws := []float64{0, 0.5, 1 - 1e-12}
	i := 0
	p := Policy{
		Attempts: 4, Base: 8 * time.Millisecond, Max: 100 * time.Millisecond,
		Jitter: 0.5,
		Rand:   func() float64 { d := draws[i]; i++; return d },
		Sleep:  fakeSleep(&slept),
	}
	fail := errors.New("always")
	if err := p.Do(context.Background(), func() error { return fail }); !errors.Is(err, fail) {
		t.Fatalf("err = %v", err)
	}
	// Nominal backoff 8ms, 16ms, 32ms; jitter 0.5 with draws 0, 0.5, ~1
	// sleeps d, 0.75d, ~0.5d.
	if len(slept) != 3 {
		t.Fatalf("slept %v", slept)
	}
	if slept[0] != 8*time.Millisecond {
		t.Fatalf("draw 0 must leave the delay untouched, slept %v", slept[0])
	}
	if slept[1] != 12*time.Millisecond {
		t.Fatalf("draw 0.5 with jitter 0.5 must sleep 0.75·16ms, slept %v", slept[1])
	}
	if lo, hi := 16*time.Millisecond, 17*time.Millisecond; slept[2] < lo || slept[2] > hi {
		t.Fatalf("draw ~1 with jitter 0.5 must sleep ~0.5·32ms, slept %v", slept[2])
	}
	// Every jittered delay stays within (0, nominal].
	for _, d := range slept {
		if d <= 0 {
			t.Fatalf("jitter produced a non-positive delay %v", d)
		}
	}
}

func TestJitterClampedAndDefaultRand(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 2, Base: 10 * time.Millisecond, Jitter: 7, Sleep: fakeSleep(&slept)}
	fail := errors.New("always")
	if err := p.Do(context.Background(), func() error { return fail }); !errors.Is(err, fail) {
		t.Fatalf("err = %v", err)
	}
	if len(slept) != 1 || slept[0] < 0 || slept[0] > 10*time.Millisecond {
		t.Fatalf("clamped jitter slept %v, want within [0, 10ms]", slept)
	}
}

func TestZeroJitterExactBackoff(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		Attempts: 3, Base: 5 * time.Millisecond, Max: 50 * time.Millisecond,
		Rand:  func() float64 { t.Fatal("Rand consulted with Jitter 0"); return 0 },
		Sleep: fakeSleep(&slept),
	}
	fail := errors.New("always")
	if err := p.Do(context.Background(), func() error { return fail }); !errors.Is(err, fail) {
		t.Fatalf("err = %v", err)
	}
	if len(slept) != 2 || slept[0] != 5*time.Millisecond || slept[1] != 10*time.Millisecond {
		t.Fatalf("backoff sequence = %v", slept)
	}
}

// TestCancelMidSleepAbortsPromptly cancels the context in the middle of a
// real-clock backoff sleep and requires Do to return well before the
// nominal delay elapses — the property the server's drain path depends on.
func TestCancelMidSleepAbortsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fail := errors.New("transient")
	p := Policy{Attempts: 2, Base: 30 * time.Second, Max: 30 * time.Second}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := p.Do(ctx, func() error { return fail })
	elapsed := time.Since(start)
	if !errors.Is(err, fail) {
		t.Fatalf("err = %v, want the operation error", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("backoff sleep ignored the mid-sleep cancel (took %v)", elapsed)
	}
}

func TestDefaultSleepHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := sleep(ctx, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("sleep = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("sleep ignored the cancelled context")
	}
}
