// Package retry implements bounded retries with capped exponential
// backoff for the transient-failure paths of the search pipeline:
// checkpoint persistence and telemetry sink writes. The clock is
// injectable (Policy.Sleep) so tests run without real delays, and every
// wait honours the caller's context.
package retry

import (
	"context"
	"fmt"
	"time"
)

// Policy bounds a retried operation. The zero value is usable: it means
// DefaultAttempts tries with DefaultBase backoff doubling up to
// DefaultMax, sleeping on the real clock.
type Policy struct {
	// Attempts is the total number of tries, including the first
	// (0 = DefaultAttempts). 1 disables retries.
	Attempts int
	// Base is the delay before the first retry; it doubles per retry
	// (0 = DefaultBase).
	Base time.Duration
	// Max caps the per-retry delay (0 = DefaultMax).
	Max time.Duration
	// Sleep waits out one backoff delay. Nil means a context-aware
	// real-clock sleep; tests inject a recording fake.
	Sleep func(ctx context.Context, d time.Duration) error
}

// The zero-Policy defaults: three tries, 2ms backoff doubling to a 50ms
// cap — enough to ride out transient I/O hiccups without stalling a
// search noticeably.
const (
	DefaultAttempts = 3
	DefaultBase     = 2 * time.Millisecond
	DefaultMax      = 50 * time.Millisecond
)

// withDefaults fills the zero fields.
func (p Policy) withDefaults() Policy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultAttempts
	}
	if p.Base <= 0 {
		p.Base = DefaultBase
	}
	if p.Max <= 0 {
		p.Max = DefaultMax
	}
	if p.Sleep == nil {
		p.Sleep = sleep
	}
	return p
}

// sleep is the default context-aware clock.
func sleep(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs fn up to p.Attempts times, backing off between tries, and
// returns nil on the first success. Once the context is done no further
// attempt is made: the last attempt's error is returned immediately
// (wrapped with the attempt count when retries were actually spent).
// A nil ctx is treated as context.Background().
func (p Policy) Do(ctx context.Context, fn func() error) error {
	p = p.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	delay := p.Base
	for attempt := 1; ; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if attempt >= p.Attempts || ctx.Err() != nil {
			if attempt > 1 {
				return fmt.Errorf("retry: %d attempts: %w", attempt, err)
			}
			return err
		}
		if serr := p.Sleep(ctx, delay); serr != nil {
			// The context expired mid-backoff; the operation's own error
			// is the interesting one.
			return fmt.Errorf("retry: %d attempts (backoff interrupted): %w", attempt, err)
		}
		if delay *= 2; delay > p.Max {
			delay = p.Max
		}
	}
}
