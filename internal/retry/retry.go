// Package retry implements bounded retries with capped exponential
// backoff for the transient-failure paths of the search pipeline:
// checkpoint persistence and telemetry sink writes. The clock is
// injectable (Policy.Sleep) so tests run without real delays, and every
// wait honours the caller's context.
package retry

import (
	"context"
	"fmt"
	"math/rand/v2"
	"time"
)

// Policy bounds a retried operation. The zero value is usable: it means
// DefaultAttempts tries with DefaultBase backoff doubling up to
// DefaultMax, no jitter, sleeping on the real clock.
type Policy struct {
	// Attempts is the total number of tries, including the first
	// (0 = DefaultAttempts). 1 disables retries.
	Attempts int
	// Base is the delay before the first retry; it doubles per retry
	// (0 = DefaultBase).
	Base time.Duration
	// Max caps the per-retry delay (0 = DefaultMax).
	Max time.Duration
	// Jitter in (0, 1] spreads each backoff delay downward by up to that
	// fraction: the slept delay is d·(1 − Jitter·u) for a uniform
	// u ∈ [0, 1), so concurrent retriers failing together do not all come
	// back in lockstep. 0 disables jitter (the historical behaviour); out
	// of range is clamped into [0, 1].
	Jitter float64
	// Rand supplies the uniform [0, 1) draws behind Jitter. Nil means the
	// shared math/rand/v2 source; tests inject a deterministic sequence.
	Rand func() float64
	// Sleep waits out one backoff delay. Nil means a context-aware
	// real-clock sleep that aborts promptly — and returns the context's
	// error — the moment the context is cancelled mid-sleep; tests inject
	// a recording fake.
	Sleep func(ctx context.Context, d time.Duration) error
}

// The zero-Policy defaults: three tries, 2ms backoff doubling to a 50ms
// cap — enough to ride out transient I/O hiccups without stalling a
// search noticeably.
const (
	DefaultAttempts = 3
	DefaultBase     = 2 * time.Millisecond
	DefaultMax      = 50 * time.Millisecond
)

// withDefaults fills the zero fields.
func (p Policy) withDefaults() Policy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultAttempts
	}
	if p.Base <= 0 {
		p.Base = DefaultBase
	}
	if p.Max <= 0 {
		p.Max = DefaultMax
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	if p.Sleep == nil {
		p.Sleep = sleep
	}
	return p
}

// jittered returns the delay actually slept for a nominal backoff d.
func (p Policy) jittered(d time.Duration) time.Duration {
	if p.Jitter <= 0 {
		return d
	}
	return d - time.Duration(p.Jitter*p.Rand()*float64(d))
}

// sleep is the default context-aware clock.
func sleep(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs fn up to p.Attempts times, backing off between tries, and
// returns nil on the first success. Once the context is done no further
// attempt is made: the last attempt's error is returned immediately
// (wrapped with the attempt count when retries were actually spent).
// A nil ctx is treated as context.Background().
func (p Policy) Do(ctx context.Context, fn func() error) error {
	p = p.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	delay := p.Base
	for attempt := 1; ; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if attempt >= p.Attempts || ctx.Err() != nil {
			if attempt > 1 {
				return fmt.Errorf("retry: %d attempts: %w", attempt, err)
			}
			return err
		}
		if serr := p.Sleep(ctx, p.jittered(delay)); serr != nil {
			// The context expired mid-backoff; the operation's own error
			// is the interesting one.
			return fmt.Errorf("retry: %d attempts (backoff interrupted): %w", attempt, err)
		}
		if delay *= 2; delay > p.Max {
			delay = p.Max
		}
	}
}
