#!/bin/sh
# Benchmark regression gate: diff the two newest checked-in BENCH_pr*.json
# trajectory files and fail when a core micro-benchmark (the point solver
# and the parallel evaluator by default) got more than BENCH_THRESHOLD
# percent slower in ns/op. Hardware varies across the machines that
# recorded these files, so the default threshold is deliberately loose —
# this catches order-of-magnitude mistakes, not single-digit noise.
# With fewer than two trajectory files there is nothing to diff and the
# gate skips with a note, mirroring how `make lint` degrades.
set -eu

cd "$(dirname "$0")/.."

files=$(ls BENCH_pr*.json 2>/dev/null | sort -V | tail -2)
if [ "$(printf '%s\n' "$files" | grep -c .)" -lt 2 ]; then
    echo "bench-regress: fewer than two BENCH_pr*.json files, skipping"
    exit 0
fi
old=$(printf '%s\n' "$files" | head -1)
new=$(printf '%s\n' "$files" | tail -1)

echo "bench-regress: $old -> $new"
exec go run ./cmd/benchjson -compare \
    -match "${BENCH_MATCH:-Classify|EvaluateParallel}" \
    -threshold "${BENCH_THRESHOLD:-20}" \
    "$old" "$new"
